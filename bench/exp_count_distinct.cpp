// EXP-T51 — Theorem 5.1 and its contrast: exact COUNT_DISTINCT communicates
// linearly in the distinct count (and the constructive 2SD reduction's cut
// bits grow linearly in n), while hashed-LogLog approximation is flat in D
// and lands within (1 +- 3.15/k) of the truth with ~99% probability.
// With --out PATH (optionally --json-only) it additionally emits
// BENCH_PR6.json: bits-on-the-wire per precision for the sketch layer
// (legacy flat register image vs sketch::Hll sparse/dense v1 wire format)
// and dense-merge throughput per packed width — the PR-6 acceptance
// numbers, consumed by the CI bench-smoke lane.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/trial_farm.hpp"
#include "src/core/count_distinct.hpp"
#include "src/core/disjointness.hpp"
#include "src/sketch/hll.hpp"
#include "src/sketch/registers.hpp"
#include "util/experiment.hpp"
#include "util/table.hpp"

namespace sensornet::bench {
namespace {

// Every table below runs its rows as farm cells. Cells draw randomness
// from trial_seed(table_seed, cell) — their own splitmix64-separated
// streams — instead of sharing one sequential generator, which is what
// makes the rows schedulable on any worker without changing a digit.
using Row = std::vector<std::string>;

void linear_vs_flat_table(TrialFarm& farm) {
  Table table({"N", "distinct D", "exact bits/node", "approx bits/node (m=64)",
               "exact/approx"});
  const std::size_t n = 1024;
  const std::vector<std::size_t> distinct{8, 64, 256, 1024};
  const auto rows = farm.map<Row>(distinct.size(), [&](std::size_t cell) {
    const std::size_t d = distinct[cell];
    Xoshiro256 rng(trial_seed(3, cell));
    const ValueSet xs = generate_with_distinct(n, d, 1 << 22, rng);
    std::uint64_t exact_bits = 0;
    std::uint64_t approx_bits = 0;
    {
      sim::Network net(net::make_line(n), 5);
      net.set_one_item_per_node(xs);
      const auto tree = net::bfs_tree(net.graph(), 0);
      exact_bits = core::exact_count_distinct(net, tree).max_node_bits;
    }
    {
      sim::Network net(net::make_line(n), 5);
      net.set_one_item_per_node(xs);
      const auto tree = net::bfs_tree(net.graph(), 0);
      approx_bits =
          core::approx_count_distinct(net, tree, 64,
                                      proto::EstimatorKind::kHyperLogLog)
              .max_node_bits;
    }
    return Row{std::to_string(n), std::to_string(d), fmt_bits(exact_bits),
               fmt_bits(approx_bits),
               fmt(static_cast<double>(exact_bits) /
                   static_cast<double>(approx_bits))};
  });
  for (const Row& row : rows) table.add_row(row);
  table.print();
}

void approx_accuracy_table(TrialFarm& farm) {
  // Paper: k^2 loglog n bits, within (1 +- 3.15/k) w.p. 99%.
  Table table({"k", "m = k^2", "tolerance 3.15/k", "trials",
               "within tolerance", "mean |rel err|"});
  const std::size_t n = 512;
  const std::size_t d = 300;
  const std::vector<unsigned> ks{4, 8, 16};
  const auto rows = farm.map<Row>(ks.size(), [&](std::size_t cell) {
    const unsigned k = ks[cell];
    const unsigned m = k * k;
    constexpr int kTrials = 20;
    Xoshiro256 rng(trial_seed(7, cell));
    int within = 0;
    double sum_err = 0;
    for (int t = 0; t < kTrials; ++t) {
      const ValueSet xs = generate_with_distinct(n, d, 1 << 24, rng);
      sim::Network net(net::make_line(n), 100 + t);
      net.set_one_item_per_node(xs);
      const auto tree = net::bfs_tree(net.graph(), 0);
      const auto res = core::approx_count_distinct(
          net, tree, m, proto::EstimatorKind::kHyperLogLog);
      const double rel =
          std::abs(res.estimate - static_cast<double>(d)) /
          static_cast<double>(d);
      sum_err += rel;
      if (rel <= 3.15 / k) ++within;
    }
    return Row{std::to_string(k), std::to_string(m), fmt(3.15 / k, 3),
               std::to_string(kTrials), std::to_string(within),
               fmt(sum_err / kTrials, 4)};
  });
  for (const Row& row : rows) table.add_row(row);
  table.print();
}

void reduction_table(TrialFarm& farm) {
  Table table({"per-side n", "instance", "declared", "cut bits",
               "cut bits / n", "max bits/node"});
  const std::vector<std::size_t> sides{16, 64, 256, 1024};
  const auto rows = farm.map<Row>(2 * sides.size(), [&](std::size_t cell) {
    const std::size_t per_side = sides[cell / 2];
    const bool disjoint = cell % 2 == 0;
    Xoshiro256 rng(trial_seed(11, cell));
    const auto inst = generate_disjointness(
        per_side, disjoint ? 0 : per_side / 4, 1 << 24, rng);
    const auto rep = core::solve_disjointness_via_count_distinct(
        inst.side_a, inst.side_b);
    return Row{std::to_string(per_side),
               disjoint ? "disjoint" : "overlapping",
               rep.declared_disjoint ? "disjoint" : "overlapping",
               fmt_bits(rep.cut_bits),
               fmt(static_cast<double>(rep.cut_bits) /
                   static_cast<double>(per_side)),
               fmt_bits(rep.max_node_bits)};
  });
  for (const Row& row : rows) table.add_row(row);
  table.print();
  std::cout << "(cut bits / n approaching a constant ~= value-entropy "
               "confirms the Omega(n) information flow across the A|B "
               "cut that Theorem 5.1's reduction forces.)\n\n";
}

// ---------------------------------------------------------------------------
// BENCH_PR6.json: sketch-layer wire cost + dense-merge throughput.
// ---------------------------------------------------------------------------

struct WireRow {
  unsigned precision = 0;
  unsigned m = 0;
  unsigned width = 0;
  std::uint64_t legacy_flat_bits = 0;   // the pre-Hll m*w register image
  std::uint64_t hll_dense_bits = 0;     // v1 header + packed dense body
  std::uint64_t hll_sparse_bits = 0;    // v1 image of an 8-distinct-item leaf
  double sparse_vs_legacy = 0.0;        // hll_sparse / legacy_flat
  double mean_abs_rel_err = 0.0;        // estimate quality at this precision
};

WireRow measure_wire(unsigned precision, int trials) {
  using sketch::Hll;
  WireRow row;
  row.precision = precision;
  row.m = 1u << precision;
  row.width = 6;
  row.legacy_flat_bits = static_cast<std::uint64_t>(row.m) * row.width;

  // Low-cardinality leaf: 8 distinct items, the regime sparse exists for.
  Hll leaf = Hll::make_by_registers(row.m).value();
  for (std::uint64_t v = 0; v < 8; ++v) leaf.add(v, 1);
  row.hll_sparse_bits = leaf.wire_bits();
  row.sparse_vs_legacy = static_cast<double>(row.hll_sparse_bits) /
                         static_cast<double>(row.legacy_flat_bits);

  // Saturated aggregate: the dense image every inner node converges to.
  constexpr std::uint64_t kTruth = 60000;
  double err_sum = 0;
  for (int t = 0; t < trials; ++t) {
    Hll full = Hll::make_by_registers(row.m).value();
    for (std::uint64_t v = 0; v < kTruth; ++v) {
      full.add(v, 100 + static_cast<std::uint64_t>(t));
    }
    row.hll_dense_bits = full.wire_bits();
    err_sum += std::abs(full.estimate() / static_cast<double>(kTruth) - 1.0);
  }
  row.mean_abs_rel_err = err_sum / trials;
  return row;
}

struct MergeRow {
  unsigned m = 0;
  unsigned width = 0;
  double ns_per_merge = 0.0;
  double ns_per_merge_legacy = 0.0;  // byte-per-register elementwise loop
  double speedup = 0.0;
};

MergeRow measure_dense_merge(unsigned m, unsigned width, int iters) {
  using Clock = std::chrono::steady_clock;
  using sketch::Hll;
  MergeRow row;
  row.m = m;
  row.width = width;
  Xoshiro256 rng(97);
  Hll a = Hll::make_by_registers(m, {.width = width, .sparse = false}).value();
  Hll b = Hll::make_by_registers(m, {.width = width, .sparse = false}).value();
  sketch::RegisterArray la(m, width);
  sketch::RegisterArray lb(m, width);
  for (unsigned i = 0; i < 4 * m; ++i) {
    const auto oa = sketch::random_observation(m, rng);
    a.observe(oa.bucket, oa.rank);
    la.observe(oa.bucket, oa.rank);
    const auto ob = sketch::random_observation(m, rng);
    b.observe(ob.bucket, ob.rank);
    lb.observe(ob.bucket, ob.rank);
  }
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    if (!a.merge(b).ok()) return row;
  }
  const auto t1 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    la.merge(lb);
  }
  const auto t2 = Clock::now();
  const auto ns = [](auto d) {
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
  };
  row.ns_per_merge = ns(t1 - t0) / iters;
  row.ns_per_merge_legacy = ns(t2 - t1) / iters;
  row.speedup = row.ns_per_merge > 0
                    ? row.ns_per_merge_legacy / row.ns_per_merge
                    : 0.0;
  return row;
}

void write_bench_json(const std::string& path) {
  std::vector<WireRow> wire;
  for (const unsigned p : {4u, 6u, 8u, 10u}) {
    wire.push_back(measure_wire(p, /*trials=*/5));
  }
  std::vector<MergeRow> merges;
  for (const unsigned w : {4u, 5u, 6u, 8u}) {
    merges.push_back(measure_dense_merge(1024, w, /*iters=*/20000));
  }

  std::ofstream out(path);
  out << "{\n  \"bench\": \"BENCH_PR6\",\n  \"schema_version\": 1,\n";
  out << "  \"wire\": [\n";
  for (std::size_t i = 0; i < wire.size(); ++i) {
    const auto& r = wire[i];
    out << "    {\n"
        << "      \"precision\": " << r.precision << ",\n"
        << "      \"registers\": " << r.m << ",\n"
        << "      \"width\": " << r.width << ",\n"
        << "      \"legacy_flat_bits\": " << r.legacy_flat_bits << ",\n"
        << "      \"hll_dense_bits\": " << r.hll_dense_bits << ",\n"
        << "      \"hll_sparse_bits_8_items\": " << r.hll_sparse_bits << ",\n"
        << "      \"sparse_vs_legacy_ratio\": " << fmt(r.sparse_vs_legacy, 4)
        << ",\n"
        << "      \"mean_abs_rel_err\": " << fmt(r.mean_abs_rel_err, 4)
        << "\n    }" << (i + 1 < wire.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"dense_merge\": [\n";
  for (std::size_t i = 0; i < merges.size(); ++i) {
    const auto& r = merges[i];
    out << "    {\n"
        << "      \"registers\": " << r.m << ",\n"
        << "      \"width\": " << r.width << ",\n"
        << "      \"ns_per_merge\": " << fmt(r.ns_per_merge, 2) << ",\n"
        << "      \"ns_per_merge_legacy\": " << fmt(r.ns_per_merge_legacy, 2)
        << ",\n"
        << "      \"speedup\": " << fmt(r.speedup, 3) << "\n    }"
        << (i + 1 < merges.size() ? "," : "") << "\n";
  }
  bool sparse_always_cheaper = true;
  for (const auto& r : wire) {
    if (r.hll_sparse_bits >= r.legacy_flat_bits) sparse_always_cheaper = false;
  }
  double min_speedup = merges.empty() ? 0.0 : merges.front().speedup;
  for (const auto& r : merges) min_speedup = std::min(min_speedup, r.speedup);
  out << "  ],\n  \"summary\": {\n"
      << "    \"sparse_cheaper_than_legacy_at_low_cardinality\": "
      << (sparse_always_cheaper ? "true" : "false") << ",\n"
      << "    \"dense_merge_min_speedup\": " << fmt(min_speedup, 3)
      << "\n  }\n}\n";
  std::cout << "wrote " << path << "\n";
}

void run(unsigned threads) {
  print_banner(
      "EXP-T51", "Theorem 5.1 + Section 5",
      "exact COUNT_DISTINCT is linear in D (and the 2SD reduction moves "
      "Omega(n) bits across the cut); hashed-LogLog approximation is flat "
      "in D and within (1 +- 3.15/k) w.p. ~99%");
  TrialFarm farm(threads);
  linear_vs_flat_table(farm);
  approx_accuracy_table(farm);
  reduction_table(farm);
}

}  // namespace
}  // namespace sensornet::bench

int main(int argc, char** argv) {
  std::string out_path;
  bool json_only = false;
  unsigned threads = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--json-only") {
      json_only = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<unsigned>(std::stoul(argv[++i]));
    } else {
      std::cerr << "usage: exp_count_distinct [--out PATH] [--json-only] "
                   "[--threads N]\n";
      return 2;
    }
  }
  if (!json_only) sensornet::bench::run(threads);
  if (!out_path.empty()) sensornet::bench::write_bench_json(out_path);
  return 0;
}
