// EXP-T51 — Theorem 5.1 and its contrast: exact COUNT_DISTINCT communicates
// linearly in the distinct count (and the constructive 2SD reduction's cut
// bits grow linearly in n), while hashed-LogLog approximation is flat in D
// and lands within (1 +- 3.15/k) of the truth with ~99% probability.
#include <cmath>
#include <cstdint>

#include "src/core/count_distinct.hpp"
#include "src/core/disjointness.hpp"
#include "util/experiment.hpp"
#include "util/table.hpp"

namespace sensornet::bench {
namespace {

void linear_vs_flat_table() {
  Table table({"N", "distinct D", "exact bits/node", "approx bits/node (m=64)",
               "exact/approx"});
  Xoshiro256 rng(3);
  const std::size_t n = 1024;
  for (const std::size_t d : {8UL, 64UL, 256UL, 1024UL}) {
    const ValueSet xs = generate_with_distinct(n, d, 1 << 22, rng);
    std::uint64_t exact_bits = 0;
    std::uint64_t approx_bits = 0;
    {
      sim::Network net(net::make_line(n), 5);
      net.set_one_item_per_node(xs);
      const auto tree = net::bfs_tree(net.graph(), 0);
      exact_bits = core::exact_count_distinct(net, tree).max_node_bits;
    }
    {
      sim::Network net(net::make_line(n), 5);
      net.set_one_item_per_node(xs);
      const auto tree = net::bfs_tree(net.graph(), 0);
      approx_bits =
          core::approx_count_distinct(net, tree, 64,
                                      proto::EstimatorKind::kHyperLogLog)
              .max_node_bits;
    }
    table.add_row({std::to_string(n), std::to_string(d), fmt_bits(exact_bits),
                   fmt_bits(approx_bits),
                   fmt(static_cast<double>(exact_bits) /
                       static_cast<double>(approx_bits))});
  }
  table.print();
}

void approx_accuracy_table() {
  // Paper: k^2 loglog n bits, within (1 +- 3.15/k) w.p. 99%.
  Table table({"k", "m = k^2", "tolerance 3.15/k", "trials",
               "within tolerance", "mean |rel err|"});
  Xoshiro256 rng(7);
  const std::size_t n = 512;
  const std::size_t d = 300;
  for (const unsigned k : {4u, 8u, 16u}) {
    const unsigned m = k * k;
    constexpr int kTrials = 20;
    int within = 0;
    double sum_err = 0;
    for (int t = 0; t < kTrials; ++t) {
      const ValueSet xs = generate_with_distinct(n, d, 1 << 24, rng);
      sim::Network net(net::make_line(n), 100 + t);
      net.set_one_item_per_node(xs);
      const auto tree = net::bfs_tree(net.graph(), 0);
      const auto res = core::approx_count_distinct(
          net, tree, m, proto::EstimatorKind::kHyperLogLog);
      const double rel =
          std::abs(res.estimate - static_cast<double>(d)) /
          static_cast<double>(d);
      sum_err += rel;
      if (rel <= 3.15 / k) ++within;
    }
    table.add_row({std::to_string(k), std::to_string(m), fmt(3.15 / k, 3),
                   std::to_string(kTrials), std::to_string(within),
                   fmt(sum_err / kTrials, 4)});
  }
  table.print();
}

void reduction_table() {
  Table table({"per-side n", "instance", "declared", "cut bits",
               "cut bits / n", "max bits/node"});
  Xoshiro256 rng(11);
  for (const std::size_t per_side : {16UL, 64UL, 256UL, 1024UL}) {
    for (const bool disjoint : {true, false}) {
      const auto inst = generate_disjointness(
          per_side, disjoint ? 0 : per_side / 4, 1 << 24, rng);
      const auto rep = core::solve_disjointness_via_count_distinct(
          inst.side_a, inst.side_b);
      table.add_row(
          {std::to_string(per_side), disjoint ? "disjoint" : "overlapping",
           rep.declared_disjoint ? "disjoint" : "overlapping",
           fmt_bits(rep.cut_bits),
           fmt(static_cast<double>(rep.cut_bits) /
               static_cast<double>(per_side)),
           fmt_bits(rep.max_node_bits)});
    }
  }
  table.print();
  std::cout << "(cut bits / n approaching a constant ~= value-entropy "
               "confirms the Omega(n) information flow across the A|B "
               "cut that Theorem 5.1's reduction forces.)\n\n";
}

void run() {
  print_banner(
      "EXP-T51", "Theorem 5.1 + Section 5",
      "exact COUNT_DISTINCT is linear in D (and the 2SD reduction moves "
      "Omega(n) bits across the cut); hashed-LogLog approximation is flat "
      "in D and within (1 +- 3.15/k) w.p. ~99%");
  linear_vs_flat_table();
  approx_accuracy_table();
  reduction_table();
}

}  // namespace
}  // namespace sensornet::bench

int main() {
  sensornet::bench::run();
  return 0;
}
