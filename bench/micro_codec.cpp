// Microbenchmarks: bit I/O, Elias codecs, and a full aggregation wave
// (google-benchmark).
#include <benchmark/benchmark.h>

#include "src/common/codec.hpp"
#include "src/common/rng.hpp"
#include "src/net/topology.hpp"
#include "src/proto/aggregations.hpp"
#include "src/proto/tree_wave.hpp"

namespace {

using namespace sensornet;

void BM_BitWriterChunks(benchmark::State& state) {
  for (auto _ : state) {
    BitWriter w;
    for (int i = 0; i < 64; ++i) {
      w.write_bits(0xABCDEF0123456789ULL, 37);
    }
    benchmark::DoNotOptimize(w.bytes());
  }
}
BENCHMARK(BM_BitWriterChunks);

void BM_EliasDeltaRoundTrip(benchmark::State& state) {
  Xoshiro256 rng(1);
  std::vector<std::uint64_t> values(256);
  for (auto& v : values) v = (rng.next_u64() >> rng.next_below(60)) | 1;
  for (auto _ : state) {
    BitWriter w;
    for (const auto v : values) elias_delta_encode(w, v);
    BitReader r(w.bytes().data(), w.bit_count());
    std::uint64_t sink = 0;
    for (std::size_t i = 0; i < values.size(); ++i) {
      sink ^= elias_delta_decode(r);
    }
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_EliasDeltaRoundTrip);

void BM_PredicateRoundTrip(benchmark::State& state) {
  const auto pred = proto::Predicate::less_than(123456);
  for (auto _ : state) {
    BitWriter w;
    pred.encode(w);
    BitReader r(w.bytes().data(), w.bit_count());
    auto back = proto::Predicate::decode(r);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_PredicateRoundTrip);

void BM_CountWave(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Network net(net::make_line(n), 7);
  net.set_one_item_per_node(ValueSet(n, 5));
  const auto tree = net::bfs_tree(net.graph(), 0);
  std::uint32_t session = 0;
  for (auto _ : state) {
    proto::TreeWave<proto::CountAgg> wave(tree, session++);
    const auto c = wave.execute(
        net, proto::CountAgg::Request{proto::Predicate::always_true()});
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CountWave)->Arg(64)->Arg(1024);

void BM_LogLogWave(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Network net(net::make_line(n), 7);
  net.set_one_item_per_node(ValueSet(n, 5));
  const auto tree = net::bfs_tree(net.graph(), 0);
  proto::LogLogAgg::Request req;
  req.registers = 64;
  req.width = 6;
  std::uint32_t session = 0;
  for (auto _ : state) {
    proto::TreeWave<proto::LogLogAgg> wave(tree, session++);
    const auto regs = wave.execute(net, req);
    benchmark::DoNotOptimize(regs);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_LogLogWave)->Arg(64)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
