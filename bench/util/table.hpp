// Markdown table rendering for the experiment harnesses.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

namespace sensornet::bench {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  /// Renders an aligned GitHub-flavoured Markdown table.
  void print(std::ostream& os = std::cout) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double.
std::string fmt(double v, int precision = 2);

/// Integer with thousands separators (1234567 -> "1,234,567").
std::string fmt_bits(std::uint64_t v);

/// Experiment banner: id, paper anchor, one-line claim.
void print_banner(const std::string& id, const std::string& anchor,
                  const std::string& claim);

}  // namespace sensornet::bench
