#include "util/experiment.hpp"

#include <algorithm>

namespace sensornet::bench {

Deployment make_deployment(net::TopologyKind topology, std::size_t n,
                           WorkloadKind workload, Value max_value,
                           std::uint64_t seed) {
  Xoshiro256 rng(seed);
  net::Graph graph = net::make_topology(topology, n, rng);
  const std::size_t actual = graph.node_count();
  Deployment d;
  d.items = generate_workload(workload, actual, max_value, rng);
  d.net = std::make_unique<sim::Network>(std::move(graph), seed ^ 0x9e37);
  d.net->set_one_item_per_node(d.items);
  d.tree = net::bfs_tree(d.net->graph(), 0);
  return d;
}

std::uint64_t window_max_node_bits(
    const sim::Network& net, const std::vector<sim::NodeCommStats>& before) {
  std::uint64_t best = 0;
  for (NodeId u = 0; u < net.node_count(); ++u) {
    const auto& now = net.stats(u);
    const std::uint64_t bits =
        (now.payload_bits_sent - before[u].payload_bits_sent) +
        (now.payload_bits_received - before[u].payload_bits_received);
    best = std::max(best, bits);
  }
  return best;
}

}  // namespace sensornet::bench
