// Faithful replica of the seed simulator's hot path, kept as the in-run
// baseline for perf_driver.
//
// This is intentionally the OLD architecture, preserved verbatim in
// behavior: adjacency-list graph with linear has_edge scans, one heap
// vector per message payload, per-receiver deep copies in send_medium, and
// a (time, seq) priority queue backed by an append-only in_flight_ message
// store that grows for the whole run. perf_driver runs every scenario on
// this and on sim::Network in the same process and reports the ratio, so
// speedups are measured against the real seed algorithm on the same
// hardware, same inputs, same loss stream — not against a remembered
// number. Do not "fix" this file when the production simulator changes.
#pragma once

#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "src/common/bitio.hpp"
#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/common/types.hpp"
#include "src/net/graph.hpp"
#include "src/sim/comm_stats.hpp"
#include "src/sim/message.hpp"

namespace sensornet::bench {

/// The seed's adjacency-list graph: neighbors in insertion order, has_edge
/// by linear scan of the lower-degree endpoint's list.
class LegacyGraph {
 public:
  explicit LegacyGraph(std::size_t node_count) : adjacency_(node_count) {}

  /// Builds the legacy adjacency image of a CSR graph (same edges, same
  /// per-node neighbor order).
  static LegacyGraph from(const net::Graph& g) {
    LegacyGraph out(g.node_count());
    for (NodeId u = 0; u < g.node_count(); ++u) {
      for (const NodeId v : g.neighbors(u)) {
        if (u < v) out.add_edge(u, v);
      }
    }
    return out;
  }

  void add_edge(NodeId u, NodeId v) {
    adjacency_[u].push_back(v);
    adjacency_[v].push_back(u);
  }

  bool has_edge(NodeId u, NodeId v) const {
    const auto& smaller = adjacency_[u].size() <= adjacency_[v].size()
                              ? adjacency_[u]
                              : adjacency_[v];
    const NodeId target =
        adjacency_[u].size() <= adjacency_[v].size() ? v : u;
    for (const NodeId x : smaller) {
      if (x == target) return true;
    }
    return false;
  }

  std::size_t node_count() const { return adjacency_.size(); }
  const std::vector<NodeId>& neighbors(NodeId u) const {
    return adjacency_[u];
  }

 private:
  std::vector<std::vector<NodeId>> adjacency_;
};

/// The seed's wire unit: one heap-allocated byte vector per message.
struct LegacyMessage {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  std::uint32_t session = 0;
  std::uint16_t kind = 0;
  std::vector<std::uint8_t> payload;
  std::uint32_t payload_bits = 0;

  static LegacyMessage make(NodeId from, NodeId to, std::uint32_t session,
                            std::uint16_t kind, BitWriter&& w) {
    LegacyMessage m;
    m.from = from;
    m.to = to;
    m.session = session;
    m.kind = kind;
    m.payload_bits = static_cast<std::uint32_t>(w.bit_count());
    m.payload = w.take_bytes();
    return m;
  }

  BitReader reader() const { return BitReader(payload.data(), payload_bits); }
};

class LegacyNetwork;

class LegacyProtocolHandler {
 public:
  virtual ~LegacyProtocolHandler() = default;
  virtual void on_message(LegacyNetwork& net, NodeId receiver,
                          const LegacyMessage& msg) = 0;
};

/// The seed's event loop: std::priority_queue over (time, seq) plus an
/// append-only in_flight_ store reclaimed only when a run drains.
class LegacyNetwork {
 public:
  explicit LegacyNetwork(LegacyGraph graph)
      : graph_(std::move(graph)), stats_(graph_.node_count()) {}

  std::size_t node_count() const { return graph_.node_count(); }
  const LegacyGraph& graph() const { return graph_; }

  void set_message_loss(double p) { loss_probability_ = p; }

  void send(LegacyMessage msg) {
    if (!graph_.has_edge(msg.from, msg.to)) {
      throw ProtocolError("legacy send: no link");
    }
    charge_send(msg.from, msg);
    if (loss_probability_ > 0.0 && loss_rng_.next_bool(loss_probability_)) {
      return;
    }
    charge_receive(msg.to, msg);
    if ((msg.from == watch_u_ && msg.to == watch_v_) ||
        (msg.from == watch_v_ && msg.to == watch_u_)) {
      watched_bits_ += msg.payload_bits;
    }
    const NodeId to = msg.to;
    schedule(std::move(msg), to);
  }

  void send_medium(LegacyMessage msg) {
    charge_send(msg.from, msg);
    for (NodeId u = 0; u < node_count(); ++u) {
      if (u == msg.from) continue;
      if (!graph_.has_edge(msg.from, u)) {
        throw ProtocolError("legacy send_medium: not single-hop");
      }
      if (loss_probability_ > 0.0 && loss_rng_.next_bool(loss_probability_)) {
        continue;
      }
      charge_receive(u, msg);
      LegacyMessage copy = msg;  // the seed's per-receiver deep copy
      schedule(std::move(copy), u);
    }
  }

  void run(LegacyProtocolHandler& handler,
           std::uint64_t max_deliveries = 1ULL << 32) {
    std::uint64_t delivered = 0;
    while (!queue_.empty()) {
      const PendingDelivery next = queue_.top();
      queue_.pop();
      now_ = next.at;
      LegacyMessage msg = std::move(in_flight_[next.msg_index]);
      live_payload_bytes_ -= msg.payload.capacity();
      handler.on_message(*this, msg.to, msg);
      if (++delivered > max_deliveries) {
        throw ProtocolError("legacy run: delivery budget exceeded");
      }
    }
    in_flight_.clear();
    seq_ = 0;
  }

  SimTime now() const { return now_; }
  const sim::NodeCommStats& stats(NodeId node) const { return stats_[node]; }
  const std::vector<sim::NodeCommStats>& all_stats() const { return stats_; }

  /// Same metric as sim::Network::peak_in_flight_bytes(): payload heap bytes
  /// held by undelivered messages plus the message-store footprint.
  std::size_t peak_in_flight_bytes() const { return peak_in_flight_bytes_; }

 private:
  struct PendingDelivery {
    SimTime at;
    std::uint64_t seq;
    std::size_t msg_index;
  };
  struct DeliveryOrder {
    bool operator()(const PendingDelivery& a, const PendingDelivery& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  void charge_send(NodeId node, const LegacyMessage& msg) {
    auto& st = stats_[node];
    st.payload_bits_sent += msg.payload_bits;
    st.header_bits_sent += sim::kHeaderBits;
    st.messages_sent += 1;
  }

  void charge_receive(NodeId node, const LegacyMessage& msg) {
    auto& st = stats_[node];
    st.payload_bits_received += msg.payload_bits;
    st.header_bits_received += sim::kHeaderBits;
    st.messages_received += 1;
  }

  void schedule(LegacyMessage msg, NodeId to) {
    msg.to = to;
    live_payload_bytes_ += msg.payload.capacity();
    in_flight_.push_back(std::move(msg));
    queue_.push(PendingDelivery{now_ + 1, seq_++, in_flight_.size() - 1});
    const std::size_t footprint =
        live_payload_bytes_ + in_flight_.capacity() * sizeof(LegacyMessage);
    if (footprint > peak_in_flight_bytes_) peak_in_flight_bytes_ = footprint;
  }

  LegacyGraph graph_;
  Xoshiro256 loss_rng_{0x10c5};
  double loss_probability_ = 0.0;
  std::vector<sim::NodeCommStats> stats_;
  std::vector<LegacyMessage> in_flight_;
  std::priority_queue<PendingDelivery, std::vector<PendingDelivery>,
                      DeliveryOrder>
      queue_;
  SimTime now_ = 0;
  std::uint64_t seq_ = 0;
  NodeId watch_u_ = kNoNode;
  NodeId watch_v_ = kNoNode;
  std::uint64_t watched_bits_ = 0;
  std::size_t live_payload_bytes_ = 0;
  std::size_t peak_in_flight_bytes_ = 0;
};

}  // namespace sensornet::bench
