// Shared experiment plumbing: deployments and measurement windows.
#pragma once

#include <cstdint>
#include <memory>

#include "src/common/workload.hpp"
#include "src/net/spanning_tree.hpp"
#include "src/net/topology.hpp"
#include "src/obs/metrics.hpp"
#include "src/sim/network.hpp"

namespace sensornet::bench {

/// A loaded network plus its aggregation tree.
struct Deployment {
  std::unique_ptr<sim::Network> net;
  net::SpanningTree tree;
  ValueSet items;  // flattened ground truth (one per node)
};

/// Builds a topology of ~n nodes, loads one reading per node from the
/// workload, roots the tree at node 0.
Deployment make_deployment(net::TopologyKind topology, std::size_t n,
                           WorkloadKind workload, Value max_value,
                           std::uint64_t seed);

/// Reusable deployment for repeated trials over one configuration.
///
/// Building a deployment pays for topology construction, BFS-tree rooting
/// and workload generation; a trial only needs fresh *simulation* state.
/// The arena builds the skeleton once and re-arms the network per lease via
/// sim::Network::reset(), which leaves it byte-identical to the Deployment
/// make_deployment() would return for the same arguments — loss probability
/// and watched edges are cleared, so trials re-apply their own knobs.
///
/// Not thread-safe: under a TrialFarm, give each matrix cell its own arena
/// (cells that share one would race on the single cached network).
class DeploymentArena {
 public:
  DeploymentArena(net::TopologyKind topology, std::size_t n,
                  WorkloadKind workload, Value max_value, std::uint64_t seed)
      : seed_(seed),
        deployment_(make_deployment(topology, n, workload, max_value, seed)) {
  }

  /// The cached deployment, reset to its freshly built state.
  Deployment& lease() {
    ++leases_;
    if (leases_ > 1) {
      deployment_.net->reset(seed_ ^ 0x9e37);
      // Every bench gets its rebuilds-absorbed number in the shared
      // registry for free — one gauge_add per re-lease, across all arenas.
      obs::Registry& reg = obs::Registry::global();
      reg.gauge_add(reg.gauge("bench.arena.rebuilds_absorbed"), 1);
    }
    return deployment_;
  }

  /// Trials served so far.
  std::uint64_t leases() const { return leases_; }
  /// Topology + tree + workload constructions the cache absorbed.
  std::uint64_t rebuilds_avoided() const {
    return leases_ > 0 ? leases_ - 1 : 0;
  }

 private:
  std::uint64_t seed_;
  Deployment deployment_;
  std::uint64_t leases_ = 0;
};

/// Max bits (sent+received) any node paid between two snapshots.
std::uint64_t window_max_node_bits(
    const sim::Network& net, const std::vector<sim::NodeCommStats>& before);

}  // namespace sensornet::bench
