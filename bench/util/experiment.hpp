// Shared experiment plumbing: deployments and measurement windows.
#pragma once

#include <cstdint>
#include <memory>

#include "src/common/workload.hpp"
#include "src/net/spanning_tree.hpp"
#include "src/net/topology.hpp"
#include "src/sim/network.hpp"

namespace sensornet::bench {

/// A loaded network plus its aggregation tree.
struct Deployment {
  std::unique_ptr<sim::Network> net;
  net::SpanningTree tree;
  ValueSet items;  // flattened ground truth (one per node)
};

/// Builds a topology of ~n nodes, loads one reading per node from the
/// workload, roots the tree at node 0.
Deployment make_deployment(net::TopologyKind topology, std::size_t n,
                           WorkloadKind workload, Value max_value,
                           std::uint64_t seed);

/// Max bits (sent+received) any node paid between two snapshots.
std::uint64_t window_max_node_bits(
    const sim::Network& net, const std::vector<sim::NodeCommStats>& before);

}  // namespace sensornet::bench
