#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace sensornet::bench {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << " " << std::setw(static_cast<int>(widths[c])) << cells[c] << " |";
    }
    os << "\n";
  };
  print_row(headers_);
  os << "|";
  for (const auto w : widths) {
    os << std::string(w + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
  os << "\n";
}

std::string fmt(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string fmt_bits(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

void print_banner(const std::string& id, const std::string& anchor,
                  const std::string& claim) {
  std::cout << "\n## " << id << " — " << anchor << "\n\n"
            << "Claim: " << claim << "\n\n";
}

}  // namespace sensornet::bench
