// EXP-CMP — Section 1's related-work landscape as one table: every median
// algorithm in the library on the same deployment. Who wins on individual
// communication, at what accuracy, and where the crossovers fall.
#include <cmath>
#include <cstdint>

#include "src/baseline/gk_median.hpp"
#include "src/baseline/sampling_median.hpp"
#include "src/baseline/singlehop_median.hpp"
#include "src/baseline/tag_collect.hpp"
#include "src/common/mathutil.hpp"
#include "src/core/apx_median.hpp"
#include "src/core/apx_median2.hpp"
#include "src/core/det_median.hpp"
#include "src/proto/counting_service.hpp"
#include "util/experiment.hpp"
#include "util/table.hpp"

namespace sensornet::bench {
namespace {

struct Row {
  std::string name;
  Value value = 0;
  std::uint64_t max_bits = 0;
  std::uint64_t total_bits = 0;
  std::uint64_t rounds = 0;
  bool exact = false;
};

Row measure(const std::string& name, const ValueSet& items, Value result,
            const sim::Network& net, bool exact) {
  Row r;
  r.name = name;
  r.value = result;
  const auto s = net.summary();
  r.max_bits = s.max_node_bits;
  r.total_bits = s.total_bits;
  r.rounds = s.rounds;
  r.exact = exact;
  (void)items;
  return r;
}

void comparison_at(std::size_t n, Value X, bool include_randomized) {
  Xoshiro256 rng(77);
  const ValueSet xs = generate_workload(WorkloadKind::kUniform, n, X, rng);
  const Value truth = reference_median(xs);
  std::vector<Row> rows;

  const auto fresh_grid = [&]() {
    auto net = std::make_unique<sim::Network>(
        net::make_grid(static_cast<std::size_t>(std::sqrt(n)),
                       n / static_cast<std::size_t>(std::sqrt(n))),
        99);
    for (NodeId u = 0; u < net->node_count(); ++u) {
      if (u < n) net->set_items(u, {xs[u]});
    }
    return net;
  };

  {
    auto net = fresh_grid();
    const auto tree = net::bfs_tree(net->graph(), 0);
    proto::TreeCountingService svc(*net, tree);
    const auto res = core::deterministic_median(svc);
    rows.push_back(measure("Fig.1 deterministic (this paper)", xs, res.value,
                           *net, true));
  }
  if (include_randomized) {
    auto net = fresh_grid();
    const auto tree = net::bfs_tree(net->graph(), 0);
    proto::TreeCountingService minmax(*net, tree);
    proto::ApxCountConfig cfg;
    cfg.registers = 64;
    proto::TreeApproxCountingService counter(*net, tree, cfg);
    core::ApxSelectionParams params;
    params.epsilon = 0.25;
    params.rep_scale = 0.05;  // practical schedule
    const auto res = core::approx_median(minmax, counter, params);
    rows.push_back(measure("Fig.2 randomized (this paper)", xs, res.value,
                           *net, false));
  }
  if (include_randomized) {
    auto net = fresh_grid();
    const auto tree = net::bfs_tree(net->graph(), 0);
    core::ApxMedian2Params params;
    params.beta = 1.0 / 256;
    params.epsilon = 0.25;
    params.rep_scale = 0.05;
    params.registers = 64;
    params.max_value_bound = X;
    const auto res = core::approx_median2(*net, tree, params);
    rows.push_back(measure("Fig.4 polyloglog (this paper)", xs, res.value,
                           *net, false));
  }
  {
    auto net = fresh_grid();
    const auto tree = net::bfs_tree(net->graph(), 0);
    const auto res = baseline::tag_collect_median(*net, tree);
    rows.push_back(measure("TAG collect-all [9]", xs, res.median, *net, true));
  }
  {
    auto net = fresh_grid();
    const auto tree = net::bfs_tree(net->graph(), 0);
    const auto res = baseline::sampling_median(*net, tree, 64);
    rows.push_back(
        measure("uniform sampling (s=64) [10]", xs, res.median, *net, false));
  }
  {
    auto net = fresh_grid();
    const auto tree = net::bfs_tree(net->graph(), 0);
    const auto res = baseline::gk_median(*net, tree, 16);
    rows.push_back(
        measure("GK summary (B=16) [4]", xs, res.median, *net, false));
  }
  if (n <= 512) {
    sim::Network net(net::make_complete(n), 99);
    net.set_one_item_per_node(xs);
    const auto res = baseline::single_hop_median(net, 0, X);
    rows.push_back(
        measure("single-hop presence bits [14]", xs, res.median, net, true));
  }

  Table table({"algorithm", "exact?", "value", "rank err/N", "max bits/node",
               "total bits", "rounds"});
  for (const auto& r : rows) {
    const double rank = static_cast<double>(rank_below(xs, r.value + 1));
    const double err =
        std::abs(rank - static_cast<double>(n) / 2.0) / static_cast<double>(n);
    table.add_row({r.name, r.exact ? "yes" : "no", std::to_string(r.value),
                   fmt(err, 3), fmt_bits(r.max_bits), fmt_bits(r.total_bits),
                   fmt_bits(r.rounds)});
  }
  std::cout << "### N = " << n << ", X = " << X
            << " (true median = " << truth << ")\n\n";
  table.print();
}

void run() {
  print_banner(
      "EXP-CMP", "Section 1 related work",
      "medians compared on one deployment: Fig. 1 beats collect-all at "
      "scale; Fig. 4 undercuts everything on bits once N is large; [14] "
      "trades tiny transmit for huge receive (single-hop only)");
  comparison_at(256, 1 << 16, /*include_randomized=*/true);
  comparison_at(1024, 1 << 20, /*include_randomized=*/true);
  // At 4096 the randomized drivers' repetition schedules dominate bench
  // runtime; their scaling story is EXP-C48's table.
  comparison_at(4096, 1 << 24, /*include_randomized=*/false);
}

}  // namespace
}  // namespace sensornet::bench

int main() {
  sensornet::bench::run();
  return 0;
}
