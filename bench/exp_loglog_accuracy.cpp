// EXP-F22 — Fact 2.2: the LogLog protocol is an alpha-counting protocol with
// sigma * sqrt(m) -> beta_m ~ 1.298 and per-node communication
// O(m log log N). Two tables: estimator accuracy vs m, and distributed
// per-node bits vs (m, N).
#include <cmath>
#include <cstdint>

#include "src/proto/approx_counting.hpp"
#include "src/sketch/hll.hpp"
#include "util/experiment.hpp"
#include "util/table.hpp"

namespace sensornet::bench {
namespace {

void accuracy_table() {
  Table table({"m", "estimator", "mean rel. bias", "sigma-hat * sqrt(m)",
               "predicted sigma * sqrt(m)"});
  Xoshiro256 rng(7);
  constexpr std::uint64_t kTruth = 200000;
  constexpr int kTrials = 40;
  for (const unsigned m : {16u, 64u, 256u, 1024u}) {
    for (const bool hll : {false, true}) {
      double sum = 0;
      double sq = 0;
      for (int t = 0; t < kTrials; ++t) {
        auto regs = sketch::Hll::make_by_registers(m).value();
        for (std::uint64_t i = 0; i < kTruth; ++i) {
          regs.add_random(rng);
        }
        const double est = hll ? regs.estimate() : regs.estimate_loglog();
        const double rel = est / static_cast<double>(kTruth) - 1.0;
        sum += rel;
        sq += rel * rel;
      }
      const double mean = sum / kTrials;
      const double sd = std::sqrt(sq / kTrials - mean * mean);
      const double predicted =
          hll ? sketch::hyperloglog_sigma(m) : sketch::loglog_sigma(m);
      table.add_row({std::to_string(m), hll ? "HyperLogLog" : "LogLog",
                     fmt(mean, 4), fmt(sd * std::sqrt(m), 3),
                     fmt(predicted * std::sqrt(m), 3)});
    }
  }
  table.print();
}

void wire_cost_table() {
  Table table({"N", "m", "register width w", "bits/node (1 invocation)",
               "bits / (m*w)"});
  for (const std::size_t n : {64UL, 1024UL, 16384UL}) {
    for (const unsigned m : {16u, 64u, 256u}) {
      Deployment d = make_deployment(net::TopologyKind::kLine, n,
                                     WorkloadKind::kUniform,
                                     static_cast<Value>(n), 11 + n + m);
      proto::ApxCountConfig cfg;
      cfg.registers = m;
      proto::TreeApproxCountingService svc(*d.net, d.tree, cfg);
      const auto before = d.net->all_stats();
      svc.apx_count(proto::Predicate::always_true());
      const std::uint64_t bits = window_max_node_bits(*d.net, before);
      const unsigned w = sketch::packed_width_for(n + 1);
      table.add_row({std::to_string(n), std::to_string(m), std::to_string(w),
                     fmt_bits(bits),
                     fmt(static_cast<double>(bits) /
                         static_cast<double>(m * w))});
    }
  }
  table.print();
}

void run() {
  print_banner("EXP-F22", "Fact 2.2",
               "LogLog counting: bias ~ 0, sigma*sqrt(m) -> ~1.30 (LogLog) / "
               "~1.04 (HLL); per-node bits ~ m * loglog(N) — note bits/(m*w) "
               "~ 2 (one array uptree, one downtree-free request) regardless "
               "of N");
  accuracy_table();
  wire_cost_table();
}

}  // namespace
}  // namespace sensornet::bench

int main() {
  sensornet::bench::run();
  return 0;
}
