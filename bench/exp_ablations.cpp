// EXP-ABL — design-choice ablations called out in DESIGN.md:
//   A. spanning-tree degree cap (the Section 2.2 remark: bounded degree is
//      required for low *individual* complexity)
//   B. repetition schedule scale (paper constants vs practical)
//   C. header accounting on/off (pure-information vs engineering-honest)
//   D. estimator choice (LogLog vs HyperLogLog at equal wire cost)
#include <algorithm>
#include <cmath>
#include <cstdint>

#include "src/core/apx_median.hpp"
#include "src/core/det_median.hpp"
#include "src/common/mathutil.hpp"
#include "src/proto/approx_counting.hpp"
#include "src/proto/counting_service.hpp"
#include "src/sketch/hll.hpp"
#include "util/experiment.hpp"
#include "util/table.hpp"

namespace sensornet::bench {
namespace {

void degree_cap_table() {
  std::cout << "### A. spanning-tree degree cap (COUNT wave on a single-hop "
               "deployment, N = 512)\n\n";
  Table table({"tree", "max degree", "height", "max bits/node",
               "total bits", "rounds"});
  const std::size_t n = 512;
  for (const unsigned cap : {0u, 2u, 3u, 8u}) {
    sim::Network net(net::make_complete(n), 3);
    net.set_one_item_per_node(ValueSet(n, 7));
    const auto tree = cap == 0 ? net::bfs_tree(net.graph(), 0)
                               : net::capped_bfs_tree(net.graph(), 0, cap);
    proto::TreeCountingService svc(net, tree);
    svc.count_all();
    const auto s = net.summary();
    table.add_row({cap == 0 ? "BFS (star)" : "capped-" + std::to_string(cap),
                   std::to_string(tree.max_degree()),
                   std::to_string(tree.height()), fmt_bits(s.max_node_bits),
                   fmt_bits(s.total_bits), fmt_bits(s.rounds)});
  }
  table.print();
  std::cout << "(the star's hub pays ~N responses; caps trade latency "
               "(height) for individual communication — Fact 2.1 needs the "
               "cap.)\n\n";
}

void schedule_table() {
  std::cout << "### B. repetition schedule scale (Fig. 2, N = 64, X = 255, "
               "eps = 0.25, 10 trials each)\n\n";
  Table table({"rep_scale", "mean APX_COUNT calls", "max bits/node",
               "median rank err/N (mean)"});
  Xoshiro256 rng(11);
  const std::size_t n = 64;
  const ValueSet xs = generate_workload(WorkloadKind::kUniform, n, 255, rng);
  for (const double scale : {1.0, 0.25, 0.05}) {
    double calls = 0;
    double err = 0;
    std::uint64_t bits = 0;
    constexpr int kTrials = 10;
    for (int t = 0; t < kTrials; ++t) {
      sim::Network net(net::make_line(n), 400 + t);
      net.set_one_item_per_node(xs);
      const auto tree = net::bfs_tree(net.graph(), 0);
      proto::TreeCountingService minmax(net, tree);
      proto::ApxCountConfig cfg;
      cfg.registers = 16;
      proto::TreeApproxCountingService counter(net, tree, cfg);
      core::ApxSelectionParams params;
      params.epsilon = 0.25;
      params.rep_scale = scale;
      const auto res = core::approx_median(minmax, counter, params);
      calls += res.apx_count_calls;
      const double rank =
          static_cast<double>(rank_below(xs, res.value + 1));
      err += std::abs(rank - n / 2.0) / n;
      bits = std::max(bits, net.summary().max_node_bits);
    }
    table.add_row({fmt(scale, 2), fmt(calls / 10, 0), fmt_bits(bits),
                   fmt(err / 10, 3)});
  }
  table.print();
}

void header_table() {
  std::cout << "### C. header accounting (Fig. 1 median, N = 1024, grid)\n\n";
  Table table({"accounting", "max bits/node", "total bits"});
  Deployment d = make_deployment(net::TopologyKind::kGrid, 1024,
                                 WorkloadKind::kUniform, 1 << 20, 21);
  proto::TreeCountingService svc(*d.net, d.tree);
  core::deterministic_median(svc);
  const auto payload = d.net->summary(false);
  const auto full = d.net->summary(true);
  table.add_row({"payload only (paper measure)", fmt_bits(payload.max_node_bits),
                 fmt_bits(payload.total_bits)});
  table.add_row({"payload + 24-bit headers", fmt_bits(full.max_node_bits),
                 fmt_bits(full.total_bits)});
  table.print();
}

void estimator_table() {
  std::cout << "### D. estimator choice at equal wire cost (m = 64, N = "
               "4096 observations, 30 trials)\n\n";
  Table table({"estimator", "mean rel. bias", "rel. std dev",
               "predicted sigma"});
  Xoshiro256 rng(31);
  for (const bool hll : {false, true}) {
    double sum = 0;
    double sq = 0;
    constexpr int kTrials = 30;
    constexpr std::uint64_t kTruth = 4096;
    for (int t = 0; t < kTrials; ++t) {
      auto regs = sketch::Hll::make_by_registers(64).value();
      for (std::uint64_t i = 0; i < kTruth; ++i) {
        regs.add_random(rng);
      }
      const double est = hll ? regs.estimate() : regs.estimate_loglog();
      const double rel = est / static_cast<double>(kTruth) - 1.0;
      sum += rel;
      sq += rel * rel;
    }
    const double mean = sum / 30;
    table.add_row({hll ? "HyperLogLog" : "LogLog", fmt(mean, 4),
                   fmt(std::sqrt(sq / 30 - mean * mean), 4),
                   fmt(hll ? sketch::hyperloglog_sigma(64)
                           : sketch::loglog_sigma(64),
                       4)});
  }
  table.print();
}

void run() {
  print_banner("EXP-ABL", "design ablations",
               "degree caps, repetition schedules, header accounting, and "
               "estimator choice — each knob isolated");
  degree_cap_table();
  schedule_table();
  header_table();
  estimator_table();
}

}  // namespace
}  // namespace sensornet::bench

int main() {
  sensornet::bench::run();
  return 0;
}
