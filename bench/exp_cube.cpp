// EXP — multiresolution aggregation cube: query-cost cliff vs pure tree
// collection (BENCH_PR10.json).
//
// Four lanes, one report:
//
//  1. Cached-range bits — an overlapping continuous-query lane (whole-domain
//     and dyadic-aligned ranges, a couple of unaligned stragglers) runs on
//     identical deployments twice: once with the cube enabled (cell covers
//     kept incrementally fresh off the dirty-mark wave, drift brackets for
//     tolerant subscribers) and once in naive mode (every due query re-runs
//     the one-shot tree executor). The claim gated here and in CI: the cube
//     ships at least 5x fewer total bits on this lane.
//
//  2. Oracle identity — every exact (ERROR-free) answer from the cube run
//     must be BYTE-identical (bit_cast of the double) to the naive
//     tree-collected answer for the same query at the same epoch; every
//     tolerant answer must contain the mirror-recomputed truth within its
//     deterministic bound. Violations are FATAL.
//
//  3. Region sweep — one-shot SUM over regions from a single cell to the
//     whole domain, aligned and unaligned. For each region: the cold cost
//     (first cube serve, geometry install included), the warm repeat cost
//     (cells fresh: zero for pure-cell covers, residue-only for unaligned
//     ends), and the pure tree-collection cost. This is the cost cliff the
//     planner's bit model navigates.
//
//  4. Determinism — the cube lane replayed at 1/2/8 submit_batch workers;
//     an FNV-1a checksum over the full answer stream must be identical at
//     every count.
//
// A fifth mini-lane repeats the identity check for COUNT_DISTINCT: the
// cube's maintained HLL partials replicate the one-shot protocol's sketch
// geometry, so estimates must match bit for bit too.
//
// Usage: exp_cube [--quick] [--out PATH] [--threads N]
//   --quick    smaller deployment / fewer epochs (CI smoke lane)
//   --out      output JSON path (default: BENCH_PR10.json)
//   --threads  submit_batch farm workers; 0 = hardware concurrency
#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/trial_farm.hpp"
#include "src/common/types.hpp"
#include "src/net/spanning_tree.hpp"
#include "src/net/topology.hpp"
#include "src/service/engine.hpp"
#include "src/sim/network.hpp"

namespace sensornet::bench {
namespace {

using service::Answer;
using service::QueryService;
using service::SensorUpdate;
using service::ServiceConfig;

constexpr Value kBound = 1000;

struct Scale {
  unsigned grid_side;    // cached-range deployment is side x side
  std::uint32_t epochs;  // cached-range lane epochs
  unsigned sweep_side;   // region-sweep deployment
  unsigned distinct_side;
  std::uint32_t distinct_epochs;
};

constexpr Scale kFull = {24, 32, 16, 16, 10};
constexpr Scale kQuick = {12, 10, 10, 10, 6};

struct Fnv1a {
  std::uint64_t h = 1469598103934665603ull;
  void mix_bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  }
  void mix_u64(std::uint64_t v) { mix_bytes(&v, sizeof v); }
  void mix_answer(const Answer& a) {
    mix_u64(a.id);
    mix_u64(a.epoch);
    mix_u64(std::bit_cast<std::uint64_t>(a.value));
    mix_u64(std::bit_cast<std::uint64_t>(a.error_bound));
    mix_u64((a.exact ? 1u : 0u) | (a.from_cache ? 2u : 0u) |
            (a.empty_selection ? 4u : 0u));
  }
};

// ---------------------------------------------------------------------------
// Cached-range lane.
// ---------------------------------------------------------------------------
struct ContinuousSpec {
  query::AggregateKind agg;
  Value lo, hi;  // region (0..kBound == whole domain)
  unsigned every;
  double error;  // 0 = exact subscriber (byte-compared against the oracle)
};

/// Whole-domain and dyadic-aligned regions dominate — the cube's home turf —
/// with two unaligned stragglers so residue collection stays on the path.
std::vector<ContinuousSpec> continuous_specs() {
  using query::AggregateKind;
  return {
      // Whole domain: one incrementally-fresh root cell serves them all.
      {AggregateKind::kCount, 0, kBound, 1, 0.0},
      {AggregateKind::kSum, 0, kBound, 2, 0.0},
      {AggregateKind::kSum, 0, kBound, 1, 0.1},
      {AggregateKind::kAvg, 0, kBound, 1, 0.1},
      {AggregateKind::kCount, 0, kBound, 1, 0.05},
      {AggregateKind::kSum, 0, kBound, 2, 0.2},
      {AggregateKind::kAvg, 0, kBound, 2, 0.15},
      // Dyadic-aligned ranges: exactly one maintained cell each.
      {AggregateKind::kSum, 0, 499, 2, 0.0},
      {AggregateKind::kCount, 0, 499, 1, 0.15},
      {AggregateKind::kAvg, 0, 499, 2, 0.15},
      {AggregateKind::kSum, 500, kBound, 1, 0.15},
      {AggregateKind::kCount, 250, 499, 1, 0.15},
      {AggregateKind::kSum, 750, kBound, 2, 0.2},
      // Unaligned stragglers: covers need residue ends.
      {AggregateKind::kSum, 100, 580, 4, 0.2},
      {AggregateKind::kCount, 730, 900, 4, 0.2},
  };
}

std::string spec_text(const ContinuousSpec& s) {
  using query::AggregateKind;
  std::ostringstream os;
  os << "SELECT ";
  switch (s.agg) {
    case AggregateKind::kCount: os << "COUNT"; break;
    case AggregateKind::kSum: os << "SUM"; break;
    case AggregateKind::kAvg: os << "AVG"; break;
    case AggregateKind::kMin: os << "MIN"; break;
    case AggregateKind::kMax: os << "MAX"; break;
    default: os << "COUNT"; break;
  }
  os << "(v) FROM s";
  if (s.lo != 0 || s.hi != kBound) {
    os << " WHERE v BETWEEN " << s.lo << " AND " << s.hi;
  }
  os << " EVERY " << s.every << " EPOCHS";
  if (s.error > 0.0) os << " ERROR " << s.error;
  return os.str();
}

double exact_over(const std::vector<Value>& mirror, const ContinuousSpec& s,
                  bool& empty) {
  std::uint64_t count = 0;
  std::int64_t sum = 0;
  for (Value v : mirror) {
    if (v < s.lo || v > s.hi) continue;
    ++count;
    sum += v;
  }
  empty = count == 0;
  switch (s.agg) {
    case query::AggregateKind::kCount: return static_cast<double>(count);
    case query::AggregateKind::kSum: return static_cast<double>(sum);
    case query::AggregateKind::kAvg:
      return empty ? 0.0 : static_cast<double>(sum) / count;
    default: return 0.0;
  }
}

struct LaneRun {
  std::vector<Answer> answers;  // flattened, epoch-major, admission order
  std::uint64_t total_bits = 0;
  std::uint64_t bound_checked = 0;
  std::uint64_t bound_violations = 0;
  std::uint64_t checksum = 0;
  service::TelemetrySnapshot telemetry;
};

/// Runs the cached-range scenario once. Deterministic for a fixed scale
/// regardless of `threads` — that invariance is lane 4.
LaneRun run_cached_lane(const Scale& s, unsigned threads, bool with_cube) {
  const unsigned n = s.grid_side * s.grid_side;
  sim::Network net(net::make_grid(s.grid_side, s.grid_side),
                   /*master_seed=*/77);
  const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
  std::vector<Value> mirror(n);
  for (NodeId u = 0; u < n; ++u) {
    mirror[u] = static_cast<Value>((u * 37) % (kBound + 1));
  }
  net.set_one_item_per_node(mirror);

  ServiceConfig cfg;
  cfg.threads = threads;
  cfg.use_cube = with_cube;
  cfg.share_aggregation = false;  // cube vs raw per-query execution
  cfg.use_cache = with_cube;
  QueryService svc(query::Deployment{net, tree, kBound}, cfg);

  const std::vector<ContinuousSpec> specs = continuous_specs();
  std::vector<std::string> texts;
  texts.reserve(specs.size());
  for (const auto& spec : specs) texts.push_back(spec_text(spec));

  Fnv1a sum;
  LaneRun lane;
  std::vector<service::QueryId> ids;
  for (const auto& r : svc.submit_batch(texts)) {
    if (!r.ok()) {
      std::cerr << "FATAL: cached-range admission failed: " << r.error()
                << "\n";
      std::exit(1);
    }
    ids.push_back(r.value().id);
    sum.mix_u64(r.value().id);
  }

  for (std::uint32_t e = 1; e <= s.epochs; ++e) {
    // A quarter of the deployment drifts each epoch: incremental refresh
    // always has clean subtrees to skip, but never goes fully quiescent.
    std::vector<SensorUpdate> batch;
    for (NodeId u = e % 4; u < n; u += 4) {
      const Value delta = (u + e) % 2 == 0 ? 3 : -3;
      const Value v = std::clamp<Value>(mirror[u] + delta, 0, kBound);
      mirror[u] = v;
      batch.push_back(SensorUpdate{u, v});
    }
    for (const Answer& a : svc.run_epoch(batch)) {
      sum.mix_answer(a);
      const ContinuousSpec& spec = specs[a.id - ids.front()];
      // Deterministic-bound soundness applies to the cube run only: in
      // naive mode a tolerant query runs a randomized approximation
      // protocol whose guarantee is statistical, not a drift bracket.
      if (with_cube && spec.error > 0.0) {
        // Tolerant answers: the deterministic bound must contain the truth.
        ++lane.bound_checked;
        bool empty = false;
        const double truth = exact_over(mirror, spec, empty);
        if (!empty && std::abs(a.value - truth) > a.error_bound + 1e-9) {
          ++lane.bound_violations;
          std::cerr << "bound violation: id=" << a.id << " epoch=" << e
                    << " value=" << a.value << " truth=" << truth
                    << " bound=" << a.error_bound << "\n";
        }
      }
      lane.answers.push_back(a);
    }
  }

  lane.total_bits = net.summary(/*include_headers=*/true).total_bits;
  lane.telemetry = svc.telemetry_snapshot();
  sum.mix_u64(lane.total_bits);
  lane.checksum = sum.h;
  return lane;
}

/// Byte-compares the exact answers of a cube run against the naive oracle
/// run (same specs, same drift, same due schedule -> same answer order).
std::uint64_t count_oracle_mismatches(const LaneRun& cube,
                                      const LaneRun& naive) {
  if (cube.answers.size() != naive.answers.size()) {
    std::cerr << "FATAL: answer streams diverged in shape ("
              << cube.answers.size() << " vs " << naive.answers.size()
              << ")\n";
    std::exit(1);
  }
  const std::vector<ContinuousSpec> specs = continuous_specs();
  std::uint64_t mismatches = 0;
  for (std::size_t i = 0; i < cube.answers.size(); ++i) {
    const Answer& c = cube.answers[i];
    const Answer& n = naive.answers[i];
    const ContinuousSpec& spec = specs[c.id - 1];  // fresh service: ids 1..N
    if (spec.error > 0.0) continue;  // tolerant: bound-checked instead
    if (std::bit_cast<std::uint64_t>(c.value) !=
        std::bit_cast<std::uint64_t>(n.value)) {
      ++mismatches;
      std::cerr << "oracle mismatch: id=" << c.id << " epoch=" << c.epoch
                << " cube=" << std::setprecision(17) << c.value
                << " tree=" << n.value << "\n";
    }
  }
  return mismatches;
}

// ---------------------------------------------------------------------------
// Region-sweep lane.
// ---------------------------------------------------------------------------
struct SweepRow {
  Value lo = 0, hi = 0;
  bool whole = false;
  std::uint64_t first_bits = 0;   // cold cube serve (geometry install incl.)
  std::uint64_t repeat_bits = 0;  // warm repeat: the marginal cube cost
  std::uint64_t tree_bits = 0;    // pure tree collection
  std::uint64_t mismatches = 0;
};

SweepRow run_sweep_region(const Scale& s, Value lo, Value hi) {
  SweepRow row;
  row.lo = lo;
  row.hi = hi;
  row.whole = lo == 0 && hi == kBound;
  std::ostringstream os;
  os << "SELECT SUM(v) FROM s";
  if (!row.whole) os << " WHERE v BETWEEN " << lo << " AND " << hi;
  const std::string text = os.str();

  const unsigned n = s.sweep_side * s.sweep_side;
  std::vector<Value> values(n);
  for (NodeId u = 0; u < n; ++u) {
    values[u] = static_cast<Value>((u * 37) % (kBound + 1));
  }

  const auto one_shot = [&](QueryService& svc, sim::Network& net) {
    const auto before = net.summary(true).total_bits;
    const auto r = svc.submit(text);
    if (!r.ok() || !r.value().answer) {
      std::cerr << "FATAL: sweep admission failed: "
                << (r.ok() ? "no answer" : r.error()) << "\n";
      std::exit(1);
    }
    return std::pair{r.value().answer->value,
                     net.summary(true).total_bits - before};
  };

  sim::Network cube_net(net::make_grid(s.sweep_side, s.sweep_side), 5);
  const net::SpanningTree cube_tree = net::bfs_tree(cube_net.graph(), 0);
  cube_net.set_one_item_per_node(values);
  ServiceConfig cube_cfg;
  cube_cfg.use_cube = true;
  cube_cfg.share_aggregation = false;
  cube_cfg.use_cache = false;  // measure the cube itself, not the cache
  QueryService cube_svc(query::Deployment{cube_net, cube_tree, kBound},
                        cube_cfg);

  sim::Network tree_net(net::make_grid(s.sweep_side, s.sweep_side), 5);
  const net::SpanningTree tree_tree = net::bfs_tree(tree_net.graph(), 0);
  tree_net.set_one_item_per_node(values);
  ServiceConfig tree_cfg;
  tree_cfg.share_aggregation = false;
  tree_cfg.use_cache = false;
  QueryService tree_svc(query::Deployment{tree_net, tree_tree, kBound},
                        tree_cfg);

  const auto [v_first, b_first] = one_shot(cube_svc, cube_net);
  const auto [v_repeat, b_repeat] = one_shot(cube_svc, cube_net);
  const auto [v_tree, b_tree] = one_shot(tree_svc, tree_net);
  row.first_bits = b_first;
  row.repeat_bits = b_repeat;
  row.tree_bits = b_tree;
  for (const double v : {v_first, v_repeat}) {
    if (std::bit_cast<std::uint64_t>(v) !=
        std::bit_cast<std::uint64_t>(v_tree)) {
      ++row.mismatches;
      std::cerr << "sweep mismatch [" << lo << "," << hi << "]: cube=" << v
                << " tree=" << v_tree << "\n";
    }
  }
  return row;
}

// ---------------------------------------------------------------------------
// COUNT_DISTINCT identity mini-lane.
// ---------------------------------------------------------------------------
struct DistinctLane {
  std::uint64_t answers = 0;
  std::uint64_t mismatches = 0;
  std::uint64_t cube_bits = 0;
  std::uint64_t tree_bits = 0;
};

DistinctLane run_distinct_lane(const Scale& s, unsigned threads) {
  const unsigned n = s.distinct_side * s.distinct_side;
  const std::vector<std::string> texts = {
      "SELECT COUNT_DISTINCT(v) FROM s EVERY 1 EPOCHS ERROR 0.15",
      "SELECT COUNT_DISTINCT(v) FROM s WHERE v BETWEEN 0 AND 499 "
      "EVERY 2 EPOCHS ERROR 0.15",
  };
  std::vector<Value> mirror(n);
  for (NodeId u = 0; u < n; ++u) {
    mirror[u] = static_cast<Value>((u * 41) % (kBound + 1));
  }

  const auto build = [&](bool with_cube, sim::Network& net,
                         const net::SpanningTree& tree) {
    ServiceConfig cfg;
    cfg.threads = threads;
    cfg.share_aggregation = false;
    cfg.use_cache = false;
    cfg.use_cube = with_cube;
    cfg.cube_distinct_registers = 64;  // ERROR 0.15 plans size to 64
    return QueryService(query::Deployment{net, tree, kBound}, cfg);
  };

  sim::Network cube_net(net::make_grid(s.distinct_side, s.distinct_side), 9);
  const net::SpanningTree cube_tree = net::bfs_tree(cube_net.graph(), 0);
  cube_net.set_one_item_per_node(mirror);
  QueryService cube_svc = build(true, cube_net, cube_tree);

  sim::Network tree_net(net::make_grid(s.distinct_side, s.distinct_side), 9);
  const net::SpanningTree tree_tree = net::bfs_tree(tree_net.graph(), 0);
  tree_net.set_one_item_per_node(mirror);
  QueryService tree_svc = build(false, tree_net, tree_tree);

  DistinctLane lane;
  for (const auto& t : texts) {
    if (!cube_svc.submit(t).ok() || !tree_svc.submit(t).ok()) {
      std::cerr << "FATAL: distinct-lane admission failed\n";
      std::exit(1);
    }
  }
  for (std::uint32_t e = 1; e <= s.distinct_epochs; ++e) {
    std::vector<SensorUpdate> batch;
    for (NodeId u = e % 5; u < n; u += 5) {
      const Value v =
          std::clamp<Value>(mirror[u] + ((u + e) % 2 == 0 ? 4 : -4), 0,
                            kBound);
      mirror[u] = v;
      batch.push_back(SensorUpdate{u, v});
    }
    std::vector<SensorUpdate> twin = batch;
    const auto ca = cube_svc.run_epoch(batch);
    const auto na = tree_svc.run_epoch(twin);
    if (ca.size() != na.size()) {
      std::cerr << "FATAL: distinct answer streams diverged in shape\n";
      std::exit(1);
    }
    for (std::size_t i = 0; i < ca.size(); ++i) {
      ++lane.answers;
      if (std::bit_cast<std::uint64_t>(ca[i].value) !=
          std::bit_cast<std::uint64_t>(na[i].value)) {
        ++lane.mismatches;
        std::cerr << "distinct mismatch: epoch=" << e
                  << " cube=" << std::setprecision(17) << ca[i].value
                  << " tree=" << na[i].value << "\n";
      }
    }
  }
  lane.cube_bits = cube_net.summary(true).total_bits;
  lane.tree_bits = tree_net.summary(true).total_bits;
  return lane;
}

// ---------------------------------------------------------------------------
// Report.
// ---------------------------------------------------------------------------
struct DeterminismRow {
  unsigned threads = 0;
  std::uint64_t checksum = 0;
};

void write_json(std::ostream& os, const Scale& s, bool quick, unsigned threads,
                const LaneRun& cube, const LaneRun& naive,
                std::uint64_t oracle_mismatches,
                const std::vector<SweepRow>& sweep,
                const DistinctLane& distinct,
                const std::vector<DeterminismRow>& det) {
  const double ratio =
      cube.total_bits > 0
          ? static_cast<double>(naive.total_bits) / cube.total_bits
          : 0.0;
  bool deterministic = true;
  for (const auto& row : det) {
    deterministic = deterministic && row.checksum == det.front().checksum;
  }
  const std::uint64_t sweep_mismatches = [&] {
    std::uint64_t m = 0;
    for (const auto& r : sweep) m += r.mismatches;
    return m;
  }();
  const std::uint64_t total_mismatches =
      oracle_mismatches + sweep_mismatches + distinct.mismatches;
  const service::TelemetrySnapshot& t = cube.telemetry;

  os << "{\n"
     << "  \"bench\": \"BENCH_PR10\",\n"
     << "  \"schema_version\": 1,\n"
     << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
     << "  \"threads\": " << threads << ",\n"
     << "  \"hardware_threads\": " << resolve_thread_count(0) << ",\n"
     << "  \"cached_range\": {\n"
     << "    \"nodes\": " << s.grid_side * s.grid_side << ",\n"
     << "    \"epochs\": " << s.epochs << ",\n"
     << "    \"continuous_queries\": " << continuous_specs().size() << ",\n"
     << "    \"bits_cube\": " << cube.total_bits << ",\n"
     << "    \"bits_tree\": " << naive.total_bits << ",\n"
     << "    \"bits_ratio\": " << std::setprecision(3) << std::fixed << ratio
     << ",\n"
     << "    \"answers\": " << cube.answers.size() << ",\n"
     << "    \"cube_fresh_answers\": " << t.totals.cube_fresh_answers << ",\n"
     << "    \"cube_stale_answers\": " << t.totals.cube_stale_answers << ",\n"
     << "    \"cache_hits\": " << t.totals.cache_hits << ",\n"
     << "    \"refresh_waves\": " << t.cube.refresh_waves << ",\n"
     << "    \"residue_waves\": " << t.cube.residue_waves << ",\n"
     << "    \"cell_edges_descended\": " << t.cube.cell_edges_descended
     << ",\n"
     << "    \"cell_edges_skipped\": " << t.cube.cell_edges_skipped << ",\n"
     << "    \"residue_edges_pruned\": " << t.cube.residue_edges_pruned
     << ",\n"
     << "    \"mark_messages\": " << t.mark_messages << "\n"
     << "  },\n"
     << "  \"oracle\": {\n"
     << "    \"exact_answers_compared\": " << [&] {
          std::uint64_t c = 0;
          const auto specs = continuous_specs();
          for (const Answer& a : cube.answers) {
            if (specs[a.id - 1].error == 0.0) ++c;
          }
          return c;
        }() << ",\n"
     << "    \"mismatches\": " << oracle_mismatches << ",\n"
     << "    \"bound_checked\": " << cube.bound_checked << ",\n"
     << "    \"bound_violations\": " << cube.bound_violations << "\n"
     << "  },\n"
     << "  \"region_sweep\": [\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepRow& r = sweep[i];
    const double reduction =
        static_cast<double>(r.tree_bits) /
        static_cast<double>(std::max<std::uint64_t>(1, r.repeat_bits));
    os << "    {\"lo\": " << r.lo << ", \"hi\": " << r.hi << ", \"width\": "
       << (r.hi - r.lo + 1) << ", \"first_bits\": " << r.first_bits
       << ", \"repeat_bits\": " << r.repeat_bits << ", \"tree_bits\": "
       << r.tree_bits << ", \"warm_reduction\": " << std::setprecision(1)
       << std::fixed << reduction << "}" << (i + 1 < sweep.size() ? "," : "")
       << "\n";
  }
  os << "  ],\n"
     << "  \"distinct\": {\n"
     << "    \"answers\": " << distinct.answers << ",\n"
     << "    \"mismatches\": " << distinct.mismatches << ",\n"
     << "    \"bits_cube\": " << distinct.cube_bits << ",\n"
     << "    \"bits_tree\": " << distinct.tree_bits << "\n"
     << "  },\n"
     << "  \"determinism\": [\n";
  for (std::size_t i = 0; i < det.size(); ++i) {
    os << "    {\"threads\": " << det[i].threads << ", \"checksum\": \""
       << std::hex << det[i].checksum << std::dec << "\"}"
       << (i + 1 < det.size() ? "," : "") << "\n";
  }
  os << "  ],\n"
     << "  \"summary\": {\n"
     << "    \"bits_ratio\": " << std::setprecision(3) << std::fixed << ratio
     << ",\n"
     << "    \"bits_target\": 5.0,\n"
     << "    \"bits_target_met\": "
     << (cube.total_bits * 5 <= naive.total_bits ? "true" : "false") << ",\n"
     << "    \"oracle_mismatches\": " << total_mismatches << ",\n"
     << "    \"oracle_identical\": "
     << (total_mismatches == 0 ? "true" : "false") << ",\n"
     << "    \"bound_violations\": " << cube.bound_violations << ",\n"
     << "    \"bounds_sound\": "
     << (cube.bound_violations == 0 ? "true" : "false") << ",\n"
     << "    \"deterministic_across_thread_counts\": "
     << (deterministic ? "true" : "false") << "\n"
     << "  }\n}\n";
}

}  // namespace
}  // namespace sensornet::bench

int main(int argc, char** argv) {
  using namespace sensornet::bench;
  using sensornet::Value;
  bool quick = false;
  std::string out_path = "BENCH_PR10.json";
  unsigned threads = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<unsigned>(std::stoul(argv[++i]));
    } else {
      std::cerr << "usage: exp_cube [--quick] [--out PATH] [--threads N]\n";
      return 2;
    }
  }
  const Scale& s = quick ? kQuick : kFull;
  const unsigned resolved = sensornet::resolve_thread_count(threads);

  std::cout << "EXP multiresolution cube (" << (quick ? "quick" : "full")
            << ", " << resolved << " worker(s))\n";

  std::cout << "## cached-range bits (" << s.grid_side * s.grid_side
            << " nodes, " << s.epochs << " epochs)\n";
  const LaneRun cube = run_cached_lane(s, resolved, /*with_cube=*/true);
  const LaneRun naive = run_cached_lane(s, resolved, /*with_cube=*/false);
  const double ratio =
      cube.total_bits
          ? static_cast<double>(naive.total_bits) / cube.total_bits
          : 0.0;
  std::cout << "  cube: " << cube.total_bits << " bits ("
            << cube.telemetry.totals.cube_stale_answers << " bracket + "
            << cube.telemetry.totals.cache_hits << " cached of "
            << cube.answers.size() << " answers zero-bit)\n"
            << "  tree: " << naive.total_bits << " bits ("
            << std::setprecision(2) << std::fixed << ratio << "x)\n";

  const std::uint64_t oracle_mismatches =
      count_oracle_mismatches(cube, naive);
  std::cout << "  oracle: " << oracle_mismatches << " mismatch(es), "
            << cube.bound_violations << "/" << cube.bound_checked
            << " bound violation(s)\n";

  std::cout << "## region sweep (" << s.sweep_side * s.sweep_side
            << " nodes)\n";
  const std::vector<std::pair<Value, Value>> regions = {
      {0, kBound}, {0, 499}, {500, kBound}, {0, 249}, {250, 499},
      {0, 300},    {37, 612}, {101, 860},   {600, 700},
  };
  std::vector<SweepRow> sweep;
  for (const auto& [lo, hi] : regions) {
    sweep.push_back(run_sweep_region(s, lo, hi));
    const SweepRow& r = sweep.back();
    std::cout << "  [" << std::setw(4) << r.lo << "," << std::setw(4) << r.hi
              << "] first=" << std::setw(7) << r.first_bits
              << " repeat=" << std::setw(6) << r.repeat_bits
              << " tree=" << std::setw(7) << r.tree_bits << "\n";
  }

  std::cout << "## distinct identity (" << s.distinct_side * s.distinct_side
            << " nodes, " << s.distinct_epochs << " epochs)\n";
  const DistinctLane distinct = run_distinct_lane(s, resolved);
  std::cout << "  " << distinct.answers << " estimates, "
            << distinct.mismatches << " mismatch(es)\n";

  std::cout << "## determinism across farm workers\n";
  std::vector<DeterminismRow> det;
  for (const unsigned t : {1u, 2u, 8u}) {
    const LaneRun r = t == resolved
                          ? cube
                          : run_cached_lane(s, t, /*with_cube=*/true);
    det.push_back({t, r.checksum});
    std::cout << "  threads=" << t << " checksum=" << std::hex << r.checksum
              << std::dec << "\n";
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << " for writing\n";
    return 1;
  }
  write_json(out, s, quick, resolved, cube, naive, oracle_mismatches, sweep,
             distinct, det);
  std::cout << "wrote " << out_path << "\n";

  std::uint64_t sweep_mismatches = 0;
  for (const auto& r : sweep) sweep_mismatches += r.mismatches;
  if (oracle_mismatches + sweep_mismatches + distinct.mismatches != 0) {
    std::cerr << "FATAL: cube answers are not byte-identical to the "
                 "tree-collected oracle\n";
    return 1;
  }
  if (cube.bound_violations != 0) {
    std::cerr << "FATAL: " << cube.bound_violations
              << " bracket-served answer(s) violated their bound\n";
    return 1;
  }
  if (cube.total_bits * 5 > naive.total_bits) {
    std::cerr << "FATAL: cube shipped " << cube.total_bits << " bits vs "
              << naive.total_bits << " tree — the 5x claim does not hold\n";
    return 1;
  }
  for (const auto& row : det) {
    if (row.checksum != det.front().checksum) {
      std::cerr << "FATAL: answer-stream checksum diverged at " << row.threads
                << " workers\n";
      return 1;
    }
  }
  return 0;
}
