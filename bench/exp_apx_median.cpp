// EXP-T45 — Theorem 4.5: Fig. 2 outputs an (alpha, beta)-median with
// alpha = 3 sigma, beta = 1/N, w.p. >= 1 - epsilon. Success-rate table over
// epsilon, plus the bits-vs-epsilon cost curve (comm ~ 1/eps).
#include <algorithm>
#include <cmath>
#include <cstdint>

#include "src/common/mathutil.hpp"
#include "src/core/apx_median.hpp"
#include "src/proto/counting_service.hpp"
#include "util/experiment.hpp"
#include "util/table.hpp"

namespace sensornet::bench {
namespace {

bool is_apx_median(const ValueSet& xs, Value y, double alpha, double beta) {
  const double k = static_cast<double>(xs.size()) / 2.0;
  const Value max_x = *std::max_element(xs.begin(), xs.end());
  const auto tol =
      static_cast<Value>(std::ceil(beta * static_cast<double>(max_x)));
  for (Value yp = y - tol; yp <= y + tol; ++yp) {
    const double lo = static_cast<double>(rank_below(xs, yp));
    const double hi = static_cast<double>(rank_below(xs, yp + 1));
    if (lo < k * (1 + alpha) && hi >= k * (1 - alpha)) return true;
  }
  return false;
}

void run() {
  print_banner(
      "EXP-T45", "Theorem 4.5",
      "Fig. 2 returns an (alpha=3sigma, beta=1/N)-median w.p. >= 1-eps; "
      "invocations (and bits) scale with 1/eps via the ceil(2q)/ceil(32q) "
      "repetition schedule, q = log(M-m)/eps");

  const std::size_t n = 32;
  const Value X = 63;  // small range keeps the paper schedule affordable
  Xoshiro256 wl_rng(5);
  const ValueSet xs = generate_workload(WorkloadKind::kUniform, n, X, wl_rng);

  Table table({"epsilon", "trials", "success rate", "required (1-eps)",
               "halted early", "APX_COUNT calls/run", "max bits/node/run"});
  for (const double eps : {0.5, 0.25, 0.125}) {
    constexpr int kTrials = 12;
    int success = 0;
    int halted = 0;
    std::uint64_t calls = 0;
    std::uint64_t bits = 0;
    for (int t = 0; t < kTrials; ++t) {
      sim::Network net(net::make_line(n), 9000 + t);
      net.set_one_item_per_node(xs);
      const auto tree = net::bfs_tree(net.graph(), 0);
      proto::TreeCountingService minmax(net, tree);
      proto::ApxCountConfig cfg;
      cfg.registers = 16;
      proto::TreeApproxCountingService counter(net, tree, cfg);
      core::ApxSelectionParams params;
      params.epsilon = eps;
      const auto res = core::approx_median(minmax, counter, params);
      const double alpha = 3.0 * counter.sigma();
      if (is_apx_median(xs, res.value, alpha, 1.0 / n)) ++success;
      if (res.halted_early) ++halted;
      calls += res.apx_count_calls;
      bits = std::max(bits, net.summary().max_node_bits);
    }
    table.add_row({fmt(eps, 3), std::to_string(kTrials),
                   fmt(static_cast<double>(success) / kTrials, 2),
                   fmt(1.0 - eps, 2), std::to_string(halted),
                   fmt_bits(calls / kTrials), fmt_bits(bits)});
  }
  table.print();

  // Cost model check: invocations per run = ceil(2q) + iters * ceil(32q).
  Table sched({"epsilon", "q", "ceil(2q)", "ceil(32q)", "measured calls",
               "predicted (no early halt)"});
  for (const double eps : {0.5, 0.25}) {
    sim::Network net(net::make_line(n), 123);
    net.set_one_item_per_node(xs);
    const auto tree = net::bfs_tree(net.graph(), 0);
    proto::TreeCountingService minmax(net, tree);
    proto::ApxCountConfig cfg;
    cfg.registers = 16;
    proto::TreeApproxCountingService counter(net, tree, cfg);
    core::ApxSelectionParams params;
    params.epsilon = eps;
    const auto res = core::approx_median(minmax, counter, params);
    const double q = std::log2(static_cast<double>(X)) / eps;
    const auto r2 = static_cast<std::uint64_t>(std::ceil(2 * q));
    const auto r32 = static_cast<std::uint64_t>(std::ceil(32 * q));
    sched.add_row({fmt(eps, 3), fmt(q, 1), fmt_bits(r2), fmt_bits(r32),
                   fmt_bits(res.apx_count_calls),
                   fmt_bits(r2 + res.iterations * r32)});
  }
  sched.print();
}

}  // namespace
}  // namespace sensornet::bench

int main() {
  sensornet::bench::run();
  return 0;
}
