// Microbenchmarks: sketch update/merge/estimate throughput (google-benchmark).
#include <benchmark/benchmark.h>

#include "src/common/rng.hpp"
#include "src/sketch/loglog.hpp"
#include "src/sketch/registers.hpp"

namespace {

using sensornet::Xoshiro256;
using sensornet::sketch::RegisterArray;

void BM_ObserveRandom(benchmark::State& state) {
  const auto m = static_cast<unsigned>(state.range(0));
  RegisterArray regs(m, 6);
  Xoshiro256 rng(1);
  for (auto _ : state) {
    sensornet::sketch::observe_random(regs, rng);
    benchmark::DoNotOptimize(regs);
  }
}
BENCHMARK(BM_ObserveRandom)->Arg(16)->Arg(256)->Arg(1024);

void BM_ObserveHashed(benchmark::State& state) {
  const auto m = static_cast<unsigned>(state.range(0));
  RegisterArray regs(m, 6);
  std::uint64_t v = 0;
  for (auto _ : state) {
    sensornet::sketch::observe_hashed(regs, ++v, 7);
    benchmark::DoNotOptimize(regs);
  }
}
BENCHMARK(BM_ObserveHashed)->Arg(16)->Arg(256)->Arg(1024);

void BM_Merge(benchmark::State& state) {
  const auto m = static_cast<unsigned>(state.range(0));
  RegisterArray a(m, 6);
  RegisterArray b(m, 6);
  Xoshiro256 rng(2);
  for (unsigned i = 0; i < 4 * m; ++i) {
    sensornet::sketch::observe_random(a, rng);
    sensornet::sketch::observe_random(b, rng);
  }
  for (auto _ : state) {
    a.merge(b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_Merge)->Arg(16)->Arg(256)->Arg(1024);

void BM_Estimate(benchmark::State& state) {
  const auto m = static_cast<unsigned>(state.range(0));
  RegisterArray regs(m, 6);
  Xoshiro256 rng(3);
  for (unsigned i = 0; i < 64 * m; ++i) {
    sensornet::sketch::observe_random(regs, rng);
  }
  const bool hll = state.range(1) != 0;
  for (auto _ : state) {
    const double e = hll ? sensornet::sketch::hyperloglog_estimate(regs)
                         : sensornet::sketch::loglog_estimate(regs);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_Estimate)->Args({256, 0})->Args({256, 1});

void BM_EncodeDecode(benchmark::State& state) {
  const auto m = static_cast<unsigned>(state.range(0));
  RegisterArray regs(m, 6);
  Xoshiro256 rng(4);
  for (unsigned i = 0; i < 4 * m; ++i) {
    sensornet::sketch::observe_random(regs, rng);
  }
  for (auto _ : state) {
    sensornet::BitWriter w;
    regs.encode(w);
    sensornet::BitReader r(w.bytes().data(), w.bit_count());
    auto back = RegisterArray::decode(r, m, 6);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_EncodeDecode)->Arg(16)->Arg(256)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
