// Microbenchmarks: sketch update/merge/estimate throughput (google-benchmark).
//
// Dense merges are the aggregation hot path (every internal tree node folds
// every child partial), so they are benchmarked per packed width against the
// legacy byte-per-register RegisterArray::merge as the baseline the SWAR
// word-merge has to beat.
#include <benchmark/benchmark.h>

#include "src/common/rng.hpp"
#include "src/sketch/hll.hpp"
#include "src/sketch/registers.hpp"

namespace {

using sensornet::Xoshiro256;
using sensornet::sketch::Hll;
using sensornet::sketch::HllOptions;
using sensornet::sketch::RegisterArray;

Hll make_dense(unsigned m, unsigned width, std::uint64_t seed,
               unsigned observations) {
  Hll hll =
      Hll::make_by_registers(m, HllOptions{.width = width, .sparse = false})
          .value();
  Xoshiro256 rng(seed);
  for (unsigned i = 0; i < observations; ++i) hll.add_random(rng);
  return hll;
}

void BM_AddRandom(benchmark::State& state) {
  const auto m = static_cast<unsigned>(state.range(0));
  Hll hll = make_dense(m, 6, 1, 0);
  Xoshiro256 rng(1);
  for (auto _ : state) {
    hll.add_random(rng);
    benchmark::DoNotOptimize(hll);
  }
}
BENCHMARK(BM_AddRandom)->Arg(16)->Arg(256)->Arg(1024);

void BM_AddHashed(benchmark::State& state) {
  const auto m = static_cast<unsigned>(state.range(0));
  Hll hll = make_dense(m, 6, 1, 0);
  std::uint64_t v = 0;
  for (auto _ : state) {
    hll.add(++v, 7);
    benchmark::DoNotOptimize(hll);
  }
}
BENCHMARK(BM_AddHashed)->Arg(16)->Arg(256)->Arg(1024);

void BM_AddHashedSparse(benchmark::State& state) {
  // Sparse insertion path on a small working set (the leaf-node regime).
  const auto m = static_cast<unsigned>(state.range(0));
  Hll hll = Hll::make_by_registers(m, HllOptions{.width = 6}).value();
  std::uint64_t v = 0;
  for (auto _ : state) {
    hll.add(v++ % 8, 7);  // stays far below the promotion threshold
    benchmark::DoNotOptimize(hll);
  }
}
BENCHMARK(BM_AddHashedSparse)->Arg(256)->Arg(1024);

void BM_MergeDense(benchmark::State& state) {
  // The SWAR word-at-a-time fold, per packed width.
  const auto m = static_cast<unsigned>(state.range(0));
  const auto w = static_cast<unsigned>(state.range(1));
  Hll a = make_dense(m, w, 2, 4 * m);
  const Hll b = make_dense(m, w, 3, 4 * m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.merge(b).ok());
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_MergeDense)
    ->Args({256, 4})
    ->Args({256, 5})
    ->Args({256, 6})
    ->Args({256, 8})
    ->Args({1024, 6});

void BM_MergeLegacyByteRegisters(benchmark::State& state) {
  // Baseline: the superseded byte-per-register elementwise loop.
  const auto m = static_cast<unsigned>(state.range(0));
  RegisterArray a(m, 6);
  RegisterArray b(m, 6);
  Xoshiro256 rng(2);
  for (unsigned i = 0; i < 4 * m; ++i) {
    const auto oa = sensornet::sketch::random_observation(m, rng);
    a.observe(oa.bucket, oa.rank);
    const auto ob = sensornet::sketch::random_observation(m, rng);
    b.observe(ob.bucket, ob.rank);
  }
  for (auto _ : state) {
    a.merge(b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_MergeLegacyByteRegisters)->Arg(256)->Arg(1024);

void BM_MergeSparseIntoDense(benchmark::State& state) {
  const auto m = static_cast<unsigned>(state.range(0));
  Hll a = make_dense(m, 6, 4, 4 * m);
  Hll b = Hll::make_by_registers(m, HllOptions{.width = 6}).value();
  Xoshiro256 rng(5);
  for (int i = 0; i < 6; ++i) b.add_random(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.merge(b).ok());
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_MergeSparseIntoDense)->Arg(256)->Arg(1024);

void BM_Estimate(benchmark::State& state) {
  const auto m = static_cast<unsigned>(state.range(0));
  const Hll hll = make_dense(m, 6, 3, 64 * m);
  const bool use_hll = state.range(1) != 0;
  for (auto _ : state) {
    const double e = use_hll ? hll.estimate() : hll.estimate_loglog();
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_Estimate)->Args({256, 0})->Args({256, 1});

void BM_EncodeDecode(benchmark::State& state) {
  const auto m = static_cast<unsigned>(state.range(0));
  const bool sparse = state.range(1) != 0;
  Hll hll = Hll::make_by_registers(m, HllOptions{.width = 6}).value();
  Xoshiro256 rng(4);
  // 4 observations stay sparse; 4*m saturate into dense.
  const unsigned observations = sparse ? 4 : 4 * m;
  for (unsigned i = 0; i < observations; ++i) hll.add_random(rng);
  for (auto _ : state) {
    sensornet::BitWriter w;
    hll.encode(w);
    sensornet::BitReader r(w.bytes().data(), w.bit_count());
    auto back = Hll::decode(r);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_EncodeDecode)
    ->Args({16, 0})
    ->Args({256, 0})
    ->Args({1024, 0})
    ->Args({256, 1})
    ->Args({1024, 1});

}  // namespace

BENCHMARK_MAIN();
