// PERF — simulator hot-path benchmark with an in-run seed baseline.
//
// Three sections, one report (BENCH_PR7.json):
//
//  1. Parity matrix — runs a scenario matrix (line / grid / random-geometric
//     / complete single-hop topologies, with and without message loss,
//     across a unicast / broadcast / tree-wave protocol mix) on BOTH the
//     production simulator (CSR graph + shared payload slabs + calendar
//     queue) and a faithful replica of the seed simulator
//     (bench/util/legacy_sim.hpp), in the same process. Delivery counts are
//     cross-checked between the two implementations — a mismatch means the
//     rearchitected event loop changed semantics, and the row is flagged.
//     Matrix cells are scheduled by the work-stealing trial farm.
//
//  2. Thread scaling — one wave workload, many trials, executed at worker
//     counts 1/2/4/8. Every trial seeds from trial_seed(master, cell), so a
//     checksum over the per-trial outcomes must be identical at every
//     worker count; the report records wall-clock speedup AND that
//     determinism check. hardware_threads is recorded because speedup is
//     physically bounded by the cores actually present.
//
//  3. Scale ladder — grid and random-geometric deployments from 2^14 to
//     2^20 nodes: topology + tree build time, simulated deliveries/sec,
//     peak in-flight queue bytes, and the process RSS high-water mark.
//
// A fourth section lands in a second report (BENCH_PR9.json): the
// telemetry lane. It re-reads the thread-scaling rows through the obs
// metrics registry (farm.steals / farm.cells must agree with the farm's
// own stats), measures the registry's runtime overhead on a 2^17-node grid
// wave (registry enabled vs runtime-disabled, identical deliveries and
// checksums required, events/s penalty gated at 3%), and dumps the final
// registry snapshot. With --trace PATH it also runs a small traced wave
// and exports the Chrome trace_event JSON for chrome://tracing/Perfetto.
//
// Usage: perf_driver [--quick] [--out PATH] [--out9 PATH] [--threads N]
//                    [--trace PATH]
//   --quick    smaller scenario sizes (CI smoke lane)
//   --out      output JSON path (default: BENCH_PR7.json)
//   --out9     telemetry report path (default: BENCH_PR9.json)
//   --threads  farm workers; 0 = hardware concurrency (default),
//              1 reproduces the pre-farm serial driver exactly
//   --trace    export a Chrome trace of a small wave run to PATH
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/trial_farm.hpp"
#include "src/net/spanning_tree.hpp"
#include "src/net/topology.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/sim/network.hpp"
#include "util/legacy_sim.hpp"

namespace sensornet::bench {
namespace {

// ---------------------------------------------------------------------------
// Uniform access to both simulator generations.
// ---------------------------------------------------------------------------
template <class Net>
struct SimTraits;

template <>
struct SimTraits<sim::Network> {
  using Msg = sim::Message;
  using Handler = sim::ProtocolHandler;
};

template <>
struct SimTraits<LegacyNetwork> {
  using Msg = LegacyMessage;
  using Handler = LegacyProtocolHandler;
};

/// Counts deliveries; the sink for storm / burst scenarios.
template <class Net>
class CountingHandler final : public SimTraits<Net>::Handler {
 public:
  std::uint64_t deliveries = 0;
  void on_message(Net&, NodeId,
                  const typename SimTraits<Net>::Msg&) override {
    ++deliveries;
  }
};

/// Relays each message one hop to the right along a line.
template <class Net>
class RelayHandler final : public SimTraits<Net>::Handler {
  using Msg = typename SimTraits<Net>::Msg;

 public:
  std::uint64_t deliveries = 0;
  void on_message(Net& net, NodeId receiver, const Msg& msg) override {
    ++deliveries;
    if (receiver + 1 < net.node_count()) {
      BitWriter w;
      w.write_bits(0xC3, 8);
      net.send(Msg::make(receiver, receiver + 1, msg.session, 1,
                         std::move(w)));
    }
  }
};

/// Request-down / count-up broadcast-convergecast waves over a spanning
/// tree — the TreeWave access pattern, reimplemented here so one source
/// drives both simulator generations. `lanes` independent query sessions
/// run concurrently per batch (lanes == 1 is the classic sequential wave),
/// modeling a root that pipelines queries instead of idling between them.
/// Under loss a wave silently covers less of the tree (fine for throughput
/// measurement; the production TreeWave driver would throw). Per-batch
/// resets touch only nodes the previous wave reached, so driver bookkeeping
/// stays off the measured hot path.
template <class Net>
class WaveHandler final : public SimTraits<Net>::Handler {
  using Msg = typename SimTraits<Net>::Msg;

 public:
  WaveHandler(const net::SpanningTree& tree, unsigned lanes)
      : tree_(tree), lanes_(lanes), state_(lanes) {
    for (auto& s : state_) {
      s.pending.assign(tree_.parent.size(), 0);
      s.acc.assign(tree_.parent.size(), 0);
    }
  }

  std::uint64_t deliveries = 0;
  std::uint64_t root_total = 0;

  void run_batch(Net& net, std::uint32_t batch) {
    batch_ = batch;
    for (unsigned lane = 0; lane < lanes_; ++lane) {
      auto& s = state_[lane];
      for (const NodeId u : s.touched) {
        s.pending[u] = 0;
        s.acc[u] = 0;
      }
      s.touched.clear();
      start(net, lane, tree_.root);
    }
    net.run(*this);
  }

  void on_message(Net& net, NodeId receiver, const Msg& msg) override {
    ++deliveries;
    const unsigned lane =
        static_cast<unsigned>(msg.session - batch_ * lanes_);
    if (msg.kind == 1) {
      start(net, lane, receiver);
    } else {
      auto& s = state_[lane];
      BitReader r = msg.reader();
      s.acc[receiver] += r.read_bits(32);
      if (--s.pending[receiver] == 0) finish(net, lane, receiver);
    }
  }

 private:
  struct Lane {
    std::vector<std::size_t> pending;
    std::vector<std::uint64_t> acc;
    std::vector<NodeId> touched;
  };

  void start(Net& net, unsigned lane, NodeId node) {
    auto& s = state_[lane];
    s.touched.push_back(node);
    s.acc[node] = 1;
    const auto& children = tree_.children[node];
    s.pending[node] = children.size();
    if (children.empty()) {
      finish(net, lane, node);
      return;
    }
    for (const NodeId child : children) {
      BitWriter w;
      w.write_bits(0x5AA5, 16);
      net.send(
          Msg::make(node, child, batch_ * lanes_ + lane, 1, std::move(w)));
    }
  }

  void finish(Net& net, unsigned lane, NodeId node) {
    auto& s = state_[lane];
    if (node == tree_.root) {
      root_total += s.acc[node];
      return;
    }
    BitWriter w;
    w.write_bits(static_cast<std::uint32_t>(s.acc[node]), 32);
    net.send(Msg::make(node, tree_.parent[node], batch_ * lanes_ + lane, 2,
                       std::move(w)));
  }

  const net::SpanningTree& tree_;
  unsigned lanes_;
  std::uint32_t batch_ = 0;
  std::vector<Lane> state_;
};

// ---------------------------------------------------------------------------
// Scenario bodies (templated over the simulator generation).
// ---------------------------------------------------------------------------

/// Every node shared-medium-broadcasts a small payload, every round.
template <class Net>
std::uint64_t broadcast_storm(Net& net, unsigned rounds) {
  using Msg = typename SimTraits<Net>::Msg;
  CountingHandler<Net> sink;
  const auto n = static_cast<NodeId>(net.node_count());
  for (unsigned r = 0; r < rounds; ++r) {
    for (NodeId u = 0; u < n; ++u) {
      BitWriter w;
      w.write_bits(0xA5, 8);
      net.send_medium(Msg::make(u, kNoNode, r, 1, std::move(w)));
    }
    net.run(sink);
  }
  return sink.deliveries;
}

/// `batches` batches of `lanes` concurrent broadcast-convergecast waves
/// over the BFS tree.
template <class Net>
std::uint64_t tree_waves(Net& net, const net::SpanningTree& tree,
                         unsigned lanes, unsigned batches) {
  WaveHandler<Net> handler(tree, lanes);
  for (unsigned b = 0; b < batches; ++b) handler.run_batch(net, b);
  return handler.deliveries;
}

/// End-to-end unicast relays along a line.
template <class Net>
std::uint64_t line_relay(Net& net, unsigned passes) {
  using Msg = typename SimTraits<Net>::Msg;
  RelayHandler<Net> handler;
  for (unsigned p = 0; p < passes; ++p) {
    BitWriter w;
    w.write_bits(0xC3, 8);
    net.send(Msg::make(0, 1, p, 1, std::move(w)));
    net.run(handler);
  }
  return handler.deliveries;
}

/// Every node unicasts a 40-byte (register-array-sized, heap-slab) payload
/// to each neighbor, every round.
template <class Net, class G>
std::uint64_t neighbor_burst(Net& net, const G& graph, unsigned rounds) {
  using Msg = typename SimTraits<Net>::Msg;
  CountingHandler<Net> sink;
  const auto n = static_cast<NodeId>(net.node_count());
  for (unsigned r = 0; r < rounds; ++r) {
    for (NodeId u = 0; u < n; ++u) {
      for (const NodeId v : graph.neighbors(u)) {
        BitWriter w;
        w.reserve(320);
        for (int word = 0; word < 5; ++word) {
          w.write_bits(0x0123456789ABCDEFULL ^ word, 64);
        }
        net.send(Msg::make(u, v, r, 1, std::move(w)));
      }
    }
    net.run(sink);
  }
  return sink.deliveries;
}

// ---------------------------------------------------------------------------
// Measurement plumbing.
// ---------------------------------------------------------------------------
struct RunMetrics {
  std::uint64_t deliveries = 0;
  double seconds = 0.0;
  std::size_t peak_in_flight_bytes = 0;

  double deliveries_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(deliveries) / seconds : 0.0;
  }
  double ns_per_delivery() const {
    return deliveries > 0
               ? seconds * 1e9 / static_cast<double>(deliveries)
               : 0.0;
  }
};

struct ScenarioResult {
  std::string name;
  std::string topology;
  std::string protocol;
  std::size_t nodes = 0;
  double loss = 0.0;
  RunMetrics fresh;   // production simulator
  RunMetrics legacy;  // seed replica
  bool deliveries_match = false;

  double speedup() const {
    return legacy.deliveries_per_sec() > 0.0
               ? fresh.deliveries_per_sec() / legacy.deliveries_per_sec()
               : 0.0;
  }
};

template <class Net, class Body>
RunMetrics measure(Net& net, Body&& body) {
  const auto t0 = std::chrono::steady_clock::now();
  RunMetrics m;
  m.deliveries = body(net);
  const auto t1 = std::chrono::steady_clock::now();
  m.seconds = std::chrono::duration<double>(t1 - t0).count();
  m.peak_in_flight_bytes = net.peak_in_flight_bytes();
  return m;
}

/// Process RSS high-water mark (VmHWM), in KiB; 0 where /proc is absent.
std::size_t read_vm_hwm_kb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      std::istringstream fields(line.substr(6));
      std::size_t kb = 0;
      fields >> kb;
      return kb;
    }
  }
  return 0;
}

/// Runs one scenario on both simulator generations over the same graph and
/// the same (seeded) loss stream. Legacy goes first; any allocator warm-up
/// therefore favors the baseline, not us.
template <class Body>
ScenarioResult run_scenario(std::string name, std::string topology,
                            std::string protocol, const net::Graph& graph,
                            double loss, Body&& body) {
  ScenarioResult res;
  res.name = std::move(name);
  res.topology = std::move(topology);
  res.protocol = std::move(protocol);
  res.nodes = graph.node_count();
  res.loss = loss;

  {
    LegacyNetwork legacy(LegacyGraph::from(graph));
    legacy.set_message_loss(loss);
    res.legacy = measure(legacy, body);
  }
  {
    sim::Network fresh(graph, /*master_seed=*/1);
    fresh.set_message_loss(loss);
    res.fresh = measure(fresh, body);
  }
  res.deliveries_match = res.fresh.deliveries == res.legacy.deliveries;
  return res;
}

void print_scenario(const ScenarioResult& res) {
  std::cout << std::left << std::setw(34) << res.name << " legacy "
            << std::setw(10) << std::right << std::fixed
            << std::setprecision(0) << res.legacy.deliveries_per_sec()
            << "/s   new " << std::setw(10) << res.fresh.deliveries_per_sec()
            << "/s   x" << std::setprecision(2) << res.speedup()
            << (res.deliveries_match ? "" : "   [DELIVERY MISMATCH]") << "\n";
}

// ---------------------------------------------------------------------------
// The parity matrix.
// ---------------------------------------------------------------------------
struct Scale {
  std::size_t storm_nodes, storm_rounds;
  std::size_t wave_lanes;
  std::size_t line_nodes, line_batches;
  std::size_t grid_side, grid_batches;
  std::size_t geo_nodes, geo_batches;
  std::size_t seq_waves;
  std::size_t relay_nodes, relay_passes;
  std::size_t burst_grid_side, burst_grid_rounds;
  std::size_t burst_geo_nodes, burst_geo_rounds;
  // thread-scaling section
  std::size_t scaling_trials, scaling_grid_side, scaling_lanes,
      scaling_batches;
  // scale ladder: log2 of the node counts to visit
  std::vector<unsigned> scale_exponents;
  // obs-overhead lane: 2^obs_exp-node grid, wave workload, best of obs_reps
  unsigned obs_exp, obs_lanes, obs_batches, obs_reps;
};

// Sized so every timed region runs for tens of milliseconds at seed-era
// throughput — long enough that steady_clock jitter stays in the noise.
const Scale kFull{256,  40, 32, 2048, 8,  64, 4, 2048, 6, 150,
                  4096, 400, 64, 25, 2048, 40,
                  32, 48, 8, 3, {14, 15, 16, 17, 18, 19, 20},
                  17, 4, 2, 5};
const Scale kQuick{96,  25, 32, 512, 4,  32, 2, 512, 3, 40,
                   1024, 80, 32, 8, 512, 10,
                   8, 24, 4, 2, {14, 15},
                   15, 2, 4, 7};

std::vector<ScenarioResult> run_matrix(const Scale& s, TrialFarm& farm) {
  const auto tag = [](const char* base, double loss) {
    return std::string(base) + (loss > 0.0 ? "/loss10" : "/loss0");
  };

  // Shared, compacted, strictly-const graphs: safe for concurrent cells.
  Xoshiro256 topo_rng(2024);
  const net::Graph complete = net::make_complete(s.storm_nodes);
  const net::Graph line = net::make_line(s.line_nodes);
  const net::Graph grid = net::make_grid(s.grid_side, s.grid_side);
  const net::Graph geo =
      net::make_topology(net::TopologyKind::kGeometric, s.geo_nodes, topo_rng);
  const net::Graph relay_line = net::make_line(s.relay_nodes);
  const net::Graph burst_grid =
      net::make_grid(s.burst_grid_side, s.burst_grid_side);
  const net::Graph burst_geo = net::make_topology(
      net::TopologyKind::kGeometric, s.burst_geo_nodes, topo_rng);

  const net::SpanningTree line_tree = net::bfs_tree(line, 0);
  const net::SpanningTree grid_tree = net::bfs_tree(grid, 0);
  const net::SpanningTree geo_tree = net::bfs_tree(geo, 0);

  // Cells close over the shared graphs and their own parameters; each
  // builds private legacy + fresh networks, so any worker may run any cell.
  std::vector<std::function<ScenarioResult()>> cells;
  for (const double loss : {0.0, 0.1}) {
    cells.push_back([&, loss] {
      return run_scenario(
          tag("storm/complete", loss), "complete", "broadcast-storm",
          complete, loss, [&](auto& net) {
            return broadcast_storm(net, static_cast<unsigned>(s.storm_rounds));
          });
    });
    cells.push_back([&, loss] {
      return run_scenario(
          tag("wave/line", loss), "line", "tree-wave", line, loss,
          [&](auto& net) {
            return tree_waves(net, line_tree,
                              static_cast<unsigned>(s.wave_lanes),
                              static_cast<unsigned>(s.line_batches));
          });
    });
    cells.push_back([&, loss] {
      return run_scenario(
          tag("wave/grid", loss), "grid", "tree-wave", grid, loss,
          [&](auto& net) {
            return tree_waves(net, grid_tree,
                              static_cast<unsigned>(s.wave_lanes),
                              static_cast<unsigned>(s.grid_batches));
          });
    });
    cells.push_back([&, loss] {
      return run_scenario(
          tag("wave/geometric", loss), "geometric", "tree-wave", geo, loss,
          [&](auto& net) {
            return tree_waves(net, geo_tree,
                              static_cast<unsigned>(s.wave_lanes),
                              static_cast<unsigned>(s.geo_batches));
          });
    });
    // Reference row: one wave at a time (a root that idles between
    // queries). With at most a handful of messages in flight there is no
    // queue pressure for the calendar to relieve; expect parity-to-modest
    // gains here, not the headline ratio.
    cells.push_back([&, loss] {
      return run_scenario(
          tag("waveseq/grid", loss), "grid", "tree-wave-seq", grid, loss,
          [&](auto& net) {
            return tree_waves(net, grid_tree, /*lanes=*/1,
                              static_cast<unsigned>(s.seq_waves));
          });
    });
    cells.push_back([&, loss] {
      return run_scenario(
          tag("relay/line", loss), "line", "unicast-relay", relay_line, loss,
          [&](auto& net) {
            return line_relay(net, static_cast<unsigned>(s.relay_passes));
          });
    });
    cells.push_back([&, loss] {
      return run_scenario(
          tag("burst/grid", loss), "grid", "neighbor-burst", burst_grid, loss,
          [&](auto& net) {
            return neighbor_burst(net, net.graph(),
                                  static_cast<unsigned>(s.burst_grid_rounds));
          });
    });
    cells.push_back([&, loss] {
      return run_scenario(
          tag("burst/geometric", loss), "geometric", "neighbor-burst",
          burst_geo, loss, [&](auto& net) {
            return neighbor_burst(net, net.graph(),
                                  static_cast<unsigned>(s.burst_geo_rounds));
          });
    });
  }

  auto results = farm.map<ScenarioResult>(
      cells.size(), [&](std::size_t cell) { return cells[cell](); });
  for (const auto& r : results) print_scenario(r);
  const auto& fs = farm.last_stats();
  std::cout << "(farm: " << fs.threads << " worker(s), " << fs.cells
            << " cells, " << fs.steals << " steal(s))\n";
  return results;
}

// ---------------------------------------------------------------------------
// Thread-scaling section: same trials, varying worker counts.
// ---------------------------------------------------------------------------
struct ScalingRow {
  unsigned threads = 0;
  double seconds = 0.0;
  std::uint64_t deliveries = 0;
  std::uint64_t steals = 0;
  std::uint64_t checksum = 0;  // over per-trial outcomes, order-stable
  // Telemetry view of the same run: the farm's FarmStats fields and the
  // deltas the run pushed into the global obs registry must agree.
  std::uint64_t blocks_dealt = 0;
  std::uint64_t registry_steals = 0;
  std::uint64_t registry_cells = 0;
  bool registry_consistent = true;

  double events_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(deliveries) / seconds : 0.0;
  }
};

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t x) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (x >> (8 * byte)) & 0xFF;
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::vector<ScalingRow> run_thread_scaling(const Scale& s) {
  constexpr std::uint64_t kMaster = 0x7a11;
  const net::Graph grid =
      net::make_grid(s.scaling_grid_side, s.scaling_grid_side);
  const net::SpanningTree tree = net::bfs_tree(grid, 0);

  struct Outcome {
    std::uint64_t deliveries = 0;
    std::uint64_t max_node_bits = 0;
    std::size_t peak = 0;
  };
  // Even trials run lossless, odd trials at 10% loss: the checksum also
  // certifies that the loss stream is a function of the trial seed alone.
  const auto trial = [&](std::size_t cell) {
    sim::Network net(grid, trial_seed(kMaster, cell));
    net.set_message_loss(cell % 2 == 1 ? 0.1 : 0.0);
    Outcome o;
    o.deliveries =
        tree_waves(net, tree, static_cast<unsigned>(s.scaling_lanes),
                   static_cast<unsigned>(s.scaling_batches));
    o.max_node_bits = net.summary().max_node_bits;
    o.peak = net.peak_in_flight_bytes();
    return o;
  };

  std::vector<ScalingRow> rows;
  obs::Registry& reg = obs::Registry::global();
  for (const unsigned t : {1u, 2u, 4u, 8u}) {
    const obs::Snapshot before = reg.snapshot();
    TrialFarm farm(t);
    const auto t0 = std::chrono::steady_clock::now();
    const auto outcomes = farm.map<Outcome>(s.scaling_trials, trial);
    const auto t1 = std::chrono::steady_clock::now();

    ScalingRow row;
    row.threads = t;
    row.seconds = std::chrono::duration<double>(t1 - t0).count();
    row.steals = farm.last_stats().steals;
    row.blocks_dealt = farm.last_stats().blocks_dealt;
    row.checksum = 0xcbf29ce484222325ULL;
    for (const Outcome& o : outcomes) {
      row.deliveries += o.deliveries;
      row.checksum = fnv1a(row.checksum, o.deliveries);
      row.checksum = fnv1a(row.checksum, o.max_node_bits);
      row.checksum = fnv1a(row.checksum, o.peak);
    }
    // Cross-check the registry against the farm's own accounting: the
    // farm publishes cumulatively, so read this row's contribution as a
    // delta. (With SENSORNET_OBS=OFF the registry reads all-zero and the
    // check is vacuous.)
    const obs::Snapshot after = reg.snapshot();
    row.registry_steals =
        after.value("farm.steals") - before.value("farm.steals");
    row.registry_cells =
        after.value("farm.cells") - before.value("farm.cells");
    row.registry_consistent =
        !obs::kObsEnabled ||
        (row.registry_steals == row.steals &&
         row.registry_cells == s.scaling_trials &&
         after.value("farm.workers_last") == t &&
         (t > 1 || row.steals == 0));
    rows.push_back(row);
    std::cout << "threads " << t << ": " << std::fixed << std::setprecision(3)
              << row.seconds << " s, " << std::setprecision(0)
              << row.events_per_sec() << " deliveries/s, checksum "
              << std::hex << row.checksum << std::dec << ", " << row.steals
              << " steal(s), " << row.blocks_dealt << " block(s) dealt"
              << (row.registry_consistent ? "" : "   [REGISTRY MISMATCH]")
              << "\n";
  }
  return rows;
}

// ---------------------------------------------------------------------------
// Scale ladder: grid + geometric deployments, 2^14 .. 2^20 nodes.
// ---------------------------------------------------------------------------
struct ScaleRow {
  std::string topology;
  std::size_t nodes = 0;
  double build_seconds = 0.0;  // graph + BFS tree
  double run_seconds = 0.0;
  std::uint64_t deliveries = 0;
  std::size_t peak_in_flight_bytes = 0;
  std::size_t vm_hwm_kb = 0;

  double events_per_sec() const {
    return run_seconds > 0.0
               ? static_cast<double>(deliveries) / run_seconds
               : 0.0;
  }
};

std::vector<ScaleRow> run_scale_ladder(const Scale& s) {
  std::vector<ScaleRow> rows;
  for (const unsigned exp : s.scale_exponents) {
    const std::size_t n = std::size_t{1} << exp;
    for (const bool geometric : {false, true}) {
      using Clock = std::chrono::steady_clock;
      ScaleRow row;
      row.topology = geometric ? "geometric" : "grid";

      const auto b0 = Clock::now();
      net::Graph graph(0);
      if (geometric) {
        Xoshiro256 rng(trial_seed(2024, exp));
        graph = net::make_topology(net::TopologyKind::kGeometric, n, rng);
      } else {
        // rows * cols == 2^exp exactly, and as square as a power of two gets
        graph = net::make_grid(std::size_t{1} << ((exp + 1) / 2),
                               std::size_t{1} << (exp / 2));
      }
      const net::SpanningTree tree = net::bfs_tree(graph, 0);
      const auto b1 = Clock::now();
      row.nodes = graph.node_count();
      row.build_seconds = std::chrono::duration<double>(b1 - b0).count();

      sim::Network net(std::move(graph), trial_seed(0x5ca1e, exp));
      const auto r0 = Clock::now();
      row.deliveries = tree_waves(net, tree, /*lanes=*/2, /*batches=*/1);
      const auto r1 = Clock::now();
      row.run_seconds = std::chrono::duration<double>(r1 - r0).count();
      row.peak_in_flight_bytes = net.peak_in_flight_bytes();
      row.vm_hwm_kb = read_vm_hwm_kb();

      std::cout << "scale/" << row.topology << " 2^" << exp << " ("
                << row.nodes << " nodes): build " << std::fixed
                << std::setprecision(2) << row.build_seconds << " s, "
                << std::setprecision(0) << row.events_per_sec()
                << " deliveries/s, peak in-flight "
                << row.peak_in_flight_bytes / 1024 << " KiB, RSS HWM "
                << row.vm_hwm_kb / 1024 << " MiB\n";
      rows.push_back(row);
    }
  }
  return rows;
}

// ---------------------------------------------------------------------------
// Telemetry lane (BENCH_PR9.json): registry overhead + trace export.
// ---------------------------------------------------------------------------
struct OverheadRun {
  std::uint64_t deliveries = 0;
  std::uint64_t checksum = 0;
  double seconds = 0.0;  // best of obs_reps repetitions

  double events_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(deliveries) / seconds : 0.0;
  }
};

struct OverheadResult {
  std::size_t nodes = 0;
  unsigned lanes = 0, batches = 0, reps = 0;
  OverheadRun enabled;   // registry live (the shipping default)
  OverheadRun disabled;  // Registry::global().set_enabled(false)

  bool deliveries_match() const {
    return enabled.deliveries == disabled.deliveries;
  }
  bool checksums_match() const {
    return enabled.checksum == disabled.checksum;
  }
  /// Events/s lost to the live registry, in percent (negative = noise).
  double overhead_pct() const {
    const double off = disabled.events_per_sec();
    return off > 0.0 ? (off - enabled.events_per_sec()) / off * 100.0 : 0.0;
  }
};

/// One wave workload on a 2^obs_exp-node grid, run with the registry
/// enabled and runtime-disabled. The two modes must produce identical
/// deliveries and checksums (metrics have zero semantic footprint), and
/// the enabled mode may cost at most 3% events/s — both gated in main().
/// Repetitions alternate modes and keep the best time per mode, so a
/// one-off scheduler hiccup cannot fake (or mask) an overhead.
OverheadResult run_obs_overhead(const Scale& s) {
  OverheadResult res;
  res.lanes = s.obs_lanes;
  res.batches = s.obs_batches;
  res.reps = s.obs_reps;
  const net::Graph grid =
      net::make_grid(std::size_t{1} << ((s.obs_exp + 1) / 2),
                     std::size_t{1} << (s.obs_exp / 2));
  res.nodes = grid.node_count();
  const net::SpanningTree tree = net::bfs_tree(grid, 0);

  const auto one_run = [&](bool registry_on) {
    obs::Registry::global().set_enabled(registry_on);
    sim::Network net(grid, trial_seed(0x0b5, s.obs_exp));
    OverheadRun r;
    const auto t0 = std::chrono::steady_clock::now();
    r.deliveries = tree_waves(net, tree, s.obs_lanes, s.obs_batches);
    const auto t1 = std::chrono::steady_clock::now();
    obs::Registry::global().set_enabled(true);
    r.seconds = std::chrono::duration<double>(t1 - t0).count();
    r.checksum = fnv1a(0xcbf29ce484222325ULL, r.deliveries);
    r.checksum = fnv1a(r.checksum, net.summary().max_node_bits);
    r.checksum = fnv1a(r.checksum, net.peak_in_flight_bytes());
    return r;
  };

  for (unsigned rep = 0; rep < s.obs_reps; ++rep) {
    const OverheadRun off = one_run(false);
    const OverheadRun on = one_run(true);
    if (rep == 0 || off.seconds < res.disabled.seconds) res.disabled = off;
    if (rep == 0 || on.seconds < res.enabled.seconds) res.enabled = on;
  }
  std::cout << "obs overhead (" << res.nodes << " nodes): registry on "
            << std::fixed << std::setprecision(0)
            << res.enabled.events_per_sec() << "/s, off "
            << res.disabled.events_per_sec() << "/s  ->  "
            << std::setprecision(2) << res.overhead_pct() << "% overhead"
            << (res.checksums_match() ? "" : "   [CHECKSUM MISMATCH]")
            << "\n";
  return res;
}

struct TraceInfo {
  std::string path;
  bool exported = false;
  std::size_t events = 0;
  std::uint64_t dropped = 0;
};

/// Runs a small wave with the global trace ring live and exports the
/// Chrome trace_event JSON — open in chrome://tracing or Perfetto.
TraceInfo export_trace(const std::string& path) {
  TraceInfo info;
  info.path = path;
  obs::TraceRing& ring = obs::TraceRing::global();
  ring.set_capacity(std::size_t{1} << 14);
  ring.set_enabled(true);
  sim::Network net(net::make_grid(8, 8), /*master_seed=*/42);
  const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
  tree_waves(net, tree, /*lanes=*/2, /*batches=*/1);
  ring.set_enabled(false);
  info.events = ring.size();
  info.dropped = ring.dropped();
  std::ofstream os(path);
  if (os) {
    ring.export_chrome_json(os);
    info.exported = true;
  }
  ring.clear();
  return info;
}

// ---------------------------------------------------------------------------
// JSON emission (schema validated by the CI bench-smoke lane).
// ---------------------------------------------------------------------------
void write_metrics(std::ostream& os, const char* key, const RunMetrics& m,
                   const char* trailing) {
  os << "      \"" << key << "\": {\n"
     << "        \"deliveries\": " << m.deliveries << ",\n"
     << "        \"seconds\": " << std::setprecision(6) << std::fixed
     << m.seconds << ",\n"
     << "        \"deliveries_per_sec\": " << std::setprecision(1)
     << m.deliveries_per_sec() << ",\n"
     << "        \"ns_per_delivery\": " << std::setprecision(2)
     << m.ns_per_delivery() << ",\n"
     << "        \"peak_in_flight_bytes\": " << m.peak_in_flight_bytes
     << "\n      }" << trailing << "\n";
}

void write_json(std::ostream& os, const std::vector<ScenarioResult>& results,
                const std::vector<ScalingRow>& scaling,
                const std::vector<ScaleRow>& scale, bool quick,
                unsigned threads) {
  double broadcast_min = 0.0;
  double wave_min = 0.0;
  bool all_match = true;
  for (const auto& r : results) {
    all_match = all_match && r.deliveries_match;
    if (r.protocol == "broadcast-storm") {
      broadcast_min =
          broadcast_min == 0.0 ? r.speedup() : std::min(broadcast_min, r.speedup());
    }
    if (r.protocol == "tree-wave") {
      wave_min = wave_min == 0.0 ? r.speedup() : std::min(wave_min, r.speedup());
    }
  }
  bool deterministic = true;
  for (const auto& row : scaling) {
    deterministic = deterministic && row.checksum == scaling.front().checksum;
  }
  const double serial_seconds = scaling.empty() ? 0.0 : scaling.front().seconds;
  double best_parallel_speedup = 0.0;
  for (const auto& row : scaling) {
    if (row.seconds > 0.0 && serial_seconds > 0.0) {
      best_parallel_speedup =
          std::max(best_parallel_speedup, serial_seconds / row.seconds);
    }
  }

  os << "{\n"
     << "  \"bench\": \"BENCH_PR7\",\n"
     << "  \"schema_version\": 1,\n"
     << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
     << "  \"threads\": " << threads << ",\n"
     << "  \"hardware_threads\": " << resolve_thread_count(0) << ",\n"
     << "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    os << "    {\n"
       << "      \"name\": \"" << r.name << "\",\n"
       << "      \"topology\": \"" << r.topology << "\",\n"
       << "      \"protocol\": \"" << r.protocol << "\",\n"
       << "      \"nodes\": " << r.nodes << ",\n"
       << "      \"loss\": " << std::setprecision(2) << std::fixed << r.loss
       << ",\n"
       << "      \"deliveries_match\": " << (r.deliveries_match ? "true" : "false")
       << ",\n";
    write_metrics(os, "new", r.fresh, ",");
    write_metrics(os, "legacy", r.legacy, ",");
    os << "      \"speedup\": " << std::setprecision(3) << std::fixed
       << r.speedup() << "\n    }" << (i + 1 < results.size() ? "," : "")
       << "\n";
  }
  os << "  ],\n"
     << "  \"thread_scaling\": [\n";
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    const auto& row = scaling[i];
    os << "    {\n"
       << "      \"threads\": " << row.threads << ",\n"
       << "      \"seconds\": " << std::setprecision(6) << std::fixed
       << row.seconds << ",\n"
       << "      \"deliveries\": " << row.deliveries << ",\n"
       << "      \"events_per_sec\": " << std::setprecision(1)
       << row.events_per_sec() << ",\n"
       << "      \"speedup_vs_serial\": " << std::setprecision(3)
       << (row.seconds > 0.0 && serial_seconds > 0.0
               ? serial_seconds / row.seconds
               : 0.0)
       << ",\n"
       << "      \"steals\": " << row.steals << ",\n"
       << "      \"checksum\": \"" << std::hex << row.checksum << std::dec
       << "\"\n    }" << (i + 1 < scaling.size() ? "," : "") << "\n";
  }
  os << "  ],\n"
     << "  \"scale\": [\n";
  for (std::size_t i = 0; i < scale.size(); ++i) {
    const auto& row = scale[i];
    os << "    {\n"
       << "      \"topology\": \"" << row.topology << "\",\n"
       << "      \"nodes\": " << row.nodes << ",\n"
       << "      \"build_seconds\": " << std::setprecision(6) << std::fixed
       << row.build_seconds << ",\n"
       << "      \"run_seconds\": " << row.run_seconds << ",\n"
       << "      \"deliveries\": " << row.deliveries << ",\n"
       << "      \"events_per_sec\": " << std::setprecision(1)
       << row.events_per_sec() << ",\n"
       << "      \"peak_in_flight_bytes\": " << row.peak_in_flight_bytes
       << ",\n"
       << "      \"vm_hwm_kb\": " << row.vm_hwm_kb << "\n    }"
       << (i + 1 < scale.size() ? "," : "") << "\n";
  }
  os << "  ],\n"
     << "  \"summary\": {\n"
     << "    \"all_deliveries_match\": " << (all_match ? "true" : "false")
     << ",\n"
     << "    \"broadcast_min_speedup\": " << std::setprecision(3)
     << broadcast_min << ",\n"
     << "    \"tree_wave_min_speedup\": " << wave_min << ",\n"
     << "    \"broadcast_speedup_target\": 3.0,\n"
     << "    \"tree_wave_speedup_target\": 1.5,\n"
     << "    \"broadcast_target_met\": "
     << (broadcast_min >= 3.0 ? "true" : "false") << ",\n"
     << "    \"tree_wave_target_met\": " << (wave_min >= 1.5 ? "true" : "false")
     << ",\n"
     << "    \"deterministic_across_thread_counts\": "
     << (deterministic ? "true" : "false") << ",\n"
     << "    \"best_parallel_speedup\": " << best_parallel_speedup
     << "\n  }\n}\n";
}

void write_overhead_run(std::ostream& os, const char* key,
                        const OverheadRun& r, const char* trailing) {
  os << "    \"" << key << "\": {\n"
     << "      \"deliveries\": " << r.deliveries << ",\n"
     << "      \"seconds\": " << std::setprecision(6) << std::fixed
     << r.seconds << ",\n"
     << "      \"events_per_sec\": " << std::setprecision(1)
     << r.events_per_sec() << ",\n"
     << "      \"checksum\": \"" << std::hex << r.checksum << std::dec
     << "\"\n    }" << trailing << "\n";
}

void write_pr9_json(std::ostream& os, const std::vector<ScalingRow>& scaling,
                    const OverheadResult& overhead, const TraceInfo* trace,
                    bool quick, unsigned threads) {
  bool registry_consistent = true;
  for (const auto& row : scaling) {
    registry_consistent = registry_consistent && row.registry_consistent;
  }
  const bool target_met = overhead.overhead_pct() <= 3.0;

  os << "{\n"
     << "  \"bench\": \"BENCH_PR9\",\n"
     << "  \"schema_version\": 1,\n"
     << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
     << "  \"threads\": " << threads << ",\n"
     << "  \"obs_compiled_in\": " << (obs::kObsEnabled ? "true" : "false")
     << ",\n"
     << "  \"farm_scaling\": [\n";
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    const auto& row = scaling[i];
    os << "    {\n"
       << "      \"threads\": " << row.threads << ",\n"
       << "      \"steals\": " << row.steals << ",\n"
       << "      \"blocks_dealt\": " << row.blocks_dealt << ",\n"
       << "      \"registry_steals\": " << row.registry_steals << ",\n"
       << "      \"registry_cells\": " << row.registry_cells << ",\n"
       << "      \"registry_consistent\": "
       << (row.registry_consistent ? "true" : "false") << "\n    }"
       << (i + 1 < scaling.size() ? "," : "") << "\n";
  }
  os << "  ],\n"
     << "  \"obs_overhead\": {\n"
     << "    \"topology\": \"grid\",\n"
     << "    \"nodes\": " << overhead.nodes << ",\n"
     << "    \"lanes\": " << overhead.lanes << ",\n"
     << "    \"batches\": " << overhead.batches << ",\n"
     << "    \"reps\": " << overhead.reps << ",\n";
  write_overhead_run(os, "registry_enabled", overhead.enabled, ",");
  write_overhead_run(os, "registry_disabled", overhead.disabled, ",");
  os << "    \"deliveries_match\": "
     << (overhead.deliveries_match() ? "true" : "false") << ",\n"
     << "    \"checksums_match\": "
     << (overhead.checksums_match() ? "true" : "false") << ",\n"
     << "    \"overhead_pct\": " << std::setprecision(3) << std::fixed
     << overhead.overhead_pct() << ",\n"
     << "    \"overhead_target_pct\": 3.0,\n"
     << "    \"overhead_target_met\": " << (target_met ? "true" : "false")
     << "\n  },\n"
     << "  \"registry\": ";
  obs::Registry::global().snapshot().write_json(os, 2);
  os << ",\n"
     << "  \"trace\": ";
  if (trace == nullptr) {
    os << "null";
  } else {
    os << "{\n"
       << "    \"path\": \"" << trace->path << "\",\n"
       << "    \"exported\": " << (trace->exported ? "true" : "false")
       << ",\n"
       << "    \"events\": " << trace->events << ",\n"
       << "    \"dropped\": " << trace->dropped << "\n  }";
  }
  os << ",\n"
     << "  \"summary\": {\n"
     << "    \"registry_consistent\": "
     << (registry_consistent ? "true" : "false") << ",\n"
     << "    \"overhead_pct\": " << overhead.overhead_pct() << ",\n"
     << "    \"overhead_target_met\": " << (target_met ? "true" : "false")
     << ",\n"
     << "    \"on_off_semantics_identical\": "
     << (overhead.deliveries_match() && overhead.checksums_match() ? "true"
                                                                   : "false")
     << "\n  }\n}\n";
}

}  // namespace
}  // namespace sensornet::bench

int main(int argc, char** argv) {
  using namespace sensornet::bench;
  bool quick = false;
  std::string out_path = "BENCH_PR7.json";
  std::string out9_path = "BENCH_PR9.json";
  std::string trace_path;
  unsigned threads = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--out9" && i + 1 < argc) {
      out9_path = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<unsigned>(std::stoul(argv[++i]));
    } else {
      std::cerr << "usage: perf_driver [--quick] [--out PATH] [--out9 PATH] "
                   "[--threads N] [--trace PATH]\n";
      return 2;
    }
  }

  const Scale& s = quick ? kQuick : kFull;
  sensornet::TrialFarm farm(threads);
  std::cout << "PERF simulator hot-path benchmark ("
            << (quick ? "quick" : "full") << " matrix, " << farm.threads()
            << " worker(s))\n\n";
  const auto results = run_matrix(s, farm);
  std::cout << "\n## thread scaling (hardware threads: "
            << sensornet::resolve_thread_count(0) << ")\n";
  const auto scaling = run_thread_scaling(s);
  std::cout << "\n## scale ladder\n";
  const auto scale_rows = run_scale_ladder(s);
  std::cout << "\n## telemetry\n";
  const auto overhead = run_obs_overhead(s);
  TraceInfo trace;
  if (!trace_path.empty()) {
    trace = export_trace(trace_path);
    std::cout << "trace: " << trace.events << " event(s), " << trace.dropped
              << " dropped -> " << trace.path
              << (trace.exported ? "" : "   [WRITE FAILED]") << "\n";
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << " for writing\n";
    return 1;
  }
  write_json(out, results, scaling, scale_rows, quick, farm.threads());
  std::cout << "\nwrote " << out_path << "\n";

  std::ofstream out9(out9_path);
  if (!out9) {
    std::cerr << "cannot open " << out9_path << " for writing\n";
    return 1;
  }
  write_pr9_json(out9, scaling, overhead,
                 trace_path.empty() ? nullptr : &trace, quick,
                 farm.threads());
  std::cout << "wrote " << out9_path << "\n";

  for (const auto& r : results) {
    if (!r.deliveries_match) {
      std::cerr << "FATAL: delivery count mismatch in " << r.name
                << " — semantics drift between simulator generations\n";
      return 1;
    }
  }
  for (const auto& row : scaling) {
    if (row.checksum != scaling.front().checksum) {
      std::cerr << "FATAL: thread-scaling checksum diverged at "
                << row.threads << " workers — scheduling leaked into "
                << "trial outcomes\n";
      return 1;
    }
    if (!row.registry_consistent) {
      std::cerr << "FATAL: obs registry disagrees with the farm's own "
                << "accounting at " << row.threads << " workers\n";
      return 1;
    }
  }
  if (!overhead.deliveries_match() || !overhead.checksums_match()) {
    std::cerr << "FATAL: enabling the metrics registry changed simulation "
              << "semantics (deliveries or checksum drifted)\n";
    return 1;
  }
  if (!trace_path.empty() && !trace.exported) {
    std::cerr << "cannot open " << trace_path << " for writing\n";
    return 1;
  }
  return 0;
}
