// PERF — simulator hot-path benchmark with an in-run seed baseline.
//
// Runs a scenario matrix (line / grid / random-geometric / complete
// single-hop topologies, with and without message loss, across a unicast /
// broadcast / tree-wave protocol mix) on BOTH the production simulator
// (CSR graph + shared payload slabs + calendar queue) and a faithful replica
// of the seed simulator (bench/util/legacy_sim.hpp), in the same process,
// and emits BENCH_PR2.json with deliveries/sec, ns/delivery and peak
// in-flight bytes for each, plus the speedup ratio. Delivery counts are
// cross-checked between the two implementations — a mismatch means the
// rearchitected event loop changed semantics, and the row is flagged.
//
// Usage: perf_driver [--quick] [--out PATH]
//   --quick   smaller scenario sizes (CI smoke lane)
//   --out     output JSON path (default: BENCH_PR2.json)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/net/spanning_tree.hpp"
#include "src/net/topology.hpp"
#include "src/sim/network.hpp"
#include "util/legacy_sim.hpp"

namespace sensornet::bench {
namespace {

// ---------------------------------------------------------------------------
// Uniform access to both simulator generations.
// ---------------------------------------------------------------------------
template <class Net>
struct SimTraits;

template <>
struct SimTraits<sim::Network> {
  using Msg = sim::Message;
  using Handler = sim::ProtocolHandler;
};

template <>
struct SimTraits<LegacyNetwork> {
  using Msg = LegacyMessage;
  using Handler = LegacyProtocolHandler;
};

/// Counts deliveries; the sink for storm / burst scenarios.
template <class Net>
class CountingHandler final : public SimTraits<Net>::Handler {
 public:
  std::uint64_t deliveries = 0;
  void on_message(Net&, NodeId,
                  const typename SimTraits<Net>::Msg&) override {
    ++deliveries;
  }
};

/// Relays each message one hop to the right along a line.
template <class Net>
class RelayHandler final : public SimTraits<Net>::Handler {
  using Msg = typename SimTraits<Net>::Msg;

 public:
  std::uint64_t deliveries = 0;
  void on_message(Net& net, NodeId receiver, const Msg& msg) override {
    ++deliveries;
    if (receiver + 1 < net.node_count()) {
      BitWriter w;
      w.write_bits(0xC3, 8);
      net.send(Msg::make(receiver, receiver + 1, msg.session, 1,
                         std::move(w)));
    }
  }
};

/// Request-down / count-up broadcast-convergecast waves over a spanning
/// tree — the TreeWave access pattern, reimplemented here so one source
/// drives both simulator generations. `lanes` independent query sessions
/// run concurrently per batch (lanes == 1 is the classic sequential wave),
/// modeling a root that pipelines queries instead of idling between them.
/// Under loss a wave silently covers less of the tree (fine for throughput
/// measurement; the production TreeWave driver would throw). Per-batch
/// resets touch only nodes the previous wave reached, so driver bookkeeping
/// stays off the measured hot path.
template <class Net>
class WaveHandler final : public SimTraits<Net>::Handler {
  using Msg = typename SimTraits<Net>::Msg;

 public:
  WaveHandler(const net::SpanningTree& tree, unsigned lanes)
      : tree_(tree), lanes_(lanes), state_(lanes) {
    for (auto& s : state_) {
      s.pending.assign(tree_.parent.size(), 0);
      s.acc.assign(tree_.parent.size(), 0);
    }
  }

  std::uint64_t deliveries = 0;
  std::uint64_t root_total = 0;

  void run_batch(Net& net, std::uint32_t batch) {
    batch_ = batch;
    for (unsigned lane = 0; lane < lanes_; ++lane) {
      auto& s = state_[lane];
      for (const NodeId u : s.touched) {
        s.pending[u] = 0;
        s.acc[u] = 0;
      }
      s.touched.clear();
      start(net, lane, tree_.root);
    }
    net.run(*this);
  }

  void on_message(Net& net, NodeId receiver, const Msg& msg) override {
    ++deliveries;
    const unsigned lane =
        static_cast<unsigned>(msg.session - batch_ * lanes_);
    if (msg.kind == 1) {
      start(net, lane, receiver);
    } else {
      auto& s = state_[lane];
      BitReader r = msg.reader();
      s.acc[receiver] += r.read_bits(32);
      if (--s.pending[receiver] == 0) finish(net, lane, receiver);
    }
  }

 private:
  struct Lane {
    std::vector<std::size_t> pending;
    std::vector<std::uint64_t> acc;
    std::vector<NodeId> touched;
  };

  void start(Net& net, unsigned lane, NodeId node) {
    auto& s = state_[lane];
    s.touched.push_back(node);
    s.acc[node] = 1;
    const auto& children = tree_.children[node];
    s.pending[node] = children.size();
    if (children.empty()) {
      finish(net, lane, node);
      return;
    }
    for (const NodeId child : children) {
      BitWriter w;
      w.write_bits(0x5AA5, 16);
      net.send(
          Msg::make(node, child, batch_ * lanes_ + lane, 1, std::move(w)));
    }
  }

  void finish(Net& net, unsigned lane, NodeId node) {
    auto& s = state_[lane];
    if (node == tree_.root) {
      root_total += s.acc[node];
      return;
    }
    BitWriter w;
    w.write_bits(static_cast<std::uint32_t>(s.acc[node]), 32);
    net.send(Msg::make(node, tree_.parent[node], batch_ * lanes_ + lane, 2,
                       std::move(w)));
  }

  const net::SpanningTree& tree_;
  unsigned lanes_;
  std::uint32_t batch_ = 0;
  std::vector<Lane> state_;
};

// ---------------------------------------------------------------------------
// Scenario bodies (templated over the simulator generation).
// ---------------------------------------------------------------------------

/// Every node shared-medium-broadcasts a small payload, every round.
template <class Net>
std::uint64_t broadcast_storm(Net& net, unsigned rounds) {
  using Msg = typename SimTraits<Net>::Msg;
  CountingHandler<Net> sink;
  const auto n = static_cast<NodeId>(net.node_count());
  for (unsigned r = 0; r < rounds; ++r) {
    for (NodeId u = 0; u < n; ++u) {
      BitWriter w;
      w.write_bits(0xA5, 8);
      net.send_medium(Msg::make(u, kNoNode, r, 1, std::move(w)));
    }
    net.run(sink);
  }
  return sink.deliveries;
}

/// `batches` batches of `lanes` concurrent broadcast-convergecast waves
/// over the BFS tree.
template <class Net>
std::uint64_t tree_waves(Net& net, const net::SpanningTree& tree,
                         unsigned lanes, unsigned batches) {
  WaveHandler<Net> handler(tree, lanes);
  for (unsigned b = 0; b < batches; ++b) handler.run_batch(net, b);
  return handler.deliveries;
}

/// End-to-end unicast relays along a line.
template <class Net>
std::uint64_t line_relay(Net& net, unsigned passes) {
  using Msg = typename SimTraits<Net>::Msg;
  RelayHandler<Net> handler;
  for (unsigned p = 0; p < passes; ++p) {
    BitWriter w;
    w.write_bits(0xC3, 8);
    net.send(Msg::make(0, 1, p, 1, std::move(w)));
    net.run(handler);
  }
  return handler.deliveries;
}

/// Every node unicasts a 40-byte (register-array-sized, heap-slab) payload
/// to each neighbor, every round.
template <class Net, class G>
std::uint64_t neighbor_burst(Net& net, const G& graph, unsigned rounds) {
  using Msg = typename SimTraits<Net>::Msg;
  CountingHandler<Net> sink;
  const auto n = static_cast<NodeId>(net.node_count());
  for (unsigned r = 0; r < rounds; ++r) {
    for (NodeId u = 0; u < n; ++u) {
      for (const NodeId v : graph.neighbors(u)) {
        BitWriter w;
        w.reserve(320);
        for (int word = 0; word < 5; ++word) {
          w.write_bits(0x0123456789ABCDEFULL ^ word, 64);
        }
        net.send(Msg::make(u, v, r, 1, std::move(w)));
      }
    }
    net.run(sink);
  }
  return sink.deliveries;
}

// ---------------------------------------------------------------------------
// Measurement plumbing.
// ---------------------------------------------------------------------------
struct RunMetrics {
  std::uint64_t deliveries = 0;
  double seconds = 0.0;
  std::size_t peak_in_flight_bytes = 0;

  double deliveries_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(deliveries) / seconds : 0.0;
  }
  double ns_per_delivery() const {
    return deliveries > 0
               ? seconds * 1e9 / static_cast<double>(deliveries)
               : 0.0;
  }
};

struct ScenarioResult {
  std::string name;
  std::string topology;
  std::string protocol;
  std::size_t nodes = 0;
  double loss = 0.0;
  RunMetrics fresh;   // production simulator
  RunMetrics legacy;  // seed replica
  bool deliveries_match = false;

  double speedup() const {
    return legacy.deliveries_per_sec() > 0.0
               ? fresh.deliveries_per_sec() / legacy.deliveries_per_sec()
               : 0.0;
  }
};

template <class Net, class Body>
RunMetrics measure(Net& net, Body&& body) {
  const auto t0 = std::chrono::steady_clock::now();
  RunMetrics m;
  m.deliveries = body(net);
  const auto t1 = std::chrono::steady_clock::now();
  m.seconds = std::chrono::duration<double>(t1 - t0).count();
  m.peak_in_flight_bytes = net.peak_in_flight_bytes();
  return m;
}

/// Runs one scenario on both simulator generations over the same graph and
/// the same (seeded) loss stream. Legacy goes first; any allocator warm-up
/// therefore favors the baseline, not us.
template <class Body>
ScenarioResult run_scenario(std::string name, std::string topology,
                            std::string protocol, const net::Graph& graph,
                            double loss, Body&& body) {
  ScenarioResult res;
  res.name = std::move(name);
  res.topology = std::move(topology);
  res.protocol = std::move(protocol);
  res.nodes = graph.node_count();
  res.loss = loss;

  {
    LegacyNetwork legacy(LegacyGraph::from(graph));
    legacy.set_message_loss(loss);
    res.legacy = measure(legacy, body);
  }
  {
    sim::Network fresh(graph, /*master_seed=*/1);
    fresh.set_message_loss(loss);
    res.fresh = measure(fresh, body);
  }
  res.deliveries_match = res.fresh.deliveries == res.legacy.deliveries;

  std::cout << std::left << std::setw(34) << res.name << " legacy "
            << std::setw(10) << std::right << std::fixed
            << std::setprecision(0) << res.legacy.deliveries_per_sec()
            << "/s   new " << std::setw(10) << res.fresh.deliveries_per_sec()
            << "/s   x" << std::setprecision(2) << res.speedup()
            << (res.deliveries_match ? "" : "   [DELIVERY MISMATCH]") << "\n";
  return res;
}

// ---------------------------------------------------------------------------
// JSON emission (schema validated by the CI bench-smoke lane).
// ---------------------------------------------------------------------------
void write_metrics(std::ostream& os, const char* key, const RunMetrics& m,
                   const char* trailing) {
  os << "      \"" << key << "\": {\n"
     << "        \"deliveries\": " << m.deliveries << ",\n"
     << "        \"seconds\": " << std::setprecision(6) << std::fixed
     << m.seconds << ",\n"
     << "        \"deliveries_per_sec\": " << std::setprecision(1)
     << m.deliveries_per_sec() << ",\n"
     << "        \"ns_per_delivery\": " << std::setprecision(2)
     << m.ns_per_delivery() << ",\n"
     << "        \"peak_in_flight_bytes\": " << m.peak_in_flight_bytes
     << "\n      }" << trailing << "\n";
}

void write_json(std::ostream& os, const std::vector<ScenarioResult>& results,
                bool quick) {
  double broadcast_min = 0.0;
  double wave_min = 0.0;
  bool all_match = true;
  for (const auto& r : results) {
    all_match = all_match && r.deliveries_match;
    if (r.protocol == "broadcast-storm") {
      broadcast_min =
          broadcast_min == 0.0 ? r.speedup() : std::min(broadcast_min, r.speedup());
    }
    if (r.protocol == "tree-wave") {
      wave_min = wave_min == 0.0 ? r.speedup() : std::min(wave_min, r.speedup());
    }
  }

  os << "{\n"
     << "  \"bench\": \"BENCH_PR2\",\n"
     << "  \"schema_version\": 1,\n"
     << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
     << "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    os << "    {\n"
       << "      \"name\": \"" << r.name << "\",\n"
       << "      \"topology\": \"" << r.topology << "\",\n"
       << "      \"protocol\": \"" << r.protocol << "\",\n"
       << "      \"nodes\": " << r.nodes << ",\n"
       << "      \"loss\": " << std::setprecision(2) << std::fixed << r.loss
       << ",\n"
       << "      \"deliveries_match\": " << (r.deliveries_match ? "true" : "false")
       << ",\n";
    write_metrics(os, "new", r.fresh, ",");
    write_metrics(os, "legacy", r.legacy, ",");
    os << "      \"speedup\": " << std::setprecision(3) << std::fixed
       << r.speedup() << "\n    }" << (i + 1 < results.size() ? "," : "")
       << "\n";
  }
  os << "  ],\n"
     << "  \"summary\": {\n"
     << "    \"all_deliveries_match\": " << (all_match ? "true" : "false")
     << ",\n"
     << "    \"broadcast_min_speedup\": " << std::setprecision(3)
     << broadcast_min << ",\n"
     << "    \"tree_wave_min_speedup\": " << wave_min << ",\n"
     << "    \"broadcast_speedup_target\": 3.0,\n"
     << "    \"tree_wave_speedup_target\": 1.5,\n"
     << "    \"broadcast_target_met\": "
     << (broadcast_min >= 3.0 ? "true" : "false") << ",\n"
     << "    \"tree_wave_target_met\": " << (wave_min >= 1.5 ? "true" : "false")
     << "\n  }\n}\n";
}

// ---------------------------------------------------------------------------
// The scenario matrix.
// ---------------------------------------------------------------------------
struct Scale {
  std::size_t storm_nodes, storm_rounds;
  std::size_t wave_lanes;
  std::size_t line_nodes, line_batches;
  std::size_t grid_side, grid_batches;
  std::size_t geo_nodes, geo_batches;
  std::size_t seq_waves;
  std::size_t relay_nodes, relay_passes;
  std::size_t burst_grid_side, burst_grid_rounds;
  std::size_t burst_geo_nodes, burst_geo_rounds;
};

// Sized so every timed region runs for tens of milliseconds at seed-era
// throughput — long enough that steady_clock jitter stays in the noise.
constexpr Scale kFull{256, 40, 32, 2048, 8, 64, 4, 2048, 6, 150,
                      4096, 400, 64, 25, 2048, 40};
constexpr Scale kQuick{96, 25, 32, 512, 4, 32, 2, 512, 3, 40,
                       1024, 80, 32, 8, 512, 10};

std::vector<ScenarioResult> run_matrix(const Scale& s) {
  std::vector<ScenarioResult> results;
  const auto tag = [](const char* base, double loss) {
    return std::string(base) + (loss > 0.0 ? "/loss10" : "/loss0");
  };

  Xoshiro256 topo_rng(2024);
  const net::Graph complete = net::make_complete(s.storm_nodes);
  const net::Graph line = net::make_line(s.line_nodes);
  const net::Graph grid = net::make_grid(s.grid_side, s.grid_side);
  const net::Graph geo =
      net::make_topology(net::TopologyKind::kGeometric, s.geo_nodes, topo_rng);
  const net::Graph relay_line = net::make_line(s.relay_nodes);
  const net::Graph burst_grid =
      net::make_grid(s.burst_grid_side, s.burst_grid_side);
  const net::Graph burst_geo = net::make_topology(
      net::TopologyKind::kGeometric, s.burst_geo_nodes, topo_rng);

  const net::SpanningTree line_tree = net::bfs_tree(line, 0);
  const net::SpanningTree grid_tree = net::bfs_tree(grid, 0);
  const net::SpanningTree geo_tree = net::bfs_tree(geo, 0);

  for (const double loss : {0.0, 0.1}) {
    results.push_back(run_scenario(
        tag("storm/complete", loss), "complete", "broadcast-storm", complete,
        loss, [&](auto& net) {
          return broadcast_storm(net, static_cast<unsigned>(s.storm_rounds));
        }));
    results.push_back(run_scenario(
        tag("wave/line", loss), "line", "tree-wave", line, loss,
        [&](auto& net) {
          return tree_waves(net, line_tree,
                            static_cast<unsigned>(s.wave_lanes),
                            static_cast<unsigned>(s.line_batches));
        }));
    results.push_back(run_scenario(
        tag("wave/grid", loss), "grid", "tree-wave", grid, loss,
        [&](auto& net) {
          return tree_waves(net, grid_tree,
                            static_cast<unsigned>(s.wave_lanes),
                            static_cast<unsigned>(s.grid_batches));
        }));
    results.push_back(run_scenario(
        tag("wave/geometric", loss), "geometric", "tree-wave", geo, loss,
        [&](auto& net) {
          return tree_waves(net, geo_tree,
                            static_cast<unsigned>(s.wave_lanes),
                            static_cast<unsigned>(s.geo_batches));
        }));
    // Reference row: one wave at a time (a root that idles between
    // queries). With at most a handful of messages in flight there is no
    // queue pressure for the calendar to relieve; expect parity-to-modest
    // gains here, not the headline ratio.
    results.push_back(run_scenario(
        tag("waveseq/grid", loss), "grid", "tree-wave-seq", grid, loss,
        [&](auto& net) {
          return tree_waves(net, grid_tree, /*lanes=*/1,
                            static_cast<unsigned>(s.seq_waves));
        }));
    results.push_back(run_scenario(
        tag("relay/line", loss), "line", "unicast-relay", relay_line, loss,
        [&](auto& net) {
          return line_relay(net, static_cast<unsigned>(s.relay_passes));
        }));
    results.push_back(run_scenario(
        tag("burst/grid", loss), "grid", "neighbor-burst", burst_grid, loss,
        [&](auto& net) {
          return neighbor_burst(net, net.graph(),
                                static_cast<unsigned>(s.burst_grid_rounds));
        }));
    results.push_back(run_scenario(
        tag("burst/geometric", loss), "geometric", "neighbor-burst", burst_geo,
        loss, [&](auto& net) {
          return neighbor_burst(net, net.graph(),
                                static_cast<unsigned>(s.burst_geo_rounds));
        }));
  }
  return results;
}

}  // namespace
}  // namespace sensornet::bench

int main(int argc, char** argv) {
  using namespace sensornet::bench;
  bool quick = false;
  std::string out_path = "BENCH_PR2.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: perf_driver [--quick] [--out PATH]\n";
      return 2;
    }
  }

  std::cout << "PERF simulator hot-path benchmark ("
            << (quick ? "quick" : "full") << " matrix)\n\n";
  const auto results = run_matrix(quick ? kQuick : kFull);

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << " for writing\n";
    return 1;
  }
  write_json(out, results, quick);
  std::cout << "\nwrote " << out_path << "\n";

  for (const auto& r : results) {
    if (!r.deliveries_match) {
      std::cerr << "FATAL: delivery count mismatch in " << r.name
                << " — semantics drift between simulator generations\n";
      return 1;
    }
  }
  return 0;
}
