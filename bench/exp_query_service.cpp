// EXP — concurrent query service: shared aggregation, cache soundness,
// admission throughput (BENCH_PR8.json).
//
// Four lanes, one report:
//
//  1. Shared vs naive bits — an overlapping continuous-query lane (four
//     regions, sixteen `EVERY n EPOCHS` subscribers) runs twice on
//     identical deployments: once through the shared-plan scheduler
//     (grouped collections, dirty-mark incremental descent, bounded-error
//     cache) and once in naive mode (every due query re-runs the one-shot
//     executor). The claim gated here and in CI: shared ships at least 2x
//     fewer total bits.
//
//  2. Cache-bound soundness — during the shared run the driver maintains
//     a mirror of every sensor value and recomputes the exact aggregate
//     for each cache-served answer. |value - exact| must stay within the
//     answer's deterministic error bound, every time. Violations are
//     FATAL: the cache's whole contract is that its bounds are never
//     wrong, only sometimes loose.
//
//  3. Determinism — the same shared scenario replayed at several
//     submit_batch thread counts. An FNV-1a checksum over the full answer
//     stream (ids, epochs, values, bounds, flags, admission diagnostics,
//     total bits) must be identical at every count.
//
//  4. Churn / qps — bursts of one-shot admissions (including malformed
//     text and degenerate regions) mixed with continuous register/cancel
//     churn and epoch advancement, wall-clocked to a queries-per-second
//     figure.
//
// The report also carries a `telemetry` section: the shared run's
// per-query / per-group cost ledger (QueryService::telemetry_snapshot()),
// the result cache's probe/hit/miss/expired counters, and the mark-wave
// bucket. On the full lane the driver asserts the committed cache
// behavior exactly: 88 answers served from cache, and the cache's own
// hit counter agreeing with the service's answer accounting.
//
// Usage: exp_query_service [--quick] [--out PATH] [--threads N]
//                          [--trace PATH]
//   --quick    smaller deployment / fewer epochs (CI smoke lane)
//   --out      output JSON path (default: BENCH_PR8.json)
//   --threads  submit_batch farm workers; 0 = hardware concurrency
//   --trace    export a Chrome trace of a small shared run to PATH
#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/trial_farm.hpp"
#include "src/common/types.hpp"
#include "src/net/spanning_tree.hpp"
#include "src/net/topology.hpp"
#include "src/obs/trace.hpp"
#include "src/service/engine.hpp"
#include "src/sim/network.hpp"

namespace sensornet::bench {
namespace {

using service::Answer;
using service::QueryService;
using service::SensorUpdate;
using service::ServiceConfig;

constexpr Value kBound = 1000;

struct Scale {
  unsigned grid_side;        // shared-vs-naive deployment is side x side
  std::uint32_t epochs;      // continuous-lane epochs
  unsigned churn_side;       // churn-lane deployment
  unsigned churn_bursts;
};

constexpr Scale kFull = {32, 32, 24, 40};
constexpr Scale kQuick = {16, 12, 12, 8};

// ---------------------------------------------------------------------------
// Answer-stream checksum (determinism lane).
// ---------------------------------------------------------------------------
struct Fnv1a {
  std::uint64_t h = 1469598103934665603ull;
  void mix_bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  }
  void mix_u64(std::uint64_t v) { mix_bytes(&v, sizeof v); }
  void mix_answer(const Answer& a) {
    mix_u64(a.id);
    mix_u64(a.epoch);
    mix_u64(std::bit_cast<std::uint64_t>(a.value));
    mix_u64(std::bit_cast<std::uint64_t>(a.error_bound));
    mix_u64((a.exact ? 1u : 0u) | (a.from_cache ? 2u : 0u) |
            (a.empty_selection ? 4u : 0u));
  }
  void mix_str(const std::string& s) { mix_bytes(s.data(), s.size()); }
};

// ---------------------------------------------------------------------------
// Overlapping continuous-query lane.
// ---------------------------------------------------------------------------
struct ContinuousSpec {
  query::AggregateKind agg;
  Value lo, hi;       // region (0..kBound == whole domain)
  unsigned every;
  double error;       // 0 = exact subscriber
};

std::vector<ContinuousSpec> continuous_specs() {
  using query::AggregateKind;
  return {
      // Region A: whole domain, epsilon-tolerant mix — the cache's home turf.
      {AggregateKind::kCount, 0, kBound, 1, 0.0},
      {AggregateKind::kSum, 0, kBound, 1, 0.1},
      {AggregateKind::kAvg, 0, kBound, 2, 0.1},
      {AggregateKind::kCount, 0, kBound, 2, 0.0},
      // Region B.
      {AggregateKind::kSum, 100, 600, 1, 0.15},
      {AggregateKind::kAvg, 100, 600, 1, 0.15},
      {AggregateKind::kMin, 100, 600, 2, 0.1},
      {AggregateKind::kCount, 100, 600, 2, 0.1},
      // Region C.
      {AggregateKind::kMax, 250, 750, 1, 0.1},
      {AggregateKind::kMin, 250, 750, 1, 0.1},
      {AggregateKind::kSum, 250, 750, 2, 0.2},
      {AggregateKind::kAvg, 250, 750, 3, 0.2},
      // Region D: one exact subscriber keeps its whole group honest — the
      // group must collect fresh every epoch it is due.
      {AggregateKind::kSum, 400, 900, 1, 0.0},
      {AggregateKind::kCount, 400, 900, 1, 0.0},
      {AggregateKind::kMax, 400, 900, 2, 0.05},
      {AggregateKind::kAvg, 400, 900, 2, 0.1},
  };
}

std::string spec_text(const ContinuousSpec& s) {
  using query::AggregateKind;
  std::ostringstream os;
  os << "SELECT ";
  switch (s.agg) {
    case AggregateKind::kCount: os << "COUNT"; break;
    case AggregateKind::kSum: os << "SUM"; break;
    case AggregateKind::kAvg: os << "AVG"; break;
    case AggregateKind::kMin: os << "MIN"; break;
    case AggregateKind::kMax: os << "MAX"; break;
    default: os << "COUNT"; break;
  }
  os << "(v) FROM s";
  if (s.lo != 0 || s.hi != kBound) {
    os << " WHERE v BETWEEN " << s.lo << " AND " << s.hi;
  }
  os << " EVERY " << s.every << " EPOCHS";
  if (s.error > 0.0) os << " ERROR " << s.error;
  return os.str();
}

/// Exact aggregate over the mirror, for lane-2 soundness checks.
double exact_over(const std::vector<Value>& mirror, const ContinuousSpec& s,
                  bool& empty) {
  std::uint64_t count = 0;
  std::int64_t sum = 0;
  Value mn = kBound, mx = 0;
  for (Value v : mirror) {
    if (v < s.lo || v > s.hi) continue;
    ++count;
    sum += v;
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  empty = count == 0;
  switch (s.agg) {
    case query::AggregateKind::kCount: return static_cast<double>(count);
    case query::AggregateKind::kSum: return static_cast<double>(sum);
    case query::AggregateKind::kAvg:
      return empty ? 0.0 : static_cast<double>(sum) / count;
    case query::AggregateKind::kMin: return empty ? 0.0 : static_cast<double>(mn);
    case query::AggregateKind::kMax: return empty ? 0.0 : static_cast<double>(mx);
    default: return 0.0;
  }
}

struct LaneResult {
  std::uint64_t total_bits = 0;
  std::uint64_t answers = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t stats_waves = 0;
  std::uint64_t edges_descended = 0;
  std::uint64_t edges_skipped = 0;
  std::uint64_t mark_messages = 0;
  std::uint64_t cache_answers_checked = 0;
  std::uint64_t bound_violations = 0;
  std::uint64_t checksum = 0;
  service::TelemetrySnapshot telemetry;  // full cost-attribution ledger
};

/// Runs the overlapping continuous-query scenario once. Deterministic for a
/// fixed (side, epochs) regardless of `threads` — that invariance is lane 3.
LaneResult run_continuous_lane(const Scale& s, unsigned threads, bool shared) {
  const unsigned n = s.grid_side * s.grid_side;
  sim::Network net(net::make_grid(s.grid_side, s.grid_side),
                   /*master_seed=*/77);
  const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
  std::vector<Value> mirror(n);
  for (NodeId u = 0; u < n; ++u) {
    mirror[u] = static_cast<Value>((u * 37) % (kBound + 1));
  }
  net.set_one_item_per_node(mirror);

  ServiceConfig cfg;
  cfg.threads = threads;
  cfg.share_aggregation = shared;
  cfg.use_cache = shared;
  QueryService svc(query::Deployment{net, tree, kBound}, cfg);

  const std::vector<ContinuousSpec> specs = continuous_specs();
  std::vector<std::string> texts;
  texts.reserve(specs.size());
  for (const auto& spec : specs) texts.push_back(spec_text(spec));

  Fnv1a sum;
  LaneResult lane;
  // Admission order == spec order, so ids map back to specs by offset.
  std::vector<service::QueryId> ids;
  for (const auto& r : svc.submit_batch(texts)) {
    if (!r.ok()) {
      std::cerr << "FATAL: continuous-lane admission failed: " << r.error()
                << "\n";
      std::exit(1);
    }
    ids.push_back(r.value().id);
    sum.mix_u64(r.value().id);
  }

  for (std::uint32_t e = 1; e <= s.epochs; ++e) {
    // Rotate through the deployment: a quarter of the nodes drift each
    // epoch, so collections always have clean subtrees to skip.
    std::vector<SensorUpdate> batch;
    for (NodeId u = e % 4; u < n; u += 4) {
      const Value delta = (u + e) % 2 == 0 ? 3 : -3;
      const Value v = std::clamp<Value>(mirror[u] + delta, 0, kBound);
      mirror[u] = v;
      batch.push_back(SensorUpdate{u, v});
    }
    for (const Answer& a : svc.run_epoch(batch)) {
      sum.mix_answer(a);
      if (a.from_cache) {
        ++lane.cache_answers_checked;
        const ContinuousSpec& spec =
            specs[a.id - ids.front()];  // ids are contiguous per batch
        bool empty = false;
        const double truth = exact_over(mirror, spec, empty);
        if (!empty &&
            std::abs(a.value - truth) > a.error_bound + 1e-9) {
          ++lane.bound_violations;
          std::cerr << "bound violation: id=" << a.id << " epoch=" << e
                    << " value=" << a.value << " truth=" << truth
                    << " bound=" << a.error_bound << "\n";
        }
      }
    }
  }

  lane.total_bits = net.summary(/*include_headers=*/true).total_bits;
  lane.answers = svc.telemetry().answers;
  lane.cache_hits = svc.telemetry().cache_hits;
  lane.stats_waves = svc.plan_stats().stats_waves;
  lane.edges_descended = svc.plan_stats().edges_descended;
  lane.edges_skipped = svc.plan_stats().edges_skipped;
  lane.mark_messages = svc.plan_stats().mark_messages;
  lane.telemetry = svc.telemetry_snapshot();
  sum.mix_u64(lane.total_bits);
  lane.checksum = sum.h;
  return lane;
}

// ---------------------------------------------------------------------------
// Churn / qps lane.
// ---------------------------------------------------------------------------
struct ChurnResult {
  std::uint64_t submitted = 0;
  std::uint64_t answers = 0;
  std::uint64_t admission_errors = 0;
  std::uint64_t cancels = 0;
  double seconds = 0.0;
  double qps() const {
    return seconds > 0.0 ? static_cast<double>(answers) / seconds : 0.0;
  }
};

ChurnResult run_churn_lane(const Scale& s, unsigned threads) {
  const unsigned n = s.churn_side * s.churn_side;
  sim::Network net(net::make_grid(s.churn_side, s.churn_side),
                   /*master_seed=*/101);
  const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
  std::vector<Value> values(n);
  for (NodeId u = 0; u < n; ++u) {
    values[u] = static_cast<Value>((u * 53) % (kBound + 1));
  }
  net.set_one_item_per_node(values);

  ServiceConfig cfg;
  cfg.threads = threads;
  QueryService svc(query::Deployment{net, tree, kBound}, cfg);

  ChurnResult churn;
  std::vector<service::QueryId> rolling;  // continuous ids awaiting cancel
  const auto start = std::chrono::steady_clock::now();
  for (unsigned b = 0; b < s.churn_bursts; ++b) {
    const Value lo = static_cast<Value>((b * 61) % 500);
    const Value hi = lo + 300;
    std::ostringstream range;
    range << " WHERE v BETWEEN " << lo << " AND " << hi;
    const std::vector<std::string> burst = {
        "SELECT COUNT(v) FROM s" + range.str(),
        "SELECT SUM(v) FROM s" + range.str() + " ERROR 0.1",
        "SELECT AVG(v) FROM s" + range.str(),
        "SELECT MIN(v) FROM s" + range.str(),
        "SELECT MAX(v) FROM s",
        "SELECT MEDIAN(v) FROM s",
        "SELECT COUNT_DISTINCT(v) FROM s ERROR 0.1",
        "SELECT COUNT(v) FROM s WHERE v BETWEEN 400 AND 200",  // degenerate
        "SELECT SUM(v) FROM",                                  // malformed
        "SELECT COUNT(v) FROM s" + range.str() + " EVERY 2 EPOCHS",
        "SELECT AVG(v) FROM s EVERY 3 EPOCHS ERROR 0.1",
    };
    churn.submitted += burst.size();
    for (const auto& r : svc.submit_batch(burst)) {
      if (!r.ok()) {
        ++churn.admission_errors;
      } else if (r.value().answer) {
        ++churn.answers;
      } else {
        rolling.push_back(r.value().id);
      }
    }
    // Cancel the continuous queries registered two bursts ago.
    while (rolling.size() > 4) {
      svc.cancel(rolling.front());
      rolling.erase(rolling.begin());
      ++churn.cancels;
    }
    std::vector<SensorUpdate> batch;
    for (NodeId u = b % 3; u < n; u += 3) {
      const Value delta = (u + b) % 2 == 0 ? 2 : -2;
      const Value v = std::clamp<Value>(values[u] + delta, 0, kBound);
      values[u] = v;
      batch.push_back(SensorUpdate{u, v});
    }
    churn.answers += svc.run_epoch(batch).size();
  }
  churn.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return churn;
}

// ---------------------------------------------------------------------------
// Report.
// ---------------------------------------------------------------------------
struct DeterminismRow {
  unsigned threads = 0;
  std::uint64_t checksum = 0;
};

void write_json(std::ostream& os, const Scale& s, bool quick, unsigned threads,
                const LaneResult& shared, const LaneResult& naive,
                const std::vector<DeterminismRow>& det,
                const ChurnResult& churn) {
  const double ratio =
      shared.total_bits > 0
          ? static_cast<double>(naive.total_bits) / shared.total_bits
          : 0.0;
  bool deterministic = true;
  for (const auto& row : det) {
    deterministic = deterministic && row.checksum == det.front().checksum;
  }
  const double hit_rate =
      shared.answers > 0
          ? static_cast<double>(shared.cache_hits) / shared.answers
          : 0.0;

  os << "{\n"
     << "  \"bench\": \"BENCH_PR8\",\n"
     << "  \"schema_version\": 1,\n"
     << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
     << "  \"threads\": " << threads << ",\n"
     << "  \"hardware_threads\": " << resolve_thread_count(0) << ",\n"
     << "  \"shared_vs_naive\": {\n"
     << "    \"nodes\": " << s.grid_side * s.grid_side << ",\n"
     << "    \"epochs\": " << s.epochs << ",\n"
     << "    \"continuous_queries\": " << continuous_specs().size() << ",\n"
     << "    \"bits_shared\": " << shared.total_bits << ",\n"
     << "    \"bits_naive\": " << naive.total_bits << ",\n"
     << "    \"bits_ratio\": " << std::setprecision(3) << std::fixed << ratio
     << ",\n"
     << "    \"answers\": " << shared.answers << ",\n"
     << "    \"cache_hits\": " << shared.cache_hits << ",\n"
     << "    \"cache_hit_rate\": " << std::setprecision(4) << hit_rate
     << ",\n"
     << "    \"stats_waves\": " << shared.stats_waves << ",\n"
     << "    \"edges_descended\": " << shared.edges_descended << ",\n"
     << "    \"edges_skipped\": " << shared.edges_skipped << ",\n"
     << "    \"mark_messages\": " << shared.mark_messages << "\n"
     << "  },\n"
     << "  \"cache_bounds\": {\n"
     << "    \"cache_answers_checked\": " << shared.cache_answers_checked
     << ",\n"
     << "    \"bound_violations\": " << shared.bound_violations << "\n"
     << "  },\n";
  // Cost-attribution ledger for the shared run. Query bits follow the
  // marginal-cost rule (first due subscriber pays the shared wave), so
  // sum(query bits) + mark bits accounts for everything except the
  // one-time group-install broadcasts, which sit in the group ledger.
  const service::TelemetrySnapshot& t = shared.telemetry;
  std::uint64_t attributed_bits = t.mark_bits_on_air;
  for (const auto& [qid, qc] : t.queries) attributed_bits += qc.bits_on_air;
  os << "  \"telemetry\": {\n"
     << "    \"cache\": {\n"
     << "      \"probes\": " << t.cache.probes << ",\n"
     << "      \"lookups\": " << t.cache.lookups << ",\n"
     << "      \"hits\": " << t.cache.hits << ",\n"
     << "      \"exact_hits\": " << t.cache.exact_hits << ",\n"
     << "      \"zero_bit_answers\": " << t.cache.hits << ",\n"
     << "      \"misses\": " << t.cache.misses << ",\n"
     << "      \"expired\": " << t.cache.expired << ",\n"
     << "      \"absent\": " << t.cache.absent << "\n"
     << "    },\n"
     << "    \"mark_bits_on_air\": " << t.mark_bits_on_air << ",\n"
     << "    \"mark_messages\": " << t.mark_messages << ",\n"
     << "    \"queries\": [\n";
  for (auto it = t.queries.begin(); it != t.queries.end(); ++it) {
    const auto& qc = it->second;
    os << "      {\"id\": " << it->first << ", \"answers\": " << qc.answers
       << ", \"cache_hits\": " << qc.cache_hits << ", \"fresh\": " << qc.fresh
       << ", \"bits_on_air\": " << qc.bits_on_air << ", \"messages\": "
       << qc.messages << ", \"bound_slack\": " << std::setprecision(4)
       << std::fixed << qc.bound_slack << "}"
       << (std::next(it) != t.queries.end() ? "," : "") << "\n";
  }
  os << "    ],\n"
     << "    \"groups\": [\n";
  for (auto it = t.groups.begin(); it != t.groups.end(); ++it) {
    const auto& gc = it->second;
    os << "      {\"id\": " << it->first << ", \"subscribers\": "
       << gc.subscribers << ", \"collections\": " << gc.collections
       << ", \"bits_on_air\": " << gc.bits_on_air << ", \"messages\": "
       << gc.messages << "}" << (std::next(it) != t.groups.end() ? "," : "")
       << "\n";
  }
  os << "    ],\n"
     << "    \"attributed_bits\": " << attributed_bits << ",\n"
     << "    \"total_bits\": " << shared.total_bits << ",\n"
     << "    \"attribution_ratio\": " << std::setprecision(4) << std::fixed
     << (shared.total_bits > 0
             ? static_cast<double>(attributed_bits) / shared.total_bits
             : 0.0)
     << ",\n"
     << "    \"cache_hits_match_answers\": "
     << (t.cache.hits == shared.cache_hits ? "true" : "false") << "\n"
     << "  },\n"
     << "  \"determinism\": [\n";
  for (std::size_t i = 0; i < det.size(); ++i) {
    os << "    {\"threads\": " << det[i].threads << ", \"checksum\": \""
       << std::hex << det[i].checksum << std::dec << "\"}"
       << (i + 1 < det.size() ? "," : "") << "\n";
  }
  os << "  ],\n"
     << "  \"qps\": {\n"
     << "    \"nodes\": " << s.churn_side * s.churn_side << ",\n"
     << "    \"bursts\": " << s.churn_bursts << ",\n"
     << "    \"queries_submitted\": " << churn.submitted << ",\n"
     << "    \"admission_errors\": " << churn.admission_errors << ",\n"
     << "    \"cancels\": " << churn.cancels << ",\n"
     << "    \"answers\": " << churn.answers << ",\n"
     << "    \"seconds\": " << std::setprecision(6) << std::fixed
     << churn.seconds << ",\n"
     << "    \"qps\": " << std::setprecision(1) << churn.qps() << "\n"
     << "  },\n"
     << "  \"summary\": {\n"
     << "    \"bits_ratio\": " << std::setprecision(3) << ratio << ",\n"
     << "    \"bits_target\": 2.0,\n"
     << "    \"bits_target_met\": "
     << (shared.total_bits * 2 <= naive.total_bits ? "true" : "false")
     << ",\n"
     << "    \"bound_violations\": " << shared.bound_violations << ",\n"
     << "    \"bounds_sound\": "
     << (shared.bound_violations == 0 ? "true" : "false") << ",\n"
     << "    \"cache_served\": " << t.cache.hits << ",\n"
     << "    \"cache_hits_match_answers\": "
     << (t.cache.hits == shared.cache_hits ? "true" : "false") << ",\n"
     << "    \"deterministic_across_thread_counts\": "
     << (deterministic ? "true" : "false") << ",\n"
     << "    \"qps\": " << std::setprecision(1) << churn.qps() << "\n"
     << "  }\n}\n";
}

/// Replays a tiny shared run with the global trace ring live and exports
/// the Chrome trace_event JSON (chrome://tracing / Perfetto). Runs after
/// the measured lanes so tracing cost never touches a reported number.
bool export_trace(const std::string& path) {
  obs::TraceRing& ring = obs::TraceRing::global();
  ring.set_capacity(std::size_t{1} << 15);
  ring.set_enabled(true);
  const Scale tiny{8, 4, 8, 2};
  run_continuous_lane(tiny, /*threads=*/1, /*shared=*/true);
  ring.set_enabled(false);
  std::ofstream os(path);
  if (!os) return false;
  ring.export_chrome_json(os);
  std::cout << "trace: " << ring.size() << " event(s), " << ring.dropped()
            << " dropped -> " << path << "\n";
  ring.clear();
  return true;
}

}  // namespace
}  // namespace sensornet::bench

int main(int argc, char** argv) {
  using namespace sensornet::bench;
  bool quick = false;
  std::string out_path = "BENCH_PR8.json";
  std::string trace_path;
  unsigned threads = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<unsigned>(std::stoul(argv[++i]));
    } else {
      std::cerr << "usage: exp_query_service [--quick] [--out PATH] "
                   "[--threads N] [--trace PATH]\n";
      return 2;
    }
  }
  const Scale& s = quick ? kQuick : kFull;
  const unsigned resolved = sensornet::resolve_thread_count(threads);

  std::cout << "EXP query service (" << (quick ? "quick" : "full") << ", "
            << resolved << " worker(s))\n";

  std::cout << "## shared vs naive bits ("
            << s.grid_side * s.grid_side << " nodes, " << s.epochs
            << " epochs)\n";
  const LaneResult shared = run_continuous_lane(s, resolved, /*shared=*/true);
  const LaneResult naive = run_continuous_lane(s, resolved, /*shared=*/false);
  std::cout << "  shared: " << shared.total_bits << " bits, "
            << shared.cache_hits << "/" << shared.answers
            << " answers from cache\n"
            << "  naive:  " << naive.total_bits << " bits ("
            << std::setprecision(2) << std::fixed
            << (shared.total_bits
                    ? static_cast<double>(naive.total_bits) / shared.total_bits
                    : 0.0)
            << "x)\n";

  std::cout << "## determinism across thread counts\n";
  std::vector<unsigned> counts = {1, 2, resolved};
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  std::vector<DeterminismRow> det;
  for (const unsigned t : counts) {
    const LaneResult r = t == resolved
                             ? shared
                             : run_continuous_lane(s, t, /*shared=*/true);
    det.push_back({t, r.checksum});
    std::cout << "  threads=" << t << " checksum=" << std::hex << r.checksum
              << std::dec << "\n";
  }

  std::cout << "## churn / qps (" << s.churn_side * s.churn_side
            << " nodes, " << s.churn_bursts << " bursts)\n";
  const ChurnResult churn = run_churn_lane(s, resolved);
  std::cout << "  " << churn.answers << " answers in " << std::setprecision(3)
            << churn.seconds << "s -> " << std::setprecision(1) << churn.qps()
            << " qps (" << churn.admission_errors << " admission errors, "
            << churn.cancels << " cancels)\n";

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << " for writing\n";
    return 1;
  }
  write_json(out, s, quick, resolved, shared, naive, det, churn);
  std::cout << "wrote " << out_path << "\n";

  if (!trace_path.empty() && !export_trace(trace_path)) {
    std::cerr << "cannot open " << trace_path << " for writing\n";
    return 1;
  }

  // The cache's global hit counter must agree with the service's
  // answer-level accounting: a counted hit that was never served (or the
  // reverse) means the probe/lookup split leaked.
  if (shared.telemetry.cache.hits != shared.cache_hits) {
    std::cerr << "FATAL: cache counted " << shared.telemetry.cache.hits
              << " hit(s) but the service served " << shared.cache_hits
              << " cached answer(s)\n";
    return 1;
  }
  // The full lane is a committed workload: 16 subscribers, 32 epochs on a
  // 32x32 grid serve exactly 88 answers from cache. Any drift here is a
  // semantic change to the cache or scheduler and must be deliberate.
  if (!quick && shared.telemetry.cache.hits != 88) {
    std::cerr << "FATAL: full lane served " << shared.telemetry.cache.hits
              << " answers from cache, expected the committed 88\n";
    return 1;
  }

  if (shared.total_bits * 2 > naive.total_bits) {
    std::cerr << "FATAL: shared aggregation shipped " << shared.total_bits
              << " bits vs " << naive.total_bits
              << " naive — the 2x claim does not hold\n";
    return 1;
  }
  if (shared.bound_violations != 0) {
    std::cerr << "FATAL: " << shared.bound_violations
              << " cache-served answer(s) violated their error bound\n";
    return 1;
  }
  for (const auto& row : det) {
    if (row.checksum != det.front().checksum) {
      std::cerr << "FATAL: answer-stream checksum diverged at "
                << row.threads << " workers\n";
      return 1;
    }
  }
  return 0;
}
