// EXP-F21 — Fact 2.1: MIN / MAX / COUNT cost O(log N) bits per node over a
// bounded-degree spanning tree. The bits/log2(N) ratio column must stay
// roughly flat as N grows 64x.
#include <cstdint>

#include "src/common/mathutil.hpp"
#include "src/proto/counting_service.hpp"
#include "util/experiment.hpp"
#include "util/table.hpp"

namespace sensornet::bench {
namespace {

void run() {
  print_banner("EXP-F21", "Fact 2.1",
               "MIN/MAX/COUNT need O(log N) bits per node on bounded-degree "
               "trees; bits / log2(N) stays flat as N grows");

  for (const auto topology :
       {net::TopologyKind::kLine, net::TopologyKind::kGrid,
        net::TopologyKind::kGeometric}) {
    Table table({"topology", "N", "tree height", "MIN bits/node",
                 "MAX bits/node", "COUNT bits/node", "COUNT bits / log2 N"});
    for (const std::size_t n : {64UL, 256UL, 1024UL, 4096UL}) {
      Deployment d = make_deployment(topology, n, WorkloadKind::kUniform,
                                     static_cast<Value>(n * n), 42 + n);
      const std::size_t actual = d.net->node_count();
      proto::TreeCountingService svc(*d.net, d.tree);

      auto before = d.net->all_stats();
      svc.min_value();
      const std::uint64_t min_bits = window_max_node_bits(*d.net, before);

      before = d.net->all_stats();
      svc.max_value();
      const std::uint64_t max_bits = window_max_node_bits(*d.net, before);

      before = d.net->all_stats();
      svc.count_all();
      const std::uint64_t count_bits = window_max_node_bits(*d.net, before);

      table.add_row({net::topology_name(topology), std::to_string(actual),
                     std::to_string(d.tree.height()), fmt_bits(min_bits),
                     fmt_bits(max_bits), fmt_bits(count_bits),
                     fmt(static_cast<double>(count_bits) /
                         static_cast<double>(ceil_log2(actual)))});
    }
    table.print();
  }
}

}  // namespace
}  // namespace sensornet::bench

int main() {
  sensornet::bench::run();
  return 0;
}
