// EXP-T32 — Theorem 3.2: Fig. 1 computes the exact median with O((log N)^2)
// bits per node. Columns: exactness check, iteration count (= ceil log(M-m)),
// max bits/node, and the ratio to log^2 — flat ratio == theorem shape.
#include <cstdint>

#include "src/common/mathutil.hpp"
#include "src/core/det_median.hpp"
#include "src/proto/counting_service.hpp"
#include "util/experiment.hpp"
#include "util/table.hpp"

namespace sensornet::bench {
namespace {

void scaling_table(net::TopologyKind topology) {
  Table table({"topology", "N", "exact?", "iterations", "max bits/node",
               "bits / log2^2(N)"});
  for (const std::size_t n : {64UL, 256UL, 1024UL, 4096UL}) {
    Deployment d = make_deployment(topology, n, WorkloadKind::kUniform,
                                   static_cast<Value>(n * n), 1000 + n);
    const std::size_t actual = d.net->node_count();
    proto::TreeCountingService svc(*d.net, d.tree);
    const auto res = core::deterministic_median(svc);
    const bool exact = res.value == reference_median(d.items);
    const double log_n = static_cast<double>(ceil_log2(actual));
    table.add_row({net::topology_name(topology), std::to_string(actual),
                   exact ? "yes" : "NO",
                   std::to_string(res.iterations),
                   fmt_bits(d.net->summary().max_node_bits),
                   fmt(static_cast<double>(d.net->summary().max_node_bits) /
                       (log_n * log_n))});
  }
  table.print();
}

void workload_table() {
  Table table({"workload", "N", "exact?", "iterations", "COUNTP calls",
               "max bits/node"});
  const std::size_t n = 1024;
  for (const auto wl :
       {WorkloadKind::kUniform, WorkloadKind::kZipf,
        WorkloadKind::kClusteredField, WorkloadKind::kTwoPoint,
        WorkloadKind::kDenseCenter, WorkloadKind::kAllEqual}) {
    Deployment d = make_deployment(net::TopologyKind::kGrid, n, wl,
                                   1 << 20, 77);
    proto::TreeCountingService svc(*d.net, d.tree);
    const auto res = core::deterministic_median(svc);
    const bool exact = res.value == reference_median(d.items);
    table.add_row({workload_name(wl), std::to_string(d.net->node_count()),
                   exact ? "yes" : "NO", std::to_string(res.iterations),
                   std::to_string(res.countp_calls),
                   fmt_bits(d.net->summary().max_node_bits)});
  }
  table.print();
}

void value_range_table() {
  // Iterations track log(M - m), independent of N.
  Table table({"value range X", "N", "iterations", "max bits/node"});
  for (const unsigned logx : {8u, 12u, 16u, 20u}) {
    const std::size_t n = 512;
    Deployment d = make_deployment(net::TopologyKind::kLine, n,
                                   WorkloadKind::kUniform,
                                   (Value{1} << logx) - 1, 31 + logx);
    proto::TreeCountingService svc(*d.net, d.tree);
    const auto res = core::deterministic_median(svc);
    table.add_row({"2^" + std::to_string(logx), std::to_string(n),
                   std::to_string(res.iterations),
                   fmt_bits(d.net->summary().max_node_bits)});
  }
  table.print();
}

void run() {
  print_banner("EXP-T32", "Theorem 3.2",
               "deterministic median: exact answer, ceil(log(M-m)) COUNTP "
               "waves, O((log N)^2) bits per node — the bits/log^2 ratio "
               "stays bounded as N grows 64x");
  scaling_table(net::TopologyKind::kLine);
  scaling_table(net::TopologyKind::kGrid);
  workload_table();
  value_range_table();
}

}  // namespace
}  // namespace sensornet::bench

int main() {
  sensornet::bench::run();
  return 0;
}
