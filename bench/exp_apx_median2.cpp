// EXP-C48 — Theorem 4.7 / Corollary 4.8: the Fig. 4 zoom computes an
// (alpha, beta)-median with O((log log N)^3) bits per node. Tables: bits vs
// N against (loglog)^3 and log^2 yardsticks (the separation from Fig. 1),
// and achieved precision vs the beta target.
#include <cmath>
#include <cstdint>

#include "src/common/mathutil.hpp"
#include "src/core/apx_median2.hpp"
#include "src/core/det_median.hpp"
#include "src/proto/counting_service.hpp"
#include "util/experiment.hpp"
#include "util/table.hpp"

namespace sensornet::bench {
namespace {

core::ApxMedian2Params params_for(Value X, double beta) {
  core::ApxMedian2Params p;
  p.beta = beta;
  p.epsilon = 0.25;
  p.rep_scale = 0.2;  // scaled schedule (constants only; shape unchanged)
  p.registers = 16;
  p.max_value_bound = X;
  return p;
}

void scaling_table() {
  Table table({"N", "X", "apx2 bits/node", "det bits/node",
               "apx2 / (loglog N)^3", "det / (log N)^2"});
  for (const std::size_t n : {64UL, 256UL, 1024UL, 4096UL}) {
    const auto X = static_cast<Value>(n * n);
    std::uint64_t apx_bits = 0;
    std::uint64_t det_bits = 0;
    {
      Deployment d = make_deployment(net::TopologyKind::kLine, n,
                                     WorkloadKind::kUniform, X, 500 + n);
      core::approx_median2(*d.net, d.tree, params_for(X, 1.0 / 16));
      apx_bits = d.net->summary().max_node_bits;
    }
    {
      Deployment d = make_deployment(net::TopologyKind::kLine, n,
                                     WorkloadKind::kUniform, X, 500 + n);
      proto::TreeCountingService svc(*d.net, d.tree);
      core::deterministic_median(svc);
      det_bits = d.net->summary().max_node_bits;
    }
    const double loglog = std::log2(std::log2(static_cast<double>(n)));
    const double log_n = std::log2(static_cast<double>(n));
    table.add_row({std::to_string(n), "2^" + std::to_string(2 * ceil_log2(n)),
                   fmt_bits(apx_bits), fmt_bits(det_bits),
                   fmt(static_cast<double>(apx_bits) /
                       (loglog * loglog * loglog)),
                   fmt(static_cast<double>(det_bits) / (log_n * log_n))});
  }
  table.print();
  std::cout << "(apx2 pays a large constant from repetitions; the shape "
               "claim is the flat-ish ratio column, while det grows with "
               "log^2 N.)\n\n";
}

void beta_table() {
  Table table({"beta target", "stages (<= ceil log 1/beta)",
               "achieved width / X", "meets beta?", "bits/node"});
  const std::size_t n = 256;
  const Value X = 1 << 16;
  for (const double beta : {0.5, 1.0 / 8, 1.0 / 64, 1.0 / 512}) {
    Deployment d = make_deployment(net::TopologyKind::kGrid, n,
                                   WorkloadKind::kUniform, X, 900);
    const auto res = core::approx_median2(*d.net, d.tree, params_for(X, beta));
    const double width = static_cast<double>(res.interval_hi -
                                             res.interval_lo) /
                         static_cast<double>(X);
    // Each stage shrinks the interval by >= 2x; allow the rounding slack of
    // one extra halving when judging the target.
    table.add_row({fmt(beta, 4), std::to_string(res.stages), fmt(width, 5),
                   width <= 2 * beta ? "yes" : "NO",
                   fmt_bits(d.net->summary().max_node_bits)});
  }
  table.print();
}

void accuracy_table() {
  Table table({"workload", "N", "median", "apx2 value", "rank of value",
               "rank error / N"});
  const std::size_t n = 512;
  const Value X = 1 << 18;
  for (const auto wl : {WorkloadKind::kUniform, WorkloadKind::kZipf,
                        WorkloadKind::kClusteredField}) {
    Deployment d = make_deployment(net::TopologyKind::kGrid, n, wl, X, 321);
    const auto res = core::approx_median2(*d.net, d.tree,
                                          params_for(X, 1.0 / 256));
    const Value mu = reference_median(d.items);
    const double rank =
        static_cast<double>(rank_below(d.items, res.value + 1));
    const double err =
        std::abs(rank - static_cast<double>(d.items.size()) / 2.0) /
        static_cast<double>(d.items.size());
    table.add_row({workload_name(wl), std::to_string(d.items.size()),
                   std::to_string(mu), std::to_string(res.value), fmt(rank, 0),
                   fmt(err, 3)});
  }
  table.print();
}

void run() {
  print_banner(
      "EXP-C48", "Theorem 4.7 / Corollary 4.8",
      "Fig. 4 zoom: (alpha, beta)-median in ceil(log 1/beta) stages with "
      "polyloglog bits/node — contrast the flat apx2 ratio with Fig. 1's "
      "log^2 growth");
  scaling_table();
  beta_table();
  accuracy_table();
}

}  // namespace
}  // namespace sensornet::bench

int main() {
  sensornet::bench::run();
  return 0;
}
