// EXP-ROBUST — the robustness discussion of Section 2.2 / [2] / [10]:
// spanning-tree aggregation is fragile (one lost response deletes a
// subtree / stalls the wave), duplicate-insensitive multipath degrades
// gracefully, and gossip needs no structure at all — each at its own bit
// price. This experiment injects message loss and measures who still
// answers, how well, and at what cost.
//
// The loss sweep runs on the trial farm: each loss level is one matrix
// cell, schedulable on any worker, and every cell derives its state from
// its own DeploymentArena — so `--threads 8` prints byte-identical tables
// to `--threads 1`.
//
// Usage: exp_robustness [--threads N]   (0 = hardware concurrency)
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/trial_farm.hpp"
#include "src/proto/counting_service.hpp"
#include "src/proto/gossip.hpp"
#include "src/proto/multipath.hpp"
#include "src/proto/tree_wave.hpp"
#include "src/sketch/hll.hpp"
#include "util/experiment.hpp"
#include "util/table.hpp"

namespace sensornet::bench {
namespace {

struct LossRow {
  std::string tree_outcome;
  double mp_est = 0;
  std::size_t covered = 0;
  std::uint64_t mp_bits = 0;
  double gossip_est = 0;
  std::uint64_t gossip_bits = 0;
  std::uint64_t rebuilds_avoided = 0;
};

void loss_sweep(TrialFarm& farm) {
  Table table({"loss", "tree wave", "multipath estimate", "coverage",
               "multipath bits/node", "gossip estimate", "gossip bits/node"});
  const std::size_t n = 144;  // 12x12 grid
  constexpr double kTruth = 144.0;
  const std::vector<double> losses{0.0, 0.05, 0.15, 0.30};

  // One cell per loss level. The three lanes inside a cell (tree /
  // multipath / gossip) each used to rebuild the identical 12x12 grid
  // deployment; a cell-local arena builds it once and resets between lanes.
  const auto rows = farm.map<LossRow>(losses.size(), [&](std::size_t cell) {
    const double loss = losses[cell];
    DeploymentArena arena(net::TopologyKind::kGrid, n, WorkloadKind::kUniform,
                          1 << 12, 42);
    LossRow row;
    {
      Deployment& d = arena.lease();
      d.net->set_message_loss(loss);
      proto::LogLogAgg::Request req;
      req.registers = 128;
      req.width = 6;
      proto::TreeWave<proto::LogLogAgg> wave(d.tree, 1);
      try {
        const auto regs = wave.execute(*d.net, req);
        row.tree_outcome = "ok (" + fmt(regs.estimate(), 0) + ")";
      } catch (const ProtocolError&) {
        row.tree_outcome = "STALLED";
      }
    }
    {
      Deployment& d = arena.lease();
      d.net->set_message_loss(loss);
      proto::LogLogAgg::Request req;
      req.registers = 128;
      req.width = 6;
      const auto res = proto::multipath_loglog_sweep(*d.net, 0, req);
      row.mp_est = res.registers.estimate();
      row.covered = res.covered_nodes;
      row.mp_bits = d.net->summary().max_node_bits;
    }
    // Gossip needs rounds ~ mixing time; a 12x12 grid mixes in O(n) rounds
    // (the "diffusion speed" caveat the paper quotes about [6]), so this
    // lane runs 600 rounds. Lost mass biases push-sum downward.
    {
      Deployment& d = arena.lease();
      d.net->set_message_loss(loss);
      row.gossip_est = proto::gossip_count(*d.net, 0, 600).root_estimate;
      row.gossip_bits = d.net->summary().max_node_bits;
    }
    row.rebuilds_avoided = arena.rebuilds_avoided();
    return row;
  });

  std::uint64_t avoided = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const LossRow& row = rows[i];
    avoided += row.rebuilds_avoided;
    table.add_row({fmt(losses[i], 2), row.tree_outcome, fmt(row.mp_est, 0),
                   std::to_string(row.covered) + "/" + std::to_string(n),
                   fmt_bits(row.mp_bits), fmt(row.gossip_est, 0),
                   fmt_bits(row.gossip_bits)});
  }
  table.print();
  std::cout << "(truth = " << fmt(kTruth, 0)
            << ". Gossip under loss drops conserved mass, biasing the "
               "estimate down — push-sum assumes reliable channels; "
               "multipath's ODI registers only need one surviving path "
               "per contribution.)\n";
  const auto& stats = farm.last_stats();
  std::cout << "(farm: " << stats.threads << " worker(s), " << stats.cells
            << " cells, " << stats.steals << " steal(s); arenas absorbed "
            << avoided << " deployment rebuilds)\n\n";
}

void structure_cost_table() {
  std::cout << "### structure and diffusion speed (no loss, truth 256)\n\n";
  Table table({"protocol", "graph", "rounds", "estimate", "max bits/node",
               "needs tree?"});
  const std::size_t n = 256;
  // Four of the five rows run on the identical grid deployment; the arena
  // rebuilds none of them.
  DeploymentArena grid_arena(net::TopologyKind::kGrid, n,
                             WorkloadKind::kUniform, 1 << 12, 7);
  {
    Deployment& d = grid_arena.lease();
    proto::TreeCountingService svc(*d.net, d.tree);
    const auto c = svc.count_all();
    table.add_row({"tree COUNT (Fact 2.1)", "grid", "2h",
                   std::to_string(c),
                   fmt_bits(d.net->summary().max_node_bits), "yes"});
  }
  {
    Deployment& d = grid_arena.lease();
    proto::LogLogAgg::Request req;
    req.registers = 128;
    req.width = 6;
    const auto res = proto::multipath_loglog_sweep(*d.net, 0, req);
    table.add_row({"multipath LogLog (Fact 2.2 + [2])", "grid", "h",
                   fmt(res.registers.estimate(), 0),
                   fmt_bits(d.net->summary().max_node_bits), "no"});
  }
  // Push-sum's round budget is the mixing time: ~O(log N) on a complete
  // graph, ~O(N) on a grid — the "best possible diffusion speed" assumption
  // the paper quotes about [6], made concrete.
  {
    Deployment d = make_deployment(net::TopologyKind::kComplete, n,
                                   WorkloadKind::kUniform, 1 << 12, 7);
    const auto res = proto::gossip_count(*d.net, 0, 48);
    table.add_row({"push-sum gossip [6]", "complete", "48",
                   fmt(res.root_estimate, 0),
                   fmt_bits(d.net->summary().max_node_bits), "no"});
  }
  for (const unsigned rounds : {80u, 800u}) {
    Deployment& d = grid_arena.lease();
    const auto res = proto::gossip_count(*d.net, 0, rounds);
    table.add_row({"push-sum gossip [6]", "grid", std::to_string(rounds),
                   fmt(res.root_estimate, 0),
                   fmt_bits(d.net->summary().max_node_bits), "no"});
  }
  table.print();
  std::cout << "(grid arena served " << grid_arena.leases()
            << " trials for 1 build — " << grid_arena.rebuilds_avoided()
            << " rebuilds avoided)\n";
}

void run(unsigned threads) {
  print_banner("EXP-ROBUST", "Section 2.2 remark + [2]/[6]/[10]",
               "trees are cheap but fragile; ODI multipath pays redundancy "
               "for loss-tolerance; gossip needs no structure but more "
               "rounds — measured under injected message loss");
  TrialFarm farm(threads);
  loss_sweep(farm);
  structure_cost_table();
}

}  // namespace
}  // namespace sensornet::bench

int main(int argc, char** argv) {
  unsigned threads = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<unsigned>(std::stoul(argv[++i]));
    } else {
      std::cerr << "usage: exp_robustness [--threads N]\n";
      return 2;
    }
  }
  sensornet::bench::run(threads);
  return 0;
}
