// EXP-ROBUST — the robustness discussion of Section 2.2 / [2] / [10]:
// spanning-tree aggregation is fragile (one lost response deletes a
// subtree / stalls the wave), duplicate-insensitive multipath degrades
// gracefully, and gossip needs no structure at all — each at its own bit
// price. This experiment injects message loss and measures who still
// answers, how well, and at what cost.
#include <cmath>
#include <cstdint>

#include "src/common/error.hpp"
#include "src/proto/counting_service.hpp"
#include "src/proto/gossip.hpp"
#include "src/proto/multipath.hpp"
#include "src/proto/tree_wave.hpp"
#include "src/sketch/hll.hpp"
#include "util/experiment.hpp"
#include "util/table.hpp"

namespace sensornet::bench {
namespace {

void loss_sweep() {
  Table table({"loss", "tree wave", "multipath estimate", "coverage",
               "multipath bits/node", "gossip estimate", "gossip bits/node"});
  const std::size_t n = 144;  // 12x12 grid
  constexpr double kTruth = 144.0;
  for (const double loss : {0.0, 0.05, 0.15, 0.30}) {
    // Tree wave: does it complete at all?
    std::string tree_outcome;
    {
      Deployment d = make_deployment(net::TopologyKind::kGrid, n,
                                     WorkloadKind::kUniform, 1 << 12, 42);
      d.net->set_message_loss(loss);
      proto::LogLogAgg::Request req;
      req.registers = 128;
      req.width = 6;
      proto::TreeWave<proto::LogLogAgg> wave(d.tree, 1);
      try {
        const auto regs = wave.execute(*d.net, req);
        tree_outcome =
            "ok (" + fmt(regs.estimate(), 0) + ")";
      } catch (const ProtocolError&) {
        tree_outcome = "STALLED";
      }
    }
    // Multipath sweep.
    double mp_est = 0;
    std::size_t covered = 0;
    std::uint64_t mp_bits = 0;
    {
      Deployment d = make_deployment(net::TopologyKind::kGrid, n,
                                     WorkloadKind::kUniform, 1 << 12, 42);
      d.net->set_message_loss(loss);
      proto::LogLogAgg::Request req;
      req.registers = 128;
      req.width = 6;
      const auto res = proto::multipath_loglog_sweep(*d.net, 0, req);
      mp_est = res.registers.estimate();
      covered = res.covered_nodes;
      mp_bits = d.net->summary().max_node_bits;
    }
    // Gossip needs rounds ~ mixing time; a 12x12 grid mixes in O(n) rounds
    // (the "diffusion speed" caveat the paper quotes about [6]), so this
    // column runs 600 rounds. Lost mass biases push-sum downward.
    double gossip_est = 0;
    std::uint64_t gossip_bits = 0;
    {
      Deployment d = make_deployment(net::TopologyKind::kGrid, n,
                                     WorkloadKind::kUniform, 1 << 12, 42);
      d.net->set_message_loss(loss);
      gossip_est = proto::gossip_count(*d.net, 0, 600).root_estimate;
      gossip_bits = d.net->summary().max_node_bits;
    }
    table.add_row({fmt(loss, 2), tree_outcome, fmt(mp_est, 0),
                   std::to_string(covered) + "/" + std::to_string(n),
                   fmt_bits(mp_bits), fmt(gossip_est, 0),
                   fmt_bits(gossip_bits)});
  }
  table.print();
  std::cout << "(truth = " << fmt(kTruth, 0)
            << ". Gossip under loss drops conserved mass, biasing the "
               "estimate down — push-sum assumes reliable channels; "
               "multipath's ODI registers only need one surviving path "
               "per contribution.)\n\n";
}

void structure_cost_table() {
  std::cout << "### structure and diffusion speed (no loss, truth 256)\n\n";
  Table table({"protocol", "graph", "rounds", "estimate", "max bits/node",
               "needs tree?"});
  const std::size_t n = 256;
  {
    Deployment d = make_deployment(net::TopologyKind::kGrid, n,
                                   WorkloadKind::kUniform, 1 << 12, 7);
    proto::TreeCountingService svc(*d.net, d.tree);
    const auto c = svc.count_all();
    table.add_row({"tree COUNT (Fact 2.1)", "grid", "2h",
                   std::to_string(c),
                   fmt_bits(d.net->summary().max_node_bits), "yes"});
  }
  {
    Deployment d = make_deployment(net::TopologyKind::kGrid, n,
                                   WorkloadKind::kUniform, 1 << 12, 7);
    proto::LogLogAgg::Request req;
    req.registers = 128;
    req.width = 6;
    const auto res = proto::multipath_loglog_sweep(*d.net, 0, req);
    table.add_row({"multipath LogLog (Fact 2.2 + [2])", "grid", "h",
                   fmt(res.registers.estimate(), 0),
                   fmt_bits(d.net->summary().max_node_bits), "no"});
  }
  // Push-sum's round budget is the mixing time: ~O(log N) on a complete
  // graph, ~O(N) on a grid — the "best possible diffusion speed" assumption
  // the paper quotes about [6], made concrete.
  {
    Deployment d = make_deployment(net::TopologyKind::kComplete, n,
                                   WorkloadKind::kUniform, 1 << 12, 7);
    const auto res = proto::gossip_count(*d.net, 0, 48);
    table.add_row({"push-sum gossip [6]", "complete", "48",
                   fmt(res.root_estimate, 0),
                   fmt_bits(d.net->summary().max_node_bits), "no"});
  }
  for (const unsigned rounds : {80u, 800u}) {
    Deployment d = make_deployment(net::TopologyKind::kGrid, n,
                                   WorkloadKind::kUniform, 1 << 12, 7);
    const auto res = proto::gossip_count(*d.net, 0, rounds);
    table.add_row({"push-sum gossip [6]", "grid", std::to_string(rounds),
                   fmt(res.root_estimate, 0),
                   fmt_bits(d.net->summary().max_node_bits), "no"});
  }
  table.print();
}

void run() {
  print_banner("EXP-ROBUST", "Section 2.2 remark + [2]/[6]/[10]",
               "trees are cheap but fragile; ODI multipath pays redundancy "
               "for loss-tolerance; gossip needs no structure but more "
               "rounds — measured under injected message loss");
  loss_sweep();
  structure_cost_table();
}

}  // namespace
}  // namespace sensornet::bench

int main() {
  sensornet::bench::run();
  return 0;
}
