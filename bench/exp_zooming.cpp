// EXP-FIG3 — Figure 3: the zoom step of APX_MEDIAN2 visualized. One verbose
// run printing, per stage, the hat-domain order statistic mu-hat, the
// original-domain interval it implies, and an ASCII picture of the interval
// shrinking onto the median.
#include <cstdint>
#include <iostream>
#include <string>

#include "src/common/mathutil.hpp"
#include "src/core/apx_median2.hpp"
#include "util/experiment.hpp"
#include "util/table.hpp"

namespace sensornet::bench {
namespace {

std::string ascii_interval(Value lo, Value hi, Value x_max, Value median) {
  constexpr int kWidth = 64;
  std::string line(kWidth, '.');
  const auto pos = [&](Value v) {
    return static_cast<int>((static_cast<double>(v) /
                             static_cast<double>(x_max)) *
                            (kWidth - 1));
  };
  for (int i = pos(lo); i <= pos(hi); ++i) {
    line[static_cast<std::size_t>(i)] = '#';
  }
  line[static_cast<std::size_t>(pos(median))] = 'M';
  return line;
}

void run() {
  print_banner("EXP-FIG3", "Figure 3",
               "each stage pins the median into a dyadic interval of the "
               "current domain, rescales it onto [1, X] and recurses; the "
               "original-domain interval (#) zooms onto the median (M)");

  const std::size_t n = 512;
  const Value X = 1 << 20;
  // Uniform readings: no value mass straddles a dyadic boundary, so the
  // zoom's per-stage bucket choice is unambiguous and the picture is clean.
  // (Clustered fields whose bumps sit exactly on a power of two exercise the
  // alpha-amplification case instead — see EXP-C48's accuracy table.)
  Deployment d = make_deployment(net::TopologyKind::kGrid, n,
                                 WorkloadKind::kUniform, X, 2024);
  const Value median = reference_median(d.items);

  core::ApxMedian2Params params;
  params.beta = 1.0 / 4096;
  params.epsilon = 0.25;
  params.rep_scale = 0.2;
  params.registers = 64;
  params.max_value_bound = X;
  const auto res = core::approx_median2(*d.net, d.tree, params);

  Table table({"stage", "mu-hat", "interval (original domain)", "width / X",
               "rank target k"});
  for (const auto& st : res.trace) {
    // Built piecewise: the `"[" + to_string(..) + ...` rvalue chain trips
    // GCC 12's -Wrestrict false positive (PR 105651) at -O3 under -Werror.
    std::string interval = "[";
    interval += std::to_string(st.interval_lo);
    interval += ", ";
    interval += std::to_string(st.interval_hi);
    interval += "]";
    table.add_row(
        {std::to_string(st.stage), std::to_string(st.mu_hat), interval,
         fmt(static_cast<double>(st.interval_hi - st.interval_lo) /
                 static_cast<double>(X),
             6),
         fmt(st.k, 1)});
  }
  table.print();

  const double rank = static_cast<double>(rank_below(d.items, res.value + 1));
  std::cout << "true median = " << median << ", returned = " << res.value
            << " (rank " << rank << "/" << d.items.size()
            << "; Theorem 4.7's alpha grows by O(sigma) per stage, so a few "
               "percent of rank drift over "
            << res.stages << " stages is the predicted behaviour)\n\n";
  for (const auto& st : res.trace) {
    std::cout << "stage " << st.stage << "  "
              << ascii_interval(st.interval_lo, st.interval_hi, X, median)
              << "\n";
  }
  std::cout << "\nmax bits/node this run: "
            << fmt_bits(d.net->summary().max_node_bits) << "\n";
}

}  // namespace
}  // namespace sensornet::bench

int main() {
  sensornet::bench::run();
  return 0;
}
