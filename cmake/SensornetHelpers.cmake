# Target-declaration helpers shared by every directory of the build.

# sensornet_add_library(<name> SOURCES ... DEPS ...)
#
# One architectural layer as a static library. Every layer exports the
# repository root as its include directory so the canonical
# `#include "src/<layer>/<header>.hpp"` form works everywhere.
function(sensornet_add_library name)
  cmake_parse_arguments(ARG "" "" "SOURCES;DEPS" ${ARGN})
  add_library(${name} STATIC ${ARG_SOURCES})
  add_library(sensornet::${name} ALIAS ${name})
  target_include_directories(${name} PUBLIC ${PROJECT_SOURCE_DIR})
  target_link_libraries(${name} PUBLIC ${ARG_DEPS} PRIVATE sensornet::build_flags)
endfunction()

# sensornet_add_test(<stem>_test.cpp LIB <layer-lib>... [LABEL <labels>])
#
# One gtest suite, registered with ctest as <dirname>_<stem> and labeled
# `unit` (default) or `integration` so CI lanes can select subsets. LABEL
# accepts a semicolon-separated list (e.g. "unit;scheduler") for suites
# that belong to more than one lane.
function(sensornet_add_test src)
  cmake_parse_arguments(ARG "" "" "LIB;LABEL" ${ARGN})
  if(NOT ARG_LABEL)
    set(ARG_LABEL unit)
  endif()
  get_filename_component(stem ${src} NAME_WE)
  get_filename_component(dir ${CMAKE_CURRENT_SOURCE_DIR} NAME)
  set(name "${dir}_${stem}")
  add_executable(${name} ${src})
  target_link_libraries(${name} PRIVATE ${ARG_LIB} GTest::gtest_main sensornet::build_flags)
  add_test(NAME ${name} COMMAND ${name})
  # Generous timeout: sanitizer Debug builds are ~40x slower than Release.
  set_tests_properties(${name} PROPERTIES LABELS "${ARG_LABEL}" TIMEOUT 900)
endfunction()

# sensornet_add_bench(<name>.cpp DEPS ...) — one benchmark executable.
function(sensornet_add_bench src)
  cmake_parse_arguments(ARG "" "" "DEPS" ${ARGN})
  get_filename_component(name ${src} NAME_WE)
  add_executable(${name} ${src})
  target_link_libraries(${name} PRIVATE
    sensornet_bench_util ${ARG_DEPS} sensornet::build_flags)
endfunction()

# sensornet_add_example(<name>.cpp DEPS ...) — one example executable.
function(sensornet_add_example src)
  cmake_parse_arguments(ARG "" "" "DEPS" ${ARGN})
  get_filename_component(name ${src} NAME_WE)
  add_executable(${name} ${src})
  target_link_libraries(${name} PRIVATE ${ARG_DEPS} sensornet::build_flags)
endfunction()
