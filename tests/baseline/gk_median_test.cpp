#include "src/baseline/gk_median.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/error.hpp"
#include "src/common/mathutil.hpp"
#include "src/common/workload.hpp"
#include "src/net/topology.hpp"

namespace sensornet::baseline {
namespace {

TEST(GkMedian, ExactWhenBudgetGenerous) {
  // Budget larger than the distinct-value count -> no pruning -> exact.
  const ValueSet xs{10, 20, 30, 40, 50};
  sim::Network net(net::make_line(5), 1);
  net.set_one_item_per_node(xs);
  const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
  const auto res = gk_median(net, tree, 64);
  EXPECT_EQ(res.median, 30);
  EXPECT_EQ(res.population, 5u);
}

TEST(GkMedian, RankErrorWithinSummaryCertificate) {
  Xoshiro256 rng(3);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 64 + rng.next_below(100);
    ValueSet xs = generate_workload(WorkloadKind::kUniform, n, 1 << 18, rng);
    sim::Network net(net::make_grid(8, (n + 7) / 8), 10 + trial);
    // Grid may have a few more nodes than n: give extras empty item sets.
    for (NodeId u = 0; u < net.node_count(); ++u) {
      if (u < n) {
        net.set_items(u, {xs[u]});
      }
    }
    const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
    const auto res = gk_median(net, tree, 24);
    // The summary certifies its own uncertainty; the returned value's true
    // rank must be within that certificate (+1 for the query snap).
    const auto true_rank = static_cast<double>(rank_below(xs, res.median + 1));
    const double target = static_cast<double>((n + 1) / 2);
    // Query error <= distance to the chosen bracket + bracket width, both
    // bounded by the certified gap; double it (+ snap slack) to be safe.
    EXPECT_NEAR(true_rank, target,
                2.0 * static_cast<double>(res.rank_uncertainty) + 2.0)
        << "n=" << n;
  }
}

TEST(GkMedian, BudgetControlsAccuracyAndBits) {
  Xoshiro256 rng(5);
  const std::size_t n = 256;
  ValueSet xs(n);
  for (std::size_t i = 0; i < n; ++i) xs[i] = static_cast<Value>(i * 37);
  double err_small = 0;
  double err_large = 0;
  std::uint64_t bits_small = 0;
  std::uint64_t bits_large = 0;
  for (const std::size_t budget : {8UL, 64UL}) {
    sim::Network net(net::make_line(n), 9);
    net.set_one_item_per_node(xs);
    const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
    const auto res = gk_median(net, tree, budget);
    const double err = std::abs(static_cast<double>(res.median) -
                                static_cast<double>(reference_median(xs)));
    if (budget == 8) {
      err_small = err;
      bits_small = net.summary().max_node_bits;
    } else {
      err_large = err;
      bits_large = net.summary().max_node_bits;
    }
  }
  EXPECT_LE(err_large, err_small);
  EXPECT_GT(bits_large, bits_small);
}

TEST(GkMedian, SummaryEntriesRespectBudget) {
  Xoshiro256 rng(7);
  const std::size_t n = 128;
  const ValueSet xs = generate_workload(WorkloadKind::kUniform, n, 1 << 16, rng);
  sim::Network net(net::make_line(n), 11);
  net.set_one_item_per_node(xs);
  const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
  const auto res = gk_median(net, tree, 16);
  EXPECT_LE(res.root_summary_entries, 16u);
}

TEST(GkMedian, EmptyThrows) {
  sim::Network net(net::make_line(3), 1);
  const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
  EXPECT_THROW(gk_median(net, tree, 16), PreconditionError);
}

TEST(GkMedian, RejectsTinyBudget) {
  sim::Network net(net::make_line(3), 1);
  net.set_one_item_per_node({1, 2, 3});
  const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
  EXPECT_THROW(gk_median(net, tree, 1), PreconditionError);
}

}  // namespace
}  // namespace sensornet::baseline
