#include "src/baseline/singlehop_median.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/common/mathutil.hpp"
#include "src/common/workload.hpp"
#include "src/net/topology.hpp"

namespace sensornet::baseline {
namespace {

TEST(SingleHopMedian, ExactOnRandomInputs) {
  Xoshiro256 rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 3 + rng.next_below(40);
    ValueSet xs(n);
    for (auto& x : xs) x = static_cast<Value>(rng.next_below(1024));
    sim::Network net(net::make_complete(n), 10 + trial);
    net.set_one_item_per_node(xs);
    const auto res = single_hop_median(net, 0, 1023);
    EXPECT_EQ(res.median, reference_median(xs)) << "n=" << n;
  }
}

TEST(SingleHopMedian, TransmitReceiveAsymmetry) {
  // The [14] profile: per-node transmit O(log X), receive O(N log X).
  Xoshiro256 rng(3);
  const std::size_t n = 64;
  const Value X = 4095;
  const ValueSet xs = generate_workload(WorkloadKind::kUniform, n, X, rng);
  sim::Network net(net::make_complete(n), 5);
  net.set_one_item_per_node(xs);
  const auto res = single_hop_median(net, 0, X);
  EXPECT_EQ(res.median, reference_median(xs));
  // Transmit: exactly one presence bit per round, for every node.
  EXPECT_EQ(res.max_node_tx_bits, res.rounds);
  // Receive: every node overhears the other N-1 bits each round.
  EXPECT_EQ(res.max_node_rx_bits,
            static_cast<std::uint64_t>(res.rounds) * (n - 1));
  EXPECT_GT(res.max_node_rx_bits, 10 * res.max_node_tx_bits);
}

TEST(SingleHopMedian, RoundsAreLogarithmicInRange) {
  const std::size_t n = 16;
  ValueSet xs(n, 100);
  xs[0] = 5;
  xs[1] = 4000;
  sim::Network net(net::make_complete(n), 7);
  net.set_one_item_per_node(xs);
  const auto res = single_hop_median(net, 0, 4095);
  EXPECT_LE(res.rounds, ceil_log2(4096) + 2);
}

TEST(SingleHopMedian, EmptyThrows) {
  sim::Network net(net::make_complete(4), 1);
  EXPECT_THROW(single_hop_median(net, 0, 100), PreconditionError);
}

TEST(SingleHopMedian, DegenerateSingleNode) {
  sim::Network net(net::make_complete(1), 1);
  net.set_one_item_per_node({42});
  EXPECT_EQ(single_hop_median(net, 0, 100).median, 42);
}

}  // namespace
}  // namespace sensornet::baseline
