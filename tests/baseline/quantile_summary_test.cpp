#include "src/baseline/quantile_summary.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/bitio.hpp"
#include "src/common/mathutil.hpp"
#include "src/common/rng.hpp"

namespace sensornet::baseline {
namespace {

TEST(QuantileSummary, EmptySummary) {
  const QuantileSummary s;
  EXPECT_EQ(s.total(), 0u);
  EXPECT_TRUE(s.valid());
  EXPECT_FALSE(s.query_rank(1).has_value());
}

TEST(QuantileSummary, FromItemsExactBounds) {
  const QuantileSummary s = QuantileSummary::from_items({5, 3, 5, 9});
  EXPECT_EQ(s.total(), 4u);
  EXPECT_TRUE(s.valid());
  ASSERT_EQ(s.entry_count(), 3u);
  // 3 occupies rank 1; 5 ranks 2-3; 9 rank 4.
  EXPECT_EQ(s.entries()[0].rmin, 1u);
  EXPECT_EQ(s.entries()[0].rmax, 1u);
  EXPECT_EQ(s.entries()[1].rmin, 2u);
  EXPECT_EQ(s.entries()[1].rmax, 3u);
  EXPECT_EQ(s.entries()[2].rmin, 4u);
}

TEST(QuantileSummary, ExactQueriesWithoutPrune) {
  ValueSet xs{10, 20, 30, 40, 50, 60, 70};
  const QuantileSummary s = QuantileSummary::from_items(xs);
  for (std::uint64_t r = 1; r <= xs.size(); ++r) {
    EXPECT_EQ(*s.query_rank(r), static_cast<Value>(r * 10)) << "rank " << r;
  }
}

TEST(QuantileSummary, MergePreservesValidBounds) {
  Xoshiro256 rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    ValueSet a(1 + rng.next_below(30));
    ValueSet b(1 + rng.next_below(30));
    for (auto& x : a) x = static_cast<Value>(rng.next_below(100));
    for (auto& x : b) x = static_cast<Value>(rng.next_below(100));
    const QuantileSummary merged = QuantileSummary::merged(
        QuantileSummary::from_items(a), QuantileSummary::from_items(b));
    EXPECT_TRUE(merged.valid());
    EXPECT_EQ(merged.total(), a.size() + b.size());

    // Each tuple's bounds must bracket the true rank range of its value in
    // the combined multiset: ranks of value v span
    // [|{x < v}| + 1, |{x <= v}|].
    ValueSet all = a;
    all.insert(all.end(), b.begin(), b.end());
    for (const auto& e : merged.entries()) {
      const std::uint64_t lo = rank_below(all, e.value) + 1;
      const std::uint64_t hi = rank_below(all, e.value + 1);
      EXPECT_LE(e.rmin, hi) << "v=" << e.value;
      EXPECT_GE(e.rmax, lo) << "v=" << e.value;
    }
  }
}

TEST(QuantileSummary, MergeWithEmptyIsIdentity) {
  const QuantileSummary s = QuantileSummary::from_items({1, 2, 3});
  const QuantileSummary m = QuantileSummary::merged(s, QuantileSummary());
  EXPECT_EQ(m.total(), 3u);
  EXPECT_EQ(m.entry_count(), 3u);
}

TEST(QuantileSummary, PruneKeepsExtremesAndBudget) {
  ValueSet xs(100);
  for (std::size_t i = 0; i < 100; ++i) xs[i] = static_cast<Value>(i);
  const QuantileSummary s = QuantileSummary::from_items(xs);
  const QuantileSummary p = s.pruned(10);
  EXPECT_LE(p.entry_count(), 10u);
  EXPECT_TRUE(p.valid());
  EXPECT_EQ(p.entries().front().value, 0);
  EXPECT_EQ(p.entries().back().value, 99);
  EXPECT_EQ(p.total(), 100u);
}

TEST(QuantileSummary, PrunedQueryErrorBounded) {
  ValueSet xs(256);
  for (std::size_t i = 0; i < 256; ++i) xs[i] = static_cast<Value>(i);
  const QuantileSummary p = QuantileSummary::from_items(xs).pruned(17);
  // Median query should land within ~total/(B-1) ranks of truth.
  const Value got = *p.query_rank(128);
  EXPECT_NEAR(static_cast<double>(got), 127.0, 256.0 / 16.0 + 1);
}

TEST(QuantileSummary, WireRoundTrip) {
  Xoshiro256 rng(9);
  ValueSet xs(40);
  for (auto& x : xs) x = static_cast<Value>(rng.next_below(1000));
  const QuantileSummary s = QuantileSummary::from_items(xs).pruned(12);
  BitWriter w;
  s.encode(w);
  BitReader r(w.bytes().data(), w.bit_count());
  const QuantileSummary back = QuantileSummary::decode(r);
  EXPECT_EQ(back.total(), s.total());
  ASSERT_EQ(back.entry_count(), s.entry_count());
  for (std::size_t i = 0; i < s.entry_count(); ++i) {
    EXPECT_EQ(back.entries()[i].value, s.entries()[i].value);
    EXPECT_EQ(back.entries()[i].rmin, s.entries()[i].rmin);
    EXPECT_EQ(back.entries()[i].rmax, s.entries()[i].rmax);
  }
}

TEST(QuantileSummary, RepeatedMergePruneTelescopesGracefully) {
  // Simulate an 8-level aggregation chain: error must stay bounded by the
  // cumulative prune widening, far below total/2.
  Xoshiro256 rng(15);
  QuantileSummary acc;
  ValueSet all;
  for (int leaf = 0; leaf < 64; ++leaf) {
    ValueSet xs(16);
    for (auto& x : xs) x = static_cast<Value>(rng.next_below(100000));
    all.insert(all.end(), xs.begin(), xs.end());
    acc = QuantileSummary::merged(acc, QuantileSummary::from_items(xs))
              .pruned(33);
  }
  EXPECT_TRUE(acc.valid());
  EXPECT_EQ(acc.total(), all.size());
  const Value got = *acc.query_rank(all.size() / 2);
  const Value truth = reference_median(all);
  // Rank error tolerance: prune gap per level ~ N/32 per merge; empirical
  // bound of 15% of N in rank terms translated through the value domain.
  const auto got_rank = static_cast<double>(rank_below(all, got));
  const auto truth_rank = static_cast<double>(rank_below(all, truth));
  EXPECT_NEAR(got_rank, truth_rank, 0.15 * static_cast<double>(all.size()));
}

}  // namespace
}  // namespace sensornet::baseline
