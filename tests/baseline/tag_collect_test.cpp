#include "src/baseline/tag_collect.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/common/mathutil.hpp"
#include "src/common/workload.hpp"
#include "src/net/topology.hpp"

namespace sensornet::baseline {
namespace {

TEST(TagCollect, ExactMedian) {
  Xoshiro256 rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 3 + rng.next_below(60);
    ValueSet xs(n);
    for (auto& x : xs) x = static_cast<Value>(rng.next_below(1 << 20));
    sim::Network net(net::make_line(n), 10 + trial);
    net.set_one_item_per_node(xs);
    const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
    const auto res = tag_collect_median(net, tree);
    EXPECT_EQ(res.median, reference_median(xs));
    EXPECT_EQ(res.items_collected, n);
  }
}

TEST(TagCollect, EmptyThrows) {
  sim::Network net(net::make_line(3), 1);
  const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
  EXPECT_THROW(tag_collect_median(net, tree), PreconditionError);
}

TEST(TagCollect, BottleneckBitsGrowLinearly) {
  // The point of the baseline: some node forwards Theta(N log X) bits.
  std::uint64_t bits_small = 0;
  std::uint64_t bits_large = 0;
  Xoshiro256 rng(3);
  for (const std::size_t n : {64UL, 512UL}) {
    const ValueSet xs =
        generate_workload(WorkloadKind::kUniform, n, 1 << 20, rng);
    sim::Network net(net::make_line(n), 5);
    net.set_one_item_per_node(xs);
    const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
    tag_collect_median(net, tree);
    (n == 64 ? bits_small : bits_large) = net.summary().max_node_bits;
  }
  EXPECT_GT(bits_large, 5 * bits_small);  // 8x nodes -> ~8x bits
}

}  // namespace
}  // namespace sensornet::baseline
