#include "src/baseline/sampling_median.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/error.hpp"
#include "src/common/mathutil.hpp"
#include "src/common/workload.hpp"
#include "src/net/topology.hpp"

namespace sensornet::baseline {
namespace {

TEST(SamplingMedian, FullSampleIsExact) {
  // target >= N -> p = 1 -> every item sampled -> exact median.
  const ValueSet xs{9, 1, 5, 3, 7};
  sim::Network net(net::make_line(5), 1);
  net.set_one_item_per_node(xs);
  const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
  const auto res = sampling_median(net, tree, 100);
  EXPECT_EQ(res.median, reference_median(xs));
  EXPECT_EQ(res.sample_size, 5u);
  EXPECT_EQ(res.population, 5u);
}

TEST(SamplingMedian, RankErrorShrinksWithSampleSize) {
  Xoshiro256 rng(3);
  const std::size_t n = 512;
  ValueSet xs(n);
  for (std::size_t i = 0; i < n; ++i) xs[i] = static_cast<Value>(i);
  const auto rank_error = [&](std::uint64_t target, std::uint64_t seed) {
    double total = 0;
    constexpr int kTrials = 10;
    for (int t = 0; t < kTrials; ++t) {
      sim::Network net(net::make_line(n), seed + t);
      net.set_one_item_per_node(xs);
      const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
      const auto res = sampling_median(net, tree, target);
      total += std::abs(static_cast<double>(res.median) -
                        static_cast<double>(n) / 2.0);
    }
    return total / kTrials;
  };
  const double err_small = rank_error(16, 100);
  const double err_large = rank_error(256, 200);
  EXPECT_LT(err_large, err_small);
}

TEST(SamplingMedian, BitsScaleWithSampleSizeNotPopulation) {
  Xoshiro256 rng(5);
  const std::size_t n = 512;
  const ValueSet xs = generate_workload(WorkloadKind::kUniform, n, 1 << 16, rng);
  std::uint64_t bits_16 = 0;
  std::uint64_t bits_256 = 0;
  {
    sim::Network net(net::make_line(n), 7);
    net.set_one_item_per_node(xs);
    const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
    sampling_median(net, tree, 16);
    bits_16 = net.summary().max_node_bits;
  }
  {
    sim::Network net(net::make_line(n), 7);
    net.set_one_item_per_node(xs);
    const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
    sampling_median(net, tree, 256);
    bits_256 = net.summary().max_node_bits;
  }
  EXPECT_GT(bits_256, 2 * bits_16);
}

TEST(SamplingMedian, RejectsZeroTarget) {
  sim::Network net(net::make_line(3), 1);
  net.set_one_item_per_node({1, 2, 3});
  const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
  EXPECT_THROW(sampling_median(net, tree, 0), PreconditionError);
}

TEST(SamplingMedian, EmptyPopulationThrows) {
  sim::Network net(net::make_line(3), 1);
  const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
  EXPECT_THROW(sampling_median(net, tree, 8), PreconditionError);
}

}  // namespace
}  // namespace sensornet::baseline
