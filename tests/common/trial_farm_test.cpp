// The scheduler's whole contract: every cell runs exactly once, results
// land at their cell index, and nothing about worker count or steal order
// leaks into what a cell computes.
#include "src/common/trial_farm.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

namespace sensornet {
namespace {

TEST(TrialSeed, DeterministicAndSeparating) {
  EXPECT_EQ(trial_seed(42, 0), trial_seed(42, 0));
  std::set<std::uint64_t> seen;
  for (std::uint64_t cell = 0; cell < 1000; ++cell) {
    seen.insert(trial_seed(42, cell));
  }
  EXPECT_EQ(seen.size(), 1000u);  // no collisions across adjacent cells
  EXPECT_NE(trial_seed(42, 7), trial_seed(43, 7));  // master seed matters
}

TEST(TrialFarm, ResolveThreadCountZeroMeansHardware) {
  EXPECT_GE(resolve_thread_count(0), 1u);
  EXPECT_EQ(resolve_thread_count(3), 3u);
}

TEST(TrialFarm, EveryCellRunsExactlyOnce) {
  constexpr std::size_t kCells = 100;
  std::vector<std::atomic<int>> visits(kCells);
  TrialFarm farm(4);
  farm.for_each(kCells, [&](std::size_t cell) { visits[cell].fetch_add(1); });
  for (std::size_t cell = 0; cell < kCells; ++cell) {
    EXPECT_EQ(visits[cell].load(), 1) << "cell " << cell;
  }
  EXPECT_EQ(farm.last_stats().cells, kCells);
}

TEST(TrialFarm, OneWorkerRunsInlineInAscendingOrder) {
  TrialFarm farm(1);
  std::vector<std::size_t> order;
  farm.for_each(10, [&](std::size_t cell) { order.push_back(cell); });
  ASSERT_EQ(order.size(), 10u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
  EXPECT_EQ(farm.last_stats().threads, 1u);
  EXPECT_EQ(farm.last_stats().steals, 0u);
}

TEST(TrialFarm, WorkersClampedToCellCount) {
  TrialFarm farm(8);
  farm.for_each(3, [](std::size_t) {});
  EXPECT_EQ(farm.last_stats().threads, 3u);
  farm.for_each(0, [](std::size_t) { FAIL() << "no cells to run"; });
  EXPECT_EQ(farm.last_stats().cells, 0u);
}

TEST(TrialFarm, MapResultsIndexedByCellAtEveryWorkerCount) {
  // The determinism keystone: out[cell] is a pure function of cell, so the
  // collected vector is identical no matter how cells were scheduled.
  const auto compute = [](std::size_t cell) {
    return trial_seed(99, cell) ^ (cell * 0x9E3779B97F4A7C15ULL);
  };
  TrialFarm serial(1);
  const auto expected = serial.map<std::uint64_t>(64, compute);
  for (const unsigned threads : {2u, 4u, 8u}) {
    TrialFarm farm(threads);
    EXPECT_EQ(farm.map<std::uint64_t>(64, compute), expected)
        << "at " << threads << " workers";
  }
}

TEST(TrialFarm, StealsObservedWhenAWorkerStalls) {
  // Two workers, four cells: worker 1 blocks on its first cell (2) until
  // cell 3 — still sitting at the back of its deque — has run. Only a steal
  // by worker 0 can satisfy that, so the farm either steals or deadlocks
  // (bounded below by the give-up clock).
  TrialFarm farm(2);
  std::atomic<bool> stolen_cell_done{false};
  farm.for_each(4, [&](std::size_t cell) {
    if (cell == 2) {
      const auto give_up =
          std::chrono::steady_clock::now() + std::chrono::seconds(30);
      while (!stolen_cell_done.load() &&
             std::chrono::steady_clock::now() < give_up) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    if (cell == 3) stolen_cell_done.store(true);
  });
  EXPECT_TRUE(stolen_cell_done.load());
  EXPECT_GE(farm.last_stats().steals, 1u);
}

TEST(TrialFarm, FirstExceptionPropagatesAfterDrain) {
  TrialFarm farm(4);
  EXPECT_THROW(farm.for_each(32,
                             [](std::size_t cell) {
                               if (cell == 13) throw std::runtime_error("13");
                             }),
               std::runtime_error);
}

}  // namespace
}  // namespace sensornet
