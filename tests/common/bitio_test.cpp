#include "src/common/bitio.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"

namespace sensornet {
namespace {

TEST(BitIo, EmptyWriter) {
  BitWriter w;
  EXPECT_EQ(w.bit_count(), 0u);
  EXPECT_TRUE(w.bytes().empty());
}

TEST(BitIo, SingleBits) {
  BitWriter w;
  w.write_bit(true);
  w.write_bit(false);
  w.write_bit(true);
  EXPECT_EQ(w.bit_count(), 3u);
  BitReader r(w.bytes().data(), w.bit_count());
  EXPECT_TRUE(r.read_bit());
  EXPECT_FALSE(r.read_bit());
  EXPECT_TRUE(r.read_bit());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BitIo, MsbFirstPacking) {
  BitWriter w;
  w.write_bits(0b101, 3);
  // 101 followed by zero padding -> byte 0b1010'0000.
  ASSERT_EQ(w.bytes().size(), 1u);
  EXPECT_EQ(w.bytes()[0], 0xA0);
}

TEST(BitIo, ZeroWidthWriteIsNoop) {
  BitWriter w;
  w.write_bits(0xFFFF, 0);
  EXPECT_EQ(w.bit_count(), 0u);
}

TEST(BitIo, FullWordRoundTrip) {
  BitWriter w;
  w.write_bits(0xDEADBEEFCAFEF00DULL, 64);
  BitReader r(w.bytes().data(), w.bit_count());
  EXPECT_EQ(r.read_bits(64), 0xDEADBEEFCAFEF00DULL);
}

TEST(BitIo, MixedWidthsRoundTrip) {
  BitWriter w;
  w.write_bits(0x5, 3);
  w.write_bits(0x1234, 16);
  w.write_bit(true);
  w.write_bits(0x7F, 7);
  BitReader r(w.bytes().data(), w.bit_count());
  EXPECT_EQ(r.read_bits(3), 0x5u);
  EXPECT_EQ(r.read_bits(16), 0x1234u);
  EXPECT_TRUE(r.read_bit());
  EXPECT_EQ(r.read_bits(7), 0x7Fu);
}

TEST(BitIo, ReadPastEndThrows) {
  BitWriter w;
  w.write_bits(0b11, 2);
  BitReader r(w.bytes().data(), w.bit_count());
  r.read_bits(2);
  EXPECT_THROW(r.read_bit(), WireFormatError);
}

TEST(BitIo, TruncatedPayloadThrows) {
  BitWriter w;
  w.write_bits(0xFF, 8);
  BitReader r(w.bytes().data(), 4);  // only 4 bits advertised
  EXPECT_EQ(r.read_bits(4), 0xFu);
  EXPECT_THROW(r.read_bit(), WireFormatError);
}

TEST(BitIo, WidthOver64Throws) {
  BitWriter w;
  EXPECT_THROW(w.write_bits(0, 65), PreconditionError);
}

TEST(BitIo, TakeBytesResets) {
  BitWriter w;
  w.write_bits(0xAB, 8);
  const auto bytes = w.take_bytes();
  EXPECT_EQ(bytes.size(), 1u);
  EXPECT_EQ(w.bit_count(), 0u);
}

TEST(BitIo, WriterSpillsPastInlineCapacity) {
  // Cross the inline-buffer boundary and keep writing; the byte image must
  // be seamless across the spill to the heap.
  BitWriter w;
  const std::size_t total = BitWriter::kInlineCapacity + 24;
  for (std::size_t i = 0; i < total; ++i) {
    w.write_bits(i & 0xFF, 8);
  }
  EXPECT_EQ(w.bit_count(), total * 8);
  ASSERT_EQ(w.bytes().size(), total);
  for (std::size_t i = 0; i < total; ++i) {
    EXPECT_EQ(w.bytes()[i], static_cast<std::uint8_t>(i));
  }
}

TEST(BitIo, TakeBytesResetsAfterSpill) {
  BitWriter w;
  for (std::size_t i = 0; i < BitWriter::kInlineCapacity + 4; ++i) {
    w.write_bits(0xEE, 8);
  }
  const auto bytes = w.take_bytes();
  EXPECT_EQ(bytes.size(), BitWriter::kInlineCapacity + 4);
  EXPECT_EQ(w.bit_count(), 0u);
  EXPECT_TRUE(w.bytes().empty());
  w.write_bits(0x5, 3);  // writer is reusable from a clean slate
  EXPECT_EQ(w.bit_count(), 3u);
  EXPECT_EQ(w.bytes()[0], 0xA0);
}

TEST(BitIo, ReservePreservesContentAndBitCount) {
  BitWriter w;
  w.write_bits(0xAB, 8);
  w.reserve(64 * 8);
  EXPECT_EQ(w.bit_count(), 8u);
  EXPECT_EQ(w.bytes()[0], 0xAB);
  for (int i = 0; i < 64; ++i) w.write_bits(0xCD, 8);
  EXPECT_EQ(w.bit_count(), 8u + 64 * 8);
  EXPECT_EQ(w.bytes()[0], 0xAB);
  EXPECT_EQ(w.bytes()[64], 0xCD);
}

TEST(BitIo, WordWriteAlignedMatchesWriteBits) {
  // write_word's byte-aligned fast path must produce the exact image of
  // write_bits(v, 64).
  BitWriter fast;
  BitWriter slow;
  const std::uint64_t vals[] = {0ULL, ~0ULL, 0xDEADBEEFCAFEF00DULL,
                                0x0123456789ABCDEFULL};
  for (const auto v : vals) {
    fast.write_word(v);
    slow.write_bits(v, 64);
  }
  ASSERT_EQ(fast.bit_count(), slow.bit_count());
  ASSERT_EQ(fast.bytes().size(), slow.bytes().size());
  for (std::size_t i = 0; i < fast.bytes().size(); ++i) {
    EXPECT_EQ(fast.bytes()[i], slow.bytes()[i]) << i;
  }
}

TEST(BitIo, WordWriteUnalignedMatchesWriteBits) {
  BitWriter fast;
  BitWriter slow;
  fast.write_bits(0x5, 3);
  slow.write_bits(0x5, 3);
  fast.write_word(0xFEEDFACE12345678ULL);
  slow.write_bits(0xFEEDFACE12345678ULL, 64);
  ASSERT_EQ(fast.bit_count(), slow.bit_count());
  for (std::size_t i = 0; i < fast.bytes().size(); ++i) {
    EXPECT_EQ(fast.bytes()[i], slow.bytes()[i]) << i;
  }
}

TEST(BitIo, WordReadRoundTrip) {
  Xoshiro256 rng(9);
  for (const unsigned lead : {0u, 1u, 7u, 13u}) {
    BitWriter w;
    if (lead > 0) w.write_bits(rng.next_u64() & ((1ULL << lead) - 1), lead);
    std::vector<std::uint64_t> vals;
    for (int i = 0; i < 8; ++i) {
      vals.push_back(rng.next_u64());
      w.write_word(vals.back());
    }
    BitReader r(w.bytes().data(), w.bit_count());
    if (lead > 0) r.read_bits(lead);
    for (const auto v : vals) EXPECT_EQ(r.read_word(), v) << "lead=" << lead;
    EXPECT_EQ(r.remaining(), 0u);
  }
}

TEST(BitIo, WordReadPastEndThrows) {
  BitWriter w;
  w.write_bits(0xAB, 8);
  BitReader r(w.bytes().data(), w.bit_count());
  EXPECT_THROW(r.read_word(), WireFormatError);
}

TEST(BitIo, RandomizedRoundTrip) {
  Xoshiro256 rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    BitWriter w;
    std::vector<std::pair<std::uint64_t, unsigned>> fields;
    const int count = 1 + static_cast<int>(rng.next_below(30));
    for (int i = 0; i < count; ++i) {
      const unsigned width = 1 + static_cast<unsigned>(rng.next_below(64));
      const std::uint64_t mask =
          width == 64 ? ~0ULL : ((1ULL << width) - 1);
      const std::uint64_t value = rng.next_u64() & mask;
      fields.emplace_back(value, width);
      w.write_bits(value, width);
    }
    BitReader r(w.bytes().data(), w.bit_count());
    for (const auto& [value, width] : fields) {
      EXPECT_EQ(r.read_bits(width), value);
    }
    EXPECT_EQ(r.remaining(), 0u);
  }
}

}  // namespace
}  // namespace sensornet
