#include "src/common/mathutil.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"

namespace sensornet {
namespace {

TEST(MathUtil, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(4), 2u);
  EXPECT_EQ(floor_log2(1023), 9u);
  EXPECT_EQ(floor_log2(1024), 10u);
  EXPECT_THROW(floor_log2(0), PreconditionError);
}

TEST(MathUtil, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2(1 << 20), 20u);
  EXPECT_EQ(ceil_log2((1 << 20) + 1), 21u);
}

TEST(MathUtil, Pow2) {
  EXPECT_EQ(pow2_i64(0), 1);
  EXPECT_EQ(pow2_i64(10), 1024);
  EXPECT_EQ(pow2_i64(62), 1LL << 62);
  EXPECT_THROW(pow2_i64(63), PreconditionError);
}

TEST(MathUtil, AffineRescaleEndpoints) {
  // Maps [lo, lo+span_in] onto [1, 1+span_out].
  EXPECT_EQ(affine_rescale(16, 16, 15, 999), 1);
  EXPECT_EQ(affine_rescale(31, 16, 15, 999), 1000);
}

TEST(MathUtil, AffineRoundTripWithinRounding) {
  Xoshiro256 rng(4);
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t lo = 1 + static_cast<std::int64_t>(rng.next_below(1000));
    const std::int64_t span_in =
        1 + static_cast<std::int64_t>(rng.next_below(1000));
    const std::int64_t span_out =
        span_in + static_cast<std::int64_t>(rng.next_below(100000));
    const std::int64_t x =
        lo + static_cast<std::int64_t>(
                 rng.next_below(static_cast<std::uint64_t>(span_in) + 1));
    const std::int64_t y = affine_rescale(x, lo, span_in, span_out);
    const std::int64_t back = affine_unscale(y, lo, span_in, span_out);
    // Expanding maps (span_out >= span_in) round-trip to within 1 unit.
    EXPECT_LE(std::abs(back - x), 1)
        << "x=" << x << " lo=" << lo << " si=" << span_in << " so=" << span_out;
  }
}

TEST(MathUtil, AffineExpandsGaps) {
  // The Fig. 4 argument: after rescale, distinct values are at least
  // (span_out/span_in)x further apart (up to rounding).
  const std::int64_t a = affine_rescale(100, 64, 63, 1023);
  const std::int64_t b = affine_rescale(101, 64, 63, 1023);
  EXPECT_GE(b - a, (1023 / 63) - 1);
}

TEST(MathUtil, RankBelow) {
  const ValueSet xs{5, 3, 8, 3, 10};
  EXPECT_EQ(rank_below(xs, 3), 0u);
  EXPECT_EQ(rank_below(xs, 4), 2u);
  EXPECT_EQ(rank_below(xs, 5), 2u);
  EXPECT_EQ(rank_below(xs, 6), 3u);
  EXPECT_EQ(rank_below(xs, 11), 5u);
}

TEST(MathUtil, ReferenceOrderStatisticDefinition) {
  // Check the Definition 2.3 predicate directly: l(y) < k and l(y+1) >= k.
  Xoshiro256 rng(8);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t n = 1 + rng.next_below(40);
    ValueSet xs(n);
    for (auto& x : xs) x = static_cast<Value>(rng.next_below(50));
    const std::int64_t twice_k =
        1 + static_cast<std::int64_t>(rng.next_below(2 * n));
    const Value y = reference_order_statistic(xs, twice_k);
    // l(y) < k  <=>  2*l(y) < twice_k ; l(y+1) >= k <=> 2*l(y+1) >= twice_k.
    EXPECT_LT(2 * static_cast<std::int64_t>(rank_below(xs, y)), twice_k);
    EXPECT_GE(2 * static_cast<std::int64_t>(rank_below(xs, y + 1)), twice_k);
  }
}

TEST(MathUtil, ReferenceMedianSimpleCases) {
  EXPECT_EQ(reference_median({7}), 7);
  EXPECT_EQ(reference_median({1, 2, 3}), 2);
  EXPECT_EQ(reference_median({1, 2, 3, 4}), 2);  // OS(X, N/2) lower median
  EXPECT_EQ(reference_median({5, 5, 5, 5}), 5);
  EXPECT_EQ(reference_median({10, 0}), 0);
}

TEST(MathUtil, ReferenceOrderStatisticBounds) {
  EXPECT_THROW(reference_order_statistic({1, 2}, 0), PreconditionError);
  EXPECT_THROW(reference_order_statistic({1, 2}, 5), PreconditionError);
  EXPECT_THROW(reference_order_statistic({}, 1), PreconditionError);
}

}  // namespace
}  // namespace sensornet
