#include "src/common/hash.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <unordered_set>

namespace sensornet {
namespace {

TEST(Hash, Deterministic) {
  EXPECT_EQ(hash64(12345, 1), hash64(12345, 1));
}

TEST(Hash, SaltChangesOutput) {
  EXPECT_NE(hash64(12345, 1), hash64(12345, 2));
}

TEST(Hash, NoCollisionsOnSmallDomain) {
  std::unordered_set<std::uint64_t> seen;
  for (std::uint64_t v = 0; v < 100000; ++v) {
    seen.insert(hash64(v, 7));
  }
  EXPECT_EQ(seen.size(), 100000u);  // 64-bit collisions here are ~impossible
}

TEST(Hash, AvalancheOnSingleBitFlip) {
  // Flipping one input bit should flip ~32 of 64 output bits on average.
  double total_flips = 0;
  int cases = 0;
  for (std::uint64_t v = 1; v < 2000; v += 13) {
    for (int bit = 0; bit < 64; bit += 7) {
      const std::uint64_t h1 = hash64(v, 3);
      const std::uint64_t h2 = hash64(v ^ (1ULL << bit), 3);
      total_flips += std::popcount(h1 ^ h2);
      ++cases;
    }
  }
  EXPECT_NEAR(total_flips / cases, 32.0, 2.0);
}

TEST(Hash, LeadingZeroDistributionIsGeometric) {
  // For the hashed-LogLog rank derivation, P(clz >= k) ~ 2^-k.
  int at_least_8 = 0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    if (std::countl_zero(hash64(static_cast<std::uint64_t>(i), 11)) >= 8) {
      ++at_least_8;
    }
  }
  EXPECT_NEAR(at_least_8 / static_cast<double>(kSamples), 1.0 / 256, 0.0005);
}

TEST(Splitmix, StreamAdvances) {
  std::uint64_t state = 0;
  const auto a = splitmix64_next(state);
  const auto b = splitmix64_next(state);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace sensornet
