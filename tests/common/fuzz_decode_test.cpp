// Decoder robustness: feeding arbitrary bit soup to every wire decoder must
// end in a clean exception or a valid object — never a hang, crash, or
// unbounded allocation. (Sensor payloads cross lossy radios; a corrupt
// length prefix must not OOM a mote.)
#include <gtest/gtest.h>

#include "src/baseline/quantile_summary.hpp"
#include "src/common/codec.hpp"
#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/proto/aggregations.hpp"
#include "src/proto/predicate.hpp"
#include "src/sketch/hll.hpp"
#include "src/sketch/registers.hpp"

namespace sensornet {
namespace {

std::vector<std::uint8_t> random_bytes(Xoshiro256& rng, std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_u64());
  return out;
}

template <typename Fn>
void fuzz(Fn decode, int trials = 400, std::uint64_t seed = 42) {
  Xoshiro256 rng(seed);
  for (int t = 0; t < trials; ++t) {
    const std::size_t len = 1 + rng.next_below(64);
    const auto bytes = random_bytes(rng, len);
    BitReader r(bytes.data(), len * 8);
    try {
      decode(r);
    } catch (const WireFormatError&) {
      // expected for truncated/corrupt payloads
    } catch (const PreconditionError&) {
      // expected when decoded fields violate constructor contracts
    }
  }
}

TEST(FuzzDecode, EliasGamma) {
  fuzz([](BitReader& r) { elias_gamma_decode(r); });
}

TEST(FuzzDecode, EliasDelta) {
  fuzz([](BitReader& r) { elias_delta_decode(r); });
}

TEST(FuzzDecode, SignedInts) {
  fuzz([](BitReader& r) { decode_int(r); });
}

TEST(FuzzDecode, Predicate) {
  fuzz([](BitReader& r) { proto::Predicate::decode(r); });
}

TEST(FuzzDecode, Registers) {
  fuzz([](BitReader& r) { sketch::RegisterArray::decode(r, 64, 6); });
}

TEST(FuzzDecode, Hll) {
  // Result-style decoder: a failure return is as acceptable as a clean
  // throw; what is banned is a crash or a silently corrupt sketch.
  fuzz([](BitReader& r) { (void)sketch::Hll::decode(r); });
}

TEST(FuzzDecode, HllBitFlippedValidImagesStaySafe) {
  // Start from VALID v1 images (one sparse, one dense), flip each bit in
  // turn, decode. Every outcome must be a Result failure, a clean
  // WireFormatError, or a well-formed sketch.
  Xoshiro256 rng(13);
  auto sparse = sketch::Hll::make_by_registers(64).value();
  for (int i = 0; i < 5; ++i) sparse.add_random(rng);
  auto dense =
      sketch::Hll::make_by_registers(64, {.width = 6, .sparse = false})
          .value();
  for (int i = 0; i < 500; ++i) dense.add_random(rng);
  for (const sketch::Hll* hll : {&sparse, &dense}) {
    BitWriter w;
    hll->encode(w);
    const std::vector<std::uint8_t> image(w.bytes().begin(),
                                          w.bytes().end());
    const std::size_t bits = w.bit_count();
    for (std::size_t flip = 0; flip < bits; ++flip) {
      auto corrupted = image;
      corrupted[flip / 8] ^= static_cast<std::uint8_t>(0x80u >> (flip % 8));
      BitReader r(corrupted.data(), bits);
      try {
        auto decoded = sketch::Hll::decode(r);
        if (decoded.ok()) {
          (void)decoded.value().estimate();  // must be a usable sketch
        }
      } catch (const WireFormatError&) {
      } catch (const PreconditionError&) {
      }
    }
  }
}

TEST(FuzzDecode, CollectPartial) {
  fuzz([](BitReader& r) {
    proto::CollectAgg::decode_partial(r, {});
  });
}

TEST(FuzzDecode, DistinctSetPartial) {
  fuzz([](BitReader& r) {
    proto::DistinctSetAgg::decode_partial(r, {});
  });
}

TEST(FuzzDecode, QuantileSummary) {
  fuzz([](BitReader& r) { baseline::QuantileSummary::decode(r); });
}

TEST(FuzzDecode, LogLogRequest) {
  fuzz([](BitReader& r) { proto::LogLogAgg::decode_request(r); });
}

TEST(FuzzDecode, BitFlippedValidPayloadsStaySafe) {
  // Start from a VALID quantile summary, flip one bit anywhere, decode.
  Xoshiro256 rng(7);
  ValueSet xs(30);
  for (auto& x : xs) x = static_cast<Value>(rng.next_below(10000));
  const auto summary = baseline::QuantileSummary::from_items(xs);
  BitWriter w;
  summary.encode(w);
  const std::vector<std::uint8_t> baseline_bytes(w.bytes().begin(),
                                                 w.bytes().end());
  const std::size_t bits = w.bit_count();
  for (std::size_t flip = 0; flip < bits; ++flip) {
    auto corrupted = baseline_bytes;
    corrupted[flip / 8] ^= static_cast<std::uint8_t>(0x80u >> (flip % 8));
    BitReader r(corrupted.data(), bits);
    try {
      const auto s = baseline::QuantileSummary::decode(r);
      (void)s.valid();  // may be invalid; must simply not blow up
    } catch (const WireFormatError&) {
    } catch (const PreconditionError&) {
    }
  }
}

}  // namespace
}  // namespace sensornet
