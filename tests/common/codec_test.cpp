#include "src/common/codec.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"

namespace sensornet {
namespace {

TEST(EliasGamma, KnownCodes) {
  // gamma(1) = "1", gamma(2) = "010", gamma(5) = "00101".
  BitWriter w;
  elias_gamma_encode(w, 1);
  EXPECT_EQ(w.bit_count(), 1u);
  BitWriter w2;
  elias_gamma_encode(w2, 2);
  EXPECT_EQ(w2.bit_count(), 3u);
  BitWriter w5;
  elias_gamma_encode(w5, 5);
  EXPECT_EQ(w5.bit_count(), 5u);
  BitReader r(w5.bytes().data(), w5.bit_count());
  EXPECT_EQ(elias_gamma_decode(r), 5u);
}

TEST(EliasGamma, RejectsZero) {
  BitWriter w;
  EXPECT_THROW(elias_gamma_encode(w, 0), PreconditionError);
}

TEST(EliasDelta, CostGrowsLogarithmically) {
  // delta cost = floor(log2 x) + 2*floor(log2(floor(log2 x)+1)) + 1.
  EXPECT_EQ(encoded_uint_bits(0), 1u);       // encodes 1 -> "1"
  EXPECT_EQ(encoded_uint_bits(1), 4u);       // encodes 2
  const unsigned big = encoded_uint_bits((1ULL << 40));
  EXPECT_GE(big, 40u);
  EXPECT_LE(big, 40u + 14u);  // log + O(log log)
}

TEST(EliasDelta, RoundTripBoundaries) {
  for (const std::uint64_t x :
       {1ULL, 2ULL, 3ULL, 4ULL, 7ULL, 8ULL, 255ULL, 256ULL, 65535ULL,
        (1ULL << 32) - 1, 1ULL << 32, (1ULL << 62)}) {
    BitWriter w;
    elias_delta_encode(w, x);
    BitReader r(w.bytes().data(), w.bit_count());
    EXPECT_EQ(elias_delta_decode(r), x) << "x=" << x;
  }
}

TEST(EncodeUint, ZeroAndOne) {
  BitWriter w;
  encode_uint(w, 0);
  encode_uint(w, 1);
  BitReader r(w.bytes().data(), w.bit_count());
  EXPECT_EQ(decode_uint(r), 0u);
  EXPECT_EQ(decode_uint(r), 1u);
}

TEST(EncodeUint, CostMatchesActualEncoding) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t x = rng.next_u64() >> (rng.next_below(60));
    BitWriter w;
    encode_uint(w, x);
    EXPECT_EQ(w.bit_count(), encoded_uint_bits(x)) << "x=" << x;
  }
}

TEST(EncodeInt, ZigzagRoundTrip) {
  for (const std::int64_t x :
       {0LL, -1LL, 1LL, -2LL, 2LL, 1000000LL, -1000000LL,
        (1LL << 60), -(1LL << 60)}) {
    BitWriter w;
    encode_int(w, x);
    BitReader r(w.bytes().data(), w.bit_count());
    EXPECT_EQ(decode_int(r), x) << "x=" << x;
  }
}

TEST(EncodeInt, SmallMagnitudesAreCheap) {
  BitWriter w;
  encode_int(w, 0);
  EXPECT_EQ(w.bit_count(), 1u);
  BitWriter w2;
  encode_int(w2, -1);
  EXPECT_LE(w2.bit_count(), 4u);
}

TEST(Codec, RandomizedMixedStream) {
  Xoshiro256 rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    BitWriter w;
    std::vector<std::int64_t> signed_vals;
    std::vector<std::uint64_t> unsigned_vals;
    for (int i = 0; i < 50; ++i) {
      const std::uint64_t u = rng.next_u64() >> rng.next_below(64);
      const auto s = static_cast<std::int64_t>(rng.next_u64() >>
                                               (1 + rng.next_below(62)));
      unsigned_vals.push_back(u >> 1);  // keep < 2^63 for encode_uint's +1
      signed_vals.push_back((rng.next_u64() & 1) ? s : -s);
      encode_uint(w, unsigned_vals.back());
      encode_int(w, signed_vals.back());
    }
    BitReader r(w.bytes().data(), w.bit_count());
    for (int i = 0; i < 50; ++i) {
      EXPECT_EQ(decode_uint(r), unsigned_vals[static_cast<std::size_t>(i)]);
      EXPECT_EQ(decode_int(r), signed_vals[static_cast<std::size_t>(i)]);
    }
  }
}

TEST(Codec, DecodeGarbageDoesNotHang) {
  // All-zero bytes: gamma length prefix runs off the end -> WireFormatError.
  const std::vector<std::uint8_t> zeros(4, 0);
  BitReader r(zeros.data(), 32);
  EXPECT_THROW(elias_gamma_decode(r), WireFormatError);
}

}  // namespace
}  // namespace sensornet
