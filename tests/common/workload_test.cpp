#include "src/common/workload.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "src/common/error.hpp"

namespace sensornet {
namespace {

class WorkloadKindTest : public ::testing::TestWithParam<WorkloadKind> {};

TEST_P(WorkloadKindTest, SizeAndBoundsRespected) {
  Xoshiro256 rng(11);
  for (const std::size_t n : {1UL, 7UL, 256UL}) {
    const Value max_value = 10000;
    const ValueSet xs = generate_workload(GetParam(), n, max_value, rng);
    ASSERT_EQ(xs.size(), n);
    for (const Value x : xs) {
      EXPECT_GE(x, 0);
      EXPECT_LE(x, max_value);
    }
  }
}

TEST_P(WorkloadKindTest, DeterministicGivenRngState) {
  Xoshiro256 a(77);
  Xoshiro256 b(77);
  EXPECT_EQ(generate_workload(GetParam(), 100, 1000, a),
            generate_workload(GetParam(), 100, 1000, b));
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, WorkloadKindTest,
    ::testing::Values(WorkloadKind::kUniform, WorkloadKind::kZipf,
                      WorkloadKind::kClusteredField, WorkloadKind::kAllEqual,
                      WorkloadKind::kTwoPoint, WorkloadKind::kDenseCenter),
    [](const auto& info) {
      std::string n = workload_name(info.param);
      std::replace(n.begin(), n.end(), '-', '_');
      return n;
    });

TEST(Workload, AllEqualIsConstant) {
  Xoshiro256 rng(1);
  const ValueSet xs =
      generate_workload(WorkloadKind::kAllEqual, 50, 999, rng);
  for (const Value x : xs) EXPECT_EQ(x, xs[0]);
}

TEST(Workload, TwoPointHasExactlyTwoValues) {
  Xoshiro256 rng(2);
  const ValueSet xs =
      generate_workload(WorkloadKind::kTwoPoint, 64, 1000, rng);
  std::unordered_set<Value> distinct(xs.begin(), xs.end());
  EXPECT_EQ(distinct.size(), 2u);
  // Balanced halves.
  const auto low = *std::min_element(xs.begin(), xs.end());
  const auto low_count = std::count(xs.begin(), xs.end(), low);
  EXPECT_EQ(low_count, 32);
}

TEST(Workload, DenseCenterStaysNearMidpoint) {
  Xoshiro256 rng(3);
  const Value max_value = 1000000;
  const std::size_t n = 128;
  const ValueSet xs =
      generate_workload(WorkloadKind::kDenseCenter, n, max_value, rng);
  for (const Value x : xs) {
    EXPECT_NEAR(static_cast<double>(x), max_value / 2.0,
                static_cast<double>(n) + 1);
  }
}

TEST(Workload, ZipfIsHeavyHeaded) {
  Xoshiro256 rng(4);
  const ValueSet xs = generate_workload(WorkloadKind::kZipf, 2000, 100000, rng);
  const auto small = std::count_if(xs.begin(), xs.end(),
                                   [](Value x) { return x < 100; });
  EXPECT_GT(small, 1000);  // most mass near zero
}

TEST(Workload, DistinctCountExact) {
  Xoshiro256 rng(5);
  for (const std::size_t d : {1UL, 5UL, 100UL}) {
    const ValueSet xs = generate_with_distinct(200, d, 1 << 20, rng);
    ASSERT_EQ(xs.size(), 200u);
    std::unordered_set<Value> distinct(xs.begin(), xs.end());
    EXPECT_EQ(distinct.size(), d);
  }
}

TEST(Workload, DistinctRejectsImpossible) {
  Xoshiro256 rng(6);
  EXPECT_THROW(generate_with_distinct(5, 10, 100, rng), PreconditionError);
  EXPECT_THROW(generate_with_distinct(10, 0, 100, rng), PreconditionError);
}

TEST(Workload, DisjointnessGroundTruth) {
  Xoshiro256 rng(7);
  const auto disjoint = generate_disjointness(50, 0, 1 << 20, rng);
  EXPECT_TRUE(disjoint.disjoint);
  std::unordered_set<Value> a(disjoint.side_a.begin(), disjoint.side_a.end());
  for (const Value v : disjoint.side_b) EXPECT_FALSE(a.contains(v));

  const auto overlapping = generate_disjointness(50, 3, 1 << 20, rng);
  EXPECT_FALSE(overlapping.disjoint);
  std::unordered_set<Value> a2(overlapping.side_a.begin(),
                               overlapping.side_a.end());
  int shared = 0;
  for (const Value v : overlapping.side_b) {
    if (a2.contains(v)) ++shared;
  }
  EXPECT_EQ(shared, 3);
}

TEST(Workload, DisjointnessSidesHaveRequestedSize) {
  Xoshiro256 rng(8);
  const auto inst = generate_disjointness(25, 5, 1 << 16, rng);
  EXPECT_EQ(inst.side_a.size(), 25u);
  EXPECT_EQ(inst.side_b.size(), 25u);
}

}  // namespace
}  // namespace sensornet
