#include "src/common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/error.hpp"

namespace sensornet {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, NextBelowInRange) {
  Xoshiro256 rng(5);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowZeroBoundThrows) {
  Xoshiro256 rng(5);
  EXPECT_THROW(rng.next_below(0), PreconditionError);
}

TEST(Rng, NextBelowRoughlyUniform) {
  Xoshiro256 rng(17);
  constexpr std::uint64_t kBuckets = 8;
  constexpr int kSamples = 80000;
  std::vector<int> hist(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) ++hist[rng.next_below(kBuckets)];
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (const int h : hist) {
    EXPECT_NEAR(h, expected, 5 * std::sqrt(expected));
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Xoshiro256 rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BoolEdgeProbabilities) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, GeometricRankMeanIsTwo) {
  // Geometric(1/2) on {1,2,...} has mean 2 and P(rank >= k) = 2^{1-k}.
  Xoshiro256 rng(21);
  constexpr int kSamples = 100000;
  double sum = 0;
  int at_least_10 = 0;
  for (int i = 0; i < kSamples; ++i) {
    const auto rank = rng.next_geometric_rank();
    ASSERT_GE(rank, 1u);
    sum += rank;
    if (rank >= 10) ++at_least_10;
  }
  EXPECT_NEAR(sum / kSamples, 2.0, 0.05);
  // P(rank >= 10) = 2^-9 ~ 0.00195.
  EXPECT_NEAR(at_least_10 / static_cast<double>(kSamples), 0.00195, 0.001);
}

TEST(Rng, MaxOfNGeometricsTracksLogN) {
  // The Fact 2.2 heuristic: max of N geometric samples ~ log2 N.
  Xoshiro256 rng(33);
  for (const int n : {256, 4096}) {
    double total_max = 0;
    for (int rep = 0; rep < 40; ++rep) {
      std::uint32_t best = 0;
      for (int i = 0; i < n; ++i) {
        best = std::max(best, rng.next_geometric_rank());
      }
      total_max += best;
    }
    const double avg_max = total_max / 40.0;
    const double log_n = std::log2(n);
    EXPECT_NEAR(avg_max, log_n + 0.5, 2.5) << "n=" << n;
  }
}

TEST(Rng, NodeStreamsIndependent) {
  Xoshiro256 a = node_rng(42, 0);
  Xoshiro256 b = node_rng(42, 1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, NodeStreamsReproducible) {
  Xoshiro256 a = node_rng(42, 7);
  Xoshiro256 b = node_rng(42, 7);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

}  // namespace
}  // namespace sensornet
