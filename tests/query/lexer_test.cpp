#include "src/query/lexer.hpp"

#include <gtest/gtest.h>

namespace sensornet::query {
namespace {

TEST(Lexer, EmptyInput) {
  const auto toks = tokenize("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, TokenKind::kEnd);
}

TEST(Lexer, IdentifiersAndNumbers) {
  const auto toks = tokenize("SELECT median_2 0.25 42");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[0].kind, TokenKind::kIdent);
  EXPECT_EQ(toks[0].text, "SELECT");
  EXPECT_EQ(toks[1].text, "median_2");
  EXPECT_EQ(toks[2].kind, TokenKind::kNumber);
  EXPECT_DOUBLE_EQ(toks[2].number, 0.25);
  EXPECT_DOUBLE_EQ(toks[3].number, 42.0);
}

TEST(Lexer, PunctuationAndOperators) {
  const auto toks = tokenize("(a, b) < <= > >= ;");
  std::vector<TokenKind> kinds;
  for (const auto& t : toks) kinds.push_back(t.kind);
  EXPECT_EQ(kinds,
            (std::vector<TokenKind>{
                TokenKind::kLParen, TokenKind::kIdent, TokenKind::kComma,
                TokenKind::kIdent, TokenKind::kRParen, TokenKind::kLt,
                TokenKind::kLe, TokenKind::kGt, TokenKind::kGe,
                TokenKind::kSemicolon, TokenKind::kEnd}));
}

TEST(Lexer, PositionsTracked) {
  const auto toks = tokenize("abc  42");
  EXPECT_EQ(toks[0].position, 0u);
  EXPECT_EQ(toks[1].position, 5u);
}

TEST(Lexer, LeadingDotNumber) {
  const auto toks = tokenize(".5");
  EXPECT_EQ(toks[0].kind, TokenKind::kNumber);
  EXPECT_DOUBLE_EQ(toks[0].number, 0.5);
}

TEST(Lexer, UnexpectedCharacterThrows) {
  EXPECT_THROW(tokenize("SELECT @"), QueryError);
  try {
    tokenize("SELECT @");
    FAIL();
  } catch (const QueryError& e) {
    EXPECT_EQ(e.position(), 7u);
  }
}

TEST(Lexer, WhitespaceInsensitive) {
  const auto a = tokenize("a<b");
  const auto b = tokenize("  a  <  b  ");
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
  }
}

}  // namespace
}  // namespace sensornet::query
