#include "src/query/executor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/error.hpp"
#include "src/common/mathutil.hpp"
#include "src/net/topology.hpp"

namespace sensornet::query {
namespace {

struct Fixture {
  sim::Network net;
  net::SpanningTree tree;
  Executor exec;

  explicit Fixture(const ValueSet& xs, Value max_value = 1 << 16)
      : net(net::make_grid(4, (xs.size() + 3) / 4), 1),
        tree(net::bfs_tree(net.graph(), 0)),
        exec(Deployment{net, tree, max_value}) {
    for (NodeId u = 0; u < net.node_count(); ++u) {
      if (u < xs.size()) net.set_items(u, {xs[u]});
    }
  }
};

TEST(Executor, CountAndSum) {
  Fixture f({1, 2, 3, 4, 5, 6, 7, 8});
  EXPECT_DOUBLE_EQ(f.exec.run("SELECT COUNT(v) FROM sensors").value, 8.0);
  EXPECT_DOUBLE_EQ(f.exec.run("SELECT SUM(v) FROM sensors").value, 36.0);
  EXPECT_DOUBLE_EQ(f.exec.run("SELECT AVG(v) FROM sensors").value, 4.5);
}

TEST(Executor, MinMax) {
  Fixture f({15, 3, 99, 27});
  EXPECT_DOUBLE_EQ(f.exec.run("SELECT MIN(v) FROM sensors").value, 3.0);
  EXPECT_DOUBLE_EQ(f.exec.run("SELECT MAX(v) FROM sensors").value, 99.0);
}

TEST(Executor, MedianExact) {
  const ValueSet xs{10, 20, 30, 40, 50, 60, 70};
  Fixture f(xs);
  const auto res = f.exec.run("SELECT MEDIAN(v) FROM sensors");
  EXPECT_DOUBLE_EQ(res.value, static_cast<double>(reference_median(xs)));
  EXPECT_TRUE(res.is_exact);
}

TEST(Executor, QuantileExact) {
  ValueSet xs(20);
  for (std::size_t i = 0; i < 20; ++i) xs[i] = static_cast<Value>(i * 5);
  Fixture f(xs);
  const auto res = f.exec.run("SELECT QUANTILE(v, 0.25) FROM sensors");
  // k = 5 -> 5th smallest = 20.
  EXPECT_DOUBLE_EQ(res.value, 20.0);
}

TEST(Executor, WhereFilterApplies) {
  Fixture f({1, 2, 3, 4, 5, 6, 7, 8});
  EXPECT_DOUBLE_EQ(
      f.exec.run("SELECT COUNT(v) FROM sensors WHERE v < 5").value, 4.0);
  EXPECT_DOUBLE_EQ(
      f.exec.run("SELECT COUNT(v) FROM sensors WHERE v >= 5").value, 4.0);
  EXPECT_DOUBLE_EQ(
      f.exec.run("SELECT COUNT(v) FROM sensors WHERE v <= 5").value, 5.0);
  EXPECT_DOUBLE_EQ(
      f.exec.run("SELECT MIN(v) FROM sensors WHERE v > 3").value, 4.0);
}

TEST(Executor, FilterClearedBetweenQueries) {
  Fixture f({1, 2, 3, 4, 5, 6, 7, 8});
  EXPECT_DOUBLE_EQ(
      f.exec.run("SELECT COUNT(v) FROM sensors WHERE v < 3").value, 2.0);
  EXPECT_DOUBLE_EQ(f.exec.run("SELECT COUNT(v) FROM sensors").value, 8.0);
}

TEST(Executor, MedianWithWhere) {
  const ValueSet xs{1, 2, 3, 4, 100, 200, 300, 400};
  Fixture f(xs);
  const auto res =
      f.exec.run("SELECT MEDIAN(v) FROM sensors WHERE v >= 100");
  EXPECT_DOUBLE_EQ(res.value, 200.0);
}

TEST(Executor, CountDistinctExactAndApprox) {
  ValueSet xs(16);
  for (std::size_t i = 0; i < 16; ++i) xs[i] = static_cast<Value>(i % 4);
  Fixture f(xs);
  const auto exact = f.exec.run("SELECT COUNT_DISTINCT(v) FROM sensors");
  EXPECT_DOUBLE_EQ(exact.value, 4.0);
  EXPECT_TRUE(exact.is_exact);
  const auto approx =
      f.exec.run("SELECT COUNT_DISTINCT(v) FROM sensors ERROR 0.2");
  EXPECT_FALSE(approx.is_exact);
  EXPECT_NEAR(approx.value, 4.0, 3.0);
}

TEST(Executor, ApproxCount) {
  ValueSet xs(64, 7);
  Fixture f(xs);
  const auto res = f.exec.run("SELECT COUNT(v) FROM sensors ERROR 0.1");
  EXPECT_FALSE(res.is_exact);
  EXPECT_NEAR(res.value, 64.0, 24.0);
}

TEST(Executor, ApproxSumAndAvg) {
  ValueSet xs(64, 100);  // sum = 6400, avg = 100
  Fixture f(xs, /*max_value=*/128);
  const auto sum = f.exec.run("SELECT SUM(v) FROM sensors ERROR 0.05");
  EXPECT_FALSE(sum.is_exact);
  EXPECT_NEAR(sum.value, 6400.0, 1600.0);
  const auto avg = f.exec.run("SELECT AVG(v) FROM sensors ERROR 0.05");
  EXPECT_FALSE(avg.is_exact);
  EXPECT_NEAR(avg.value, 100.0, 40.0);
}

TEST(Executor, ApproxSumRespectsWhere) {
  ValueSet xs;
  for (int i = 0; i < 32; ++i) xs.push_back(10);
  for (int i = 0; i < 32; ++i) xs.push_back(1000);
  Fixture f(xs, /*max_value=*/1024);
  const auto res =
      f.exec.run("SELECT SUM(v) FROM sensors WHERE v < 100 ERROR 0.05");
  // Only the 32 tens: truth 320 (vs 32320 unfiltered).
  EXPECT_NEAR(res.value, 320.0, 120.0);
}

TEST(Executor, ApproxMedianRunsAndIsClose) {
  ValueSet xs(64);
  for (std::size_t i = 0; i < 64; ++i) {
    xs[i] = static_cast<Value>(i * 1000);
  }
  Fixture f(xs, /*max_value=*/65536);
  const auto res = f.exec.run(
      "SELECT MEDIAN(v) FROM sensors ERROR 0.05 CONFIDENCE 0.75");
  EXPECT_FALSE(res.is_exact);
  // beta = 0.05 on X = 65536 plus rank noise: generous envelope.
  EXPECT_NEAR(res.value, 31500.0, 16000.0);
}

TEST(Executor, AccountingWindowIsPerQuery) {
  Fixture f({1, 2, 3, 4});
  const auto a = f.exec.run("SELECT COUNT(v) FROM sensors");
  const auto b = f.exec.run("SELECT COUNT(v) FROM sensors");
  EXPECT_GT(a.max_node_bits, 0u);
  // Same query, same cost window (not cumulative).
  EXPECT_EQ(a.max_node_bits, b.max_node_bits);
  EXPECT_GT(a.messages, 0u);
}

TEST(Executor, EmptySelectionThrows) {
  Fixture f({1, 2, 3, 4});
  EXPECT_THROW(f.exec.run("SELECT MIN(v) FROM sensors WHERE v > 100"),
               PreconditionError);
  EXPECT_THROW(f.exec.run("SELECT MEDIAN(v) FROM sensors WHERE v > 100"),
               PreconditionError);
}

TEST(Executor, PlanLineSurfaced) {
  Fixture f({1, 2, 3, 4});
  EXPECT_NE(f.exec.run("SELECT MEDIAN(v) FROM sensors").plan.find("fig1"),
            std::string::npos);
}

TEST(Executor, ConditionMatchesHelper) {
  Condition c;
  c.cmp = Condition::Cmp::kLe;
  c.literal = 5;
  EXPECT_TRUE(condition_matches(c, 5));
  EXPECT_FALSE(condition_matches(c, 6));
}

}  // namespace
}  // namespace sensornet::query
