#include "src/query/parser.hpp"

#include <gtest/gtest.h>

#include "src/query/lexer.hpp"

namespace sensornet::query {
namespace {

TEST(Parser, MinimalQuery) {
  const Query q = parse_query("SELECT COUNT(temp) FROM sensors");
  EXPECT_EQ(q.agg, AggregateKind::kCount);
  EXPECT_EQ(q.attribute, "temp");
  EXPECT_FALSE(q.where.has_value());
  EXPECT_FALSE(q.error.has_value());
}

TEST(Parser, CaseInsensitiveKeywords) {
  const Query q = parse_query("select median(x) from s;");
  EXPECT_EQ(q.agg, AggregateKind::kMedian);
}

TEST(Parser, AllAggregates) {
  EXPECT_EQ(parse_query("SELECT MIN(v) FROM s").agg, AggregateKind::kMin);
  EXPECT_EQ(parse_query("SELECT MAX(v) FROM s").agg, AggregateKind::kMax);
  EXPECT_EQ(parse_query("SELECT SUM(v) FROM s").agg, AggregateKind::kSum);
  EXPECT_EQ(parse_query("SELECT AVG(v) FROM s").agg, AggregateKind::kAvg);
  EXPECT_EQ(parse_query("SELECT COUNT_DISTINCT(v) FROM s").agg,
            AggregateKind::kCountDistinct);
}

TEST(Parser, QuantileFraction) {
  const Query q = parse_query("SELECT QUANTILE(v, 0.9) FROM s");
  EXPECT_EQ(q.agg, AggregateKind::kQuantile);
  EXPECT_DOUBLE_EQ(q.quantile_phi, 0.9);
}

TEST(Parser, QuantileRejectsBadFraction) {
  EXPECT_THROW(parse_query("SELECT QUANTILE(v, 1.5) FROM s"), QueryError);
  EXPECT_THROW(parse_query("SELECT QUANTILE(v) FROM s"), QueryError);
}

TEST(Parser, WhereClauses) {
  const Query lt = parse_query("SELECT COUNT(v) FROM s WHERE v < 10");
  ASSERT_TRUE(lt.where.has_value());
  EXPECT_EQ(lt.where->cmp, Condition::Cmp::kLt);
  EXPECT_EQ(lt.where->literal, 10);
  EXPECT_EQ(parse_query("SELECT COUNT(v) FROM s WHERE v >= 3").where->cmp,
            Condition::Cmp::kGe);
  EXPECT_EQ(parse_query("SELECT COUNT(v) FROM s WHERE v <= 3").where->cmp,
            Condition::Cmp::kLe);
  EXPECT_EQ(parse_query("SELECT COUNT(v) FROM s WHERE v > 3").where->cmp,
            Condition::Cmp::kGt);
}

TEST(Parser, ErrorAndConfidence) {
  const Query q = parse_query(
      "SELECT MEDIAN(v) FROM s ERROR 0.01 CONFIDENCE 0.9");
  ASSERT_TRUE(q.error.has_value());
  EXPECT_DOUBLE_EQ(*q.error, 0.01);
  EXPECT_DOUBLE_EQ(q.confidence, 0.9);
}

TEST(Parser, ErrorBoundsValidated) {
  EXPECT_THROW(parse_query("SELECT MEDIAN(v) FROM s ERROR 0"), QueryError);
  EXPECT_THROW(parse_query("SELECT MEDIAN(v) FROM s ERROR 1.0"), QueryError);
  EXPECT_THROW(parse_query("SELECT MEDIAN(v) FROM s CONFIDENCE 2"),
               QueryError);
}

TEST(Parser, MalformedQueriesThrow) {
  EXPECT_THROW(parse_query(""), QueryError);
  EXPECT_THROW(parse_query("MEDIAN(v) FROM s"), QueryError);
  EXPECT_THROW(parse_query("SELECT BOGUS(v) FROM s"), QueryError);
  EXPECT_THROW(parse_query("SELECT MEDIAN v FROM s"), QueryError);
  EXPECT_THROW(parse_query("SELECT MEDIAN(v FROM s"), QueryError);
  EXPECT_THROW(parse_query("SELECT MEDIAN(v) s"), QueryError);
  EXPECT_THROW(parse_query("SELECT MEDIAN(v) FROM s WHERE v"), QueryError);
  EXPECT_THROW(parse_query("SELECT MEDIAN(v) FROM s trailing"), QueryError);
  EXPECT_THROW(parse_query("SELECT MEDIAN(v) FROM s WHERE v < 1.5"),
               QueryError);
}

TEST(Parser, KeepsOriginalText) {
  const std::string text = "SELECT MIN(v) FROM s";
  EXPECT_EQ(parse_query(text).text, text);
}

/// The exact diagnostic text the service surfaces to clients on admission
/// failures — pinned so a reworded parser does not silently break them.
std::string thrown_message(const std::string& text) {
  try {
    parse_query(text);
  } catch (const QueryError& e) {
    return e.what();
  }
  return "";
}

TEST(Parser, BetweenRange) {
  const Query q =
      parse_query("SELECT SUM(v) FROM s WHERE v BETWEEN 10 AND 50");
  ASSERT_TRUE(q.where.has_value());
  EXPECT_EQ(q.where->cmp, Condition::Cmp::kBetween);
  EXPECT_EQ(q.where->literal, 10);
  EXPECT_EQ(q.where->literal2, 50);
}

TEST(Parser, BetweenAcceptsInvertedRangeForPlannerToReject) {
  // Syntax-level acceptance; the planner owns the semantic diagnostic.
  const Query q =
      parse_query("SELECT SUM(v) FROM s WHERE v BETWEEN 50 AND 10");
  EXPECT_EQ(q.where->literal, 50);
  EXPECT_EQ(q.where->literal2, 10);
}

TEST(Parser, MalformedBetweenThrows) {
  EXPECT_NE(thrown_message("SELECT SUM(v) FROM s WHERE v BETWEEN 10 50")
                .find("expected 'AND' between BETWEEN bounds"),
            std::string::npos);
  EXPECT_THROW(parse_query("SELECT SUM(v) FROM s WHERE v BETWEEN 10 AND"),
               QueryError);
  EXPECT_THROW(parse_query("SELECT SUM(v) FROM s WHERE v BETWEEN AND 10"),
               QueryError);
  EXPECT_THROW(
      parse_query("SELECT SUM(v) FROM s WHERE v BETWEEN 1.5 AND 10"),
      QueryError);
  EXPECT_THROW(parse_query("SELECT SUM(v) FROM s WHERE v BETWEEN -3 AND 10"),
               QueryError);
}

TEST(Parser, EveryClauseMakesQueryContinuous) {
  const Query q = parse_query("SELECT COUNT(v) FROM s EVERY 4 EPOCHS");
  ASSERT_TRUE(q.every_epochs.has_value());
  EXPECT_EQ(*q.every_epochs, 4u);
  EXPECT_EQ(*parse_query("SELECT COUNT(v) FROM s EVERY 1 EPOCH").every_epochs,
            1u);
  EXPECT_FALSE(parse_query("SELECT COUNT(v) FROM s").every_epochs.has_value());
}

TEST(Parser, EveryComposesWithWhereAndError) {
  const Query q = parse_query(
      "SELECT SUM(v) FROM s WHERE v BETWEEN 10 AND 50 EVERY 4 EPOCHS "
      "ERROR 0.05");
  EXPECT_EQ(*q.every_epochs, 4u);
  EXPECT_DOUBLE_EQ(*q.error, 0.05);
  EXPECT_EQ(q.where->cmp, Condition::Cmp::kBetween);
}

TEST(Parser, MalformedEveryThrows) {
  const std::string interval_msg =
      "EVERY interval must be a positive whole number of epochs";
  EXPECT_NE(thrown_message("SELECT COUNT(v) FROM s EVERY 0 EPOCHS")
                .find(interval_msg),
            std::string::npos);
  EXPECT_NE(thrown_message("SELECT COUNT(v) FROM s EVERY 2.5 EPOCHS")
                .find(interval_msg),
            std::string::npos);
  EXPECT_NE(thrown_message("SELECT COUNT(v) FROM s EVERY 4")
                .find("expected 'EPOCHS' after the EVERY interval"),
            std::string::npos);
  EXPECT_THROW(parse_query("SELECT COUNT(v) FROM s EVERY EPOCHS"), QueryError);
  EXPECT_THROW(parse_query("SELECT COUNT(v) FROM s EVERY -2 EPOCHS"),
               QueryError);
}

}  // namespace
}  // namespace sensornet::query
