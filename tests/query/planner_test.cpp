#include "src/query/planner.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/query/parser.hpp"

namespace sensornet::query {
namespace {

TEST(Planner, ExactStrategiesWithoutError) {
  EXPECT_EQ(plan_query(parse_query("SELECT MIN(v) FROM s")).strategy,
            Strategy::kPrimitiveWave);
  EXPECT_EQ(plan_query(parse_query("SELECT COUNT(v) FROM s")).strategy,
            Strategy::kPrimitiveWave);
  EXPECT_EQ(plan_query(parse_query("SELECT MEDIAN(v) FROM s")).strategy,
            Strategy::kExactSelection);
  EXPECT_EQ(
      plan_query(parse_query("SELECT COUNT_DISTINCT(v) FROM s")).strategy,
      Strategy::kExactDistinct);
}

TEST(Planner, SumAndAvgUseOdiSketchWithError) {
  EXPECT_EQ(plan_query(parse_query("SELECT SUM(v) FROM s ERROR 0.1")).strategy,
            Strategy::kApproxSum);
  EXPECT_EQ(plan_query(parse_query("SELECT AVG(v) FROM s ERROR 0.1")).strategy,
            Strategy::kApproxSum);
  EXPECT_EQ(plan_query(parse_query("SELECT SUM(v) FROM s")).strategy,
            Strategy::kPrimitiveWave);
}

TEST(Planner, ErrorOptsIntoApproximation) {
  EXPECT_EQ(
      plan_query(parse_query("SELECT COUNT(v) FROM s ERROR 0.1")).strategy,
      Strategy::kApproxCount);
  EXPECT_EQ(
      plan_query(parse_query("SELECT MEDIAN(v) FROM s ERROR 0.01")).strategy,
      Strategy::kApproxSelection);
  EXPECT_EQ(plan_query(parse_query("SELECT COUNT_DISTINCT(v) FROM s ERROR 0.1"))
                .strategy,
            Strategy::kApproxDistinct);
}

TEST(Planner, RegistersSizedFromError) {
  const Plan loose =
      plan_query(parse_query("SELECT COUNT(v) FROM s ERROR 0.3"));
  const Plan tight =
      plan_query(parse_query("SELECT COUNT(v) FROM s ERROR 0.03"));
  EXPECT_LT(loose.registers, tight.registers);
  // sigma(m) = 1.04/sqrt(m) must meet the requested error (or hit the cap).
  EXPECT_LE(1.04 / std::sqrt(static_cast<double>(tight.registers)), 0.031);
  EXPECT_LE(tight.registers, 4096u);
}

TEST(Planner, BetaFollowsError) {
  const Plan p =
      plan_query(parse_query("SELECT MEDIAN(v) FROM s ERROR 0.005"));
  EXPECT_DOUBLE_EQ(p.beta, 0.005);
}

TEST(Planner, EpsilonFromConfidence) {
  const Plan p = plan_query(
      parse_query("SELECT MEDIAN(v) FROM s ERROR 0.01 CONFIDENCE 0.8"));
  EXPECT_NEAR(p.epsilon, 0.2, 1e-9);
}

TEST(Planner, DescriptionMentionsStrategy) {
  const Plan p = plan_query(parse_query("SELECT MEDIAN(v) FROM s"));
  EXPECT_NE(p.description.find("MEDIAN"), std::string::npos);
  EXPECT_NE(p.description.find("fig1"), std::string::npos);
}

}  // namespace
}  // namespace sensornet::query
