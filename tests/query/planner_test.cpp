#include "src/query/planner.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/query/lexer.hpp"
#include "src/query/parser.hpp"

namespace sensornet::query {
namespace {

TEST(Planner, ExactStrategiesWithoutError) {
  EXPECT_EQ(plan_query(parse_query("SELECT MIN(v) FROM s")).strategy,
            Strategy::kPrimitiveWave);
  EXPECT_EQ(plan_query(parse_query("SELECT COUNT(v) FROM s")).strategy,
            Strategy::kPrimitiveWave);
  EXPECT_EQ(plan_query(parse_query("SELECT MEDIAN(v) FROM s")).strategy,
            Strategy::kExactSelection);
  EXPECT_EQ(
      plan_query(parse_query("SELECT COUNT_DISTINCT(v) FROM s")).strategy,
      Strategy::kExactDistinct);
}

TEST(Planner, SumAndAvgUseOdiSketchWithError) {
  EXPECT_EQ(plan_query(parse_query("SELECT SUM(v) FROM s ERROR 0.1")).strategy,
            Strategy::kApproxSum);
  EXPECT_EQ(plan_query(parse_query("SELECT AVG(v) FROM s ERROR 0.1")).strategy,
            Strategy::kApproxSum);
  EXPECT_EQ(plan_query(parse_query("SELECT SUM(v) FROM s")).strategy,
            Strategy::kPrimitiveWave);
}

TEST(Planner, ErrorOptsIntoApproximation) {
  EXPECT_EQ(
      plan_query(parse_query("SELECT COUNT(v) FROM s ERROR 0.1")).strategy,
      Strategy::kApproxCount);
  EXPECT_EQ(
      plan_query(parse_query("SELECT MEDIAN(v) FROM s ERROR 0.01")).strategy,
      Strategy::kApproxSelection);
  EXPECT_EQ(plan_query(parse_query("SELECT COUNT_DISTINCT(v) FROM s ERROR 0.1"))
                .strategy,
            Strategy::kApproxDistinct);
}

TEST(Planner, RegistersSizedFromError) {
  const Plan loose =
      plan_query(parse_query("SELECT COUNT(v) FROM s ERROR 0.3"));
  const Plan tight =
      plan_query(parse_query("SELECT COUNT(v) FROM s ERROR 0.03"));
  EXPECT_LT(loose.registers, tight.registers);
  // sigma(m) = 1.04/sqrt(m) must meet the requested error (or hit the cap).
  EXPECT_LE(1.04 / std::sqrt(static_cast<double>(tight.registers)), 0.031);
  EXPECT_LE(tight.registers, 4096u);
}

TEST(Planner, BetaFollowsError) {
  const Plan p =
      plan_query(parse_query("SELECT MEDIAN(v) FROM s ERROR 0.005"));
  EXPECT_DOUBLE_EQ(p.beta, 0.005);
}

TEST(Planner, EpsilonFromConfidence) {
  const Plan p = plan_query(
      parse_query("SELECT MEDIAN(v) FROM s ERROR 0.01 CONFIDENCE 0.8"));
  EXPECT_NEAR(p.epsilon, 0.2, 1e-9);
}

TEST(Planner, DescriptionMentionsStrategy) {
  const Plan p = plan_query(parse_query("SELECT MEDIAN(v) FROM s"));
  EXPECT_NE(p.description.find("MEDIAN"), std::string::npos);
  EXPECT_NE(p.description.find("fig1"), std::string::npos);
}

RegionSignature sig_of(const std::string& text, Value bound = 100) {
  return region_signature(parse_query(text), bound);
}

TEST(RegionSignature, CanonicalizesEveryComparison) {
  EXPECT_EQ(sig_of("SELECT COUNT(v) FROM s WHERE v < 10"),
            (RegionSignature{0, 9, false}));
  EXPECT_EQ(sig_of("SELECT COUNT(v) FROM s WHERE v <= 10"),
            (RegionSignature{0, 10, false}));
  EXPECT_EQ(sig_of("SELECT COUNT(v) FROM s WHERE v > 10"),
            (RegionSignature{11, 100, false}));
  EXPECT_EQ(sig_of("SELECT COUNT(v) FROM s WHERE v >= 10"),
            (RegionSignature{10, 100, false}));
  EXPECT_EQ(sig_of("SELECT COUNT(v) FROM s WHERE v BETWEEN 10 AND 50"),
            (RegionSignature{10, 50, false}));
}

TEST(RegionSignature, WholeDomainForms) {
  // No WHERE, and WHEREs that exclude nothing, all canonicalize equal —
  // that equality is what lets the scheduler share one group across them.
  const RegionSignature whole{0, 100, true};
  EXPECT_EQ(sig_of("SELECT COUNT(v) FROM s"), whole);
  EXPECT_EQ(sig_of("SELECT COUNT(v) FROM s WHERE v >= 0"), whole);
  EXPECT_EQ(sig_of("SELECT COUNT(v) FROM s WHERE v <= 100"), whole);
  EXPECT_EQ(sig_of("SELECT COUNT(v) FROM s WHERE v BETWEEN 0 AND 100"),
            whole);
}

TEST(RegionSignature, ClampsToValueBound) {
  // A range reaching past the model's bound is the same region as one
  // stopping at it.
  EXPECT_EQ(sig_of("SELECT COUNT(v) FROM s WHERE v BETWEEN 40 AND 4000"),
            (RegionSignature{40, 100, false}));
}

/// Degenerate-region diagnostics are pinned: the service's admission path
/// forwards them verbatim to clients.
std::string region_error(const std::string& text, Value bound = 100) {
  try {
    region_signature(parse_query(text), bound);
  } catch (const QueryError& e) {
    return e.what();
  }
  return "";
}

TEST(RegionSignature, InvertedRangeDiagnosticIsPinned) {
  EXPECT_NE(region_error("SELECT COUNT(v) FROM s WHERE v BETWEEN 50 AND 10")
                .find("WHERE range is empty (lower bound exceeds upper bound)"),
            std::string::npos);
}

TEST(RegionSignature, EmptyRangeDiagnosticIsPinned) {
  const std::string pinned = "WHERE range selects no representable value";
  // v < 0: upper bound canonicalizes below the domain.
  EXPECT_NE(region_error("SELECT COUNT(v) FROM s WHERE v < 0").find(pinned),
            std::string::npos);
  // v > bound: lower bound canonicalizes above the domain.
  EXPECT_NE(region_error("SELECT COUNT(v) FROM s WHERE v > 100").find(pinned),
            std::string::npos);
  EXPECT_NE(
      region_error("SELECT COUNT(v) FROM s WHERE v BETWEEN 200 AND 300")
          .find(pinned),
      std::string::npos);
}

}  // namespace
}  // namespace sensornet::query
