#include "src/query/planner.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <string>
#include <utility>

#include "src/query/lexer.hpp"
#include "src/query/parser.hpp"

namespace sensornet::query {
namespace {

CostedPlan plan_text(const std::string& text, Value bound = 100,
                     const CubeCatalog* catalog = nullptr) {
  const Planner planner(bound, catalog);
  Result<CostedPlan> r = planner.plan(parse_query(text));
  EXPECT_TRUE(r.ok()) << r.error();
  return std::move(r).value();
}

TEST(Planner, ExactStrategiesWithoutError) {
  EXPECT_EQ(plan_text("SELECT MIN(v) FROM s").strategy,
            Strategy::kPrimitiveWave);
  EXPECT_EQ(plan_text("SELECT COUNT(v) FROM s").strategy,
            Strategy::kPrimitiveWave);
  EXPECT_EQ(plan_text("SELECT MEDIAN(v) FROM s").strategy,
            Strategy::kExactSelection);
  EXPECT_EQ(plan_text("SELECT COUNT_DISTINCT(v) FROM s").strategy,
            Strategy::kExactDistinct);
}

TEST(Planner, SumAndAvgUseOdiSketchWithError) {
  EXPECT_EQ(plan_text("SELECT SUM(v) FROM s ERROR 0.1").strategy,
            Strategy::kApproxSum);
  EXPECT_EQ(plan_text("SELECT AVG(v) FROM s ERROR 0.1").strategy,
            Strategy::kApproxSum);
  EXPECT_EQ(plan_text("SELECT SUM(v) FROM s").strategy,
            Strategy::kPrimitiveWave);
}

TEST(Planner, ErrorOptsIntoApproximation) {
  EXPECT_EQ(plan_text("SELECT COUNT(v) FROM s ERROR 0.1").strategy,
            Strategy::kApproxCount);
  EXPECT_EQ(plan_text("SELECT MEDIAN(v) FROM s ERROR 0.01").strategy,
            Strategy::kApproxSelection);
  EXPECT_EQ(plan_text("SELECT COUNT_DISTINCT(v) FROM s ERROR 0.1").strategy,
            Strategy::kApproxDistinct);
}

TEST(Planner, RegistersSizedFromError) {
  const CostedPlan loose = plan_text("SELECT COUNT(v) FROM s ERROR 0.3");
  const CostedPlan tight = plan_text("SELECT COUNT(v) FROM s ERROR 0.03");
  EXPECT_LT(loose.registers, tight.registers);
  // sigma(m) = 1.04/sqrt(m) must meet the requested error (or hit the cap).
  EXPECT_LE(1.04 / std::sqrt(static_cast<double>(tight.registers)), 0.031);
  EXPECT_LE(tight.registers, 4096u);
}

TEST(Planner, BetaFollowsError) {
  const CostedPlan p = plan_text("SELECT MEDIAN(v) FROM s ERROR 0.005");
  EXPECT_DOUBLE_EQ(p.beta, 0.005);
}

TEST(Planner, EpsilonFromConfidence) {
  const CostedPlan p =
      plan_text("SELECT MEDIAN(v) FROM s ERROR 0.01 CONFIDENCE 0.8");
  EXPECT_NEAR(p.epsilon, 0.2, 1e-9);
}

TEST(Planner, DescriptionMentionsStrategy) {
  const CostedPlan p = plan_text("SELECT MEDIAN(v) FROM s");
  EXPECT_NE(p.description.find("MEDIAN"), std::string::npos);
  EXPECT_NE(p.description.find("fig1"), std::string::npos);
}

TEST(Planner, NullCatalogDegradesToSingleTreeCollect) {
  const CostedPlan p = plan_text("SELECT COUNT(v) FROM s WHERE v < 50");
  ASSERT_EQ(p.steps.size(), 1u);
  EXPECT_EQ(p.steps[0].kind, StepKind::kTreeCollect);
  EXPECT_EQ(p.steps[0].region, p.region);
  EXPECT_FALSE(p.cube_served());
  EXPECT_NE(p.description.find("tree-collect"), std::string::npos);
}

// ---- error paths ----------------------------------------------------------

std::string plan_error(const std::string& text, Value bound = 100) {
  const Planner planner(bound);
  const Result<CostedPlan> r = planner.plan(parse_query(text));
  return r.ok() ? "" : r.error();
}

TEST(Planner, InvertedRangeFailsWithPinnedDiagnostic) {
  EXPECT_NE(plan_error("SELECT COUNT(v) FROM s WHERE v BETWEEN 50 AND 10")
                .find("WHERE range is empty (lower bound exceeds upper bound)"),
            std::string::npos);
}

TEST(Planner, EmptyRangeFailsWithPinnedDiagnostic) {
  const std::string pinned = "WHERE range selects no representable value";
  EXPECT_NE(plan_error("SELECT COUNT(v) FROM s WHERE v < 0").find(pinned),
            std::string::npos);
  EXPECT_NE(plan_error("SELECT COUNT(v) FROM s WHERE v > 100").find(pinned),
            std::string::npos);
}

// ---- region canonicalization ----------------------------------------------

RegionSignature sig_of(const std::string& text, Value bound = 100) {
  return region_signature(parse_query(text), bound);
}

TEST(RegionSignature, CanonicalizesEveryComparison) {
  EXPECT_EQ(sig_of("SELECT COUNT(v) FROM s WHERE v < 10"),
            (RegionSignature{0, 9, false}));
  EXPECT_EQ(sig_of("SELECT COUNT(v) FROM s WHERE v <= 10"),
            (RegionSignature{0, 10, false}));
  EXPECT_EQ(sig_of("SELECT COUNT(v) FROM s WHERE v > 10"),
            (RegionSignature{11, 100, false}));
  EXPECT_EQ(sig_of("SELECT COUNT(v) FROM s WHERE v >= 10"),
            (RegionSignature{10, 100, false}));
  EXPECT_EQ(sig_of("SELECT COUNT(v) FROM s WHERE v BETWEEN 10 AND 50"),
            (RegionSignature{10, 50, false}));
}

TEST(RegionSignature, WholeDomainForms) {
  // No WHERE, and WHEREs that exclude nothing, all canonicalize equal —
  // that equality is what lets the scheduler share one group across them.
  const RegionSignature whole{0, 100, true};
  EXPECT_EQ(sig_of("SELECT COUNT(v) FROM s"), whole);
  EXPECT_EQ(sig_of("SELECT COUNT(v) FROM s WHERE v >= 0"), whole);
  EXPECT_EQ(sig_of("SELECT COUNT(v) FROM s WHERE v <= 100"), whole);
  EXPECT_EQ(sig_of("SELECT COUNT(v) FROM s WHERE v BETWEEN 0 AND 100"),
            whole);
}

TEST(RegionSignature, ClampsToValueBound) {
  // A range reaching past the model's bound is the same region as one
  // stopping at it.
  EXPECT_EQ(sig_of("SELECT COUNT(v) FROM s WHERE v BETWEEN 40 AND 4000"),
            (RegionSignature{40, 100, false}));
}

/// Degenerate-region diagnostics are pinned: the service's admission path
/// forwards them verbatim to clients.
std::string region_error(const std::string& text, Value bound = 100) {
  try {
    region_signature(parse_query(text), bound);
  } catch (const QueryError& e) {
    return e.what();
  }
  return "";
}

TEST(RegionSignature, InvertedRangeDiagnosticIsPinned) {
  EXPECT_NE(region_error("SELECT COUNT(v) FROM s WHERE v BETWEEN 50 AND 10")
                .find("WHERE range is empty (lower bound exceeds upper bound)"),
            std::string::npos);
}

TEST(RegionSignature, EmptyRangeDiagnosticIsPinned) {
  const std::string pinned = "WHERE range selects no representable value";
  // v < 0: upper bound canonicalizes below the domain.
  EXPECT_NE(region_error("SELECT COUNT(v) FROM s WHERE v < 0").find(pinned),
            std::string::npos);
  // v > bound: lower bound canonicalizes above the domain.
  EXPECT_NE(region_error("SELECT COUNT(v) FROM s WHERE v > 100").find(pinned),
            std::string::npos);
  EXPECT_NE(
      region_error("SELECT COUNT(v) FROM s WHERE v BETWEEN 200 AND 300")
          .find(pinned),
      std::string::npos);
}

// ---- cube cover ------------------------------------------------------------

/// Catalog with dyadic geometry and hand-settable costs; the planner's only
/// window onto the cube, so these tests exercise the cover DP in isolation.
class FakeCatalog final : public CubeCatalog {
 public:
  FakeCatalog(unsigned levels, Value bound) : levels_(levels), bound_(bound) {}

  unsigned levels() const override { return levels_; }
  Value domain_bound() const override { return bound_; }
  RegionSignature cell_region(CubeCellRef ref) const override {
    const auto domain = static_cast<std::uint64_t>(bound_) + 1;
    RegionSignature r;
    r.lo = static_cast<Value>((static_cast<std::uint64_t>(ref.index) * domain)
                              >> ref.level);
    r.hi = static_cast<Value>(
               ((static_cast<std::uint64_t>(ref.index) + 1) * domain)
               >> ref.level) -
           1;
    r.whole_domain = r.lo == 0 && r.hi == bound_;
    return r;
  }
  unsigned distinct_registers() const override { return distinct_registers_; }
  std::uint64_t cell_refresh_bits(CubeCellRef ref) const override {
    const auto it = cell_overrides_.find({ref.level, ref.index});
    return it != cell_overrides_.end() ? it->second : cell_bits_;
  }
  std::uint64_t residue_collect_bits(
      const RegionSignature& r) const override {
    return residue_base_ +
           residue_per_value_ * static_cast<std::uint64_t>(r.hi - r.lo + 1);
  }
  std::uint64_t tree_collect_bits(const RegionSignature&) const override {
    return tree_bits_;
  }
  std::uint32_t refresh_amortization() const override { return amortization_; }

  unsigned distinct_registers_ = 0;
  std::uint64_t cell_bits_ = 100;
  std::uint64_t residue_base_ = 30;
  std::uint64_t residue_per_value_ = 25;
  std::uint64_t tree_bits_ = 1'000'000;
  std::uint32_t amortization_ = 1;
  std::map<std::pair<unsigned, unsigned>, std::uint64_t> cell_overrides_;

 private:
  unsigned levels_;
  Value bound_;
};

/// Exhaustive-search oracle for the cheapest left-to-right cover of
/// [lo, hi]: every prefix is either a catalog cell starting at lo or a
/// residue [lo, m] for any m. Exponential, fine on an 8-value domain.
std::uint64_t brute_best(const FakeCatalog& cat, Value lo, Value hi) {
  if (lo > hi) return 0;
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  for (unsigned level = 0; level < cat.levels(); ++level) {
    for (unsigned index = 0; index < (1u << level); ++index) {
      const RegionSignature r = cat.cell_region({level, index});
      if (r.lo > r.hi || r.lo != lo || r.hi > hi) continue;
      best = std::min(best, cat.cell_refresh_bits({level, index}) +
                                brute_best(cat, r.hi + 1, hi));
    }
  }
  for (Value m = lo; m <= hi; ++m) {
    RegionSignature r{lo, m, false};
    best = std::min(best,
                    cat.residue_collect_bits(r) + brute_best(cat, m + 1, hi));
  }
  return best;
}

std::string count_between(Value lo, Value hi) {
  return "SELECT COUNT(v) FROM s WHERE v BETWEEN " + std::to_string(lo) +
         " AND " + std::to_string(hi);
}

TEST(PlannerCover, ExhaustiveSmallGridMatchesBruteForceOracle) {
  // 3 levels over [0,7]: cells [0,7]; [0,3],[4,7]; [0,1],[2,3],[4,5],[6,7].
  FakeCatalog cat(3, 7);
  const Planner planner(7, &cat);
  for (Value lo = 0; lo <= 7; ++lo) {
    for (Value hi = lo; hi <= 7; ++hi) {
      const Result<CostedPlan> r =
          planner.plan(parse_query(count_between(lo, hi)));
      ASSERT_TRUE(r.ok()) << r.error();
      const CostedPlan& p = r.value();
      // Steps partition [lo, hi] left to right and their costs add up.
      ASSERT_FALSE(p.steps.empty());
      Value next = lo;
      std::uint64_t sum = 0;
      for (const PlanStep& step : p.steps) {
        EXPECT_EQ(step.region.lo, next) << p.description;
        next = step.region.hi + 1;
        sum += step.est_bits;
      }
      EXPECT_EQ(next, hi + 1) << p.description;
      EXPECT_EQ(sum, p.est_cube_bits) << p.description;
      // The DP found the true minimum over every possible ordered cover.
      const std::uint64_t oracle =
          std::min(brute_best(cat, lo, hi), cat.tree_bits_);
      EXPECT_EQ(p.est_cube_bits, oracle)
          << "region [" << lo << "," << hi << "]: " << p.description;
      EXPECT_TRUE(p.cube_served()) << p.description;  // tree_bits_ is huge
    }
  }
}

TEST(PlannerCover, CheapTreeCollectionWinsOutright) {
  FakeCatalog cat(3, 7);
  cat.tree_bits_ = 1;  // a tree collection beats any cover
  const Planner planner(7, &cat);
  const CostedPlan p = planner.plan(parse_query(count_between(1, 6))).value();
  ASSERT_EQ(p.steps.size(), 1u);
  EXPECT_EQ(p.steps[0].kind, StepKind::kTreeCollect);
  EXPECT_FALSE(p.cube_served());
  EXPECT_EQ(p.est_cube_bits, p.est_tree_bits);
}

TEST(PlannerCover, AlignedRegionIsOneCell) {
  FakeCatalog cat(3, 7);
  const Planner planner(7, &cat);
  const CostedPlan p = planner.plan(parse_query(count_between(4, 7))).value();
  ASSERT_EQ(p.steps.size(), 1u);
  EXPECT_EQ(p.steps[0].kind, StepKind::kCubeCell);
  EXPECT_EQ(p.steps[0].cell, (CubeCellRef{1, 1}));
}

TEST(PlannerCover, UnalignedEndsBecomeResidues) {
  // Make collection expensive relative to maintained cells: the cheapest
  // cover of [1,6] is then residue [1,1] + cells [2,3],[4,5] + residue
  // [6,6], with residues confined to the unaligned single-value ends.
  FakeCatalog cat(3, 7);
  cat.cell_bits_ = 50;
  cat.residue_base_ = 10;
  cat.residue_per_value_ = 100;
  const Planner planner(7, &cat);
  const CostedPlan p = planner.plan(parse_query(count_between(1, 6))).value();
  EXPECT_TRUE(p.cube_served());
  ASSERT_EQ(p.steps.size(), 4u);
  EXPECT_EQ(p.steps.front().kind, StepKind::kResidueCollect);
  EXPECT_EQ(p.steps.front().region, (RegionSignature{1, 1, false}));
  EXPECT_EQ(p.steps[1].kind, StepKind::kCubeCell);
  EXPECT_EQ(p.steps[1].cell, (CubeCellRef{2, 1}));
  EXPECT_EQ(p.steps[2].kind, StepKind::kCubeCell);
  EXPECT_EQ(p.steps[2].cell, (CubeCellRef{2, 2}));
  EXPECT_EQ(p.steps.back().kind, StepKind::kResidueCollect);
  EXPECT_EQ(p.steps.back().region, (RegionSignature{6, 6, false}));
}

TEST(PlannerCover, EqualCostTieBreaksToFewerCoarserSteps) {
  // L1 cell [0,3] at 100 vs its two L2 children at 50 each: same bits, and
  // the deterministic tie-break must pick the single coarse cell.
  FakeCatalog cat(3, 7);
  cat.cell_overrides_[{1, 0}] = 100;
  cat.cell_overrides_[{2, 0}] = 50;
  cat.cell_overrides_[{2, 1}] = 50;
  const Planner planner(7, &cat);
  const CostedPlan p = planner.plan(parse_query(count_between(0, 3))).value();
  ASSERT_EQ(p.steps.size(), 1u);
  EXPECT_EQ(p.steps[0].cell, (CubeCellRef{1, 0}));
}

TEST(PlannerCover, RefreshCostAmortizedOverHorizon) {
  FakeCatalog cat(3, 7);
  cat.amortization_ = 4;  // raw 100 -> 25 per epoch served
  const Planner planner(7, &cat);
  const CostedPlan p = planner.plan(parse_query(count_between(4, 7))).value();
  ASSERT_EQ(p.steps.size(), 1u);
  EXPECT_EQ(p.steps[0].kind, StepKind::kCubeCell);
  EXPECT_EQ(p.est_cube_bits, 25u);
}

TEST(PlannerCover, WholeDomainPlanUsesRootCell) {
  FakeCatalog cat(3, 7);
  const Planner planner(7, &cat);
  const CostedPlan p = planner.plan(parse_query("SELECT SUM(v) FROM s"))
                           .value();
  ASSERT_EQ(p.steps.size(), 1u);
  EXPECT_EQ(p.steps[0].kind, StepKind::kCubeCell);
  EXPECT_EQ(p.steps[0].cell, (CubeCellRef{0, 0}));
  EXPECT_TRUE(p.steps[0].region.whole_domain);
}

// ---- cube eligibility ------------------------------------------------------

TEST(Planner, CubeEligibilityByStrategyAndRegisters) {
  FakeCatalog cat(3, 7);
  const Planner bare(7);
  const Planner with(7, &cat);

  const Query count = parse_query("SELECT COUNT(v) FROM s");
  EXPECT_FALSE(bare.cube_eligible(bare.plan(count).value()));
  EXPECT_TRUE(with.cube_eligible(with.plan(count).value()));

  // Selections and exact distinct never decompose over cube partials.
  EXPECT_FALSE(with.cube_eligible(
      with.plan(parse_query("SELECT MEDIAN(v) FROM s")).value()));
  EXPECT_FALSE(with.cube_eligible(
      with.plan(parse_query("SELECT COUNT_DISTINCT(v) FROM s")).value()));

  // Approx distinct requires the cube's HLL geometry to match exactly.
  const Query apx = parse_query("SELECT COUNT_DISTINCT(v) FROM s ERROR 0.1");
  const CostedPlan apx_plan = with.plan(apx).value();
  EXPECT_FALSE(with.cube_eligible(apx_plan));  // cube keeps no sketches
  FakeCatalog sketched(3, 7);
  sketched.distinct_registers_ = apx_plan.registers;
  const Planner with_sketch(7, &sketched);
  EXPECT_TRUE(with_sketch.cube_eligible(with_sketch.plan(apx).value()));
  sketched.distinct_registers_ = apx_plan.registers * 2;
  EXPECT_FALSE(with_sketch.cube_eligible(with_sketch.plan(apx).value()));
}

}  // namespace
}  // namespace sensornet::query
