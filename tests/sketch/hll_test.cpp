// The sketch::Hll contract: construction validation, sparse/dense promotion,
// merge in every representation combination, the widened register accessor,
// and the versioned v1 wire format (round-trips, golden byte images, and
// decode rejection of malformed headers/bodies).
#include "src/sketch/hll.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "src/common/codec.hpp"
#include "src/common/error.hpp"
#include "src/common/rng.hpp"

namespace sensornet::sketch {
namespace {

constexpr unsigned kWidths[] = {4, 5, 6, 8};

Hll make(unsigned m, unsigned width = 6, bool sparse = true) {
  return Hll::make_by_registers(m, HllOptions{.width = width, .sparse = sparse})
      .value();
}

std::vector<std::uint8_t> encode_bytes(const Hll& hll) {
  BitWriter w;
  hll.encode(w);
  EXPECT_EQ(w.bit_count(), hll.wire_bits());
  return {w.bytes().begin(), w.bytes().end()};
}

Hll round_trip(const Hll& hll) {
  BitWriter w;
  hll.encode(w);
  BitReader r(w.bytes().data(), w.bit_count());
  auto decoded = Hll::decode(r);
  EXPECT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(r.remaining(), 0u);
  return std::move(decoded).value();
}

TEST(Hll, MoveOnlyContract) {
  static_assert(!std::is_copy_constructible_v<Hll>);
  static_assert(!std::is_copy_assignable_v<Hll>);
  static_assert(std::is_nothrow_move_constructible_v<Hll>);
  static_assert(std::is_nothrow_move_assignable_v<Hll>);
}

TEST(Hll, ValueReturnTypeIsWide) {
  // The legacy byte-register accessor returned uint8_t, which would silently
  // truncate any width > 8; the new accessor is committed to `unsigned`.
  static_assert(
      std::is_same_v<decltype(std::declval<const Hll&>().value(0)), unsigned>);
}

TEST(Hll, MakeByPrecisionValidatesGeometry) {
  for (const unsigned w : kWidths) {
    EXPECT_TRUE(Hll::make_by_precision(6, {.width = w}).ok()) << w;
  }
  for (const unsigned w : {0u, 1u, 3u, 7u, 9u, 16u}) {
    const auto r = Hll::make_by_precision(6, {.width = w});
    EXPECT_FALSE(r.ok()) << w;
    EXPECT_NE(r.error().find("width"), std::string::npos);
  }
  EXPECT_FALSE(Hll::make_by_precision(0).ok());
  EXPECT_FALSE(Hll::make_by_precision(Hll::kMaxPrecision + 1).ok());
  EXPECT_TRUE(Hll::make_by_precision(Hll::kMinPrecision).ok());
  EXPECT_TRUE(Hll::make_by_precision(Hll::kMaxPrecision).ok());
}

TEST(Hll, MakeByRegistersRequiresPowerOfTwo) {
  EXPECT_FALSE(Hll::make_by_registers(0).ok());
  EXPECT_FALSE(Hll::make_by_registers(1).ok());
  EXPECT_FALSE(Hll::make_by_registers(12).ok());
  const Hll hll = Hll::make_by_registers(256).value();
  EXPECT_EQ(hll.m(), 256u);
  EXPECT_EQ(hll.precision(), 8u);
}

TEST(Hll, ValueFailureThrowsOnAccess) {
  auto r = Hll::make_by_registers(12);
  ASSERT_FALSE(r.ok());
  EXPECT_THROW(std::move(r).value(), PreconditionError);
}

TEST(Hll, ObserveReadbackAndStatistics) {
  for (const bool sparse : {true, false}) {
    Hll hll = make(16, 6, sparse);
    hll.observe(3, 7);
    hll.observe(3, 5);   // lower rank: no-op
    hll.observe(3, 9);   // higher rank: wins
    hll.observe(12, 1);
    hll.observe(0, 0);   // zero rank: no-op
    EXPECT_EQ(hll.value(3), 9u);
    EXPECT_EQ(hll.value(12), 1u);
    EXPECT_EQ(hll.value(0), 0u);
    EXPECT_EQ(hll.rank_sum(), 10u);
    EXPECT_EQ(hll.zero_count(), 14u);
  }
}

TEST(Hll, RankSaturatesAtWidthCap) {
  for (const unsigned w : kWidths) {
    Hll hll = make(16, w);
    hll.observe(0, 1000);
    EXPECT_EQ(hll.value(0), hll.rank_cap());
    EXPECT_EQ(hll.rank_cap(), (1u << w) - 1);
  }
}

TEST(Hll, PromotionHappensExactlyAtCapacity) {
  Hll hll = make(256, 6);
  const std::size_t cap = hll.sparse_capacity();
  // Crossover of the two wire costs: m*w / (p+w) entries.
  EXPECT_EQ(cap, 256u * 6 / (8 + 6));
  for (std::size_t i = 0; i < cap; ++i) {
    hll.observe(static_cast<unsigned>(i), 3);
  }
  EXPECT_TRUE(hll.is_sparse());
  EXPECT_EQ(hll.sparse_entry_count(), cap);
  // Updating an existing bucket at capacity must NOT promote.
  hll.observe(0, 9);
  EXPECT_TRUE(hll.is_sparse());
  // The first NEW bucket past capacity promotes, preserving every value.
  hll.observe(static_cast<unsigned>(cap), 5);
  EXPECT_FALSE(hll.is_sparse());
  EXPECT_EQ(hll.value(0), 9u);
  for (std::size_t i = 1; i < cap; ++i) {
    EXPECT_EQ(hll.value(static_cast<unsigned>(i)), 3u) << i;
  }
  EXPECT_EQ(hll.value(static_cast<unsigned>(cap)), 5u);
}

TEST(Hll, PromotionPreservesEstimate) {
  // The estimate is a function of logical register state only; promotion
  // must not move it.
  Xoshiro256 rng(31);
  Hll sparse = make(256, 6, /*sparse=*/true);
  Hll dense = make(256, 6, /*sparse=*/false);
  for (int i = 0; i < 2000; ++i) {
    const Observation o = random_observation(256, rng);
    sparse.observe(o.bucket, o.rank);
    dense.observe(o.bucket, o.rank);
  }
  EXPECT_FALSE(sparse.is_sparse());  // far past capacity by now
  EXPECT_EQ(sparse, dense);
  EXPECT_DOUBLE_EQ(sparse.estimate(), dense.estimate());
  EXPECT_DOUBLE_EQ(sparse.estimate_loglog(), dense.estimate_loglog());
}

TEST(Hll, CloneIsDeep) {
  Hll a = make(64, 6);
  a.add(1, 0);
  Hll b = a.clone();
  b.add(2, 0);
  EXPECT_FALSE(a == b);
  EXPECT_EQ(a.value(hashed_observation(64, 1, 0).bucket),
            hashed_observation(64, 1, 0).rank);
}

TEST(Hll, MergeSparseIntoSparseTakesMax) {
  Hll a = make(64, 6);
  Hll b = make(64, 6);
  a.observe(1, 4);
  a.observe(5, 2);
  b.observe(5, 7);
  b.observe(9, 1);
  ASSERT_TRUE(a.merge(b).ok());
  EXPECT_TRUE(a.is_sparse());
  EXPECT_EQ(a.value(1), 4u);
  EXPECT_EQ(a.value(5), 7u);
  EXPECT_EQ(a.value(9), 1u);
  EXPECT_EQ(a.sparse_entry_count(), 3u);
}

TEST(Hll, MergeSparseUnionPromotesPastCapacity) {
  Hll a = make(64, 6);
  Hll b = make(64, 6);
  const std::size_t cap = a.sparse_capacity();
  // Disjoint bucket sets, each individually under capacity.
  for (unsigned i = 0; i < cap; ++i) a.observe(2 * i, 1);
  for (unsigned i = 0; i < cap; ++i) b.observe(2 * i + 1, 2);
  ASSERT_TRUE(a.is_sparse());
  ASSERT_TRUE(b.is_sparse());
  ASSERT_TRUE(a.merge(b).ok());
  EXPECT_FALSE(a.is_sparse());
  for (unsigned i = 0; i < cap; ++i) {
    EXPECT_EQ(a.value(2 * i), 1u);
    EXPECT_EQ(a.value(2 * i + 1), 2u);
  }
}

TEST(Hll, MergeAllRepresentationCombosAgree) {
  // Four combos (sparse/dense x sparse/dense) over identical logical inputs
  // must land identical logical states.
  Xoshiro256 rng(47);
  std::vector<Observation> xs;
  std::vector<Observation> ys;
  for (int i = 0; i < 40; ++i) xs.push_back(random_observation(128, rng));
  for (int i = 0; i < 40; ++i) ys.push_back(random_observation(128, rng));
  const auto build = [&](const std::vector<Observation>& os, bool sparse) {
    Hll hll = make(128, 6, sparse);
    for (const auto& o : os) hll.observe(o.bucket, o.rank);
    return hll;
  };
  Hll reference = build(xs, false);
  ASSERT_TRUE(reference.merge(build(ys, false)).ok());
  for (const bool left : {true, false}) {
    for (const bool right : {true, false}) {
      Hll acc = build(xs, left);
      ASSERT_TRUE(acc.merge(build(ys, right)).ok());
      EXPECT_EQ(acc, reference) << "left=" << left << " right=" << right;
    }
  }
}

TEST(Hll, SwarDenseMergeMatchesScalarMax) {
  // The word-at-a-time SWAR merge against a register-by-register oracle, at
  // every packed width, with ranks spanning the full field range.
  Xoshiro256 rng(53);
  for (const unsigned w : kWidths) {
    Hll a = make(512, w, /*sparse=*/false);
    Hll b = make(512, w, /*sparse=*/false);
    std::vector<unsigned> ax(512, 0);
    std::vector<unsigned> bx(512, 0);
    for (int i = 0; i < 4000; ++i) {
      const auto bucket = static_cast<unsigned>(rng.next_below(512));
      const auto rank =
          1 + static_cast<unsigned>(rng.next_below((1u << w) - 1));
      if (i & 1) {
        a.observe(bucket, rank);
        if (rank > ax[bucket]) ax[bucket] = rank;
      } else {
        b.observe(bucket, rank);
        if (rank > bx[bucket]) bx[bucket] = rank;
      }
    }
    ASSERT_TRUE(a.merge(b).ok());
    for (unsigned i = 0; i < 512; ++i) {
      EXPECT_EQ(a.value(i), std::max(ax[i], bx[i])) << "w=" << w << " i=" << i;
    }
  }
}

TEST(Hll, MergeRejectsMismatchedGeometry) {
  Hll a = make(64, 6);
  a.observe(1, 3);
  const Hll wrong_m = make(128, 6);
  const Hll wrong_w = make(64, 5);
  const auto r1 = a.merge(wrong_m);
  EXPECT_FALSE(r1.ok());
  EXPECT_NE(r1.error().find("geometry"), std::string::npos);
  EXPECT_FALSE(a.merge(wrong_w).ok());
  // A failed merge must leave the receiver untouched.
  EXPECT_TRUE(a.is_sparse());
  EXPECT_EQ(a.value(1), 3u);
  EXPECT_EQ(a.sparse_entry_count(), 1u);
}

TEST(Hll, RoundTripSparseAllWidths) {
  for (const unsigned w : kWidths) {
    Hll hll = make(64, w);
    for (std::uint64_t v = 0; v < 6; ++v) hll.add(v, 3);
    ASSERT_TRUE(hll.is_sparse());
    const Hll back = round_trip(hll);
    EXPECT_TRUE(back.is_sparse());
    EXPECT_EQ(back, hll) << "w=" << w;
    // Re-encode: byte-identical (the format is canonical).
    EXPECT_EQ(encode_bytes(back), encode_bytes(hll)) << "w=" << w;
  }
}

TEST(Hll, RoundTripDenseAllWidths) {
  Xoshiro256 rng(61);
  for (const unsigned w : kWidths) {
    Hll hll = make(128, w, /*sparse=*/false);
    for (int i = 0; i < 1000; ++i) hll.add_random(rng);
    const Hll back = round_trip(hll);
    EXPECT_FALSE(back.is_sparse());
    EXPECT_EQ(back, hll) << "w=" << w;
    EXPECT_EQ(encode_bytes(back), encode_bytes(hll)) << "w=" << w;
  }
}

TEST(Hll, DenseBodyMatchesPerRegisterImage) {
  // The bulk word-at-a-time dense encoder must emit the exact bit image of
  // the naive per-register write_bits loop (registers straddle word flushes
  // at widths 5 and 6).
  Xoshiro256 rng(67);
  for (const unsigned w : kWidths) {
    Hll hll = make(256, w, /*sparse=*/false);
    for (int i = 0; i < 3000; ++i) hll.add_random(rng);
    BitWriter naive;
    naive.write_bits(Hll::kWireMagic, 8);
    naive.write_bits(Hll::kWireVersion, 4);
    naive.write_bits(hll.precision(), 5);
    naive.write_bits(w - 1, 3);
    naive.write_bit(true);
    for (unsigned b = 0; b < hll.m(); ++b) naive.write_bits(hll.value(b), w);
    BitWriter bulk;
    hll.encode(bulk);
    ASSERT_EQ(bulk.bit_count(), naive.bit_count()) << "w=" << w;
    for (std::size_t i = 0; i < bulk.bytes().size(); ++i) {
      ASSERT_EQ(bulk.bytes()[i], naive.bytes()[i]) << "w=" << w << " i=" << i;
    }
  }
}

TEST(Hll, GoldenSparseV1Image) {
  // Pinned byte image: any change to these bytes is a wire-format break and
  // must come with a version bump, not a silent re-interpretation.
  // p=4 (m=16), width 6, entries (bucket 2, rank 5), (bucket 11, rank 1):
  //   A7 | 0001 | 00100 | 101 | 0 | delta(2)=0101 | 0010 000101 | 1011 000001
  Hll hll = make(16, 6);
  hll.observe(11, 1);
  hll.observe(2, 5);
  EXPECT_EQ(hll.wire_bits(), 45u);
  const std::vector<std::uint8_t> golden = {0xA7, 0x12, 0x52,
                                            0x90, 0xB6, 0x08};
  EXPECT_EQ(encode_bytes(hll), golden);
  BitReader r(golden.data(), 45);
  auto decoded = Hll::decode(r);
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(decoded.value(), hll);
}

TEST(Hll, GoldenDenseV1Image) {
  // p=2 (m=4), width 4, registers [3, 15, 0, 8]:
  //   A7 | 0001 | 00010 | 011 | 1 | 0011 1111 0000 1000
  Hll hll = make(4, 4, /*sparse=*/false);
  hll.observe(0, 3);
  hll.observe(1, 200);  // saturates at rank_cap = 15
  hll.observe(3, 8);
  EXPECT_EQ(hll.wire_bits(), 37u);
  const std::vector<std::uint8_t> golden = {0xA7, 0x11, 0x39, 0xF8, 0x40};
  EXPECT_EQ(encode_bytes(hll), golden);
  BitReader r(golden.data(), 37);
  auto decoded = Hll::decode(r);
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(decoded.value(), hll);
}

TEST(Hll, SparseWireWinsAtLowCardinality) {
  // The acceptance criterion for the sparse representation: a leaf holding a
  // handful of items ships far fewer bits than the m*width flat image.
  Hll hll = make(256, 6);
  for (std::uint64_t v = 0; v < 4; ++v) hll.add(v, 1);
  const std::uint64_t flat = 256 * 6;
  EXPECT_LT(hll.wire_bits(), flat / 10);
  // And a saturated sketch pays only the fixed header over the flat image.
  Xoshiro256 rng(71);
  Hll full = make(256, 6);
  for (int i = 0; i < 100000; ++i) full.add_random(rng);
  EXPECT_FALSE(full.is_sparse());
  EXPECT_EQ(full.wire_bits(), flat + Hll::kHeaderBits);
}

TEST(Hll, DecodeRejectsBadHeader) {
  const auto decode_of = [](BitWriter& w) {
    BitReader r(w.bytes().data(), w.bit_count());
    return Hll::decode(r);
  };
  {
    BitWriter w;  // wrong magic
    w.write_bits(0x55, 8);
    w.write_bits(Hll::kWireVersion, 4);
    w.write_bits(4, 5);
    w.write_bits(5, 3);
    w.write_bit(true);
    w.write_bits(0, 64);
    w.write_bits(0, 32);
    const auto r = decode_of(w);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().find("magic"), std::string::npos);
  }
  {
    BitWriter w;  // future format version
    w.write_bits(Hll::kWireMagic, 8);
    w.write_bits(Hll::kWireVersion + 1, 4);
    w.write_bits(4, 5);
    w.write_bits(5, 3);
    w.write_bit(true);
    w.write_bits(0, 64);
    w.write_bits(0, 32);
    const auto r = decode_of(w);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().find("version"), std::string::npos);
  }
  {
    BitWriter w;  // unsupported width (7 on the wire as 110)
    w.write_bits(Hll::kWireMagic, 8);
    w.write_bits(Hll::kWireVersion, 4);
    w.write_bits(4, 5);
    w.write_bits(6, 3);
    w.write_bit(false);
    encode_uint(w, 0);
    EXPECT_FALSE(decode_of(w).ok());
  }
  {
    BitWriter w;  // precision 0
    w.write_bits(Hll::kWireMagic, 8);
    w.write_bits(Hll::kWireVersion, 4);
    w.write_bits(0, 5);
    w.write_bits(5, 3);
    w.write_bit(false);
    encode_uint(w, 0);
    EXPECT_FALSE(decode_of(w).ok());
  }
}

TEST(Hll, DecodeRejectsMalformedSparseBody) {
  const auto header = [](BitWriter& w, unsigned p, unsigned width) {
    w.write_bits(Hll::kWireMagic, 8);
    w.write_bits(Hll::kWireVersion, 4);
    w.write_bits(p, 5);
    w.write_bits(width - 1, 3);
    w.write_bit(false);
  };
  {
    BitWriter w;  // count over the sparse capacity
    header(w, 4, 6);
    encode_uint(w, 1000);
    BitReader r(w.bytes().data(), w.bit_count());
    const auto res = Hll::decode(r);
    ASSERT_FALSE(res.ok());
    EXPECT_NE(res.error().find("capacity"), std::string::npos);
  }
  {
    BitWriter w;  // buckets out of order
    header(w, 4, 6);
    encode_uint(w, 2);
    w.write_bits(9, 4);
    w.write_bits(1, 6);
    w.write_bits(2, 4);
    w.write_bits(1, 6);
    BitReader r(w.bytes().data(), w.bit_count());
    const auto res = Hll::decode(r);
    ASSERT_FALSE(res.ok());
    EXPECT_NE(res.error().find("ascending"), std::string::npos);
  }
  {
    BitWriter w;  // duplicate bucket
    header(w, 4, 6);
    encode_uint(w, 2);
    w.write_bits(3, 4);
    w.write_bits(1, 6);
    w.write_bits(3, 4);
    w.write_bits(2, 6);
    BitReader r(w.bytes().data(), w.bit_count());
    EXPECT_FALSE(Hll::decode(r).ok());
  }
  {
    BitWriter w;  // zero rank
    header(w, 4, 6);
    encode_uint(w, 1);
    w.write_bits(3, 4);
    w.write_bits(0, 6);
    BitReader r(w.bytes().data(), w.bit_count());
    const auto res = Hll::decode(r);
    ASSERT_FALSE(res.ok());
    EXPECT_NE(res.error().find("rank"), std::string::npos);
  }
  {
    BitWriter w;  // truncated body: 3 entries promised, none present
    header(w, 4, 6);
    encode_uint(w, 3);
    BitReader r(w.bytes().data(), w.bit_count());
    const auto res = Hll::decode(r);
    ASSERT_FALSE(res.ok());
    EXPECT_NE(res.error().find("truncated"), std::string::npos);
  }
}

TEST(Hll, EstimateMatchesFreeFunctionMath) {
  // The class estimators are the documented closed forms over register
  // state — pin that so refactors can't drift the math.
  Xoshiro256 rng(79);
  Hll hll = make(64, 6);
  for (int i = 0; i < 300; ++i) hll.add_random(rng);
  double harmonic = 0;
  std::uint64_t rank_sum = 0;
  unsigned zeros = 0;
  for (unsigned b = 0; b < 64; ++b) {
    const unsigned v = hll.value(b);
    harmonic += std::ldexp(1.0, -static_cast<int>(v));
    rank_sum += v;
    if (v == 0) ++zeros;
  }
  EXPECT_DOUBLE_EQ(hll.estimate(),
                   hyperloglog_estimate_from(64, harmonic, zeros));
  EXPECT_DOUBLE_EQ(hll.estimate_loglog(),
                   loglog_estimate_from(64, rank_sum));
}

}  // namespace
}  // namespace sensornet::sketch
