#include "src/sketch/odi_sum.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/net/topology.hpp"
#include "src/proto/aggregations.hpp"
#include "src/proto/tree_wave.hpp"
#include "src/sketch/hll.hpp"

namespace sensornet::sketch {
namespace {

Hll make_hll(unsigned m) {
  return Hll::make_by_registers(m, HllOptions{.width = 6}).value();
}

TEST(OdiSum, BinomialSamplerMeanAndSpread) {
  Xoshiro256 rng(3);
  // Small-n exact path and large-n approximate path, both ~ n/m on average.
  for (const std::uint64_t n : {40ULL, 40000ULL}) {
    const unsigned m = 16;
    double sum = 0;
    constexpr int kTrials = 2000;
    for (int t = 0; t < kTrials; ++t) {
      const auto draw = sample_binomial_inv_m(n, m, rng);
      ASSERT_LE(draw, n);
      sum += static_cast<double>(draw);
    }
    const double mean = sum / kTrials;
    const double expected = static_cast<double>(n) / m;
    EXPECT_NEAR(mean, expected, 5 * std::sqrt(expected / kTrials) * m);
  }
}

TEST(OdiSum, MaxGeometricSingleMatchesPlainGeometric) {
  Xoshiro256 rng(5);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += sample_max_geometric(1, rng);
  EXPECT_NEAR(sum / 20000, 2.0, 0.1);  // Geometric(1/2) mean
}

TEST(OdiSum, MaxGeometricTracksLogCount) {
  // E[max of n geometrics] ~ log2(n) + 1.33.
  Xoshiro256 rng(7);
  for (const std::uint64_t n : {256ULL, 65536ULL}) {
    double sum = 0;
    constexpr int kTrials = 4000;
    for (int t = 0; t < kTrials; ++t) {
      sum += sample_max_geometric(n, rng);
    }
    EXPECT_NEAR(sum / kTrials, std::log2(static_cast<double>(n)) + 1.33, 0.5)
        << "n=" << n;
  }
}

TEST(OdiSum, ZeroValueIsNoop) {
  Hll hll = make_hll(16);
  Xoshiro256 rng(9);
  hll.add_sum(0, rng);
  EXPECT_EQ(hll.rank_sum(), 0u);
}

TEST(OdiSum, EstimatesSumNotCount) {
  // 50 items of value 1000 each: the estimator must see ~50,000, not ~50.
  Xoshiro256 rng(11);
  const unsigned m = 256;
  double total = 0;
  constexpr int kTrials = 15;
  for (int t = 0; t < kTrials; ++t) {
    Hll hll = make_hll(m);
    for (int i = 0; i < 50; ++i) hll.add_sum(1000, rng);
    total += hll.estimate();
  }
  EXPECT_NEAR(total / kTrials / 50000.0, 1.0, 0.1);
}

TEST(OdiSum, MixedMagnitudes) {
  Xoshiro256 rng(13);
  const unsigned m = 256;
  std::uint64_t truth = 0;
  Hll hll = make_hll(m);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t v = rng.next_below(5000);
    truth += v;
    hll.add_sum(v, rng);
  }
  EXPECT_NEAR(hll.estimate() / static_cast<double>(truth), 1.0,
              0.35);  // single sketch: ~3 sigma at m=256 plus approx slack
}

TEST(OdiSum, SumWaveOverTree) {
  // End-to-end: kSumOdi registers aggregated by a tree wave estimate the
  // network-wide SUM.
  sim::Network net(net::make_grid(8, 8), 17);
  Xoshiro256 rng(19);
  std::uint64_t truth = 0;
  ValueSet xs(64);
  for (auto& x : xs) {
    x = static_cast<Value>(rng.next_below(2000));
    truth += static_cast<std::uint64_t>(x);
  }
  net.set_one_item_per_node(xs);
  const auto tree = net::bfs_tree(net.graph(), 0);
  proto::LogLogAgg::Request req;
  req.registers = 256;
  req.width = 6;
  req.mode = proto::LogLogAgg::Mode::kSumOdi;
  double total = 0;
  constexpr int kTrials = 10;
  for (int t = 0; t < kTrials; ++t) {
    proto::TreeWave<proto::LogLogAgg> wave(tree, static_cast<std::uint32_t>(t));
    total += wave.execute(net, req).estimate();
  }
  EXPECT_NEAR(total / kTrials / static_cast<double>(truth), 1.0, 0.15);
}

TEST(OdiSum, RegisterStateStaysMergeIdempotent) {
  // The ODI property that makes this sketch multipath-safe.
  Xoshiro256 rng(23);
  Hll a = make_hll(64);
  a.add_sum(12345, rng);
  Hll merged = a.clone();
  ASSERT_TRUE(merged.merge(a).ok());
  EXPECT_EQ(merged, a);
}

}  // namespace
}  // namespace sensornet::sketch
