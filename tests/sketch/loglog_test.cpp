#include "src/sketch/hll.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.hpp"

namespace sensornet::sketch {
namespace {

Hll make_hll(unsigned m, unsigned width = 6) {
  return Hll::make_by_registers(m, HllOptions{.width = width}).value();
}

TEST(LogLog, AlphaConstantMatchesLiterature) {
  // Durand-Flajolet: alpha_m -> 0.39701... for large m.
  EXPECT_NEAR(loglog_alpha(1024), 0.39701, 0.002);
  EXPECT_NEAR(loglog_alpha(64), 0.39701, 0.02);
}

TEST(LogLog, SigmaConstants) {
  EXPECT_NEAR(loglog_sigma(1024) * std::sqrt(1024.0), 1.30, 0.01);
  EXPECT_NEAR(hyperloglog_sigma(256) * std::sqrt(256.0), 1.04, 0.001);
}

TEST(LogLog, RegisterWidthIsLogLog) {
  const unsigned w20 = register_width_for(1 << 20);
  EXPECT_GE(w20, 5u);
  EXPECT_LE(w20, 7u);
  EXPECT_LE(register_width_for(100), w20);
}

TEST(LogLog, PackedWidthRoundsIntoDenseFormats) {
  // packed_width_for must always land on a packable dense width.
  for (std::uint64_t n = 1; n < (1ULL << 62); n = n * 7 + 3) {
    const unsigned w = packed_width_for(n);
    EXPECT_TRUE(w == 4 || w == 5 || w == 6 || w == 8) << "n=" << n;
    EXPECT_GE(w, register_width_for(n) == 7 ? 8u : register_width_for(n));
  }
}

TEST(LogLog, RandomModeEstimatesCount) {
  // sigma ~ 1.3/sqrt(256) ~ 8%; average over trials should be within a few
  // percent of truth for N >> m.
  Xoshiro256 rng(101);
  const unsigned m = 256;
  constexpr int kTrials = 20;
  for (const std::uint64_t n : {20000ULL, 100000ULL}) {
    double sum = 0;
    for (int t = 0; t < kTrials; ++t) {
      Hll hll = make_hll(m);
      for (std::uint64_t i = 0; i < n; ++i) hll.add_random(rng);
      sum += hll.estimate_loglog();
    }
    const double avg = sum / kTrials;
    EXPECT_NEAR(avg / static_cast<double>(n), 1.0, 0.06) << "n=" << n;
  }
}

TEST(LogLog, HashedModeCountsDistinctNotOccurrences) {
  const unsigned m = 256;
  Hll once = make_hll(m);
  Hll tenfold = make_hll(m);
  const std::uint64_t distinct = 50000;
  for (std::uint64_t v = 0; v < distinct; ++v) {
    once.add(v, 1);
    for (int rep = 0; rep < 10; ++rep) tenfold.add(v, 1);
  }
  // Duplicates must not move a single register.
  EXPECT_EQ(once, tenfold);
  EXPECT_NEAR(once.estimate_loglog() / static_cast<double>(distinct), 1.0,
              0.15);
}

TEST(LogLog, HashedModeSaltIndependence) {
  const unsigned m = 64;
  Hll a = make_hll(m);
  Hll b = make_hll(m);
  for (std::uint64_t v = 0; v < 1000; ++v) {
    a.add(v, 1);
    b.add(v, 2);
  }
  EXPECT_FALSE(a == b);  // different hash functions -> different sketches
}

TEST(HyperLogLog, SmallRangeCorrectionKeepsLowCountsHonest) {
  // Raw LogLog overestimates badly when n << m; HLL's linear counting
  // correction must not.
  Xoshiro256 rng(55);
  const unsigned m = 256;
  for (const std::uint64_t n : {10ULL, 50ULL, 200ULL}) {
    double sum = 0;
    constexpr int kTrials = 30;
    for (int t = 0; t < kTrials; ++t) {
      Hll hll = make_hll(m);
      for (std::uint64_t i = 0; i < n; ++i) hll.add_random(rng);
      sum += hll.estimate();
    }
    const double avg = sum / kTrials;
    EXPECT_NEAR(avg / static_cast<double>(n), 1.0, 0.15) << "n=" << n;
  }
}

TEST(HyperLogLog, StandardErrorScalesWithRegisters) {
  // Empirical relative error at m=64 should be roughly double that at m=256.
  Xoshiro256 rng(77);
  const std::uint64_t n = 50000;
  const auto rel_err = [&](unsigned m) {
    constexpr int kTrials = 30;
    double sq = 0;
    for (int t = 0; t < kTrials; ++t) {
      Hll hll = make_hll(m);
      for (std::uint64_t i = 0; i < n; ++i) hll.add_random(rng);
      const double e = hll.estimate() / n - 1.0;
      sq += e * e;
    }
    return std::sqrt(sq / kTrials);
  };
  const double err64 = rel_err(64);
  const double err256 = rel_err(256);
  EXPECT_LT(err256, err64);
  // Ratio should be ~2 (sqrt(256/64)); allow generous slack for 30 trials.
  EXPECT_NEAR(err64 / err256, 2.0, 1.2);
}

TEST(LogLog, EstimateWithinThreeSigmaTypically) {
  // Fact 2.2 framing: a single invocation is an alpha-counting protocol with
  // sigma ~ beta_m/sqrt(m). Count 3-sigma violations over trials.
  Xoshiro256 rng(303);
  const unsigned m = 128;
  const std::uint64_t n = 30000;
  const double sigma = loglog_sigma(m);
  int violations = 0;
  constexpr int kTrials = 60;
  for (int t = 0; t < kTrials; ++t) {
    Hll hll = make_hll(m);
    for (std::uint64_t i = 0; i < n; ++i) hll.add_random(rng);
    const double rel = hll.estimate_loglog() / static_cast<double>(n) - 1.0;
    if (std::abs(rel) > 3 * sigma) ++violations;
  }
  EXPECT_LE(violations, 3);  // ~0.3% expected; allow a few for small samples
}

}  // namespace
}  // namespace sensornet::sketch
