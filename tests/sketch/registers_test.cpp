#include "src/sketch/registers.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"

namespace sensornet::sketch {
namespace {

TEST(Registers, StartsZeroed) {
  const RegisterArray a(16, 5);
  EXPECT_EQ(a.count(), 16u);
  EXPECT_EQ(a.width(), 5u);
  EXPECT_EQ(a.zero_count(), 16u);
  EXPECT_EQ(a.rank_sum(), 0u);
}

TEST(Registers, RequiresPowerOfTwoCount) {
  EXPECT_THROW(RegisterArray(12, 5), PreconditionError);
  EXPECT_THROW(RegisterArray(0, 5), PreconditionError);
}

TEST(Registers, WidthBounds) {
  EXPECT_THROW(RegisterArray(8, 0), PreconditionError);
  EXPECT_THROW(RegisterArray(8, 9), PreconditionError);
}

TEST(Registers, ObserveKeepsMax) {
  RegisterArray a(4, 5);
  a.observe(2, 7);
  a.observe(2, 3);
  EXPECT_EQ(a.value(2), 7u);
  a.observe(2, 9);
  EXPECT_EQ(a.value(2), 9u);
}

TEST(Registers, ObserveSaturatesAtWidth) {
  RegisterArray a(4, 3);  // max register value 7
  a.observe(0, 250);
  EXPECT_EQ(a.value(0), 7u);
}

TEST(Registers, MergeIsElementwiseMax) {
  RegisterArray a(4, 5);
  RegisterArray b(4, 5);
  a.observe(0, 3);
  a.observe(1, 9);
  b.observe(0, 5);
  b.observe(2, 2);
  a.merge(b);
  EXPECT_EQ(a.value(0), 5u);
  EXPECT_EQ(a.value(1), 9u);
  EXPECT_EQ(a.value(2), 2u);
  EXPECT_EQ(a.value(3), 0u);
}

TEST(Registers, MergeIsIdempotentAndCommutative) {
  RegisterArray a(8, 5);
  RegisterArray b(8, 5);
  for (unsigned i = 0; i < 8; ++i) {
    a.observe(i, i + 1);
    b.observe(i, 8 - i);
  }
  RegisterArray ab = a;
  ab.merge(b);
  RegisterArray ba = b;
  ba.merge(a);
  EXPECT_EQ(ab, ba);
  RegisterArray abb = ab;
  abb.merge(b);  // duplicate delivery (the [2] robustness property)
  EXPECT_EQ(abb, ab);
}

TEST(Registers, MergeGeometryMismatchThrows) {
  RegisterArray a(8, 5);
  RegisterArray b(4, 5);
  EXPECT_THROW(a.merge(b), PreconditionError);
  RegisterArray c(8, 4);
  EXPECT_THROW(a.merge(c), PreconditionError);
}

TEST(Registers, WireRoundTrip) {
  RegisterArray a(16, 6);
  for (unsigned i = 0; i < 16; ++i) a.observe(i, (i * 7) % 63);
  BitWriter w;
  a.encode(w);
  EXPECT_EQ(w.bit_count(), a.wire_bits());
  EXPECT_EQ(a.wire_bits(), 16u * 6u);
  BitReader r(w.bytes().data(), w.bit_count());
  const RegisterArray back = RegisterArray::decode(r, 16, 6);
  EXPECT_EQ(back, a);
}

TEST(Registers, OutOfRangeBucketThrows) {
  RegisterArray a(4, 5);
  EXPECT_THROW(a.observe(4, 1), PreconditionError);
  EXPECT_THROW(a.value(4), PreconditionError);
}

}  // namespace
}  // namespace sensornet::sketch
