#include "src/cube/dirty.hpp"

#include <gtest/gtest.h>

#include "src/net/topology.hpp"

namespace sensornet::cube {
namespace {

struct Fixture {
  sim::Network net;
  net::SpanningTree tree;
  DirtyTracker dirty;

  explicit Fixture(std::uint64_t seed = 7)
      : net(net::make_grid(8, 8), seed),
        tree(net::bfs_tree(net.graph(), 0)),
        dirty(net, tree) {}
};

TEST(DirtyTracker, ChildIndexFindsEachChild) {
  Fixture f;
  for (NodeId u = 0; u < f.tree.node_count(); ++u) {
    const auto& kids = f.tree.children[u];
    for (std::size_t ci = 0; ci < kids.size(); ++ci) {
      EXPECT_EQ(child_index(f.tree, u, kids[ci]), ci);
    }
  }
}

TEST(DirtyTracker, EverythingIsFreshBeforeAnyChange) {
  Fixture f;
  for (NodeId u = 0; u < f.tree.node_count(); ++u) {
    EXPECT_EQ(f.dirty.subtree_changed_epoch(u), DirtyTracker::kNever);
    for (std::size_t ci = 0; ci < f.tree.children[u].size(); ++ci) {
      // A partial taken at epoch 0 is still exact...
      EXPECT_TRUE(f.dirty.edge_fresh(u, ci, 0));
      // ...but "no partial" never reads as fresh.
      EXPECT_FALSE(f.dirty.edge_fresh(u, ci, DirtyTracker::kInvalidEpoch));
    }
  }
  EXPECT_EQ(f.dirty.mark_messages(), 0u);
}

TEST(DirtyTracker, MarkPropagatesAlongTheRootPathOnly) {
  Fixture f;
  const NodeId changed = 63;
  const std::vector<NodeId> touched{changed};
  f.dirty.note_updates(touched, 1);

  EXPECT_EQ(f.dirty.subtree_changed_epoch(changed), 1u);
  EXPECT_EQ(f.dirty.subtree_changed_epoch(f.tree.root), 1u);

  // Every edge on the root path is stale for epoch-0 partials; every edge
  // off it stays fresh.
  std::vector<bool> on_path(f.tree.node_count(), false);
  for (NodeId u = changed; u != f.tree.root; u = f.tree.parent[u]) {
    on_path[u] = true;
  }
  std::uint64_t stale_edges = 0;
  for (NodeId u = 0; u < f.tree.node_count(); ++u) {
    const auto& kids = f.tree.children[u];
    for (std::size_t ci = 0; ci < kids.size(); ++ci) {
      const bool fresh = f.dirty.edge_fresh(u, ci, 0);
      EXPECT_EQ(fresh, !on_path[kids[ci]]);
      if (!fresh) ++stale_edges;
    }
  }
  EXPECT_EQ(stale_edges, f.tree.depth[changed]);
  // A partial taken at the change epoch is fresh again.
  const NodeId parent = f.tree.parent[changed];
  EXPECT_TRUE(
      f.dirty.edge_fresh(parent, child_index(f.tree, parent, changed), 1));
  // One mark message per root-path edge.
  EXPECT_EQ(f.dirty.mark_messages(), f.tree.depth[changed]);
}

TEST(DirtyTracker, SiblingMarksCoalesceOnTheSharedPath) {
  Fixture f;
  const std::vector<NodeId> touched{62, 63};
  f.dirty.note_updates(touched, 1);
  const std::uint64_t depth_sum = f.tree.depth[62] + f.tree.depth[63];
  EXPECT_LT(f.dirty.mark_messages(), depth_sum);
  EXPECT_GE(f.dirty.mark_messages(), f.tree.depth[63]);
}

TEST(DirtyTracker, MarkBitsAreMeteredOnTheNetwork) {
  Fixture f;
  const auto before = f.net.summary().total_messages;
  const std::vector<NodeId> touched{63};
  f.dirty.note_updates(touched, 1);
  EXPECT_EQ(f.net.summary().total_messages - before, f.dirty.mark_messages());
}

TEST(DirtyTracker, LaterEpochsStaleEarlierPartials) {
  Fixture f;
  const std::vector<NodeId> touched{63};
  f.dirty.note_updates(touched, 1);
  f.dirty.note_updates(touched, 3);
  const NodeId parent = f.tree.parent[63];
  const std::size_t ci = child_index(f.tree, parent, 63);
  EXPECT_EQ(f.dirty.child_changed_epoch(parent, ci), 3u);
  EXPECT_FALSE(f.dirty.edge_fresh(parent, ci, 1));
  EXPECT_FALSE(f.dirty.edge_fresh(parent, ci, 2));
  EXPECT_TRUE(f.dirty.edge_fresh(parent, ci, 3));
}

}  // namespace
}  // namespace sensornet::cube
