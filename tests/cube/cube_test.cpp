#include "src/cube/cube.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/count_distinct.hpp"
#include "src/net/topology.hpp"
#include "src/proto/item_view.hpp"
#include "src/query/parser.hpp"
#include "src/query/planner.hpp"

namespace sensornet::cube {
namespace {

constexpr Value kBound = 1000;
constexpr Value kDelta = 4;     // CubeConfig default max_delta
constexpr std::uint32_t kHorizon = 8;  // CubeConfig default horizon_epochs

/// The oracle: core stats over `region` computed directly from the
/// installed items, no network involved.
RangeStats direct_core(const sim::Network& net,
                       const query::RegionSignature& region) {
  RangeStats rs;
  for (NodeId u = 0; u < net.node_count(); ++u) {
    for (const Value v : net.items(u)) {
      if (region.whole_domain || (v >= region.lo && v <= region.hi)) {
        rs.observe(v);
      }
    }
  }
  return rs;
}

struct Fixture {
  sim::Network net;
  net::SpanningTree tree;
  DirtyTracker dirty;
  Cube cube;

  explicit Fixture(CubeConfig cfg = {}, std::uint64_t seed = 7)
      : net(net::make_grid(8, 8), seed),
        tree(net::bfs_tree(net.graph(), 0)),
        dirty(net, tree),
        cube(net, tree, kBound, dirty, cfg) {
    ValueSet vs(64);
    for (NodeId u = 0; u < 64; ++u) {
      vs[u] = static_cast<Value>((u * 37) % 200);
    }
    net.set_one_item_per_node(vs);
  }

  query::CostedPlan plan_for(const std::string& text) {
    const query::Planner planner(kBound, &cube);
    return planner.plan(query::parse_query(text)).value();
  }
};

TEST(Cube, GeometryNestsAndConstructionShipsZeroBits) {
  Fixture f;
  // Construction is pure bookkeeping: the install broadcast is lazy.
  EXPECT_EQ(f.net.summary().total_messages, 0u);
  EXPECT_EQ(f.cube.cell_count(), 15u);  // 1 + 2 + 4 + 8
  // Level 0 is the whole domain; every cell is the union of its children.
  EXPECT_TRUE(f.cube.cell_region({0, 0}).whole_domain);
  for (unsigned level = 0; level + 1 < f.cube.levels(); ++level) {
    for (unsigned i = 0; i < (1u << level); ++i) {
      const auto parent = f.cube.cell_region({level, i});
      const auto left = f.cube.cell_region({level + 1, 2 * i});
      const auto right = f.cube.cell_region({level + 1, 2 * i + 1});
      EXPECT_EQ(parent.lo, left.lo);
      EXPECT_EQ(left.hi + 1, right.lo);
      EXPECT_EQ(parent.hi, right.hi);
    }
  }
}

TEST(Cube, ServeComposesTheExactAnswer) {
  Fixture f;
  for (const char* text :
       {"SELECT COUNT(v) FROM s", "SELECT MIN(v) FROM s",
        "SELECT SUM(v) FROM s WHERE v BETWEEN 30 AND 120",
        "SELECT MAX(v) FROM s WHERE v BETWEEN 0 AND 499",
        "SELECT COUNT(v) FROM s WHERE v BETWEEN 77 AND 901"}) {
    const query::CostedPlan plan = f.plan_for(text);
    const ServeResult r = f.cube.serve(plan, 0);
    EXPECT_EQ(r.bundle.core, direct_core(f.net, plan.region)) << text;
  }
}

TEST(Cube, FirstServePaysTheGeometryInstallOnce) {
  Fixture f;
  const query::CostedPlan plan = f.plan_for("SELECT COUNT(v) FROM s");
  f.cube.serve(plan, 0);
  EXPECT_EQ(f.cube.stats().geometry_installs, 1u);
  const auto msgs = f.net.summary().total_messages;
  EXPECT_GT(msgs, 0u);
  f.cube.serve(plan, 0);
  EXPECT_EQ(f.cube.stats().geometry_installs, 1u);
  // Same epoch: the cell is already fresh, so the re-serve is free.
  EXPECT_EQ(f.net.summary().total_messages, msgs);
}

TEST(Cube, QuiescentRefreshIsFree) {
  Fixture f;
  const query::CostedPlan plan = f.plan_for("SELECT SUM(v) FROM s");
  ASSERT_TRUE(plan.cube_served());
  f.cube.serve(plan, 0);
  const auto msgs = f.net.summary().total_messages;
  const auto descended = f.cube.stats().cell_edges_descended;
  // Nothing changed: epoch 1's refresh is answered entirely from the
  // parent-side partials.
  const ServeResult r = f.cube.serve(plan, 1);
  EXPECT_EQ(f.net.summary().total_messages, msgs);
  EXPECT_EQ(f.cube.stats().cell_edges_descended, descended);
  EXPECT_EQ(r.bundle.core, direct_core(f.net, plan.region));
}

TEST(Cube, IncrementalRefreshDescendsOnlyTheDirtyPath) {
  Fixture f;
  const query::CostedPlan plan = f.plan_for("SELECT SUM(v) FROM s");
  ASSERT_EQ(plan.steps.size(), 1u);  // whole domain: the root cell alone
  ASSERT_EQ(plan.steps[0].kind, query::StepKind::kCubeCell);
  f.cube.serve(plan, 0);
  EXPECT_EQ(f.cube.stats().cell_edges_descended, 63u);

  const NodeId changed = 63;
  f.net.update_item(changed, 0, f.net.items(changed)[0] + kDelta);
  const std::vector<NodeId> touched{changed};
  f.dirty.note_updates(touched, 1);
  const ServeResult r = f.cube.serve(plan, 1);
  // Exactly the changed node's root path is revisited.
  EXPECT_EQ(f.cube.stats().cell_edges_descended, 63u + f.tree.depth[changed]);
  EXPECT_GT(f.cube.stats().cell_edges_skipped, 0u);
  EXPECT_EQ(r.bundle.core, direct_core(f.net, plan.region));
}

TEST(Cube, ResiduePrunesSubtreesProvablyEmptyForTheRange) {
  Fixture f;
  // Refresh the upper-half cell: items are all < 500, so every cached
  // partial records an empty outer region for [500, 1000].
  const query::CostedPlan upper =
      f.plan_for("SELECT COUNT(v) FROM s WHERE v BETWEEN 500 AND 1000");
  const ServeResult first = f.cube.serve(upper, 0);
  EXPECT_EQ(first.bundle.core.count, 0u);
  ASSERT_GT(first.cells_used + first.residues_run, 0u);

  // A misaligned range inside the proven-empty region: the residue wave
  // prunes every root-child edge, so the collection is free — and exact.
  const auto msgs = f.net.summary().total_messages;
  const query::CostedPlan inner =
      f.plan_for("SELECT COUNT(v) FROM s WHERE v BETWEEN 600 AND 700");
  const ServeResult r = f.cube.serve(inner, 0);
  EXPECT_EQ(r.bundle.core.count, 0u);
  EXPECT_GT(f.cube.stats().residue_edges_pruned, 0u);
  EXPECT_EQ(f.net.summary().total_messages, msgs);
}

TEST(Cube, PruningStopsWhenTheSubtreeChanges) {
  Fixture f;
  const query::CostedPlan upper =
      f.plan_for("SELECT COUNT(v) FROM s WHERE v BETWEEN 500 AND 1000");
  f.cube.serve(upper, 0);
  // A node's reading jumps into the range: its root path is dirty, so the
  // emptiness proof no longer covers it and the residue must look again.
  f.net.update_item(63, 0, 650);
  const std::vector<NodeId> touched{63};
  f.dirty.note_updates(touched, 1);
  const query::CostedPlan inner =
      f.plan_for("SELECT COUNT(v) FROM s WHERE v BETWEEN 600 AND 700");
  const ServeResult r = f.cube.serve(inner, 1);
  EXPECT_EQ(r.bundle.core, direct_core(f.net, inner.region));
  EXPECT_EQ(r.bundle.core.count, 1u);
}

TEST(Cube, StaleBracketContainsTheDriftedTruth) {
  Fixture f;
  const query::CostedPlan plan = f.plan_for("SELECT SUM(v) FROM s");
  ASSERT_EQ(plan.steps.size(), 1u);
  f.cube.serve(plan, 0);

  // Drift every reading by at most kDelta per epoch for three epochs,
  // without telling the cube (no serve) — only the dirty tracker hears.
  std::vector<NodeId> all(64);
  for (NodeId u = 0; u < 64; ++u) all[u] = u;
  for (std::uint32_t e = 1; e <= 3; ++e) {
    for (NodeId u = 0; u < 64; ++u) {
      const Value v = f.net.items(u)[0];
      const Value moved = (u % 2 == 0) ? std::min<Value>(v + kDelta, kBound)
                                       : std::max<Value>(v - kDelta, 0);
      f.net.update_item(u, 0, moved);
    }
    f.dirty.note_updates(all, e);
  }

  const query::RegionSignature whole{0, kBound, true};
  const RangeStats truth = direct_core(f.net, whole);
  const auto check = [&](query::AggregateKind agg, double exact_now) {
    const auto br = f.cube.stale_bracket(plan, agg, 3);
    ASSERT_TRUE(br.has_value()) << agg_name(agg);
    EXPECT_LE(std::abs(exact_now - br->value), br->bound) << agg_name(agg);
  };
  check(query::AggregateKind::kSum, static_cast<double>(truth.sum));
  check(query::AggregateKind::kMin, static_cast<double>(truth.min));
  check(query::AggregateKind::kMax, static_cast<double>(truth.max));
  check(query::AggregateKind::kAvg,
        static_cast<double>(truth.sum) / static_cast<double>(truth.count));
  // Whole-domain membership is static: COUNT stays exact at any staleness.
  const auto count = f.cube.stale_bracket(plan, query::AggregateKind::kCount, 3);
  ASSERT_TRUE(count.has_value());
  EXPECT_TRUE(count->exact);
  EXPECT_EQ(count->value, 64.0);
  // The zero-bit path sent nothing.
  EXPECT_GT(f.cube.stats().stale_serves, 0u);
}

TEST(Cube, StaleBracketOnARangedCellIsSoundWithinTheHorizon) {
  Fixture f;
  // [0, 499] is exactly cell (1, 0) for bound 1000.
  const query::CostedPlan plan =
      f.plan_for("SELECT MIN(v) FROM s WHERE v BETWEEN 0 AND 499");
  ASSERT_EQ(plan.steps.size(), 1u);
  ASSERT_EQ(plan.steps[0].kind, query::StepKind::kCubeCell);
  f.cube.serve(plan, 0);

  std::vector<NodeId> all(64);
  for (NodeId u = 0; u < 64; ++u) all[u] = u;
  for (NodeId u = 0; u < 64; ++u) {
    f.net.update_item(u, 0, std::max<Value>(f.net.items(u)[0] - kDelta, 0));
  }
  f.dirty.note_updates(all, 1);

  const RangeStats truth = direct_core(f.net, plan.region);
  for (const query::AggregateKind agg :
       {query::AggregateKind::kCount, query::AggregateKind::kSum,
        query::AggregateKind::kMin, query::AggregateKind::kMax}) {
    const auto br = f.cube.stale_bracket(plan, agg, 1);
    ASSERT_TRUE(br.has_value()) << agg_name(agg);
    const double exact_now =
        agg == query::AggregateKind::kCount ? static_cast<double>(truth.count)
        : agg == query::AggregateKind::kSum ? static_cast<double>(truth.sum)
        : agg == query::AggregateKind::kMin ? static_cast<double>(truth.min)
                                            : static_cast<double>(truth.max);
    EXPECT_LE(std::abs(exact_now - br->value), br->bound) << agg_name(agg);
  }

  // Past the margin horizon the ranged bracket is refused, not fudged.
  EXPECT_FALSE(f.cube
                   .stale_bracket(plan, query::AggregateKind::kSum,
                                  kHorizon + 1)
                   .has_value());
}

TEST(Cube, StaleBracketRefusesNonCellPlansAndColdCells) {
  Fixture f;
  query::CostedPlan tree_plan;
  tree_plan.region = {0, kBound, true};
  tree_plan.steps.push_back(
      {query::StepKind::kTreeCollect, tree_plan.region, {}, 0});
  EXPECT_FALSE(
      f.cube.stale_bracket(tree_plan, query::AggregateKind::kSum, 0)
          .has_value());

  // A cube-cell plan whose cell was never refreshed has nothing to bracket.
  const query::CostedPlan cold = f.plan_for("SELECT SUM(v) FROM s");
  ASSERT_EQ(cold.steps[0].kind, query::StepKind::kCubeCell);
  EXPECT_FALSE(
      f.cube.stale_bracket(cold, query::AggregateKind::kSum, 0).has_value());
}

/// The oracle's view of a ranged COUNT_DISTINCT: only in-range readings.
class RegionView final : public proto::LocalItemView {
 public:
  RegionView(Value lo, Value hi) : lo_(lo), hi_(hi) {}
  ValueSet items(sim::Network& net, NodeId node) const override {
    ValueSet out;
    for (const Value v : net.items(node)) {
      if (v >= lo_ && v <= hi_) out.push_back(v);
    }
    return out;
  }

 private:
  Value lo_;
  Value hi_;
};

TEST(Cube, DistinctEstimateIsByteIdenticalToTheTreeOracle) {
  CubeConfig cfg;
  cfg.distinct_registers = 64;
  Fixture f(cfg);
  // ERROR 0.15 sizes to 64 registers — the cube's own geometry, so the
  // plan is cube-eligible.
  const query::CostedPlan plan =
      f.plan_for("SELECT COUNT_DISTINCT(v) FROM s ERROR 0.15");
  ASSERT_EQ(plan.registers, 64u);
  const ServeResult r = f.cube.serve(plan, 0);
  ASSERT_TRUE(r.has_distinct);

  // Twin network, same seed and items, answered by the PR 3 hashed-HLL
  // tree protocol: the cube replicates its sketch geometry (salt, width),
  // so register-max merges reproduce the estimate bit for bit.
  Fixture twin(CubeConfig{});
  const auto oracle = core::approx_count_distinct(
      twin.net, twin.tree, 64, proto::EstimatorKind::kHyperLogLog,
      proto::raw_item_view());
  EXPECT_DOUBLE_EQ(r.distinct_estimate, oracle.estimate);
}

TEST(Cube, RangedDistinctComposesCellsAndResiduesExactly) {
  CubeConfig cfg;
  cfg.distinct_registers = 64;
  Fixture f(cfg);
  const query::CostedPlan plan = f.plan_for(
      "SELECT COUNT_DISTINCT(v) FROM s WHERE v BETWEEN 0 AND 99 ERROR 0.15");
  const ServeResult r = f.cube.serve(plan, 0);
  ASSERT_TRUE(r.has_distinct);

  Fixture twin(CubeConfig{});
  const RegionView view(0, 99);
  const auto oracle = core::approx_count_distinct(
      twin.net, twin.tree, 64, proto::EstimatorKind::kHyperLogLog, view);
  EXPECT_DOUBLE_EQ(r.distinct_estimate, oracle.estimate);
}

TEST(Cube, CostModelTracksActualRefreshState) {
  Fixture f;
  // Cold cube: refreshing the root cell must look at every edge.
  EXPECT_GT(f.cube.cell_refresh_bits({0, 0}), 0u);
  const query::CostedPlan plan = f.plan_for("SELECT COUNT(v) FROM s");
  f.cube.serve(plan, 0);
  // Fresh cell, quiescent network: the next refresh is free, and the
  // planner's cost model knows it.
  EXPECT_EQ(f.cube.cell_refresh_bits({0, 0}), 0u);
  // Tree collection always pays every edge, fresh partials or not.
  const query::RegionSignature whole{0, kBound, true};
  EXPECT_GT(f.cube.tree_collect_bits(whole), 0u);
  EXPECT_EQ(f.cube.tree_collect_bits(whole) % 63u, 0u);
}

}  // namespace
}  // namespace sensornet::cube
