#include "src/cube/stats.hpp"

#include <gtest/gtest.h>

#include "src/common/bitio.hpp"

namespace sensornet::cube {
namespace {

RangeStats observed(std::initializer_list<Value> vs) {
  RangeStats rs;
  for (const Value v : vs) rs.observe(v);
  return rs;
}

TEST(RangeStats, ObserveTracksAllFourMoments) {
  const RangeStats rs = observed({7, 3, 11});
  EXPECT_EQ(rs.count, 3u);
  EXPECT_EQ(rs.sum, 21u);
  EXPECT_EQ(rs.min, 3);
  EXPECT_EQ(rs.max, 11);
}

TEST(RangeStats, CombineMatchesObservingTheUnion) {
  RangeStats a = observed({5, 9});
  const RangeStats b = observed({1, 20});
  a.combine(b);
  EXPECT_EQ(a, observed({5, 9, 1, 20}));
  // Empty operands are identities on both sides.
  RangeStats empty;
  a.combine(empty);
  EXPECT_EQ(a, observed({5, 9, 1, 20}));
  empty.combine(a);
  EXPECT_EQ(empty, a);
}

TEST(RangeStats, CodecRoundTripsEmptyAndNonEmpty) {
  for (const RangeStats rs :
       {RangeStats{}, observed({42}), observed({3, 200, 77})}) {
    BitWriter w;
    encode_range_stats(w, rs);
    BitReader r(w.bytes().data(), w.bit_count());
    EXPECT_EQ(decode_range_stats(r), rs);
  }
  // The empty image is just the count: cheaper than any non-empty one.
  BitWriter we, wn;
  encode_range_stats(we, RangeStats{});
  encode_range_stats(wn, observed({42}));
  EXPECT_LT(we.bit_count(), wn.bit_count());
}

TEST(StatsBundle, CombineIsComponentwise) {
  StatsBundle a;
  a.core = observed({10});
  a.inner = observed({10});
  a.outer = observed({10, 12});
  StatsBundle b;
  b.core = observed({30});
  b.outer = observed({30});
  a.combine(b);
  EXPECT_EQ(a.core, observed({10, 30}));
  EXPECT_EQ(a.inner, observed({10}));
  EXPECT_EQ(a.outer, observed({10, 12, 30}));
}

TEST(BracketBundle, WholeDomainCountIsExactAtAnyDrift) {
  StatsBundle b;
  b.core = observed({10, 50, 90});
  b.inner = b.core;
  b.outer = b.core;
  const BundleBracket br =
      bracket_bundle(b, /*whole_domain=*/true, /*drift=*/1000.0, 0.0, 100.0);
  EXPECT_EQ(br.count_lo, 3.0);
  EXPECT_EQ(br.count_hi, 3.0);
  // Values drift in place, clamped to the domain.
  EXPECT_EQ(br.min_lo, 0.0);
  EXPECT_EQ(br.min_hi, 100.0);
  EXPECT_TRUE(br.defined);
}

TEST(BracketBundle, WholeDomainRailsDriftAroundCoreValues) {
  StatsBundle b;
  b.core = observed({40, 60});
  b.inner = b.core;
  b.outer = b.core;
  const BundleBracket br = bracket_bundle(b, true, /*drift=*/5.0, 0.0, 100.0);
  EXPECT_EQ(br.min_lo, 35.0);
  EXPECT_EQ(br.min_hi, 45.0);
  EXPECT_EQ(br.max_lo, 55.0);
  EXPECT_EQ(br.max_hi, 65.0);
  EXPECT_EQ(br.sum_lo, 90.0);
  EXPECT_EQ(br.sum_hi, 110.0);
}

TEST(BracketBundle, RangedCountBracketsBetweenInnerAndOuter) {
  StatsBundle b;
  b.core = observed({30, 50});
  b.inner = observed({50});
  b.outer = observed({28, 30, 50});
  const BundleBracket br = bracket_bundle(b, false, /*drift=*/2.0, 20.0, 80.0);
  EXPECT_EQ(br.count_lo, 1.0);
  EXPECT_EQ(br.count_hi, 3.0);
  EXPECT_EQ(br.sum_lo, 48.0);    // inner.sum - inner.count * d
  EXPECT_EQ(br.sum_hi, 114.0);   // outer.sum + outer.count * d
}

TEST(BracketBundle, RangedMinMaxClampBothRailsToTheRegion) {
  // The pre-PR10 cache bracket clamped only one side of each rail; a range
  // aggregate can never leave its own range, so both sides must clamp.
  StatsBundle b;
  b.core = observed({21, 79});
  b.inner = observed({21, 79});
  b.outer = observed({19, 21, 79, 81});
  const double lo = 20.0, hi = 80.0;
  const BundleBracket br = bracket_bundle(b, false, /*drift=*/10.0, lo, hi);
  ASSERT_TRUE(br.defined);
  EXPECT_EQ(br.min_lo, lo);  // outer.min - d = 9 clamps up to the region
  EXPECT_EQ(br.min_hi, 31.0);
  EXPECT_EQ(br.max_lo, 69.0);
  EXPECT_EQ(br.max_hi, hi);  // outer.max + d = 91 clamps down to the region
}

TEST(BracketBundle, OuterOnlyBundleExposesOutwardRailsOnly) {
  StatsBundle b;           // nothing surely inside...
  b.outer = observed({18, 82});  // ...but the margins might hold members
  const BundleBracket br = bracket_bundle(b, false, /*drift=*/3.0, 20.0, 80.0);
  EXPECT_FALSE(br.defined);
  EXPECT_TRUE(br.any_possible);
  EXPECT_EQ(br.count_lo, 0.0);
  EXPECT_EQ(br.count_hi, 2.0);
  EXPECT_EQ(br.min_lo, 20.0);  // outward rail, clamped
  EXPECT_EQ(br.max_hi, 80.0);
}

TEST(BracketBundle, AllEmptyBundleIsImpossible) {
  const BundleBracket br = bracket_bundle(StatsBundle{}, false, 5.0, 0.0, 10.0);
  EXPECT_FALSE(br.defined);
  EXPECT_FALSE(br.any_possible);
  EXPECT_EQ(br.count_hi, 0.0);
}

TEST(MakeAnswer, BoundIsTheFartherRail) {
  const BracketedAnswer a = make_answer(10.0, 7.0, 11.0);
  EXPECT_EQ(a.value, 10.0);
  EXPECT_EQ(a.bound, 3.0);
  EXPECT_FALSE(a.exact);
  const BracketedAnswer exact = make_answer(5.0, 5.0, 5.0);
  EXPECT_TRUE(exact.exact);
  EXPECT_EQ(exact.bound, 0.0);
}

}  // namespace
}  // namespace sensornet::cube
