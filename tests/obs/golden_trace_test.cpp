// Pins the Chrome trace of a tiny, fully deterministic service run: a
// 4-node line, one continuous whole-domain COUNT query, one epoch with one
// sensor update. Every event's timestamp is simulated time, so the exported
// JSON is a pure function of the run — any byte of drift here means the
// instrumentation (or the event order it observes) changed.
#include <gtest/gtest.h>

#include <span>
#include <sstream>
#include <string>

#include "src/net/spanning_tree.hpp"
#include "src/net/topology.hpp"
#include "src/obs/trace.hpp"
#include "src/service/engine.hpp"

namespace sensornet::service {
namespace {

// The complete expected trace: query admission, the node-3 mark wave
// climbing to the root, the incremental collection descending every (dirty)
// edge and returning, the answer, and the epoch span wrapping it all.
constexpr const char kGolden[] = R"json({
  "displayTimeUnit": "ms",
  "droppedEventCount": 0,
  "traceEvents": [
    {"name": "query.admit", "cat": "service", "ph": "i", "ts": 0, "pid": 0, "tid": 0, "args": {"id": 1, "group": 0}},
    {"name": "msg.send", "cat": "sim", "ph": "i", "ts": 0, "pid": 0, "tid": 0, "args": {"from": 3, "to": 2}},
    {"name": "msg.deliver", "cat": "sim", "ph": "i", "ts": 1, "pid": 0, "tid": 0, "args": {"from": 3, "to": 2}},
    {"name": "msg.send", "cat": "sim", "ph": "i", "ts": 1, "pid": 0, "tid": 0, "args": {"from": 2, "to": 1}},
    {"name": "msg.deliver", "cat": "sim", "ph": "i", "ts": 2, "pid": 0, "tid": 0, "args": {"from": 2, "to": 1}},
    {"name": "msg.send", "cat": "sim", "ph": "i", "ts": 2, "pid": 0, "tid": 0, "args": {"from": 1, "to": 0}},
    {"name": "msg.deliver", "cat": "sim", "ph": "i", "ts": 3, "pid": 0, "tid": 0, "args": {"from": 1, "to": 0}},
    {"name": "mark.wave", "cat": "service", "ph": "X", "ts": 0, "dur": 3, "pid": 0, "tid": 0, "args": {"epoch": 1, "updated": 1}},
    {"name": "edge.descend", "cat": "service", "ph": "i", "ts": 3, "pid": 0, "tid": 0, "args": {"node": 0, "child": 1}},
    {"name": "msg.send", "cat": "sim", "ph": "i", "ts": 3, "pid": 0, "tid": 0, "args": {"from": 0, "to": 1}},
    {"name": "msg.deliver", "cat": "sim", "ph": "i", "ts": 4, "pid": 0, "tid": 0, "args": {"from": 0, "to": 1}},
    {"name": "edge.descend", "cat": "service", "ph": "i", "ts": 4, "pid": 0, "tid": 0, "args": {"node": 1, "child": 2}},
    {"name": "msg.send", "cat": "sim", "ph": "i", "ts": 4, "pid": 0, "tid": 0, "args": {"from": 1, "to": 2}},
    {"name": "msg.deliver", "cat": "sim", "ph": "i", "ts": 5, "pid": 0, "tid": 0, "args": {"from": 1, "to": 2}},
    {"name": "edge.descend", "cat": "service", "ph": "i", "ts": 5, "pid": 0, "tid": 0, "args": {"node": 2, "child": 3}},
    {"name": "msg.send", "cat": "sim", "ph": "i", "ts": 5, "pid": 0, "tid": 0, "args": {"from": 2, "to": 3}},
    {"name": "msg.deliver", "cat": "sim", "ph": "i", "ts": 6, "pid": 0, "tid": 0, "args": {"from": 2, "to": 3}},
    {"name": "msg.send", "cat": "sim", "ph": "i", "ts": 6, "pid": 0, "tid": 0, "args": {"from": 3, "to": 2}},
    {"name": "msg.deliver", "cat": "sim", "ph": "i", "ts": 7, "pid": 0, "tid": 0, "args": {"from": 3, "to": 2}},
    {"name": "msg.send", "cat": "sim", "ph": "i", "ts": 7, "pid": 0, "tid": 0, "args": {"from": 2, "to": 1}},
    {"name": "msg.deliver", "cat": "sim", "ph": "i", "ts": 8, "pid": 0, "tid": 0, "args": {"from": 2, "to": 1}},
    {"name": "msg.send", "cat": "sim", "ph": "i", "ts": 8, "pid": 0, "tid": 0, "args": {"from": 1, "to": 0}},
    {"name": "msg.deliver", "cat": "sim", "ph": "i", "ts": 9, "pid": 0, "tid": 0, "args": {"from": 1, "to": 0}},
    {"name": "collect.stats", "cat": "service", "ph": "X", "ts": 3, "dur": 6, "pid": 0, "tid": 0, "args": {"group": 0, "epoch": 1}},
    {"name": "query.answer", "cat": "service", "ph": "i", "ts": 9, "pid": 0, "tid": 0, "args": {"id": 1, "cached": 0}},
    {"name": "epoch", "cat": "service", "ph": "X", "ts": 0, "dur": 9, "pid": 0, "tid": 0, "args": {"epoch": 1, "answers": 1}}
  ]
}
)json";

TEST(GoldenTrace, FourNodeEpochIsByteStable) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with SENSORNET_OBS=OFF";

  sim::Network net(net::make_line(4), /*master_seed=*/7);
  const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
  net.set_one_item_per_node({10, 20, 30, 40});
  QueryService svc(query::Deployment{net, tree, /*max_value_bound=*/100},
                   ServiceConfig{});

  obs::TraceRing& ring = obs::TraceRing::global();
  ring.set_capacity(256);  // also clears any earlier buffered events
  ring.set_enabled(true);
  const auto r = svc.submit("SELECT COUNT(v) FROM s EVERY 1 EPOCHS");
  ASSERT_TRUE(r.ok());
  const SensorUpdate up{3, 42};
  const auto answers = svc.run_epoch(std::span(&up, 1));
  ring.set_enabled(false);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_DOUBLE_EQ(answers[0].value, 4.0);

  std::ostringstream os;
  ring.export_chrome_json(os);
  EXPECT_EQ(os.str(), std::string(kGolden));
}

}  // namespace
}  // namespace sensornet::service
