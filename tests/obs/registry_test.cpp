#include "src/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "src/common/trial_farm.hpp"

namespace sensornet::obs {
namespace {

// Every suite skips cleanly when the library was configured with
// -DSENSORNET_OBS=OFF: the stub registry returns empty snapshots, and there
// is nothing meaningful left to assert.
#define REQUIRE_OBS() \
  if (!kObsEnabled) GTEST_SKIP() << "built with SENSORNET_OBS=OFF"

/// Runs a fixed 64-cell matrix on `workers` farm workers, metering into a
/// private registry, and returns the canonical snapshot text.
std::string run_matrix(unsigned workers) {
  Registry reg;
  const MetricId cells = reg.counter("test.cells");
  const MetricId weight = reg.counter("test.weight");
  const std::array<std::uint64_t, 3> bounds{8, 16, 32};
  const MetricId value = reg.histogram("test.value", bounds);
  const MetricId high = reg.gauge("test.high_cell");

  TrialFarm farm(workers);
  farm.for_each(64, [&](std::size_t cell) {
    reg.add(cells);
    reg.add(weight, cell);
    reg.observe(value, cell % 40);
    reg.gauge_max(high, cell);
  });
  return reg.snapshot().to_string();
}

TEST(Registry, SnapshotsAreByteIdenticalAcrossWorkerCounts) {
  REQUIRE_OBS();
  const std::string serial = run_matrix(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, run_matrix(2));
  EXPECT_EQ(serial, run_matrix(8));
}

TEST(Registry, HistogramBucketBoundariesAreInclusiveUpper) {
  REQUIRE_OBS();
  Registry reg;
  const std::array<std::uint64_t, 2> bounds{10, 20};
  const MetricId h = reg.histogram("h", bounds);
  // Bucket i counts bounds[i-1] < v <= bounds[i]; first bucket v <= 10,
  // implied overflow bucket for v > 20.
  reg.observe(h, 0);
  reg.observe(h, 10);   // still the first bucket
  reg.observe(h, 11);   // second bucket
  reg.observe(h, 20);   // still the second bucket
  reg.observe(h, 21);   // overflow
  reg.observe(h, 1000);  // overflow

  const Snapshot snap = reg.snapshot();
  const MetricSnapshot* m = snap.find("h");
  ASSERT_NE(m, nullptr);
  ASSERT_EQ(m->hist.counts.size(), 3u);
  EXPECT_EQ(m->hist.counts[0], 2u);
  EXPECT_EQ(m->hist.counts[1], 2u);
  EXPECT_EQ(m->hist.counts[2], 2u);
  EXPECT_EQ(m->hist.total(), 6u);
}

TEST(Registry, GaugeSetAddAndMax) {
  REQUIRE_OBS();
  Registry reg;
  const MetricId g = reg.gauge("g");
  reg.gauge_set(g, 7);
  EXPECT_EQ(reg.snapshot().value("g"), 7u);
  reg.gauge_add(g, 3);
  EXPECT_EQ(reg.snapshot().value("g"), 10u);
  reg.gauge_max(g, 4);  // below the current value: no effect
  EXPECT_EQ(reg.snapshot().value("g"), 10u);
  reg.gauge_max(g, 25);
  EXPECT_EQ(reg.snapshot().value("g"), 25u);
}

TEST(Registry, RegistrationIsIdempotentPerShape) {
  REQUIRE_OBS();
  Registry reg;
  const MetricId a = reg.counter("same");
  const MetricId b = reg.counter("same");
  EXPECT_EQ(a.cell, b.cell);
  reg.add(a);
  reg.add(b);
  EXPECT_EQ(reg.snapshot().value("same"), 2u);

  EXPECT_THROW(reg.gauge("same"), std::logic_error);
  const std::array<std::uint64_t, 2> bounds{1, 2};
  const std::array<std::uint64_t, 2> other{1, 3};
  reg.histogram("hist", bounds);
  EXPECT_THROW(reg.histogram("hist", other), std::logic_error);
  const std::array<std::uint64_t, 2> unsorted{5, 5};
  EXPECT_THROW(reg.histogram("bad", unsorted), std::invalid_argument);
}

TEST(Registry, ResetZeroesValuesButKeepsRegistrations) {
  REQUIRE_OBS();
  Registry reg;
  const MetricId c = reg.counter("c");
  reg.add(c, 41);
  reg.reset();
  const Snapshot snap = reg.snapshot();
  ASSERT_NE(snap.find("c"), nullptr);  // name survives
  EXPECT_EQ(snap.value("c"), 0u);
  reg.add(c, 5);  // the pre-reset id still routes to the same cell
  EXPECT_EQ(reg.snapshot().value("c"), 5u);
}

TEST(Registry, RuntimeDisableDropsIncrements) {
  REQUIRE_OBS();
  Registry reg;
  const MetricId c = reg.counter("c");
  reg.add(c, 2);
  reg.set_enabled(false);
  reg.add(c, 100);
  reg.set_enabled(true);
  reg.add(c, 3);
  EXPECT_EQ(reg.snapshot().value("c"), 5u);
}

TEST(Registry, FarmPublishesSchedulingCounters) {
  REQUIRE_OBS();
  // The farm publishes cumulatively into the global registry; read deltas
  // so the test is immune to earlier runs in this process.
  Registry& reg = Registry::global();
  const std::uint64_t runs0 = reg.snapshot().value("farm.runs");
  const std::uint64_t cells0 = reg.snapshot().value("farm.cells");

  TrialFarm farm(2);
  farm.for_each(8, [](std::size_t) {});

  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.value("farm.runs"), runs0 + 1);
  EXPECT_EQ(snap.value("farm.cells"), cells0 + 8);
  EXPECT_EQ(snap.value("farm.workers_last"), 2u);
}

}  // namespace
}  // namespace sensornet::obs
