#include "src/obs/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace sensornet::obs {
namespace {

#define REQUIRE_OBS() \
  if (!kObsEnabled) GTEST_SKIP() << "built with SENSORNET_OBS=OFF"

TEST(TraceRing, OverflowDropsOldestAndCounts) {
  REQUIRE_OBS();
  TraceRing ring(3);
  for (std::uint64_t i = 0; i < 5; ++i) {
    ring.instant("e", "t", /*ts=*/i);
  }
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.dropped(), 2u);
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 3u);
  // Oldest first, and the two oldest (ts 0, 1) are gone.
  EXPECT_EQ(events[0].ts, 2u);
  EXPECT_EQ(events[1].ts, 3u);
  EXPECT_EQ(events[2].ts, 4u);
}

TEST(TraceRing, ClearAndSetCapacityResetState) {
  REQUIRE_OBS();
  TraceRing ring(2);
  ring.instant("a", "t", 1);
  ring.instant("b", "t", 2);
  ring.instant("c", "t", 3);
  EXPECT_EQ(ring.dropped(), 1u);
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
  ring.set_capacity(8);
  EXPECT_EQ(ring.capacity(), 8u);
  EXPECT_EQ(ring.size(), 0u);
}

TEST(TraceRing, RecordsArgsAndSpanShape) {
  REQUIRE_OBS();
  TraceRing ring(8);
  ring.instant("send", "sim", 10, 0, "from", 3, "to", 4);
  ring.complete("span", "service", 20, 5, 2, "group", 1);
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].ph, 'i');
  EXPECT_STREQ(events[0].arg_name[0], "from");
  EXPECT_EQ(events[0].arg_val[1], 4u);
  EXPECT_EQ(events[1].ph, 'X');
  EXPECT_EQ(events[1].ts, 20u);
  EXPECT_EQ(events[1].dur, 5u);
  EXPECT_EQ(events[1].tid, 2u);
}

TEST(TraceRing, ExportsChromeTraceJson) {
  REQUIRE_OBS();
  TraceRing ring(4);
  ring.instant("send", "sim", 1, 0, "from", 0, "to", 1);
  ring.complete("epoch", "service", 0, 9);
  std::ostringstream os;
  ring.export_chrome_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"droppedEventCount\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"send\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 9"), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"from\": 0, \"to\": 1}"),
            std::string::npos);
}

TEST(TraceRing, DisabledByDefault) {
  // Holds in both configurations: the global ring must never record until
  // a tool opts in.
  EXPECT_FALSE(TraceRing::global().enabled());
}

}  // namespace
}  // namespace sensornet::obs
