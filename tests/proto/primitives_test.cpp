// Fact 2.1 primitives via the service interface + tree broadcast.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/codec.hpp"
#include "src/common/mathutil.hpp"
#include "src/net/topology.hpp"
#include "src/proto/counting_service.hpp"
#include "src/proto/tree_broadcast.hpp"

namespace sensornet::proto {
namespace {

TEST(TreeCountingService, MinMaxCount) {
  sim::Network net(net::make_grid(3, 3), 1);
  net.set_one_item_per_node({5, 2, 9, 2, 7, 1, 8, 3, 6});
  const net::SpanningTree tree = net::bfs_tree(net.graph(), 4);
  TreeCountingService svc(net, tree);
  EXPECT_EQ(svc.count_all(), 9u);
  EXPECT_EQ(*svc.min_value(), 1);
  EXPECT_EQ(*svc.max_value(), 9);
  EXPECT_EQ(svc.count(Predicate::less_than(5)), 4u);
  EXPECT_EQ(svc.waves(), 4u);
}

TEST(TreeCountingService, EmptyNetworkMinIsNullopt) {
  sim::Network net(net::make_line(4), 1);
  const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
  TreeCountingService svc(net, tree);
  EXPECT_EQ(svc.count_all(), 0u);
  EXPECT_FALSE(svc.min_value().has_value());
  EXPECT_FALSE(svc.max_value().has_value());
}

TEST(TreeCountingService, CustomViewFilters) {
  class EvenOnly final : public LocalItemView {
   public:
    ValueSet items(sim::Network& net, NodeId node) const override {
      ValueSet out;
      for (const Value x : net.items(node)) {
        if (x % 2 == 0) out.push_back(x);
      }
      return out;
    }
  } view;
  sim::Network net(net::make_line(4), 1);
  net.set_one_item_per_node({1, 2, 3, 4});
  const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
  TreeCountingService svc(net, tree, view);
  EXPECT_EQ(svc.count_all(), 2u);
  EXPECT_EQ(*svc.min_value(), 2);
}

TEST(TreeCountingService, IndividualBitsLogarithmic) {
  // Fact 2.1: COUNT costs O(log N) bits per node on a bounded-degree tree.
  for (const std::size_t n : {16UL, 64UL, 256UL, 1024UL}) {
    sim::Network net(net::make_line(n), 1);
    ValueSet xs(n, 1);
    net.set_one_item_per_node(xs);
    const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
    TreeCountingService svc(net, tree);
    svc.count_all();
    const auto bits = net.summary().max_node_bits;
    // Elias-delta count of n (~log n + 2 loglog n) twice (in + out) plus the
    // 2-bit requests; 8x log2(n) is a comfortable envelope, constants small.
    EXPECT_LE(bits, 8 * ceil_log2(n) + 32) << "n=" << n;
  }
}

TEST(TreeBroadcast, EveryNodeAppliesPayloadOnce) {
  sim::Network net(net::make_grid(4, 4), 1);
  const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
  std::vector<int> applied(16, 0);
  std::vector<std::uint64_t> got(16, 0);
  TreeBroadcast bc(tree, 9,
                   [&](sim::Network&, NodeId node, BitReader r) {
                     ++applied[node];
                     got[node] = decode_uint(r);
                   });
  BitWriter w;
  encode_uint(w, 777);
  bc.execute(net, std::move(w));
  for (NodeId u = 0; u < 16; ++u) {
    EXPECT_EQ(applied[u], 1) << "node " << u;
    EXPECT_EQ(got[u], 777u);
  }
}

TEST(TreeBroadcast, RootPaysNothingToLearnItsOwnValue) {
  sim::Network net(net::make_line(4), 1);
  const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
  TreeBroadcast bc(tree, 9, [](sim::Network&, NodeId, BitReader) {});
  BitWriter w;
  encode_uint(w, 5);
  bc.execute(net, std::move(w));
  EXPECT_EQ(net.stats(0).payload_bits_received, 0u);
  EXPECT_GT(net.stats(1).payload_bits_received, 0u);
}

TEST(TreeBroadcast, CostPerNodeIsPayloadTimesDegree) {
  sim::Network net(net::make_line(8), 1);
  const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
  TreeBroadcast bc(tree, 9, [](sim::Network&, NodeId, BitReader) {});
  BitWriter w;
  w.write_bits(0x3FF, 10);
  bc.execute(net, std::move(w));
  // Interior node: receives 10 bits, forwards 10 bits.
  EXPECT_EQ(net.stats(3).payload_bits_received, 10u);
  EXPECT_EQ(net.stats(3).payload_bits_sent, 10u);
  // Leaf: receive only.
  EXPECT_EQ(net.stats(7).payload_bits_sent, 0u);
}

}  // namespace
}  // namespace sensornet::proto
