#include "src/proto/multipath.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/common/workload.hpp"
#include "src/net/topology.hpp"
#include "src/proto/tree_wave.hpp"
#include "src/sketch/hll.hpp"

namespace sensornet::proto {
namespace {

LogLogAgg::Request hashed_request(unsigned m = 64) {
  LogLogAgg::Request req;
  req.registers = static_cast<std::uint16_t>(m);
  req.width = 6;
  req.mode = LogLogAgg::Mode::kHashed;
  req.salt = 5;
  return req;
}

TEST(Multipath, MatchesTreeWaveWithoutLoss) {
  // Lossless multipath must produce the exact same merged registers as a
  // tree wave — ODI state is path-independent.
  Xoshiro256 rng(3);
  sim::Network net(net::make_grid(6, 6), 7);
  net.set_one_item_per_node(
      generate_workload(WorkloadKind::kUniform, 36, 1 << 16, rng));
  const auto req = hashed_request();

  const auto multipath = multipath_loglog_sweep(net, 0, req);
  EXPECT_EQ(multipath.covered_nodes, 36u);

  const auto tree = net::bfs_tree(net.graph(), 0);
  TreeWave<LogLogAgg> wave(tree, 1);
  const auto via_tree = wave.execute(net, req);
  EXPECT_EQ(multipath.registers, via_tree);
}

TEST(Multipath, RandomModeEstimatesCount) {
  sim::Network net(net::make_grid(10, 10), 11);
  net.set_one_item_per_node(ValueSet(100, 7));
  LogLogAgg::Request req;
  req.registers = 256;
  req.width = 6;
  req.mode = LogLogAgg::Mode::kRandom;
  const auto res = multipath_loglog_sweep(net, 0, req);
  EXPECT_NEAR(res.registers.estimate(), 100.0, 30.0);
}

TEST(Multipath, SurvivesHeavyLossOnDenseGraphs) {
  // 30% message loss on a grid: redundancy keeps most contributions alive.
  sim::Network net(net::make_grid(8, 8), 13);
  Xoshiro256 rng(5);
  net.set_one_item_per_node(
      generate_workload(WorkloadKind::kUniform, 64, 1 << 12, rng));
  net.set_message_loss(0.3);
  const auto res = multipath_loglog_sweep(net, 0, hashed_request());
  EXPECT_GE(res.covered_nodes, 40u);  // far better than a lost subtree
}

TEST(Multipath, TreeWaveStallsUnderLossButMultipathAnswers) {
  // The contrast the paper's robustness discussion ([2]) is about: with
  // lossy links a tree wave cannot complete (our driver detects the stall
  // and throws); the ODI sweep still returns an estimate.
  sim::Network net(net::make_grid(8, 8), 17);
  net.set_one_item_per_node(ValueSet(64, 3));
  net.set_message_loss(0.25);

  const auto tree = net::bfs_tree(net.graph(), 0);
  TreeWave<LogLogAgg> wave(tree, 1);
  EXPECT_THROW(wave.execute(net, hashed_request()), ProtocolError);

  const auto res = multipath_loglog_sweep(net, 0, hashed_request());
  EXPECT_GE(res.covered_nodes, 32u);
}

TEST(Multipath, LineHasNoRedundancy) {
  // On a line each contribution has exactly one path: multipath degrades to
  // tree behaviour and loss truncates coverage at the first dropped hop.
  sim::Network net(net::make_line(32), 19);
  net.set_one_item_per_node(ValueSet(32, 3));
  const auto lossless = multipath_loglog_sweep(net, 0, hashed_request());
  EXPECT_EQ(lossless.covered_nodes, 32u);
  net.set_message_loss(0.5);
  const auto lossy = multipath_loglog_sweep(net, 0, hashed_request());
  EXPECT_LT(lossy.covered_nodes, 32u);
}

TEST(Multipath, CostScalesWithDownhillDegree) {
  // Redundancy is paid in bits: multipath on a grid costs more per node
  // than one tree wave of the same registers. Distinct values per node keep
  // the sketches dense — with a single shared value every message would be
  // a one-entry sparse sketch and the redundancy premium would vanish.
  Xoshiro256 rng(29);
  sim::Network net(net::make_grid(8, 8), 23);
  net.set_one_item_per_node(
      generate_workload(WorkloadKind::kUniform, 64, 1 << 12, rng));
  multipath_loglog_sweep(net, 0, hashed_request());
  const auto multipath_bits = net.summary().max_node_bits;
  net.reset_accounting();
  const auto tree = net::bfs_tree(net.graph(), 0);
  TreeWave<LogLogAgg> wave(tree, 1);
  wave.execute(net, hashed_request());
  const auto tree_bits = net.summary().max_node_bits;
  EXPECT_GT(multipath_bits, tree_bits);
}

TEST(Multipath, DisconnectedGraphThrows) {
  net::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  sim::Network net(g, 1);
  EXPECT_THROW(multipath_loglog_sweep(net, 0, hashed_request()),
               ProtocolError);
}

}  // namespace
}  // namespace sensornet::proto
