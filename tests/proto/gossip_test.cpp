#include "src/proto/gossip.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/net/topology.hpp"

namespace sensornet::proto {
namespace {

TEST(Gossip, ConvergesToCountOnCompleteGraph) {
  const std::size_t n = 128;
  sim::Network net(net::make_complete(n), 3);
  const auto res = gossip_count(net, 0, 40);
  EXPECT_NEAR(res.root_estimate, static_cast<double>(n), 3.0);
  EXPECT_LT(res.disagreement, 0.05);  // everyone agrees once mixed
}

TEST(Gossip, ConvergesOnGeometricGraph) {
  // Geometric graphs mix much slower than complete graphs (rounds scale
  // with 1/radius^2); 250 rounds at radius 0.25 suffices for ~10% accuracy.
  Xoshiro256 rng(7);
  const auto layout = net::make_random_geometric(100, 0.25, rng);
  sim::Network net(layout.graph, 5);
  const auto res = gossip_count(net, 0, 250);
  EXPECT_NEAR(res.root_estimate, 100.0, 12.0);
}

TEST(Gossip, MoreRoundsTightenDisagreement) {
  sim::Network a(net::make_complete(64), 9);
  const auto early = gossip_count(a, 0, 8);
  sim::Network b(net::make_complete(64), 9);
  const auto late = gossip_count(b, 0, 48);
  EXPECT_LT(late.disagreement, early.disagreement);
}

TEST(Gossip, SlowMixingOnLineIsVisible) {
  // Push-sum's convergence is governed by mixing time: a line of the same
  // size is far from converged after the rounds that finish a complete
  // graph — the "diffusion speed" caveat the paper quotes from [6].
  const unsigned rounds = 40;
  sim::Network fast(net::make_complete(64), 11);
  const auto good = gossip_count(fast, 0, rounds);
  sim::Network slow(net::make_line(64), 11);
  const auto bad = gossip_count(slow, 0, rounds);
  EXPECT_LT(good.disagreement, 0.05);
  EXPECT_GT(bad.disagreement, 0.5);
}

TEST(Gossip, PerRoundCostIsConstantBits) {
  const std::size_t n = 64;
  sim::Network net(net::make_complete(n), 13);
  gossip_count(net, 0, 10);
  // Each node transmits exactly 64 bits per round; receptions vary by luck
  // of neighbor choice but transmissions are deterministic.
  for (NodeId u = 0; u < n; ++u) {
    EXPECT_EQ(net.stats(u).payload_bits_sent, 10u * 64u) << "node " << u;
  }
}

TEST(Gossip, MassConservationExact) {
  // value/weight mass moves but never leaks (the fixed-point remainder
  // bookkeeping): after any number of rounds the estimates stay finite and
  // the root's estimate is sane even at tiny round counts.
  sim::Network net(net::make_complete(32), 17);
  const auto res = gossip_count(net, 0, 2);
  EXPECT_GT(res.root_estimate, 0.0);
  EXPECT_LT(res.root_estimate, 2.0 * 32.0 + 1.0);
}

TEST(Gossip, Validation) {
  sim::Network net(net::make_complete(4), 1);
  EXPECT_THROW(gossip_count(net, 9, 10), PreconditionError);
  EXPECT_THROW(gossip_count(net, 0, 0), PreconditionError);
  sim::Network big(net::make_line(2001), 1);
  EXPECT_THROW(gossip_count(big, 0, 1), PreconditionError);
}

}  // namespace
}  // namespace sensornet::proto
