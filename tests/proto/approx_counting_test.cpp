#include "src/proto/approx_counting.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/error.hpp"
#include "src/common/mathutil.hpp"
#include "src/net/topology.hpp"
#include "src/sketch/hll.hpp"

namespace sensornet::proto {
namespace {

sim::Network uniform_network(std::size_t n, std::uint64_t seed) {
  sim::Network net(net::make_grid(n / 8, 8), seed);
  Xoshiro256 rng(seed);
  ValueSet xs(net.node_count());
  for (auto& x : xs) x = static_cast<Value>(rng.next_below(1024));
  net.set_one_item_per_node(xs);
  return net;
}

TEST(ApproxCounting, EstimatesTotalCount) {
  sim::Network net = uniform_network(256, 5);
  const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
  ApxCountConfig cfg;
  cfg.registers = 64;
  TreeApproxCountingService svc(net, tree, cfg);
  const double est = rep_countp(svc, 16, Predicate::always_true());
  // 16 repetitions: sd ~ 1.04/8/4 ~ 3%; assert within 12%.
  EXPECT_NEAR(est / 256.0, 1.0, 0.12);
}

TEST(ApproxCounting, PredicateRestrictsEstimate) {
  sim::Network net(net::make_line(200), 7);
  ValueSet xs;
  for (int i = 0; i < 200; ++i) xs.push_back(i < 150 ? 10 : 1000);
  net.set_one_item_per_node(xs);
  const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
  ApxCountConfig cfg;
  cfg.registers = 64;
  TreeApproxCountingService svc(net, tree, cfg);
  const double est = rep_countp(svc, 16, Predicate::less_than(500));
  EXPECT_NEAR(est / 150.0, 1.0, 0.2);
}

TEST(ApproxCounting, SigmaMatchesEstimatorChoice) {
  sim::Network net = uniform_network(64, 3);
  const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
  ApxCountConfig ll;
  ll.registers = 64;
  ll.estimator = EstimatorKind::kLogLog;
  TreeApproxCountingService svc_ll(net, tree, ll);
  EXPECT_NEAR(svc_ll.sigma(), (1.30 + 2.6 / 64) / 8.0, 1e-9);
  ApxCountConfig hll;
  hll.registers = 64;
  hll.estimator = EstimatorKind::kHyperLogLog;
  TreeApproxCountingService svc_hll(net, tree, hll);
  EXPECT_NEAR(svc_hll.sigma(), 1.04 / 8.0, 1e-9);
  EXPECT_LT(svc_hll.alpha_c(), svc_hll.sigma() / 2.0);  // theorem precondition
}

TEST(ApproxCounting, RepetitionReducesSpread) {
  sim::Network net = uniform_network(256, 11);
  const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
  ApxCountConfig cfg;
  cfg.registers = 16;  // deliberately coarse
  TreeApproxCountingService svc(net, tree, cfg);
  const auto spread = [&](unsigned reps, int trials) {
    double sq = 0;
    for (int t = 0; t < trials; ++t) {
      const double e = rep_countp(svc, reps, Predicate::always_true());
      const double rel = e / 256.0 - 1.0;
      sq += rel * rel;
    }
    return std::sqrt(sq / trials);
  };
  const double single = spread(1, 24);
  const double averaged = spread(16, 24);
  EXPECT_LT(averaged, single);
}

TEST(ApproxCounting, PerNodeBitsAreLogLogScale) {
  // One invocation ships m registers of O(log log N) bits per tree edge;
  // crucially the cost must NOT scale with log N per register.
  for (const std::size_t n : {64UL, 1024UL}) {
    sim::Network net(net::make_line(n), 13);
    net.set_one_item_per_node(ValueSet(n, 3));
    const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
    ApxCountConfig cfg;
    cfg.registers = 16;
    TreeApproxCountingService svc(net, tree, cfg);
    svc.apx_count(Predicate::always_true());
    const auto bits = net.summary().max_node_bits;
    const unsigned w = sketch::packed_width_for(n + 1);
    // Two sketch images (rx + tx, each at most header + dense registers) +
    // two requests (~33 bits each).
    EXPECT_LE(bits, 2 * (16 * w + sketch::Hll::kHeaderBits) + 96) << "n=" << n;
  }
}

TEST(ApproxCounting, InvocationsAreIndependent) {
  sim::Network net = uniform_network(64, 17);
  const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
  ApxCountConfig cfg;
  cfg.registers = 16;
  TreeApproxCountingService svc(net, tree, cfg);
  const double a = svc.apx_count(Predicate::always_true());
  const double b = svc.apx_count(Predicate::always_true());
  // Random mode with fresh node randomness: estimates differ (w.h.p.).
  EXPECT_NE(a, b);
}

TEST(ApproxCounting, RejectsBadRegisterCounts) {
  sim::Network net = uniform_network(64, 19);
  const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
  ApxCountConfig cfg;
  cfg.registers = 48;  // not a power of two
  EXPECT_THROW(TreeApproxCountingService(net, tree, cfg), PreconditionError);
  cfg.registers = 8;  // below the supported minimum
  EXPECT_THROW(TreeApproxCountingService(net, tree, cfg), PreconditionError);
}

}  // namespace
}  // namespace sensornet::proto
