#include "src/proto/tree_wave.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>

#include "src/common/mathutil.hpp"
#include "src/common/workload.hpp"
#include "src/net/topology.hpp"
#include "src/proto/aggregations.hpp"

namespace sensornet::proto {
namespace {

sim::Network make_loaded_network(const net::Graph& g, std::uint64_t seed) {
  sim::Network net(g, seed);
  Xoshiro256 rng(seed);
  ValueSet xs(g.node_count());
  for (auto& x : xs) x = static_cast<Value>(rng.next_below(1000));
  net.set_one_item_per_node(xs);
  return net;
}

TEST(TreeWave, SingleNodeNetworkNeedsNoMessages) {
  sim::Network net(net::make_line(1), 1);
  net.set_items(0, {42});
  const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
  TreeWave<CountAgg> wave(tree, 0);
  EXPECT_EQ(wave.execute(net, {Predicate::always_true()}), 1u);
  EXPECT_EQ(net.summary().total_messages, 0u);
}

TEST(TreeWave, CountsOverLine) {
  sim::Network net = make_loaded_network(net::make_line(10), 3);
  const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
  TreeWave<CountAgg> wave(tree, 1);
  EXPECT_EQ(wave.execute(net, {Predicate::always_true()}), 10u);
}

TEST(TreeWave, CountPredicateFilters) {
  sim::Network net(net::make_line(5), 1);
  net.set_one_item_per_node({1, 5, 10, 15, 20});
  const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
  TreeWave<CountAgg> wave(tree, 1);
  EXPECT_EQ(wave.execute(net, {Predicate::less_than(10)}), 2u);
  TreeWave<CountAgg> wave2(tree, 2);
  EXPECT_EQ(wave2.execute(net, {Predicate::greater_equal(15)}), 2u);
}

TEST(TreeWave, MultisetItemsPerNode) {
  sim::Network net(net::make_line(3), 1);
  net.set_items(0, {1, 2, 3});
  net.set_items(1, {});
  net.set_items(2, {4, 4});
  const net::SpanningTree tree = net::bfs_tree(net.graph(), 1);
  TreeWave<CountAgg> wave(tree, 1);
  EXPECT_EQ(wave.execute(net, {Predicate::always_true()}), 5u);
}

TEST(TreeWave, MinMaxWithEmptySubtrees) {
  sim::Network net(net::make_line(4), 1);
  net.set_items(0, {});
  net.set_items(1, {17});
  net.set_items(2, {});
  net.set_items(3, {9});
  const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
  TreeWave<MinAgg> min_wave(tree, 1);
  const auto min = min_wave.execute(net, {Predicate::always_true()});
  ASSERT_TRUE(min.has_value());
  EXPECT_EQ(*min, 9);
  TreeWave<MaxAgg> max_wave(tree, 2);
  const auto max = max_wave.execute(net, {Predicate::always_true()});
  ASSERT_TRUE(max.has_value());
  EXPECT_EQ(*max, 17);
}

TEST(TreeWave, MinMaxAllEmptyReturnsNullopt) {
  sim::Network net(net::make_line(3), 1);
  const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
  TreeWave<MinAgg> wave(tree, 1);
  EXPECT_FALSE(wave.execute(net, {Predicate::always_true()}).has_value());
}

TEST(TreeWave, SumMatchesLocalSum) {
  sim::Network net = make_loaded_network(net::make_grid(4, 4), 7);
  std::uint64_t expected = 0;
  for (NodeId u = 0; u < 16; ++u) {
    expected += static_cast<std::uint64_t>(net.items(u)[0]);
  }
  const net::SpanningTree tree = net::bfs_tree(net.graph(), 5);
  TreeWave<SumAgg> wave(tree, 1);
  EXPECT_EQ(wave.execute(net, {Predicate::always_true()}), expected);
}

TEST(TreeWave, CollectReturnsSortedMultiset) {
  sim::Network net(net::make_line(4), 1);
  net.set_one_item_per_node({30, 10, 20, 10});
  const net::SpanningTree tree = net::bfs_tree(net.graph(), 2);
  TreeWave<CollectAgg> wave(tree, 1);
  const ValueSet all = wave.execute(net, {Predicate::always_true()});
  EXPECT_EQ(all, (ValueSet{10, 10, 20, 30}));
}

TEST(TreeWave, DistinctSetDeduplicates) {
  sim::Network net(net::make_line(5), 1);
  net.set_one_item_per_node({7, 7, 3, 7, 3});
  const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
  TreeWave<DistinctSetAgg> wave(tree, 1);
  const ValueSet d = wave.execute(net, {Predicate::always_true()});
  EXPECT_EQ(d, (ValueSet{3, 7}));
}

TEST(TreeWave, RootsGiveSameAnswer) {
  sim::Network net = make_loaded_network(net::make_grid(5, 5), 11);
  std::uint64_t expected = 0;
  for (NodeId u = 0; u < 25; ++u) {
    expected += static_cast<std::uint64_t>(net.items(u)[0]);
  }
  for (const NodeId root : {0u, 12u, 24u}) {
    const net::SpanningTree tree = net::bfs_tree(net.graph(), root);
    TreeWave<SumAgg> wave(tree, root);
    EXPECT_EQ(wave.execute(net, {Predicate::always_true()}), expected);
  }
}

TEST(TreeWave, PerNodeBitsBoundedOnBoundedDegreeTree) {
  // On a line, a COUNT wave costs every node O(log N) bits: one request,
  // one response per tree edge it touches.
  sim::Network net = make_loaded_network(net::make_line(64), 13);
  const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
  TreeWave<CountAgg> wave(tree, 1);
  wave.execute(net, {Predicate::always_true()});
  const auto summary = net.summary();
  // request <= ~2 bits, response <= ~2*log2(64)+O(loglog): generous cap 64.
  EXPECT_LE(summary.max_node_bits, 64u);
}

TEST(TreeWave, RoundsEqualTwiceTreeHeight) {
  sim::Network net = make_loaded_network(net::make_line(16), 17);
  const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
  TreeWave<CountAgg> wave(tree, 1);
  wave.execute(net, {Predicate::always_true()});
  EXPECT_EQ(net.now(), 2 * tree.height());
}

class WaveOverTopologies : public ::testing::TestWithParam<net::TopologyKind> {
};

TEST_P(WaveOverTopologies, CountAgreesWithGroundTruth) {
  Xoshiro256 topo_rng(23);
  const net::Graph g = net::make_topology(GetParam(), 60, topo_rng);
  sim::Network net = make_loaded_network(g, 29);
  std::size_t expected = 0;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    expected += sensornet::rank_below(net.items(u), 500);
  }
  const net::SpanningTree tree = net::bfs_tree(g, 0);
  TreeWave<CountAgg> wave(tree, 1);
  EXPECT_EQ(wave.execute(net, {Predicate::less_than(500)}), expected);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, WaveOverTopologies,
                         ::testing::Values(net::TopologyKind::kLine,
                                           net::TopologyKind::kRing,
                                           net::TopologyKind::kGrid,
                                           net::TopologyKind::kComplete,
                                           net::TopologyKind::kBalancedTree,
                                           net::TopologyKind::kGeometric),
                         [](const auto& info) {
                           std::string n = net::topology_name(info.param);
                           std::replace(n.begin(), n.end(), '-', '_');
                           return n;
                         });

}  // namespace
}  // namespace sensornet::proto
