#include "src/proto/predicate.hpp"

#include <gtest/gtest.h>

#include "src/common/codec.hpp"

namespace sensornet::proto {
namespace {

TEST(Predicate, AlwaysTrue) {
  const Predicate p = Predicate::always_true();
  EXPECT_TRUE(p.matches(0));
  EXPECT_TRUE(p.matches(1 << 30));
}

TEST(Predicate, LessThanInteger) {
  const Predicate p = Predicate::less_than(10);
  EXPECT_TRUE(p.matches(9));
  EXPECT_FALSE(p.matches(10));
  EXPECT_FALSE(p.matches(11));
}

TEST(Predicate, LessThanHalfUnits) {
  // x < 10.5 : threshold2 = 21.
  const Predicate p = Predicate::less_than_half_units(21);
  EXPECT_TRUE(p.matches(10));
  EXPECT_FALSE(p.matches(11));
}

TEST(Predicate, GreaterEqual) {
  const Predicate p = Predicate::greater_equal(5);
  EXPECT_FALSE(p.matches(4));
  EXPECT_TRUE(p.matches(5));
}

TEST(Predicate, WireRoundTrip) {
  for (const Predicate p :
       {Predicate::always_true(), Predicate::less_than(0),
        Predicate::less_than(123456), Predicate::less_than_half_units(7),
        Predicate::greater_equal(99)}) {
    BitWriter w;
    p.encode(w);
    BitReader r(w.bytes().data(), w.bit_count());
    EXPECT_EQ(Predicate::decode(r), p);
  }
}

TEST(Predicate, TrueIsTwoBits) {
  BitWriter w;
  Predicate::always_true().encode(w);
  EXPECT_EQ(w.bit_count(), 2u);
}

TEST(Predicate, WireCostIsLogThreshold) {
  // Section 3.1's requirement: the predicate must fit in O(log X) bits.
  BitWriter w;
  Predicate::less_than(1 << 20).encode(w);
  EXPECT_LE(w.bit_count(), 2u + 21u + 12u);
}

TEST(Predicate, ToStringReadable) {
  EXPECT_EQ(Predicate::always_true().to_string(), "TRUE");
  EXPECT_EQ(Predicate::less_than(10).to_string(), "x < 10");
  EXPECT_EQ(Predicate::less_than_half_units(21).to_string(), "x < 10.5");
}

TEST(Predicate, HalfUnitSemanticsMatchRankFunction) {
  // l(y) with y = t/2 counted via the predicate must match direct counting.
  const ValueSet xs{1, 3, 3, 7, 9};
  for (std::int64_t t2 = 0; t2 <= 20; ++t2) {
    const Predicate p = Predicate::less_than_half_units(t2);
    int c = 0;
    for (const Value x : xs) {
      if (p.matches(x)) ++c;
    }
    int expected = 0;
    for (const Value x : xs) {
      if (2 * x < t2) ++expected;
    }
    EXPECT_EQ(c, expected) << "t2=" << t2;
  }
}

}  // namespace
}  // namespace sensornet::proto
