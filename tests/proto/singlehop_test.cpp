#include "src/proto/singlehop.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/net/topology.hpp"

namespace sensornet::proto {
namespace {

sim::Network single_hop_net(const ValueSet& items, std::uint64_t seed = 1) {
  sim::Network net(net::make_complete(items.size()), seed);
  net.set_one_item_per_node(items);
  return net;
}

TEST(SingleHop, CountMatchesGroundTruth) {
  sim::Network net = single_hop_net({1, 5, 9, 13, 17});
  SingleHopCountingService svc(net, 0, 100);
  EXPECT_EQ(svc.count_all(), 5u);
  EXPECT_EQ(svc.count(Predicate::less_than(9)), 2u);
  EXPECT_EQ(svc.count(Predicate::less_than(100)), 5u);
}

TEST(SingleHop, RootItemCountedWithoutRadio) {
  sim::Network net = single_hop_net({7});
  SingleHopCountingService svc(net, 0, 10);
  EXPECT_EQ(svc.count_all(), 1u);
  EXPECT_EQ(net.summary().total_messages, 0u);
}

TEST(SingleHop, MinMax) {
  sim::Network net = single_hop_net({12, 4, 33, 8});
  SingleHopCountingService svc(net, 0, 64);
  EXPECT_EQ(*svc.min_value(), 4);
  EXPECT_EQ(*svc.max_value(), 33);
}

TEST(SingleHop, EmptyItems) {
  sim::Network net(net::make_complete(4), 1);
  SingleHopCountingService svc(net, 0, 64);
  EXPECT_EQ(svc.count_all(), 0u);
  EXPECT_FALSE(svc.min_value().has_value());
  EXPECT_FALSE(svc.max_value().has_value());
}

TEST(SingleHop, TransmitProfileOneBitPerProbe) {
  // Every non-root node transmits exactly one presence bit per COUNTP.
  sim::Network net = single_hop_net({3, 6, 9, 12, 15, 18, 21, 24});
  SingleHopCountingService svc(net, 0, 100);
  const unsigned probes = 5;
  for (unsigned i = 0; i < probes; ++i) {
    svc.count(Predicate::less_than(10 + static_cast<Value>(i)));
  }
  for (NodeId u = 1; u < net.node_count(); ++u) {
    EXPECT_EQ(net.stats(u).payload_bits_sent, probes) << "node " << u;
  }
  // ...while receiving Theta(N) bits per probe (everyone overhears).
  EXPECT_GE(net.stats(1).payload_bits_received,
            static_cast<std::uint64_t>(probes) * (net.node_count() - 2));
}

TEST(SingleHop, RejectsMultiItemNodes) {
  sim::Network net(net::make_complete(3), 1);
  net.set_items(1, {1, 2});
  EXPECT_THROW(SingleHopCountingService(net, 0, 10), PreconditionError);
}

TEST(SingleHop, RequiresCompleteGraph) {
  sim::Network net(net::make_line(4), 1);
  net.set_one_item_per_node({1, 2, 3, 4});
  SingleHopCountingService svc(net, 0, 10);
  EXPECT_THROW(svc.count_all(), ProtocolError);
}

}  // namespace
}  // namespace sensornet::proto
