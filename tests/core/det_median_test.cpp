// Theorem 3.2: the Fig. 1 driver returns the exact Definition 2.3 median /
// order statistic over every workload and topology, in ceil(log(M-m))
// iterations, preserving the Lemma 3.1 loop invariant.
#include "src/core/det_median.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "src/common/error.hpp"
#include "src/common/mathutil.hpp"
#include "src/common/workload.hpp"
#include "src/net/topology.hpp"
#include "src/proto/counting_service.hpp"

namespace sensornet::core {
namespace {

struct Fixture {
  sim::Network net;
  net::SpanningTree tree;
  proto::TreeCountingService svc;

  Fixture(const net::Graph& g, const ValueSet& items, std::uint64_t seed = 1)
      : net(g, seed), tree(net::bfs_tree(g, 0)), svc(net, tree) {
    net.set_one_item_per_node(items);
  }
};

TEST(DetMedian, TinyCases) {
  {
    Fixture f(net::make_line(1), {42});
    EXPECT_EQ(deterministic_median(f.svc).value, 42);
  }
  {
    Fixture f(net::make_line(2), {10, 20});
    EXPECT_EQ(deterministic_median(f.svc).value, 10);  // lower median
  }
  {
    Fixture f(net::make_line(3), {30, 10, 20});
    EXPECT_EQ(deterministic_median(f.svc).value, 20);
  }
}

TEST(DetMedian, AllEqualDegenerate) {
  Fixture f(net::make_line(6), ValueSet(6, 17));
  const auto res = deterministic_median(f.svc);
  EXPECT_EQ(res.value, 17);
  EXPECT_EQ(res.iterations, 0u);  // M == m short-circuit
}

TEST(DetMedian, AdjacentValues) {
  // M - m == 1: the loop body never runs; line 4.1 resolves the tie.
  Fixture f(net::make_line(4), {5, 5, 6, 6});
  const auto res = deterministic_median(f.svc);
  EXPECT_EQ(res.value, 5);
  EXPECT_EQ(res.iterations, 0u);
  EXPECT_EQ(res.countp_calls, 1u);
}

TEST(DetMedian, TwoPointMass) {
  Xoshiro256 rng(3);
  const ValueSet xs = generate_workload(WorkloadKind::kTwoPoint, 32,
                                        1 << 20, rng);
  Fixture f(net::make_line(32), xs);
  EXPECT_EQ(deterministic_median(f.svc).value, reference_median(xs));
}

TEST(DetMedian, IterationCountMatchesTheorem) {
  // Exactly ceil(log2(M - m)) loop iterations.
  Fixture f(net::make_line(8), {0, 100, 200, 300, 400, 500, 600, 1000});
  const auto res = deterministic_median(f.svc);
  EXPECT_EQ(res.iterations, ceil_log2(1000));
  EXPECT_EQ(res.value, reference_median(
                           {0, 100, 200, 300, 400, 500, 600, 1000}));
}

TEST(DetMedian, Lemma31InvariantHoldsOnTrace) {
  Xoshiro256 rng(17);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 2 + rng.next_below(30);
    ValueSet xs(n);
    for (auto& x : xs) x = static_cast<Value>(rng.next_below(100000));
    Fixture f(net::make_line(n), xs, 100 + trial);
    SearchTrace trace;
    const auto res = deterministic_median(f.svc, &trace);
    const Value mu = reference_median(xs);
    EXPECT_EQ(res.value, mu);
    for (const auto& [y2, z2] : trace) {
      // mu in [y - z, y + z]  <=>  2*mu in [y2 - z2, y2 + z2].
      EXPECT_GE(2 * mu, y2 - z2);
      EXPECT_LE(2 * mu, y2 + z2);
    }
  }
}

TEST(DetMedian, OrderStatisticsAllRanks) {
  const ValueSet xs{12, 3, 45, 7, 23, 9, 31, 18};
  Fixture f(net::make_grid(2, 4), xs);
  for (std::int64_t twice_k = 1;
       twice_k <= 2 * static_cast<std::int64_t>(xs.size()); ++twice_k) {
    const auto res = deterministic_order_statistic(f.svc, twice_k);
    EXPECT_EQ(res.value, reference_order_statistic(xs, twice_k))
        << "twice_k=" << twice_k;
  }
}

TEST(DetMedian, MinAndMaxAsOrderStatistics) {
  const ValueSet xs{50, 20, 80, 10, 60};
  Fixture f(net::make_line(5), xs);
  EXPECT_EQ(deterministic_order_statistic(f.svc, 2).value, 10);   // k=1
  EXPECT_EQ(deterministic_order_statistic(f.svc, 10).value, 80);  // k=N
}

TEST(DetMedian, EmptyInputThrows) {
  sim::Network net(net::make_line(3), 1);
  const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
  proto::TreeCountingService svc(net, tree);
  EXPECT_THROW(deterministic_median(svc), PreconditionError);
}

TEST(DetMedian, MultisetNodesSupported) {
  sim::Network net(net::make_line(3), 1);
  net.set_items(0, {1, 2, 3, 4});
  net.set_items(1, {});
  net.set_items(2, {5, 6, 7});
  const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
  proto::TreeCountingService svc(net, tree);
  EXPECT_EQ(deterministic_median(svc).value, 4);
}

TEST(DetMedian, CommunicationScalesAsLogSquared) {
  // Theorem 3.2's shape claim: max-bits-per-node / log^2(N) stays bounded
  // as N grows (values polynomial in N).
  double prev_ratio = 0.0;
  for (const std::size_t n : {64UL, 256UL, 1024UL}) {
    sim::Network net(net::make_line(n), 7);
    Xoshiro256 rng(7);
    ValueSet xs(n);
    for (auto& x : xs) {
      x = static_cast<Value>(rng.next_below(n * n));  // X = N^2
    }
    net.set_one_item_per_node(xs);
    const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
    proto::TreeCountingService svc(net, tree);
    EXPECT_EQ(deterministic_median(svc).value, reference_median(xs));
    const double log_n = static_cast<double>(ceil_log2(n));
    const double ratio = static_cast<double>(net.summary().max_node_bits) /
                         (log_n * log_n);
    if (prev_ratio > 0.0) {
      EXPECT_LT(ratio, prev_ratio * 2.0) << "n=" << n;  // no super-log^2 blowup
    }
    prev_ratio = ratio;
  }
}

struct SweepParam {
  net::TopologyKind topology;
  WorkloadKind workload;
};

class DetMedianSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(DetMedianSweep, ExactOnEveryTopologyAndWorkload) {
  Xoshiro256 rng(31);
  for (const std::size_t n : {5UL, 17UL, 48UL}) {
    const net::Graph g = net::make_topology(GetParam().topology, n, rng);
    const std::size_t actual_n = g.node_count();
    const ValueSet xs =
        generate_workload(GetParam().workload, actual_n, 1 << 16, rng);
    sim::Network net(g, 1000 + n);
    net.set_one_item_per_node(xs);
    const net::SpanningTree tree = net::bfs_tree(g, 0);
    proto::TreeCountingService svc(net, tree);
    EXPECT_EQ(deterministic_median(svc).value, reference_median(xs))
        << net::topology_name(GetParam().topology) << "/"
        << workload_name(GetParam().workload) << " n=" << actual_n;
  }
}

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> out;
  for (const auto t : {net::TopologyKind::kLine, net::TopologyKind::kGrid,
                       net::TopologyKind::kBalancedTree,
                       net::TopologyKind::kGeometric}) {
    for (const auto w :
         {WorkloadKind::kUniform, WorkloadKind::kZipf, WorkloadKind::kAllEqual,
          WorkloadKind::kTwoPoint, WorkloadKind::kDenseCenter}) {
      out.push_back({t, w});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DetMedianSweep, ::testing::ValuesIn(sweep_params()),
    [](const auto& info) {
      std::string n = std::string(net::topology_name(info.param.topology)) +
                      "_" + workload_name(info.param.workload);
      std::replace(n.begin(), n.end(), '-', '_');
      return n;
    });

}  // namespace
}  // namespace sensornet::core
