// Section 5: exact COUNT_DISTINCT is linear, approximate is cheap+accurate.
#include "src/core/count_distinct.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "src/common/workload.hpp"
#include "src/net/topology.hpp"

namespace sensornet::core {
namespace {

struct Net {
  sim::Network net;
  net::SpanningTree tree;
  Net(const net::Graph& g, const ValueSet& xs, std::uint64_t seed = 1)
      : net(g, seed), tree(net::bfs_tree(g, 0)) {
    net.set_one_item_per_node(xs);
  }
};

TEST(ExactDistinct, SmallCases) {
  Net f(net::make_line(5), {7, 7, 3, 7, 3});
  EXPECT_EQ(exact_count_distinct(f.net, f.tree).distinct, 2u);
}

TEST(ExactDistinct, AllDistinct) {
  ValueSet xs(20);
  for (std::size_t i = 0; i < 20; ++i) xs[i] = static_cast<Value>(i * 13);
  Net f(net::make_grid(4, 5), xs);
  EXPECT_EQ(exact_count_distinct(f.net, f.tree).distinct, 20u);
}

TEST(ExactDistinct, MatchesGroundTruthOnRandomMultisets) {
  Xoshiro256 rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 30 + rng.next_below(40);
    const std::size_t d = 1 + rng.next_below(n);
    const ValueSet xs = generate_with_distinct(n, d, 1 << 24, rng);
    Net f(net::make_line(n), xs, 10 + trial);
    EXPECT_EQ(exact_count_distinct(f.net, f.tree).distinct, d);
  }
}

TEST(ExactDistinct, BitsGrowLinearlyWithDistinctCount) {
  // The "unique" aggregate of [9]: per-node bits scale with D, not log N.
  std::uint64_t bits_small = 0;
  std::uint64_t bits_large = 0;
  Xoshiro256 rng(7);
  const std::size_t n = 256;
  {
    const ValueSet xs = generate_with_distinct(n, 8, 1 << 20, rng);
    Net f(net::make_line(n), xs);
    bits_small = exact_count_distinct(f.net, f.tree).max_node_bits;
  }
  {
    const ValueSet xs = generate_with_distinct(n, 256, 1 << 20, rng);
    Net f(net::make_line(n), xs);
    bits_large = exact_count_distinct(f.net, f.tree).max_node_bits;
  }
  // 32x more distinct values -> at least ~8x more bits at the bottleneck.
  EXPECT_GT(bits_large, 8 * bits_small);
}

TEST(ApproxDistinct, DuplicateInsensitive) {
  // 200 copies of 10 values must estimate ~10, not ~200.
  ValueSet xs(200);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = static_cast<Value>((i % 10) * 997);
  }
  Net f(net::make_line(200), xs);
  const auto res = approx_count_distinct(f.net, f.tree, 64,
                                         proto::EstimatorKind::kHyperLogLog);
  EXPECT_NEAR(res.estimate, 10.0, 6.0);
}

TEST(ApproxDistinct, AccuracyWithinPaperBound) {
  // Paper Section 5: with k^2 registers the answer is within (1 +- 3.15/k)
  // w.p. 99%. k = 8 -> m = 64 registers, tolerance ~39%. Average over trials
  // should be far inside.
  Xoshiro256 rng(11);
  const std::size_t n = 400;
  const std::size_t d = 200;
  int within = 0;
  constexpr int kTrials = 12;
  for (int t = 0; t < kTrials; ++t) {
    const ValueSet xs = generate_with_distinct(n, d, 1 << 24, rng);
    Net f(net::make_line(n), xs, 50 + t);
    const auto res = approx_count_distinct(
        f.net, f.tree, 64, proto::EstimatorKind::kHyperLogLog);
    if (std::abs(res.estimate - static_cast<double>(d)) <=
        (3.15 / 8.0) * static_cast<double>(d)) {
      ++within;
    }
  }
  EXPECT_GE(within, 11) << within << "/" << kTrials;
}

TEST(ApproxDistinct, BitsStayNearlyFlatAsDistinctCountGrows) {
  // The contrast of Section 5: approximate cost does not grow with D. With
  // the sparse wire format the cost is no longer a constant — low
  // cardinality is strictly cheaper — but it is capped by the dense
  // register block, so 32x more distinct values buys far less than 32x
  // more bits (vs the exact protocol's linear growth).
  Xoshiro256 rng(13);
  const std::size_t n = 256;
  std::uint64_t bits_small = 0;
  std::uint64_t bits_large = 0;
  {
    const ValueSet xs = generate_with_distinct(n, 8, 1 << 20, rng);
    Net f(net::make_line(n), xs);
    bits_small = approx_count_distinct(f.net, f.tree, 64,
                                       proto::EstimatorKind::kHyperLogLog)
                     .max_node_bits;
  }
  {
    const ValueSet xs = generate_with_distinct(n, 256, 1 << 20, rng);
    Net f(net::make_line(n), xs);
    bits_large = approx_count_distinct(f.net, f.tree, 64,
                                       proto::EstimatorKind::kHyperLogLog)
                     .max_node_bits;
  }
  EXPECT_LE(bits_small, bits_large);       // sparse never costs more
  EXPECT_LT(bits_large, 4 * bits_small);   // ...and dense caps the growth
}

TEST(ApproxDistinct, LogLogEstimatorAlsoWorks) {
  Xoshiro256 rng(17);
  const std::size_t n = 300;
  const std::size_t d = 250;  // d >> m so raw LogLog is in its regime
  const ValueSet xs = generate_with_distinct(n, d, 1 << 24, rng);
  Net f(net::make_line(n), xs);
  const auto res = approx_count_distinct(f.net, f.tree, 16,
                                         proto::EstimatorKind::kLogLog);
  EXPECT_NEAR(res.estimate / static_cast<double>(d), 1.0, 0.8);
  EXPECT_NEAR(res.expected_sigma, (1.30 + 2.6 / 16) / 4.0, 1e-9);
}

}  // namespace
}  // namespace sensornet::core
