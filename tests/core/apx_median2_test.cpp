// Theorem 4.7 / Corollary 4.8: the Fig. 4 zoom reaches value precision beta
// in ceil(log 1/beta) stages with polyloglog per-node communication.
#include "src/core/apx_median2.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"
#include "src/common/mathutil.hpp"
#include "src/common/workload.hpp"
#include "src/net/topology.hpp"

namespace sensornet::core {
namespace {

ApxMedian2Params fast_params(Value max_value, double beta = 1.0 / 64) {
  ApxMedian2Params p;
  p.beta = beta;
  p.epsilon = 0.25;
  p.rep_scale = 0.2;  // scaled schedule keeps tests quick
  p.registers = 16;
  p.max_value_bound = max_value;
  return p;
}

struct Net {
  sim::Network net;
  net::SpanningTree tree;
  Net(const net::Graph& g, const ValueSet& xs, std::uint64_t seed)
      : net(g, seed), tree(net::bfs_tree(g, 0)) {
    net.set_one_item_per_node(xs);
  }
};

TEST(ApxMedian2, ParameterValidation) {
  Net f(net::make_line(4), {1, 2, 3, 4}, 1);
  ApxMedian2Params p = fast_params(100);
  p.beta = 0.0;
  EXPECT_THROW(approx_median2(f.net, f.tree, p), PreconditionError);
  p = fast_params(100);
  p.max_value_bound = 1;
  EXPECT_THROW(approx_median2(f.net, f.tree, p), PreconditionError);
  p = fast_params(100);
  p.rank_phi = 1.0;
  EXPECT_THROW(approx_median2(f.net, f.tree, p), PreconditionError);
}

TEST(ApxMedian2, StageCountMatchesBeta) {
  Xoshiro256 rng(3);
  const std::size_t n = 64;
  const Value X = 1 << 16;
  const ValueSet xs = generate_workload(WorkloadKind::kUniform, n, X, rng);
  Net f(net::make_grid(8, 8), xs, 5);
  const auto res = approx_median2(f.net, f.tree, fast_params(X, 1.0 / 16));
  // ceil(log2 16) = 4 stages unless the interval pins earlier.
  EXPECT_LE(res.stages, 4u);
  EXPECT_GE(res.stages, 1u);
  EXPECT_EQ(res.trace.size(), res.stages);
}

TEST(ApxMedian2, IntervalShrinksMonotonically) {
  Xoshiro256 rng(7);
  const Value X = 1 << 18;
  const std::size_t n = 64;
  const ValueSet xs = generate_workload(WorkloadKind::kUniform, n, X, rng);
  Net f(net::make_line(n), xs, 11);
  const auto res = approx_median2(f.net, f.tree, fast_params(X, 1.0 / 64));
  Value prev_width = X;
  for (const auto& stage : res.trace) {
    const Value width = stage.interval_hi - stage.interval_lo;
    EXPECT_LE(width, prev_width) << "stage " << stage.stage;
    prev_width = width;
  }
  // Final interval meets the beta target (each stage halves at least).
  EXPECT_LE(static_cast<double>(prev_width),
            std::max(1.0, (1.0 / 64) * static_cast<double>(X) * 2.0));
}

TEST(ApxMedian2, MedianLandsNearReference) {
  // Value-precision guarantee: result within ~beta*X of some value whose
  // rank is near N/2. With a spread-out workload the true median works.
  Xoshiro256 rng(13);
  const Value X = 1 << 16;
  const std::size_t n = 96;
  int ok = 0;
  constexpr int kTrials = 8;
  for (int t = 0; t < kTrials; ++t) {
    const ValueSet xs = generate_workload(WorkloadKind::kUniform, n, X, rng);
    Net f(net::make_grid(12, 8), xs, 100 + t);
    const auto res = approx_median2(f.net, f.tree, fast_params(X, 1.0 / 256));
    const Value mu = reference_median(xs);
    // Accept if the reported interval sits within a noise-widened rank band
    // around the median. At m=16 registers sigma ~ 0.26, and the rank target
    // drifts by ~sigma per zoom stage (Theorem 4.7's alpha = O(sigma log
    // 1/beta)), so the certified band at 8 stages is wide: [0.1N, 0.9N].
    const auto lo_rank = static_cast<double>(rank_below(xs, res.interval_lo));
    const auto hi_rank =
        static_cast<double>(rank_below(xs, res.interval_hi + 1));
    const bool rank_ok = hi_rank >= 0.10 * n && lo_rank <= 0.90 * n;
    if (rank_ok ||
        std::abs(static_cast<double>(res.value - mu)) <=
            0.05 * static_cast<double>(X)) {
      ++ok;
    }
  }
  EXPECT_GE(ok, 7) << ok << "/" << kTrials;
}

TEST(ApxMedian2, AllEqualPinsExactly) {
  const std::size_t n = 32;
  const Value X = 1 << 12;
  Net f(net::make_line(n), ValueSet(n, 777), 17);
  const auto res = approx_median2(f.net, f.tree, fast_params(X, 1.0 / 1024));
  // All items equal: every stage zooms onto the same dyadic interval and the
  // final interval must contain 777.
  EXPECT_LE(res.interval_lo, 777);
  EXPECT_GE(res.interval_hi, 777);
  EXPECT_LE(res.interval_hi - res.interval_lo,
            static_cast<Value>(static_cast<double>(X) / 1024.0 * 2 + 2));
}

TEST(ApxMedian2, ZeroValuesHandled) {
  // Zeros are clamped to 1 (documented 1/X extra error); must not crash.
  Net f(net::make_line(8), {0, 0, 0, 1, 1, 2, 2, 3}, 19);
  const auto res = approx_median2(f.net, f.tree, fast_params(64, 1.0 / 16));
  EXPECT_GE(res.value, 0);
  EXPECT_LE(res.value, 64);
}

TEST(ApxMedian2, QuantileTargets) {
  // rank_phi = 0.9 should land in the upper region of the distribution.
  Xoshiro256 rng(23);
  const Value X = 1 << 16;
  const std::size_t n = 96;
  ValueSet xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = static_cast<Value>((i * static_cast<std::size_t>(X)) / n);
  }
  std::shuffle(xs.begin(), xs.end(), rng);
  Net f(net::make_line(n), xs, 29);
  ApxMedian2Params p = fast_params(X, 1.0 / 64);
  p.rank_phi = 0.9;
  const auto res = approx_median2(f.net, f.tree, p);
  // True 0.9-quantile is ~0.9*X; demand the upper half.
  EXPECT_GT(res.value, X / 2);
}

TEST(ApxMedian2, PerNodeBitsArePolyloglog) {
  // Corollary 4.8's shape: growing N by 16x (with X = N^2) must not scale
  // per-node bits anywhere near linearly or even log-linearly; the ratio
  // to (log log N)^3 should stay bounded. We assert a weaker monotone
  // version robust to constants: bits(16N) < 3 * bits(N).
  std::uint64_t prev_bits = 0;
  for (const std::size_t n : {64UL, 1024UL}) {
    sim::Network net(net::make_line(n), 31);
    Xoshiro256 rng(31);
    const auto X = static_cast<Value>(n * n);
    ValueSet xs = generate_workload(WorkloadKind::kUniform, n, X, rng);
    net.set_one_item_per_node(xs);
    const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
    approx_median2(net, tree, fast_params(X, 1.0 / 16));
    const std::uint64_t bits = net.summary().max_node_bits;
    if (prev_bits > 0) {
      EXPECT_LT(bits, 3 * prev_bits) << "n=" << n;
    }
    prev_bits = bits;
  }
}

TEST(ApxMedian2, TraceRecordsMuHats) {
  Xoshiro256 rng(37);
  const Value X = 1 << 14;
  const ValueSet xs = generate_workload(WorkloadKind::kUniform, 48, X, rng);
  Net f(net::make_line(48), xs, 41);
  const auto res = approx_median2(f.net, f.tree, fast_params(X, 1.0 / 32));
  for (const auto& stage : res.trace) {
    EXPECT_GE(stage.mu_hat, 0);
    EXPECT_LE(stage.mu_hat, static_cast<Value>(floor_log2(
                                static_cast<std::uint64_t>(X))));
    EXPECT_GE(stage.k, 1.0);
  }
}

}  // namespace
}  // namespace sensornet::core
