// Theorem 5.1's constructive reduction: 2SD answered through COUNT_DISTINCT.
#include "src/core/disjointness.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/common/workload.hpp"

namespace sensornet::core {
namespace {

TEST(Disjointness, DisjointSidesDeclaredDisjoint) {
  Xoshiro256 rng(1);
  const auto inst = generate_disjointness(20, 0, 1 << 20, rng);
  const auto report =
      solve_disjointness_via_count_distinct(inst.side_a, inst.side_b);
  EXPECT_TRUE(report.declared_disjoint);
  EXPECT_EQ(report.distinct_count, 40u);
}

TEST(Disjointness, SingleSharedElementDetected) {
  // The crux of the lower bound: a difference of ONE in COUNT_DISTINCT flips
  // the 2SD answer — which is why approximation can't help.
  Xoshiro256 rng(2);
  const auto inst = generate_disjointness(20, 1, 1 << 20, rng);
  const auto report =
      solve_disjointness_via_count_distinct(inst.side_a, inst.side_b);
  EXPECT_FALSE(report.declared_disjoint);
  EXPECT_EQ(report.distinct_count, 39u);
}

TEST(Disjointness, ManyOverlaps) {
  Xoshiro256 rng(3);
  const auto inst = generate_disjointness(30, 15, 1 << 20, rng);
  const auto report =
      solve_disjointness_via_count_distinct(inst.side_a, inst.side_b);
  EXPECT_FALSE(report.declared_disjoint);
  EXPECT_EQ(report.distinct_count, 45u);
}

TEST(Disjointness, RandomInstancesAlwaysCorrect) {
  Xoshiro256 rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t per_side = 5 + rng.next_below(40);
    const std::size_t shared = rng.next_below(per_side + 1);
    const auto inst = generate_disjointness(per_side, shared, 1 << 22, rng);
    const auto report =
        solve_disjointness_via_count_distinct(inst.side_a, inst.side_b);
    EXPECT_EQ(report.declared_disjoint, inst.disjoint)
        << "per_side=" << per_side << " shared=" << shared;
  }
}

TEST(Disjointness, CutBitsGrowLinearly) {
  // Omega(n) made visible: bits across the A|B cut scale ~linearly in n.
  Xoshiro256 rng(5);
  std::uint64_t cut_small = 0;
  std::uint64_t cut_large = 0;
  {
    const auto inst = generate_disjointness(16, 0, 1 << 24, rng);
    cut_small = solve_disjointness_via_count_distinct(inst.side_a, inst.side_b)
                    .cut_bits;
  }
  {
    const auto inst = generate_disjointness(256, 0, 1 << 24, rng);
    cut_large = solve_disjointness_via_count_distinct(inst.side_a, inst.side_b)
                    .cut_bits;
  }
  EXPECT_GT(cut_large, 8 * cut_small);  // 16x n -> >= 8x bits
  EXPECT_GT(cut_small, 16u * 4u);       // at least a few bits per element
}

TEST(Disjointness, MultiItemInterpretationCorrect) {
  // Theorem 5.1's first reading: A simulates the root, B all other nodes.
  Xoshiro256 rng(31);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t per_side = 10 + rng.next_below(60);
    const std::size_t shared = rng.next_below(per_side + 1);
    const std::size_t b_nodes = 1 + rng.next_below(7);
    const auto inst = generate_disjointness(per_side, shared, 1 << 22, rng);
    const auto rep = solve_disjointness_multi_item(inst.side_a, inst.side_b,
                                                   b_nodes);
    EXPECT_EQ(rep.declared_disjoint, inst.disjoint)
        << "per_side=" << per_side << " shared=" << shared
        << " b_nodes=" << b_nodes;
  }
}

TEST(Disjointness, MultiItemCutCarriesAllOfB) {
  // With A at the root, every distinct value of B must cross the root edge:
  // the watched cut grows linearly in |B| even when |A| is huge.
  Xoshiro256 rng(37);
  std::uint64_t cut_small = 0;
  std::uint64_t cut_large = 0;
  for (const std::size_t b_size : {32UL, 256UL}) {
    const auto inst = generate_disjointness(b_size, 0, 1 << 24, rng);
    const auto rep =
        solve_disjointness_multi_item(inst.side_a, inst.side_b, 4);
    (b_size == 32 ? cut_small : cut_large) = rep.cut_bits;
  }
  EXPECT_GT(cut_large, 4 * cut_small);
}

TEST(Disjointness, EmptySideRejected) {
  EXPECT_THROW(solve_disjointness_via_count_distinct({}, {1}),
               PreconditionError);
}

TEST(Disjointness, ReportCarriesSizes) {
  Xoshiro256 rng(6);
  const auto inst = generate_disjointness(12, 2, 1 << 20, rng);
  const auto report =
      solve_disjointness_via_count_distinct(inst.side_a, inst.side_b);
  EXPECT_EQ(report.side_a_size, 12u);
  EXPECT_EQ(report.side_b_size, 12u);
  EXPECT_GT(report.max_node_bits, 0u);
}

}  // namespace
}  // namespace sensornet::core
