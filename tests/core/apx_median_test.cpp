// Theorem 4.5: the Fig. 2 driver returns an (alpha, beta)-median with
// alpha = 3*sigma, beta = 1/N, with probability >= 1 - epsilon.
#include "src/core/apx_median.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"
#include "src/common/mathutil.hpp"
#include "src/common/workload.hpp"
#include "src/net/topology.hpp"
#include "src/proto/counting_service.hpp"

namespace sensornet::core {
namespace {

/// Is `y` an (alpha, beta)-median of xs per Definition 2.4? There must exist
/// y' within beta*max(X) of y whose rank straddles k within (1 +- alpha).
bool is_apx_order_statistic(const ValueSet& xs, Value y, double k,
                            double alpha, double beta) {
  const Value max_x = *std::max_element(xs.begin(), xs.end());
  const auto tolerance =
      static_cast<Value>(std::ceil(beta * static_cast<double>(max_x)));
  for (Value yp = y - tolerance; yp <= y + tolerance; ++yp) {
    const double lo = static_cast<double>(rank_below(xs, yp));
    const double hi = static_cast<double>(rank_below(xs, yp + 1));
    if (lo < k * (1 + alpha) && hi >= k * (1 - alpha)) return true;
  }
  return false;
}

struct Services {
  sim::Network net;
  net::SpanningTree tree;
  proto::TreeCountingService minmax;
  proto::TreeApproxCountingService counter;

  Services(const ValueSet& items, std::uint64_t seed, unsigned registers = 64)
      : net(net::make_line(items.size()), seed),
        tree(net::bfs_tree(net.graph(), 0)),
        minmax(net, tree),
        counter(net, tree, make_config(registers)) {
    net.set_one_item_per_node(items);
  }

  static proto::ApxCountConfig make_config(unsigned registers) {
    proto::ApxCountConfig cfg;
    cfg.registers = registers;
    return cfg;
  }
};

TEST(ApxMedian, DegenerateAllEqual) {
  Services s(ValueSet(8, 5), 1);
  ApxSelectionParams params;
  const auto res = approx_median(s.minmax, s.counter, params);
  EXPECT_EQ(res.value, 5);
  EXPECT_EQ(res.apx_count_calls, 0u);  // min == max short-circuit
}

TEST(ApxMedian, EmptyThrows) {
  sim::Network net(net::make_line(3), 1);
  const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
  proto::TreeCountingService minmax(net, tree);
  proto::ApxCountConfig cfg;
  proto::TreeApproxCountingService counter(net, tree, cfg);
  EXPECT_THROW(approx_median(minmax, counter, {}), PreconditionError);
}

TEST(ApxMedian, RejectsBadParams) {
  Services s(ValueSet{1, 2, 3}, 1);
  ApxSelectionParams params;
  params.epsilon = 0.0;
  EXPECT_THROW(approx_median(s.minmax, s.counter, params), PreconditionError);
  params.epsilon = 0.5;
  params.rep_scale = 0.0;
  EXPECT_THROW(approx_median(s.minmax, s.counter, params), PreconditionError);
}

TEST(ApxMedian, SuccessRateMeetsTheorem) {
  // Paper schedule at epsilon = 0.5 over a spread-out workload; alpha=3sigma,
  // beta=1/N must hold in well over 1 - epsilon of the trials. Small value
  // range keeps q = log(M-m)/eps (and so the repetition counts) affordable.
  Xoshiro256 rng(41);
  const std::size_t n = 32;
  const ValueSet xs = generate_workload(WorkloadKind::kUniform, n, 63, rng);
  int successes = 0;
  constexpr int kTrials = 15;
  ApxSelectionParams params;
  params.epsilon = 0.5;
  for (int t = 0; t < kTrials; ++t) {
    Services s(xs, 7000 + t, /*registers=*/16);
    const auto res = approx_median(s.minmax, s.counter, params);
    const double alpha = 3.0 * s.counter.sigma();
    const double beta = 1.0 / static_cast<double>(n);
    if (is_apx_order_statistic(xs, res.value, n / 2.0, alpha, beta)) {
      ++successes;
    }
  }
  EXPECT_GE(successes, 11) << successes << "/" << kTrials;
}

TEST(ApxMedian, DenseCenterHaltsEarlyAndStaysAccurate) {
  // When mass is packed around the median, every pivot near the middle has
  // rank within noise of N/2 -> the dead band triggers (line 4.2.1) and the
  // output is still an (alpha, beta)-median.
  Xoshiro256 rng(43);
  const std::size_t n = 48;
  const ValueSet xs =
      generate_workload(WorkloadKind::kDenseCenter, n, 4096, rng);
  Services s(xs, 99, /*registers=*/16);
  ApxSelectionParams params;
  params.epsilon = 0.5;
  const auto res = approx_median(s.minmax, s.counter, params);
  const double alpha = 3.0 * s.counter.sigma();
  EXPECT_TRUE(is_apx_order_statistic(xs, res.value, n / 2.0, alpha,
                                     2.0 / static_cast<double>(n)));
}

TEST(ApxMedian, OrderStatisticTargetsOtherRanks) {
  Xoshiro256 rng(47);
  const std::size_t n = 32;
  ValueSet xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = static_cast<Value>(i * 4);  // well-separated ranks
  }
  std::shuffle(xs.begin(), xs.end(), rng);
  for (const double k : {8.0, 24.0}) {
    int ok = 0;
    constexpr int kTrials = 8;
    for (int t = 0; t < kTrials; ++t) {
      Services s(xs, 500 + t, /*registers=*/16);
      ApxSelectionParams params;
      params.epsilon = 0.5;
      params.rep_scale = 0.25;  // scaled schedule; guarantee degrades gently
      params.k_absolute = k;
      const auto res = approx_median(s.minmax, s.counter, params);
      const double alpha = 3.0 * s.counter.sigma() + 0.2;  // small-N slack
      if (is_apx_order_statistic(xs, res.value, k, alpha, 0.1)) ++ok;
    }
    EXPECT_GE(ok, 5) << "k=" << k;
  }
}

TEST(ApxMedian, RepetitionCountsFollowSchedule) {
  // q = log2(M-m)/eps; line 2 runs ceil(2q), each loop iteration ceil(32q).
  const std::size_t n = 16;
  ValueSet xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = static_cast<Value>(1 + i * 17);  // M - m = 255
  }
  Services s(xs, 3, /*registers=*/16);
  ApxSelectionParams params;
  params.epsilon = 0.5;
  const auto res = approx_median(s.minmax, s.counter, params);
  const double q = std::log2(255.0) / 0.5;
  const auto r_init = static_cast<unsigned>(std::ceil(2 * q));
  const auto r_loop = static_cast<unsigned>(std::ceil(32 * q));
  EXPECT_EQ(res.apx_count_calls, r_init + res.iterations * r_loop);
  EXPECT_LE(res.iterations, ceil_log2(255));
}

TEST(ApxMedian, RepScaleReducesInvocations) {
  const ValueSet xs{10, 20, 30, 40, 50, 60, 70, 80};
  Services a(xs, 5);
  ApxSelectionParams full;
  full.epsilon = 0.5;
  const auto res_full = approx_median(a.minmax, a.counter, full);
  Services b(xs, 5);
  ApxSelectionParams scaled = full;
  scaled.rep_scale = 0.1;
  const auto res_scaled = approx_median(b.minmax, b.counter, scaled);
  EXPECT_LT(res_scaled.apx_count_calls, res_full.apx_count_calls);
}

}  // namespace
}  // namespace sensornet::core
