#include "src/net/spanning_tree.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/net/topology.hpp"

namespace sensornet::net {
namespace {

TEST(SpanningTree, BfsOnLine) {
  const Graph g = make_line(5);
  const SpanningTree t = bfs_tree(g, 0);
  EXPECT_TRUE(validate_tree(g, t));
  EXPECT_EQ(t.height(), 4u);
  EXPECT_EQ(t.depth[4], 4u);
  EXPECT_EQ(t.parent[4], 3u);
}

TEST(SpanningTree, BfsFromMiddle) {
  const Graph g = make_line(5);
  const SpanningTree t = bfs_tree(g, 2);
  EXPECT_TRUE(validate_tree(g, t));
  EXPECT_EQ(t.height(), 2u);
  EXPECT_EQ(t.children[2].size(), 2u);
}

TEST(SpanningTree, BfsOnCompleteIsStar) {
  const Graph g = make_complete(8);
  const SpanningTree t = bfs_tree(g, 3);
  EXPECT_TRUE(validate_tree(g, t));
  EXPECT_EQ(t.height(), 1u);
  EXPECT_EQ(t.max_degree(), 7u);
}

TEST(SpanningTree, DisconnectedThrows) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_THROW(bfs_tree(g.compact(), 0), ProtocolError);
}

TEST(SpanningTree, CappedBfsBoundsDegree) {
  const Graph g = make_complete(64);
  const SpanningTree t = capped_bfs_tree(g, 0, 3);
  EXPECT_TRUE(validate_tree(g, t));
  EXPECT_LE(t.max_degree(), 4u);  // 3 children + 1 parent
  EXPECT_GT(t.height(), 1u);      // necessarily deeper than the star
}

TEST(SpanningTree, CappedBfsTooTightThrows) {
  // A star graph cannot be spanned with max_children == 1 from a leaf... the
  // hub itself can only adopt 1 child, stranding the rest.
  Graph star(5);
  for (NodeId u = 1; u < 5; ++u) star.add_edge(0, u);
  EXPECT_THROW(capped_bfs_tree(star.compact(), 1, 1), ProtocolError);
}

TEST(SpanningTree, CappedMatchesBfsWhenCapLoose) {
  const Graph g = make_grid(4, 4);
  const SpanningTree bfs = bfs_tree(g, 0);
  const SpanningTree capped = capped_bfs_tree(g, 0, 4);
  EXPECT_TRUE(validate_tree(g, capped));
  EXPECT_EQ(bfs.height(), capped.height());
}

TEST(SpanningTree, ValidateCatchesCorruption) {
  const Graph g = make_grid(3, 3);
  SpanningTree t = bfs_tree(g, 0);
  ASSERT_TRUE(validate_tree(g, t));

  SpanningTree bad_parent = t;
  bad_parent.parent[8] = 8;  // self-parent, not a graph edge
  EXPECT_FALSE(validate_tree(g, bad_parent));

  SpanningTree bad_depth = t;
  bad_depth.depth[4] += 1;
  EXPECT_FALSE(validate_tree(g, bad_depth));

  SpanningTree missing_child = t;
  missing_child.children[t.parent[8]].clear();
  EXPECT_FALSE(validate_tree(g, missing_child));
}

class TreeOverTopologies : public ::testing::TestWithParam<TopologyKind> {};

TEST_P(TreeOverTopologies, BfsTreeValidates) {
  Xoshiro256 rng(9);
  const Graph g = make_topology(GetParam(), 100, rng);
  const SpanningTree t = bfs_tree(g, 0);
  EXPECT_TRUE(validate_tree(g, t));
  // BFS trees give shortest-path depths: height <= node count.
  EXPECT_LT(t.height(), g.node_count());
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, TreeOverTopologies,
                         ::testing::Values(TopologyKind::kLine,
                                           TopologyKind::kRing,
                                           TopologyKind::kGrid,
                                           TopologyKind::kComplete,
                                           TopologyKind::kBalancedTree,
                                           TopologyKind::kGeometric),
                         [](const auto& info) {
                           std::string n = topology_name(info.param);
                           std::replace(n.begin(), n.end(), '-', '_');
                           return n;
                         });

}  // namespace
}  // namespace sensornet::net
