#include "src/net/topology.hpp"

#include <gtest/gtest.h>

namespace sensornet::net {
namespace {

TEST(Topology, Line) {
  const Graph g = make_line(5);
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_TRUE(g.connected());
  EXPECT_EQ(g.max_degree(), 2u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(Topology, SingleNodeLine) {
  const Graph g = make_line(1);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_TRUE(g.connected());
}

TEST(Topology, Ring) {
  const Graph g = make_ring(6);
  EXPECT_EQ(g.edge_count(), 6u);
  for (NodeId u = 0; u < 6; ++u) EXPECT_EQ(g.degree(u), 2u);
}

TEST(Topology, Grid) {
  const Graph g = make_grid(3, 4);
  EXPECT_EQ(g.node_count(), 12u);
  // 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8.
  EXPECT_EQ(g.edge_count(), 17u);
  EXPECT_TRUE(g.connected());
  EXPECT_LE(g.max_degree(), 4u);
}

TEST(Topology, Complete) {
  const Graph g = make_complete(6);
  EXPECT_EQ(g.edge_count(), 15u);
  EXPECT_EQ(g.max_degree(), 5u);
}

TEST(Topology, BalancedTree) {
  const Graph g = make_balanced_tree(13, 3);
  EXPECT_EQ(g.edge_count(), 12u);
  EXPECT_TRUE(g.connected());
  EXPECT_LE(g.degree(0), 3u);
}

TEST(Topology, GeometricAlwaysConnected) {
  Xoshiro256 rng(42);
  for (const std::size_t n : {2UL, 10UL, 100UL, 300UL}) {
    // Even with a hopeless radius, repair must connect the graph.
    const GeometricLayout layout = make_random_geometric(n, 0.01, rng);
    EXPECT_TRUE(layout.graph.connected()) << "n=" << n;
    EXPECT_EQ(layout.x.size(), n);
  }
}

TEST(Topology, GeometricEdgesRespectRadiusBeforeRepair) {
  // With a generous radius no repair happens and all close pairs are linked.
  Xoshiro256 rng(1);
  const GeometricLayout layout = make_random_geometric(40, 2.0, rng);
  // radius 2 covers the unit square entirely -> complete graph.
  EXPECT_EQ(layout.graph.edge_count(), 40u * 39u / 2u);
}

class TopologyFamilyTest : public ::testing::TestWithParam<TopologyKind> {};

TEST_P(TopologyFamilyTest, FactoryProducesConnectedGraphOfRoughSize) {
  Xoshiro256 rng(5);
  const Graph g = make_topology(GetParam(), 64, rng);
  EXPECT_TRUE(g.connected());
  EXPECT_GE(g.node_count(), 64u);
  EXPECT_LE(g.node_count(), 81u);  // grid may round up to next square
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, TopologyFamilyTest,
                         ::testing::Values(TopologyKind::kLine,
                                           TopologyKind::kRing,
                                           TopologyKind::kGrid,
                                           TopologyKind::kComplete,
                                           TopologyKind::kBalancedTree,
                                           TopologyKind::kGeometric),
                         [](const auto& info) {
                           std::string n = topology_name(info.param);
                           std::replace(n.begin(), n.end(), '-', '_');
                           return n;
                         });

}  // namespace
}  // namespace sensornet::net
