#include "src/net/graph.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"

namespace sensornet::net {
namespace {

TEST(Graph, EmptyGraphIsConnected) {
  EXPECT_TRUE(Graph(0).connected());
  EXPECT_TRUE(Graph(1).connected());
}

TEST(Graph, AddAndQueryEdges) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.compact();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.max_degree(), 2u);
}

TEST(Graph, RejectsSelfLoop) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(1, 1), PreconditionError);
}

TEST(Graph, RejectsDuplicateEdge) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(1, 0), PreconditionError);
}

TEST(Graph, RejectsOutOfRange) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(0, 3), PreconditionError);
  EXPECT_THROW(g.degree(5), PreconditionError);
}

TEST(Graph, ConnectivityDetection) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(g.compact().connected());
  g.add_edge(1, 2);
  EXPECT_TRUE(g.compact().connected());
}

TEST(Graph, NeighborsListed) {
  Graph g(4);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  g.compact();
  const auto nb = g.neighbors(0);
  ASSERT_EQ(nb.size(), 2u);
  EXPECT_EQ(nb[0], 2u);
  EXPECT_EQ(nb[1], 3u);
}

TEST(Graph, NeighborsSortedRegardlessOfInsertionOrder) {
  Graph g(5);
  g.add_edge(3, 4);
  g.add_edge(3, 0);
  g.add_edge(3, 2);
  g.add_edge(3, 1);
  g.compact();
  const auto nb = g.neighbors(3);
  const std::vector<NodeId> expected{0, 1, 2, 4};
  ASSERT_EQ(nb.size(), expected.size());
  for (std::size_t i = 0; i < nb.size(); ++i) {
    EXPECT_EQ(nb[i], expected[i]);
  }
}

TEST(Graph, CompactAfterEachMutationKeepsQueriesConsistent) {
  // The thread-safety contract: add_edge marks the CSR stale, compact()
  // rebuilds it, and queries in between see the refreshed image.
  Graph g(4);
  EXPECT_TRUE(g.compacted());  // edgeless graphs start compacted
  g.add_edge(0, 1);
  EXPECT_FALSE(g.compacted());
  g.compact();
  EXPECT_TRUE(g.compacted());
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.connected());
  g.add_edge(2, 1);
  g.compact();
  EXPECT_TRUE(g.has_edge(1, 2));
  const auto nb = g.neighbors(1);
  ASSERT_EQ(nb.size(), 2u);
  EXPECT_EQ(nb[0], 0u);
  EXPECT_EQ(nb[1], 2u);
  g.add_edge(3, 2);
  EXPECT_TRUE(g.compact().connected());
  EXPECT_THROW(g.add_edge(1, 2), PreconditionError);  // still a duplicate
}

TEST(Graph, TopologyBuildersReturnCompactedGraphs) {
  // Deployment builders must hand back query-ready (data-race-free) graphs;
  // degree/edge_count read staging and stay valid either way.
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_FALSE(g.compacted());
  EXPECT_TRUE(g.compact().compacted());
  g.compact();  // idempotent
  EXPECT_TRUE(g.compacted());
}

TEST(Graph, HasEdgeOnHighDegreeNode) {
  // Degree above the linear-scan cutoff exercises the binary-search path.
  Graph g(64);
  for (NodeId v = 1; v < 64; v += 2) g.add_edge(0, v);
  g.compact();
  for (NodeId v = 1; v < 64; ++v) {
    EXPECT_EQ(g.has_edge(0, v), v % 2 == 1);
    EXPECT_EQ(g.has_edge(v, 0), v % 2 == 1);
  }
  EXPECT_FALSE(g.has_edge(3, 5));
}

}  // namespace
}  // namespace sensornet::net
