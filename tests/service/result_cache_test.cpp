#include "src/service/result_cache.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sensornet::service {
namespace {

constexpr Value kBound = 1000;
constexpr Value kDelta = 4;
constexpr std::uint32_t kHorizon = 8;

RangeStats stats_of(std::initializer_list<Value> vs) {
  RangeStats rs;
  for (const Value v : vs) rs.observe(v);
  return rs;
}

/// Bundle for a ranged region [lo, hi] with margin M over explicit values.
StatsBundle ranged_bundle(std::initializer_list<Value> vs, Value lo, Value hi,
                          Value margin = kHorizon * kDelta) {
  StatsBundle b;
  for (const Value v : vs) {
    if (v >= lo && v <= hi) b.core.observe(v);
    if (v >= lo + margin && v <= hi - margin) b.inner.observe(v);
    if (v >= lo - margin && v <= hi + margin) b.outer.observe(v);
  }
  return b;
}

StatsBundle whole_bundle(std::initializer_list<Value> vs) {
  StatsBundle b;
  b.core = stats_of(vs);
  b.inner = b.core;
  b.outer = b.core;
  return b;
}

TEST(RangeStats, ObserveAndCombine) {
  RangeStats a = stats_of({5, 2, 9});
  EXPECT_EQ(a.count, 3u);
  EXPECT_EQ(a.sum, 16u);
  EXPECT_EQ(a.min, 2);
  EXPECT_EQ(a.max, 9);
  RangeStats b = stats_of({1});
  b.combine(a);
  EXPECT_EQ(b.count, 4u);
  EXPECT_EQ(b.min, 1);
  EXPECT_EQ(b.max, 9);
  RangeStats empty;
  b.combine(empty);  // combining nothing changes nothing
  EXPECT_EQ(b.count, 4u);
  empty.combine(b);
  EXPECT_EQ(empty, b);
}

TEST(ResultCache, FreshEntryIsExactForWholeDomain) {
  ResultCache cache(kBound, kDelta, kHorizon);
  const query::RegionSignature whole{0, kBound, true};
  cache.store(whole, /*epoch=*/5, whole_bundle({10, 20, 30}));
  const auto hit = cache.bracket(whole, query::AggregateKind::kSum, 5);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->value, 60.0);
  EXPECT_DOUBLE_EQ(hit->bound, 0.0);
  EXPECT_TRUE(hit->exact);
}

TEST(ResultCache, WholeDomainCountStaysExactForever) {
  // Values drift but never leave [0, bound]: membership is static.
  ResultCache cache(kBound, kDelta, kHorizon);
  const query::RegionSignature whole{0, kBound, true};
  cache.store(whole, 1, whole_bundle({10, 20}));
  const auto hit = cache.bracket(whole, query::AggregateKind::kCount, 1000);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->value, 2.0);
  EXPECT_TRUE(hit->exact);
}

TEST(ResultCache, WholeDomainBoundsGrowWithStaleness) {
  ResultCache cache(kBound, kDelta, kHorizon);
  const query::RegionSignature whole{0, kBound, true};
  cache.store(whole, 10, whole_bundle({10, 20, 30}));
  for (const std::uint32_t s : {1u, 3u, 7u}) {
    const double d = static_cast<double>(s) * kDelta;
    const auto sum = cache.bracket(whole, query::AggregateKind::kSum, 10 + s);
    ASSERT_TRUE(sum.has_value());
    EXPECT_DOUBLE_EQ(sum->bound, 3.0 * d);  // count * d
    const auto avg = cache.bracket(whole, query::AggregateKind::kAvg, 10 + s);
    EXPECT_DOUBLE_EQ(avg->bound, d);
    const auto mn = cache.bracket(whole, query::AggregateKind::kMin, 10 + s);
    EXPECT_DOUBLE_EQ(mn->bound, d);
  }
}

TEST(ResultCache, RangedBracketsContainAllReachableDrifts) {
  // Exhaustive soundness check: every per-epoch drift pattern of three
  // sensors (each step in {-kDelta..kDelta}) for s epochs must keep the
  // true aggregate inside the cached bracket.
  const query::RegionSignature region{40, 60, false};
  ResultCache cache(kBound, kDelta, kHorizon);
  const std::initializer_list<Value> start = {38, 50, 61};
  cache.store(region, 0, ranged_bundle(start, region.lo, region.hi));
  const std::uint32_t s = 3;
  // Walk each sensor independently to its extremes: per-sensor worst case
  // suffices because the aggregates decompose over sensors.
  for (int d0 = -1; d0 <= 1; ++d0) {
    for (int d1 = -1; d1 <= 1; ++d1) {
      for (int d2 = -1; d2 <= 1; ++d2) {
        const Value drift = static_cast<Value>(s) * kDelta;
        const Value vs[3] = {38 + d0 * drift, 50 + d1 * drift,
                             61 + d2 * drift};
        RangeStats truth;
        for (const Value v : vs) {
          if (v >= region.lo && v <= region.hi) truth.observe(v);
        }
        const auto count = cache.bracket(region, query::AggregateKind::kCount, s);
        ASSERT_TRUE(count.has_value());
        EXPECT_LE(std::abs(count->value - static_cast<double>(truth.count)),
                  count->bound);
        const auto sum = cache.bracket(region, query::AggregateKind::kSum, s);
        EXPECT_LE(std::abs(sum->value - static_cast<double>(truth.sum)),
                  sum->bound);
        if (truth.count > 0) {
          const auto mn = cache.bracket(region, query::AggregateKind::kMin, s);
          if (mn) {
            EXPECT_LE(std::abs(mn->value - static_cast<double>(truth.min)),
                      mn->bound);
          }
          const auto avg = cache.bracket(region, query::AggregateKind::kAvg, s);
          if (avg) {
            const double t = static_cast<double>(truth.sum) /
                             static_cast<double>(truth.count);
            EXPECT_LE(std::abs(avg->value - t), avg->bound);
          }
        }
      }
    }
  }
}

TEST(ResultCache, RangedEntriesExpirePastHorizon) {
  const query::RegionSignature region{40, 60, false};
  ResultCache cache(kBound, kDelta, kHorizon);
  cache.store(region, 10, ranged_bundle({50}, 40, 60));
  EXPECT_TRUE(
      cache.bracket(region, query::AggregateKind::kCount, 10 + kHorizon).has_value());
  EXPECT_FALSE(cache.bracket(region, query::AggregateKind::kCount, 11 + kHorizon)
                   .has_value());
}

TEST(ResultCache, LookupGatesOnEpsilon) {
  ResultCache cache(kBound, kDelta, kHorizon);
  const query::RegionSignature whole{0, kBound, true};
  cache.store(whole, 0, whole_bundle({100, 200, 300}));
  // Staleness 2: AVG bound = 8 on a value of 200 -> relative error 4%.
  EXPECT_TRUE(
      cache.lookup(whole, query::AggregateKind::kAvg, 0.05, 2).has_value());
  EXPECT_FALSE(
      cache.lookup(whole, query::AggregateKind::kAvg, 0.01, 2).has_value());
  // No epsilon = exact required: hits only at zero staleness (or COUNT).
  EXPECT_FALSE(
      cache.lookup(whole, query::AggregateKind::kAvg, std::nullopt, 2).has_value());
  EXPECT_TRUE(
      cache.lookup(whole, query::AggregateKind::kAvg, std::nullopt, 0).has_value());
  EXPECT_TRUE(
      cache.lookup(whole, query::AggregateKind::kCount, std::nullopt, 2).has_value());
}

TEST(ResultCache, NeverServesUnbracketableAggregates) {
  ResultCache cache(kBound, kDelta, kHorizon);
  const query::RegionSignature whole{0, kBound, true};
  cache.store(whole, 0, whole_bundle({1, 2, 3}));
  EXPECT_FALSE(cache.bracket(whole, query::AggregateKind::kMedian, 0).has_value());
  EXPECT_FALSE(
      cache.bracket(whole, query::AggregateKind::kCountDistinct, 0).has_value());
}

TEST(ResultCache, EmptySelectionsRefuseValueAggregates) {
  ResultCache cache(kBound, kDelta, kHorizon);
  const query::RegionSignature region{40, 60, false};
  cache.store(region, 0, ranged_bundle({5, 200}, 40, 60));
  const auto count = cache.bracket(region, query::AggregateKind::kCount, 0);
  ASSERT_TRUE(count.has_value());
  EXPECT_DOUBLE_EQ(count->value, 0.0);
  EXPECT_FALSE(cache.bracket(region, query::AggregateKind::kMin, 0).has_value());
  EXPECT_FALSE(cache.bracket(region, query::AggregateKind::kAvg, 0).has_value());
}

TEST(ResultCache, EvictsStalestBeyondCapacity) {
  ResultCache cache(kBound, kDelta, kHorizon, /*capacity=*/2);
  const query::RegionSignature r1{1, 10, false};
  const query::RegionSignature r2{2, 20, false};
  const query::RegionSignature r3{3, 30, false};
  cache.store(r1, 1, ranged_bundle({5}, 1, 10));
  cache.store(r2, 5, ranged_bundle({5}, 2, 20));
  cache.store(r3, 6, ranged_bundle({5}, 3, 30));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.bracket(r1, query::AggregateKind::kCount, 6).has_value());
  EXPECT_TRUE(cache.bracket(r2, query::AggregateKind::kCount, 6).has_value());
  EXPECT_TRUE(cache.bracket(r3, query::AggregateKind::kCount, 6).has_value());
}

}  // namespace
}  // namespace sensornet::service
