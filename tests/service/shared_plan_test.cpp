#include "src/service/shared_plan.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/net/topology.hpp"

namespace sensornet::service {
namespace {

constexpr Value kBound = 1000;
constexpr Value kDelta = 4;
constexpr std::uint32_t kHorizon = 8;

/// What a collection must return: the bundle computed directly from the
/// installed items, no network involved.
StatsBundle direct_bundle(const sim::Network& net,
                          const query::RegionSignature& region) {
  StatsBundle b;
  const Value margin = static_cast<Value>(kHorizon) * kDelta;
  for (NodeId u = 0; u < net.node_count(); ++u) {
    for (const Value v : net.items(u)) {
      if (region.whole_domain) {
        b.core.observe(v);
        continue;
      }
      if (v >= region.lo && v <= region.hi) b.core.observe(v);
      if (v >= region.lo + margin && v <= region.hi - margin)
        b.inner.observe(v);
      if (v >= region.lo - margin && v <= region.hi + margin)
        b.outer.observe(v);
    }
  }
  if (region.whole_domain) {
    b.inner = b.core;
    b.outer = b.core;
  }
  return b;
}

struct Fixture {
  sim::Network net;
  net::SpanningTree tree;
  SharedPlanScheduler sched;

  explicit Fixture(std::uint64_t seed = 7)
      : net(net::make_grid(8, 8), seed),
        tree(net::bfs_tree(net.graph(), 0)),
        sched(net, tree, kBound, kDelta, kHorizon) {
    ValueSet vs(64);
    for (NodeId u = 0; u < 64; ++u) {
      vs[u] = static_cast<Value>((u * 37) % 200);
    }
    net.set_one_item_per_node(vs);
  }
};

TEST(SharedPlan, GroupsDeduplicateByRegion) {
  Fixture f;
  const query::RegionSignature a{10, 50, false};
  const query::RegionSignature b{10, 60, false};
  EXPECT_EQ(f.sched.ensure_stats_group(a), f.sched.ensure_stats_group(a));
  EXPECT_NE(f.sched.ensure_stats_group(a), f.sched.ensure_stats_group(b));
  // Distinct groups key on (region, registers): exact and approximate
  // subscribers cannot share a wave.
  EXPECT_EQ(f.sched.ensure_distinct_group(a, 64),
            f.sched.ensure_distinct_group(a, 64));
  EXPECT_NE(f.sched.ensure_distinct_group(a, 64),
            f.sched.ensure_distinct_group(a, 0));
  EXPECT_EQ(f.sched.stats().groups_created, 4u);
}

TEST(SharedPlan, CollectionMatchesDirectComputation) {
  Fixture f;
  for (const query::RegionSignature region :
       {query::RegionSignature{0, kBound, true},
        query::RegionSignature{30, 120, false}}) {
    const GroupId g = f.sched.ensure_stats_group(region);
    EXPECT_EQ(f.sched.collect_stats(g, 0), direct_bundle(f.net, region));
  }
}

TEST(SharedPlan, CollectIsIdempotentWithinEpoch) {
  Fixture f;
  const GroupId g =
      f.sched.ensure_stats_group(query::RegionSignature{0, kBound, true});
  f.sched.collect_stats(g, 0);
  const auto msgs = f.net.summary().total_messages;
  f.sched.collect_stats(g, 0);
  EXPECT_EQ(f.net.summary().total_messages, msgs);
  EXPECT_EQ(f.sched.stats().stats_waves, 1u);
}

TEST(SharedPlan, QuiescentRecollectionIsFree) {
  Fixture f;
  const GroupId g =
      f.sched.ensure_stats_group(query::RegionSignature{0, kBound, true});
  const StatsBundle first = f.sched.collect_stats(g, 0);
  // Nothing changed: the next epoch's collection is answered entirely from
  // the parent-side partials — zero messages on the air.
  const auto msgs = f.net.summary().total_messages;
  const StatsBundle second = f.sched.collect_stats(g, 1);
  EXPECT_EQ(second, first);
  EXPECT_EQ(f.net.summary().total_messages, msgs);
}

TEST(SharedPlan, IncrementalCollectionDescendsOnlyDirtySubtrees) {
  Fixture f;
  const query::RegionSignature whole{0, kBound, true};
  const GroupId g = f.sched.ensure_stats_group(whole);
  f.sched.collect_stats(g, 0);
  const auto full_descents = f.sched.stats().edges_descended;
  EXPECT_EQ(full_descents, 63u);  // first collection visits every edge

  // One sensor changes; only its root path (plus those nodes' request
  // edges) should be revisited.
  const NodeId changed = 63;
  f.net.update_item(changed, 0, f.net.items(changed)[0] + kDelta);
  const std::vector<NodeId> touched{changed};
  f.sched.note_updates(touched, 1);
  const StatsBundle b = f.sched.collect_stats(g, 1);
  EXPECT_EQ(b, direct_bundle(f.net, whole));
  // Exactly the changed node's root path is re-requested: one edge per
  // level, every other subtree served from the parent-side partials.
  const auto incremental = f.sched.stats().edges_descended - full_descents;
  EXPECT_EQ(incremental, f.tree.depth[changed]);
  EXPECT_GT(f.sched.stats().edges_skipped, 0u);
}

TEST(SharedPlan, MarksCoalescePerNodePerEpoch) {
  Fixture f;
  // Two sibling leaves under the same deep ancestor: their marks share the
  // common path, so total mark messages < sum of both depths.
  const std::vector<NodeId> touched{62, 63};
  f.sched.note_updates(touched, 1);
  const std::uint64_t depth_sum = f.tree.depth[62] + f.tree.depth[63];
  EXPECT_LT(f.sched.stats().mark_messages, depth_sum);
  EXPECT_GE(f.sched.stats().mark_messages, f.tree.depth[63]);
}

TEST(SharedPlan, RangedGroupPaysInstallBroadcastOnce) {
  Fixture f;
  const auto before = f.net.summary().total_messages;
  f.sched.ensure_stats_group(query::RegionSignature{30, 120, false});
  const auto after_first = f.net.summary().total_messages;
  EXPECT_EQ(after_first - before, 63u);  // one region install per node
  f.sched.ensure_stats_group(query::RegionSignature{30, 120, false});
  EXPECT_EQ(f.net.summary().total_messages, after_first);
}

TEST(SharedPlan, DistinctCollectionsAnswerOverTheRegion) {
  Fixture f;
  const query::RegionSignature region{0, 99, false};
  const GroupId g = f.sched.ensure_distinct_group(region, /*registers=*/0);
  std::uint64_t expected = 0;
  {
    std::vector<Value> seen;
    for (NodeId u = 0; u < f.net.node_count(); ++u) {
      for (const Value v : f.net.items(u)) {
        if (v >= region.lo && v <= region.hi &&
            std::find(seen.begin(), seen.end(), v) == seen.end()) {
          seen.push_back(v);
        }
      }
    }
    expected = seen.size();
  }
  EXPECT_DOUBLE_EQ(f.sched.collect_distinct(g, 0),
                   static_cast<double>(expected));
  // Idempotent within the epoch.
  const auto msgs = f.net.summary().total_messages;
  f.sched.collect_distinct(g, 0);
  EXPECT_EQ(f.net.summary().total_messages, msgs);
  EXPECT_EQ(f.sched.stats().distinct_waves, 1u);
}

}  // namespace
}  // namespace sensornet::service
