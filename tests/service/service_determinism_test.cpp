// Thread-count invariance of the query service.
//
// submit_batch's parse/plan stage runs on the work-stealing farm; everything
// that talks to the network is serialized in submission order. The contract:
// the full answer stream — ids, epochs, values, bounds, flags — and the
// network's bit meter are byte-identical at any thread count, including
// under register/cancel churn.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/net/topology.hpp"
#include "src/service/engine.hpp"

namespace sensornet::service {
namespace {

constexpr Value kBound = 1000;

struct ScenarioResult {
  std::vector<Answer> answers;
  std::vector<std::string> errors;
  std::uint64_t total_bits = 0;
  std::uint64_t cache_hits = 0;
};

/// A fixed mixed scenario: batch admission (some malformed), epochs of
/// drifting updates, and mid-stream register/cancel churn.
ScenarioResult run_scenario(unsigned threads) {
  sim::Network net(net::make_grid(6, 6), /*master_seed=*/21);
  const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
  std::vector<Value> values(36);
  for (NodeId u = 0; u < 36; ++u) {
    values[u] = static_cast<Value>((u * 41) % 500);
  }
  net.set_one_item_per_node(values);

  ServiceConfig cfg;
  cfg.threads = threads;
  QueryService svc(query::Deployment{net, tree, kBound}, cfg);

  ScenarioResult run;
  const auto note = [&](const std::vector<Result<Admission>>& results) {
    for (const auto& r : results) {
      if (!r.ok()) {
        run.errors.push_back(r.error());
      } else if (r.value().answer) {
        run.answers.push_back(*r.value().answer);
      }
    }
  };

  note(svc.submit_batch({
      "SELECT SUM(v) FROM s WHERE v BETWEEN 50 AND 400 EVERY 1 EPOCHS "
      "ERROR 0.1",
      "SELECT AVG(v) FROM s WHERE v BETWEEN 50 AND 400 EVERY 2 EPOCHS "
      "ERROR 0.1",
      "SELECT COUNT(v) FROM s EVERY 1 EPOCHS",
      "SELECT COUNT(v) FROM s WHERE v BETWEEN 400 AND 200 EVERY 1 EPOCHS",
      "SELECT MAX(v) FROM s WHERE v >= 100 EVERY 3 EPOCHS",
      "SELECT MIN(v) FROM s",  // one-shot rides the batch
  }));

  QueryId cancelled = 0;
  for (std::uint32_t e = 1; e <= 8; ++e) {
    std::vector<SensorUpdate> batch;
    for (NodeId u = 0; u < 36; u += 5) {
      const Value delta = (e + u) % 2 == 0 ? 3 : -3;
      const Value v = std::clamp<Value>(values[u] + delta, 0, kBound);
      values[u] = v;
      batch.push_back(SensorUpdate{u, v});
    }
    for (const Answer& a : svc.run_epoch(batch)) run.answers.push_back(a);
    if (e == 3) {
      // Churn: a new subscriber joins the shared region, another leaves.
      const auto joined = svc.submit(
          "SELECT COUNT(v) FROM s WHERE v BETWEEN 50 AND 400 EVERY 1 EPOCHS");
      cancelled = joined.value().id;
    }
    if (e == 5) svc.cancel(cancelled);
  }

  run.total_bits = net.summary(true).total_bits;
  run.cache_hits = svc.telemetry().cache_hits;
  return run;
}

bool answers_identical(const Answer& a, const Answer& b) {
  return a.id == b.id && a.epoch == b.epoch && a.value == b.value &&
         a.error_bound == b.error_bound && a.exact == b.exact &&
         a.from_cache == b.from_cache &&
         a.empty_selection == b.empty_selection;
}

TEST(ServiceDeterminism, AnswerStreamInvariantAcrossThreadCounts) {
  const ScenarioResult base = run_scenario(1);
  EXPECT_FALSE(base.answers.empty());
  EXPECT_EQ(base.errors.size(), 1u);  // the inverted BETWEEN range
  for (const unsigned threads : {2u, 8u}) {
    const ScenarioResult other = run_scenario(threads);
    ASSERT_EQ(other.answers.size(), base.answers.size()) << threads;
    for (std::size_t i = 0; i < base.answers.size(); ++i) {
      EXPECT_TRUE(answers_identical(base.answers[i], other.answers[i]))
          << "answer " << i << " at threads=" << threads;
    }
    EXPECT_EQ(other.errors, base.errors) << threads;
    EXPECT_EQ(other.total_bits, base.total_bits) << threads;
    EXPECT_EQ(other.cache_hits, base.cache_hits) << threads;
  }
}

}  // namespace
}  // namespace sensornet::service
