#include "src/service/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "src/net/topology.hpp"

namespace sensornet::service {
namespace {

constexpr Value kBound = 1000;

struct Fixture {
  sim::Network net;
  net::SpanningTree tree;
  QueryService svc;
  std::vector<Value> mirror;  // ground truth the simulator also holds

  explicit Fixture(ServiceConfig cfg = {}, std::uint64_t seed = 11)
      : net(net::make_grid(6, 6), seed),
        tree(net::bfs_tree(net.graph(), 0)),
        svc(query::Deployment{net, tree, kBound}, cfg) {
    mirror.resize(36);
    for (NodeId u = 0; u < 36; ++u) {
      mirror[u] = static_cast<Value>((u * 53) % 300);
    }
    net.set_one_item_per_node(mirror);
  }

  /// Drifts node `u` by `delta` (clamped to the model) and returns the
  /// update record.
  SensorUpdate drift(NodeId u, Value delta) {
    const Value v =
        std::clamp<Value>(mirror[u] + delta, 0, kBound);
    mirror[u] = v;
    return SensorUpdate{u, v};
  }

  double exact(const std::string& agg, Value lo, Value hi) const {
    RangeStats rs;
    for (const Value v : mirror) {
      if (v >= lo && v <= hi) rs.observe(v);
    }
    if (agg == "COUNT") return static_cast<double>(rs.count);
    if (agg == "SUM") return static_cast<double>(rs.sum);
    if (agg == "MIN") return static_cast<double>(rs.min);
    if (agg == "MAX") return static_cast<double>(rs.max);
    return static_cast<double>(rs.sum) / static_cast<double>(rs.count);
  }
};

TEST(QueryService, OneShotQueriesAnswerAtAdmission) {
  Fixture f;
  const auto r = f.svc.submit("SELECT SUM(v) FROM s WHERE v BETWEEN 50 AND 250");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().continuous);
  ASSERT_TRUE(r.value().answer.has_value());
  const Answer& a = *r.value().answer;
  EXPECT_DOUBLE_EQ(a.value, f.exact("SUM", 50, 250));
  EXPECT_TRUE(a.exact);
  EXPECT_FALSE(a.from_cache);
  EXPECT_EQ(f.svc.live_queries(), 0u);  // one-shots do not register
}

TEST(QueryService, AdmissionForwardsPinnedDiagnostics) {
  Fixture f;
  const auto bad_parse = f.svc.submit("SELECT COUNT(v) FROM s EVERY 0 EPOCHS");
  ASSERT_FALSE(bad_parse.ok());
  EXPECT_NE(bad_parse.error().find(
                "EVERY interval must be a positive whole number of epochs"),
            std::string::npos);
  const auto inverted =
      f.svc.submit("SELECT COUNT(v) FROM s WHERE v BETWEEN 50 AND 10");
  ASSERT_FALSE(inverted.ok());
  EXPECT_NE(inverted.error().find(
                "WHERE range is empty (lower bound exceeds upper bound)"),
            std::string::npos);
  const auto empty = f.svc.submit("SELECT COUNT(v) FROM s WHERE v > 1000");
  ASSERT_FALSE(empty.ok());
  EXPECT_NE(empty.error().find("WHERE range selects no representable value"),
            std::string::npos);
  EXPECT_EQ(f.svc.live_queries(), 0u);
}

TEST(QueryService, ContinuousQueriesAnswerOnTheirSchedule) {
  Fixture f;
  const auto r = f.svc.submit("SELECT COUNT(v) FROM s EVERY 2 EPOCHS");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().continuous);
  EXPECT_FALSE(r.value().answer.has_value());
  EXPECT_EQ(f.svc.live_queries(), 1u);

  EXPECT_TRUE(f.svc.run_epoch({}).empty());   // epoch 1: not due
  const auto due = f.svc.run_epoch({});       // epoch 2: due
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].id, r.value().id);
  EXPECT_EQ(due[0].epoch, 2u);
  EXPECT_DOUBLE_EQ(due[0].value, 36.0);
  EXPECT_TRUE(f.svc.run_epoch({}).empty());   // epoch 3
  EXPECT_EQ(f.svc.run_epoch({}).size(), 1u);  // epoch 4
}

TEST(QueryService, CancelStopsAContinuousQuery) {
  Fixture f;
  const auto r = f.svc.submit("SELECT COUNT(v) FROM s EVERY 1 EPOCHS");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(f.svc.run_epoch({}).size(), 1u);
  EXPECT_TRUE(f.svc.cancel(r.value().id));
  EXPECT_FALSE(f.svc.cancel(r.value().id));  // already gone
  EXPECT_TRUE(f.svc.run_epoch({}).empty());
  EXPECT_EQ(f.svc.live_queries(), 0u);
}

TEST(QueryService, UpdatesFlowIntoAnswers) {
  Fixture f;
  f.svc.submit("SELECT SUM(v) FROM s EVERY 1 EPOCHS").value();
  std::vector<SensorUpdate> batch{f.drift(3, 4), f.drift(17, -4)};
  const auto answers = f.svc.run_epoch(batch);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_DOUBLE_EQ(answers[0].value, f.exact("SUM", 0, kBound));
}

TEST(QueryService, UpdateBatchesAreValidatedAgainstTheDriftModel) {
  Fixture f;
  const Value v0 = f.mirror[0];
  // Too-large jump violates max_delta.
  const std::vector<SensorUpdate> jump{{0, v0 + 5}};
  EXPECT_THROW(f.svc.run_epoch(jump), PreconditionError);
  // Two updates for one node in one epoch.
  Fixture g;
  const std::vector<SensorUpdate> dup{{0, g.mirror[0] + 1},
                                      {0, g.mirror[0] + 2}};
  EXPECT_THROW(g.svc.run_epoch(dup), PreconditionError);
}

TEST(QueryService, CacheServesTolerantContinuousQueries) {
  Fixture f;
  // Whole-domain AVG with a loose tolerance: after the first collection the
  // cache's drift bound (staleness * max_delta) stays inside epsilon for
  // several epochs, so due answers come from the cache with zero traffic.
  f.svc.submit("SELECT AVG(v) FROM s EVERY 1 EPOCHS ERROR 0.2").value();
  auto first = f.svc.run_epoch({});
  ASSERT_EQ(first.size(), 1u);
  EXPECT_FALSE(first[0].from_cache);

  const auto msgs_before = f.net.summary().total_messages;
  for (std::uint32_t e = 0; e < 3; ++e) {
    std::vector<SensorUpdate> batch{f.drift(5, 2)};
    const auto answers = f.svc.run_epoch(batch);
    ASSERT_EQ(answers.size(), 1u);
    EXPECT_TRUE(answers[0].from_cache);
    EXPECT_GT(answers[0].error_bound, 0.0);
    // The deterministic bound must contain the true current answer.
    EXPECT_LE(std::abs(answers[0].value - f.exact("AVG", 0, kBound)),
              answers[0].error_bound);
  }
  // Cache hits cost only the dirty marks, never a collection wave.
  EXPECT_LT(f.net.summary().total_messages - msgs_before, 3u * 36u);
  EXPECT_EQ(f.svc.telemetry().cache_hits, 3u);
}

TEST(QueryService, ExactSubscriberForcesFreshCollectionForTheGroup) {
  Fixture f;
  // Same region, one tolerant and one exact subscriber: the exact one
  // forces a fresh collection each due epoch, and both then ride it.
  f.svc.submit("SELECT AVG(v) FROM s EVERY 1 EPOCHS ERROR 0.2").value();
  f.svc.submit("SELECT AVG(v) FROM s EVERY 1 EPOCHS").value();
  f.svc.run_epoch({});
  std::vector<SensorUpdate> batch{f.drift(9, 3)};
  const auto answers = f.svc.run_epoch(batch);
  ASSERT_EQ(answers.size(), 2u);
  for (const Answer& a : answers) {
    EXPECT_FALSE(a.from_cache);
    EXPECT_TRUE(a.exact);
    EXPECT_DOUBLE_EQ(a.value, f.exact("AVG", 0, kBound));
  }
}

TEST(QueryService, SharedGroupsCollectOncePerEpoch) {
  Fixture f;
  // Eight exact subscribers over the same region: one wave serves all.
  for (int i = 0; i < 8; ++i) {
    f.svc.submit("SELECT SUM(v) FROM s WHERE v BETWEEN 20 AND 200 "
                 "EVERY 1 EPOCHS")
        .value();
  }
  f.svc.run_epoch({});
  EXPECT_EQ(f.svc.plan_stats().stats_waves, 1u);
  const std::vector<SensorUpdate> batch{f.drift(2, 1)};
  const auto answers = f.svc.run_epoch(batch);
  EXPECT_EQ(answers.size(), 8u);
  EXPECT_EQ(f.svc.plan_stats().stats_waves, 2u);
  for (const Answer& a : answers) {
    EXPECT_DOUBLE_EQ(a.value, f.exact("SUM", 20, 200));
  }
}

TEST(QueryService, EmptySelectionsAreFlagged) {
  Fixture f;
  const auto r = f.svc.submit("SELECT MIN(v) FROM s WHERE v BETWEEN 990 AND 1000");
  ASSERT_TRUE(r.ok());
  const Answer& a = *r.value().answer;
  EXPECT_TRUE(a.empty_selection);
  EXPECT_DOUBLE_EQ(a.value, 0.0);
}

TEST(QueryService, DistinctAndMedianRouteAroundTheStatsPath) {
  Fixture f;
  const auto distinct = f.svc.submit("SELECT COUNT_DISTINCT(v) FROM s");
  ASSERT_TRUE(distinct.ok());
  std::vector<Value> seen;
  for (const Value v : f.mirror) {
    if (std::find(seen.begin(), seen.end(), v) == seen.end())
      seen.push_back(v);
  }
  EXPECT_DOUBLE_EQ(distinct.value().answer->value,
                   static_cast<double>(seen.size()));

  const auto median = f.svc.submit("SELECT MEDIAN(v) FROM s");
  ASSERT_TRUE(median.ok());
  std::vector<Value> sorted = f.mirror;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_DOUBLE_EQ(median.value().answer->value,
                   static_cast<double>(sorted[17]));
}

TEST(QueryService, SharedModeShipsFewerBitsThanNaive) {
  // The tentpole claim in miniature: overlapping continuous queries cost
  // far fewer bits under shared aggregation than under per-query execution.
  ServiceConfig naive_cfg;
  naive_cfg.share_aggregation = false;
  naive_cfg.use_cache = false;
  Fixture shared{};
  Fixture naive{naive_cfg};
  const std::vector<std::string> workload{
      "SELECT SUM(v) FROM s WHERE v BETWEEN 20 AND 200 EVERY 1 EPOCHS",
      "SELECT AVG(v) FROM s WHERE v BETWEEN 20 AND 200 EVERY 1 EPOCHS",
      "SELECT MIN(v) FROM s WHERE v BETWEEN 20 AND 200 EVERY 1 EPOCHS",
      "SELECT COUNT(v) FROM s WHERE v BETWEEN 20 AND 200 EVERY 1 EPOCHS",
  };
  for (const auto& q : workload) {
    ASSERT_TRUE(shared.svc.submit(q).ok());
    ASSERT_TRUE(naive.svc.submit(q).ok());
  }
  for (int e = 0; e < 6; ++e) {
    const std::vector<SensorUpdate> su{shared.drift(7, 2)};
    const std::vector<SensorUpdate> nu{naive.drift(7, 2)};
    const auto sa = shared.svc.run_epoch(su);
    const auto na = naive.svc.run_epoch(nu);
    ASSERT_EQ(sa.size(), na.size());
    for (std::size_t i = 0; i < sa.size(); ++i) {
      EXPECT_DOUBLE_EQ(sa[i].value, na[i].value);  // same exact answers
    }
  }
  const auto shared_bits = shared.net.summary(true).total_bits;
  const auto naive_bits = naive.net.summary(true).total_bits;
  EXPECT_LT(shared_bits * 2, naive_bits);
}

TEST(QueryService, TelemetrySnapshotAttributesCostsToQueriesAndGroups) {
  Fixture f;
  const auto tolerant =
      f.svc.submit("SELECT AVG(v) FROM s EVERY 1 EPOCHS ERROR 0.2").value();
  const auto exact =
      f.svc.submit("SELECT SUM(v) FROM s WHERE v BETWEEN 20 AND 200 "
                   "EVERY 1 EPOCHS")
          .value();
  f.svc.run_epoch({});
  for (int e = 0; e < 3; ++e) {
    const std::vector<SensorUpdate> batch{f.drift(5, 2)};
    f.svc.run_epoch(batch);
  }

  const TelemetrySnapshot snap = f.svc.telemetry_snapshot();

  // The tolerant whole-domain query pays its first collection, then rides
  // the cache; the exact ranged query pays a fresh wave every epoch.
  const QueryCost& tc = snap.queries.at(tolerant.id);
  EXPECT_EQ(tc.answers, 4u);
  EXPECT_EQ(tc.fresh, 1u);
  EXPECT_EQ(tc.cache_hits, 3u);
  EXPECT_GT(tc.bits_on_air, 0u);
  EXPECT_GT(tc.bound_slack, 0.0);
  const QueryCost& ec = snap.queries.at(exact.id);
  EXPECT_EQ(ec.answers, 4u);
  EXPECT_EQ(ec.fresh, 4u);
  EXPECT_EQ(ec.cache_hits, 0u);
  EXPECT_DOUBLE_EQ(ec.bound_slack, 0.0);
  EXPECT_GT(ec.bits_on_air, tc.bits_on_air);

  // Cache hit accounting is consistent end to end: engine totals, the
  // cache's own counters, and the per-query ledgers all agree.
  EXPECT_EQ(snap.totals.cache_hits, 3u);
  EXPECT_EQ(snap.cache.hits, 3u);
  EXPECT_EQ(snap.cache.hits, tc.cache_hits + ec.cache_hits);
  EXPECT_GT(snap.cache.misses + snap.cache.absent, 0u);

  // Two distinct regions -> two groups, each with one live subscriber, and
  // every group's collections were paid by its subscribers' fresh answers.
  ASSERT_EQ(snap.groups.size(), 2u);
  std::uint64_t group_collections = 0;
  for (const auto& [gid, gc] : snap.groups) {
    EXPECT_EQ(gc.subscribers, 1u);
    group_collections += gc.collections;
  }
  EXPECT_EQ(group_collections, snap.plan.stats_waves);

  // Marginal-cost conservation: per-query bits plus the service-level mark
  // wave account for every bit the network charged.
  const std::uint64_t total_bits = f.net.summary(true).total_bits;
  std::uint64_t attributed = snap.mark_bits_on_air;
  for (const auto& [id, qc] : snap.queries) attributed += qc.bits_on_air;
  // Group-install broadcasts are charged to groups, not queries.
  for (const auto& [gid, gc] : snap.groups) {
    EXPECT_GT(gc.bits_on_air, 0u);
  }
  std::uint64_t fresh_bits = 0;
  for (const auto& [id, qc] : snap.queries) fresh_bits += qc.bits_on_air;
  EXPECT_LE(attributed, total_bits);
  EXPECT_GT(fresh_bits, 0u);
}

TEST(QueryService, AttributedBitsPlusMarksEqualNetworkTotal) {
  Fixture f;
  // Whole-domain groups only: no install broadcasts, so query bits plus
  // mark-wave bits must reproduce the network total exactly.
  f.svc.submit("SELECT SUM(v) FROM s EVERY 1 EPOCHS").value();
  f.svc.submit("SELECT COUNT(v) FROM s EVERY 2 EPOCHS").value();
  for (int e = 0; e < 4; ++e) {
    const std::vector<SensorUpdate> batch{f.drift(11, 2)};
    f.svc.run_epoch(batch);
  }
  const TelemetrySnapshot snap = f.svc.telemetry_snapshot();
  std::uint64_t attributed = snap.mark_bits_on_air;
  std::uint64_t attributed_msgs = snap.mark_messages;
  for (const auto& [id, qc] : snap.queries) {
    attributed += qc.bits_on_air;
    attributed_msgs += qc.messages;
  }
  const auto total = f.net.summary(true);
  EXPECT_EQ(attributed, total.total_bits);
  EXPECT_EQ(attributed_msgs, total.total_messages);
}

TEST(QueryService, CubeModeAnswersMatchTheNaiveOracle) {
  ServiceConfig cube_cfg;
  cube_cfg.use_cube = true;
  cube_cfg.use_cache = false;
  ServiceConfig naive_cfg;
  naive_cfg.share_aggregation = false;
  naive_cfg.use_cache = false;
  Fixture c{cube_cfg};
  Fixture n{naive_cfg};
  const std::vector<std::string> workload{
      "SELECT SUM(v) FROM s EVERY 1 EPOCHS",
      "SELECT COUNT(v) FROM s EVERY 1 EPOCHS",
      "SELECT MIN(v) FROM s EVERY 1 EPOCHS",
      "SELECT MAX(v) FROM s WHERE v BETWEEN 20 AND 200 EVERY 1 EPOCHS",
      "SELECT AVG(v) FROM s WHERE v BETWEEN 50 AND 250 EVERY 2 EPOCHS",
  };
  for (const auto& q : workload) {
    ASSERT_TRUE(c.svc.submit(q).ok());
    ASSERT_TRUE(n.svc.submit(q).ok());
  }
  for (int e = 0; e < 6; ++e) {
    const NodeId u = static_cast<NodeId>((e * 5) % 36);
    const Value delta = (e % 2 == 0) ? 2 : -2;
    const std::vector<SensorUpdate> cu{c.drift(u, delta)};
    const std::vector<SensorUpdate> nu{n.drift(u, delta)};
    const auto ca = c.svc.run_epoch(cu);
    const auto na = n.svc.run_epoch(nu);
    ASSERT_EQ(ca.size(), na.size());
    for (std::size_t i = 0; i < ca.size(); ++i) {
      // Exact queries: the cube-composed answer is byte-identical to the
      // per-query tree collection, fresh or bracket-served.
      EXPECT_DOUBLE_EQ(ca[i].value, na[i].value) << "epoch " << e;
      EXPECT_EQ(ca[i].exact, na[i].exact);
    }
  }
  // One-shots route through the cube too.
  const auto co = c.svc.submit("SELECT SUM(v) FROM s WHERE v BETWEEN 50 AND 250");
  const auto no = n.svc.submit("SELECT SUM(v) FROM s WHERE v BETWEEN 50 AND 250");
  EXPECT_DOUBLE_EQ(co.value().answer->value, no.value().answer->value);
  EXPECT_GT(c.svc.telemetry().cube_fresh_answers, 0u);
}

TEST(QueryService, CubeModeShipsFewerBitsOnRepeatedWholeDomainQueries) {
  // The PR 10 claim in miniature: whole-domain continuous queries ride one
  // incrementally-fresh root cell instead of paying a collection each.
  ServiceConfig cube_cfg;
  cube_cfg.use_cube = true;
  cube_cfg.use_cache = false;
  ServiceConfig naive_cfg;
  naive_cfg.share_aggregation = false;
  naive_cfg.use_cache = false;
  Fixture c{cube_cfg};
  Fixture n{naive_cfg};
  const std::vector<std::string> workload{
      "SELECT SUM(v) FROM s EVERY 1 EPOCHS",
      "SELECT COUNT(v) FROM s EVERY 1 EPOCHS",
      "SELECT MIN(v) FROM s EVERY 1 EPOCHS",
      "SELECT AVG(v) FROM s EVERY 1 EPOCHS",
  };
  for (const auto& q : workload) {
    ASSERT_TRUE(c.svc.submit(q).ok());
    ASSERT_TRUE(n.svc.submit(q).ok());
  }
  for (int e = 0; e < 6; ++e) {
    const std::vector<SensorUpdate> cu{c.drift(13, 2)};
    const std::vector<SensorUpdate> nu{n.drift(13, 2)};
    const auto ca = c.svc.run_epoch(cu);
    const auto na = n.svc.run_epoch(nu);
    ASSERT_EQ(ca.size(), na.size());
    for (std::size_t i = 0; i < ca.size(); ++i) {
      EXPECT_DOUBLE_EQ(ca[i].value, na[i].value);
    }
  }
  EXPECT_LT(c.net.summary(true).total_bits * 2,
            n.net.summary(true).total_bits);
  const TelemetrySnapshot snap = c.svc.telemetry_snapshot();
  EXPECT_GT(snap.cube.refresh_waves, 0u);
  EXPECT_GT(snap.cube.cell_edges_skipped, 0u);
}

TEST(QueryService, CubeStaleBracketsServeTolerantQueriesWithZeroBits) {
  ServiceConfig cfg;
  cfg.use_cube = true;
  cfg.use_cache = false;  // isolate tier 2: no result-cache hits
  Fixture f{cfg};
  f.svc.submit("SELECT AVG(v) FROM s EVERY 1 EPOCHS ERROR 0.2").value();
  const auto first = f.svc.run_epoch({});
  ASSERT_EQ(first.size(), 1u);
  EXPECT_TRUE(first[0].exact);

  const auto msgs_before = f.net.summary().total_messages;
  for (int e = 0; e < 3; ++e) {
    const std::vector<SensorUpdate> batch{f.drift(5, 2)};
    const auto answers = f.svc.run_epoch(batch);
    ASSERT_EQ(answers.size(), 1u);
    EXPECT_FALSE(answers[0].from_cache);
    EXPECT_GT(answers[0].error_bound, 0.0);
    EXPECT_LE(std::abs(answers[0].value - f.exact("AVG", 0, kBound)),
              answers[0].error_bound);
  }
  EXPECT_EQ(f.svc.telemetry().cube_stale_answers, 3u);
  // Stale serves never touch the air: only the dirty marks cost messages.
  EXPECT_LT(f.net.summary().total_messages - msgs_before, 3u * 36u);
  EXPECT_GT(f.svc.telemetry_snapshot().cube.stale_serves, 0u);
}

TEST(QueryService, CubeServesDistinctFromMaintainedSketches) {
  ServiceConfig cube_cfg;
  cube_cfg.use_cube = true;
  cube_cfg.cube_distinct_registers = 64;
  cube_cfg.use_cache = false;
  ServiceConfig naive_cfg;
  naive_cfg.share_aggregation = false;
  naive_cfg.use_cache = false;
  Fixture c{cube_cfg};
  Fixture n{naive_cfg};
  // ERROR 0.15 sizes the plan to the cube's 64 registers, so the query is
  // cube-eligible; the maintained sketches replicate the one-shot
  // protocol's geometry, making the estimates byte-identical.
  const char* q = "SELECT COUNT_DISTINCT(v) FROM s ERROR 0.15";
  const auto ca = c.svc.submit(q);
  const auto na = n.svc.submit(q);
  ASSERT_TRUE(ca.ok());
  ASSERT_TRUE(na.ok());
  EXPECT_DOUBLE_EQ(ca.value().answer->value, na.value().answer->value);
  EXPECT_EQ(c.svc.telemetry().cube_fresh_answers, 1u);
}

}  // namespace
}  // namespace sensornet::service
