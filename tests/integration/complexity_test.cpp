// The paper's headline separations, as executable assertions:
//   * Fig. 1 beats TAG collect-all asymptotically (log^2 vs linear)
//   * exact COUNT_DISTINCT is linear while hashed LogLog is flat
//   * tree COUNT is logarithmic while the LogLog register wave is loglog
//     in its count payload
//   * bounded-degree trees cap the individual cost that star roots pay
#include <gtest/gtest.h>

#include "src/baseline/tag_collect.hpp"
#include "src/common/mathutil.hpp"
#include "src/common/workload.hpp"
#include "src/core/count_distinct.hpp"
#include "src/core/det_median.hpp"
#include "src/net/topology.hpp"
#include "src/proto/counting_service.hpp"

namespace sensornet {
namespace {

std::uint64_t det_median_bits(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  ValueSet xs(n);
  for (auto& x : xs) {
    x = static_cast<Value>(rng.next_below(n * n));  // log X = 2 log N
  }
  sim::Network net(net::make_line(n), seed);
  net.set_one_item_per_node(xs);
  const auto tree = net::bfs_tree(net.graph(), 0);
  proto::TreeCountingService svc(net, tree);
  core::deterministic_median(svc);
  return net.summary().max_node_bits;
}

std::uint64_t tag_bits(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  ValueSet xs(n);
  for (auto& x : xs) x = static_cast<Value>(rng.next_below(n * n));
  sim::Network net(net::make_line(n), seed);
  net.set_one_item_per_node(xs);
  const auto tree = net::bfs_tree(net.graph(), 0);
  baseline::tag_collect_median(net, tree);
  return net.summary().max_node_bits;
}

TEST(Complexity, Fig1BeatsCollectAllAndGapWidens) {
  // At small N collect-all can win on constants; by N=1024 Fig. 1 must be
  // far cheaper, and the advantage must grow with N.
  const double gap_256 = static_cast<double>(tag_bits(256, 3)) /
                         static_cast<double>(det_median_bits(256, 3));
  const double gap_1024 = static_cast<double>(tag_bits(1024, 3)) /
                          static_cast<double>(det_median_bits(1024, 3));
  EXPECT_GT(gap_1024, 1.0);        // binary search wins outright
  EXPECT_GT(gap_1024, gap_256);    // and the gap widens with N
}

TEST(Complexity, DetMedianGrowthIsPolylog) {
  // Quadrupling N multiplies log^2 N by ~ ((log 4N)/(log N))^2 < 1.5 at
  // these sizes; linear growth would multiply by 4.
  const auto b256 = det_median_bits(256, 7);
  const auto b1024 = det_median_bits(1024, 7);
  EXPECT_LT(static_cast<double>(b1024),
            2.0 * static_cast<double>(b256));
}

TEST(Complexity, TagGrowthIsLinear) {
  const auto b256 = tag_bits(256, 9);
  const auto b1024 = tag_bits(1024, 9);
  EXPECT_GT(static_cast<double>(b1024), 3.0 * static_cast<double>(b256));
}

TEST(Complexity, ExactDistinctLinearApproxFlat) {
  Xoshiro256 rng(11);
  const auto run = [&](std::size_t n, bool exact) {
    const ValueSet xs = generate_with_distinct(n, n, 1 << 22, rng);
    sim::Network net(net::make_line(n), n);
    net.set_one_item_per_node(xs);
    const auto tree = net::bfs_tree(net.graph(), 0);
    if (exact) {
      return core::exact_count_distinct(net, tree).max_node_bits;
    }
    return core::approx_count_distinct(net, tree, 64,
                                       proto::EstimatorKind::kHyperLogLog)
        .max_node_bits;
  };
  const auto exact_128 = run(128, true);
  const auto exact_512 = run(512, true);
  EXPECT_GT(exact_512, 3 * exact_128);  // linear in D

  const auto approx_128 = run(128, false);
  const auto approx_512 = run(512, false);
  // Register wire size is fixed; only the loglog-width can nudge.
  EXPECT_LT(static_cast<double>(approx_512),
            1.5 * static_cast<double>(approx_128));
  EXPECT_LT(approx_512, exact_512);
}

TEST(Complexity, CountWaveResponseBitsAreLogarithmic) {
  // The root's child on a line forwards the full count: its payload is
  // ~log2 N + O(log log N) bits per response.
  for (const std::size_t n : {256UL, 4096UL}) {
    sim::Network net(net::make_line(n), 13);
    net.set_one_item_per_node(ValueSet(n, 1));
    const auto tree = net::bfs_tree(net.graph(), 0);
    proto::TreeCountingService svc(net, tree);
    svc.count_all();
    const std::uint64_t bits = net.summary().max_node_bits;
    EXPECT_LE(bits, 4 * ceil_log2(n) + 24) << "n=" << n;
    EXPECT_GE(bits, ceil_log2(n)) << "n=" << n;
  }
}

TEST(Complexity, BoundedDegreeTreeCapsIndividualCost) {
  // On a star (single-hop BFS tree), the hub receives from every child; a
  // degree-capped tree spreads that load. Individual max-bits must drop.
  const std::size_t n = 128;
  ValueSet xs(n, 5);
  std::uint64_t star_bits = 0;
  std::uint64_t capped_bits = 0;
  {
    sim::Network net(net::make_complete(n), 1);
    net.set_one_item_per_node(xs);
    const auto tree = net::bfs_tree(net.graph(), 0);
    proto::TreeCountingService svc(net, tree);
    svc.count_all();
    star_bits = net.summary().max_node_bits;
  }
  {
    sim::Network net(net::make_complete(n), 1);
    net.set_one_item_per_node(xs);
    const auto tree = net::capped_bfs_tree(net.graph(), 0, 3);
    proto::TreeCountingService svc(net, tree);
    svc.count_all();
    capped_bits = net.summary().max_node_bits;
  }
  EXPECT_LT(capped_bits, star_bits / 4);
}

TEST(Complexity, SearchIterationsScaleWithLogRange) {
  // Iterations = ceil(log2(M-m)): doubling the value range adds one wave
  // per doubling, independent of N.
  for (const unsigned log_range : {8u, 16u}) {
    const std::size_t n = 32;
    ValueSet xs(n);
    for (std::size_t i = 0; i < n; ++i) {
      xs[i] = static_cast<Value>(
          (i * ((1ULL << log_range) - 1)) / (n - 1));
    }
    sim::Network net(net::make_line(n), 3);
    net.set_one_item_per_node(xs);
    const auto tree = net::bfs_tree(net.graph(), 0);
    proto::TreeCountingService svc(net, tree);
    const auto res = core::deterministic_median(svc);
    EXPECT_EQ(res.iterations, log_range) << "range 2^" << log_range;
  }
}

}  // namespace
}  // namespace sensornet
