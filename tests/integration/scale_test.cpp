// Million-node scale: deployment construction must stay practical at
// 2^20 nodes on both regular (grid) and irregular (random-geometric)
// topologies — the latter exercising the spatial-hash bucket builder,
// which replaced the quadratic all-pairs scan precisely so this test can
// exist. Memory is checked through the simulator's own meter: a one-shot
// all-nodes send must leave peak_in_flight_bytes() linear-ish in n.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>

#include "src/common/rng.hpp"
#include "src/net/spanning_tree.hpp"
#include "src/net/topology.hpp"
#include "src/sim/network.hpp"

namespace sensornet::net {
namespace {

constexpr std::size_t kMillion = std::size_t{1} << 20;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

TEST(MillionNodeScale, GridBuildsAndTreeSpans) {
  const auto t0 = std::chrono::steady_clock::now();
  const Graph g = make_grid(1024, 1024);
  const SpanningTree tree = bfs_tree(g, 0);
  const double elapsed = seconds_since(t0);

  EXPECT_EQ(g.node_count(), kMillion);
  EXPECT_TRUE(g.compacted());
  EXPECT_EQ(g.edge_count(), 2u * 1024u * 1023u);
  EXPECT_EQ(tree.parent.size(), kMillion);
  EXPECT_EQ(tree.height(), 1023u + 1023u);  // BFS depth = Manhattan radius
#ifdef NDEBUG
  // Generous ceiling — the point is catching an accidental O(n^2) path,
  // not benchmarking. (Only enforced in optimized builds.)
  EXPECT_LT(elapsed, 120.0);
#else
  (void)elapsed;
#endif
}

TEST(MillionNodeScale, GeometricBuildsConnectedViaBucketGrid) {
  Xoshiro256 rng(20040725);
  const auto t0 = std::chrono::steady_clock::now();
  const Graph g = make_topology(TopologyKind::kGeometric, kMillion, rng);
  const double elapsed = seconds_since(t0);

  EXPECT_EQ(g.node_count(), kMillion);
  EXPECT_TRUE(g.compacted());
  EXPECT_TRUE(g.connected());
  // The connectivity radius keeps expected degree ~ 4 ln n; a collapsed
  // radius (or a bucket-grid bug dropping candidate pairs) shows up here.
  const double avg_degree =
      2.0 * static_cast<double>(g.edge_count()) /
      static_cast<double>(g.node_count());
  EXPECT_GT(avg_degree, 8.0);
  EXPECT_LT(avg_degree, 200.0);
#ifdef NDEBUG
  EXPECT_LT(elapsed, 240.0);
#else
  (void)elapsed;
#endif
}

TEST(MillionNodeScale, PeakInFlightBytesStaysLinearish) {
  // Every node enqueues one small unicast at t=0: the queue must meter
  // O(bytes-in-flight), i.e. a constant per message — not O(n^2) fan-out
  // structures or per-node heap slabs.
  sim::Network net(make_grid(1024, 1024), 1);
  class Sink final : public sim::ProtocolHandler {
   public:
    void on_message(sim::Network&, NodeId, const sim::Message&) override {}
  } sink;
  const auto n = static_cast<NodeId>(net.node_count());
  for (NodeId u = 0; u < n; ++u) {
    BitWriter w;
    w.write_bits(0xAB, 8);
    net.send(sim::Message::make(u, net.graph().neighbors(u)[0], 0, 1,
                                std::move(w)));
  }
  net.run(sink);
  const std::size_t peak = net.peak_in_flight_bytes();
  EXPECT_GE(peak, static_cast<std::size_t>(n) * 8);    // it counted something
  EXPECT_LE(peak, static_cast<std::size_t>(n) * 512);  // ~constant/message
}

}  // namespace
}  // namespace sensornet::net
