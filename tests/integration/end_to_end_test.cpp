// Cross-module scenarios: several protocols sharing one deployment, result
// agreement between independent implementations, reproducibility, and
// network-wide accounting invariants over full algorithm runs.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/baseline/gk_median.hpp"
#include "src/baseline/sampling_median.hpp"
#include "src/baseline/singlehop_median.hpp"
#include "src/baseline/tag_collect.hpp"
#include "src/common/mathutil.hpp"
#include "src/common/workload.hpp"
#include "src/core/count_distinct.hpp"
#include "src/core/det_median.hpp"
#include "src/net/topology.hpp"
#include "src/proto/counting_service.hpp"
#include "src/proto/singlehop.hpp"
#include "src/query/executor.hpp"

namespace sensornet {
namespace {

TEST(EndToEnd, FourMedianImplementationsAgreeExactly) {
  // Fig. 1 over a tree, Fig. 1 over single-hop, TAG collect-all, and the
  // sorted reference all compute the same Definition 2.3 median.
  Xoshiro256 rng(1);
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t n = 10 + rng.next_below(50);
    const Value X = 4095;
    const ValueSet xs = generate_workload(
        trial % 2 ? WorkloadKind::kZipf : WorkloadKind::kUniform, n, X, rng);
    const Value expected = reference_median(xs);

    {
      sim::Network net(net::make_grid(5, (n + 4) / 5), 100 + trial);
      for (NodeId u = 0; u < net.node_count(); ++u) {
        if (u < n) net.set_items(u, {xs[u]});
      }
      const auto tree = net::bfs_tree(net.graph(), 0);
      proto::TreeCountingService svc(net, tree);
      EXPECT_EQ(core::deterministic_median(svc).value, expected);
      EXPECT_EQ(baseline::tag_collect_median(net, tree).median, expected);
    }
    {
      sim::Network net(net::make_complete(n), 200 + trial);
      net.set_one_item_per_node(xs);
      proto::SingleHopCountingService svc(net, 0, X);
      EXPECT_EQ(core::deterministic_median(svc).value, expected);
    }
    {
      sim::Network net(net::make_complete(n), 300 + trial);
      net.set_one_item_per_node(xs);
      EXPECT_EQ(baseline::single_hop_median(net, 0, X).median, expected);
    }
  }
}

TEST(EndToEnd, QueryLayerMatchesDirectProtocolCalls) {
  Xoshiro256 rng(5);
  const std::size_t n = 36;
  const ValueSet xs = generate_workload(WorkloadKind::kUniform, n, 1023, rng);
  sim::Network net(net::make_grid(6, 6), 7);
  net.set_one_item_per_node(xs);
  const auto tree = net::bfs_tree(net.graph(), 0);

  query::Executor exec(query::Deployment{net, tree, 1023});
  const double via_query = exec.run("SELECT MEDIAN(v) FROM sensors").value;

  proto::TreeCountingService svc(net, tree);
  const double direct =
      static_cast<double>(core::deterministic_median(svc).value);
  EXPECT_DOUBLE_EQ(via_query, direct);
}

TEST(EndToEnd, SameSeedSameTrafficSameAnswers) {
  const auto run_once = [](std::uint64_t seed) {
    Xoshiro256 rng(3);
    const ValueSet xs =
        generate_workload(WorkloadKind::kClusteredField, 49, 1 << 14, rng);
    sim::Network net(net::make_grid(7, 7), seed);
    net.set_one_item_per_node(xs);
    const auto tree = net::bfs_tree(net.graph(), 0);
    // Random-mode counting draws from the per-node streams, so the estimate
    // is a deterministic function of the master seed.
    proto::ApxCountConfig cfg;
    cfg.registers = 64;
    proto::TreeApproxCountingService svc(net, tree, cfg);
    const double est = svc.apx_count(proto::Predicate::always_true());
    return std::make_pair(est, net.summary().total_bits);
  };
  const auto a = run_once(42);
  const auto b = run_once(42);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  const auto c = run_once(43);
  EXPECT_NE(a.first, c.first);  // different node randomness, different sketch
}

TEST(EndToEnd, HashedSketchesAreSeedIndependent) {
  // The flip side: hashed-mode (distinct counting) depends only on the data
  // and the salt sequence, never on node randomness — the property that
  // makes it duplicate-insensitive.
  const auto run_once = [](std::uint64_t seed) {
    Xoshiro256 rng(3);
    const ValueSet xs =
        generate_workload(WorkloadKind::kClusteredField, 49, 1 << 14, rng);
    sim::Network net(net::make_grid(7, 7), seed);
    net.set_one_item_per_node(xs);
    const auto tree = net::bfs_tree(net.graph(), 0);
    return core::approx_count_distinct(net, tree, 64,
                                       proto::EstimatorKind::kHyperLogLog)
        .estimate;
  };
  EXPECT_EQ(run_once(42), run_once(43));
}

TEST(EndToEnd, ConservationHoldsAcrossFullAlgorithms) {
  Xoshiro256 rng(9);
  const std::size_t n = 64;
  const ValueSet xs = generate_workload(WorkloadKind::kUniform, n, 1 << 12, rng);
  sim::Network net(net::make_grid(8, 8), 11);
  net.set_one_item_per_node(xs);
  const auto tree = net::bfs_tree(net.graph(), 0);
  proto::TreeCountingService svc(net, tree);
  core::deterministic_median(svc);
  baseline::gk_median(net, tree, 16);
  baseline::sampling_median(net, tree, 16);
  core::exact_count_distinct(net, tree);

  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t msgs_sent = 0;
  std::uint64_t msgs_received = 0;
  for (NodeId u = 0; u < n; ++u) {
    sent += net.stats(u).payload_bits_sent;
    received += net.stats(u).payload_bits_received;
    msgs_sent += net.stats(u).messages_sent;
    msgs_received += net.stats(u).messages_received;
  }
  EXPECT_EQ(sent, received);
  EXPECT_EQ(msgs_sent, msgs_received);
  EXPECT_GT(msgs_sent, 0u);
}

TEST(EndToEnd, MultiItemNodesAcrossAllExactProtocols) {
  // Section 5's model: nodes hold multisets. Load 3 items per node.
  Xoshiro256 rng(13);
  const std::size_t nodes = 20;
  ValueSet all;
  sim::Network net(net::make_line(nodes), 15);
  for (NodeId u = 0; u < nodes; ++u) {
    ValueSet mine(3);
    for (auto& x : mine) x = static_cast<Value>(rng.next_below(1 << 16));
    all.insert(all.end(), mine.begin(), mine.end());
    net.set_items(u, mine);
  }
  const auto tree = net::bfs_tree(net.graph(), 0);
  proto::TreeCountingService svc(net, tree);
  EXPECT_EQ(svc.count_all(), all.size());
  EXPECT_EQ(core::deterministic_median(svc).value, reference_median(all));
  EXPECT_EQ(baseline::tag_collect_median(net, tree).median,
            reference_median(all));
  ValueSet sorted = all;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  EXPECT_EQ(core::exact_count_distinct(net, tree).distinct, sorted.size());
}

TEST(EndToEnd, CappedTreeGivesSameAnswersAsBfs) {
  Xoshiro256 rng(17);
  const std::size_t n = 48;
  const ValueSet xs = generate_workload(WorkloadKind::kUniform, n, 1 << 10, rng);
  sim::Network net(net::make_complete(n), 19);
  net.set_one_item_per_node(xs);
  const auto star = net::bfs_tree(net.graph(), 0);
  const auto capped = net::capped_bfs_tree(net.graph(), 0, 3);
  proto::TreeCountingService svc_star(net, star);
  proto::TreeCountingService svc_capped(net, capped);
  EXPECT_EQ(core::deterministic_median(svc_star).value,
            core::deterministic_median(svc_capped).value);
}

TEST(EndToEnd, RootChoiceDoesNotChangeAnswers) {
  Xoshiro256 rng(21);
  const std::size_t n = 36;
  const ValueSet xs = generate_workload(WorkloadKind::kZipf, n, 1 << 18, rng);
  std::vector<Value> medians;
  for (const NodeId root : {0u, 17u, 35u}) {
    sim::Network net(net::make_grid(6, 6), 23);
    net.set_one_item_per_node(xs);
    const auto tree = net::bfs_tree(net.graph(), root);
    proto::TreeCountingService svc(net, tree);
    medians.push_back(core::deterministic_median(svc).value);
  }
  EXPECT_EQ(medians[0], medians[1]);
  EXPECT_EQ(medians[1], medians[2]);
}

}  // namespace
}  // namespace sensornet
