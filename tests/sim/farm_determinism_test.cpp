// Farm determinism: an experiment matrix executed at --threads 1, 2 and 8
// must produce byte-identical per-trial results — same protocol outputs,
// same per-node accounting, same peak-queue meter — because every trial
// seeds exclusively from trial_seed(master, cell). A 10%-loss lane rides
// along so the loss stream is covered by the same guarantee.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/trial_farm.hpp"
#include "src/net/spanning_tree.hpp"
#include "src/net/topology.hpp"
#include "src/proto/counting_service.hpp"
#include "src/proto/multipath.hpp"
#include "src/sim/network.hpp"

namespace sensornet::sim {
namespace {

constexpr std::uint64_t kMaster = 0xFA121;

ValueSet test_items(std::size_t n) {
  ValueSet xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = static_cast<Value>((i * 104729 + 7) % 1000);
  }
  return xs;
}

struct Outcome {
  std::vector<NodeCommStats> stats;
  std::uint64_t result = 0;
  std::size_t peak_in_flight = 0;
  bool stalled = false;

  bool operator==(const Outcome&) const = default;
};

/// One matrix cell: a tree-wave counting query, even cells lossless and
/// odd cells at 10% loss (where the wave may stall — the partial
/// accounting must still be schedule-independent).
Outcome wave_cell(const net::Graph& graph, const net::SpanningTree& tree,
                  std::size_t cell) {
  Network net(graph, trial_seed(kMaster, cell));
  net.set_one_item_per_node(test_items(graph.node_count()));
  net.set_message_loss(cell % 2 == 1 ? 0.1 : 0.0);
  proto::TreeCountingService svc(net, tree);
  Outcome o;
  try {
    o.result = svc.count(proto::Predicate::less_than(500));
  } catch (const ProtocolError&) {
    o.stalled = true;
  }
  o.stats = net.all_stats();
  o.peak_in_flight = net.peak_in_flight_bytes();
  return o;
}

/// One multipath cell in kRandom mode: exercises the per-node RNG streams,
/// which must derive from the trial seed and nothing else.
Outcome multipath_cell(const net::Graph& graph, std::size_t cell) {
  Network net(graph, trial_seed(kMaster ^ 0xABCD, cell));
  net.set_one_item_per_node(test_items(graph.node_count()));
  net.set_message_loss(cell % 2 == 1 ? 0.1 : 0.0);
  proto::LogLogAgg::Request req;
  req.registers = 32;
  req.width = 5;
  req.mode = proto::LogLogAgg::Mode::kRandom;
  Outcome o;
  const auto res = proto::multipath_loglog_sweep(net, 0, req);
  o.result = res.covered_nodes;
  o.stats = net.all_stats();
  o.peak_in_flight = net.peak_in_flight_bytes();
  return o;
}

TEST(FarmDeterminism, TreeWaveMatrixIdenticalAcrossThreadCounts) {
  const net::Graph grid = net::make_grid(8, 8);
  const net::SpanningTree tree = net::bfs_tree(grid, 0);
  constexpr std::size_t kCells = 12;

  TrialFarm serial(1);
  const auto expected = serial.map<Outcome>(
      kCells, [&](std::size_t cell) { return wave_cell(grid, tree, cell); });

  bool any_stalled = false;
  for (const Outcome& o : expected) any_stalled = any_stalled || o.stalled;
  EXPECT_TRUE(any_stalled) << "loss lane never stalled; matrix has no teeth";

  for (const unsigned threads : {2u, 8u}) {
    TrialFarm farm(threads);
    const auto got = farm.map<Outcome>(kCells, [&](std::size_t cell) {
      return wave_cell(grid, tree, cell);
    });
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t cell = 0; cell < kCells; ++cell) {
      EXPECT_TRUE(got[cell] == expected[cell])
          << "cell " << cell << " diverged at " << threads << " workers";
    }
  }
}

TEST(FarmDeterminism, MultipathMatrixIdenticalAcrossThreadCounts) {
  Xoshiro256 rng(4242);
  const net::Graph geo =
      net::make_topology(net::TopologyKind::kGeometric, 48, rng);
  constexpr std::size_t kCells = 8;

  TrialFarm serial(1);
  const auto expected = serial.map<Outcome>(
      kCells, [&](std::size_t cell) { return multipath_cell(geo, cell); });

  for (const unsigned threads : {2u, 8u}) {
    TrialFarm farm(threads);
    const auto got = farm.map<Outcome>(
        kCells, [&](std::size_t cell) { return multipath_cell(geo, cell); });
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t cell = 0; cell < kCells; ++cell) {
      EXPECT_TRUE(got[cell] == expected[cell])
          << "cell " << cell << " diverged at " << threads << " workers";
    }
  }
}

TEST(FarmDeterminism, DifferentCellsProduceDifferentResults) {
  // Counter-check: cells really do get independent per-node streams —
  // identical outcomes across all cells would mean the seed plumbing is
  // dead. This must use a protocol that draws from the per-node RNGs
  // (multipath kRandom): the loss stream deliberately does NOT vary with
  // the trial seed — it is pinned to the same fixed generator the legacy
  // replica uses, so perf_driver can cross-check delivery counts between
  // simulator generations under loss.
  Xoshiro256 rng(4242);
  const net::Graph geo =
      net::make_topology(net::TopologyKind::kGeometric, 48, rng);
  const Outcome a = multipath_cell(geo, 0);
  const Outcome b = multipath_cell(geo, 2);  // both lossless lanes
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace sensornet::sim
