#include "src/sim/comm_stats.hpp"

#include <gtest/gtest.h>

namespace sensornet::sim {
namespace {

NodeCommStats stats(std::uint64_t sent, std::uint64_t received,
                    std::uint64_t hdr_sent = 0, std::uint64_t hdr_recv = 0) {
  NodeCommStats s;
  s.payload_bits_sent = sent;
  s.payload_bits_received = received;
  s.header_bits_sent = hdr_sent;
  s.header_bits_received = hdr_recv;
  s.messages_sent = sent > 0 ? 1 : 0;
  s.messages_received = received > 0 ? 1 : 0;
  return s;
}

TEST(CommStats, BitsWithAndWithoutHeaders) {
  const NodeCommStats s = stats(10, 20, 3, 4);
  EXPECT_EQ(s.bits(false), 30u);
  EXPECT_EQ(s.bits(true), 37u);
}

TEST(CommStats, Accumulate) {
  NodeCommStats a = stats(1, 2);
  a += stats(10, 20);
  EXPECT_EQ(a.payload_bits_sent, 11u);
  EXPECT_EQ(a.payload_bits_received, 22u);
  EXPECT_EQ(a.messages_sent, 2u);
}

TEST(CommStats, SummaryFindsMaxNode) {
  const std::vector<NodeCommStats> per_node{stats(5, 5), stats(100, 1),
                                            stats(0, 50)};
  const CommSummary s = summarize(per_node, /*rounds=*/7, false);
  EXPECT_EQ(s.max_node_bits, 101u);
  EXPECT_EQ(s.max_node, 1u);
  EXPECT_EQ(s.total_bits, 105u);  // sum of sent
  EXPECT_EQ(s.rounds, 7u);
}

TEST(CommStats, SummaryHeadersIncluded) {
  const std::vector<NodeCommStats> per_node{stats(10, 0, 24, 0)};
  EXPECT_EQ(summarize(per_node, 0, false).total_bits, 10u);
  EXPECT_EQ(summarize(per_node, 0, true).total_bits, 34u);
}

TEST(CommStats, WindowSummarySubtractsBaseline) {
  const std::vector<NodeCommStats> before{stats(100, 100), stats(50, 50)};
  std::vector<NodeCommStats> after = before;
  after[0] += stats(7, 0);
  after[1] += stats(0, 7);
  const CommSummary w = window_summary(before, after, 3, false);
  EXPECT_EQ(w.max_node_bits, 7u);
  EXPECT_EQ(w.total_bits, 7u);
  EXPECT_EQ(w.rounds, 3u);
}

TEST(CommStats, MaxTxRxHelpers) {
  const std::vector<NodeCommStats> per_node{stats(5, 500), stats(80, 2)};
  EXPECT_EQ(max_payload_bits_sent(per_node), 80u);
  EXPECT_EQ(max_payload_bits_received(per_node), 500u);
}

TEST(CommStats, EmptySummary) {
  const CommSummary s = summarize({}, 0, false);
  EXPECT_EQ(s.max_node_bits, 0u);
  EXPECT_EQ(s.max_node, kNoNode);
}

}  // namespace
}  // namespace sensornet::sim
