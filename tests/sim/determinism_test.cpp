// Simulator determinism: same master seed + same protocol ⇒ byte-identical
// per-node accounting across independent runs. This pins down the delivery
// order contract ((time, send-order), preserved across the calendar-queue
// rearchitecture) on both an order-sensitive tree wave and the multipath
// protocol, with and without message loss.
#include <gtest/gtest.h>

#include <utility>

#include "src/common/error.hpp"
#include "src/net/spanning_tree.hpp"
#include "src/net/topology.hpp"
#include "src/proto/counting_service.hpp"
#include "src/proto/multipath.hpp"
#include "src/sim/network.hpp"

namespace sensornet::sim {
namespace {

ValueSet test_items(std::size_t n) {
  ValueSet xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = static_cast<Value>((i * 7919 + 13) % 1000);
  }
  return xs;
}

/// One tree-wave counting query; returns the full accounting image. Under
/// loss the wave stalls and the driver throws — the bits spent up to the
/// stall must still be identical run to run.
std::vector<NodeCommStats> tree_wave_stats(const net::Graph& graph,
                                           std::uint64_t seed, double loss) {
  Network net(graph, seed);
  net.set_one_item_per_node(test_items(graph.node_count()));
  net.set_message_loss(loss);
  const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
  proto::TreeCountingService svc(net, tree);
  std::uint64_t count = 0;
  try {
    count = svc.count(proto::Predicate::less_than(500));
  } catch (const ProtocolError&) {
    // expected under loss: a lost response stalls the wave
  }
  (void)count;
  return net.all_stats();
}

struct MultipathRun {
  std::vector<NodeCommStats> stats;
  sketch::Hll registers;  // move-only, so the struct is too
  std::size_t covered = 0;
};

MultipathRun multipath_run(const net::Graph& graph, std::uint64_t seed,
                           double loss) {
  Network net(graph, seed);
  net.set_one_item_per_node(test_items(graph.node_count()));
  net.set_message_loss(loss);
  proto::LogLogAgg::Request req;
  req.registers = 32;
  req.width = 5;
  req.mode = proto::LogLogAgg::Mode::kRandom;  // draws from per-node streams
  auto res = proto::multipath_loglog_sweep(net, 0, req);
  return {net.all_stats(), std::move(res.registers), res.covered_nodes};
}

net::Graph geometric_graph(std::size_t n) {
  Xoshiro256 rng(4242);
  return net::make_topology(net::TopologyKind::kGeometric, n, rng);
}

TEST(Determinism, TreeWaveIdenticalAccountingAcrossRuns) {
  const net::Graph grid = net::make_grid(6, 6);
  EXPECT_EQ(tree_wave_stats(grid, 77, 0.0), tree_wave_stats(grid, 77, 0.0));
  const net::Graph geo = geometric_graph(48);
  EXPECT_EQ(tree_wave_stats(geo, 91, 0.0), tree_wave_stats(geo, 91, 0.0));
}

TEST(Determinism, TreeWaveIdenticalUnderLoss) {
  const net::Graph grid = net::make_grid(6, 6);
  EXPECT_EQ(tree_wave_stats(grid, 77, 0.1), tree_wave_stats(grid, 77, 0.1));
}

TEST(Determinism, MultipathDifferentSeedsChangeRegisters) {
  // Sanity check that the comparisons have teeth: kRandom mode draws from
  // the per-node streams, so a different master seed must change the
  // aggregated registers. (Bit accounting is content-dependent now — sparse
  // sketch images grow with the entry count — so only same-seed runs are
  // expected to match byte-for-byte.)
  const net::Graph geo = geometric_graph(48);
  const auto a = multipath_run(geo, 123, 0.0);
  const auto b = multipath_run(geo, 124, 0.0);
  EXPECT_FALSE(a.registers == b.registers);
}

TEST(Determinism, MultipathIdenticalAccountingAcrossRuns) {
  const net::Graph geo = geometric_graph(48);
  const auto a = multipath_run(geo, 123, 0.0);
  const auto b = multipath_run(geo, 123, 0.0);
  EXPECT_EQ(a.stats, b.stats);
  EXPECT_EQ(a.registers, b.registers);
  EXPECT_EQ(a.covered, b.covered);
  EXPECT_EQ(a.covered, geo.node_count());  // no loss => full coverage
}

TEST(Determinism, MultipathIdenticalUnderLoss) {
  const net::Graph geo = geometric_graph(48);
  const auto a = multipath_run(geo, 123, 0.1);
  const auto b = multipath_run(geo, 123, 0.1);
  EXPECT_EQ(a.stats, b.stats);
  EXPECT_EQ(a.registers, b.registers);
  EXPECT_EQ(a.covered, b.covered);
}

}  // namespace
}  // namespace sensornet::sim
