#include "src/sim/network.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/net/topology.hpp"

namespace sensornet::sim {
namespace {

/// Records deliveries; optionally relays each message one hop right (for
/// line topologies).
class Recorder : public ProtocolHandler {
 public:
  struct Delivery {
    NodeId receiver;
    std::uint16_t kind;
    SimTime at;
  };
  std::vector<Delivery> deliveries;
  bool relay_right = false;

  void on_message(Network& net, NodeId receiver, const Message& msg) override {
    deliveries.push_back({receiver, msg.kind, net.now()});
    if (relay_right && receiver + 1 < net.node_count()) {
      Message fwd = msg;
      fwd.from = receiver;
      fwd.to = receiver + 1;
      net.send(std::move(fwd));
    }
  }
};

Message one_bit_message(NodeId from, NodeId to, std::uint16_t kind = 1) {
  BitWriter w;
  w.write_bit(true);
  return Message::make(from, to, /*session=*/0, kind, std::move(w));
}

TEST(Network, ItemsRoundTrip) {
  Network net(net::make_line(3), 1);
  net.set_items(1, {10, 20});
  EXPECT_EQ(net.items(1).size(), 2u);
  EXPECT_TRUE(net.items(0).empty());
}

TEST(Network, RejectsNegativeItems) {
  Network net(net::make_line(2), 1);
  EXPECT_THROW(net.set_items(0, {-1}), PreconditionError);
}

TEST(Network, OneItemPerNode) {
  Network net(net::make_line(3), 1);
  net.set_one_item_per_node({5, 6, 7});
  ASSERT_EQ(net.items(2).size(), 1u);
  EXPECT_EQ(net.items(2)[0], 7);
  EXPECT_THROW(net.set_one_item_per_node({1, 2}), PreconditionError);
}

TEST(Network, SendRequiresEdge) {
  Network net(net::make_line(3), 1);
  EXPECT_THROW(net.send(one_bit_message(0, 2)), ProtocolError);
}

TEST(Network, UnitDelayDelivery) {
  Network net(net::make_line(3), 1);
  net.send(one_bit_message(0, 1));
  Recorder rec;
  rec.relay_right = true;
  net.run(rec);
  ASSERT_EQ(rec.deliveries.size(), 2u);
  EXPECT_EQ(rec.deliveries[0].receiver, 1u);
  EXPECT_EQ(rec.deliveries[0].at, 1u);
  EXPECT_EQ(rec.deliveries[1].receiver, 2u);
  EXPECT_EQ(rec.deliveries[1].at, 2u);
}

TEST(Network, FifoTieBreakIsDeterministic) {
  Network net(net::make_complete(4), 1);
  net.send(one_bit_message(0, 1, 1));
  net.send(one_bit_message(0, 2, 2));
  net.send(one_bit_message(0, 3, 3));
  Recorder rec;
  net.run(rec);
  ASSERT_EQ(rec.deliveries.size(), 3u);
  EXPECT_EQ(rec.deliveries[0].kind, 1u);
  EXPECT_EQ(rec.deliveries[1].kind, 2u);
  EXPECT_EQ(rec.deliveries[2].kind, 3u);
}

TEST(Network, AccountingChargesBothEnds) {
  Network net(net::make_line(2), 1);
  BitWriter w;
  w.write_bits(0b10110, 5);
  net.send(Message::make(0, 1, 0, 1, std::move(w)));
  Recorder rec;
  net.run(rec);
  EXPECT_EQ(net.stats(0).payload_bits_sent, 5u);
  EXPECT_EQ(net.stats(0).payload_bits_received, 0u);
  EXPECT_EQ(net.stats(1).payload_bits_received, 5u);
  EXPECT_EQ(net.stats(0).header_bits_sent, kHeaderBits);
  EXPECT_EQ(net.stats(1).header_bits_received, kHeaderBits);
  EXPECT_EQ(net.stats(0).messages_sent, 1u);
  EXPECT_EQ(net.stats(1).messages_received, 1u);
}

TEST(Network, ConservationTotalSentEqualsReceived) {
  Network net(net::make_grid(3, 3), 1);
  // Flood some traffic.
  for (NodeId u = 0; u < 9; ++u) {
    for (const NodeId v : net.graph().neighbors(u)) {
      net.send(one_bit_message(u, v));
    }
  }
  Recorder rec;
  net.run(rec);
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  for (NodeId u = 0; u < 9; ++u) {
    sent += net.stats(u).payload_bits_sent;
    received += net.stats(u).payload_bits_received;
  }
  EXPECT_EQ(sent, received);
  EXPECT_GT(sent, 0u);
}

TEST(Network, MediumBroadcastChargesAllReceivers) {
  Network net(net::make_complete(5), 1);
  BitWriter w;
  w.write_bits(0xF, 4);
  net.send_medium(Message::make(2, kNoNode, 0, 1, std::move(w)));
  Recorder rec;
  net.run(rec);
  EXPECT_EQ(net.stats(2).payload_bits_sent, 4u);  // transmits once
  for (NodeId u = 0; u < 5; ++u) {
    if (u == 2) continue;
    EXPECT_EQ(net.stats(u).payload_bits_received, 4u);
  }
  EXPECT_EQ(rec.deliveries.size(), 4u);
}

TEST(Network, MediumBroadcastNeedsSingleHop) {
  Network net(net::make_line(3), 1);
  EXPECT_THROW(net.send_medium(one_bit_message(0, kNoNode)), ProtocolError);
}

TEST(Network, DeliveryBudgetGuardsRunaways) {
  Network net(net::make_line(2), 1);
  net.send(one_bit_message(0, 1));
  // A handler that ping-pongs forever.
  class PingPong : public ProtocolHandler {
   public:
    void on_message(Network& net, NodeId receiver, const Message& msg) override {
      Message reply = msg;
      reply.from = receiver;
      reply.to = msg.from;
      net.send(std::move(reply));
    }
  } handler;
  EXPECT_THROW(net.run(handler, /*max_deliveries=*/100), ProtocolError);
}

TEST(Network, DeliveryBudgetEnforcedBeforeDispatch) {
  Network net(net::make_complete(4), 1);
  net.send(one_bit_message(0, 1, 1));
  net.send(one_bit_message(0, 2, 2));
  net.send(one_bit_message(0, 3, 3));
  Recorder rec;
  // Budget 2, three queued: the guard must fire BEFORE the third dispatch —
  // the handler sees exactly max_deliveries messages, never one more.
  EXPECT_THROW(net.run(rec, /*max_deliveries=*/2), ProtocolError);
  ASSERT_EQ(rec.deliveries.size(), 2u);
  EXPECT_EQ(rec.deliveries[0].kind, 1u);
  EXPECT_EQ(rec.deliveries[1].kind, 2u);
}

TEST(Network, DeliveryBudgetExactlyMetSucceeds) {
  Network net(net::make_complete(3), 1);
  net.send(one_bit_message(0, 1, 1));
  net.send(one_bit_message(0, 2, 2));
  Recorder rec;
  EXPECT_NO_THROW(net.run(rec, /*max_deliveries=*/2));
  EXPECT_EQ(rec.deliveries.size(), 2u);
}

TEST(Network, PeakInFlightBytesIsTracked) {
  Network net(net::make_line(2), 1);
  BitWriter w;
  for (int i = 0; i < 5; ++i) w.write_bits(0xFFFFFFFFFFFFFFFFULL, 64);
  net.send(Message::make(0, 1, 0, 1, std::move(w)));  // 40-byte heap slab
  Recorder rec;
  net.run(rec);
  EXPECT_GE(net.peak_in_flight_bytes(), 40u + sizeof(Message));
  net.reset_accounting();
  EXPECT_EQ(net.peak_in_flight_bytes(), 0u);
}

TEST(Network, WatchedEdgeCountsBothDirections) {
  Network net(net::make_line(3), 1);
  net.watch_edge(1, 2);
  net.send(one_bit_message(0, 1));  // not on the watched edge
  Recorder rec;
  net.run(rec);
  EXPECT_EQ(net.watched_edge_bits(), 0u);
  net.send(one_bit_message(1, 2));
  net.send(one_bit_message(2, 1));
  net.run(rec);
  EXPECT_EQ(net.watched_edge_bits(), 2u);
}

TEST(Network, ResetAccountingClears) {
  Network net(net::make_line(2), 1);
  net.send(one_bit_message(0, 1));
  Recorder rec;
  net.run(rec);
  ASSERT_GT(net.stats(0).payload_bits_sent, 0u);
  net.reset_accounting();
  EXPECT_EQ(net.stats(0).payload_bits_sent, 0u);
  EXPECT_EQ(net.now(), 0u);
}

TEST(Network, RngStreamsPerNodeDiffer) {
  Network net(net::make_line(2), 42);
  EXPECT_NE(net.rng(0).next_u64(), net.rng(1).next_u64());
}

}  // namespace
}  // namespace sensornet::sim
