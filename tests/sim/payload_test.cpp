#include "src/sim/payload.hpp"

#include <gtest/gtest.h>

#include "src/sim/message.hpp"

// GCC 12's -Wuse-after-free cannot see that the refcount keeps the shared
// slab alive on the traced path (releasing one reference while another
// Payload still holds the slab), so it flags reads through the surviving
// reference. The sanitizer lane runs these tests under ASan, which verifies
// the lifetime for real.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wuse-after-free"
#endif

namespace sensornet::sim {
namespace {

std::vector<std::uint8_t> pattern(std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(i * 3);
  return v;
}

TEST(Payload, EmptyByDefault) {
  Payload p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.size_bytes(), 0u);
  EXPECT_EQ(p.share_count(), 1u);
}

TEST(Payload, SmallPayloadIsInlineAndCopiesAreIndependentObjects) {
  const auto bytes = pattern(Payload::kInlineBytes);
  Payload a(bytes.data(), bytes.size());
  EXPECT_EQ(a.share_count(), 1u);  // inline: nothing to share
  Payload b = a;
  EXPECT_EQ(b.share_count(), 1u);
  EXPECT_NE(a.data(), b.data());  // each object carries its own bytes
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    EXPECT_EQ(a.data()[i], bytes[i]);
    EXPECT_EQ(b.data()[i], bytes[i]);
  }
}

TEST(Payload, LargePayloadSharesOneSlab) {
  const auto bytes = pattern(40);
  Payload a(bytes.data(), bytes.size());
  EXPECT_EQ(a.share_count(), 1u);
  {
    Payload b = a;
    Payload c = b;
    EXPECT_EQ(a.share_count(), 3u);
    EXPECT_EQ(a.data(), b.data());  // literally the same slab
    EXPECT_EQ(a.data(), c.data());
  }
  EXPECT_EQ(a.share_count(), 1u);  // copies released their references
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    EXPECT_EQ(a.data()[i], bytes[i]);
  }
}

TEST(Payload, MoveStealsTheSlab) {
  const auto bytes = pattern(40);
  Payload a(bytes.data(), bytes.size());
  const std::uint8_t* slab = a.data();
  Payload b = std::move(a);
  EXPECT_EQ(b.data(), slab);
  EXPECT_EQ(b.share_count(), 1u);
  EXPECT_EQ(b.size_bytes(), 40u);
}

TEST(Payload, AssignmentReleasesTheOldSlab) {
  const auto big = pattern(64);
  Payload a(big.data(), big.size());
  Payload keep = a;
  EXPECT_EQ(keep.share_count(), 2u);
  a = Payload();  // a drops its reference
  EXPECT_EQ(keep.share_count(), 1u);
  EXPECT_TRUE(a.empty());
}

TEST(Payload, MessagesBuiltWithSharedPayloadShareTheSlab) {
  const auto bytes = pattern(40);
  Payload slab(bytes.data(), bytes.size());
  const Message m1 = Message::with_payload(0, 1, 7, 1, slab, 320);
  const Message m2 = Message::with_payload(0, 2, 7, 1, slab, 320);
  EXPECT_EQ(slab.share_count(), 3u);
  EXPECT_EQ(m1.payload.data(), m2.payload.data());
  // Readers over the shared slab see the same bits.
  BitReader r1 = m1.reader();
  BitReader r2 = m2.reader();
  EXPECT_EQ(r1.read_bits(32), r2.read_bits(32));
}

}  // namespace
}  // namespace sensornet::sim
