// Quickstart: simulate a 10x10 sensor grid and ask it for the median
// reading, the paper's way (Fig. 1) and the naive way (collect-all).
//
//   $ ./quickstart
#include <iostream>

#include "src/baseline/tag_collect.hpp"
#include "src/common/workload.hpp"
#include "src/core/det_median.hpp"
#include "src/net/spanning_tree.hpp"
#include "src/net/topology.hpp"
#include "src/proto/counting_service.hpp"
#include "src/sim/network.hpp"

int main() {
  using namespace sensornet;

  // 1. A 16x16 grid deployment; every mote holds one reading in [0, 4095].
  sim::Network net(net::make_grid(16, 16), /*master_seed=*/2024);
  Xoshiro256 rng(7);
  net.set_one_item_per_node(
      generate_workload(WorkloadKind::kClusteredField, 256, 4095, rng));

  // 2. A BFS aggregation tree rooted at the gateway (node 0).
  const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);

  // 3. MEDIAN via binary search over COUNTP waves (the paper's Fig. 1).
  proto::TreeCountingService counting(net, tree);
  const auto median = core::deterministic_median(counting);
  const auto fig1 = net.summary();
  std::cout << "median reading        : " << median.value << "\n"
            << "COUNTP waves          : " << median.countp_calls << "\n"
            << "max bits on any mote  : " << fig1.max_node_bits << "\n"
            << "completion (rounds)   : " << fig1.rounds << "\n\n";

  // 4. The same answer by shipping every reading to the gateway (TAG's
  //    holistic-aggregate plan) — compare the per-mote bit bill.
  net.reset_accounting();
  const auto tag = baseline::tag_collect_median(net, tree);
  const auto collect = net.summary();
  std::cout << "collect-all median    : " << tag.median << "\n"
            << "max bits on any mote  : " << collect.max_node_bits << "\n\n";

  std::cout << "binary search saves "
            << (collect.max_node_bits >= fig1.max_node_bits
                    ? collect.max_node_bits - fig1.max_node_bits
                    : 0)
            << " bits at the bottleneck mote ("
            << static_cast<double>(collect.max_node_bits) /
                   static_cast<double>(fig1.max_node_bits)
            << "x).\n";
  return 0;
}
