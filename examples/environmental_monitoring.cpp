// Environmental monitoring: a 400-mote random-geometric deployment measuring
// a clustered temperature field. Compares the full menu of median/quantile
// protocols on accuracy, per-mote bits, and radio energy — the decision a
// deployment engineer actually faces.
//
//   $ ./environmental_monitoring
#include <cmath>
#include <iomanip>
#include <iostream>
#include <memory>

#include "src/baseline/gk_median.hpp"
#include "src/baseline/sampling_median.hpp"
#include "src/baseline/tag_collect.hpp"
#include "src/common/mathutil.hpp"
#include "src/common/workload.hpp"
#include "src/core/apx_median2.hpp"
#include "src/core/det_median.hpp"
#include "src/net/spanning_tree.hpp"
#include "src/net/topology.hpp"
#include "src/proto/counting_service.hpp"
#include "src/sim/energy.hpp"
#include "src/sim/network.hpp"

namespace {

using namespace sensornet;

constexpr std::size_t kMotes = 400;
constexpr Value kMaxReading = 1 << 14;  // 0.01 degC units, [0, 163.84]

struct Report {
  std::string name;
  Value value;
  std::uint64_t max_bits;
  double max_energy_nj;
};

void print(const Report& r, Value truth, std::size_t n, const ValueSet& xs) {
  const double rank = static_cast<double>(rank_below(xs, r.value + 1));
  const double rank_err = std::abs(rank - static_cast<double>(n) / 2.0) /
                          static_cast<double>(n);
  std::cout << std::left << std::setw(34) << r.name << " value="
            << std::setw(6) << r.value << " (true " << truth
            << ")  rank-err=" << std::fixed << std::setprecision(3)
            << rank_err << "  max-bits/mote=" << std::setw(8) << r.max_bits
            << " hottest-mote=" << std::setprecision(1) << r.max_energy_nj
            << " nJ\n";
}

}  // namespace

int main() {
  Xoshiro256 rng(99);
  const net::GeometricLayout layout =
      net::make_random_geometric(kMotes, 0.09, rng);
  const ValueSet readings = generate_workload(WorkloadKind::kClusteredField,
                                              kMotes, kMaxReading, rng);
  const Value truth = reference_median(readings);
  const sim::EnergyModel radio;

  std::cout << "deployment: " << kMotes << " motes, "
            << layout.graph.edge_count() << " radio links, field median "
            << truth << "\n\n";

  const auto fresh = [&]() {
    auto net = std::make_unique<sim::Network>(layout.graph, 7);
    net->set_one_item_per_node(readings);
    return net;
  };

  {
    auto net = fresh();
    const auto tree = net::bfs_tree(net->graph(), 0);
    proto::TreeCountingService svc(*net, tree);
    const auto res = core::deterministic_median(svc);
    print({"Fig.1 exact binary search", res.value,
           net->summary().max_node_bits,
           radio.max_node_nj(net->all_stats())},
          truth, kMotes, readings);
  }
  {
    auto net = fresh();
    const auto tree = net::bfs_tree(net->graph(), 0);
    core::ApxMedian2Params params;
    params.beta = 1.0 / 128;
    params.epsilon = 0.25;
    params.rep_scale = 0.05;
    params.registers = 64;
    params.max_value_bound = kMaxReading;
    const auto res = core::approx_median2(*net, tree, params);
    print({"Fig.4 polyloglog zoom", res.value, net->summary().max_node_bits,
           radio.max_node_nj(net->all_stats())},
          truth, kMotes, readings);
  }
  {
    auto net = fresh();
    const auto tree = net::bfs_tree(net->graph(), 0);
    const auto res = baseline::tag_collect_median(*net, tree);
    print({"TAG collect-all", res.median, net->summary().max_node_bits,
           radio.max_node_nj(net->all_stats())},
          truth, kMotes, readings);
  }
  {
    auto net = fresh();
    const auto tree = net::bfs_tree(net->graph(), 0);
    const auto res = baseline::sampling_median(*net, tree, 48);
    print({"uniform sampling (s=48)", res.median,
           net->summary().max_node_bits, radio.max_node_nj(net->all_stats())},
          truth, kMotes, readings);
  }
  {
    auto net = fresh();
    const auto tree = net::bfs_tree(net->graph(), 0);
    const auto res = baseline::gk_median(*net, tree, 16);
    print({"GK quantile summary (B=16)", res.median,
           net->summary().max_node_bits, radio.max_node_nj(net->all_stats())},
          truth, kMotes, readings);
  }

  std::cout << "\nnote: Fig.4's bill is dominated by its repetition-schedule "
               "constants (~m * 32q per search step). Its win is asymptotic "
               "-- see bench/exp_apx_median2 for the flat (log log N)^3 "
               "ratio vs Fig.1's growing log^2 N.\n";

  // Quantile sweep with the exact driver: the generalization of Section 3.4.
  std::cout << "\nquantiles via Fig.1 order statistics (one deployment, "
               "cumulative accounting):\n";
  auto net = fresh();
  const auto tree = net::bfs_tree(net->graph(), 0);
  proto::TreeCountingService svc(*net, tree);
  const auto n = svc.count_all();
  for (const double phi : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    const auto twice_k = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::llround(2 * phi * static_cast<double>(n))));
    const auto res = core::deterministic_order_statistic(svc, twice_k);
    std::cout << "  phi=" << std::fixed << std::setprecision(2) << phi
              << " -> " << res.value << "\n";
  }
  std::cout << "  total max-bits/mote for all five quantiles: "
            << net->summary().max_node_bits << "\n";
  return 0;
}
