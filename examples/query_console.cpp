// The TAG-style query interface end to end: SQL-ish text in, planned
// protocol out, per-query bit bill printed. Runs a canned session, or reads
// queries from stdin when piped.
//
//   $ ./query_console
//   $ echo "SELECT MEDIAN(temp) FROM sensors ERROR 0.01" | ./query_console -
#include <iostream>
#include <string>

#include "src/common/workload.hpp"
#include "src/net/spanning_tree.hpp"
#include "src/net/topology.hpp"
#include "src/query/executor.hpp"
#include "src/query/lexer.hpp"
#include "src/sim/network.hpp"

int main(int argc, char** argv) {
  using namespace sensornet;

  sim::Network net(net::make_grid(16, 16), 31415);
  Xoshiro256 rng(3);
  net.set_one_item_per_node(
      generate_workload(WorkloadKind::kClusteredField, 256, 1 << 12, rng));
  const net::SpanningTree tree = net::bfs_tree(net.graph(), 0);
  query::Executor exec(query::Deployment{net, tree, 1 << 12});

  const auto run_one = [&](const std::string& text) {
    std::cout << "sensornet> " << text << "\n";
    try {
      const auto res = exec.run(text);
      std::cout << "  = " << res.value << (res.is_exact ? "  (exact)" : "  (approximate)")
                << "\n  plan: " << res.plan
                << "\n  cost: max " << res.max_node_bits
                << " bits/mote, " << res.total_bits << " bits total, "
                << res.messages << " messages\n\n";
    } catch (const query::QueryError& e) {
      std::cout << "  syntax error: " << e.what() << "\n\n";
    } catch (const PreconditionError& e) {
      std::cout << "  error: " << e.what() << "\n\n";
    }
  };

  if (argc > 1 && std::string(argv[1]) == "-") {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!line.empty()) run_one(line);
    }
    return 0;
  }

  std::cout << "256-mote grid, clustered readings in [0, 4096). Canned "
               "session:\n\n";
  for (const char* q : {
           "SELECT COUNT(temp) FROM sensors",
           "SELECT MIN(temp) FROM sensors",
           "SELECT MAX(temp) FROM sensors",
           "SELECT AVG(temp) FROM sensors",
           "SELECT SUM(temp) FROM sensors ERROR 0.1",
           "SELECT MEDIAN(temp) FROM sensors",
           "SELECT MEDIAN(temp) FROM sensors ERROR 0.01 CONFIDENCE 0.75",
           "SELECT QUANTILE(temp, 0.9) FROM sensors",
           "SELECT COUNT(temp) FROM sensors WHERE temp >= 2048",
           "SELECT COUNT_DISTINCT(temp) FROM sensors",
           "SELECT COUNT_DISTINCT(temp) FROM sensors ERROR 0.1",
           "SELECT MEDIAN(temp) FROM sensors WHERE temp < 1000",
       }) {
    run_one(q);
  }
  return 0;
}
