// Distinct-event counting: motes log event type identifiers (many
// duplicates). Exact distinct counting pays linearly at the bottleneck;
// hashed-LogLog pays a fixed sketch. Also demonstrates Theorem 5.1's
// reduction: answering set-disjointness through COUNT_DISTINCT.
//
//   $ ./distinct_events
#include <cmath>
#include <iostream>

#include "src/common/workload.hpp"
#include "src/core/count_distinct.hpp"
#include "src/core/disjointness.hpp"
#include "src/net/spanning_tree.hpp"
#include "src/net/topology.hpp"
#include "src/sim/network.hpp"

int main() {
  using namespace sensornet;
  Xoshiro256 rng(5);

  std::cout << "=== exact vs approximate COUNT_DISTINCT ===\n";
  const std::size_t motes = 600;
  for (const std::size_t distinct : {12UL, 120UL, 600UL}) {
    const ValueSet events =
        generate_with_distinct(motes, distinct, 1 << 24, rng);

    sim::Network net(net::make_grid(20, 30), 11);
    net.set_one_item_per_node(events);
    const auto tree = net::bfs_tree(net.graph(), 0);

    const auto exact = core::exact_count_distinct(net, tree);
    const auto approx = core::approx_count_distinct(
        net, tree, 256, proto::EstimatorKind::kHyperLogLog);

    std::cout << "true D=" << distinct << "  exact=" << exact.distinct
              << " (bottleneck " << exact.max_node_bits << " bits)"
              << "  approx=" << std::llround(approx.estimate)
              << " (bottleneck " << approx.max_node_bits
              << " bits, expected sigma "
              << approx.expected_sigma * 100 << "%)\n";
  }

  std::cout << "\n=== Theorem 5.1: set disjointness through COUNT_DISTINCT "
               "===\n";
  std::cout << "two field stations each observed 200 event ids; are the "
               "observation sets disjoint?\n";
  for (const std::size_t shared : {0UL, 1UL, 50UL}) {
    const auto inst = generate_disjointness(200, shared, 1 << 24, rng);
    const auto rep =
        core::solve_disjointness_via_count_distinct(inst.side_a, inst.side_b);
    std::cout << "  shared=" << shared << " -> declared "
              << (rep.declared_disjoint ? "DISJOINT" : "OVERLAPPING")
              << " (distinct=" << rep.distinct_count << ", bits across the "
              << "station boundary: " << rep.cut_bits << ")\n";
  }
  std::cout << "note: one shared id flips the answer — that sensitivity is "
               "exactly why exact COUNT_DISTINCT cannot be cheap (Omega(n)).\n";
  return 0;
}
