// Immutable, shareable message payload storage.
//
// The simulator's hot path moves the same bytes many times — a shared-medium
// broadcast hands one payload to N-1 receivers, a tree broadcast forwards it
// to every child — so payloads are immutable slabs shared by reference count
// instead of deep-copied vectors. Payloads of at most kInlineBytes live
// entirely inside the Payload object (no allocation at all: the common case,
// since most protocol messages are a few dozen bits); larger ones live in a
// single heap slab whose refcount is a plain (non-atomic) counter — the
// simulator is single-threaded by design.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <utility>

namespace sensornet::sim {

class Payload {
 public:
  /// Payloads at or below this size are stored inline, allocation-free.
  static constexpr std::uint32_t kInlineBytes = 16;

  Payload() = default;

  /// Copies `n` bytes into inline storage or one freshly allocated slab.
  Payload(const std::uint8_t* bytes, std::size_t n)
      : size_(static_cast<std::uint32_t>(n)) {
    if (n == 0) return;
    std::uint8_t* dst;
    if (n <= kInlineBytes) {
      dst = inline_.data();
    } else {
      // One allocation holds the refcount and the bytes: refcount in
      // slab_[0], payload bytes starting at slab_ + 1.
      slab_ = new std::uint32_t[1 + (n + sizeof(std::uint32_t) - 1) /
                                        sizeof(std::uint32_t)];
      slab_[0] = 1;
      dst = reinterpret_cast<std::uint8_t*>(slab_ + 1);
    }
    std::memcpy(dst, bytes, n);
  }

  Payload(const Payload& other)
      : slab_(other.slab_), size_(other.size_), inline_(other.inline_) {
    if (slab_ != nullptr) ++slab_[0];
  }

  Payload(Payload&& other) noexcept
      : slab_(std::exchange(other.slab_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        inline_(other.inline_) {}

  Payload& operator=(const Payload& other) {
    if (this != &other) {
      Payload copy(other);
      swap(copy);
    }
    return *this;
  }

  Payload& operator=(Payload&& other) noexcept {
    if (this != &other) {
      release();
      slab_ = std::exchange(other.slab_, nullptr);
      size_ = std::exchange(other.size_, 0);
      inline_ = other.inline_;
    }
    return *this;
  }

  ~Payload() { release(); }

  const std::uint8_t* data() const {
    return slab_ != nullptr ? reinterpret_cast<const std::uint8_t*>(slab_ + 1)
                            : inline_.data();
  }
  std::uint32_t size_bytes() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// How many Payload objects currently share the backing storage (1 for
  /// inline or empty payloads). Exposed for tests and the perf driver.
  std::uint32_t share_count() const { return slab_ != nullptr ? slab_[0] : 1; }

  void swap(Payload& other) noexcept {
    std::swap(slab_, other.slab_);
    std::swap(size_, other.size_);
    std::swap(inline_, other.inline_);
  }

 private:
  void release() {
    if (slab_ != nullptr && --slab_[0] == 0) delete[] slab_;
    slab_ = nullptr;
  }

  std::uint32_t* slab_ = nullptr;  // [0] = refcount, bytes follow
  std::uint32_t size_ = 0;
  std::array<std::uint8_t, kInlineBytes> inline_{};
};

}  // namespace sensornet::sim
