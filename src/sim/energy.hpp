// First-order radio energy model.
//
// The paper's motivation: "sending or receiving a small message may consume
// as much power as a thousand processing cycles". This model converts the
// bit meters into energy figures for reporting; defaults approximate a
// CC2420-class 250 kbps radio at 0 dBm.
#pragma once

#include "src/sim/comm_stats.hpp"

namespace sensornet::sim {

struct EnergyModel {
  double nj_per_bit_tx = 0.60;  // ~35 mA * 1.8 V / 250 kbps, amortized
  double nj_per_bit_rx = 0.67;

  /// Energy one node spent on communication, in nanojoules.
  double node_nj(const NodeCommStats& st, bool include_headers = true) const {
    const double tx = static_cast<double>(
        st.payload_bits_sent + (include_headers ? st.header_bits_sent : 0));
    const double rx = static_cast<double>(
        st.payload_bits_received +
        (include_headers ? st.header_bits_received : 0));
    return tx * nj_per_bit_tx + rx * nj_per_bit_rx;
  }

  /// The hottest node's energy — the deployment's lifetime bottleneck.
  double max_node_nj(const std::vector<NodeCommStats>& per_node,
                     bool include_headers = true) const {
    double best = 0.0;
    for (const auto& st : per_node) {
      const double e = node_nj(st, include_headers);
      if (e > best) best = e;
    }
    return best;
  }
};

}  // namespace sensornet::sim
