// Per-node communication accounting — the paper's complexity measure.
//
// "The communication complexity of a protocol [is] the maximum, over all
// inputs, of the number of bits transmitted and received by any node"
// (Section 2.1). NodeCommStats meters one node; CommSummary reduces a whole
// run to the quantities the experiments report.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/types.hpp"

namespace sensornet::sim {

struct NodeCommStats {
  std::uint64_t payload_bits_sent = 0;
  std::uint64_t payload_bits_received = 0;
  std::uint64_t header_bits_sent = 0;
  std::uint64_t header_bits_received = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;

  /// Bits transmitted plus received by this node.
  std::uint64_t bits(bool include_headers) const {
    std::uint64_t b = payload_bits_sent + payload_bits_received;
    if (include_headers) b += header_bits_sent + header_bits_received;
    return b;
  }

  NodeCommStats& operator+=(const NodeCommStats& other);

  /// Field-wise equality — determinism tests compare whole runs with it.
  bool operator==(const NodeCommStats&) const = default;
};

/// Whole-run reduction over all nodes.
struct CommSummary {
  std::uint64_t max_node_bits = 0;    // the paper's individual complexity
  NodeId max_node = kNoNode;          // which node pays it
  std::uint64_t total_bits = 0;       // network-wide sent bits
  std::uint64_t total_messages = 0;
  SimTime rounds = 0;                 // completion time in hops
};

CommSummary summarize(const std::vector<NodeCommStats>& per_node,
                      SimTime rounds, bool include_headers);

/// Summary of the traffic between two accounting snapshots (per-node
/// differences) — protocols use this to report their own cost when sharing
/// a network with earlier queries.
CommSummary window_summary(const std::vector<NodeCommStats>& before,
                           const std::vector<NodeCommStats>& after,
                           SimTime rounds, bool include_headers);

/// Largest per-node transmit / receive payload totals — [14]'s model charges
/// these asymmetrically (transmitting costs far more energy), so the
/// single-hop experiments report them separately.
std::uint64_t max_payload_bits_sent(const std::vector<NodeCommStats>& per_node);
std::uint64_t max_payload_bits_received(
    const std::vector<NodeCommStats>& per_node);

}  // namespace sensornet::sim
