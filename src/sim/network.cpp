#include "src/sim/network.hpp"

#include <utility>

#include "src/common/error.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

namespace sensornet::sim {

Network::Network(net::Graph graph, std::uint64_t master_seed)
    : graph_(std::move(graph)),
      master_seed_(master_seed),
      sent_(graph_.node_count()),
      received_(graph_.node_count()),
      item_refs_(graph_.node_count()) {
  // Deployment builders compact eagerly; this covers hand-built graphs so
  // the simulator never reads a stale CSR (and trials can share graph_
  // safely through the const accessor).
  graph_.compact();
}

void Network::set_items(NodeId node, ValueSet items) {
  SENSORNET_EXPECTS(node < item_refs_.size());
  for (const Value v : items) SENSORNET_EXPECTS(v >= 0);
  // Append-only slab: the node's record points at the new run. Replaced
  // runs are not reclaimed until the next set_one_item_per_node — per-node
  // re-installs are a test-setup pattern, not a hot path.
  SENSORNET_EXPECTS(item_slab_.size() + items.size() <=
                    std::numeric_limits<std::uint32_t>::max());
  ItemRef& ref = item_refs_[node];
  ref.offset = static_cast<std::uint32_t>(item_slab_.size());
  ref.len = static_cast<std::uint32_t>(items.size());
  item_slab_.insert(item_slab_.end(), items.begin(), items.end());
}

void Network::set_one_item_per_node(const ValueSet& flat) {
  SENSORNET_EXPECTS(flat.size() == item_refs_.size());
  for (const Value v : flat) SENSORNET_EXPECTS(v >= 0);
  item_slab_ = flat;
  for (NodeId u = 0; u < item_refs_.size(); ++u) {
    item_refs_[u] = ItemRef{u, 1};
  }
}

void Network::update_item(NodeId node, std::size_t index, Value v) {
  SENSORNET_EXPECTS(node < item_refs_.size());
  SENSORNET_EXPECTS(v >= 0);
  const ItemRef ref = item_refs_[node];
  SENSORNET_EXPECTS(index < ref.len);
  item_slab_[ref.offset + index] = v;
}

std::span<const Value> Network::items(NodeId node) const {
  SENSORNET_EXPECTS(node < item_refs_.size());
  const ItemRef ref = item_refs_[node];
  return {item_slab_.data() + ref.offset, ref.len};
}

void Network::ensure_rngs() {
  if (!rngs_.empty() || node_count() == 0) return;
  rngs_.reserve(node_count());
  for (NodeId u = 0; u < node_count(); ++u) {
    rngs_.push_back(node_rng(master_seed_, u));
  }
}

Xoshiro256& Network::rng(NodeId node) {
  SENSORNET_EXPECTS(node < node_count());
  ensure_rngs();
  return rngs_[node];
}

void Network::charge_send(NodeId node, const Message& msg) {
  DirStats& st = sent_[node];
  st.payload_bits += msg.payload_bits;
  st.header_bits += kHeaderBits;
  st.messages += 1;
}

void Network::charge_receive(NodeId node, const Message& msg) {
  DirStats& st = received_[node];
  st.payload_bits += msg.payload_bits;
  st.header_bits += kHeaderBits;
  st.messages += 1;
}

void Network::note_in_flight_high_water() {
  const std::size_t footprint = in_flight_payload_bytes_ + slot_store_bytes_;
  if (footprint > peak_in_flight_bytes_) peak_in_flight_bytes_ = footprint;
}

void Network::schedule(Message msg, NodeId to) {
  msg.to = to;
  const SimTime due = now_ + 1;
  if (pending_ == 0) {
    // Fresh round: everything scheduled from quiescence lands together.
    round_now_.clear();
    round_next_.clear();
    cursor_ = 0;
    round_time_ = due;
  }
  // Unit delay means a send targets the round being drained... never — a
  // handler runs at now_ == round_time_, so its sends land one tick later.
  // Sends from quiescent state extend the freshly opened round.
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(msg);
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(std::move(msg));
    slot_store_bytes_ = slots_.capacity() * sizeof(Message);
  }
  const Message& queued = slots_[slot];
  if (queued.payload.size_bytes() > Payload::kInlineBytes) {
    // Shared slabs are counted once per queued reference; inline payloads
    // are part of the slot footprint already.
    in_flight_payload_bytes_ += queued.payload.size_bytes();
  }
  if (due == round_time_) {
    round_now_.push_back(slot);
  } else {
    SENSORNET_EXPECTS(due == round_time_ + 1);
    round_next_.push_back(slot);
  }
  ++pending_;
  note_in_flight_high_water();
}

void Network::set_message_loss(double p) {
  SENSORNET_EXPECTS(p >= 0.0 && p <= 1.0);
  loss_probability_ = p;
}

void Network::send(Message msg) {
  SENSORNET_EXPECTS(msg.from < node_count());
  SENSORNET_EXPECTS(msg.to < node_count());
  if (!graph_.has_edge(msg.from, msg.to)) {
    throw ProtocolError("send: no link between sender and destination");
  }
  ++obs_unicasts_;
  obs_payload_bits_ += msg.payload_bits;
  obs::TraceRing& ring = obs::TraceRing::global();
  if (ring.enabled()) {
    ring.instant("msg.send", "sim", now_, 0, "from", msg.from, "to", msg.to);
  }
  charge_send(msg.from, msg);
  if (loss_probability_ > 0.0 && loss_rng_.next_bool(loss_probability_)) {
    ++obs_drops_;
    return;  // transmitted into the void; the sender's bits are spent
  }
  charge_receive(msg.to, msg);
  if ((msg.from == watch_u_ && msg.to == watch_v_) ||
      (msg.from == watch_v_ && msg.to == watch_u_)) {
    watched_bits_ += msg.payload_bits;
  }
  const NodeId to = msg.to;
  schedule(std::move(msg), to);
}

void Network::send_medium(Message msg) {
  SENSORNET_EXPECTS(msg.from < node_count());
  // Single-hop check: with self-loops and parallel edges rejected, degree
  // n-1 is equivalent to "linked to everyone" — one O(1) test instead of a
  // per-receiver edge probe.
  if (graph_.degree(msg.from) + 1 != node_count()) {
    throw ProtocolError("send_medium: deployment is not single-hop");
  }
  // The radio transmits once; every other node's receiver pays. Every
  // scheduled copy shares msg's payload slab by refcount.
  ++obs_broadcasts_;
  obs_payload_bits_ += msg.payload_bits;
  obs::TraceRing& ring = obs::TraceRing::global();
  if (ring.enabled()) {
    ring.instant("msg.broadcast", "sim", now_, 0, "from", msg.from, "bits",
                 msg.payload_bits);
  }
  charge_send(msg.from, msg);
  for (NodeId u = 0; u < node_count(); ++u) {
    if (u == msg.from) continue;
    // Loss is per receiver: fading is independent at each radio.
    if (loss_probability_ > 0.0 && loss_rng_.next_bool(loss_probability_)) {
      ++obs_drops_;
      continue;
    }
    charge_receive(u, msg);
    schedule(msg, u);  // copy shares the payload slab
  }
}

void Network::run(ProtocolHandler& handler, std::uint64_t max_deliveries) {
  obs::TraceRing& ring = obs::TraceRing::global();
  std::uint64_t delivered = 0;
  while (pending_ > 0) {
    if (cursor_ == round_now_.size()) {
      // Current round drained: the filling round becomes the draining one.
      round_now_.clear();
      cursor_ = 0;
      round_now_.swap(round_next_);
      ++round_time_;
      continue;
    }
    if (delivered == max_deliveries) {
      throw ProtocolError("run: delivery budget exceeded (runaway protocol?)");
    }
    ++delivered;
    const std::uint32_t slot = round_now_[cursor_++];
    now_ = round_time_;
    // Move the message out before dispatch: the handler may send, growing
    // slots_, which would invalidate a reference into it.
    Message msg = std::move(slots_[slot]);
    if (msg.payload.size_bytes() > Payload::kInlineBytes) {
      in_flight_payload_bytes_ -= msg.payload.size_bytes();
    }
    free_slots_.push_back(slot);
    --pending_;
    ++obs_deliveries_;
    if (ring.enabled()) {
      ring.instant("msg.deliver", "sim", now_, 0, "from", msg.from, "to",
                   msg.to);
    }
    handler.on_message(*this, msg.to, msg);
  }
  round_now_.clear();
  round_next_.clear();
  cursor_ = 0;
  flush_obs_counters();
}

void Network::flush_obs_counters() {
  if (obs_unicasts_ == 0 && obs_broadcasts_ == 0 && obs_deliveries_ == 0 &&
      obs_drops_ == 0 && obs_payload_bits_ == 0) {
    return;
  }
  obs::Registry& reg = obs::Registry::global();
  reg.add(reg.counter("sim.unicasts"), obs_unicasts_);
  reg.add(reg.counter("sim.broadcasts"), obs_broadcasts_);
  reg.add(reg.counter("sim.deliveries"), obs_deliveries_);
  reg.add(reg.counter("sim.drops"), obs_drops_);
  reg.add(reg.counter("sim.payload_bits_sent"), obs_payload_bits_);
  obs_unicasts_ = 0;
  obs_broadcasts_ = 0;
  obs_deliveries_ = 0;
  obs_drops_ = 0;
  obs_payload_bits_ = 0;
}

NodeCommStats Network::stats(NodeId node) const {
  SENSORNET_EXPECTS(node < node_count());
  const DirStats& tx = sent_[node];
  const DirStats& rx = received_[node];
  return NodeCommStats{
      .payload_bits_sent = tx.payload_bits,
      .payload_bits_received = rx.payload_bits,
      .header_bits_sent = tx.header_bits,
      .header_bits_received = rx.header_bits,
      .messages_sent = tx.messages,
      .messages_received = rx.messages,
  };
}

std::vector<NodeCommStats> Network::all_stats() const {
  std::vector<NodeCommStats> out;
  out.reserve(node_count());
  for (NodeId u = 0; u < node_count(); ++u) out.push_back(stats(u));
  return out;
}

CommSummary Network::summary(bool include_headers) const {
  CommSummary s;
  s.rounds = now_;
  for (NodeId u = 0; u < node_count(); ++u) {
    const DirStats& tx = sent_[u];
    const DirStats& rx = received_[u];
    std::uint64_t bits = tx.payload_bits + rx.payload_bits;
    if (include_headers) bits += tx.header_bits + rx.header_bits;
    if (bits > s.max_node_bits) {
      s.max_node_bits = bits;
      s.max_node = u;
    }
    s.total_bits += tx.payload_bits;
    if (include_headers) s.total_bits += tx.header_bits;
    s.total_messages += tx.messages;
  }
  return s;
}

void Network::watch_edge(NodeId u, NodeId v) {
  SENSORNET_EXPECTS(u < node_count() && v < node_count());
  watch_u_ = u;
  watch_v_ = v;
  watched_bits_ = 0;
}

void Network::reset_accounting() {
  for (DirStats& st : sent_) st = DirStats{};
  for (DirStats& st : received_) st = DirStats{};
  now_ = 0;
  watched_bits_ = 0;
  peak_in_flight_bytes_ = 0;
  // Pending obs counters describe the window being discarded, not the next
  // one; anything unflushed (sends queued but never run()) dies with it.
  obs_unicasts_ = 0;
  obs_broadcasts_ = 0;
  obs_deliveries_ = 0;
  obs_drops_ = 0;
  obs_payload_bits_ = 0;
}

void Network::reset(std::uint64_t master_seed) {
  reset_accounting();
  master_seed_ = master_seed;
  rngs_.clear();  // next rng() call re-derives from the new master seed
  loss_rng_ = Xoshiro256(kLossSeed);
  loss_probability_ = 0.0;
  watch_u_ = kNoNode;
  watch_v_ = kNoNode;
  // Release the queue slabs rather than keeping their capacity: a reset
  // network must be byte-identical to a freshly built one — including the
  // peak_in_flight_bytes() meter, which counts slot-store capacity.
  slots_ = std::vector<Message>{};
  free_slots_ = std::vector<std::uint32_t>{};
  round_now_ = std::vector<std::uint32_t>{};
  round_next_ = std::vector<std::uint32_t>{};
  round_time_ = 0;
  cursor_ = 0;
  pending_ = 0;
  in_flight_payload_bytes_ = 0;
  slot_store_bytes_ = 0;
}

}  // namespace sensornet::sim
