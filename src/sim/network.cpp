#include "src/sim/network.hpp"

#include <utility>

#include "src/common/error.hpp"

namespace sensornet::sim {

Network::Network(net::Graph graph, std::uint64_t master_seed)
    : graph_(std::move(graph)),
      items_(graph_.node_count()),
      stats_(graph_.node_count()) {
  rngs_.reserve(graph_.node_count());
  for (NodeId u = 0; u < graph_.node_count(); ++u) {
    rngs_.push_back(node_rng(master_seed, u));
  }
}

void Network::set_items(NodeId node, ValueSet items) {
  SENSORNET_EXPECTS(node < items_.size());
  for (const Value v : items) SENSORNET_EXPECTS(v >= 0);
  items_[node] = std::move(items);
}

void Network::set_one_item_per_node(const ValueSet& flat) {
  SENSORNET_EXPECTS(flat.size() == items_.size());
  for (NodeId u = 0; u < flat.size(); ++u) set_items(u, {flat[u]});
}

const ValueSet& Network::items(NodeId node) const {
  SENSORNET_EXPECTS(node < items_.size());
  return items_[node];
}

Xoshiro256& Network::rng(NodeId node) {
  SENSORNET_EXPECTS(node < rngs_.size());
  return rngs_[node];
}

void Network::charge_send(NodeId node, const Message& msg) {
  auto& st = stats_[node];
  st.payload_bits_sent += msg.payload_bits;
  st.header_bits_sent += kHeaderBits;
  st.messages_sent += 1;
}

void Network::charge_receive(NodeId node, const Message& msg) {
  auto& st = stats_[node];
  st.payload_bits_received += msg.payload_bits;
  st.header_bits_received += kHeaderBits;
  st.messages_received += 1;
}

void Network::schedule(Message msg, NodeId to) {
  msg.to = to;
  in_flight_.push_back(std::move(msg));
  queue_.push(PendingDelivery{now_ + 1, seq_++, in_flight_.size() - 1});
}

void Network::set_message_loss(double p) {
  SENSORNET_EXPECTS(p >= 0.0 && p <= 1.0);
  loss_probability_ = p;
}

void Network::send(Message msg) {
  SENSORNET_EXPECTS(msg.from < node_count());
  SENSORNET_EXPECTS(msg.to < node_count());
  if (!graph_.has_edge(msg.from, msg.to)) {
    throw ProtocolError("send: no link between sender and destination");
  }
  charge_send(msg.from, msg);
  if (loss_probability_ > 0.0 && loss_rng_.next_bool(loss_probability_)) {
    return;  // transmitted into the void; the sender's bits are spent
  }
  charge_receive(msg.to, msg);
  if ((msg.from == watch_u_ && msg.to == watch_v_) ||
      (msg.from == watch_v_ && msg.to == watch_u_)) {
    watched_bits_ += msg.payload_bits;
  }
  const NodeId to = msg.to;
  schedule(std::move(msg), to);
}

void Network::send_medium(Message msg) {
  SENSORNET_EXPECTS(msg.from < node_count());
  // The radio transmits once; every other node's receiver pays.
  charge_send(msg.from, msg);
  for (NodeId u = 0; u < node_count(); ++u) {
    if (u == msg.from) continue;
    if (!graph_.has_edge(msg.from, u)) {
      throw ProtocolError("send_medium: deployment is not single-hop");
    }
    // Loss is per receiver: fading is independent at each radio.
    if (loss_probability_ > 0.0 && loss_rng_.next_bool(loss_probability_)) {
      continue;
    }
    charge_receive(u, msg);
    Message copy = msg;
    schedule(std::move(copy), u);
  }
}

void Network::run(ProtocolHandler& handler, std::uint64_t max_deliveries) {
  std::uint64_t delivered = 0;
  while (!queue_.empty()) {
    const PendingDelivery next = queue_.top();
    queue_.pop();
    now_ = next.at;
    // Move the message out; in_flight_ entries are single-use.
    Message msg = std::move(in_flight_[next.msg_index]);
    handler.on_message(*this, msg.to, msg);
    if (++delivered > max_deliveries) {
      throw ProtocolError("run: delivery budget exceeded (runaway protocol?)");
    }
  }
  // Queue drained: reclaim message storage.
  in_flight_.clear();
  seq_ = 0;
}

const NodeCommStats& Network::stats(NodeId node) const {
  SENSORNET_EXPECTS(node < stats_.size());
  return stats_[node];
}

void Network::watch_edge(NodeId u, NodeId v) {
  SENSORNET_EXPECTS(u < node_count() && v < node_count());
  watch_u_ = u;
  watch_v_ = v;
  watched_bits_ = 0;
}

void Network::reset_accounting() {
  for (auto& st : stats_) st = NodeCommStats{};
  now_ = 0;
  watched_bits_ = 0;
}

}  // namespace sensornet::sim
