#include "src/sim/network.hpp"

#include <utility>

#include "src/common/error.hpp"

namespace sensornet::sim {

Network::Network(net::Graph graph, std::uint64_t master_seed)
    : graph_(std::move(graph)),
      items_(graph_.node_count()),
      stats_(graph_.node_count()) {
  rngs_.reserve(graph_.node_count());
  for (NodeId u = 0; u < graph_.node_count(); ++u) {
    rngs_.push_back(node_rng(master_seed, u));
  }
}

void Network::set_items(NodeId node, ValueSet items) {
  SENSORNET_EXPECTS(node < items_.size());
  for (const Value v : items) SENSORNET_EXPECTS(v >= 0);
  items_[node] = std::move(items);
}

void Network::set_one_item_per_node(const ValueSet& flat) {
  SENSORNET_EXPECTS(flat.size() == items_.size());
  for (NodeId u = 0; u < flat.size(); ++u) set_items(u, {flat[u]});
}

const ValueSet& Network::items(NodeId node) const {
  SENSORNET_EXPECTS(node < items_.size());
  return items_[node];
}

Xoshiro256& Network::rng(NodeId node) {
  SENSORNET_EXPECTS(node < rngs_.size());
  return rngs_[node];
}

void Network::charge_send(NodeId node, const Message& msg) {
  auto& st = stats_[node];
  st.payload_bits_sent += msg.payload_bits;
  st.header_bits_sent += kHeaderBits;
  st.messages_sent += 1;
}

void Network::charge_receive(NodeId node, const Message& msg) {
  auto& st = stats_[node];
  st.payload_bits_received += msg.payload_bits;
  st.header_bits_received += kHeaderBits;
  st.messages_received += 1;
}

void Network::note_in_flight_high_water() {
  const std::size_t footprint = in_flight_payload_bytes_ + slot_store_bytes_;
  if (footprint > peak_in_flight_bytes_) peak_in_flight_bytes_ = footprint;
}

void Network::schedule(Message msg, NodeId to) {
  msg.to = to;
  const SimTime due = now_ + 1;
  if (pending_ == 0) {
    // Fresh round: everything scheduled from quiescence lands together.
    round_now_.clear();
    round_next_.clear();
    cursor_ = 0;
    round_time_ = due;
  }
  // Unit delay means a send targets the round being drained... never — a
  // handler runs at now_ == round_time_, so its sends land one tick later.
  // Sends from quiescent state extend the freshly opened round.
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(msg);
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(std::move(msg));
    slot_store_bytes_ = slots_.capacity() * sizeof(Message);
  }
  const Message& queued = slots_[slot];
  if (queued.payload.size_bytes() > Payload::kInlineBytes) {
    // Shared slabs are counted once per queued reference; inline payloads
    // are part of the slot footprint already.
    in_flight_payload_bytes_ += queued.payload.size_bytes();
  }
  if (due == round_time_) {
    round_now_.push_back(slot);
  } else {
    SENSORNET_EXPECTS(due == round_time_ + 1);
    round_next_.push_back(slot);
  }
  ++pending_;
  note_in_flight_high_water();
}

void Network::set_message_loss(double p) {
  SENSORNET_EXPECTS(p >= 0.0 && p <= 1.0);
  loss_probability_ = p;
}

void Network::send(Message msg) {
  SENSORNET_EXPECTS(msg.from < node_count());
  SENSORNET_EXPECTS(msg.to < node_count());
  if (!graph_.has_edge(msg.from, msg.to)) {
    throw ProtocolError("send: no link between sender and destination");
  }
  charge_send(msg.from, msg);
  if (loss_probability_ > 0.0 && loss_rng_.next_bool(loss_probability_)) {
    return;  // transmitted into the void; the sender's bits are spent
  }
  charge_receive(msg.to, msg);
  if ((msg.from == watch_u_ && msg.to == watch_v_) ||
      (msg.from == watch_v_ && msg.to == watch_u_)) {
    watched_bits_ += msg.payload_bits;
  }
  const NodeId to = msg.to;
  schedule(std::move(msg), to);
}

void Network::send_medium(Message msg) {
  SENSORNET_EXPECTS(msg.from < node_count());
  // Single-hop check: with self-loops and parallel edges rejected, degree
  // n-1 is equivalent to "linked to everyone" — one O(1) test instead of a
  // per-receiver edge probe.
  if (graph_.degree(msg.from) + 1 != node_count()) {
    throw ProtocolError("send_medium: deployment is not single-hop");
  }
  // The radio transmits once; every other node's receiver pays. Every
  // scheduled copy shares msg's payload slab by refcount.
  charge_send(msg.from, msg);
  for (NodeId u = 0; u < node_count(); ++u) {
    if (u == msg.from) continue;
    // Loss is per receiver: fading is independent at each radio.
    if (loss_probability_ > 0.0 && loss_rng_.next_bool(loss_probability_)) {
      continue;
    }
    charge_receive(u, msg);
    schedule(msg, u);  // copy shares the payload slab
  }
}

void Network::run(ProtocolHandler& handler, std::uint64_t max_deliveries) {
  std::uint64_t delivered = 0;
  while (pending_ > 0) {
    if (cursor_ == round_now_.size()) {
      // Current round drained: the filling round becomes the draining one.
      round_now_.clear();
      cursor_ = 0;
      round_now_.swap(round_next_);
      ++round_time_;
      continue;
    }
    if (delivered == max_deliveries) {
      throw ProtocolError("run: delivery budget exceeded (runaway protocol?)");
    }
    ++delivered;
    const std::uint32_t slot = round_now_[cursor_++];
    now_ = round_time_;
    // Move the message out before dispatch: the handler may send, growing
    // slots_, which would invalidate a reference into it.
    Message msg = std::move(slots_[slot]);
    if (msg.payload.size_bytes() > Payload::kInlineBytes) {
      in_flight_payload_bytes_ -= msg.payload.size_bytes();
    }
    free_slots_.push_back(slot);
    --pending_;
    handler.on_message(*this, msg.to, msg);
  }
  round_now_.clear();
  round_next_.clear();
  cursor_ = 0;
}

const NodeCommStats& Network::stats(NodeId node) const {
  SENSORNET_EXPECTS(node < stats_.size());
  return stats_[node];
}

void Network::watch_edge(NodeId u, NodeId v) {
  SENSORNET_EXPECTS(u < node_count() && v < node_count());
  watch_u_ = u;
  watch_v_ = v;
  watched_bits_ = 0;
}

void Network::reset_accounting() {
  for (auto& st : stats_) st = NodeCommStats{};
  now_ = 0;
  watched_bits_ = 0;
  peak_in_flight_bytes_ = 0;
}

}  // namespace sensornet::sim
