// Event-driven network simulator.
//
// Unit-delay message delivery over an explicit communication graph, with
// bit-exact per-node accounting. Protocols are state machines driven by
// `on_message` callbacks; the root-side orchestrators inject the first
// message(s) and call run() to quiescence.
//
// Hot-path architecture: because every delivery is scheduled exactly one
// tick ahead, the event queue is a two-bucket calendar — one bucket of slot
// indices for the round being drained, one for the round being filled — with
// message slots recycled through a free list. Delivery order is (time, send
// order), identical to a (time, seq) priority queue but with O(1) push/pop
// and no per-run storage growth.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/types.hpp"
#include "src/net/graph.hpp"
#include "src/sim/comm_stats.hpp"
#include "src/sim/message.hpp"

namespace sensornet::sim {

class Network;

/// A protocol's receive handler. Implementations keep their own per-node
/// session state; the simulator only moves bits.
class ProtocolHandler {
 public:
  virtual ~ProtocolHandler() = default;
  virtual void on_message(Network& net, NodeId receiver, const Message& msg) = 0;
};

class Network {
 public:
  /// Takes ownership of the deployment graph. `master_seed` derives every
  /// node's private random stream, making runs reproducible.
  Network(net::Graph graph, std::uint64_t master_seed);

  std::size_t node_count() const { return items_.size(); }
  const net::Graph& graph() const { return graph_; }

  // ---- node-local state -------------------------------------------------

  /// Installs the input multiset at `node` (Section 2.1: each node holds
  /// input items). Values must be non-negative.
  void set_items(NodeId node, ValueSet items);

  /// Distributes one item per node; `flat.size()` must equal node_count().
  void set_one_item_per_node(const ValueSet& flat);

  const ValueSet& items(NodeId node) const;

  /// The node's private random stream ("infinite tape of random bits").
  Xoshiro256& rng(NodeId node);

  // ---- messaging ----------------------------------------------------------

  /// Unicast along a graph edge; delivered at now()+1. Accounting is charged
  /// to sender and receiver immediately (bits on air are bits paid).
  void send(Message msg);

  /// Makes every subsequent transmission vanish with probability `p`
  /// (per message, from a dedicated reproducible stream). The sender still
  /// pays its bits — radios don't know the packet died. Tree waves stall
  /// under loss (and their drivers throw); duplicate-insensitive multipath
  /// aggregation degrades gracefully — see proto/multipath.hpp.
  void set_message_loss(double p);

  /// Shared-medium broadcast: every other node receives the message at
  /// now()+1. Only meaningful on single-hop (complete) deployments; the
  /// sender pays the bits once, every receiver pays them too. All receivers
  /// share one payload slab — the broadcast costs no per-receiver copies.
  void send_medium(Message msg);

  /// Drains the event queue, dispatching each delivery to `handler`.
  /// Throws ProtocolError before dispatching the (max_deliveries + 1)-th
  /// message (runaway-protocol guard): at most `max_deliveries` messages
  /// ever reach `handler`.
  void run(ProtocolHandler& handler, std::uint64_t max_deliveries = 1ULL << 32);

  SimTime now() const { return now_; }

  // ---- accounting -----------------------------------------------------

  const NodeCommStats& stats(NodeId node) const;
  const std::vector<NodeCommStats>& all_stats() const { return stats_; }

  /// Starts metering payload bits that cross the undirected edge {u, v}
  /// (either direction). Used by the Theorem 5.1 reduction to measure the
  /// information flow across the A|B cut of the line network.
  void watch_edge(NodeId u, NodeId v);

  /// Payload bits that crossed the watched edge so far.
  std::uint64_t watched_edge_bits() const { return watched_bits_; }

  /// High-water mark of simulator memory committed to undelivered messages:
  /// out-of-line payload bytes referenced by queued messages (a shared slab
  /// counts once per reference — an upper bound) plus the message-slot array
  /// footprint. The perf harness tracks this to keep queue memory bounded by
  /// per-round traffic instead of whole-run traffic.
  std::size_t peak_in_flight_bytes() const { return peak_in_flight_bytes_; }

  /// Clears stats and the clock (keeps items and RNG streams).
  void reset_accounting();

  /// Summary over the current accounting window.
  CommSummary summary(bool include_headers = false) const {
    return summarize(stats_, now_, include_headers);
  }

 private:
  void charge_send(NodeId node, const Message& msg);
  void charge_receive(NodeId node, const Message& msg);
  void schedule(Message msg, NodeId to);
  void note_in_flight_high_water();

  net::Graph graph_;
  std::vector<ValueSet> items_;
  std::vector<Xoshiro256> rngs_;
  Xoshiro256 loss_rng_{0x10c5};
  double loss_probability_ = 0.0;
  std::vector<NodeCommStats> stats_;

  // Calendar queue: slots_ stores queued messages; round_now_ / round_next_
  // hold slot indices due at round_time_ / round_time_ + 1, in send order.
  // Delivered slots return to free_slots_ for reuse, so steady-state runs
  // stop touching the allocator entirely.
  std::vector<Message> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<std::uint32_t> round_now_;
  std::vector<std::uint32_t> round_next_;
  SimTime round_time_ = 0;   // delivery time of round_now_ entries
  std::size_t cursor_ = 0;   // drain position within round_now_
  std::uint64_t pending_ = 0;  // undelivered messages across both rounds

  std::size_t in_flight_payload_bytes_ = 0;
  std::size_t slot_store_bytes_ = 0;  // slots_.capacity() * sizeof(Message)
  std::size_t peak_in_flight_bytes_ = 0;

  SimTime now_ = 0;
  NodeId watch_u_ = kNoNode;
  NodeId watch_v_ = kNoNode;
  std::uint64_t watched_bits_ = 0;
};

}  // namespace sensornet::sim
