// Event-driven network simulator.
//
// Unit-delay message delivery over an explicit communication graph, with
// bit-exact per-node accounting. Protocols are state machines driven by
// `on_message` callbacks; the root-side orchestrators inject the first
// message(s) and call run() to quiescence.
//
// Hot-path architecture: because every delivery is scheduled exactly one
// tick ahead, the event queue is a two-bucket calendar — one bucket of slot
// indices for the round being drained, one for the round being filled — with
// message slots recycled through a free list. Delivery order is (time, send
// order), identical to a (time, seq) priority queue but with O(1) push/pop
// and no per-run storage growth.
//
// Node state is struct-of-arrays so a single trial scales to 10^6+ nodes:
// the deliver loop's accounting lives in two flat arrays of 24-byte
// direction records (send-side charged at the sender's slot, receive-side at
// the receiver's), node readings live in one shared value slab addressed by
// (offset, len) records instead of a vector-of-vectors, and the per-node RNG
// streams materialize lazily on first use. Nothing per-node is individually
// heap-allocated, so building a 2^20-node network costs a handful of slab
// allocations rather than a million.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/types.hpp"
#include "src/net/graph.hpp"
#include "src/sim/comm_stats.hpp"
#include "src/sim/message.hpp"

namespace sensornet::sim {

class Network;

/// A protocol's receive handler. Implementations keep their own per-node
/// session state; the simulator only moves bits.
class ProtocolHandler {
 public:
  virtual ~ProtocolHandler() = default;
  virtual void on_message(Network& net, NodeId receiver, const Message& msg) = 0;
};

class Network {
 public:
  /// Takes ownership of the deployment graph (compacting it if the builder
  /// has not already). `master_seed` derives every node's private random
  /// stream, making runs reproducible.
  Network(net::Graph graph, std::uint64_t master_seed);

  std::size_t node_count() const { return sent_.size(); }
  const net::Graph& graph() const { return graph_; }

  // ---- node-local state -------------------------------------------------

  /// Installs the input multiset at `node` (Section 2.1: each node holds
  /// input items). Values must be non-negative.
  void set_items(NodeId node, ValueSet items);

  /// Distributes one item per node; `flat.size()` must equal node_count().
  void set_one_item_per_node(const ValueSet& flat);

  /// The node's items, as a view into the shared value slab. Invalidated by
  /// the next set_items / set_one_item_per_node call.
  std::span<const Value> items(NodeId node) const;

  /// Overwrites the node's `index`-th item in place — the sensor-update feed
  /// of the continuous-query service. Unlike set_items this never grows the
  /// slab, so a long-running stream of per-epoch update batches has zero
  /// allocation cost. The value must be non-negative and `index` must
  /// address an existing item.
  void update_item(NodeId node, std::size_t index, Value v);

  /// The node's private random stream ("infinite tape of random bits").
  Xoshiro256& rng(NodeId node);

  // ---- messaging ----------------------------------------------------------

  /// Unicast along a graph edge; delivered at now()+1. Accounting is charged
  /// to sender and receiver immediately (bits on air are bits paid).
  void send(Message msg);

  /// Makes every subsequent transmission vanish with probability `p`
  /// (per message, from a dedicated reproducible stream). The sender still
  /// pays its bits — radios don't know the packet died. Tree waves stall
  /// under loss (and their drivers throw); duplicate-insensitive multipath
  /// aggregation degrades gracefully — see proto/multipath.hpp.
  void set_message_loss(double p);

  /// Shared-medium broadcast: every other node receives the message at
  /// now()+1. Only meaningful on single-hop (complete) deployments; the
  /// sender pays the bits once, every receiver pays them too. All receivers
  /// share one payload slab — the broadcast costs no per-receiver copies.
  void send_medium(Message msg);

  /// Drains the event queue, dispatching each delivery to `handler`.
  /// Throws ProtocolError before dispatching the (max_deliveries + 1)-th
  /// message (runaway-protocol guard): at most `max_deliveries` messages
  /// ever reach `handler`.
  void run(ProtocolHandler& handler, std::uint64_t max_deliveries = 1ULL << 32);

  SimTime now() const { return now_; }

  // ---- accounting -----------------------------------------------------

  /// One node's accounting, assembled from the direction arrays.
  NodeCommStats stats(NodeId node) const;

  /// Whole-network accounting snapshot (materialized; use it for windowed
  /// before/after diffs and determinism comparisons).
  std::vector<NodeCommStats> all_stats() const;

  /// Starts metering payload bits that cross the undirected edge {u, v}
  /// (either direction). Used by the Theorem 5.1 reduction to measure the
  /// information flow across the A|B cut of the line network.
  void watch_edge(NodeId u, NodeId v);

  /// Payload bits that crossed the watched edge so far.
  std::uint64_t watched_edge_bits() const { return watched_bits_; }

  /// High-water mark of simulator memory committed to undelivered messages:
  /// out-of-line payload bytes referenced by queued messages (a shared slab
  /// counts once per reference — an upper bound) plus the message-slot array
  /// footprint. The perf harness tracks this to keep queue memory bounded by
  /// per-round traffic instead of whole-run traffic.
  std::size_t peak_in_flight_bytes() const { return peak_in_flight_bytes_; }

  /// Clears stats and the clock (keeps items and RNG streams).
  void reset_accounting();

  /// Full trial reset: accounting, clock, queue, loss model, and RNG
  /// streams return to the state of a freshly built Network(graph,
  /// master_seed); the graph and installed items are kept. A reset network
  /// is byte-identical to a fresh one for the same seed, so experiment
  /// arenas can reuse one deployment across trials without re-paying
  /// topology construction.
  void reset(std::uint64_t master_seed);

  /// Summary over the current accounting window (single pass over the
  /// direction arrays; no per-node materialization).
  CommSummary summary(bool include_headers = false) const;

 private:
  /// One direction of a node's meter — the unit the deliver loop touches.
  /// 24 bytes, so charging a node dirties one cache line, not two.
  struct DirStats {
    std::uint64_t payload_bits = 0;
    std::uint64_t header_bits = 0;
    std::uint64_t messages = 0;
  };

  /// Where a node's items live in the shared slab.
  struct ItemRef {
    std::uint32_t offset = 0;
    std::uint32_t len = 0;
  };

  void charge_send(NodeId node, const Message& msg);
  void charge_receive(NodeId node, const Message& msg);
  void schedule(Message msg, NodeId to);
  void note_in_flight_high_water();
  void ensure_rngs();
  /// Publishes the batched sim.* counters to the obs registry and zeroes
  /// the pending fields. Called once per run() — the send/deliver hot paths
  /// only bump plain members, never the (atomic) registry cells.
  void flush_obs_counters();

  net::Graph graph_;
  std::uint64_t master_seed_ = 0;

  // ---- SoA node state (parallel arrays indexed by NodeId) ---------------
  std::vector<DirStats> sent_;      // hot: charge_send
  std::vector<DirStats> received_;  // hot: charge_receive
  std::vector<ItemRef> item_refs_;
  std::vector<Value> item_slab_;
  std::vector<Xoshiro256> rngs_;  // empty until the first rng() call

  Xoshiro256 loss_rng_{kLossSeed};
  double loss_probability_ = 0.0;
  static constexpr std::uint64_t kLossSeed = 0x10c5;

  // Calendar queue: slots_ stores queued messages; round_now_ / round_next_
  // hold slot indices due at round_time_ / round_time_ + 1, in send order.
  // Delivered slots return to free_slots_ for reuse, so steady-state runs
  // stop touching the allocator entirely.
  std::vector<Message> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<std::uint32_t> round_now_;
  std::vector<std::uint32_t> round_next_;
  SimTime round_time_ = 0;   // delivery time of round_now_ entries
  std::size_t cursor_ = 0;   // drain position within round_now_
  std::uint64_t pending_ = 0;  // undelivered messages across both rounds

  std::size_t in_flight_payload_bytes_ = 0;
  std::size_t slot_store_bytes_ = 0;  // slots_.capacity() * sizeof(Message)
  std::size_t peak_in_flight_bytes_ = 0;

  SimTime now_ = 0;
  NodeId watch_u_ = kNoNode;
  NodeId watch_v_ = kNoNode;
  std::uint64_t watched_bits_ = 0;

  // Pending observability counters (flushed by flush_obs_counters). Plain
  // integers: cheaper than registry atomics at per-message frequency, and
  // reset with the accounting window they describe.
  std::uint64_t obs_unicasts_ = 0;
  std::uint64_t obs_broadcasts_ = 0;
  std::uint64_t obs_deliveries_ = 0;
  std::uint64_t obs_drops_ = 0;
  std::uint64_t obs_payload_bits_ = 0;
};

}  // namespace sensornet::sim
