// The wire unit of the simulator.
//
// A message carries an opaque bit-packed payload built with BitWriter; its
// exact bit length is what the communication-complexity meter charges.
// Control overhead (opcode + session id) is metered separately as "header
// bits" so experiments can report the paper's pure-information measure and
// the engineering-honest total side by side.
#pragma once

#include <cstdint>

#include "src/common/bitio.hpp"
#include "src/common/types.hpp"
#include "src/sim/payload.hpp"

namespace sensornet::sim {

/// Fixed per-message control overhead: 8-bit opcode + 16-bit session id.
inline constexpr std::uint32_t kHeaderBits = 24;

struct Message {
  NodeId from = kNoNode;
  /// Unicast destination; kNoNode means "shared medium broadcast"
  /// (single-hop networks only).
  NodeId to = kNoNode;
  /// Query/session the message belongs to (protocols demultiplex on this).
  std::uint32_t session = 0;
  /// Protocol-defined opcode.
  std::uint16_t kind = 0;
  /// Immutable payload slab; copying a Message shares it by refcount.
  Payload payload;
  std::uint32_t payload_bits = 0;

  /// Builds a message from a BitWriter, capturing the exact bit length.
  static Message make(NodeId from, NodeId to, std::uint32_t session,
                      std::uint16_t kind, BitWriter&& w) {
    const auto bits = static_cast<std::uint32_t>(w.bit_count());
    return with_payload(from, to, session, kind,
                        Payload(w.bytes().data(), w.bytes().size()), bits);
  }

  /// Builds a message around an existing payload slab — the allocation-free
  /// path for protocols that fan one payload out to several destinations.
  static Message with_payload(NodeId from, NodeId to, std::uint32_t session,
                              std::uint16_t kind, Payload payload,
                              std::uint32_t payload_bits) {
    Message m;
    m.from = from;
    m.to = to;
    m.session = session;
    m.kind = kind;
    m.payload = std::move(payload);
    m.payload_bits = payload_bits;
    return m;
  }

  /// A reader positioned at the start of the payload.
  BitReader reader() const { return BitReader(payload.data(), payload_bits); }
};

}  // namespace sensornet::sim
