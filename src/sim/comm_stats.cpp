#include "src/sim/comm_stats.hpp"

#include <algorithm>

namespace sensornet::sim {

NodeCommStats& NodeCommStats::operator+=(const NodeCommStats& other) {
  payload_bits_sent += other.payload_bits_sent;
  payload_bits_received += other.payload_bits_received;
  header_bits_sent += other.header_bits_sent;
  header_bits_received += other.header_bits_received;
  messages_sent += other.messages_sent;
  messages_received += other.messages_received;
  return *this;
}

CommSummary summarize(const std::vector<NodeCommStats>& per_node,
                      SimTime rounds, bool include_headers) {
  CommSummary s;
  s.rounds = rounds;
  for (NodeId u = 0; u < per_node.size(); ++u) {
    const auto& st = per_node[u];
    const std::uint64_t bits = st.bits(include_headers);
    if (bits > s.max_node_bits) {
      s.max_node_bits = bits;
      s.max_node = u;
    }
    s.total_bits += st.payload_bits_sent;
    if (include_headers) s.total_bits += st.header_bits_sent;
    s.total_messages += st.messages_sent;
  }
  return s;
}

CommSummary window_summary(const std::vector<NodeCommStats>& before,
                           const std::vector<NodeCommStats>& after,
                           SimTime rounds, bool include_headers) {
  std::vector<NodeCommStats> delta(after.size());
  for (std::size_t u = 0; u < after.size(); ++u) {
    const NodeCommStats& b = u < before.size() ? before[u] : NodeCommStats{};
    delta[u].payload_bits_sent = after[u].payload_bits_sent - b.payload_bits_sent;
    delta[u].payload_bits_received =
        after[u].payload_bits_received - b.payload_bits_received;
    delta[u].header_bits_sent = after[u].header_bits_sent - b.header_bits_sent;
    delta[u].header_bits_received =
        after[u].header_bits_received - b.header_bits_received;
    delta[u].messages_sent = after[u].messages_sent - b.messages_sent;
    delta[u].messages_received =
        after[u].messages_received - b.messages_received;
  }
  return summarize(delta, rounds, include_headers);
}

std::uint64_t max_payload_bits_sent(const std::vector<NodeCommStats>& per_node) {
  std::uint64_t best = 0;
  for (const auto& st : per_node) {
    best = std::max(best, st.payload_bits_sent);
  }
  return best;
}

std::uint64_t max_payload_bits_received(
    const std::vector<NodeCommStats>& per_node) {
  std::uint64_t best = 0;
  for (const auto& st : per_node) {
    best = std::max(best, st.payload_bits_received);
  }
  return best;
}

}  // namespace sensornet::sim
