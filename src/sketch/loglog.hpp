// Legacy LogLog free-function API — deprecated compatibility shims.
//
// The sketch layer's real implementation now lives in sketch::Hll
// (src/sketch/hll.hpp): sparse/dense representations, bit-packed dense
// registers, word-at-a-time merge, and a versioned wire format. These
// free functions over the byte-per-register RegisterArray survive for one
// release as one-line forwarders so out-of-tree callers migrate on their
// own schedule:
//
//   observe_random(regs, rng)        ->  Hll::add_random(rng)
//   observe_hashed(regs, item, salt) ->  Hll::add(item, salt)
//   loglog_estimate(regs)            ->  Hll::estimate_loglog()
//   hyperloglog_estimate(regs)       ->  Hll::estimate()
//
// The estimator-math helpers (loglog_alpha / *_sigma / register_width_for)
// are not deprecated; they moved to hll.hpp and are re-exported here.
#pragma once

#include <cstdint>

#include "src/common/rng.hpp"
#include "src/sketch/hll.hpp"
#include "src/sketch/registers.hpp"

namespace sensornet::sketch {

namespace detail {
/// Non-deprecated implementation backing the hyperloglog_estimate shim
/// (needs a loop over registers, so it is not inline-forwardable).
double hyperloglog_estimate_registers(const RegisterArray& regs);
}  // namespace detail

/// One LogLog observation in random mode: picks a uniform bucket and a
/// geometric rank from `rng` and raises the register.
[[deprecated("use sketch::Hll::add_random")]]
inline void observe_random(RegisterArray& regs, Xoshiro256& rng) {
  const Observation o = random_observation(regs.count(), rng);
  regs.observe(o.bucket, o.rank);
}

/// One LogLog observation in hashed mode: bucket = low bits of
/// hash64(item, salt), rank = leading-zero run of the remaining bits + 1.
[[deprecated("use sketch::Hll::add")]]
inline void observe_hashed(RegisterArray& regs, std::uint64_t item,
                           std::uint64_t salt) {
  const Observation o = hashed_observation(regs.count(), item, salt);
  regs.observe(o.bucket, o.rank);
}

/// The Durand–Flajolet LogLog estimate: alpha_m * m * 2^(rank_sum / m).
[[deprecated("use sketch::Hll::estimate_loglog")]]
inline double loglog_estimate(const RegisterArray& regs) {
  return loglog_estimate_from(regs.count(), regs.rank_sum());
}

/// The HyperLogLog estimate (harmonic mean) with the standard small-range
/// (linear counting) correction.
[[deprecated("use sketch::Hll::estimate")]]
inline double hyperloglog_estimate(const RegisterArray& regs) {
  return detail::hyperloglog_estimate_registers(regs);
}

}  // namespace sensornet::sketch
