// LogLog / HyperLogLog cardinality estimation (Durand–Flajolet [3]).
//
// Two observation modes feed the same register state:
//   * random mode  — each observation is an independent Geometric(1/2)
//     sample into a random bucket; estimates the *count* of observations
//     (Fact 2.2's alpha-counting).
//   * hashed mode  — bucket and rank are derived from the item's hash, so
//     duplicates collapse; estimates the number of *distinct* items
//     (Section 5's efficient approximate COUNT_DISTINCT).
//
// Estimators: the original LogLog geometric-mean estimator (whose sigma
// multiplier beta_m -> 1.298 is what Fact 2.2 quotes) and HyperLogLog's
// harmonic-mean estimator with small-range correction (same wire format,
// better constants — used where the algorithms just need a good alpha-
// counting black box).
#pragma once

#include <cstdint>

#include "src/common/rng.hpp"
#include "src/sketch/registers.hpp"

namespace sensornet::sketch {

/// One LogLog observation in random mode: picks a uniform bucket and a
/// geometric rank from `rng` and raises the register.
void observe_random(RegisterArray& regs, Xoshiro256& rng);

/// One LogLog observation in hashed mode: bucket = low bits of
/// hash64(item, salt), rank = leading-zero run of the remaining bits + 1.
void observe_hashed(RegisterArray& regs, std::uint64_t item,
                    std::uint64_t salt);

/// The Durand–Flajolet LogLog estimate: alpha_m * m * 2^(rank_sum / m).
double loglog_estimate(const RegisterArray& regs);

/// The HyperLogLog estimate (harmonic mean) with the standard small-range
/// (linear counting) correction.
double hyperloglog_estimate(const RegisterArray& regs);

/// alpha_m, the LogLog bias-correction constant:
/// (m * Gamma(1 - 1/m) * (2^(1/m) - 1) / ln 2)^(-m).
double loglog_alpha(unsigned m);

/// Asymptotic relative standard error of the LogLog estimate
/// (~= 1.30 / sqrt(m); the paper's beta_m -> 1.298).
double loglog_sigma(unsigned m);

/// Asymptotic relative standard error of the HyperLogLog estimate
/// (~= 1.04 / sqrt(m)).
double hyperloglog_sigma(unsigned m);

/// Register width sufficient to store geometric ranks arising from up to
/// `max_observations` observations without saturation distorting estimates
/// (the O(log log N) bits of Fact 2.2).
unsigned register_width_for(std::uint64_t max_observations);

}  // namespace sensornet::sketch
