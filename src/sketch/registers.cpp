#include "src/sketch/registers.hpp"

#include <algorithm>

#include "src/common/error.hpp"

namespace sensornet::sketch {

RegisterArray::RegisterArray(unsigned count, unsigned width)
    : regs_(count, 0), width_(width) {
  SENSORNET_EXPECTS(count >= 1 && (count & (count - 1)) == 0);
  SENSORNET_EXPECTS(width >= 1 && width <= 8);
}

void RegisterArray::observe(unsigned bucket, unsigned rank) {
  SENSORNET_EXPECTS(bucket < regs_.size());
  const unsigned cap = (1u << width_) - 1;
  const auto clamped = static_cast<std::uint8_t>(std::min(rank, cap));
  regs_[bucket] = std::max(regs_[bucket], clamped);
}

std::uint8_t RegisterArray::value(unsigned bucket) const {
  SENSORNET_EXPECTS(bucket < regs_.size());
  return regs_[bucket];
}

void RegisterArray::merge(const RegisterArray& other) {
  SENSORNET_EXPECTS(other.count() == count() && other.width_ == width_);
  for (std::size_t i = 0; i < regs_.size(); ++i) {
    regs_[i] = std::max(regs_[i], other.regs_[i]);
  }
}

unsigned RegisterArray::zero_count() const {
  return static_cast<unsigned>(
      std::count(regs_.begin(), regs_.end(), std::uint8_t{0}));
}

std::uint64_t RegisterArray::rank_sum() const {
  std::uint64_t sum = 0;
  for (const auto r : regs_) sum += r;
  return sum;
}

void RegisterArray::encode(BitWriter& w) const {
  for (const auto r : regs_) w.write_bits(r, width_);
}

RegisterArray RegisterArray::decode(BitReader& r, unsigned count,
                                    unsigned width) {
  RegisterArray a(count, width);
  for (unsigned i = 0; i < count; ++i) {
    a.regs_[i] = static_cast<std::uint8_t>(r.read_bits(width));
  }
  return a;
}

}  // namespace sensornet::sketch
