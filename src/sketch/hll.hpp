// Production-grade HyperLogLog / LogLog cardinality sketch.
//
// The duplicate-insensitive state behind Fact 2.2 and Section 5's efficient
// COUNT_DISTINCT: m = 2^p max-registers, raised by geometric observations and
// merged by elementwise max — associative, commutative, idempotent, so the
// state aggregates on any tree or any duplicating multipath layer.
//
// Two representations behind one API:
//   * sparse — a sorted (bucket, rank) list; low-cardinality nodes (a leaf
//     with a handful of items) ship a few entries instead of all m registers.
//   * dense  — registers bit-packed into 64-bit words at 4/5/6/8 bits each
//     (floor(64/width) registers per word, no register straddles a word), so
//     merge runs word-at-a-time via SWAR parallel max.
// A sparse sketch promotes to dense exactly when its wire image would stop
// being the cheaper of the two.
//
// Wire format v1 (BitWriter/BitReader, MSB-first):
//   magic     8 bits  (0xA7)
//   version   4 bits  (1)
//   precision 5 bits  (p; m = 2^p)
//   width     3 bits  (register width - 1)
//   dense     1 bit
//   body      sparse: entry count (Elias-delta uint), then per entry
//                     bucket (p bits) + rank (width bits), buckets strictly
//                     ascending;
//             dense:  m registers of `width` bits in index order (the same
//                     flat image the legacy RegisterArray wire used).
// The header makes sketches self-describing, so they survive cross-process
// and cross-version shipping; decode rejects unknown versions and mismatched
// geometry instead of silently corrupting state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/bitio.hpp"
#include "src/common/result.hpp"
#include "src/common/rng.hpp"

namespace sensornet::sketch {

/// One sketch update: which register, and the geometric rank raising it.
struct Observation {
  unsigned bucket = 0;
  unsigned rank = 0;
};

/// Random-mode observation (counts observations): uniform bucket and an
/// independent Geometric(1/2) rank drawn from `rng`. m must be a power of 2.
Observation random_observation(unsigned m, Xoshiro256& rng);

/// Hashed-mode observation (counts distinct values): bucket = low log2(m)
/// bits of hash64(item, salt); rank = leading-zero run of the remaining
/// bits + 1 (the same law, truncated at 64 - log2(m)).
Observation hashed_observation(unsigned m, std::uint64_t item,
                               std::uint64_t salt);

/// Durand–Flajolet LogLog estimate from the register statistic:
/// alpha_m * m * 2^(rank_sum / m).
double loglog_estimate_from(unsigned m, std::uint64_t rank_sum);

/// HyperLogLog harmonic-mean estimate with the standard small-range
/// (linear counting) correction. `harmonic_sum` is sum over registers of
/// 2^-value (zero registers contribute 1 each).
double hyperloglog_estimate_from(unsigned m, double harmonic_sum,
                                 unsigned zero_registers);

/// alpha_m, the LogLog bias-correction constant:
/// (m * Gamma(1 - 1/m) * (2^(1/m) - 1) / ln 2)^(-m).
double loglog_alpha(unsigned m);

/// Asymptotic relative standard error of the LogLog estimate
/// (~= 1.30 / sqrt(m); the paper's beta_m -> 1.298).
double loglog_sigma(unsigned m);

/// Asymptotic relative standard error of the HyperLogLog estimate
/// (~= 1.04 / sqrt(m)).
double hyperloglog_sigma(unsigned m);

/// Register width sufficient to store geometric ranks arising from up to
/// `max_observations` observations without saturation distorting estimates
/// (the O(log log N) bits of Fact 2.2).
unsigned register_width_for(std::uint64_t max_observations);

/// register_width_for rounded up to the nearest packable dense width
/// (4, 5, 6, or 8 bits) — what Hll-backed protocols should request.
unsigned packed_width_for(std::uint64_t max_observations);

struct HllOptions {
  /// Dense register width in bits; one of 4, 5, 6, 8.
  unsigned width = 6;
  /// Start in the sparse representation (promotes automatically). Set false
  /// to allocate dense up front, e.g. when a node knows it is aggregation-
  /// heavy and wants no promotion hiccup mid-wave.
  bool sparse = true;
};

/// Move-only HLL sketch. Construct via make_by_precision/make_by_registers
/// (geometry is validated once, there); copy explicitly via clone().
class Hll {
 public:
  static constexpr unsigned kWireMagic = 0xA7;
  static constexpr unsigned kWireVersion = 1;
  /// magic(8) + version(4) + precision(5) + width(3) + dense flag(1).
  static constexpr unsigned kHeaderBits = 21;
  static constexpr unsigned kMinPrecision = 1;
  static constexpr unsigned kMaxPrecision = 20;

  Hll(Hll&&) noexcept = default;
  Hll& operator=(Hll&&) noexcept = default;
  Hll(const Hll&) = delete;
  Hll& operator=(const Hll&) = delete;

  /// m = 2^precision registers. Fails (with the reason) on precision outside
  /// [kMinPrecision, kMaxPrecision] or a width other than 4/5/6/8.
  [[nodiscard]] static Result<Hll> make_by_precision(unsigned precision,
                                                     HllOptions options = {});

  /// Convenience for callers that carry m directly; m must be a power of
  /// two in [2, 2^kMaxPrecision].
  [[nodiscard]] static Result<Hll> make_by_registers(unsigned m,
                                                     HllOptions options = {});

  // -- observations ---------------------------------------------------------

  /// Hashed mode: duplicates of `item` collapse (distinct counting).
  void add(std::uint64_t item, std::uint64_t salt = 0);

  /// Random mode: one independent geometric sample (observation counting).
  void add_random(Xoshiro256& rng);

  /// ODI-sum mode ([2]): folds `value` unit observations in O(m) time via
  /// the exact multinomial split (see odi_sum.hpp). A zero value is a no-op.
  void add_sum(std::uint64_t value, Xoshiro256& rng);

  /// Raw primitive: regs[bucket] = max(regs[bucket], min(rank, rank_cap())).
  void observe(unsigned bucket, unsigned rank);

  // -- merge / estimate -----------------------------------------------------

  /// Elementwise max with a peer sketch. Fails (leaving this sketch
  /// untouched) unless the peer has identical precision and width.
  [[nodiscard]] Result<void> merge(const Hll& other);

  /// HyperLogLog harmonic-mean estimate with small-range correction.
  double estimate() const;

  /// The original Durand–Flajolet LogLog geometric-mean estimate.
  double estimate_loglog() const;

  // -- geometry / inspection ------------------------------------------------

  unsigned precision() const { return precision_; }
  unsigned m() const { return 1u << precision_; }
  unsigned width() const { return width_; }
  /// Largest storable rank: 2^width - 1 (observations saturate here).
  unsigned rank_cap() const { return (1u << width_) - 1; }
  bool same_geometry(const Hll& other) const {
    return precision_ == other.precision_ && width_ == other.width_;
  }

  bool is_sparse() const { return !dense_; }
  std::size_t sparse_entry_count() const { return sparse_.size(); }
  /// Entries a sparse sketch may hold before its wire image would exceed the
  /// dense image; inserting a new bucket past this promotes to dense.
  std::size_t sparse_capacity() const;

  /// Register value. Wide return type by design: the legacy byte-register
  /// API returned uint8_t, which silently truncated any future width > 8.
  unsigned value(unsigned bucket) const;

  /// Number of zero registers (small-range corrections).
  unsigned zero_count() const;

  /// Sum of register values (the LogLog estimator's statistic).
  std::uint64_t rank_sum() const;

  /// Explicit deep copy (the class is move-only to keep accidental register
  /// array copies out of hot paths).
  Hll clone() const;

  // -- wire -----------------------------------------------------------------

  /// Serializes header + body (see file comment). Byte-for-byte
  /// deterministic for a given logical state.
  void encode(BitWriter& w) const;

  /// Parses a v1 image. Fails on bad magic, unknown version, unsupported
  /// geometry, or a malformed body; truncated payloads throw WireFormatError
  /// from the underlying reader.
  [[nodiscard]] static Result<Hll> decode(BitReader& r);

  /// Exact wire cost of encode() in bits.
  std::uint64_t wire_bits() const;

  /// Logical equality: same geometry and same per-register values
  /// (representation-agnostic: a sparse and a dense sketch can be equal).
  bool operator==(const Hll& other) const;

 private:
  Hll(unsigned precision, unsigned width, bool dense);

  unsigned regs_per_word() const { return 64 / width_; }
  std::uint64_t field_mask() const { return (1ull << width_) - 1; }
  unsigned dense_get(unsigned bucket) const;
  void dense_set(unsigned bucket, unsigned rank);
  void observe_sparse(unsigned bucket, unsigned rank);
  void promote_to_dense();

  static std::uint32_t sparse_entry(unsigned bucket, unsigned rank) {
    return (static_cast<std::uint32_t>(bucket) << 8) | rank;
  }
  static unsigned entry_bucket(std::uint32_t e) { return e >> 8; }
  static unsigned entry_rank(std::uint32_t e) { return e & 0xFF; }

  unsigned precision_;
  unsigned width_;
  bool dense_;
  /// Sparse: (bucket << 8 | rank), sorted by bucket, ranks >= 1.
  std::vector<std::uint32_t> sparse_;
  /// Dense: regs_per_word() registers per word, register i at bit
  /// (i % regs_per_word) * width within word i / regs_per_word.
  std::vector<std::uint64_t> words_;
};

}  // namespace sensornet::sketch
