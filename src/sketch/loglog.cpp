#include "src/sketch/loglog.hpp"

#include <bit>
#include <cmath>

#include "src/common/error.hpp"
#include "src/common/hash.hpp"
#include "src/common/mathutil.hpp"

namespace sensornet::sketch {

void observe_random(RegisterArray& regs, Xoshiro256& rng) {
  const unsigned bucket =
      static_cast<unsigned>(rng.next_below(regs.count()));
  regs.observe(bucket, rng.next_geometric_rank());
}

void observe_hashed(RegisterArray& regs, std::uint64_t item,
                    std::uint64_t salt) {
  const std::uint64_t h = hash64(item, salt);
  const unsigned b = floor_log2(regs.count());  // m = 2^b
  const unsigned bucket = static_cast<unsigned>(h & (regs.count() - 1));
  // Rank of the remaining 64-b bits: leading-zero run + 1, same law as a
  // Geometric(1/2) sample truncated at 64-b.
  const std::uint64_t rest = h >> b;
  const unsigned avail = 64 - b;
  const unsigned lz = rest == 0
                          ? avail
                          : std::min<unsigned>(
                                avail, static_cast<unsigned>(
                                           std::countl_zero(rest << b)));
  regs.observe(bucket, lz + 1);
}

double loglog_alpha(unsigned m) {
  SENSORNET_EXPECTS(m >= 2);
  const double dm = static_cast<double>(m);
  const double base =
      dm * std::tgamma(1.0 - 1.0 / dm) * (std::pow(2.0, 1.0 / dm) - 1.0) /
      std::log(2.0);
  return std::pow(base, -dm);
}

double loglog_estimate(const RegisterArray& regs) {
  const unsigned m = regs.count();
  const double mean_rank =
      static_cast<double>(regs.rank_sum()) / static_cast<double>(m);
  return loglog_alpha(m) * static_cast<double>(m) *
         std::pow(2.0, mean_rank);
}

double hyperloglog_estimate(const RegisterArray& regs) {
  const unsigned m = regs.count();
  const double dm = static_cast<double>(m);
  double harmonic = 0.0;
  for (unsigned i = 0; i < m; ++i) {
    harmonic += std::pow(2.0, -static_cast<double>(regs.value(i)));
  }
  const double alpha =
      0.7213 / (1.0 + 1.079 / dm);  // standard HLL constant (m >= 128 exact;
                                    // close enough for m >= 16)
  double estimate = alpha * dm * dm / harmonic;
  const unsigned zeros = regs.zero_count();
  if (estimate <= 2.5 * dm && zeros > 0) {
    // Linear-counting correction for small cardinalities.
    estimate = dm * std::log(dm / static_cast<double>(zeros));
  }
  return estimate;
}

double loglog_sigma(unsigned m) {
  // beta_m -> 1.298...; the short-m correction follows Durand-Flajolet's
  // reported constants (beta_16 ~ 1.46, beta_32 ~ 1.39).
  SENSORNET_EXPECTS(m >= 2);
  const double dm = static_cast<double>(m);
  return (1.30 + 2.6 / dm) / std::sqrt(dm);
}

double hyperloglog_sigma(unsigned m) {
  SENSORNET_EXPECTS(m >= 2);
  return 1.04 / std::sqrt(static_cast<double>(m));
}

unsigned register_width_for(std::uint64_t max_observations) {
  // Ranks concentrate at log2(n/m) + O(1); width log2(log2 n + slack) bits
  // never saturates in practice. Keep a generous +16 slack before taking the
  // outer log so even adversarial merges stay exact.
  const unsigned max_rank = floor_log2(max_observations | 1) + 16;
  unsigned w = ceil_log2(max_rank + 1);
  return w < 3 ? 3 : w;
}

}  // namespace sensornet::sketch
