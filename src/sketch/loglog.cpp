#include "src/sketch/loglog.hpp"

#include <cmath>

namespace sensornet::sketch::detail {

double hyperloglog_estimate_registers(const RegisterArray& regs) {
  const unsigned m = regs.count();
  const unsigned zeros = regs.zero_count();
  double harmonic = static_cast<double>(zeros);
  for (unsigned i = 0; i < m; ++i) {
    const unsigned v = regs.value(i);
    if (v != 0) harmonic += std::ldexp(1.0, -static_cast<int>(v));
  }
  return hyperloglog_estimate_from(m, harmonic, zeros);
}

}  // namespace sensornet::sketch::detail
