#include "src/sketch/hll.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "src/common/codec.hpp"
#include "src/common/error.hpp"
#include "src/common/hash.hpp"
#include "src/common/mathutil.hpp"

namespace sensornet::sketch {

// ---------------------------------------------------------------------------
// Observations and estimator cores (shared by Hll and the legacy shims).
// ---------------------------------------------------------------------------

Observation random_observation(unsigned m, Xoshiro256& rng) {
  return {static_cast<unsigned>(rng.next_below(m)),
          rng.next_geometric_rank()};
}

Observation hashed_observation(unsigned m, std::uint64_t item,
                               std::uint64_t salt) {
  const std::uint64_t h = hash64(item, salt);
  const unsigned b = floor_log2(m);  // m = 2^b
  const unsigned bucket = static_cast<unsigned>(h & (m - 1));
  // Rank of the remaining 64-b bits: leading-zero run + 1, same law as a
  // Geometric(1/2) sample truncated at 64-b.
  const std::uint64_t rest = h >> b;
  const unsigned avail = 64 - b;
  const unsigned lz = rest == 0
                          ? avail
                          : std::min<unsigned>(
                                avail, static_cast<unsigned>(
                                           std::countl_zero(rest << b)));
  return {bucket, lz + 1};
}

double loglog_alpha(unsigned m) {
  SENSORNET_EXPECTS(m >= 2);
  const double dm = static_cast<double>(m);
  const double base =
      dm * std::tgamma(1.0 - 1.0 / dm) * (std::pow(2.0, 1.0 / dm) - 1.0) /
      std::log(2.0);
  return std::pow(base, -dm);
}

double loglog_estimate_from(unsigned m, std::uint64_t rank_sum) {
  const double mean_rank =
      static_cast<double>(rank_sum) / static_cast<double>(m);
  return loglog_alpha(m) * static_cast<double>(m) * std::pow(2.0, mean_rank);
}

double hyperloglog_estimate_from(unsigned m, double harmonic_sum,
                                 unsigned zero_registers) {
  const double dm = static_cast<double>(m);
  const double alpha =
      0.7213 / (1.0 + 1.079 / dm);  // standard HLL constant (m >= 128 exact;
                                    // close enough for m >= 16)
  double estimate = alpha * dm * dm / harmonic_sum;
  if (estimate <= 2.5 * dm && zero_registers > 0) {
    // Linear-counting correction for small cardinalities.
    estimate = dm * std::log(dm / static_cast<double>(zero_registers));
  }
  return estimate;
}

double loglog_sigma(unsigned m) {
  // beta_m -> 1.298...; the short-m correction follows Durand-Flajolet's
  // reported constants (beta_16 ~ 1.46, beta_32 ~ 1.39).
  SENSORNET_EXPECTS(m >= 2);
  const double dm = static_cast<double>(m);
  return (1.30 + 2.6 / dm) / std::sqrt(dm);
}

double hyperloglog_sigma(unsigned m) {
  SENSORNET_EXPECTS(m >= 2);
  return 1.04 / std::sqrt(static_cast<double>(m));
}

unsigned register_width_for(std::uint64_t max_observations) {
  // Ranks concentrate at log2(n/m) + O(1); width log2(log2 n + slack) bits
  // never saturates in practice. Keep a generous +16 slack before taking the
  // outer log so even adversarial merges stay exact.
  const unsigned max_rank = floor_log2(max_observations | 1) + 16;
  unsigned w = ceil_log2(max_rank + 1);
  return w < 3 ? 3 : w;
}

unsigned packed_width_for(std::uint64_t max_observations) {
  const unsigned w = register_width_for(max_observations);
  if (w <= 4) return 4;
  if (w <= 6) return w;
  return 8;
}

// ---------------------------------------------------------------------------
// Hll
// ---------------------------------------------------------------------------

namespace {

bool supported_width(unsigned w) {
  return w == 4 || w == 5 || w == 6 || w == 8;
}

/// Parallel unsigned max over adjacent `width`-bit fields of a 64-bit word.
/// `high` holds the top bit of every field. Works because forcing the
/// minuend's field-top bit before the subtraction confines every borrow to
/// its own field (Hacker's-Delight-style SWAR compare), so no field needs a
/// guard bit.
inline std::uint64_t swar_field_max(std::uint64_t x, std::uint64_t y,
                                    std::uint64_t high, unsigned width) {
  const std::uint64_t low = ~high;
  // Per field (top bit of s): low bits of x >= low bits of y.
  const std::uint64_t s = (((x & low) | high) - (y & low)) & high;
  // Per field (top bit of ge): x >= y, combining top bits with s.
  const std::uint64_t ge = (x & ~y & high) | (~(x ^ y) & s);
  // Smear each field's flag over the whole field.
  const std::uint64_t take_x = ge | (ge - (ge >> (width - 1)));
  return (x & take_x) | (y & ~take_x);
}

std::uint64_t high_bits_mask(unsigned width) {
  std::uint64_t high = 0;
  for (unsigned i = 0; i + width <= 64; i += width) {
    high |= (1ull << (width - 1)) << i;
  }
  return high;
}

}  // namespace

Hll::Hll(unsigned precision, unsigned width, bool dense)
    : precision_(precision), width_(width), dense_(dense) {
  if (dense_) {
    const unsigned k = regs_per_word();
    words_.assign((m() + k - 1) / k, 0);
  }
}

Result<Hll> Hll::make_by_precision(unsigned precision, HllOptions options) {
  if (precision < kMinPrecision || precision > kMaxPrecision) {
    return Result<Hll>::failure(
        "Hll: precision " + std::to_string(precision) + " outside [" +
        std::to_string(kMinPrecision) + ", " + std::to_string(kMaxPrecision) +
        "]");
  }
  if (!supported_width(options.width)) {
    return Result<Hll>::failure("Hll: unsupported register width " +
                                std::to_string(options.width) +
                                " (supported: 4, 5, 6, 8 bits)");
  }
  return Hll(precision, options.width, !options.sparse);
}

Result<Hll> Hll::make_by_registers(unsigned m, HllOptions options) {
  if (m < 2 || (m & (m - 1)) != 0) {
    return Result<Hll>::failure("Hll: register count " + std::to_string(m) +
                                " is not a power of two >= 2");
  }
  return make_by_precision(floor_log2(m), options);
}

std::size_t Hll::sparse_capacity() const {
  // Wire-cost crossover: a sparse entry ships precision + width bits, a
  // dense image ships m * width; past this many entries sparse stops being
  // the cheaper encoding.
  const std::size_t cap = (static_cast<std::size_t>(m()) * width_) /
                          (precision_ + width_);
  return cap < 1 ? 1 : cap;
}

unsigned Hll::dense_get(unsigned bucket) const {
  const unsigned k = regs_per_word();
  const std::uint64_t word = words_[bucket / k];
  return static_cast<unsigned>((word >> ((bucket % k) * width_)) &
                               field_mask());
}

void Hll::dense_set(unsigned bucket, unsigned rank) {
  const unsigned k = regs_per_word();
  const unsigned shift = (bucket % k) * width_;
  std::uint64_t& word = words_[bucket / k];
  word = (word & ~(field_mask() << shift)) |
         (static_cast<std::uint64_t>(rank) << shift);
}

void Hll::observe_sparse(unsigned bucket, unsigned rank) {
  const std::uint32_t probe = sparse_entry(bucket, 0);
  const auto it = std::lower_bound(sparse_.begin(), sparse_.end(), probe);
  if (it != sparse_.end() && entry_bucket(*it) == bucket) {
    if (rank > entry_rank(*it)) *it = sparse_entry(bucket, rank);
    return;
  }
  sparse_.insert(it, sparse_entry(bucket, rank));
  if (sparse_.size() > sparse_capacity()) promote_to_dense();
}

void Hll::promote_to_dense() {
  const unsigned k = regs_per_word();
  words_.assign((m() + k - 1) / k, 0);
  dense_ = true;
  for (const std::uint32_t e : sparse_) {
    dense_set(entry_bucket(e), entry_rank(e));
  }
  sparse_.clear();
  sparse_.shrink_to_fit();
}

void Hll::observe(unsigned bucket, unsigned rank) {
  SENSORNET_EXPECTS(bucket < m());
  const unsigned clamped = std::min(rank, rank_cap());
  if (clamped == 0) return;
  if (dense_) {
    if (clamped > dense_get(bucket)) dense_set(bucket, clamped);
  } else {
    observe_sparse(bucket, clamped);
  }
}

void Hll::add(std::uint64_t item, std::uint64_t salt) {
  const Observation o = hashed_observation(m(), item, salt);
  observe(o.bucket, o.rank);
}

void Hll::add_random(Xoshiro256& rng) {
  const Observation o = random_observation(m(), rng);
  observe(o.bucket, o.rank);
}

// add_sum lives in odi_sum.cpp, next to the multinomial-split sampling it
// is built from.

Result<void> Hll::merge(const Hll& other) {
  if (!same_geometry(other)) {
    return Result<void>::failure(
        "Hll::merge: geometry mismatch (this: p=" +
        std::to_string(precision_) + " w=" + std::to_string(width_) +
        ", other: p=" + std::to_string(other.precision_) +
        " w=" + std::to_string(other.width_) + ")");
  }
  if (other.dense_) {
    if (!dense_) promote_to_dense();
    const std::uint64_t high = high_bits_mask(width_);
    for (std::size_t i = 0; i < words_.size(); ++i) {
      words_[i] = swar_field_max(words_[i], other.words_[i], high, width_);
    }
    return {};
  }
  if (!dense_) {
    // Sorted two-pointer union taking the max rank on shared buckets.
    std::vector<std::uint32_t> merged;
    merged.reserve(sparse_.size() + other.sparse_.size());
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < sparse_.size() && j < other.sparse_.size()) {
      const unsigned bi = entry_bucket(sparse_[i]);
      const unsigned bj = entry_bucket(other.sparse_[j]);
      if (bi < bj) {
        merged.push_back(sparse_[i++]);
      } else if (bj < bi) {
        merged.push_back(other.sparse_[j++]);
      } else {
        merged.push_back(std::max(sparse_[i++], other.sparse_[j++]));
      }
    }
    merged.insert(merged.end(), sparse_.begin() + i, sparse_.end());
    merged.insert(merged.end(), other.sparse_.begin() + j,
                  other.sparse_.end());
    sparse_ = std::move(merged);
    if (sparse_.size() > sparse_capacity()) promote_to_dense();
    return {};
  }
  // This dense, other sparse: fold the few entries in.
  for (const std::uint32_t e : other.sparse_) {
    const unsigned bucket = entry_bucket(e);
    const unsigned rank = entry_rank(e);
    if (rank > dense_get(bucket)) dense_set(bucket, rank);
  }
  return {};
}

double Hll::estimate() const {
  const unsigned zeros = zero_count();
  double harmonic = static_cast<double>(zeros);
  if (dense_) {
    for (unsigned b = 0; b < m(); ++b) {
      const unsigned v = dense_get(b);
      if (v != 0) harmonic += std::ldexp(1.0, -static_cast<int>(v));
    }
  } else {
    for (const std::uint32_t e : sparse_) {
      harmonic += std::ldexp(1.0, -static_cast<int>(entry_rank(e)));
    }
  }
  return hyperloglog_estimate_from(m(), harmonic, zeros);
}

double Hll::estimate_loglog() const {
  return loglog_estimate_from(m(), rank_sum());
}

unsigned Hll::value(unsigned bucket) const {
  SENSORNET_EXPECTS(bucket < m());
  if (dense_) return dense_get(bucket);
  const std::uint32_t probe = sparse_entry(bucket, 0);
  const auto it = std::lower_bound(sparse_.begin(), sparse_.end(), probe);
  if (it != sparse_.end() && entry_bucket(*it) == bucket) {
    return entry_rank(*it);
  }
  return 0;
}

unsigned Hll::zero_count() const {
  if (!dense_) return m() - static_cast<unsigned>(sparse_.size());
  unsigned zeros = 0;
  for (unsigned b = 0; b < m(); ++b) {
    if (dense_get(b) == 0) ++zeros;
  }
  return zeros;
}

std::uint64_t Hll::rank_sum() const {
  std::uint64_t sum = 0;
  if (dense_) {
    for (unsigned b = 0; b < m(); ++b) sum += dense_get(b);
  } else {
    for (const std::uint32_t e : sparse_) sum += entry_rank(e);
  }
  return sum;
}

Hll Hll::clone() const {
  Hll copy(precision_, width_, dense_);
  copy.sparse_ = sparse_;
  copy.words_ = words_;
  return copy;
}

bool Hll::operator==(const Hll& other) const {
  if (!same_geometry(other)) return false;
  if (dense_ == other.dense_) {
    return dense_ ? words_ == other.words_ : sparse_ == other.sparse_;
  }
  const Hll& sparse = dense_ ? other : *this;
  const Hll& dense = dense_ ? *this : other;
  // Every sparse entry must match, and the dense side must hold no extra
  // nonzero register (sparse entries are exactly the nonzero registers).
  if (dense.m() - dense.zero_count() != sparse.sparse_.size()) return false;
  for (const std::uint32_t e : sparse.sparse_) {
    if (dense.dense_get(entry_bucket(e)) != entry_rank(e)) return false;
  }
  return true;
}

void Hll::encode(BitWriter& w) const {
  w.write_bits(kWireMagic, 8);
  w.write_bits(kWireVersion, 4);
  w.write_bits(precision_, 5);
  w.write_bits(width_ - 1, 3);
  w.write_bit(dense_);
  if (!dense_) {
    encode_uint(w, sparse_.size());
    for (const std::uint32_t e : sparse_) {
      w.write_bits(entry_bucket(e), precision_);
      w.write_bits(entry_rank(e), width_);
    }
    return;
  }
  // Dense body: m registers of width_ bits in index order, flushed through
  // the word-granularity writer (registers may straddle flushed words; the
  // bit image is identical to a per-register write_bits loop).
  std::uint64_t acc = 0;
  unsigned used = 0;
  for (unsigned b = 0; b < m(); ++b) {
    const std::uint64_t reg = dense_get(b);
    if (used + width_ <= 64) {
      acc |= reg << (64 - used - width_);
      used += width_;
    } else {
      const unsigned hi = 64 - used;  // bits of reg that fit this word
      acc |= reg >> (width_ - hi);
      w.write_word(acc);
      acc = reg << (64 - (width_ - hi));
      used = width_ - hi;
    }
    if (used == 64) {
      w.write_word(acc);
      acc = 0;
      used = 0;
    }
  }
  if (used > 0) w.write_bits(acc >> (64 - used), used);
}

Result<Hll> Hll::decode(BitReader& r) {
  const auto magic = r.read_bits(8);
  if (magic != kWireMagic) {
    return Result<Hll>::failure("Hll::decode: bad magic 0x" +
                                std::to_string(magic));
  }
  const auto version = r.read_bits(4);
  if (version != kWireVersion) {
    return Result<Hll>::failure("Hll::decode: unknown format version " +
                                std::to_string(version));
  }
  const auto precision = static_cast<unsigned>(r.read_bits(5));
  const auto width = static_cast<unsigned>(r.read_bits(3)) + 1;
  const bool dense = r.read_bit();
  HllOptions options;
  options.width = width;
  options.sparse = !dense;
  auto made = make_by_precision(precision, options);
  if (!made.ok()) return made;
  Hll hll = std::move(made).value();
  if (!dense) {
    const std::uint64_t count = decode_uint(r);
    if (count > hll.sparse_capacity()) {
      return Result<Hll>::failure(
          "Hll::decode: sparse entry count " + std::to_string(count) +
          " exceeds capacity " + std::to_string(hll.sparse_capacity()));
    }
    if (count * (precision + width) > r.remaining()) {
      return Result<Hll>::failure("Hll::decode: truncated sparse body");
    }
    hll.sparse_.reserve(count);
    std::int64_t prev_bucket = -1;
    for (std::uint64_t i = 0; i < count; ++i) {
      const auto bucket = static_cast<unsigned>(r.read_bits(precision));
      const auto rank = static_cast<unsigned>(r.read_bits(width));
      if (static_cast<std::int64_t>(bucket) <= prev_bucket) {
        return Result<Hll>::failure(
            "Hll::decode: sparse buckets not strictly ascending");
      }
      if (rank == 0) {
        return Result<Hll>::failure("Hll::decode: zero rank in sparse entry");
      }
      hll.sparse_.push_back(sparse_entry(bucket, rank));
      prev_bucket = bucket;
    }
    return hll;
  }
  const std::uint64_t body_bits =
      static_cast<std::uint64_t>(hll.m()) * width;
  if (body_bits > r.remaining()) {
    return Result<Hll>::failure("Hll::decode: truncated dense body");
  }
  // Word-granularity refill mirroring encode(); `acc` keeps pending bits
  // left-aligned.
  std::uint64_t acc = 0;
  unsigned avail = 0;
  std::uint64_t left = body_bits;
  for (unsigned b = 0; b < hll.m(); ++b) {
    if (avail < width) {
      const unsigned take = static_cast<unsigned>(
          std::min<std::uint64_t>(64 - avail, left));
      const std::uint64_t chunk =
          take == 64 ? r.read_word() : r.read_bits(take);
      acc |= (take == 64 ? chunk : chunk << (64 - take)) >> avail;
      avail += take;
      left -= take;
    }
    const auto reg = static_cast<unsigned>(acc >> (64 - width));
    if (reg != 0) hll.dense_set(b, reg);
    acc <<= width;
    avail -= width;
  }
  return hll;
}

std::uint64_t Hll::wire_bits() const {
  if (dense_) {
    return kHeaderBits + static_cast<std::uint64_t>(m()) * width_;
  }
  return kHeaderBits + encoded_uint_bits(sparse_.size()) +
         static_cast<std::uint64_t>(sparse_.size()) * (precision_ + width_);
}

}  // namespace sensornet::sketch
