// Duplicate-insensitive SUM sketching (Considine-Li-Kollios-Byers [2]).
//
// The paper cites [2] for robust COUNT/SUM/AVG: conceptually, an item of
// value x contributes x unit observations to a LogLog sketch, so the
// estimator returns the *sum* — and the register state stays ODI, surviving
// arbitrary duplication by the communication layer. Inserting x units
// one-by-one would cost O(x); this implementation draws each bucket's
// register directly from the exact distribution of the maximum of
// Binomial(x, 1/m) geometric samples:
//
//   n_b ~ Binomial(x, 1/m)        (units landing in bucket b)
//   R_b = ceil(-log2(1 - U^(1/n_b)))   with U ~ Uniform(0,1)
//
// which is O(m) per item independent of x.
#pragma once

#include <cstdint>

#include "src/common/rng.hpp"
#include "src/sketch/registers.hpp"

namespace sensornet::sketch {

/// Samples Binomial(n, 1/m) (exact inversion for small n, normal
/// approximation with continuity correction above the cutoff — fine for a
/// simulator, the approximation error is far below the sketch's sigma).
std::uint64_t sample_binomial_inv_m(std::uint64_t n, unsigned m,
                                    Xoshiro256& rng);

/// Samples max of `count` iid Geometric(1/2) variables in O(1).
unsigned sample_max_geometric(std::uint64_t count, Xoshiro256& rng);

}  // namespace sensornet::sketch
