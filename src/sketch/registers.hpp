// Max-register arrays: the duplicate-insensitive state of LogLog counting.
//
// Fact 2.2's protocol is "run MAX over m small registers": each observation
// raises one register to the rank of its geometric sample, and merging two
// arrays is an elementwise max — associative, commutative, idempotent, so it
// aggregates on any tree (or any duplicating communication layer, cf. [2]).
// Wire size is exactly m * width bits.
//
// LEGACY: superseded by sketch::Hll (src/sketch/hll.hpp), which adds a
// sparse representation, bit-packed dense storage with word-at-a-time merge,
// and a versioned self-describing wire format. This byte-per-register class
// survives as a plain merge-baseline and fuzz-decode target (micro_sketch,
// fuzz_decode_test); the deprecated observe_*/*_estimate free-function
// shims that used to sit on top of it have been removed.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/bitio.hpp"

namespace sensornet::sketch {

class RegisterArray {
 public:
  /// `count` registers, each `width` bits wide (values 0 .. 2^width-1).
  /// count must be a power of two (the bucket selector uses low hash bits).
  RegisterArray(unsigned count, unsigned width);

  unsigned count() const { return static_cast<unsigned>(regs_.size()); }
  unsigned width() const { return width_; }

  /// Saturating update: regs[bucket] = max(regs[bucket], rank).
  void observe(unsigned bucket, unsigned rank);

  std::uint8_t value(unsigned bucket) const;

  /// Elementwise max with a peer array of identical geometry.
  void merge(const RegisterArray& other);

  /// Number of zero registers (used by small-range corrections).
  unsigned zero_count() const;

  /// Sum of register values (the LogLog estimator's statistic).
  std::uint64_t rank_sum() const;

  /// Wire image: count * width bits, registers in index order.
  void encode(BitWriter& w) const;
  static RegisterArray decode(BitReader& r, unsigned count, unsigned width);

  /// Exact wire cost in bits.
  std::uint64_t wire_bits() const {
    return static_cast<std::uint64_t>(count()) * width_;
  }

  bool operator==(const RegisterArray&) const = default;

 private:
  std::vector<std::uint8_t> regs_;
  unsigned width_;
};

}  // namespace sensornet::sketch
