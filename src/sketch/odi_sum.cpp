#include "src/sketch/odi_sum.hpp"

#include <cmath>

#include "src/common/error.hpp"
#include "src/sketch/hll.hpp"

namespace sensornet::sketch {

std::uint64_t sample_binomial_inv_m(std::uint64_t n, unsigned m,
                                    Xoshiro256& rng) {
  SENSORNET_EXPECTS(m >= 1);
  if (n == 0) return 0;
  const double p = 1.0 / static_cast<double>(m);
  const double mean = static_cast<double>(n) * p;
  if (n <= 64) {
    // Exact: count Bernoulli successes.
    std::uint64_t hits = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      if (rng.next_below(m) == 0) ++hits;
    }
    return hits;
  }
  // Normal approximation with continuity correction, clamped to support.
  const double sd = std::sqrt(mean * (1.0 - p));
  const double u1 = std::max(rng.next_double(), 1e-12);
  const double u2 = rng.next_double();
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * 3.14159265358979323846 * u2);
  const double draw = mean + sd * z + 0.5;
  if (draw <= 0.0) return 0;
  if (draw >= static_cast<double>(n)) return n;
  return static_cast<std::uint64_t>(draw);
}

unsigned sample_max_geometric(std::uint64_t count, Xoshiro256& rng) {
  if (count == 0) return 0;
  if (count == 1) return rng.next_geometric_rank();
  // CDF of the max: F(r) = (1 - 2^-r)^count. Invert a uniform draw.
  const double u = std::max(rng.next_double(), 1e-300);
  // 1 - u^(1/count), computed stably via expm1/log for large counts.
  const double log_u = std::log(u);
  const double tail = -std::expm1(log_u / static_cast<double>(count));
  if (tail <= 0.0) return 64;  // astronomically lucky draw; cap at 64
  const double r = -std::log2(tail);
  if (r <= 1.0) return 1;
  if (r >= 64.0) return 64;
  return static_cast<unsigned>(std::ceil(r));
}

namespace {

/// Works against any sketch exposing count-compatible observe(bucket, rank).
template <typename Sketch>
void observe_sum_into(Sketch& sketch, unsigned m, std::uint64_t value,
                      Xoshiro256& rng) {
  if (value == 0) return;
  std::uint64_t remaining = value;
  for (unsigned b = 0; b + 1 < m; ++b) {
    // Sequential conditional binomials keep the bucket counts an exact
    // multinomial split of `value`.
    const std::uint64_t units =
        sample_binomial_inv_m(remaining, m - b, rng);
    if (units > 0) sketch.observe(b, sample_max_geometric(units, rng));
    remaining -= units;
    if (remaining == 0) break;
  }
  if (remaining > 0) {
    sketch.observe(m - 1, sample_max_geometric(remaining, rng));
  }
}

}  // namespace

void Hll::add_sum(std::uint64_t value, Xoshiro256& rng) {
  observe_sum_into(*this, m(), value, rng);
}

}  // namespace sensornet::sketch
