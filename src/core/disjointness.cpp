#include "src/core/disjointness.hpp"

#include <algorithm>

#include "src/common/error.hpp"
#include "src/core/count_distinct.hpp"
#include "src/net/spanning_tree.hpp"
#include "src/net/topology.hpp"
#include "src/sim/network.hpp"

namespace sensornet::core {

DisjointnessReport solve_disjointness_via_count_distinct(const ValueSet& side_a,
                                                         const ValueSet& side_b,
                                                         std::uint64_t seed) {
  SENSORNET_EXPECTS(!side_a.empty() && !side_b.empty());
  const std::size_t n = side_a.size() + side_b.size();

  sim::Network net(net::make_line(n), seed);
  for (NodeId u = 0; u < side_a.size(); ++u) {
    net.set_items(u, {side_a[u]});
  }
  for (NodeId u = 0; u < side_b.size(); ++u) {
    net.set_items(static_cast<NodeId>(side_a.size() + u), {side_b[u]});
  }
  // The A|B cut is the edge between the last A node and the first B node.
  const auto cut_left = static_cast<NodeId>(side_a.size() - 1);
  const auto cut_right = static_cast<NodeId>(side_a.size());
  net.watch_edge(cut_left, cut_right);

  const net::SpanningTree tree = net::bfs_tree(net.graph(), /*root=*/0);
  const ExactDistinctResult exact = exact_count_distinct(net, tree);

  DisjointnessReport report;
  report.distinct_count = exact.distinct;
  report.side_a_size = side_a.size();
  report.side_b_size = side_b.size();
  // Step 3 of the reduction: disjoint iff |X_A ∪ X_B| == |X_A| + |X_B|.
  // (|X_A|, |X_B| here mean distinct-counts per side; the harness is handed
  // duplicate-free sides by its callers, but normalize defensively.)
  ValueSet a = side_a;
  ValueSet b = side_b;
  std::sort(a.begin(), a.end());
  a.erase(std::unique(a.begin(), a.end()), a.end());
  std::sort(b.begin(), b.end());
  b.erase(std::unique(b.begin(), b.end()), b.end());
  report.declared_disjoint = (exact.distinct == a.size() + b.size());
  report.cut_bits = net.watched_edge_bits();
  report.max_node_bits = exact.max_node_bits;
  return report;
}

DisjointnessReport solve_disjointness_multi_item(const ValueSet& side_a,
                                                 const ValueSet& side_b,
                                                 std::size_t b_nodes,
                                                 std::uint64_t seed) {
  SENSORNET_EXPECTS(!side_a.empty() && !side_b.empty());
  SENSORNET_EXPECTS(b_nodes >= 1);

  // Player A is the root (node 0) holding all of X_A; player B's items are
  // spread round-robin over nodes 1..b_nodes of a line.
  sim::Network net(net::make_line(b_nodes + 1), seed);
  net.set_items(0, side_a);
  std::vector<ValueSet> b_shares(b_nodes);
  for (std::size_t i = 0; i < side_b.size(); ++i) {
    b_shares[i % b_nodes].push_back(side_b[i]);
  }
  for (std::size_t i = 0; i < b_nodes; ++i) {
    net.set_items(static_cast<NodeId>(i + 1), std::move(b_shares[i]));
  }
  // The A|B cut is the root's single tree edge.
  net.watch_edge(0, 1);

  const net::SpanningTree tree = net::bfs_tree(net.graph(), /*root=*/0);
  const ExactDistinctResult exact = exact_count_distinct(net, tree);

  DisjointnessReport report;
  report.distinct_count = exact.distinct;
  ValueSet a = side_a;
  ValueSet b = side_b;
  std::sort(a.begin(), a.end());
  a.erase(std::unique(a.begin(), a.end()), a.end());
  std::sort(b.begin(), b.end());
  b.erase(std::unique(b.begin(), b.end()), b.end());
  report.side_a_size = a.size();
  report.side_b_size = b.size();
  report.declared_disjoint = (exact.distinct == a.size() + b.size());
  report.cut_bits = net.watched_edge_bits();
  report.max_node_bits = exact.max_node_bits;
  return report;
}

}  // namespace sensornet::core
