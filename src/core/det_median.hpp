// Deterministic exact median and order statistics (Section 3, Fig. 1).
//
// Binary search on the value domain: the root repeatedly asks COUNTP("< y")
// and narrows an interval certified to contain the median (Lemma 3.1). The
// pivot y can be an integer or an integer + 1/2, so the driver runs in the
// doubled domain (y2 == 2y, z2 == 2z) where every quantity stays an exact
// int64. Communication: O(log N) COUNTP waves of O(log N) bits per node
// each — Theorem 3.2's O((log N)^2).
//
// The driver is written against the abstract CountingService, mirroring the
// paper's "indifferent to the underlying communication mechanism" claim: the
// same code runs over spanning trees and over the single-hop medium.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/types.hpp"
#include "src/proto/counting_service.hpp"

namespace sensornet::core {

struct DetSelectionResult {
  Value value = 0;
  /// Executions of the while loop (== ceil(log2(M-m)) when M > m).
  unsigned iterations = 0;
  /// Total COUNTP invocations, including the line 4.1 tie-break.
  unsigned countp_calls = 0;
};

/// Per-iteration binary search state in the doubled domain, appended to
/// `*trace` when non-null: (y2, z2) at the top of each loop iteration.
/// Property tests check Lemma 3.1's invariant median in [y-z, y+z] on it.
using SearchTrace = std::vector<std::pair<std::int64_t, std::int64_t>>;

/// OS(X, k) per Definition 2.3, with the possibly half-integral rank passed
/// as twice_k (median == OS(X, N/2) == twice_k of N). Requires
/// 1 <= twice_k <= 2N and at least one item.
DetSelectionResult deterministic_order_statistic(proto::CountingService& svc,
                                                 std::int64_t twice_k,
                                                 SearchTrace* trace = nullptr);

/// MEDIAN(X): runs COUNT to learn N, then selects OS(X, N/2). This is
/// Fig. 1 verbatim.
DetSelectionResult deterministic_median(proto::CountingService& svc,
                                        SearchTrace* trace = nullptr);

}  // namespace sensornet::core
