// Approximate median with polyloglog communication (Section 4.2, Fig. 4).
//
// Two ideas compose:
//  1. Run the noise-tolerant search of Fig. 2 on x-hat = floor(log2 x)
//     instead of x. The hat domain has max value log2(X), so every payload
//     (MIN/MAX partials, the broadcast mu-hat, predicate thresholds) costs
//     O(log log N) bits, and with LogLog counting each stage is polyloglog.
//  2. The stage result mu-hat pins the median inside the dyadic interval
//     [2^mu-hat, 2^(mu-hat+1) - 1]. Nodes outside it go passive; nodes
//     inside rescale their value affinely onto [1, X] ("zooming", Fig. 3)
//     and the next stage refines. Each stage at least doubles the gap
//     between surviving values, so ceil(log2(1/beta)) stages reach value
//     precision beta.
//
// Node-local session state (current value, staged value, passive flag) is
// only ever modified by broadcast/wave handlers — state transitions ride on
// metered bits, never on root-side fiat.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/types.hpp"
#include "src/net/spanning_tree.hpp"
#include "src/proto/approx_counting.hpp"
#include "src/sim/network.hpp"

namespace sensornet::core {

struct ApxMedian2Params {
  /// Target value precision: the result interval has width <= beta * X.
  double beta = 1.0 / 256.0;
  /// Desired failure probability.
  double epsilon = 0.25;
  /// Multiplier on the paper's repetition schedule (1.0 = Fig. 4 verbatim).
  double rep_scale = 1.0;
  /// LogLog registers per APX_COUNT (m of Fact 2.2).
  unsigned registers = 64;
  proto::EstimatorKind estimator = proto::EstimatorKind::kHyperLogLog;
  /// The known upper bound X on item values (>= 2). Items equal to 0 are
  /// treated as 1, adding at most 1/X to the value error.
  Value max_value_bound = 0;
  /// Rank-fraction target: 0.5 computes the median; phi computes the
  /// phi-quantile (the APX_OS generalization, Theorem 4.6).
  double rank_phi = 0.5;
};

/// One zoom stage, for the Fig. 3 trace.
struct Median2StageTrace {
  unsigned stage = 0;
  Value mu_hat = 0;        // hat-domain order statistic found this stage
  Value interval_lo = 0;   // original-domain interval implied so far
  Value interval_hi = 0;
  double k = 0.0;          // rank target entering the stage
};

struct ApxMedian2Result {
  /// Midpoint of the final original-domain interval.
  Value value = 0;
  /// The interval itself; (hi - lo) / X is the achieved beta.
  Value interval_lo = 0;
  Value interval_hi = 0;
  unsigned stages = 0;
  unsigned apx_count_calls = 0;
  std::vector<Median2StageTrace> trace;
};

/// Fig. 4 end-to-end over a spanning tree. `base_view` selects which items
/// seed the zoom session (default: every node's raw readings); query WHERE
/// filters plug in here.
ApxMedian2Result approx_median2(
    sim::Network& net, const net::SpanningTree& tree,
    const ApxMedian2Params& params,
    const proto::LocalItemView& base_view = proto::raw_item_view());

}  // namespace sensornet::core
