#include "src/core/apx_median2.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/codec.hpp"
#include "src/common/error.hpp"
#include "src/common/mathutil.hpp"
#include "src/core/apx_median.hpp"
#include "src/proto/counting_service.hpp"
#include "src/proto/item_view.hpp"
#include "src/proto/tree_broadcast.hpp"

namespace sensornet::core {

namespace {

/// Node-local zoom state: the items a node still considers active, in the
/// current stage's rescaled domain. `staged` holds the next stage's values
/// between the mu-hat broadcast and the k-adjustment count (Fig. 4 performs
/// the count on X^(j), not X^(j+1)).
class Median2Session {
 public:
  Median2Session(sim::Network& net, const proto::LocalItemView& base_view)
      : states_(net.node_count()) {
    for (NodeId u = 0; u < net.node_count(); ++u) {
      // Fig. 4 line 2: purely local initialization, no communication.
      states_[u].current = base_view.items(net, u);
      for (Value& x : states_[u].current) x = std::max<Value>(x, 1);
    }
  }

  /// Applies the mu-hat broadcast at one node: items inside the dyadic
  /// interval [2^mu, 2^(mu+1)-1] rescale onto [1, X]; others go passive.
  void stage_rescale(NodeId u, Value mu_hat, Value max_value) {
    auto& st = states_[u];
    st.staged.clear();
    const Value lo = pow2_i64(static_cast<unsigned>(mu_hat));
    const Value hi = 2 * lo - 1;
    for (const Value x : st.current) {
      if (x < lo || x > hi) continue;
      if (lo == 1) {
        // mu-hat == 0: the interval is the single point {1}.
        st.staged.push_back(1);
      } else {
        st.staged.push_back(affine_rescale(x, lo, lo - 1, max_value - 1));
      }
    }
  }

  /// Flips every node to the staged values (deterministic local step the
  /// protocol schedules right after the k-adjustment wave).
  void commit_all() {
    for (auto& st : states_) st.current = std::move(st.staged);
  }

  const ValueSet& current(NodeId u) const { return states_[u].current; }

 private:
  struct NodeState {
    ValueSet current;
    ValueSet staged;
  };
  std::vector<NodeState> states_;
};

/// View of floor(log2 x) over the session's active items — the hat domain
/// every wave of Fig. 4 operates in.
class HatView final : public proto::LocalItemView {
 public:
  explicit HatView(const Median2Session& session) : session_(session) {}
  ValueSet items(sim::Network&, NodeId node) const override {
    ValueSet out;
    for (const Value x : session_.current(node)) {
      out.push_back(static_cast<Value>(floor_log2(
          static_cast<std::uint64_t>(std::max<Value>(x, 1)))));
    }
    return out;
  }

 private:
  const Median2Session& session_;
};

unsigned rep_count(double base, double scale) {
  return static_cast<unsigned>(std::max(1.0, std::ceil(base * scale)));
}

}  // namespace

ApxMedian2Result approx_median2(sim::Network& net,
                                const net::SpanningTree& tree,
                                const ApxMedian2Params& params,
                                const proto::LocalItemView& base_view) {
  SENSORNET_EXPECTS(params.beta > 0.0 && params.beta < 1.0);
  SENSORNET_EXPECTS(params.epsilon > 0.0 && params.epsilon < 1.0);
  SENSORNET_EXPECTS(params.max_value_bound >= 2);
  SENSORNET_EXPECTS(params.rank_phi > 0.0 && params.rank_phi < 1.0);
  const Value X = params.max_value_bound;

  ApxMedian2Result res;
  Median2Session session(net, base_view);
  HatView hat_view(session);

  // All waves run over the hat domain: values <= log2(X), so MIN/MAX
  // partials, thresholds and the broadcast all cost O(log log N) bits.
  proto::TreeCountingService minmax(net, tree, hat_view);
  proto::ApxCountConfig cfg;
  cfg.registers = params.registers;
  cfg.estimator = params.estimator;
  proto::TreeApproxCountingService counter(net, tree, cfg, hat_view);

  const auto total_stages = static_cast<unsigned>(
      std::max(1.0, std::ceil(std::log2(1.0 / params.beta))));
  const double eps_inner = params.epsilon / (2.0 * total_stages);
  const unsigned r_outer = rep_count(
      2.0 * total_stages / params.epsilon, params.rep_scale);

  // Fig. 4 line 1: n and the initial rank target k = n/2.
  const double n = proto::rep_countp(counter, r_outer,
                                     proto::Predicate::always_true());
  res.apx_count_calls += r_outer;
  double k = n * params.rank_phi;

  std::vector<Value> mu_hats;
  std::uint32_t broadcast_session = 0x4000;  // disjoint from wave sessions

  for (unsigned stage = 1; stage <= total_stages; ++stage) {
    const double k_entering = k;
    // Line 3.1: mu-hat = APX_OS(X-hat, eps_inner, k).
    ApxSelectionParams os_params;
    os_params.epsilon = eps_inner;
    os_params.rep_scale = params.rep_scale;
    os_params.k_absolute = k;
    ApxSelectionResult os;
    try {
      os = approx_median(minmax, counter, os_params);
    } catch (const PreconditionError&) {
      break;  // every item went passive (estimation noise) — stop refining
    }
    res.apx_count_calls += os.apx_count_calls;
    const Value mu_hat =
        std::clamp<Value>(os.value, 0,
                          static_cast<Value>(floor_log2(
                              static_cast<std::uint64_t>(X))));

    // Line 3.1 (cont.): broadcast mu-hat; each node stages its rescaled
    // value or goes passive (lines 3.2-3.3).
    proto::TreeBroadcast bc(
        tree, broadcast_session++,
        [&session, X](sim::Network&, NodeId node, BitReader r) {
          const auto mu = static_cast<Value>(decode_uint(r));
          session.stage_rescale(node, mu, X);
        });
    BitWriter w;
    encode_uint(w, static_cast<std::uint64_t>(mu_hat));
    bc.execute(net, std::move(w));

    // Line 3.4: k -= |{x-hat < mu-hat}| over the *current* (pre-commit)
    // items. In the hat domain the predicate is just "< mu-hat".
    const double removed = proto::rep_countp(
        counter, r_outer, proto::Predicate::less_than(mu_hat));
    res.apx_count_calls += r_outer;
    k = std::max(1.0, k - removed);

    // Switch every node to the staged values.
    session.commit_all();

    mu_hats.push_back(mu_hat);
    res.stages = stage;

    // Reconstruct the original-domain interval implied so far (inverse of
    // the affine chain; exact integer arithmetic throughout).
    Value lo = pow2_i64(static_cast<unsigned>(mu_hat));
    Value hi = 2 * lo - 1;
    for (auto it = mu_hats.rbegin() + 1; it != mu_hats.rend(); ++it) {
      const Value plo = pow2_i64(static_cast<unsigned>(*it));
      lo = affine_unscale(lo, plo, plo - 1, X - 1);
      hi = affine_unscale(hi, plo, plo - 1, X - 1);
    }
    res.interval_lo = std::clamp<Value>(lo, 0, X);
    res.interval_hi = std::clamp<Value>(hi, res.interval_lo, X);
    res.trace.push_back(Median2StageTrace{stage, mu_hat, res.interval_lo,
                                          res.interval_hi, k_entering});

    if (mu_hat == 0 || lo == hi) break;  // pinned to a single value
  }

  if (mu_hats.empty()) {
    throw ProtocolError("approx_median2: no stage completed");
  }
  res.value = res.interval_lo + (res.interval_hi - res.interval_lo) / 2;
  return res;
}

}  // namespace sensornet::core
