// Randomized approximate median / order statistics (Section 4, Fig. 2).
//
// The deterministic binary search of Fig. 1 with two changes: counts come
// from an alpha-counting protocol (repeated and averaged — REP_COUNTP), and
// the comparison against k grows a +-(alpha_c + sigma) dead band. Landing
// inside the band means the pivot's rank is within noise of the target, so
// the algorithm may output it immediately (Lemma 4.4: an (alpha, beta)-median
// with alpha = 3*sigma, beta = 1/X).
//
// Repetition counts follow the paper's proof-driven schedule
// (r = ceil(2q) at line 2, ceil(32q) at line 4.1, q = log2(M-m)/epsilon),
// scaled by `rep_scale` — benches run both the full schedule and cheaper
// ones; the (alpha, beta) guarantee degrades gracefully with the scale.
#pragma once

#include <cstdint>
#include <optional>

#include "src/common/types.hpp"
#include "src/proto/approx_counting.hpp"
#include "src/proto/counting_service.hpp"

namespace sensornet::core {

struct ApxSelectionParams {
  /// Desired failure probability (the epsilon of Theorem 4.5).
  double epsilon = 0.25;
  /// Multiplier on the paper's repetition counts (1.0 = exactly Fig. 2).
  double rep_scale = 1.0;
  /// When set, computes the k-order statistic with this absolute rank
  /// (Theorem 4.6: the "1/2" expressions become k/N). When empty, the
  /// median (k = N/2).
  std::optional<double> k_absolute;
};

struct ApxSelectionResult {
  Value value = 0;
  /// True if the search stopped at line 4.2.1 (pivot rank within the noise
  /// band of the target).
  bool halted_early = false;
  unsigned iterations = 0;
  /// Total APX_COUNT invocations across all REP_COUNTP calls.
  unsigned apx_count_calls = 0;
  /// The REP_COUNTP estimate of N from line 2.
  double n_estimate = 0.0;
};

/// Fig. 2. `minmax` supplies line 1's MIN/MAX protocols (Fact 2.1);
/// `counter` supplies APX_COUNT (Fact 2.2). Both must run over the same
/// item view.
ApxSelectionResult approx_median(proto::CountingService& minmax,
                                 proto::ApproxCountingService& counter,
                                 const ApxSelectionParams& params);

}  // namespace sensornet::core
