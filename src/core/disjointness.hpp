// The Theorem 5.1 reduction, made executable.
//
// Two-party Set Disjointness: player A holds X_A, player B holds X_B, and
// deciding X_A ∩ X_B = ∅ needs Omega(n) bits (Kushilevitz-Nisan). The paper
// solves 2SD with any COUNT_DISTINCT protocol P: exchange |X_A| and |X_B|,
// run P, answer "disjoint" iff the count equals |X_A| + |X_B| — so P must
// communicate Omega(n) bits. Lower bounds can't be *measured*, but the
// reduction is constructive: this harness lays the two sets on the two
// halves of a line network, runs our exact COUNT_DISTINCT wave as P, and
// meters the bits crossing the A|B cut — which the bench shows growing
// linearly, matching the bound.
#pragma once

#include <cstdint>

#include "src/common/types.hpp"
#include "src/sim/comm_stats.hpp"

namespace sensornet::core {

struct DisjointnessReport {
  bool declared_disjoint = false;
  std::uint64_t distinct_count = 0;
  std::uint64_t side_a_size = 0;
  std::uint64_t side_b_size = 0;
  /// Payload bits that crossed the single edge separating A's half of the
  /// line from B's half — a lower bound on what any 2SD protocol built from
  /// this COUNT_DISTINCT run would exchange.
  std::uint64_t cut_bits = 0;
  /// Individual communication of the run.
  std::uint64_t max_node_bits = 0;
};

/// The single-item interpretation of Theorem 5.1: lays side_a on nodes
/// 0..|A|-1 and side_b on nodes |A|..|A|+|B|-1 of a line network (root at
/// node 0 == player A), runs exact COUNT_DISTINCT, decides disjointness.
DisjointnessReport solve_disjointness_via_count_distinct(const ValueSet& side_a,
                                                         const ValueSet& side_b,
                                                         std::uint64_t seed = 1);

/// The multi-item interpretation: "let A simulate the root node, and let B
/// simulate all other nodes" — player A holds its whole set at the root,
/// player B's set is spread over the remaining nodes of an arbitrary
/// topology. The cut is every root-adjacent tree edge; with A at the root,
/// all of B's distinct values must cross it.
DisjointnessReport solve_disjointness_multi_item(const ValueSet& side_a,
                                                 const ValueSet& side_b,
                                                 std::size_t b_nodes,
                                                 std::uint64_t seed = 1);

}  // namespace sensornet::core
