#include "src/core/apx_median.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"
#include "src/common/mathutil.hpp"

namespace sensornet::core {

namespace {

/// ceil of a positive double as an invocation count, at least 1.
unsigned rep_count(double q, double factor, double scale) {
  const double r = std::ceil(q * factor * scale);
  return static_cast<unsigned>(std::max(1.0, r));
}

}  // namespace

ApxSelectionResult approx_median(proto::CountingService& minmax,
                                 proto::ApproxCountingService& counter,
                                 const ApxSelectionParams& params) {
  SENSORNET_EXPECTS(params.epsilon > 0.0 && params.epsilon < 1.0);
  SENSORNET_EXPECTS(params.rep_scale > 0.0);
  ApxSelectionResult res;

  // Line 1: MIN / MAX via the exact primitives.
  const auto min_opt = minmax.min_value();
  const auto max_opt = minmax.max_value();
  if (!min_opt || !max_opt) {
    throw PreconditionError("approx median of an empty input");
  }
  const Value m = *min_opt;
  const Value M = *max_opt;
  if (m == M) {
    res.value = m;
    return res;
  }

  // Line 2: q = log(M-m)/epsilon and the initial count estimate.
  const double log_range =
      std::max(1.0, std::log2(static_cast<double>(M - m)));
  const double q = log_range / params.epsilon;
  const unsigned r_init = rep_count(q, 2.0, params.rep_scale);
  const double n =
      proto::rep_countp(counter, r_init, proto::Predicate::always_true());
  res.apx_count_calls += r_init;
  res.n_estimate = n;

  // Target rank fraction rho: 1/2 for the median, k/N for order statistics
  // (Theorem 4.6).
  const double rho = params.k_absolute ? std::clamp(*params.k_absolute /
                                                        std::max(n, 1.0),
                                                    0.0, 1.0)
                                       : 0.5;

  const double alpha_c = counter.alpha_c();
  const double sigma = counter.sigma();
  const double band = alpha_c + sigma;

  // Line 3 (doubled domain, cf. det_median.cpp).
  std::int64_t y2 = M + m;
  std::int64_t z2 = pow2_i64(ceil_log2(static_cast<std::uint64_t>(M - m)));

  // Line 4: noise-tolerant binary search.
  const unsigned r_loop = rep_count(q, 32.0, params.rep_scale);
  while (z2 > 1) {
    const double c = proto::rep_countp(
        counter, r_loop, proto::Predicate::less_than_half_units(y2));
    res.apx_count_calls += r_loop;
    ++res.iterations;
    if (c < n * (rho - band)) {
      y2 += z2 / 2;
    } else if (c >= n * (rho + band)) {
      y2 -= z2 / 2;
    } else {
      // Line 4.2.1: rank of the pivot is within noise of the target ->
      // output floor(y) and halt.
      res.value = (y2 >= 0) ? y2 / 2 : (y2 - 1) / 2;
      res.halted_early = true;
      return res;
    }
    z2 /= 2;
  }

  // Line 5: output floor(y).
  res.value = (y2 >= 0) ? y2 / 2 : (y2 - 1) / 2;
  return res;
}

}  // namespace sensornet::core
