// COUNT_DISTINCT (Section 5).
//
// Exact: the only tree-aggregable exact representation is the distinct set
// itself (union up the tree), so some node near the root communicates
// Omega(D log X) bits — the linear behaviour Theorem 5.1 proves unavoidable.
// Approximate: hashed LogLog registers make duplicates collapse; one wave of
// O(m log log N) bits per node estimates D within ~1.3/sqrt(m), the
// "extremely efficient" contrast the paper draws.
#pragma once

#include <cstdint>

#include "src/net/spanning_tree.hpp"
#include "src/proto/approx_counting.hpp"
#include "src/sim/network.hpp"

namespace sensornet::core {

struct ExactDistinctResult {
  std::uint64_t distinct = 0;
  /// Individual communication of the wave (max bits sent+received by any
  /// node during the call; window-scoped, not lifetime-scoped).
  std::uint64_t max_node_bits = 0;
};

/// One distinct-set union wave; exact answer, linear worst-case bits.
ExactDistinctResult exact_count_distinct(
    sim::Network& net, const net::SpanningTree& tree,
    const proto::LocalItemView& view = proto::raw_item_view());

struct ApproxDistinctResult {
  double estimate = 0.0;
  std::uint64_t max_node_bits = 0;
  /// Predicted relative standard error for the register count used.
  double expected_sigma = 0.0;
};

/// One hashed-LogLog wave (Durand-Flajolet over item hashes).
ApproxDistinctResult approx_count_distinct(
    sim::Network& net, const net::SpanningTree& tree, unsigned registers,
    proto::EstimatorKind estimator,
    const proto::LocalItemView& view = proto::raw_item_view());

}  // namespace sensornet::core
