#include "src/core/det_median.hpp"

#include "src/common/error.hpp"
#include "src/common/mathutil.hpp"

namespace sensornet::core {

DetSelectionResult deterministic_order_statistic(proto::CountingService& svc,
                                                 std::int64_t twice_k,
                                                 SearchTrace* trace) {
  SENSORNET_EXPECTS(twice_k >= 1);
  DetSelectionResult res;

  const auto min_opt = svc.min_value();
  const auto max_opt = svc.max_value();
  if (!min_opt || !max_opt) {
    throw PreconditionError("order statistic of an empty input");
  }
  const Value m = *min_opt;
  const Value M = *max_opt;
  if (m == M) {
    // Degenerate input: Fig. 1's z = 2^(ceil(log(M-m)) - 1) is undefined;
    // every order statistic equals the common value.
    res.value = m;
    return res;
  }

  // Doubled domain: y2 == 2y, z2 == 2z. Initially y = (M+m)/2 and
  // z = 2^(ceil(log2(M-m)) - 1), so y2 = M+m and z2 = 2^ceil(log2(M-m)).
  std::int64_t y2 = M + m;
  std::int64_t z2 = pow2_i64(ceil_log2(static_cast<std::uint64_t>(M - m)));

  // Loop while z > 1/2, i.e. z2 > 1. Each COUNTP asks for l(y) = |{x < y}|;
  // the comparison c(y) < k becomes 2*c < twice_k exactly.
  while (z2 > 1) {
    if (trace) trace->emplace_back(y2, z2);
    const std::uint64_t c =
        svc.count(proto::Predicate::less_than_half_units(y2));
    ++res.countp_calls;
    ++res.iterations;
    if (2 * static_cast<std::int64_t>(c) < twice_k) {
      y2 += z2 / 2;
    } else {
      y2 -= z2 / 2;
    }
    z2 /= 2;
  }

  if (y2 % 2 == 0) {
    // y is an integer: by Lemma 3.1 the median lies in [y - 1/2, y + 1/2],
    // hence equals y.
    res.value = y2 / 2;
    return res;
  }
  // y = integer + 1/2: the answer is floor(y) or ceil(y); one more COUNTP
  // (line 4.1) decides which.
  const Value ceil_y = (y2 + 1) / 2;
  const std::uint64_t c = svc.count(proto::Predicate::less_than(ceil_y));
  ++res.countp_calls;
  res.value = (2 * static_cast<std::int64_t>(c) < twice_k) ? ceil_y : ceil_y - 1;
  return res;
}

DetSelectionResult deterministic_median(proto::CountingService& svc,
                                        SearchTrace* trace) {
  const std::uint64_t n = svc.count_all();
  if (n == 0) throw PreconditionError("median of an empty input");
  // MEDIAN(X) = OS(X, N/2): twice_k = N.
  return deterministic_order_statistic(svc, static_cast<std::int64_t>(n),
                                       trace);
}

}  // namespace sensornet::core
