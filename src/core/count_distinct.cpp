#include "src/core/count_distinct.hpp"

#include <algorithm>

#include "src/proto/aggregations.hpp"
#include "src/proto/tree_wave.hpp"

namespace sensornet::core {

namespace {

std::uint64_t window_max_node_bits(const sim::Network& net,
                                   const std::vector<sim::NodeCommStats>& before) {
  std::uint64_t best = 0;
  for (NodeId u = 0; u < net.node_count(); ++u) {
    const auto& now = net.stats(u);
    const std::uint64_t bits =
        (now.payload_bits_sent - before[u].payload_bits_sent) +
        (now.payload_bits_received - before[u].payload_bits_received);
    best = std::max(best, bits);
  }
  return best;
}

}  // namespace

ExactDistinctResult exact_count_distinct(sim::Network& net,
                                         const net::SpanningTree& tree,
                                         const proto::LocalItemView& view) {
  const auto before = net.all_stats();
  proto::TreeWave<proto::DistinctSetAgg> wave(tree, /*session=*/0x7001, view);
  const ValueSet distinct = wave.execute(
      net, proto::DistinctSetAgg::Request{proto::Predicate::always_true()});
  ExactDistinctResult res;
  res.distinct = distinct.size();
  res.max_node_bits = window_max_node_bits(net, before);
  return res;
}

ApproxDistinctResult approx_count_distinct(sim::Network& net,
                                           const net::SpanningTree& tree,
                                           unsigned registers,
                                           proto::EstimatorKind estimator,
                                           const proto::LocalItemView& view) {
  const auto before = net.all_stats();
  proto::ApxCountConfig cfg;
  cfg.registers = registers;
  cfg.estimator = estimator;
  cfg.mode = proto::LogLogAgg::Mode::kHashed;
  proto::TreeApproxCountingService svc(net, tree, cfg, view);
  ApproxDistinctResult res;
  res.estimate = svc.apx_count(proto::Predicate::always_true());
  res.expected_sigma = svc.sigma();
  res.max_node_bits = window_max_node_bits(net, before);
  return res;
}

}  // namespace sensornet::core
