#include "src/obs/metrics.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace sensornet::obs {

std::uint64_t HistogramSnapshot::total() const {
  std::uint64_t t = 0;
  for (const std::uint64_t c : counts) t += c;
  return t;
}

const MetricSnapshot* Snapshot::find(std::string_view name) const {
  for (const MetricSnapshot& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

std::uint64_t Snapshot::value(std::string_view name) const {
  const MetricSnapshot* m = find(name);
  if (m == nullptr) return 0;
  return m->kind == MetricKind::kHistogram ? m->hist.total() : m->value;
}

namespace {

const char* kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

}  // namespace

std::string Snapshot::to_string() const {
  std::ostringstream os;
  for (const MetricSnapshot& m : metrics) {
    os << m.name << ' ' << kind_name(m.kind) << ' ';
    if (m.kind == MetricKind::kHistogram) {
      os << m.hist.total() << " [";
      for (std::size_t i = 0; i < m.hist.counts.size(); ++i) {
        if (i > 0) os << ' ';
        if (i < m.hist.upper_bounds.size()) {
          os << "le" << m.hist.upper_bounds[i] << ':';
        } else {
          os << "inf:";
        }
        os << m.hist.counts[i];
      }
      os << ']';
    } else {
      os << m.value;
    }
    os << '\n';
  }
  return os.str();
}

void Snapshot::write_json(std::ostream& os, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  os << "{\n";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const MetricSnapshot& m = metrics[i];
    os << pad << "  \"" << m.name << "\": ";
    if (m.kind == MetricKind::kHistogram) {
      os << "{\"total\": " << m.hist.total() << ", \"buckets\": [";
      for (std::size_t b = 0; b < m.hist.counts.size(); ++b) {
        if (b > 0) os << ", ";
        os << m.hist.counts[b];
      }
      os << "]}";
    } else {
      os << m.value;
    }
    os << (i + 1 < metrics.size() ? "," : "") << "\n";
  }
  os << pad << "}";
}

}  // namespace sensornet::obs

#if SENSORNET_OBS_ENABLED

#include <atomic>
#include <deque>
#include <map>
#include <mutex>
#include <thread>

namespace sensornet::obs {

namespace {

// Shard geometry. kShards bounds cross-thread contention (two threads only
// collide when their id hashes do); kCellsPerShard bounds how many metric
// cells the process can register. Both are deliberately fixed: cell arrays
// never reallocate, so the hot ops can index them without synchronization.
constexpr std::size_t kShards = 16;
constexpr std::size_t kCellsPerShard = 1024;
constexpr std::size_t kMaxGauges = 256;

struct alignas(64) Shard {
  std::atomic<std::uint64_t> cells[kCellsPerShard];
};

std::size_t this_thread_shard() {
  // Hashed once per thread; threads map stably to shards for their life.
  static thread_local const std::size_t shard =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards;
  return shard;
}

}  // namespace

struct Registry::Impl {
  struct Meta {
    std::string name;
    MetricKind kind;
    std::uint32_t cell;        // first shard cell / gauge slot
    std::uint32_t cell_count;  // 1, or bounds+1 for histograms
    std::vector<std::uint64_t> bounds;  // histogram only; address-stable
  };

  mutable std::mutex mu;              // registration + snapshot only
  std::deque<Meta> metas;             // deque: Meta::bounds stays put
  std::map<std::string, Meta*, std::less<>> by_name;
  std::uint32_t next_cell = 0;
  std::uint32_t next_gauge = 0;
  std::vector<Shard> shards{kShards};
  std::atomic<std::uint64_t> gauges[kMaxGauges] = {};
  std::atomic<bool> enabled{true};

  MetricId do_register(std::string_view name, MetricKind kind,
                       std::span<const std::uint64_t> bounds) {
    std::lock_guard<std::mutex> lock(mu);
    if (const auto it = by_name.find(name); it != by_name.end()) {
      Meta& m = *it->second;
      if (m.kind != kind ||
          (kind == MetricKind::kHistogram &&
           !std::equal(bounds.begin(), bounds.end(), m.bounds.begin(),
                       m.bounds.end()))) {
        throw std::logic_error("obs::Registry: metric '" + m.name +
                               "' re-registered with a different shape");
      }
      return MetricId{m.cell, m.kind,
                      kind == MetricKind::kHistogram ? &m.bounds : nullptr};
    }
    Meta meta;
    meta.name = std::string(name);
    meta.kind = kind;
    if (kind == MetricKind::kGauge) {
      if (next_gauge >= kMaxGauges) {
        throw std::length_error("obs::Registry: gauge capacity exhausted");
      }
      meta.cell = next_gauge++;
      meta.cell_count = 1;
    } else {
      if (!std::is_sorted(bounds.begin(), bounds.end()) ||
          std::adjacent_find(bounds.begin(), bounds.end()) != bounds.end()) {
        throw std::invalid_argument(
            "obs::Registry: histogram bounds must be strictly ascending");
      }
      const auto cells = static_cast<std::uint32_t>(bounds.size() + 1);
      if (next_cell + cells > kCellsPerShard) {
        throw std::length_error("obs::Registry: cell capacity exhausted");
      }
      meta.cell = next_cell;
      meta.cell_count = kind == MetricKind::kHistogram ? cells : 1;
      meta.bounds.assign(bounds.begin(), bounds.end());
      next_cell += meta.cell_count;
    }
    metas.push_back(std::move(meta));
    Meta& stored = metas.back();
    by_name.emplace(stored.name, &stored);
    return MetricId{stored.cell, stored.kind,
                    kind == MetricKind::kHistogram ? &stored.bounds : nullptr};
  }

  std::uint64_t sum_cell(std::uint32_t cell) const {
    std::uint64_t total = 0;
    for (const Shard& s : shards) {
      total += s.cells[cell].load(std::memory_order_relaxed);
    }
    return total;
  }
};

Registry::Registry() : impl_(new Impl) {}
Registry::~Registry() { delete impl_; }

Registry& Registry::global() {
  // Leaked intentionally: instrumentation in static destructors (and in
  // threads outliving main) must never touch a destroyed registry.
  static Registry* r = new Registry;
  return *r;
}

MetricId Registry::counter(std::string_view name) {
  return impl_->do_register(name, MetricKind::kCounter, {});
}

MetricId Registry::gauge(std::string_view name) {
  return impl_->do_register(name, MetricKind::kGauge, {});
}

MetricId Registry::histogram(std::string_view name,
                             std::span<const std::uint64_t> upper_bounds) {
  return impl_->do_register(name, MetricKind::kHistogram, upper_bounds);
}

void Registry::add(MetricId id, std::uint64_t delta) {
  if (!impl_->enabled.load(std::memory_order_relaxed)) return;
  impl_->shards[this_thread_shard()].cells[id.cell].fetch_add(
      delta, std::memory_order_relaxed);
}

void Registry::gauge_set(MetricId id, std::uint64_t value) {
  if (!impl_->enabled.load(std::memory_order_relaxed)) return;
  impl_->gauges[id.cell].store(value, std::memory_order_relaxed);
}

void Registry::gauge_add(MetricId id, std::uint64_t delta) {
  if (!impl_->enabled.load(std::memory_order_relaxed)) return;
  impl_->gauges[id.cell].fetch_add(delta, std::memory_order_relaxed);
}

void Registry::gauge_max(MetricId id, std::uint64_t value) {
  if (!impl_->enabled.load(std::memory_order_relaxed)) return;
  std::atomic<std::uint64_t>& g = impl_->gauges[id.cell];
  std::uint64_t cur = g.load(std::memory_order_relaxed);
  while (value > cur &&
         !g.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void Registry::observe(MetricId id, std::uint64_t value) {
  if (!impl_->enabled.load(std::memory_order_relaxed)) return;
  const std::vector<std::uint64_t>& bounds = *id.bounds;
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), value);
  const auto bucket = static_cast<std::uint32_t>(it - bounds.begin());
  impl_->shards[this_thread_shard()].cells[id.cell + bucket].fetch_add(
      1, std::memory_order_relaxed);
}

void Registry::set_enabled(bool on) {
  impl_->enabled.store(on, std::memory_order_relaxed);
}

bool Registry::enabled() const {
  return impl_->enabled.load(std::memory_order_relaxed);
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  Snapshot out;
  out.metrics.reserve(impl_->by_name.size());
  for (const auto& [name, meta] : impl_->by_name) {  // map order == name order
    MetricSnapshot m;
    m.name = name;
    m.kind = meta->kind;
    switch (meta->kind) {
      case MetricKind::kCounter:
        m.value = impl_->sum_cell(meta->cell);
        break;
      case MetricKind::kGauge:
        m.value = impl_->gauges[meta->cell].load(std::memory_order_relaxed);
        break;
      case MetricKind::kHistogram:
        m.hist.upper_bounds = meta->bounds;
        m.hist.counts.reserve(meta->cell_count);
        for (std::uint32_t c = 0; c < meta->cell_count; ++c) {
          m.hist.counts.push_back(impl_->sum_cell(meta->cell + c));
        }
        break;
    }
    out.metrics.push_back(std::move(m));
  }
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (Shard& s : impl_->shards) {
    for (std::size_t c = 0; c < kCellsPerShard; ++c) {
      s.cells[c].store(0, std::memory_order_relaxed);
    }
  }
  for (std::size_t g = 0; g < kMaxGauges; ++g) {
    impl_->gauges[g].store(0, std::memory_order_relaxed);
  }
}

}  // namespace sensornet::obs

#endif  // SENSORNET_OBS_ENABLED
