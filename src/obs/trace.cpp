#include "src/obs/trace.hpp"

#include <chrono>
#include <ostream>

namespace sensornet::obs {

std::uint64_t wall_ts_us() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point anchor = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            anchor)
          .count());
}

namespace {

void write_event_json(std::ostream& os, const TraceEvent& e) {
  os << "    {\"name\": \"" << e.name << "\", \"cat\": \"" << e.cat
     << "\", \"ph\": \"" << e.ph << "\", \"ts\": " << e.ts;
  if (e.ph == 'X') os << ", \"dur\": " << e.dur;
  os << ", \"pid\": 0, \"tid\": " << e.tid;
  if (e.arg_name[0] != nullptr) {
    os << ", \"args\": {\"" << e.arg_name[0] << "\": " << e.arg_val[0];
    if (e.arg_name[1] != nullptr) {
      os << ", \"" << e.arg_name[1] << "\": " << e.arg_val[1];
    }
    os << "}";
  }
  os << "}";
}

void write_trace_json(std::ostream& os, const std::vector<TraceEvent>& events,
                      std::uint64_t dropped) {
  os << "{\n  \"displayTimeUnit\": \"ms\",\n  \"droppedEventCount\": "
     << dropped << ",\n  \"traceEvents\": [\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    write_event_json(os, events[i]);
    os << (i + 1 < events.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace

}  // namespace sensornet::obs

#if SENSORNET_OBS_ENABLED

#include <atomic>
#include <mutex>

namespace sensornet::obs {

struct TraceRing::Impl {
  mutable std::mutex mu;
  std::vector<TraceEvent> ring;
  std::size_t capacity;
  std::size_t head = 0;   // next write position
  std::size_t count = 0;  // events currently buffered (<= capacity)
  std::uint64_t dropped = 0;
  std::atomic<bool> enabled{false};

  explicit Impl(std::size_t cap) : capacity(cap == 0 ? 1 : cap) {
    ring.resize(capacity);
  }

  void push(const TraceEvent& e) {
    std::lock_guard<std::mutex> lock(mu);
    if (count == capacity) {
      ++dropped;  // overwriting the oldest slot
    } else {
      ++count;
    }
    ring[head] = e;
    head = (head + 1) % capacity;
  }
};

TraceRing::TraceRing(std::size_t capacity) : impl_(new Impl(capacity)) {}
TraceRing::~TraceRing() { delete impl_; }

TraceRing& TraceRing::global() {
  // Leaked for the same reason as Registry::global().
  static TraceRing* t = new TraceRing;
  return *t;
}

bool TraceRing::enabled() const {
  return impl_->enabled.load(std::memory_order_relaxed);
}

void TraceRing::set_enabled(bool on) {
  impl_->enabled.store(on, std::memory_order_relaxed);
}

void TraceRing::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->capacity = capacity == 0 ? 1 : capacity;
  impl_->ring.assign(impl_->capacity, TraceEvent{});
  impl_->head = 0;
  impl_->count = 0;
  impl_->dropped = 0;
}

void TraceRing::clear() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->head = 0;
  impl_->count = 0;
  impl_->dropped = 0;
}

void TraceRing::instant(const char* name, const char* cat, std::uint64_t ts,
                        std::uint32_t tid, const char* a0, std::uint64_t v0,
                        const char* a1, std::uint64_t v1) {
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.ph = 'i';
  e.ts = ts;
  e.tid = tid;
  e.arg_name[0] = a0;
  e.arg_val[0] = v0;
  e.arg_name[1] = a1;
  e.arg_val[1] = v1;
  impl_->push(e);
}

void TraceRing::complete(const char* name, const char* cat, std::uint64_t ts,
                         std::uint64_t dur, std::uint32_t tid, const char* a0,
                         std::uint64_t v0, const char* a1, std::uint64_t v1) {
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.ph = 'X';
  e.ts = ts;
  e.dur = dur;
  e.tid = tid;
  e.arg_name[0] = a0;
  e.arg_val[0] = v0;
  e.arg_name[1] = a1;
  e.arg_val[1] = v1;
  impl_->push(e);
}

std::size_t TraceRing::size() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->count;
}

std::size_t TraceRing::capacity() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->capacity;
}

std::uint64_t TraceRing::dropped() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->dropped;
}

std::vector<TraceEvent> TraceRing::events() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<TraceEvent> out;
  out.reserve(impl_->count);
  // Oldest event sits at head when the ring has wrapped, at 0 otherwise.
  const std::size_t start =
      impl_->count == impl_->capacity ? impl_->head : 0;
  for (std::size_t i = 0; i < impl_->count; ++i) {
    out.push_back(impl_->ring[(start + i) % impl_->capacity]);
  }
  return out;
}

void TraceRing::export_chrome_json(std::ostream& os) const {
  write_trace_json(os, events(), dropped());
}

}  // namespace sensornet::obs

#else  // SENSORNET_OBS_ENABLED

namespace sensornet::obs {

void TraceRing::export_chrome_json(std::ostream& os) const {
  write_trace_json(os, {}, 0);
}

}  // namespace sensornet::obs

#endif  // SENSORNET_OBS_ENABLED
