// Structured trace ring with a Chrome trace_event JSON exporter.
//
// Instrumented sites (message send/deliver, spanning-tree collection
// start/descend/serve-from-cache, query admit/answer, farm task run/steal)
// push fixed-size events into a bounded ring; export_chrome_json() writes
// the ring in the Chrome trace_event format, so any run opens directly in
// chrome://tracing or https://ui.perfetto.dev.
//
// Timestamps are caller-supplied, deliberately: simulation- and
// service-driven events stamp the *simulated* clock (sim::Network::now()
// ticks, rendered as microseconds), which makes a trace of a seeded run
// fully deterministic — tests/obs/trace_test.cpp pins a golden trace of a
// 4-node run byte-for-byte. Wall-clock sites (the trial farm) stamp
// wall_ts_us() instead; the two domains share a timeline, which is fine
// for a viewer and irrelevant to determinism (farm events are never part
// of a pinned trace).
//
// The ring is disabled by default and costs one predicted branch per site
// (enabled() is a relaxed atomic load; with SENSORNET_OBS=OFF it is a
// compile-time false and the sites fold away entirely). When enabled,
// recording takes a mutex — tracing is a diagnosis mode, not a steady-state
// one, and the coarse lock keeps the ring trivially ThreadSanitizer-clean.
// A full ring drops the OLDEST event (and counts the drop), so a trace
// always holds the most recent window of activity.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "src/obs/metrics.hpp"  // kObsEnabled

namespace sensornet::obs {

/// One trace_event. Name/category/argument-name strings must be string
/// literals (or otherwise outlive the ring) — the ring stores pointers.
struct TraceEvent {
  const char* name = "";
  const char* cat = "";
  char ph = 'i';            // 'i' instant, 'X' complete (ts + dur)
  std::uint64_t ts = 0;     // microseconds (simulated or wall, see header)
  std::uint64_t dur = 0;    // 'X' only
  std::uint32_t tid = 0;    // 0 = serial/main; farm workers use 1-based ids
  const char* arg_name[2] = {nullptr, nullptr};
  std::uint64_t arg_val[2] = {0, 0};
};

/// Microseconds since the first call — the wall-clock domain for events
/// with no simulated timestamp (trial-farm scheduling).
std::uint64_t wall_ts_us();

#if SENSORNET_OBS_ENABLED

class TraceRing {
 public:
  static TraceRing& global();

  explicit TraceRing(std::size_t capacity = kDefaultCapacity);
  ~TraceRing();
  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Cheap gate for instrumentation sites: record only when enabled.
  bool enabled() const;
  void set_enabled(bool on);
  /// Drops all buffered events and resizes the ring.
  void set_capacity(std::size_t capacity);
  void clear();

  void instant(const char* name, const char* cat, std::uint64_t ts,
               std::uint32_t tid = 0, const char* a0 = nullptr,
               std::uint64_t v0 = 0, const char* a1 = nullptr,
               std::uint64_t v1 = 0);
  /// A completed span: [ts, ts + dur].
  void complete(const char* name, const char* cat, std::uint64_t ts,
                std::uint64_t dur, std::uint32_t tid = 0,
                const char* a0 = nullptr, std::uint64_t v0 = 0,
                const char* a1 = nullptr, std::uint64_t v1 = 0);

  std::size_t size() const;
  std::size_t capacity() const;
  /// Events evicted because the ring was full (oldest-dropped).
  std::uint64_t dropped() const;
  /// Buffered events, oldest first.
  std::vector<TraceEvent> events() const;

  /// Chrome trace_event JSON ({"traceEvents": [...]}): open the file in
  /// chrome://tracing or Perfetto. Deterministic for a deterministic ring.
  void export_chrome_json(std::ostream& os) const;

  static constexpr std::size_t kDefaultCapacity = 1 << 16;

 private:
  struct Impl;
  Impl* impl_;
};

#else  // SENSORNET_OBS_ENABLED

class TraceRing {
 public:
  static TraceRing& global() {
    static TraceRing t;
    return t;
  }
  explicit TraceRing(std::size_t = kDefaultCapacity) {}
  /// Compile-time false: `if (ring.enabled())` sites fold away entirely.
  static constexpr bool enabled() { return false; }
  void set_enabled(bool) {}
  void set_capacity(std::size_t) {}
  void clear() {}
  void instant(const char*, const char*, std::uint64_t, std::uint32_t = 0,
               const char* = nullptr, std::uint64_t = 0,
               const char* = nullptr, std::uint64_t = 0) {}
  void complete(const char*, const char*, std::uint64_t, std::uint64_t,
                std::uint32_t = 0, const char* = nullptr, std::uint64_t = 0,
                const char* = nullptr, std::uint64_t = 0) {}
  std::size_t size() const { return 0; }
  std::size_t capacity() const { return 0; }
  std::uint64_t dropped() const { return 0; }
  std::vector<TraceEvent> events() const { return {}; }
  void export_chrome_json(std::ostream& os) const;

  static constexpr std::size_t kDefaultCapacity = 1 << 16;
};

#endif  // SENSORNET_OBS_ENABLED

}  // namespace sensornet::obs
