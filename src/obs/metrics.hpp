// Metrics registry: counters, gauges and fixed-bucket histograms for the
// whole stack (src/obs is the base observability layer — every other
// library links it, so any layer can meter itself without new plumbing).
//
// Design constraints, in order:
//
//   1. Zero semantic footprint. Metrics never feed back into protocol or
//      scheduler decisions, so a run's delivery counts and checksums are
//      byte-identical whether the registry is compiled in, compiled out
//      (-DSENSORNET_OBS=OFF) or runtime-disabled (set_enabled(false)).
//   2. No hot-path serialization. Counter and histogram cells are sharded:
//      a thread picks a shard by hashing its id, and increments are relaxed
//      atomic adds into that shard — no locks, no cross-worker cache-line
//      ping-pong on the trial farm. Shards are merged only at snapshot().
//   3. Deterministic snapshots. A snapshot lists metrics in name order and
//      sums shards in index order, so two runs of a deterministic workload
//      produce byte-identical Snapshot::to_string() output at any worker
//      count — pinned by tests/obs/registry_test.cpp.
//
// Registration (cold, mutex-guarded) hands out a MetricId whose fields are
// all an increment needs; the hot ops never touch registry bookkeeping.
// Registering the same (name, kind, geometry) twice returns the same id,
// so call sites can re-register per run instead of caching globals.
//
// When the library is configured with -DSENSORNET_OBS=OFF every method
// below compiles to an inline no-op (see the #else half), so call sites
// stay unconditional and cost nothing.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace sensornet::obs {

#if SENSORNET_OBS_ENABLED
inline constexpr bool kObsEnabled = true;
#else
inline constexpr bool kObsEnabled = false;
#endif

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Everything an increment needs, resolved once at registration: the hot
/// ops index straight into the shard arrays and never lock.
struct MetricId {
  std::uint32_t cell = 0;  // first cell (counter/histogram) or gauge slot
  MetricKind kind = MetricKind::kCounter;
  /// Histograms only: pointer into registry-owned, immutable bound storage
  /// (stable until the registry dies; reset() keeps registrations).
  const std::vector<std::uint64_t>* bounds = nullptr;
};

struct HistogramSnapshot {
  /// Finite upper bounds, ascending; an overflow bucket (> last bound) is
  /// implied. Bucket i counts observations v with bounds[i-1] < v <=
  /// bounds[i] (first bucket: v <= bounds[0]).
  std::vector<std::uint64_t> upper_bounds;
  std::vector<std::uint64_t> counts;  // upper_bounds.size() + 1 entries
  std::uint64_t total() const;
};

struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t value = 0;  // counter total or gauge value
  HistogramSnapshot hist;   // kHistogram only
};

/// A merged, name-ordered view of every registered metric.
struct Snapshot {
  std::vector<MetricSnapshot> metrics;

  const MetricSnapshot* find(std::string_view name) const;
  /// Counter/gauge value by name; 0 when absent (histograms: total()).
  std::uint64_t value(std::string_view name) const;
  /// Canonical text form, one line per metric — the determinism tests and
  /// bench reports compare/emit this.
  std::string to_string() const;
  void write_json(std::ostream& os, int indent) const;
};

#if SENSORNET_OBS_ENABLED

class Registry {
 public:
  /// The process-wide registry every built-in instrumentation site uses.
  static Registry& global();

  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // ---- registration (cold; mutex-guarded; idempotent per name) ----------
  MetricId counter(std::string_view name);
  MetricId gauge(std::string_view name);
  MetricId histogram(std::string_view name,
                     std::span<const std::uint64_t> upper_bounds);

  // ---- hot ops (lock-free; no-ops while disabled) -----------------------
  void add(MetricId id, std::uint64_t delta = 1);      // counter
  void gauge_set(MetricId id, std::uint64_t value);    // last write wins
  void gauge_add(MetricId id, std::uint64_t delta);
  void gauge_max(MetricId id, std::uint64_t value);    // high-water mark
  void observe(MetricId id, std::uint64_t value);      // histogram

  /// Runtime kill switch: while disabled, the hot ops return without
  /// touching any cell. Used by the bench overhead lane to measure the
  /// instrumented-but-idle cost; compile with SENSORNET_OBS=OFF to remove
  /// the instructions entirely.
  void set_enabled(bool on);
  bool enabled() const;

  /// Merges all shards into a name-ordered snapshot.
  Snapshot snapshot() const;
  /// Zeroes every cell; registrations (names, ids, bounds) survive.
  void reset();

 private:
  struct Impl;
  Impl* impl_;
};

#else  // SENSORNET_OBS_ENABLED

/// Compiled-out registry: same API, every member an inline no-op the
/// optimizer deletes. Call sites need no #ifdefs.
class Registry {
 public:
  static Registry& global() {
    static Registry r;
    return r;
  }
  MetricId counter(std::string_view) { return {}; }
  MetricId gauge(std::string_view) { return {}; }
  MetricId histogram(std::string_view, std::span<const std::uint64_t>) {
    return {};
  }
  void add(MetricId, std::uint64_t = 1) {}
  void gauge_set(MetricId, std::uint64_t) {}
  void gauge_add(MetricId, std::uint64_t) {}
  void gauge_max(MetricId, std::uint64_t) {}
  void observe(MetricId, std::uint64_t) {}
  void set_enabled(bool) {}
  bool enabled() const { return false; }
  Snapshot snapshot() const { return {}; }
  void reset() {}
};

#endif  // SENSORNET_OBS_ENABLED

}  // namespace sensornet::obs
