// Query execution over a deployment.
//
// TinyDB-style lifecycle: the parsed query's WHERE filter is disseminated
// down the tree first (nodes install it as local state — those bits are
// metered like any other), then the planned protocol runs over the filtered
// view. The result carries the answer and the exact communication bill of
// this query.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/types.hpp"
#include "src/net/spanning_tree.hpp"
#include "src/query/ast.hpp"
#include "src/query/planner.hpp"
#include "src/sim/network.hpp"

namespace sensornet::query {

struct Deployment {
  sim::Network& net;
  const net::SpanningTree& tree;
  /// Known upper bound X on readings (the model's assumption).
  Value max_value_bound;
};

struct QueryResult {
  double value = 0.0;
  bool is_exact = true;
  std::string plan;          // human-readable strategy line
  std::uint64_t max_node_bits = 0;  // this query's individual communication
  std::uint64_t total_bits = 0;
  std::uint64_t messages = 0;
};

class Executor {
 public:
  explicit Executor(Deployment deployment);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Parse, plan and run one query (planned without a cube catalog: the
  /// one-shot executor always collects over the tree).
  QueryResult run(const std::string& text);

  /// Run an already-parsed query under an explicit plan. The executor
  /// consumes the plan's strategy knobs and ignores its step program —
  /// it IS the tree-collect fallback every plan can degrade to.
  QueryResult run(const Query& q, const CostedPlan& plan);

 private:
  class FilterView;

  /// Installs (or clears) the WHERE filter at every node via a tree
  /// broadcast; returns the view protocols should use.
  void install_filter(const std::optional<Condition>& cond);

  Deployment deployment_;
  std::vector<std::optional<Condition>> node_filters_;
  std::unique_ptr<FilterView> view_;
  std::uint32_t next_broadcast_session_ = 0x6000;
};

/// True if `x` satisfies the condition (shared by executor and tests).
bool condition_matches(const Condition& cond, Value x);

}  // namespace sensornet::query
