// Tokenizer for the query language.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/error.hpp"

namespace sensornet::query {

/// Raised on any lexical or syntactic problem; carries a position.
class QueryError : public PreconditionError {
 public:
  QueryError(const std::string& what, std::size_t position)
      : PreconditionError(what + " (at offset " + std::to_string(position) +
                          ")"),
        position_(position) {}
  std::size_t position() const { return position_; }

 private:
  std::size_t position_;
};

enum class TokenKind {
  kIdent,   // keywords are idents, matched case-insensitively by the parser
  kNumber,  // integer or decimal literal
  kLParen,
  kRParen,
  kComma,
  kSemicolon,
  kLt,      // <
  kLe,      // <=
  kGt,      // >
  kGe,      // >=
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     // identifier spelled as written / number literal
  double number = 0.0;  // valid when kind == kNumber
  std::size_t position = 0;
};

/// Tokenizes `text`; the final token is always kEnd.
std::vector<Token> tokenize(const std::string& text);

}  // namespace sensornet::query
