#include "src/query/parser.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "src/query/lexer.hpp"

namespace sensornet::query {

namespace {

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return s;
}

class Parser {
 public:
  explicit Parser(const std::string& text)
      : tokens_(tokenize(text)), text_(text) {}

  Query parse() {
    Query q;
    q.text = text_;
    expect_keyword("SELECT");
    parse_aggregate(q);
    expect_keyword("FROM");
    expect(TokenKind::kIdent, "table name");
    advance();
    if (at_keyword("WHERE")) {
      advance();
      q.where = parse_condition();
    }
    if (at_keyword("EVERY")) {
      advance();
      const double n = expect_number("epoch interval");
      if (n < 1.0 || std::floor(n) != n || n > 1e6) {
        throw QueryError("EVERY interval must be a positive whole number "
                         "of epochs",
                         previous_position_);
      }
      if (!at_keyword("EPOCHS") && !at_keyword("EPOCH")) {
        throw QueryError("expected 'EPOCHS' after the EVERY interval",
                         current().position);
      }
      advance();
      q.every_epochs = static_cast<std::uint32_t>(n);
    }
    if (at_keyword("ERROR")) {
      advance();
      const double e = expect_number("error bound");
      if (e <= 0.0 || e >= 1.0) {
        throw QueryError("ERROR must be in (0, 1)", previous_position_);
      }
      q.error = e;
    }
    if (at_keyword("CONFIDENCE")) {
      advance();
      const double c = expect_number("confidence");
      if (c <= 0.0 || c >= 1.0) {
        throw QueryError("CONFIDENCE must be in (0, 1)", previous_position_);
      }
      q.confidence = c;
    }
    if (current().kind == TokenKind::kSemicolon) advance();
    if (current().kind != TokenKind::kEnd) {
      throw QueryError("trailing input after query", current().position);
    }
    return q;
  }

 private:
  const Token& current() const { return tokens_[pos_]; }

  void advance() {
    previous_position_ = current().position;
    if (current().kind != TokenKind::kEnd) ++pos_;
  }

  bool at_keyword(const char* kw) const {
    return current().kind == TokenKind::kIdent && upper(current().text) == kw;
  }

  void expect_keyword(const char* kw) {
    if (!at_keyword(kw)) {
      throw QueryError(std::string("expected '") + kw + "'",
                       current().position);
    }
    advance();
  }

  void expect(TokenKind kind, const char* what) {
    if (current().kind != kind) {
      throw QueryError(std::string("expected ") + what, current().position);
    }
  }

  double expect_number(const char* what) {
    expect(TokenKind::kNumber, what);
    const double v = current().number;
    advance();
    return v;
  }

  void parse_aggregate(Query& q) {
    expect(TokenKind::kIdent, "aggregate name");
    const std::string name = upper(current().text);
    if (name == "MIN") q.agg = AggregateKind::kMin;
    else if (name == "MAX") q.agg = AggregateKind::kMax;
    else if (name == "COUNT") q.agg = AggregateKind::kCount;
    else if (name == "SUM") q.agg = AggregateKind::kSum;
    else if (name == "AVG") q.agg = AggregateKind::kAvg;
    else if (name == "MEDIAN") q.agg = AggregateKind::kMedian;
    else if (name == "QUANTILE") q.agg = AggregateKind::kQuantile;
    else if (name == "COUNT_DISTINCT") q.agg = AggregateKind::kCountDistinct;
    else throw QueryError("unknown aggregate '" + current().text + "'",
                          current().position);
    advance();

    if (current().kind != TokenKind::kLParen) {
      throw QueryError("expected '(' after aggregate", current().position);
    }
    advance();
    expect(TokenKind::kIdent, "attribute name");
    q.attribute = current().text;
    advance();
    if (q.agg == AggregateKind::kQuantile) {
      if (current().kind != TokenKind::kComma) {
        throw QueryError("QUANTILE needs a rank fraction", current().position);
      }
      advance();
      const double phi = expect_number("quantile fraction");
      if (phi <= 0.0 || phi >= 1.0) {
        throw QueryError("quantile fraction must be in (0, 1)",
                         previous_position_);
      }
      q.quantile_phi = phi;
    }
    if (current().kind != TokenKind::kRParen) {
      throw QueryError("expected ')'", current().position);
    }
    advance();
  }

  Condition parse_condition() {
    expect(TokenKind::kIdent, "attribute in WHERE");
    advance();
    Condition cond;
    if (at_keyword("BETWEEN")) {
      // WHERE attr BETWEEN lo AND hi (inclusive). Inverted bounds are a
      // *planning* error (region_signature pins the diagnostic), not a
      // syntax error.
      advance();
      cond.cmp = Condition::Cmp::kBetween;
      cond.literal = parse_range_literal("BETWEEN lower bound");
      if (!at_keyword("AND")) {
        throw QueryError("expected 'AND' between BETWEEN bounds",
                         current().position);
      }
      advance();
      cond.literal2 = parse_range_literal("BETWEEN upper bound");
      return cond;
    }
    switch (current().kind) {
      case TokenKind::kLt: cond.cmp = Condition::Cmp::kLt; break;
      case TokenKind::kLe: cond.cmp = Condition::Cmp::kLe; break;
      case TokenKind::kGt: cond.cmp = Condition::Cmp::kGt; break;
      case TokenKind::kGe: cond.cmp = Condition::Cmp::kGe; break;
      default:
        throw QueryError("expected comparison operator", current().position);
    }
    advance();
    cond.literal = parse_range_literal("comparison literal");
    return cond;
  }

  Value parse_range_literal(const char* what) {
    const double lit = expect_number(what);
    if (lit < 0.0 || std::floor(lit) != lit) {
      throw QueryError(std::string(what) +
                           " must be a non-negative integer",
                       previous_position_);
    }
    return static_cast<Value>(lit);
  }

  std::vector<Token> tokens_;
  std::string text_;
  std::size_t pos_ = 0;
  std::size_t previous_position_ = 0;
};

}  // namespace

Query parse_query(const std::string& text) { return Parser(text).parse(); }

}  // namespace sensornet::query
