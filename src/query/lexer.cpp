#include "src/query/lexer.hpp"

#include <cctype>

namespace sensornet::query {

std::vector<Token> tokenize(const std::string& text) {
  std::vector<Token> out;
  std::size_t i = 0;
  const auto peek = [&](std::size_t off = 0) -> char {
    return i + off < text.size() ? text[i + off] : '\0';
  };
  while (i < text.size()) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token t;
    t.position = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[j])) ||
              text[j] == '_')) {
        ++j;
      }
      t.kind = TokenKind::kIdent;
      t.text = text.substr(i, j - i);
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      std::size_t j = i;
      bool seen_dot = false;
      while (j < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[j])) ||
              (text[j] == '.' && !seen_dot))) {
        if (text[j] == '.') seen_dot = true;
        ++j;
      }
      t.kind = TokenKind::kNumber;
      t.text = text.substr(i, j - i);
      t.number = std::stod(t.text);
      i = j;
    } else {
      switch (c) {
        case '(': t.kind = TokenKind::kLParen; ++i; break;
        case ')': t.kind = TokenKind::kRParen; ++i; break;
        case ',': t.kind = TokenKind::kComma; ++i; break;
        case ';': t.kind = TokenKind::kSemicolon; ++i; break;
        case '<':
          if (peek(1) == '=') {
            t.kind = TokenKind::kLe;
            i += 2;
          } else {
            t.kind = TokenKind::kLt;
            ++i;
          }
          break;
        case '>':
          if (peek(1) == '=') {
            t.kind = TokenKind::kGe;
            i += 2;
          } else {
            t.kind = TokenKind::kGt;
            ++i;
          }
          break;
        default:
          throw QueryError(std::string("unexpected character '") + c + "'",
                           i);
      }
    }
    out.push_back(std::move(t));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.position = text.size();
  out.push_back(end);
  return out;
}

}  // namespace sensornet::query
