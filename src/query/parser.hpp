// Recursive-descent parser:
//
//   query  := SELECT agg FROM ident (WHERE cond)? (ERROR num)?
//             (CONFIDENCE num)? ';'?
//   agg    := (MIN|MAX|COUNT|SUM|AVG|MEDIAN|COUNT_DISTINCT) '(' ident ')'
//           | QUANTILE '(' ident ',' num ')'
//   cond   := ident ('<'|'<='|'>'|'>=') num
//
// Keywords are case-insensitive; the attribute name is free-form.
#pragma once

#include <string>

#include "src/query/ast.hpp"

namespace sensornet::query {

/// Parses one query; throws QueryError with an offset on malformed input.
Query parse_query(const std::string& text);

}  // namespace sensornet::query
