#include "src/query/executor.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "src/common/codec.hpp"
#include "src/common/error.hpp"
#include "src/core/apx_median2.hpp"
#include "src/core/count_distinct.hpp"
#include "src/core/det_median.hpp"
#include "src/proto/aggregations.hpp"
#include "src/proto/approx_counting.hpp"
#include "src/proto/counting_service.hpp"
#include "src/proto/tree_broadcast.hpp"
#include "src/proto/tree_wave.hpp"
#include "src/query/lexer.hpp"
#include "src/query/parser.hpp"
#include "src/sketch/hll.hpp"

namespace sensornet::query {

bool condition_matches(const Condition& cond, Value x) {
  switch (cond.cmp) {
    case Condition::Cmp::kLt: return x < cond.literal;
    case Condition::Cmp::kLe: return x <= cond.literal;
    case Condition::Cmp::kGt: return x > cond.literal;
    case Condition::Cmp::kGe: return x >= cond.literal;
    case Condition::Cmp::kBetween:
      return x >= cond.literal && x <= cond.literal2;
  }
  return false;
}

/// Items passing the node's installed WHERE filter.
class Executor::FilterView final : public proto::LocalItemView {
 public:
  explicit FilterView(const std::vector<std::optional<Condition>>& filters)
      : filters_(filters) {}

  ValueSet items(sim::Network& net, NodeId node) const override {
    const auto& filter = filters_[node];
    const auto view = net.items(node);
    if (!filter) return ValueSet(view.begin(), view.end());
    ValueSet out;
    for (const Value x : view) {
      if (condition_matches(*filter, x)) out.push_back(x);
    }
    return out;
  }

 private:
  const std::vector<std::optional<Condition>>& filters_;
};

Executor::Executor(Deployment deployment)
    : deployment_(deployment),
      node_filters_(deployment.net.node_count()),
      view_(std::make_unique<FilterView>(node_filters_)) {}

Executor::~Executor() = default;

void Executor::install_filter(const std::optional<Condition>& cond) {
  // Query dissemination: 1 bit for "filtered?", then cmp + literal(s). Even
  // clearing a filter costs a broadcast — epochs don't share state for free.
  proto::TreeBroadcast bc(
      deployment_.tree, next_broadcast_session_++,
      [this](sim::Network&, NodeId node, BitReader r) {
        if (!r.read_bit()) {
          node_filters_[node].reset();
          return;
        }
        Condition c;
        c.cmp = static_cast<Condition::Cmp>(r.read_bits(3));
        c.literal = static_cast<Value>(decode_uint(r));
        if (c.cmp == Condition::Cmp::kBetween) {
          c.literal2 = static_cast<Value>(decode_uint(r));
        }
        node_filters_[node] = c;
      });
  BitWriter w;
  w.write_bit(cond.has_value());
  if (cond) {
    w.write_bits(static_cast<std::uint64_t>(cond->cmp), 3);
    encode_uint(w, static_cast<std::uint64_t>(cond->literal));
    if (cond->cmp == Condition::Cmp::kBetween) {
      encode_uint(w, static_cast<std::uint64_t>(cond->literal2));
    }
  }
  bc.execute(deployment_.net, std::move(w));
}

QueryResult Executor::run(const std::string& text) {
  const Query q = parse_query(text);
  const Planner planner(deployment_.max_value_bound);
  Result<CostedPlan> planned = planner.plan(q);
  if (!planned.ok()) throw QueryError(planned.error(), 0);
  return run(q, planned.value());
}

QueryResult Executor::run(const Query& q, const CostedPlan& plan) {
  sim::Network& net = deployment_.net;
  const auto before = net.all_stats();
  const SimTime t0 = net.now();

  install_filter(q.where);

  QueryResult res;
  res.plan = plan.description;

  switch (plan.strategy) {
    case Strategy::kPrimitiveWave: {
      proto::TreeCountingService svc(net, deployment_.tree, *view_);
      switch (q.agg) {
        case AggregateKind::kMin: {
          const auto v = svc.min_value();
          if (!v) throw PreconditionError("MIN over an empty selection");
          res.value = static_cast<double>(*v);
          break;
        }
        case AggregateKind::kMax: {
          const auto v = svc.max_value();
          if (!v) throw PreconditionError("MAX over an empty selection");
          res.value = static_cast<double>(*v);
          break;
        }
        case AggregateKind::kCount:
          res.value = static_cast<double>(svc.count_all());
          break;
        case AggregateKind::kSum:
        case AggregateKind::kAvg: {
          proto::TreeWave<proto::SumAgg> wave(deployment_.tree, 0x6800,
                                              *view_);
          const auto sum = wave.execute(
              net, proto::SumAgg::Request{proto::Predicate::always_true()});
          if (q.agg == AggregateKind::kSum) {
            res.value = static_cast<double>(sum);
          } else {
            const std::uint64_t n = svc.count_all();
            if (n == 0) throw PreconditionError("AVG over an empty selection");
            res.value = static_cast<double>(sum) / static_cast<double>(n);
          }
          break;
        }
        default:
          throw ProtocolError("primitive wave cannot answer this aggregate");
      }
      res.is_exact = true;
      break;
    }
    case Strategy::kApproxCount: {
      proto::ApxCountConfig cfg;
      cfg.registers = plan.registers;
      proto::TreeApproxCountingService svc(net, deployment_.tree, cfg,
                                           *view_);
      res.value = svc.apx_count(proto::Predicate::always_true());
      res.is_exact = false;
      break;
    }
    case Strategy::kApproxSum: {
      // ODI sum sketch ([2]); register width must absorb ranks from up to
      // N * X unit observations.
      proto::LogLogAgg::Request req;
      req.registers = static_cast<std::uint16_t>(plan.registers);
      req.width = static_cast<std::uint8_t>(sketch::packed_width_for(
          static_cast<std::uint64_t>(net.node_count()) *
          static_cast<std::uint64_t>(deployment_.max_value_bound | 1)));
      req.mode = proto::LogLogAgg::Mode::kSumOdi;
      proto::TreeWave<proto::LogLogAgg> wave(deployment_.tree, 0x6900,
                                             *view_);
      const double sum = wave.execute(net, req).estimate();
      if (q.agg == AggregateKind::kSum) {
        res.value = sum;
      } else {
        proto::ApxCountConfig cfg;
        cfg.registers = plan.registers;
        proto::TreeApproxCountingService counter(net, deployment_.tree, cfg,
                                                 *view_);
        const double count =
            counter.apx_count(proto::Predicate::always_true());
        if (count < 0.5) throw PreconditionError("AVG over an empty selection");
        res.value = sum / count;
      }
      res.is_exact = false;
      break;
    }
    case Strategy::kExactSelection: {
      proto::TreeCountingService svc(net, deployment_.tree, *view_);
      const std::uint64_t n = svc.count_all();
      if (n == 0) throw PreconditionError("selection over an empty input");
      const double phi = q.agg == AggregateKind::kQuantile ? q.quantile_phi : 0.5;
      auto twice_k = static_cast<std::int64_t>(
          std::llround(2.0 * phi * static_cast<double>(n)));
      twice_k = std::clamp<std::int64_t>(twice_k, 1,
                                         2 * static_cast<std::int64_t>(n));
      res.value = static_cast<double>(
          core::deterministic_order_statistic(svc, twice_k).value);
      res.is_exact = true;
      break;
    }
    case Strategy::kApproxSelection: {
      core::ApxMedian2Params params;
      params.beta = plan.beta;
      params.epsilon = plan.epsilon;
      params.registers = plan.registers;
      params.max_value_bound = deployment_.max_value_bound;
      params.rank_phi = q.agg == AggregateKind::kQuantile ? q.quantile_phi : 0.5;
      // The proof schedule's repetition counts are sized for adversarial
      // inputs; interactive queries run a toned-down schedule and surface
      // the trade in the plan line.
      params.rep_scale = 0.25;
      const auto r =
          core::approx_median2(net, deployment_.tree, params, *view_);
      res.value = static_cast<double>(r.value);
      res.is_exact = false;
      break;
    }
    case Strategy::kExactDistinct: {
      res.value = static_cast<double>(
          core::exact_count_distinct(net, deployment_.tree, *view_).distinct);
      res.is_exact = true;
      break;
    }
    case Strategy::kApproxDistinct: {
      res.value = core::approx_count_distinct(
                      net, deployment_.tree, plan.registers,
                      proto::EstimatorKind::kHyperLogLog, *view_)
                      .estimate;
      res.is_exact = false;
      break;
    }
  }

  const auto window =
      sim::window_summary(before, net.all_stats(), net.now() - t0,
                          /*include_headers=*/false);
  res.max_node_bits = window.max_node_bits;
  res.total_bits = window.total_bits;
  res.messages = window.total_messages;
  return res;
}

}  // namespace sensornet::query
