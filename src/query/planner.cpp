#include "src/query/planner.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"
#include "src/query/lexer.hpp"

namespace sensornet::query {

const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kPrimitiveWave: return "primitive-wave";
    case Strategy::kApproxCount: return "approx-count(loglog)";
    case Strategy::kApproxSum: return "approx-sum(odi-sketch)";
    case Strategy::kExactSelection: return "exact-selection(fig1)";
    case Strategy::kApproxSelection: return "approx-selection(fig4)";
    case Strategy::kExactDistinct: return "exact-distinct(set-union)";
    case Strategy::kApproxDistinct: return "approx-distinct(hashed-loglog)";
  }
  return "?";
}

namespace {

/// Registers m so the estimator's sigma ~ 1.04/sqrt(m) meets the requested
/// relative error, clamped to a practical power-of-two range.
unsigned registers_for_error(double error) {
  const double need = 1.04 / error;
  double m = 16.0;
  while (m < need * need && m < 4096.0) m *= 2.0;
  return static_cast<unsigned>(m);
}

}  // namespace

Plan plan_query(const Query& q) {
  Plan plan;
  plan.epsilon = std::clamp(1.0 - q.confidence, 1e-6, 0.5);
  switch (q.agg) {
    case AggKind::kMin:
    case AggKind::kMax:
      plan.strategy = Strategy::kPrimitiveWave;
      break;
    case AggKind::kSum:
    case AggKind::kAvg:
      if (q.error) {
        plan.strategy = Strategy::kApproxSum;
        plan.registers = registers_for_error(*q.error);
      } else {
        plan.strategy = Strategy::kPrimitiveWave;
      }
      break;
    case AggKind::kCount:
      if (q.error) {
        plan.strategy = Strategy::kApproxCount;
        plan.registers = registers_for_error(*q.error);
      } else {
        plan.strategy = Strategy::kPrimitiveWave;
      }
      break;
    case AggKind::kMedian:
    case AggKind::kQuantile:
      if (q.error) {
        plan.strategy = Strategy::kApproxSelection;
        plan.beta = *q.error;
        plan.registers = 64;
      } else {
        plan.strategy = Strategy::kExactSelection;
      }
      break;
    case AggKind::kCountDistinct:
      if (q.error) {
        plan.strategy = Strategy::kApproxDistinct;
        plan.registers = registers_for_error(*q.error);
      } else {
        plan.strategy = Strategy::kExactDistinct;
      }
      break;
  }
  plan.description = std::string(agg_name(q.agg)) + " via " +
                     strategy_name(plan.strategy);
  return plan;
}

RegionSignature region_signature(const Query& q, Value max_value_bound) {
  SENSORNET_EXPECTS(max_value_bound >= 0);
  RegionSignature sig;
  sig.lo = 0;
  sig.hi = max_value_bound;
  if (q.where) {
    switch (q.where->cmp) {
      case Condition::Cmp::kLt: sig.hi = q.where->literal - 1; break;
      case Condition::Cmp::kLe: sig.hi = q.where->literal; break;
      case Condition::Cmp::kGt: sig.lo = q.where->literal + 1; break;
      case Condition::Cmp::kGe: sig.lo = q.where->literal; break;
      case Condition::Cmp::kBetween:
        sig.lo = q.where->literal;
        sig.hi = q.where->literal2;
        if (sig.lo > sig.hi) {
          throw QueryError(
              "WHERE range is empty (lower bound exceeds upper bound)", 0);
        }
        break;
    }
  }
  if (sig.hi < 0 || sig.lo > max_value_bound || sig.lo > sig.hi) {
    throw QueryError("WHERE range selects no representable value", 0);
  }
  sig.hi = std::min(sig.hi, max_value_bound);
  sig.whole_domain = sig.lo == 0 && sig.hi == max_value_bound;
  return sig;
}

}  // namespace sensornet::query
