#include "src/query/planner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <tuple>
#include <vector>

#include "src/common/error.hpp"
#include "src/query/lexer.hpp"

namespace sensornet::query {

unsigned registers_for_error(double error) {
  const double need = 1.04 / error;
  double m = 16.0;
  while (m < need * need && m < 4096.0) m *= 2.0;
  return static_cast<unsigned>(m);
}

RegionSignature region_signature(const Query& q, Value max_value_bound) {
  SENSORNET_EXPECTS(max_value_bound >= 0);
  RegionSignature sig;
  sig.lo = 0;
  sig.hi = max_value_bound;
  if (q.where) {
    switch (q.where->cmp) {
      case Condition::Cmp::kLt: sig.hi = q.where->literal - 1; break;
      case Condition::Cmp::kLe: sig.hi = q.where->literal; break;
      case Condition::Cmp::kGt: sig.lo = q.where->literal + 1; break;
      case Condition::Cmp::kGe: sig.lo = q.where->literal; break;
      case Condition::Cmp::kBetween:
        sig.lo = q.where->literal;
        sig.hi = q.where->literal2;
        if (sig.lo > sig.hi) {
          throw QueryError(
              "WHERE range is empty (lower bound exceeds upper bound)", 0);
        }
        break;
    }
  }
  if (sig.hi < 0 || sig.lo > max_value_bound || sig.lo > sig.hi) {
    throw QueryError("WHERE range selects no representable value", 0);
  }
  sig.hi = std::min(sig.hi, max_value_bound);
  sig.whole_domain = sig.lo == 0 && sig.hi == max_value_bound;
  return sig;
}

Planner::Planner(Value max_value_bound, const CubeCatalog* catalog)
    : max_value_bound_(max_value_bound), catalog_(catalog) {
  SENSORNET_EXPECTS(max_value_bound >= 0);
}

Result<CostedPlan> Planner::plan(const Query& q) const {
  CostedPlan plan;
  plan.epsilon = std::clamp(1.0 - q.confidence, 1e-6, 0.5);
  switch (q.agg) {
    case AggregateKind::kMin:
    case AggregateKind::kMax:
      plan.strategy = Strategy::kPrimitiveWave;
      break;
    case AggregateKind::kSum:
    case AggregateKind::kAvg:
      if (q.error) {
        plan.strategy = Strategy::kApproxSum;
        plan.registers = registers_for_error(*q.error);
      } else {
        plan.strategy = Strategy::kPrimitiveWave;
      }
      break;
    case AggregateKind::kCount:
      if (q.error) {
        plan.strategy = Strategy::kApproxCount;
        plan.registers = registers_for_error(*q.error);
      } else {
        plan.strategy = Strategy::kPrimitiveWave;
      }
      break;
    case AggregateKind::kMedian:
    case AggregateKind::kQuantile:
      if (q.error) {
        plan.strategy = Strategy::kApproxSelection;
        plan.beta = *q.error;
        plan.registers = 64;
      } else {
        plan.strategy = Strategy::kExactSelection;
      }
      break;
    case AggregateKind::kCountDistinct:
      if (q.error) {
        plan.strategy = Strategy::kApproxDistinct;
        plan.registers = registers_for_error(*q.error);
      } else {
        plan.strategy = Strategy::kExactDistinct;
      }
      break;
  }
  try {
    plan.region = region_signature(q, max_value_bound_);
  } catch (const QueryError& e) {
    return Result<CostedPlan>::failure(e.what());
  }
  plan.description = std::string(agg_name(q.agg)) + " via " +
                     strategy_name(plan.strategy);
  build_cover(plan);
  return plan;
}

bool Planner::cube_eligible(const CostedPlan& plan) const {
  if (catalog_ == nullptr) return false;
  switch (plan.strategy) {
    // The stats family: cube bundles carry COUNT/SUM/MIN/MAX exactly, so
    // the cube can serve even queries that only *asked* for approximations.
    case Strategy::kPrimitiveWave:
    case Strategy::kApproxCount:
    case Strategy::kApproxSum:
      return true;
    // Distinct sketches merge across cells only when the cube maintains
    // HLL partials of the exact geometry the query wants.
    case Strategy::kApproxDistinct:
      return catalog_->distinct_registers() > 0 &&
             catalog_->distinct_registers() == plan.registers;
    // Selections need per-candidate waves; exact distinct needs the full
    // value set. Neither decomposes over precomputed stat partials.
    case Strategy::kExactSelection:
    case Strategy::kApproxSelection:
    case Strategy::kExactDistinct:
      return false;
  }
  return false;
}

void Planner::build_cover(CostedPlan& plan) const {
  const RegionSignature& region = plan.region;
  plan.est_tree_bits =
      catalog_ != nullptr ? catalog_->tree_collect_bits(region) : 0;
  const auto tree_only = [&plan, &region] {
    PlanStep step;
    step.kind = StepKind::kTreeCollect;
    step.region = region;
    step.est_bits = plan.est_tree_bits;
    plan.steps = {step};
    plan.est_cube_bits = plan.est_tree_bits;
    plan.description += " | tree-collect";
  };
  if (!cube_eligible(plan)) {
    tree_only();
    return;
  }

  // Candidate cells: every non-empty catalog cell fully inside the region.
  // Refresh costs are amortized over the catalog's freshness horizon — a
  // refreshed cell answers follow-up queries for ~horizon epochs, so a cold
  // cube must be judged per-epoch, not per-query, or it never warms.
  struct Candidate {
    CubeCellRef ref;
    RegionSignature r;
    std::uint64_t amortized_bits;
  };
  const auto amortization =
      std::max<std::uint64_t>(1, catalog_->refresh_amortization());
  std::vector<Candidate> cells;
  for (unsigned level = 0; level < catalog_->levels(); ++level) {
    for (unsigned index = 0; index < (1u << level); ++index) {
      const CubeCellRef ref{level, index};
      const RegionSignature r = catalog_->cell_region(ref);
      if (r.lo > r.hi) continue;  // squeezed-out cell on a small domain
      if (r.lo < region.lo || r.hi > region.hi) continue;
      const std::uint64_t raw = catalog_->cell_refresh_bits(ref);
      cells.push_back({ref, r, (raw + amortization - 1) / amortization});
    }
  }

  // Shortest path over the boundary lattice: positions are the region ends
  // plus every contained cell boundary; arcs are cells (start -> end+1) and
  // residue collections between any two positions. Ties break on fewer
  // steps, then coarser cells, so equal-cost plans are deterministic.
  std::vector<Value> pos{region.lo, region.hi + 1};
  for (const Candidate& c : cells) {
    pos.push_back(c.r.lo);
    pos.push_back(c.r.hi + 1);
  }
  std::sort(pos.begin(), pos.end());
  pos.erase(std::unique(pos.begin(), pos.end()), pos.end());
  const auto pos_index = [&pos](Value v) {
    return static_cast<std::size_t>(
        std::lower_bound(pos.begin(), pos.end(), v) - pos.begin());
  };

  constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();
  struct Node {
    std::uint64_t bits = kInf;
    std::uint32_t steps = 0;
    std::uint64_t tie = 0;  // sum of per-arc tie weights
    std::size_t prev = 0;
    int via_cell = -1;  // index into `cells`, or -1 for a residue arc
    bool reached = false;
  };
  std::vector<Node> dp(pos.size());
  dp[0].bits = 0;
  dp[0].reached = true;
  const auto relax = [&dp](std::size_t from, std::size_t to,
                           std::uint64_t arc_bits, std::uint64_t arc_tie,
                           int via_cell) {
    const Node& f = dp[from];
    if (!f.reached || f.bits > std::numeric_limits<std::uint64_t>::max() -
                                   arc_bits) {
      return;
    }
    Node cand;
    cand.bits = f.bits + arc_bits;
    cand.steps = f.steps + 1;
    cand.tie = f.tie + arc_tie;
    cand.prev = from;
    cand.via_cell = via_cell;
    cand.reached = true;
    Node& t = dp[to];
    if (!t.reached || std::tie(cand.bits, cand.steps, cand.tie) <
                          std::tie(t.bits, t.steps, t.tie)) {
      t = cand;
    }
  };
  const std::uint64_t residue_tie = catalog_->levels();
  for (std::size_t a = 0; a + 1 < pos.size(); ++a) {
    if (!dp[a].reached) continue;
    for (std::size_t ci = 0; ci < cells.size(); ++ci) {
      if (cells[ci].r.lo != pos[a]) continue;
      relax(a, pos_index(cells[ci].r.hi + 1), cells[ci].amortized_bits,
            cells[ci].ref.level, static_cast<int>(ci));
    }
    for (std::size_t b = a + 1; b < pos.size(); ++b) {
      RegionSignature rr;
      rr.lo = pos[a];
      rr.hi = pos[b] - 1;
      rr.whole_domain = rr.lo == 0 && rr.hi == max_value_bound_;
      relax(a, b, catalog_->residue_collect_bits(rr), residue_tie, -1);
    }
  }

  const Node& goal = dp.back();
  if (!goal.reached || goal.bits >= plan.est_tree_bits) {
    tree_only();
    return;
  }
  plan.est_cube_bits = goal.bits;
  std::vector<PlanStep> steps;
  std::size_t at = pos.size() - 1;
  std::size_t cell_steps = 0;
  while (at != 0) {
    const Node& n = dp[at];
    PlanStep step;
    step.region.lo = pos[n.prev];
    step.region.hi = pos[at] - 1;
    step.region.whole_domain =
        step.region.lo == 0 && step.region.hi == max_value_bound_;
    if (n.via_cell >= 0) {
      step.kind = StepKind::kCubeCell;
      step.cell = cells[static_cast<std::size_t>(n.via_cell)].ref;
      step.est_bits = cells[static_cast<std::size_t>(n.via_cell)].amortized_bits;
      ++cell_steps;
    } else {
      step.kind = StepKind::kResidueCollect;
      step.est_bits = catalog_->residue_collect_bits(step.region);
    }
    steps.push_back(step);
    at = n.prev;
  }
  std::reverse(steps.begin(), steps.end());
  plan.steps = std::move(steps);
  plan.description += " | cube cover: " + std::to_string(cell_steps) +
                      " cells + " +
                      std::to_string(plan.steps.size() - cell_steps) +
                      " residue, est " + std::to_string(plan.est_cube_bits) +
                      "b vs tree " + std::to_string(plan.est_tree_bits) + "b";
}

}  // namespace sensornet::query
