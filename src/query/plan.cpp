#include "src/query/plan.hpp"

#include <algorithm>

namespace sensornet::query {

const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kPrimitiveWave: return "primitive-wave";
    case Strategy::kApproxCount: return "approx-count(loglog)";
    case Strategy::kApproxSum: return "approx-sum(odi-sketch)";
    case Strategy::kExactSelection: return "exact-selection(fig1)";
    case Strategy::kApproxSelection: return "approx-selection(fig4)";
    case Strategy::kExactDistinct: return "exact-distinct(set-union)";
    case Strategy::kApproxDistinct: return "approx-distinct(hashed-loglog)";
  }
  return "?";
}

const char* step_kind_name(StepKind k) {
  switch (k) {
    case StepKind::kCubeCell: return "cube-cell";
    case StepKind::kResidueCollect: return "residue-collect";
    case StepKind::kTreeCollect: return "tree-collect";
  }
  return "?";
}

std::string PlanStep::describe() const {
  std::string s = step_kind_name(kind);
  if (kind == StepKind::kCubeCell) {
    s += "(L";
    s += std::to_string(cell.level);
    s += '.';
    s += std::to_string(cell.index);
    s += ')';
  }
  s += '[';
  s += std::to_string(region.lo);
  s += ',';
  s += std::to_string(region.hi);
  s += ']';
  return s;
}

bool CostedPlan::cube_served() const {
  return std::any_of(steps.begin(), steps.end(), [](const PlanStep& s) {
    return s.kind != StepKind::kTreeCollect;
  });
}

}  // namespace sensornet::query
