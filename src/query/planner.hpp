// Physical planning: which protocol answers a parsed query.
//
//   MIN/MAX/COUNT/SUM/AVG          -> one Fact 2.1 wave (two for AVG)
//   COUNT ... ERROR e              -> LogLog alpha-counting, m from e
//   SUM / AVG ... ERROR e          -> ODI sum sketch ([2]), m from e
//   MEDIAN / QUANTILE              -> Fig. 1 deterministic search (exact)
//   MEDIAN / QUANTILE ... ERROR e  -> Fig. 4 zoom (beta = e,
//                                     epsilon = 1 - confidence)
//   COUNT_DISTINCT                 -> exact distinct-set union wave
//   COUNT_DISTINCT ... ERROR e     -> hashed LogLog, m from e
//
// ERROR semantics: relative-count error for counting aggregates
// (sigma ~ 1.04/sqrt(m) <= e), value precision beta for selection
// aggregates.
#pragma once

#include <string>

#include "src/query/ast.hpp"

namespace sensornet::query {

enum class Strategy {
  kPrimitiveWave,       // MIN/MAX/COUNT/SUM/AVG, exact
  kApproxCount,         // LogLog random-mode counting
  kApproxSum,           // ODI sum sketch ([2]); AVG = sum / count
  kExactSelection,      // Fig. 1 binary search
  kApproxSelection,     // Fig. 4 zoom
  kExactDistinct,       // distinct-set union
  kApproxDistinct,      // hashed LogLog
};

const char* strategy_name(Strategy s);

struct Plan {
  Strategy strategy = Strategy::kPrimitiveWave;
  /// LogLog registers for the approximate strategies.
  unsigned registers = 64;
  /// beta for kApproxSelection.
  double beta = 1.0 / 256.0;
  /// Failure probability budget for randomized strategies.
  double epsilon = 0.05;
  std::string description;  // human-readable plan line
};

/// Chooses the physical plan; pure function of the query.
Plan plan_query(const Query& q);

/// Canonical value-region a query aggregates over — the grouping key of the
/// query service's shared-aggregation scheduler and the lookup key of its
/// result cache. Every WHERE form canonicalizes to one inclusive interval
/// [lo, hi] of the value domain [0, max_value_bound].
struct RegionSignature {
  Value lo = 0;
  Value hi = 0;
  /// True when the region covers the whole value domain (no WHERE, or a
  /// WHERE that excludes nothing) — population membership is then static,
  /// which tightens the cache's error bounds.
  bool whole_domain = true;

  bool operator==(const RegionSignature&) const = default;
  auto operator<=>(const RegionSignature&) const = default;
};

/// Canonicalizes the query's WHERE clause against the model's known value
/// bound. Throws QueryError with pinned diagnostics on degenerate regions:
///   "WHERE range is empty (lower bound exceeds upper bound)"  — inverted
///   "WHERE range selects no representable value"              — empty
/// The service surfaces these as admission errors.
RegionSignature region_signature(const Query& q, Value max_value_bound);

}  // namespace sensornet::query
