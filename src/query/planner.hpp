// Physical planning: which protocol answers a parsed query, and over which
// mix of cube cells and collections.
//
//   MIN/MAX/COUNT/SUM/AVG          -> one Fact 2.1 wave (two for AVG)
//   COUNT ... ERROR e              -> LogLog alpha-counting, m from e
//   SUM / AVG ... ERROR e          -> ODI sum sketch ([2]), m from e
//   MEDIAN / QUANTILE              -> Fig. 1 deterministic search (exact)
//   MEDIAN / QUANTILE ... ERROR e  -> Fig. 4 zoom (beta = e,
//                                     epsilon = 1 - confidence)
//   COUNT_DISTINCT                 -> exact distinct-set union wave
//   COUNT_DISTINCT ... ERROR e     -> hashed LogLog, m from e
//
// ERROR semantics: relative-count error for counting aggregates
// (sigma ~ 1.04/sqrt(m) <= e), value precision beta for selection
// aggregates.
//
// On top of the strategy choice the planner builds the plan's data-access
// program (see plan.hpp): for cube-eligible aggregates it runs a shortest-
// path cover over the boundary lattice of the catalog's cells, choosing the
// bit-cheapest ordered mix of cube cells and residue collections, and keeps
// the cover only when its estimate beats a plain tree collection.
#pragma once

#include "src/common/result.hpp"
#include "src/query/ast.hpp"
#include "src/query/plan.hpp"

namespace sensornet::query {

/// Registers m so the estimator's sigma ~ 1.04/sqrt(m) meets the requested
/// relative error, clamped to a practical power-of-two range.
unsigned registers_for_error(double error);

/// Canonicalizes the query's WHERE clause against the model's known value
/// bound. Throws QueryError with pinned diagnostics on degenerate regions:
///   "WHERE range is empty (lower bound exceeds upper bound)"  — inverted
///   "WHERE range selects no representable value"              — empty
/// The service surfaces these as admission errors.
RegionSignature region_signature(const Query& q, Value max_value_bound);

/// Plans queries against one deployment: a fixed value bound and an
/// optional cube catalog. Pure — plan() mutates nothing, so one Planner can
/// serve any number of callers; re-planning the same query after cube
/// staleness changed is how plans track the cube's warmth.
class Planner {
 public:
  /// `catalog` may be null (every plan is then a single tree collection)
  /// and must outlive the planner.
  Planner(Value max_value_bound, const CubeCatalog* catalog = nullptr);

  /// Chooses strategy, canonicalizes the region, and builds the costed
  /// cover. Fails (never throws) on degenerate WHERE regions, with the same
  /// pinned diagnostics region_signature() documents.
  [[nodiscard]] Result<CostedPlan> plan(const Query& q) const;

  Value max_value_bound() const { return max_value_bound_; }
  const CubeCatalog* catalog() const { return catalog_; }

  /// Whether the cube's maintained partials can answer this plan at all
  /// (stats aggregates always; approximate distinct only when the catalog
  /// maintains HLL partials of exactly the plan's register count). The
  /// service uses this to route between the cube and the shared scheduler.
  bool cube_eligible(const CostedPlan& plan) const;

 private:
  /// Fills plan.steps / est_cube_bits / est_tree_bits for an already
  /// strategy-assigned, region-assigned plan.
  void build_cover(CostedPlan& plan) const;

  Value max_value_bound_;
  const CubeCatalog* catalog_;
};

}  // namespace sensornet::query
