// The planner's output language: costed, step-structured physical plans.
//
// PR 10 replaced the old single-struct `Plan` with an explicit two-level
// interface:
//
//   CostedPlan — the strategy choice (which protocol family answers the
//     query) plus a *data-access program*: an ordered list of PlanStep
//     covering the query's value region. For cube-eligible aggregates the
//     planner decomposes the region into the cheapest mix of precomputed
//     multiresolution cube cells and residue collections; everything else
//     is a single kTreeCollect step.
//
//   CubeCatalog — the planner's window onto whatever maintains the cube
//     (src/cube). The planner never sees partials or waves, only geometry
//     (cell_region) and a deterministic bit-cost model (cell_refresh_bits /
//     residue_collect_bits / tree_collect_bits). A null catalog degrades
//     every plan to kTreeCollect, which is exactly the pre-cube behavior.
//
// Costs are estimates in wire bits and drive only the cube-vs-tree choice
// and the cell cover; answer correctness never depends on them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.hpp"

namespace sensornet::query {

enum class Strategy {
  kPrimitiveWave,       // MIN/MAX/COUNT/SUM/AVG, exact
  kApproxCount,         // LogLog random-mode counting
  kApproxSum,           // ODI sum sketch ([2]); AVG = sum / count
  kExactSelection,      // Fig. 1 binary search
  kApproxSelection,     // Fig. 4 zoom
  kExactDistinct,       // distinct-set union
  kApproxDistinct,      // hashed LogLog
};

const char* strategy_name(Strategy s);

/// Canonical value-region a query aggregates over — the grouping key of the
/// query service's shared-aggregation scheduler and the lookup key of its
/// result cache. Every WHERE form canonicalizes to one inclusive interval
/// [lo, hi] of the value domain [0, max_value_bound].
struct RegionSignature {
  Value lo = 0;
  Value hi = 0;
  /// True when the region covers the whole value domain (no WHERE, or a
  /// WHERE that excludes nothing) — population membership is then static,
  /// which tightens the cache's error bounds.
  bool whole_domain = true;

  bool operator==(const RegionSignature&) const = default;
  auto operator<=>(const RegionSignature&) const = default;
};

/// Names one cube cell: dyadic slice `index` of the value domain at
/// resolution `level` (level 0 = the whole domain as one cell).
struct CubeCellRef {
  unsigned level = 0;
  unsigned index = 0;

  bool operator==(const CubeCellRef&) const = default;
  auto operator<=>(const CubeCellRef&) const = default;
};

/// The planner's read-only view of the multiresolution cube: geometry plus a
/// deterministic bit-cost model. Implemented by cube::Cube; tests substitute
/// fakes with hand-set costs.
class CubeCatalog {
 public:
  virtual ~CubeCatalog() = default;

  /// Number of resolution levels (level l has 2^l cells).
  virtual unsigned levels() const = 0;
  /// Inclusive upper bound of the value domain the cube slices.
  virtual Value domain_bound() const = 0;
  /// The inclusive value range cell `ref` maintains. May be empty
  /// (lo > hi) for cells squeezed out by a small domain.
  virtual RegionSignature cell_region(CubeCellRef ref) const = 0;
  /// HLL register count of the cube's COUNT_DISTINCT partials; 0 when the
  /// cube maintains no distinct sketches.
  virtual unsigned distinct_registers() const = 0;

  /// Estimated bits to bring cell `ref` up to the current epoch (0 when the
  /// cell is already fresh).
  virtual std::uint64_t cell_refresh_bits(CubeCellRef ref) const = 0;
  /// Estimated bits of a one-shot pruned collection over `region`.
  virtual std::uint64_t residue_collect_bits(
      const RegionSignature& region) const = 0;
  /// Estimated bits of a plain whole-tree collection answering `region`.
  virtual std::uint64_t tree_collect_bits(
      const RegionSignature& region) const = 0;

  /// Epochs a refreshed cell is expected to stay useful: the planner
  /// amortizes cell_refresh_bits over this horizon when comparing covers,
  /// so a cold cube can still win against repeated tree collections.
  virtual std::uint32_t refresh_amortization() const { return 1; }
};

enum class StepKind {
  kCubeCell,        // serve this slice from a maintained cube cell
  kResidueCollect,  // one-shot pruned collection over the slice
  kTreeCollect,     // plain whole-tree collection (non-cube plans)
};

const char* step_kind_name(StepKind k);

/// One slice of the plan's data-access program. Steps partition the query
/// region left to right; `cell` is meaningful only for kCubeCell.
struct PlanStep {
  StepKind kind = StepKind::kTreeCollect;
  RegionSignature region;
  CubeCellRef cell;
  /// This step's share of the plan's cost estimate, in wire bits (cube-cell
  /// steps carry the amortized refresh cost).
  std::uint64_t est_bits = 0;

  std::string describe() const;

  bool operator==(const PlanStep&) const = default;
};

/// A physical plan with its cost breakdown. Produced only by
/// Planner::plan(); executors treat it as immutable.
struct CostedPlan {
  Strategy strategy = Strategy::kPrimitiveWave;
  /// LogLog registers for the approximate strategies.
  unsigned registers = 64;
  /// beta for kApproxSelection.
  double beta = 1.0 / 256.0;
  /// Failure probability budget for randomized strategies.
  double epsilon = 0.05;
  /// Canonicalized query region (also steps' union).
  RegionSignature region;
  /// Ordered left-to-right cover of `region`; never empty. Non-cube plans
  /// hold a single kTreeCollect step.
  std::vector<PlanStep> steps;
  /// Cost estimate of the chosen cover (= sum of steps' est_bits) and of
  /// the plain tree-collection alternative.
  std::uint64_t est_cube_bits = 0;
  std::uint64_t est_tree_bits = 0;
  std::string description;  // human-readable plan line

  /// True when any step is cube-backed (kCubeCell or kResidueCollect).
  bool cube_served() const;
};

}  // namespace sensornet::query
