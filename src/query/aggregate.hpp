// The one aggregate-kind vocabulary of the query stack.
//
// Before PR 10 three near-duplicate enums described "what kind of aggregate
// is this": the AST's kind, the shared-plan scheduler's group family, and an
// implicit switch in the service engine's routing. They are unified here:
// every layer speaks AggregateKind, and family() is the single mapping onto
// the three execution families the system distinguishes:
//
//   kStats     COUNT/SUM/AVG/MIN/MAX — answerable from one stats bundle
//              (and from multiresolution cube cells)
//   kSelection MEDIAN/QUANTILE — order statistics, per-query search protocols
//   kDistinct  COUNT_DISTINCT — set-union / HLL waves keyed by geometry
#pragma once

namespace sensornet::query {

enum class AggregateKind {
  kMin,
  kMax,
  kCount,
  kSum,
  kAvg,
  kMedian,
  kQuantile,        // QUANTILE(attr, phi) with phi in (0,1)
  kCountDistinct,
};

enum class AggregateFamily {
  kStats,      // bracketable from a COUNT/SUM/MIN/MAX bundle
  kSelection,  // order statistics; no shared representation
  kDistinct,   // distinct-cardinality; shared per sketch geometry
};

constexpr AggregateFamily family(AggregateKind k) {
  switch (k) {
    case AggregateKind::kMin:
    case AggregateKind::kMax:
    case AggregateKind::kCount:
    case AggregateKind::kSum:
    case AggregateKind::kAvg:
      return AggregateFamily::kStats;
    case AggregateKind::kMedian:
    case AggregateKind::kQuantile:
      return AggregateFamily::kSelection;
    case AggregateKind::kCountDistinct:
      return AggregateFamily::kDistinct;
  }
  return AggregateFamily::kSelection;  // unreachable
}

constexpr const char* agg_name(AggregateKind k) {
  switch (k) {
    case AggregateKind::kMin: return "MIN";
    case AggregateKind::kMax: return "MAX";
    case AggregateKind::kCount: return "COUNT";
    case AggregateKind::kSum: return "SUM";
    case AggregateKind::kAvg: return "AVG";
    case AggregateKind::kMedian: return "MEDIAN";
    case AggregateKind::kQuantile: return "QUANTILE";
    case AggregateKind::kCountDistinct: return "COUNT_DISTINCT";
  }
  return "?";
}

}  // namespace sensornet::query
