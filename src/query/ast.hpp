// Abstract syntax for the TAG/TinyDB-flavoured aggregate query language.
//
//   SELECT MEDIAN(temp) FROM sensors WHERE temp >= 10 ERROR 0.01 CONFIDENCE 0.9
//
// One aggregate per query over the single reading attribute; an optional
// WHERE compare-with-literal; ERROR opts into the paper's approximate
// protocols (its meaning per aggregate is documented on the planner).
#pragma once

#include <optional>
#include <string>

#include "src/common/types.hpp"

namespace sensornet::query {

enum class AggKind {
  kMin,
  kMax,
  kCount,
  kSum,
  kAvg,
  kMedian,
  kQuantile,        // QUANTILE(attr, phi) with phi in (0,1)
  kCountDistinct,
};

const char* agg_name(AggKind k);

struct Condition {
  enum class Cmp { kLt, kLe, kGt, kGe };
  Cmp cmp = Cmp::kLt;
  Value literal = 0;
};

struct Query {
  AggKind agg = AggKind::kCount;
  std::string attribute;          // e.g. "temp" (one attribute per node)
  double quantile_phi = 0.5;      // only for kQuantile
  std::optional<Condition> where;
  std::optional<double> error;    // requested approximation knob
  double confidence = 0.95;       // 1 - epsilon for randomized protocols
  std::string text;               // original query text (diagnostics)
};

}  // namespace sensornet::query
