// Abstract syntax for the TAG/TinyDB-flavoured aggregate query language.
//
//   SELECT MEDIAN(temp) FROM sensors WHERE temp >= 10 ERROR 0.01 CONFIDENCE 0.9
//   SELECT SUM(temp) FROM sensors WHERE temp BETWEEN 10 AND 50
//       EVERY 4 EPOCHS ERROR 0.05
//
// One aggregate per query over the single reading attribute; an optional
// WHERE compare-with-literal or BETWEEN range; an optional EVERY clause
// turning the query continuous (re-evaluated by the query service each n
// epochs); ERROR opts into the paper's approximate protocols for one-shot
// execution (its meaning per aggregate is documented on the planner) and
// doubles as the result-cache staleness tolerance under the service.
#pragma once

#include <optional>
#include <string>

#include "src/common/types.hpp"
#include "src/query/aggregate.hpp"

namespace sensornet::query {

struct Condition {
  enum class Cmp { kLt, kLe, kGt, kGe, kBetween };
  Cmp cmp = Cmp::kLt;
  Value literal = 0;
  /// Upper bound of a BETWEEN range (inclusive); unused otherwise. The
  /// parser accepts inverted ranges — the planner rejects them with a
  /// pinned diagnostic so service admission can surface it.
  Value literal2 = 0;
};

struct Query {
  AggregateKind agg = AggregateKind::kCount;
  std::string attribute;          // e.g. "temp" (one attribute per node)
  double quantile_phi = 0.5;      // only for kQuantile
  std::optional<Condition> where;
  /// EVERY n EPOCHS: re-evaluation period of a continuous query. Absent for
  /// classic one-shot queries.
  std::optional<std::uint32_t> every_epochs;
  std::optional<double> error;    // requested approximation knob
  double confidence = 0.95;       // 1 - epsilon for randomized protocols
  std::string text;               // original query text (diagnostics)
};

}  // namespace sensornet::query
