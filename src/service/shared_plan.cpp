#include "src/service/shared_plan.hpp"

#include <algorithm>
#include <utility>

#include "src/common/codec.hpp"
#include "src/common/error.hpp"
#include "src/core/count_distinct.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/proto/item_view.hpp"
#include "src/proto/tree_broadcast.hpp"

namespace sensornet::service {

namespace {

/// Mirrors the scheduler's cumulative stats into registry gauges (last
/// write wins, so the gauge always shows the current cumulative value).
/// Called after every wave — cold path relative to the wave itself.
void mirror_plan_stats(const SharedPlanStats& s) {
  obs::Registry& reg = obs::Registry::global();
  reg.gauge_set(reg.gauge("svc.plan.stats_waves"), s.stats_waves);
  reg.gauge_set(reg.gauge("svc.plan.distinct_waves"), s.distinct_waves);
  reg.gauge_set(reg.gauge("svc.plan.edges_descended"), s.edges_descended);
  reg.gauge_set(reg.gauge("svc.plan.edges_skipped"), s.edges_skipped);
  reg.gauge_set(reg.gauge("svc.plan.mark_messages"), s.mark_messages);
  reg.gauge_set(reg.gauge("svc.plan.groups_created"), s.groups_created);
}

constexpr std::uint32_t kInvalidEpoch = cube::DirtyTracker::kInvalidEpoch;
constexpr std::uint16_t kRequestKind = 1;
constexpr std::uint16_t kResponseKind = 2;

using cube::child_index;
using cube::decode_range_stats;
using cube::encode_range_stats;

}  // namespace

// ---- group state ----------------------------------------------------------

struct SharedPlanScheduler::Group {
  query::AggregateFamily family = query::AggregateFamily::kStats;
  query::RegionSignature region;
  unsigned registers = 0;  // distinct family: 0 = exact union wave
  std::uint32_t session = 0;

  // Incremental stats state: the parent-side cache of each child edge's
  // subtree bundle and the epoch it was collected at (kInvalidEpoch when
  // the edge has never been collected). Indexed [node][child_index].
  std::vector<std::vector<StatsBundle>> child_partial;
  std::vector<std::vector<std::uint32_t>> child_partial_epoch;

  StatsBundle root_bundle;
  double distinct_estimate = 0.0;
  std::uint32_t last_collect_epoch = kInvalidEpoch;
};

// ---- local evaluation -----------------------------------------------------

/// Distinct-family item filter: exposes only readings inside the group's
/// region. The region was installed at every node by the group-creation
/// broadcast, so this is node-local state, not root-side fiat.
class SharedPlanScheduler::RegionView final : public proto::LocalItemView {
 public:
  explicit RegionView(const query::RegionSignature& region) : region_(region) {}

  ValueSet items(sim::Network& net, NodeId node) const override {
    ValueSet out;
    for (const Value v : net.items(node)) {
      if (v >= region_.lo && v <= region_.hi) out.push_back(v);
    }
    return out;
  }

 private:
  query::RegionSignature region_;
};

StatsBundle SharedPlanScheduler::local_bundle(NodeId node,
                                              const Group& g) const {
  StatsBundle b;
  if (g.region.whole_domain) {
    // Membership is static over the whole domain: the margins collapse and
    // one RangeStats describes all three regions.
    for (const Value v : net_.items(node)) b.core.observe(v);
    b.inner = b.core;
    b.outer = b.core;
    return b;
  }
  const Value margin =
      static_cast<Value>(horizon_epochs_) * max_delta_;
  const Value lo = g.region.lo;
  const Value hi = g.region.hi;
  for (const Value v : net_.items(node)) {
    if (v >= lo && v <= hi) b.core.observe(v);
    if (v >= lo + margin && v <= hi - margin) b.inner.observe(v);
    if (v >= lo - margin && v <= hi + margin) b.outer.observe(v);
  }
  return b;
}

// ---- dirty-mark propagation ----------------------------------------------

void SharedPlanScheduler::note_updates(std::span<const NodeId> updated,
                                       std::uint32_t epoch) {
  dirty_.note_updates(updated, epoch);
  stats_.mark_messages = dirty_.mark_messages();
  mirror_plan_stats(stats_);
}

// ---- incremental stats collection ----------------------------------------

class SharedPlanScheduler::StatsWave final : public sim::ProtocolHandler {
 public:
  StatsWave(SharedPlanScheduler& sched, Group& g, std::uint32_t epoch)
      : sched_(sched),
        g_(g),
        epoch_(epoch),
        pending_(sched.tree_.node_count(), 0),
        accum_(sched.tree_.node_count()) {}

  /// Runs the collection and returns the root's subtree bundle.
  StatsBundle execute(sim::Network& net) {
    activate(net, sched_.tree_.root);
    net.run(*this);
    SENSORNET_EXPECTS(pending_[sched_.tree_.root] == 0);
    return accum_[sched_.tree_.root];
  }

  void on_message(sim::Network& net, NodeId receiver,
                  const sim::Message& msg) override {
    SENSORNET_EXPECTS(msg.session == g_.session);
    if (msg.kind == kRequestKind) {
      activate(net, receiver);
      return;
    }
    SENSORNET_EXPECTS(msg.kind == kResponseKind);
    BitReader r = msg.reader();
    StatsBundle child;
    child.core = decode_range_stats(r);
    if (g_.region.whole_domain) {
      child.inner = child.core;
      child.outer = child.core;
    } else {
      child.inner = decode_range_stats(r);
      child.outer = decode_range_stats(r);
    }
    const std::size_t ci = child_index(sched_.tree_, receiver, msg.from);
    g_.child_partial[receiver][ci] = child;
    g_.child_partial_epoch[receiver][ci] = epoch_;
    accum_[receiver].combine(child);
    SENSORNET_EXPECTS(pending_[receiver] > 0);
    if (--pending_[receiver] == 0) respond(net, receiver);
  }

 private:
  /// Computes the node's local bundle, serves clean child edges from the
  /// parent-side partial cache, and descends only into subtrees that changed
  /// since their partial was taken.
  void activate(sim::Network& net, NodeId node) {
    accum_[node] = sched_.local_bundle(node, g_);
    const auto& kids = sched_.tree_.children[node];
    for (std::size_t ci = 0; ci < kids.size(); ++ci) {
      const bool fresh = sched_.dirty_.edge_fresh(
          node, ci, g_.child_partial_epoch[node][ci]);
      obs::TraceRing& ring = obs::TraceRing::global();
      if (fresh) {
        accum_[node].combine(g_.child_partial[node][ci]);
        ++sched_.stats_.edges_skipped;
        if (ring.enabled()) {
          ring.instant("edge.cached", "service", net.now(), 0, "node", node,
                       "child", kids[ci]);
        }
        continue;
      }
      if (ring.enabled()) {
        ring.instant("edge.descend", "service", net.now(), 0, "node", node,
                     "child", kids[ci]);
      }
      BitWriter w;
      w.write_bit(true);
      net.send(sim::Message::make(node, kids[ci], g_.session, kRequestKind,
                                  std::move(w)));
      ++pending_[node];
      ++sched_.stats_.edges_descended;
    }
    if (pending_[node] == 0) respond(net, node);
  }

  void respond(sim::Network& net, NodeId node) {
    if (node == sched_.tree_.root) return;  // root keeps the result
    const StatsBundle& b = accum_[node];
    BitWriter w;
    encode_range_stats(w, b.core);
    if (!g_.region.whole_domain) {
      encode_range_stats(w, b.inner);
      encode_range_stats(w, b.outer);
    }
    net.send(sim::Message::make(node, sched_.tree_.parent[node], g_.session,
                                kResponseKind, std::move(w)));
  }

  SharedPlanScheduler& sched_;
  Group& g_;
  std::uint32_t epoch_;
  std::vector<std::uint32_t> pending_;
  std::vector<StatsBundle> accum_;
};

// ---- scheduler ------------------------------------------------------------

SharedPlanScheduler::SharedPlanScheduler(sim::Network& net,
                                         const net::SpanningTree& tree,
                                         Value max_value_bound,
                                         Value max_delta,
                                         std::uint32_t horizon_epochs)
    : net_(net),
      tree_(tree),
      max_value_bound_(max_value_bound),
      max_delta_(max_delta),
      horizon_epochs_(horizon_epochs),
      dirty_(net, tree) {
  SENSORNET_EXPECTS(max_value_bound >= 0 && max_delta >= 0);
}

SharedPlanScheduler::~SharedPlanScheduler() = default;

GroupId SharedPlanScheduler::ensure_stats_group(
    const query::RegionSignature& region) {
  const auto key = std::make_pair(region, 0u);
  if (const auto it = stats_index_.find(key); it != stats_index_.end()) {
    return it->second;
  }
  const auto id = static_cast<GroupId>(groups_.size());
  auto g = std::make_unique<Group>();
  g->family = query::AggregateFamily::kStats;
  g->region = region;
  g->session = next_session_++;
  g->child_partial.resize(tree_.node_count());
  g->child_partial_epoch.resize(tree_.node_count());
  for (NodeId u = 0; u < tree_.node_count(); ++u) {
    g->child_partial[u].resize(tree_.children[u].size());
    g->child_partial_epoch[u].assign(tree_.children[u].size(), kInvalidEpoch);
  }
  if (!region.whole_domain) {
    // Nodes must learn the region and margin they bracket — paid once per
    // group, amortized over every subscriber and epoch.
    proto::TreeBroadcast install(
        tree_, next_session_++,
        [](sim::Network&, NodeId, BitReader) { /* region noted */ });
    BitWriter w;
    encode_uint(w, static_cast<std::uint64_t>(region.lo));
    encode_uint(w, static_cast<std::uint64_t>(region.hi - region.lo));
    encode_uint(w, static_cast<std::uint64_t>(horizon_epochs_) *
                       static_cast<std::uint64_t>(max_delta_));
    install.execute(net_, std::move(w));
  }
  groups_.push_back(std::move(g));
  stats_index_.emplace(key, id);
  ++stats_.groups_created;
  return id;
}

GroupId SharedPlanScheduler::ensure_distinct_group(
    const query::RegionSignature& region, unsigned registers) {
  const auto key = std::make_pair(region, registers);
  if (const auto it = distinct_index_.find(key); it != distinct_index_.end()) {
    return it->second;
  }
  const auto id = static_cast<GroupId>(groups_.size());
  auto g = std::make_unique<Group>();
  g->family = query::AggregateFamily::kDistinct;
  g->region = region;
  g->registers = registers;
  g->session = next_session_++;
  if (!region.whole_domain) {
    proto::TreeBroadcast install(
        tree_, next_session_++,
        [](sim::Network&, NodeId, BitReader) { /* region noted */ });
    BitWriter w;
    encode_uint(w, static_cast<std::uint64_t>(region.lo));
    encode_uint(w, static_cast<std::uint64_t>(region.hi - region.lo));
    install.execute(net_, std::move(w));
  }
  groups_.push_back(std::move(g));
  distinct_index_.emplace(key, id);
  ++stats_.groups_created;
  return id;
}

const StatsBundle& SharedPlanScheduler::collect_stats(GroupId group,
                                                      std::uint32_t epoch) {
  SENSORNET_EXPECTS(group < groups_.size());
  Group& g = *groups_[group];
  SENSORNET_EXPECTS(g.family == query::AggregateFamily::kStats);
  if (g.last_collect_epoch == epoch) return g.root_bundle;  // idempotent
  const SimTime t0 = net_.now();
  StatsWave wave(*this, g, epoch);
  g.root_bundle = wave.execute(net_);
  g.last_collect_epoch = epoch;
  ++stats_.stats_waves;
  obs::TraceRing& ring = obs::TraceRing::global();
  if (ring.enabled()) {
    ring.complete("collect.stats", "service", t0, net_.now() - t0, 0,
                  "group", group, "epoch", epoch);
  }
  mirror_plan_stats(stats_);
  return g.root_bundle;
}

double SharedPlanScheduler::collect_distinct(GroupId group,
                                             std::uint32_t epoch) {
  SENSORNET_EXPECTS(group < groups_.size());
  Group& g = *groups_[group];
  SENSORNET_EXPECTS(g.family == query::AggregateFamily::kDistinct);
  if (g.last_collect_epoch == epoch) return g.distinct_estimate;
  const RegionView view(g.region);
  const proto::LocalItemView& item_view =
      g.region.whole_domain ? proto::raw_item_view()
                            : static_cast<const proto::LocalItemView&>(view);
  const SimTime t0 = net_.now();
  if (g.registers == 0) {
    g.distinct_estimate = static_cast<double>(
        core::exact_count_distinct(net_, tree_, item_view).distinct);
  } else {
    g.distinct_estimate =
        core::approx_count_distinct(net_, tree_, g.registers,
                                    proto::EstimatorKind::kHyperLogLog,
                                    item_view)
            .estimate;
  }
  g.last_collect_epoch = epoch;
  ++stats_.distinct_waves;
  obs::TraceRing& ring = obs::TraceRing::global();
  if (ring.enabled()) {
    ring.complete("collect.distinct", "service", t0, net_.now() - t0, 0,
                  "group", group, "epoch", epoch);
  }
  mirror_plan_stats(stats_);
  return g.distinct_estimate;
}

}  // namespace sensornet::service
