// Long-running concurrent query service.
//
// The classic stack (parser -> planner -> executor) answers one query at a
// time, paying a full tree aggregation per question. The service is the
// multi-tenant layer on top: clients register one-shot and continuous
// (`EVERY n EPOCHS`) queries, sensor updates arrive in per-epoch batches,
// and due queries are answered each epoch with four cost levers:
//
//   1. Shared aggregation — live queries are grouped by (region, aggregate
//      family); one spanning-tree collection per epoch serves every
//      subscriber of a group (see shared_plan.hpp).
//   2. Incremental re-evaluation — collections descend only into subtrees
//      that changed since the group's last visit, driven by the scheduler's
//      dirty marks.
//   3. Bounded-error result cache — a query with an ERROR tolerance can be
//      answered from a stale stats bundle when the deterministic drift
//      bound (staleness x max_delta, see result_cache.hpp) fits its
//      epsilon: zero bits on the air.
//   4. Multiresolution cube — with use_cube on, cube-eligible queries route
//      through cube::Cube: the planner decomposes the region into the
//      bit-cheapest mix of maintained cube cells and residue collections,
//      and a serve tries (a) the result cache, (b) per-cell drift brackets
//      at zero bits, (c) a fresh cube serve, in that order.
//
// Concurrency model: submit_batch() parses, plans and canonicalizes regions
// on a deterministic work-stealing farm (pure, per-cell work); everything
// that touches the simulated network stays serial, in query-id order. The
// answer stream is therefore byte-identical at any thread count — the same
// discipline the bench farm uses.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/common/result.hpp"
#include "src/common/trial_farm.hpp"
#include "src/common/types.hpp"
#include "src/cube/cube.hpp"
#include "src/query/executor.hpp"
#include "src/query/planner.hpp"
#include "src/service/result_cache.hpp"
#include "src/service/shared_plan.hpp"

namespace sensornet::service {

using QueryId = std::uint32_t;

struct ServiceConfig {
  /// Drift model: a reading moves by at most this much per epoch (enforced
  /// on the update feed; the cache's bounds are sound exactly because of
  /// this).
  Value max_delta = 4;
  /// Margin (in epochs) baked into collected bundles; cache entries bracket
  /// ranged regions for this many epochs of staleness.
  std::uint32_t cache_horizon_epochs = 8;
  std::size_t cache_capacity = 1024;
  /// Off = the naive baseline: every due query re-runs the one-shot
  /// executor, no marks, no cache. The bench's comparator.
  bool share_aggregation = true;
  /// Cache applies to the shared stats path and the cube path.
  bool use_cache = true;
  /// Route cube-eligible queries through the multiresolution cube. Off by
  /// default: the cube pays cell-refresh bits, which only amortize under a
  /// range-query workload.
  bool use_cube = false;
  /// Cube resolution levels (see cube::CubeConfig::levels).
  unsigned cube_levels = 4;
  /// HLL registers of the cube's COUNT_DISTINCT partials; 0 = stats only,
  /// and approximate-distinct queries fall back to their shared group.
  unsigned cube_distinct_registers = 0;
  /// Workers for submit_batch's parse/plan stage; 0 = hardware concurrency.
  unsigned threads = 1;
};

/// One sensor's new reading for the epoch being run.
struct SensorUpdate {
  NodeId node = 0;
  Value value = 0;
};

struct Answer {
  QueryId id = 0;
  std::uint32_t epoch = 0;
  double value = 0.0;
  /// Deterministic bound on |value - exact_now|; 0 for fresh collections.
  /// Randomized estimates (approximate COUNT_DISTINCT) carry a statistical
  /// guarantee from their plan instead — exact is false, bound stays 0.
  double error_bound = 0.0;
  bool exact = true;
  bool from_cache = false;
  /// The WHERE region matched no readings (MIN/MAX/AVG undefined; value 0).
  bool empty_selection = false;
};

/// Outcome of a successful submission.
struct Admission {
  QueryId id = 0;
  bool continuous = false;
  std::string plan;  // human-readable route through the service
  /// One-shot queries are answered at admission; continuous ones first
  /// answer at their next due epoch.
  std::optional<Answer> answer;
};

struct ServiceTelemetry {
  std::uint64_t answers = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t fresh_stats_answers = 0;
  std::uint64_t distinct_answers = 0;
  std::uint64_t executor_runs = 0;
  /// Cube-path serves: fresh (cells refreshed / residues run) vs stale
  /// (zero-bit per-cell drift brackets that met the tolerance).
  std::uint64_t cube_fresh_answers = 0;
  std::uint64_t cube_stale_answers = 0;
  std::uint64_t updates_applied = 0;
};

/// Where one query's cost went, accumulated over its lifetime. Bits and
/// messages follow the marginal-cost rule: the first due subscriber of a
/// group each epoch pays the whole shared wave, and everyone after rides
/// the warmed partials for free — so summing bits_on_air over queries (plus
/// the service-level mark wave) reproduces the network total.
struct QueryCost {
  std::uint64_t answers = 0;
  std::uint64_t cache_hits = 0;    // answered from the result cache
  std::uint64_t cube_stale = 0;    // answered from cube cell brackets
  std::uint64_t fresh = 0;         // answered by a collection / executor run
  std::uint64_t bits_on_air = 0;   // payload + header bits this query caused
  std::uint64_t messages = 0;
  /// Accumulated (tolerance - bound) over cache-served answers: how much
  /// slack the query's epsilon left unused. Large slack means the client
  /// could tighten ERROR and still be served from cache.
  double bound_slack = 0.0;
};

/// One shared group's cost, accumulated over its lifetime. Bits include the
/// install broadcast at creation and every collection wave since.
struct GroupCost {
  std::uint64_t collections = 0;  // fresh waves the group paid
  std::uint64_t bits_on_air = 0;
  std::uint64_t messages = 0;
  std::uint32_t subscribers = 0;  // live continuous subscribers (snapshot)
};

/// Full cost-attribution view, assembled by telemetry_snapshot().
struct TelemetrySnapshot {
  ServiceTelemetry totals;
  CacheCounters cache;
  SharedPlanStats plan;
  /// Cube-side telemetry (all zero when use_cube is off).
  cube::CubeStats cube;
  /// Dirty-mark propagation is a service-level cost: no single query causes
  /// an update batch, so the mark wave's bits live here, not in QueryCost.
  std::uint64_t mark_bits_on_air = 0;
  std::uint64_t mark_messages = 0;
  std::map<QueryId, QueryCost> queries;
  std::map<GroupId, GroupCost> groups;
};

class QueryService {
 public:
  QueryService(query::Deployment deployment, ServiceConfig config);
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Parses, plans and admits one query. Malformed text and degenerate
  /// WHERE regions come back as failures carrying the parser/planner
  /// diagnostic — admission errors are expected client behavior, not bugs.
  Result<Admission> submit(const std::string& text);

  /// Batch admission: the pure front half (parse/plan/region) runs on the
  /// work-stealing farm; admission itself is serial in submission order, so
  /// results are independent of thread count.
  std::vector<Result<Admission>> submit_batch(
      const std::vector<std::string>& texts);

  /// Deregisters a continuous query. Returns false for unknown/one-shot
  /// ids. Shared groups outlive their subscribers — their warmed partials
  /// stay useful for the next subscriber.
  bool cancel(QueryId id);

  /// Advances the epoch: applies the update batch (validating the drift
  /// model — at most one update per node per epoch, |new - old| <=
  /// max_delta, values in [0, max_value_bound]), propagates dirty marks,
  /// and answers every due continuous query, in query-id order.
  std::vector<Answer> run_epoch(std::span<const SensorUpdate> updates);

  std::uint32_t epoch() const { return epoch_; }
  std::size_t live_queries() const { return live_.size(); }

  const ServiceTelemetry& telemetry() const { return telemetry_; }
  const SharedPlanStats& plan_stats() const { return scheduler_->stats(); }
  const ResultCache& cache() const { return cache_; }
  /// Null when use_cube is off.
  const cube::Cube* cube() const { return cube_.get(); }
  const query::Planner& planner() const { return planner_; }

  /// Assembles the full cost-attribution view: totals, cache outcome
  /// counters, scheduler stats, cube stats, the service-level mark-wave
  /// bucket, and the per-query / per-group cost ledgers (with live
  /// subscriber counts).
  TelemetrySnapshot telemetry_snapshot() const;

 private:
  /// How the service routes a query each time it is due.
  enum class Path {
    kStats,     // shared stats-bundle group + result cache
    kDistinct,  // shared distinct group
    kCube,      // multiresolution cube cover (cache -> brackets -> fresh)
    kExecutor,  // per-query one-shot executor (median/quantile, naive mode)
  };

  struct LiveQuery {
    QueryId id = 0;
    query::Query q;
    query::CostedPlan plan;
    query::RegionSignature region;
    Path path = Path::kExecutor;
    GroupId group = 0;  // kStats/kDistinct only
    std::uint32_t registered_epoch = 0;
    std::uint32_t every = 0;  // 0 for one-shot
  };

  /// The pure front half of admission (no shared state, farm-safe).
  struct ParsedQuery {
    bool ok = false;
    std::string error;
    query::Query q;
    query::CostedPlan plan;
    query::RegionSignature region;
  };

  ParsedQuery parse_and_plan(const std::string& text) const;
  Admission admit(ParsedQuery&& parsed);
  Answer answer_fresh(const LiveQuery& lq);
  /// Serves a lookup() hit the caller already holds — the cache is asked
  /// exactly once per serve, so its hit counter matches answers served.
  Answer answer_cached(const LiveQuery& lq, const CachedAnswer& hit);
  /// The cube path's three-tier serve: result cache, then zero-bit per-cell
  /// drift brackets, then a fresh cube serve under a re-costed plan.
  Answer serve_cube(const LiveQuery& lq);
  bool cache_could_serve(const LiveQuery& lq) const;

  query::Deployment deployment_;
  ServiceConfig config_;
  query::Executor executor_;
  std::unique_ptr<SharedPlanScheduler> scheduler_;
  /// Built over the scheduler's DirtyTracker (one mark wave feeds both);
  /// null when use_cube is off.
  std::unique_ptr<cube::Cube> cube_;
  /// Catalog-aware planner; all admissions and cube re-plans go through it.
  query::Planner planner_;
  ResultCache cache_;
  TrialFarm farm_;

  std::uint32_t epoch_ = 0;
  QueryId next_id_ = 1;
  std::map<QueryId, LiveQuery> live_;  // ordered: answers come out by id
  std::vector<std::uint32_t> last_update_epoch_;  // per node, 0 = never
  /// Stats groups already collected-and-stored this epoch (store-once guard).
  std::vector<GroupId> stored_this_epoch_;
  /// Regions already stored by the cube path this epoch (its store-once
  /// guard — cube serves have no group id).
  std::vector<query::RegionSignature> cube_stored_this_epoch_;
  ServiceTelemetry telemetry_;

  // ---- cost attribution ledgers (see TelemetrySnapshot) -----------------
  std::map<QueryId, QueryCost> query_costs_;
  std::map<GroupId, GroupCost> group_costs_;
  std::uint64_t mark_bits_on_air_ = 0;
  std::uint64_t mark_messages_ = 0;
};

}  // namespace sensornet::service
