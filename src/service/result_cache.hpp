// Result cache with deterministic error bounds (the PASS idea).
//
// The query service collects, per shared-aggregation group, a *stats bundle*
// (cube::StatsBundle): COUNT/SUM/MIN/MAX over the query region plus the same
// four aggregates over a margin-shrunk ("inner") and margin-grown ("outer")
// copy of the region. Under the model's drift assumption — a sensor's
// reading moves by at most `max_delta` per epoch and stays in
// [0, max_value_bound] — a bundle frozen at epoch t still brackets the
// *current* aggregate at epoch t + s. The bracket arithmetic itself lives in
// cube::bracket_bundle (one home, shared with the multiresolution cube's
// per-cell staleness bounds); this file is the region-keyed store and the
// hit/miss policy on top of it.
//
// A lookup is a *hit* when the bracket's half-width satisfies the query's
// requested ERROR tolerance (interpreted relative to the answer); queries
// without ERROR only hit when the bound is exactly zero (e.g. a repeated
// query within the same epoch, or whole-domain COUNT). Hits are answered
// without touching the network — zero bits.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "src/common/types.hpp"
#include "src/cube/stats.hpp"
#include "src/query/aggregate.hpp"
#include "src/query/plan.hpp"

namespace sensornet::service {

// The stats primitives moved to src/cube in PR 10; these aliases keep the
// service's vocabulary (collections produce bundles, caches store them).
using cube::RangeStats;
using cube::StatsBundle;

/// A cache-served answer: the frozen aggregate plus the deterministic bound
/// on its distance from the exact current answer.
using CachedAnswer = cube::BracketedAnswer;

/// Monotonic outcome counters since construction. Every hit is a zero-bit
/// answer (served without touching the network); `exact_hits` is the
/// bound == 0 subset. `hits` counts only lookup() successes — probe(), the
/// service's planning pass, never counts a hit — so hits equals answers
/// actually served from the cache.
struct CacheCounters {
  std::uint64_t probes = 0;      // probe() calls
  std::uint64_t lookups = 0;     // lookup() calls
  std::uint64_t hits = 0;        // lookup() served an answer
  std::uint64_t exact_hits = 0;  // ... with bound == 0
  std::uint64_t misses = 0;      // bracket exists but exceeds the tolerance
  std::uint64_t expired = 0;     // entry older than the bracketing horizon
  std::uint64_t absent = 0;      // no entry for the region at all
};

class ResultCache {
 public:
  /// `horizon_epochs` is the margin the collector used (M = horizon *
  /// max_delta): entries older than that cannot bracket ranged regions and
  /// expire for them.
  ResultCache(Value max_value_bound, Value max_delta,
              std::uint32_t horizon_epochs, std::size_t capacity = 1024);

  /// Installs / refreshes the entry for `region` as of `epoch`.
  void store(const query::RegionSignature& region, std::uint32_t epoch,
             const StatsBundle& bundle);

  /// Bound-checked lookup: returns an answer only when the deterministic
  /// bound satisfies `epsilon` (relative tolerance; absent means "exact
  /// required"). Never serves MEDIAN/QUANTILE/COUNT_DISTINCT — those
  /// aggregates are not bracketable from a stats bundle. Counts a hit (or
  /// the failure's kind) — call it only when a success will actually be
  /// served to a query.
  std::optional<CachedAnswer> lookup(const query::RegionSignature& region,
                                     query::AggregateKind agg,
                                     std::optional<double> epsilon,
                                     std::uint32_t now_epoch) const;

  /// Same answer as lookup(), but a success counts nothing: the service's
  /// planning pass probes every due subscriber to decide which groups need
  /// a fresh collection, and a groupmate's veto can force a query whose
  /// probe succeeded to be answered fresh anyway. Failures still classify
  /// (miss/expired/absent) — a failed probe IS the reason bits get spent.
  std::optional<CachedAnswer> probe(const query::RegionSignature& region,
                                    query::AggregateKind agg,
                                    std::optional<double> epsilon,
                                    std::uint32_t now_epoch) const;

  /// The raw bracket (no epsilon gate) — what lookup() compares against the
  /// tolerance. Exposed for tests and for the service's "could the cache
  /// serve this group" probe.
  std::optional<CachedAnswer> bracket(const query::RegionSignature& region,
                                      query::AggregateKind agg,
                                      std::uint32_t now_epoch) const;

  std::size_t size() const { return entries_.size(); }
  std::uint64_t stores() const { return stores_; }
  const CacheCounters& counters() const { return counters_; }

 private:
  struct Entry {
    std::uint32_t epoch = 0;
    StatsBundle bundle;
  };

  /// Shared classify path behind lookup() and probe().
  std::optional<CachedAnswer> check(const query::RegionSignature& region,
                                    query::AggregateKind agg,
                                    std::optional<double> epsilon,
                                    std::uint32_t now_epoch,
                                    bool count_hit) const;

  Value max_value_bound_;
  Value max_delta_;
  std::uint32_t horizon_epochs_;
  std::size_t capacity_;
  std::uint64_t stores_ = 0;
  // Outcome telemetry is observability, not state: const lookups may count.
  mutable CacheCounters counters_;
  std::map<query::RegionSignature, Entry> entries_;
};

}  // namespace sensornet::service
