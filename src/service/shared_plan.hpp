// Shared-aggregation scheduler: one in-network collection per epoch per
// (region, aggregate-family) group, no matter how many queries subscribe.
//
// TAG/TinyDB lineage: continuous queries over the same region should ride
// one spanning-tree aggregation, not re-run it per client. The scheduler
// keeps one *group* per distinct (region, family) key:
//
//   kStats    — COUNT/SUM/AVG/MIN/MAX share one stats-bundle wave (the
//               bundle also carries the result cache's inner/outer margins)
//   kDistinct — COUNT_DISTINCT queries share one set-union / HLL wave per
//               (region, registers) key
//
// Collections are *incremental*. Sensors that change push a coalesced 1-bit
// dirty mark up the tree (cube::DirtyTracker — shared with the
// multiresolution cube, which rides the same wave), so every interior node
// knows, per child edge, the epoch of the last change below it. A
// collection wave then descends only into subtrees that changed since the
// group's cached partial for that edge — unchanged subtrees are answered
// from the parent-side cache without a single message. A fully quiescent
// network collects for free.
//
// The scheduler assumes the service's deployment discipline: lossless links
// (tree waves stall under loss) and serial execution (one collection at a
// time on the shared simulated medium).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "src/common/types.hpp"
#include "src/cube/dirty.hpp"
#include "src/net/spanning_tree.hpp"
#include "src/query/plan.hpp"
#include "src/service/result_cache.hpp"
#include "src/sim/network.hpp"

namespace sensornet::service {

using GroupId = std::uint32_t;

/// Scheduler telemetry — the sharing/incrementality story in numbers.
struct SharedPlanStats {
  std::uint64_t stats_waves = 0;       // stats-bundle collections executed
  std::uint64_t distinct_waves = 0;    // distinct collections executed
  std::uint64_t edges_descended = 0;   // request messages sent by stats waves
  std::uint64_t edges_skipped = 0;     // child partials served from cache
  std::uint64_t mark_messages = 0;     // dirty-mark messages shipped
  std::uint64_t groups_created = 0;
};

class SharedPlanScheduler {
 public:
  /// `horizon_epochs` sets the bundle's inner/outer margin to
  /// horizon * max_delta — entries stay bracketing for that many epochs.
  SharedPlanScheduler(sim::Network& net, const net::SpanningTree& tree,
                      Value max_value_bound, Value max_delta,
                      std::uint32_t horizon_epochs);
  ~SharedPlanScheduler();

  SharedPlanScheduler(const SharedPlanScheduler&) = delete;
  SharedPlanScheduler& operator=(const SharedPlanScheduler&) = delete;

  /// Returns the stats group for `region`, creating it on first use. A new
  /// group pays one region-install broadcast (nodes must learn the range
  /// and margin they aggregate over — those bits are metered like any
  /// others).
  GroupId ensure_stats_group(const query::RegionSignature& region);

  /// The distinct-family analogue; `registers` == 0 selects the exact
  /// set-union wave, otherwise a hashed-HLL wave of that many registers.
  GroupId ensure_distinct_group(const query::RegionSignature& region,
                                unsigned registers);

  /// Records one epoch's sensor-update batch: stamps the updated nodes and
  /// ships coalesced dirty marks up the tree (bits metered). Must be called
  /// after the updates are applied to the network and before collections of
  /// the same epoch.
  void note_updates(std::span<const NodeId> updated, std::uint32_t epoch);

  /// One shared stats collection; idempotent within an epoch (the second
  /// call returns the cached root bundle without touching the network).
  const StatsBundle& collect_stats(GroupId group, std::uint32_t epoch);

  /// One shared distinct collection; idempotent within an epoch. Returns
  /// the estimate (exact count for register-less groups).
  double collect_distinct(GroupId group, std::uint32_t epoch);

  /// The freshness oracle behind every incremental consumer (this
  /// scheduler's stats waves, the cube's cell refreshes).
  const cube::DirtyTracker& dirty() const { return dirty_; }

  const SharedPlanStats& stats() const { return stats_; }
  std::size_t group_count() const { return groups_.size(); }

 private:
  struct Group;
  class StatsWave;
  class RegionView;

  StatsBundle local_bundle(NodeId node, const Group& g) const;

  sim::Network& net_;
  const net::SpanningTree& tree_;
  Value max_value_bound_;
  Value max_delta_;
  std::uint32_t horizon_epochs_;

  /// Per-node dirty tracking, physically resident at nodes (extracted to
  /// cube::DirtyTracker in PR 10 so the cube can share the mark wave).
  cube::DirtyTracker dirty_;

  std::vector<std::unique_ptr<Group>> groups_;
  std::map<std::pair<query::RegionSignature, unsigned>, GroupId>
      stats_index_;  // unused unsigned slot keeps one map type for both
  std::map<std::pair<query::RegionSignature, unsigned>, GroupId>
      distinct_index_;

  std::uint32_t next_session_ = 0x7000;
  SharedPlanStats stats_;
};

}  // namespace sensornet::service
