#include "src/service/result_cache.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"

namespace sensornet::service {

ResultCache::ResultCache(Value max_value_bound, Value max_delta,
                         std::uint32_t horizon_epochs, std::size_t capacity)
    : max_value_bound_(max_value_bound),
      max_delta_(max_delta),
      horizon_epochs_(horizon_epochs),
      capacity_(capacity) {
  SENSORNET_EXPECTS(max_value_bound >= 0);
  SENSORNET_EXPECTS(max_delta >= 0);
  SENSORNET_EXPECTS(capacity > 0);
}

void ResultCache::store(const query::RegionSignature& region,
                        std::uint32_t epoch, const StatsBundle& bundle) {
  entries_[region] = Entry{epoch, bundle};
  ++stores_;
  if (entries_.size() > capacity_) {
    // Evict the stalest entry — it is both the least likely to satisfy a
    // tolerance and the first to expire outright.
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.epoch < victim->second.epoch) victim = it;
    }
    entries_.erase(victim);
  }
}

std::optional<CachedAnswer> ResultCache::bracket(
    const query::RegionSignature& region, query::AggregateKind agg,
    std::uint32_t now_epoch) const {
  const auto it = entries_.find(region);
  if (it == entries_.end()) return std::nullopt;
  const Entry& e = it->second;
  SENSORNET_EXPECTS(now_epoch >= e.epoch);
  const std::uint32_t staleness = now_epoch - e.epoch;
  // Ranged regions are bracketed by the inner/outer margins, which only
  // cover drifts up to the collection horizon.
  if (!region.whole_domain && staleness > horizon_epochs_) return std::nullopt;
  const double d =
      static_cast<double>(staleness) * static_cast<double>(max_delta_);
  const StatsBundle& b = e.bundle;
  // Whole-domain entries clamp to the full value domain; ranged entries to
  // their own region (a range aggregate cannot leave its range).
  const double rail_lo =
      region.whole_domain ? 0.0 : static_cast<double>(region.lo);
  const double rail_hi = region.whole_domain
                             ? static_cast<double>(max_value_bound_)
                             : static_cast<double>(region.hi);
  const cube::BundleBracket br =
      cube::bracket_bundle(b, region.whole_domain, d, rail_lo, rail_hi);

  switch (agg) {
    case query::AggregateKind::kCount:
      return cube::make_answer(static_cast<double>(b.core.count), br.count_lo,
                               br.count_hi);
    case query::AggregateKind::kSum:
      return cube::make_answer(static_cast<double>(b.core.sum), br.sum_lo,
                               br.sum_hi);
    case query::AggregateKind::kAvg: {
      if (b.core.count == 0) return std::nullopt;  // empty selection
      if (br.count_lo <= 0.0) return std::nullopt;  // count could hit zero
      const double value = static_cast<double>(b.core.sum) /
                           static_cast<double>(b.core.count);
      return cube::make_answer(value, br.sum_lo / br.count_hi,
                               br.sum_hi / br.count_lo);
    }
    case query::AggregateKind::kMin:
      if (b.core.count == 0 || !br.defined) return std::nullopt;
      return cube::make_answer(static_cast<double>(b.core.min), br.min_lo,
                               br.min_hi);
    case query::AggregateKind::kMax:
      if (b.core.count == 0 || !br.defined) return std::nullopt;
      return cube::make_answer(static_cast<double>(b.core.max), br.max_lo,
                               br.max_hi);
    case query::AggregateKind::kMedian:
    case query::AggregateKind::kQuantile:
    case query::AggregateKind::kCountDistinct:
      return std::nullopt;
  }
  return std::nullopt;
}

std::optional<CachedAnswer> ResultCache::check(
    const query::RegionSignature& region, query::AggregateKind agg,
    std::optional<double> epsilon, std::uint32_t now_epoch,
    bool count_hit) const {
  const auto it = entries_.find(region);
  if (it == entries_.end()) {
    ++counters_.absent;
    return std::nullopt;
  }
  SENSORNET_EXPECTS(now_epoch >= it->second.epoch);
  if (!region.whole_domain &&
      now_epoch - it->second.epoch > horizon_epochs_) {
    ++counters_.expired;
    return std::nullopt;
  }
  const auto br = bracket(region, agg, now_epoch);
  if (!br) {
    // Unbracketable aggregate or empty selection: the entry was no help.
    ++counters_.misses;
    return std::nullopt;
  }
  const double tolerance =
      epsilon ? *epsilon * std::max(1.0, std::abs(br->value)) : 0.0;
  if (br->bound > tolerance) {
    ++counters_.misses;
    return std::nullopt;
  }
  if (count_hit) {
    ++counters_.hits;
    if (br->exact) ++counters_.exact_hits;
  }
  return br;
}

std::optional<CachedAnswer> ResultCache::lookup(
    const query::RegionSignature& region, query::AggregateKind agg,
    std::optional<double> epsilon, std::uint32_t now_epoch) const {
  ++counters_.lookups;
  return check(region, agg, epsilon, now_epoch, /*count_hit=*/true);
}

std::optional<CachedAnswer> ResultCache::probe(
    const query::RegionSignature& region, query::AggregateKind agg,
    std::optional<double> epsilon, std::uint32_t now_epoch) const {
  ++counters_.probes;
  return check(region, agg, epsilon, now_epoch, /*count_hit=*/false);
}

}  // namespace sensornet::service
