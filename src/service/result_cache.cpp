#include "src/service/result_cache.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"

namespace sensornet::service {

void RangeStats::observe(Value v) {
  if (count == 0) {
    min = max = v;
  } else {
    min = std::min(min, v);
    max = std::max(max, v);
  }
  count += 1;
  sum += static_cast<std::uint64_t>(v);
}

void RangeStats::combine(const RangeStats& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
}

void StatsBundle::combine(const StatsBundle& other) {
  core.combine(other.core);
  inner.combine(other.inner);
  outer.combine(other.outer);
}

ResultCache::ResultCache(Value max_value_bound, Value max_delta,
                         std::uint32_t horizon_epochs, std::size_t capacity)
    : max_value_bound_(max_value_bound),
      max_delta_(max_delta),
      horizon_epochs_(horizon_epochs),
      capacity_(capacity) {
  SENSORNET_EXPECTS(max_value_bound >= 0);
  SENSORNET_EXPECTS(max_delta >= 0);
  SENSORNET_EXPECTS(capacity > 0);
}

void ResultCache::store(const query::RegionSignature& region,
                        std::uint32_t epoch, const StatsBundle& bundle) {
  entries_[region] = Entry{epoch, bundle};
  ++stores_;
  if (entries_.size() > capacity_) {
    // Evict the stalest entry — it is both the least likely to satisfy a
    // tolerance and the first to expire outright.
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.epoch < victim->second.epoch) victim = it;
    }
    entries_.erase(victim);
  }
}

std::optional<CachedAnswer> ResultCache::bracket(
    const query::RegionSignature& region, query::AggKind agg,
    std::uint32_t now_epoch) const {
  const auto it = entries_.find(region);
  if (it == entries_.end()) return std::nullopt;
  const Entry& e = it->second;
  SENSORNET_EXPECTS(now_epoch >= e.epoch);
  const std::uint32_t staleness = now_epoch - e.epoch;
  // Ranged regions are bracketed by the inner/outer margins, which only
  // cover drifts up to the collection horizon.
  if (!region.whole_domain && staleness > horizon_epochs_) return std::nullopt;
  const double d =
      static_cast<double>(staleness) * static_cast<double>(max_delta_);
  const StatsBundle& b = e.bundle;

  const auto answer = [](double value, double lo, double hi) {
    return CachedAnswer{value, std::max(value - lo, hi - value),
                        /*exact=*/false};
  };

  CachedAnswer out;
  switch (agg) {
    case query::AggKind::kCount: {
      const auto value = static_cast<double>(b.core.count);
      if (region.whole_domain) {
        out = CachedAnswer{value, 0.0, false};  // membership is static
      } else {
        out = answer(value, static_cast<double>(b.inner.count),
                     static_cast<double>(b.outer.count));
      }
      break;
    }
    case query::AggKind::kSum: {
      const auto value = static_cast<double>(b.core.sum);
      if (region.whole_domain) {
        out = answer(value,
                     value - static_cast<double>(b.core.count) * d,
                     value + static_cast<double>(b.core.count) * d);
      } else {
        const double lo = std::max(
            0.0, static_cast<double>(b.inner.sum) -
                     static_cast<double>(b.inner.count) * d);
        const double hi = static_cast<double>(b.outer.sum) +
                          static_cast<double>(b.outer.count) * d;
        out = answer(value, lo, hi);
      }
      break;
    }
    case query::AggKind::kAvg: {
      if (b.core.count == 0) return std::nullopt;  // empty selection
      const double value = static_cast<double>(b.core.sum) /
                           static_cast<double>(b.core.count);
      if (region.whole_domain) {
        out = answer(value, value - d, value + d);
      } else {
        if (b.inner.count == 0) return std::nullopt;  // count could hit zero
        const double sum_lo = std::max(
            0.0, static_cast<double>(b.inner.sum) -
                     static_cast<double>(b.inner.count) * d);
        const double sum_hi = static_cast<double>(b.outer.sum) +
                              static_cast<double>(b.outer.count) * d;
        out = answer(value, sum_lo / static_cast<double>(b.outer.count),
                     sum_hi / static_cast<double>(b.inner.count));
      }
      break;
    }
    case query::AggKind::kMin: {
      if (b.core.count == 0) return std::nullopt;
      const auto value = static_cast<double>(b.core.min);
      if (region.whole_domain) {
        out = answer(value, std::max(0.0, value - d), value + d);
      } else {
        if (b.inner.count == 0) return std::nullopt;
        const double lo = std::max(static_cast<double>(region.lo),
                                   static_cast<double>(b.outer.min) - d);
        out = answer(value, lo, static_cast<double>(b.inner.min) + d);
      }
      break;
    }
    case query::AggKind::kMax: {
      if (b.core.count == 0) return std::nullopt;
      const auto value = static_cast<double>(b.core.max);
      if (region.whole_domain) {
        out = answer(value, value - d,
                     std::min(static_cast<double>(max_value_bound_),
                              value + d));
      } else {
        if (b.inner.count == 0) return std::nullopt;
        const double hi = std::min(static_cast<double>(region.hi),
                                   static_cast<double>(b.outer.max) + d);
        out = answer(value, static_cast<double>(b.inner.max) - d, hi);
      }
      break;
    }
    case query::AggKind::kMedian:
    case query::AggKind::kQuantile:
    case query::AggKind::kCountDistinct:
      return std::nullopt;
  }
  out.bound = std::max(out.bound, 0.0);
  out.exact = out.bound == 0.0;
  return out;
}

std::optional<CachedAnswer> ResultCache::check(
    const query::RegionSignature& region, query::AggKind agg,
    std::optional<double> epsilon, std::uint32_t now_epoch,
    bool count_hit) const {
  const auto it = entries_.find(region);
  if (it == entries_.end()) {
    ++counters_.absent;
    return std::nullopt;
  }
  SENSORNET_EXPECTS(now_epoch >= it->second.epoch);
  if (!region.whole_domain &&
      now_epoch - it->second.epoch > horizon_epochs_) {
    ++counters_.expired;
    return std::nullopt;
  }
  const auto br = bracket(region, agg, now_epoch);
  if (!br) {
    // Unbracketable aggregate or empty selection: the entry was no help.
    ++counters_.misses;
    return std::nullopt;
  }
  const double tolerance =
      epsilon ? *epsilon * std::max(1.0, std::abs(br->value)) : 0.0;
  if (br->bound > tolerance) {
    ++counters_.misses;
    return std::nullopt;
  }
  if (count_hit) {
    ++counters_.hits;
    if (br->exact) ++counters_.exact_hits;
  }
  return br;
}

std::optional<CachedAnswer> ResultCache::lookup(
    const query::RegionSignature& region, query::AggKind agg,
    std::optional<double> epsilon, std::uint32_t now_epoch) const {
  ++counters_.lookups;
  return check(region, agg, epsilon, now_epoch, /*count_hit=*/true);
}

std::optional<CachedAnswer> ResultCache::probe(
    const query::RegionSignature& region, query::AggKind agg,
    std::optional<double> epsilon, std::uint32_t now_epoch) const {
  ++counters_.probes;
  return check(region, agg, epsilon, now_epoch, /*count_hit=*/false);
}

}  // namespace sensornet::service
