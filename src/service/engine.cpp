#include "src/service/engine.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/error.hpp"
#include "src/obs/trace.hpp"
#include "src/query/lexer.hpp"
#include "src/query/parser.hpp"
#include "src/sim/network.hpp"

namespace sensornet::service {

namespace {

/// Bits/messages spent on the network since `before` — the unit of cost
/// attribution (headers included: bits on air are bits paid).
struct CostDelta {
  std::uint64_t bits = 0;
  std::uint64_t messages = 0;
};

CostDelta cost_since(const sim::Network& net, const sim::CommSummary& before) {
  const sim::CommSummary after = net.summary(/*include_headers=*/true);
  return CostDelta{after.total_bits - before.total_bits,
                   after.total_messages - before.total_messages};
}

/// Exact answer for a stats aggregate from a freshly collected bundle.
Answer bundle_answer(query::AggregateKind agg, const StatsBundle& b) {
  Answer a;
  const RangeStats& core = b.core;
  switch (agg) {
    case query::AggregateKind::kCount:
      a.value = static_cast<double>(core.count);
      break;
    case query::AggregateKind::kSum:
      a.value = static_cast<double>(core.sum);
      break;
    case query::AggregateKind::kAvg:
      if (core.count == 0) {
        a.empty_selection = true;
      } else {
        a.value = static_cast<double>(core.sum) /
                  static_cast<double>(core.count);
      }
      break;
    case query::AggregateKind::kMin:
      if (core.count == 0) {
        a.empty_selection = true;
      } else {
        a.value = static_cast<double>(core.min);
      }
      break;
    case query::AggregateKind::kMax:
      if (core.count == 0) {
        a.empty_selection = true;
      } else {
        a.value = static_cast<double>(core.max);
      }
      break;
    default:
      throw PreconditionError("bundle_answer: not a stats aggregate");
  }
  a.exact = true;
  return a;
}

cube::CubeConfig cube_config_from(const ServiceConfig& c) {
  cube::CubeConfig cc;
  cc.levels = c.cube_levels;
  cc.distinct_registers = c.cube_distinct_registers;
  cc.max_delta = c.max_delta;
  cc.horizon_epochs = c.cache_horizon_epochs;
  return cc;
}

}  // namespace

QueryService::QueryService(query::Deployment deployment, ServiceConfig config)
    : deployment_(deployment),
      config_(config),
      executor_(deployment),
      scheduler_(std::make_unique<SharedPlanScheduler>(
          deployment.net, deployment.tree, deployment.max_value_bound,
          config.max_delta, config.cache_horizon_epochs)),
      cube_(config.use_cube
                ? std::make_unique<cube::Cube>(
                      deployment.net, deployment.tree,
                      deployment.max_value_bound, scheduler_->dirty(),
                      cube_config_from(config))
                : nullptr),
      planner_(deployment.max_value_bound, cube_.get()),
      cache_(deployment.max_value_bound, config.max_delta,
             config.cache_horizon_epochs, config.cache_capacity),
      farm_(config.threads),
      last_update_epoch_(deployment.net.node_count(), 0) {
  SENSORNET_EXPECTS(config.max_delta >= 0);
  SENSORNET_EXPECTS(config.cache_horizon_epochs >= 1);
}

QueryService::~QueryService() = default;

QueryService::ParsedQuery QueryService::parse_and_plan(
    const std::string& text) const {
  ParsedQuery out;
  try {
    out.q = query::parse_query(text);
  } catch (const query::QueryError& e) {
    out.error = e.what();
    return out;
  }
  Result<query::CostedPlan> planned = planner_.plan(out.q);
  if (!planned.ok()) {
    out.error = planned.error();
    return out;
  }
  out.plan = std::move(planned).value();
  out.region = out.plan.region;
  out.ok = true;
  return out;
}

Result<Admission> QueryService::submit(const std::string& text) {
  ParsedQuery parsed = parse_and_plan(text);
  if (!parsed.ok) return Result<Admission>::failure(std::move(parsed.error));
  return admit(std::move(parsed));
}

std::vector<Result<Admission>> QueryService::submit_batch(
    const std::vector<std::string>& texts) {
  // Pure front half in parallel; cells share nothing and derive nothing from
  // execution order, so any worker count yields identical ParsedQuery slots.
  std::vector<ParsedQuery> parsed = farm_.map<ParsedQuery>(
      texts.size(),
      [&](std::size_t cell) { return parse_and_plan(texts[cell]); });
  // Serial back half in submission order: id allocation, group creation and
  // install broadcasts all touch the shared network.
  std::vector<Result<Admission>> out;
  out.reserve(texts.size());
  for (ParsedQuery& p : parsed) {
    if (!p.ok) {
      out.push_back(Result<Admission>::failure(std::move(p.error)));
    } else {
      out.push_back(admit(std::move(p)));
    }
  }
  return out;
}

Admission QueryService::admit(ParsedQuery&& parsed) {
  LiveQuery lq;
  lq.id = next_id_++;
  lq.q = std::move(parsed.q);
  lq.plan = std::move(parsed.plan);
  lq.region = parsed.region;
  lq.registered_epoch = epoch_;
  lq.every = lq.q.every_epochs.value_or(0);

  Admission adm;
  adm.id = lq.id;
  adm.continuous = lq.every != 0;

  const bool stats_family =
      query::family(lq.q.agg) == query::AggregateFamily::kStats;
  if (!config_.share_aggregation && !config_.use_cube) {
    lq.path = Path::kExecutor;
    adm.plan = "naive: " + lq.plan.description;
  } else if (config_.use_cube && planner_.cube_eligible(lq.plan)) {
    lq.path = Path::kCube;
    adm.plan = "cube: " + lq.plan.description;
  } else if (config_.share_aggregation && stats_family) {
    lq.path = Path::kStats;
    const auto before = deployment_.net.summary(true);
    lq.group = scheduler_->ensure_stats_group(lq.region);
    const CostDelta d = cost_since(deployment_.net, before);
    group_costs_[lq.group].bits_on_air += d.bits;
    group_costs_[lq.group].messages += d.messages;
    adm.plan = "shared stats bundle, group " + std::to_string(lq.group);
  } else if (config_.share_aggregation &&
             lq.q.agg == query::AggregateKind::kCountDistinct) {
    lq.path = Path::kDistinct;
    const unsigned registers =
        lq.plan.strategy == query::Strategy::kApproxDistinct
            ? lq.plan.registers
            : 0;
    const auto before = deployment_.net.summary(true);
    lq.group = scheduler_->ensure_distinct_group(lq.region, registers);
    const CostDelta d = cost_since(deployment_.net, before);
    group_costs_[lq.group].bits_on_air += d.bits;
    group_costs_[lq.group].messages += d.messages;
    adm.plan = "shared distinct group " + std::to_string(lq.group);
  } else {
    lq.path = Path::kExecutor;  // median/quantile: no shared representation
    adm.plan = "per-query: " + lq.plan.description;
  }

  obs::TraceRing& ring = obs::TraceRing::global();
  if (ring.enabled()) {
    ring.instant("query.admit", "service", deployment_.net.now(), 0, "id",
                 lq.id, "group", lq.group);
  }

  if (adm.continuous) {
    live_.emplace(lq.id, std::move(lq));
  } else if (lq.path == Path::kCube) {
    adm.answer = serve_cube(lq);
  } else {
    // Single cache interrogation per serve: a lookup() hit is always
    // consumed, so the cache's hit counter equals answers served from it.
    std::optional<CachedAnswer> hit;
    if (lq.path == Path::kStats && config_.use_cache) {
      hit = cache_.lookup(lq.region, lq.q.agg, lq.q.error, epoch_);
    }
    adm.answer = hit ? answer_cached(lq, *hit) : answer_fresh(lq);
  }
  return adm;
}

bool QueryService::cancel(QueryId id) {
  return live_.erase(id) != 0;
}

bool QueryService::cache_could_serve(const LiveQuery& lq) const {
  // probe(), not lookup(): this is the planning pass, and a groupmate's
  // veto can still force this query onto the fresh path — counting a hit
  // here would overstate serves (see ResultCache::probe).
  return cache_
      .probe(lq.region, lq.q.agg, lq.q.error, epoch_)
      .has_value();
}

Answer QueryService::answer_cached(const LiveQuery& lq,
                                   const CachedAnswer& hit) {
  Answer a;
  a.id = lq.id;
  a.epoch = epoch_;
  a.value = hit.value;
  a.error_bound = hit.bound;
  a.exact = hit.exact;
  a.from_cache = true;
  ++telemetry_.answers;
  ++telemetry_.cache_hits;

  QueryCost& qc = query_costs_[lq.id];
  ++qc.answers;
  ++qc.cache_hits;
  const double tolerance =
      lq.q.error ? *lq.q.error * std::max(1.0, std::abs(hit.value)) : 0.0;
  qc.bound_slack += tolerance - hit.bound;  // >= 0: the hit met the gate

  obs::TraceRing& ring = obs::TraceRing::global();
  if (ring.enabled()) {
    ring.instant("query.answer", "service", deployment_.net.now(), 0, "id",
                 lq.id, "cached", 1);
  }
  return a;
}

Answer QueryService::serve_cube(const LiveQuery& lq) {
  // Tier 1: the region-keyed result cache (stats aggregates only) — a prior
  // cube serve stored the composed bundle, so repeats within the drift
  // tolerance are free.
  const bool stats_family =
      query::family(lq.q.agg) == query::AggregateFamily::kStats;
  if (config_.use_cache && stats_family) {
    if (const auto hit =
            cache_.lookup(lq.region, lq.q.agg, lq.q.error, epoch_)) {
      return answer_cached(lq, *hit);
    }
  }

  // Re-plan so the cover reflects the cube's current freshness: a cell
  // refreshed for another query this epoch is free to reuse now.
  Result<query::CostedPlan> replanned = planner_.plan(lq.q);
  SENSORNET_EXPECTS(replanned.ok());  // admitted queries stay plannable
  const query::CostedPlan plan = std::move(replanned).value();

  // Tier 2: per-cell drift brackets — zero bits when every step is a
  // maintained cell and the composed bound fits the query's tolerance.
  if (stats_family) {
    if (const auto br = cube_->stale_bracket(plan, lq.q.agg, epoch_)) {
      const double tolerance =
          lq.q.error ? *lq.q.error * std::max(1.0, std::abs(br->value)) : 0.0;
      if (br->bound <= tolerance) {
        Answer a;
        a.id = lq.id;
        a.epoch = epoch_;
        a.value = br->value;
        a.error_bound = br->bound;
        a.exact = br->exact;
        ++telemetry_.answers;
        ++telemetry_.cube_stale_answers;
        QueryCost& qc = query_costs_[lq.id];
        ++qc.answers;
        ++qc.cube_stale;
        qc.bound_slack += tolerance - br->bound;
        obs::TraceRing& ring = obs::TraceRing::global();
        if (ring.enabled()) {
          ring.instant("query.answer", "service", deployment_.net.now(), 0,
                       "id", lq.id, "cube_stale", 1);
        }
        return a;
      }
    }
  }

  // Tier 3: fresh cube serve — refresh the cover's cells (incremental
  // descent), run pruned residues, compose.
  const auto before = deployment_.net.summary(true);
  const cube::ServeResult r = cube_->serve(plan, epoch_);
  Answer a;
  if (lq.q.agg == query::AggregateKind::kCountDistinct) {
    SENSORNET_EXPECTS(r.has_distinct);
    a.value = r.distinct_estimate;
    a.exact = false;
  } else {
    a = bundle_answer(lq.q.agg, r.bundle);
  }
  a.id = lq.id;
  a.epoch = epoch_;
  // The composed bundle brackets the whole region (cell inners nest inside
  // the region's inner; cell outers cover its outer), so it is storable
  // under the cache's drift model like any collected bundle.
  if (config_.use_cache && stats_family &&
      std::find(cube_stored_this_epoch_.begin(), cube_stored_this_epoch_.end(),
                lq.region) == cube_stored_this_epoch_.end()) {
    cache_.store(lq.region, epoch_, r.bundle);
    cube_stored_this_epoch_.push_back(lq.region);
  }
  ++telemetry_.answers;
  ++telemetry_.cube_fresh_answers;

  const CostDelta d = cost_since(deployment_.net, before);
  QueryCost& qc = query_costs_[lq.id];
  ++qc.answers;
  ++qc.fresh;
  qc.bits_on_air += d.bits;
  qc.messages += d.messages;

  obs::TraceRing& ring = obs::TraceRing::global();
  if (ring.enabled()) {
    ring.instant("query.answer", "service", deployment_.net.now(), 0, "id",
                 lq.id, "cube_fresh", 1);
  }
  return a;
}

Answer QueryService::answer_fresh(const LiveQuery& lq) {
  const auto before = deployment_.net.summary(true);
  const SharedPlanStats waves_before = scheduler_->stats();
  Answer a;
  switch (lq.path) {
    case Path::kStats: {
      const StatsBundle& b = scheduler_->collect_stats(lq.group, epoch_);
      if (config_.use_cache &&
          std::find(stored_this_epoch_.begin(), stored_this_epoch_.end(),
                    lq.group) == stored_this_epoch_.end()) {
        cache_.store(lq.region, epoch_, b);
        stored_this_epoch_.push_back(lq.group);
      }
      a = bundle_answer(lq.q.agg, b);
      ++telemetry_.fresh_stats_answers;
      break;
    }
    case Path::kDistinct: {
      a.value = scheduler_->collect_distinct(lq.group, epoch_);
      a.exact = lq.plan.strategy == query::Strategy::kExactDistinct;
      ++telemetry_.distinct_answers;
      break;
    }
    case Path::kCube:
      throw PreconditionError("cube path is served by serve_cube()");
    case Path::kExecutor: {
      const query::QueryResult r = executor_.run(lq.q, lq.plan);
      a.value = r.value;
      a.exact = r.is_exact;
      ++telemetry_.executor_runs;
      break;
    }
  }
  a.id = lq.id;
  a.epoch = epoch_;
  ++telemetry_.answers;

  // Marginal-cost attribution: a collection is idempotent per (group,
  // epoch), so the first due subscriber pays the whole wave here and later
  // groupmates see a zero delta.
  const CostDelta d = cost_since(deployment_.net, before);
  QueryCost& qc = query_costs_[lq.id];
  ++qc.answers;
  ++qc.fresh;
  qc.bits_on_air += d.bits;
  qc.messages += d.messages;
  if (lq.path == Path::kStats || lq.path == Path::kDistinct) {
    const SharedPlanStats waves_after = scheduler_->stats();
    GroupCost& gc = group_costs_[lq.group];
    gc.bits_on_air += d.bits;
    gc.messages += d.messages;
    gc.collections += (waves_after.stats_waves - waves_before.stats_waves) +
                      (waves_after.distinct_waves -
                       waves_before.distinct_waves);
  }

  obs::TraceRing& ring = obs::TraceRing::global();
  if (ring.enabled()) {
    ring.instant("query.answer", "service", deployment_.net.now(), 0, "id",
                 lq.id, "cached", 0);
  }
  return a;
}

std::vector<Answer> QueryService::run_epoch(
    std::span<const SensorUpdate> updates) {
  ++epoch_;
  stored_this_epoch_.clear();
  cube_stored_this_epoch_.clear();
  const SimTime epoch_t0 = deployment_.net.now();

  // Apply the batch under the drift model the cache's soundness rests on.
  std::vector<NodeId> touched;
  touched.reserve(updates.size());
  for (const SensorUpdate& u : updates) {
    SENSORNET_EXPECTS(u.node < deployment_.net.node_count());
    SENSORNET_EXPECTS(last_update_epoch_[u.node] != epoch_);
    last_update_epoch_[u.node] = epoch_;
    SENSORNET_EXPECTS(u.value >= 0 &&
                      u.value <= deployment_.max_value_bound);
    const auto items = deployment_.net.items(u.node);
    SENSORNET_EXPECTS(!items.empty());
    const Value old = items[0];
    const Value delta = u.value > old ? u.value - old : old - u.value;
    SENSORNET_EXPECTS(delta <= config_.max_delta);
    if (delta == 0) continue;  // no-op writes don't dirty the tree
    deployment_.net.update_item(u.node, 0, u.value);
    touched.push_back(u.node);
    ++telemetry_.updates_applied;
  }
  if (config_.share_aggregation || config_.use_cube) {
    // The mark wave serves every incremental consumer at once (shared
    // groups and cube cells ride the same marks); no single query caused
    // it, so its bits land in the service-level bucket.
    const auto before = deployment_.net.summary(true);
    scheduler_->note_updates(touched, epoch_);
    const CostDelta d = cost_since(deployment_.net, before);
    mark_bits_on_air_ += d.bits;
    mark_messages_ += d.messages;
  }

  // Which stats groups can be served entirely from cache this epoch? A
  // single subscriber whose tolerance the cache cannot meet forces a fresh
  // collection — and once it is paid, every due subscriber of the group
  // rides it for free, so "partially cached" never happens within a group.
  std::vector<GroupId> fresh_needed;
  const auto is_due = [&](const LiveQuery& lq) {
    return lq.every != 0 && epoch_ > lq.registered_epoch &&
           (epoch_ - lq.registered_epoch) % lq.every == 0;
  };
  if (config_.share_aggregation && config_.use_cache) {
    for (const auto& [id, lq] : live_) {
      if (lq.path != Path::kStats || !is_due(lq)) continue;
      if (!cache_could_serve(lq)) fresh_needed.push_back(lq.group);
    }
  }

  std::vector<Answer> answers;
  for (const auto& [id, lq] : live_) {  // map order == id order
    if (!is_due(lq)) continue;
    if (lq.path == Path::kCube) {
      answers.push_back(serve_cube(lq));
      continue;
    }
    const bool cacheable =
        lq.path == Path::kStats && config_.share_aggregation &&
        config_.use_cache &&
        std::find(fresh_needed.begin(), fresh_needed.end(), lq.group) ==
            fresh_needed.end();
    if (cacheable) {
      // Every due subscriber of a non-fresh group probed successfully in
      // the planning pass, and nothing moved since — the lookup must hit.
      const auto hit = cache_.lookup(lq.region, lq.q.agg, lq.q.error, epoch_);
      SENSORNET_EXPECTS(hit.has_value());
      answers.push_back(answer_cached(lq, *hit));
    } else {
      answers.push_back(answer_fresh(lq));
    }
  }

  obs::TraceRing& ring = obs::TraceRing::global();
  if (ring.enabled()) {
    ring.complete("epoch", "service", epoch_t0,
                  deployment_.net.now() - epoch_t0, 0, "epoch", epoch_,
                  "answers", answers.size());
  }
  return answers;
}

TelemetrySnapshot QueryService::telemetry_snapshot() const {
  TelemetrySnapshot snap;
  snap.totals = telemetry_;
  snap.cache = cache_.counters();
  snap.plan = scheduler_->stats();
  if (cube_) snap.cube = cube_->stats();
  snap.mark_bits_on_air = mark_bits_on_air_;
  snap.mark_messages = mark_messages_;
  snap.queries = query_costs_;
  snap.groups = group_costs_;
  for (const auto& [id, lq] : live_) {
    if (lq.path == Path::kExecutor || lq.path == Path::kCube) continue;
    ++snap.groups[lq.group].subscribers;
  }
  return snap;
}

}  // namespace sensornet::service
