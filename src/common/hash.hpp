// 64-bit hashing for duplicate-insensitive sketches.
//
// Approximate COUNT_DISTINCT (Section 5) replaces per-node random bits with
// the hash of the item value, so duplicates map to identical sketch updates.
// splitmix64's finalizer is a strong 64->64 mixer; salting supports
// independent repetitions.
#pragma once

#include <cstdint>

namespace sensornet {

/// The splitmix64 output function: a bijective 64->64 bit mixer.
std::uint64_t splitmix64(std::uint64_t x);

/// Advances a splitmix64 stream and returns the next output.
std::uint64_t splitmix64_next(std::uint64_t& state);

/// Hash of `value` under a query-chosen `salt`; distinct salts give
/// (practically) independent hash functions, which REP_COUNTP-style
/// repetitions over hashed items require.
std::uint64_t hash64(std::uint64_t value, std::uint64_t salt);

}  // namespace sensornet
