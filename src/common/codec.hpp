// Self-delimiting integer codes (Elias gamma / delta).
//
// Counts and values travel as Elias-delta codes: encoding x costs
// log2 x + O(log log x) bits, so a COUNT response is O(log N) bits and a
// LogLog register is O(log log N) bits *by construction* — the bit meter in
// the simulator then reproduces the paper's accounting with no fudge factors.
#pragma once

#include <cstdint>

#include "src/common/bitio.hpp"

namespace sensornet {

/// Writes x >= 1 in Elias gamma: unary length prefix + binary body.
/// Cost: 2*floor(log2 x) + 1 bits.
void elias_gamma_encode(BitWriter& w, std::uint64_t x);

/// Reads an Elias gamma code (x >= 1).
std::uint64_t elias_gamma_decode(BitReader& r);

/// Writes x >= 1 in Elias delta: gamma-coded length + binary body.
/// Cost: floor(log2 x) + 2*floor(log2(floor(log2 x)+1)) + 1 bits.
void elias_delta_encode(BitWriter& w, std::uint64_t x);

/// Reads an Elias delta code (x >= 1).
std::uint64_t elias_delta_decode(BitReader& r);

/// Convenience wrappers for non-negative domains (encode x+1 on the wire).
void encode_uint(BitWriter& w, std::uint64_t x);
std::uint64_t decode_uint(BitReader& r);

/// Exact wire cost (in bits) of encode_uint(x) — used by cost models and
/// tests without materializing a buffer.
unsigned encoded_uint_bits(std::uint64_t x);

/// Signed integers via zigzag mapping (0,-1,1,-2,2,... -> 0,1,2,3,4,...)
/// then encode_uint.
void encode_int(BitWriter& w, std::int64_t x);
std::int64_t decode_int(BitReader& r);

}  // namespace sensornet
