#include "src/common/workload.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "src/common/error.hpp"

namespace sensornet {

const char* workload_name(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kUniform: return "uniform";
    case WorkloadKind::kZipf: return "zipf";
    case WorkloadKind::kClusteredField: return "clustered";
    case WorkloadKind::kAllEqual: return "all-equal";
    case WorkloadKind::kTwoPoint: return "two-point";
    case WorkloadKind::kDenseCenter: return "dense-center";
  }
  return "unknown";
}

namespace {

ValueSet uniform(std::size_t n, Value max_value, Xoshiro256& rng) {
  ValueSet xs(n);
  for (auto& x : xs) {
    x = static_cast<Value>(
        rng.next_below(static_cast<std::uint64_t>(max_value) + 1));
  }
  return xs;
}

ValueSet zipf(std::size_t n, Value max_value, Xoshiro256& rng) {
  // Zipf(s=2) via inverse transform: value = floor(1/u - 1), clipped.
  // Heavy head, long tail — the median sits far below the mean. The clip
  // happens in double space so u -> 0 cannot overflow the integer cast.
  ValueSet xs(n);
  const double cap = static_cast<double>(max_value);
  for (auto& x : xs) {
    const double u = std::max(rng.next_double(), 1e-12);
    const double v = std::min(1.0 / u - 1.0, cap);
    x = static_cast<Value>(v);
  }
  return xs;
}

ValueSet clustered(std::size_t n, Value max_value, Xoshiro256& rng) {
  // Three bumps at 20% / 50% / 80% of the range, sigma = 2% of range:
  // a crude temperature field with hot spots.
  const double range = static_cast<double>(max_value);
  const double centers[3] = {0.2 * range, 0.5 * range, 0.8 * range};
  const double sigma = std::max(1.0, 0.02 * range);
  ValueSet xs(n);
  for (auto& x : xs) {
    const double c = centers[rng.next_below(3)];
    // Box-Muller normal sample.
    const double u1 = std::max(rng.next_double(), 1e-12);
    const double u2 = rng.next_double();
    const double z = std::sqrt(-2.0 * std::log(u1)) *
                     std::cos(2.0 * 3.14159265358979323846 * u2);
    const double v = c + sigma * z;
    x = std::clamp<Value>(static_cast<Value>(std::llround(v)), 0, max_value);
  }
  return xs;
}

ValueSet two_point(std::size_t n, Value max_value, Xoshiro256& rng) {
  // Half at ~10%, half at ~90% of the range; with even n the median straddles
  // a huge value gap, the worst case for beta (value-error) guarantees.
  const Value lo = max_value / 10;
  const Value hi = max_value - max_value / 10;
  ValueSet xs(n);
  for (std::size_t i = 0; i < n; ++i) xs[i] = (i % 2 == 0) ? lo : hi;
  std::shuffle(xs.begin(), xs.end(), rng);
  return xs;
}

ValueSet dense_center(std::size_t n, Value max_value, Xoshiro256& rng) {
  // All values within +-n of the range midpoint: many near-ties in rank
  // around the median, the worst case for alpha (rank-error) guarantees.
  const Value mid = max_value / 2;
  const auto spread = static_cast<Value>(n);
  ValueSet xs(n);
  for (auto& x : xs) {
    const Value offset =
        static_cast<Value>(rng.next_below(2 * static_cast<std::uint64_t>(spread) + 1)) -
        spread;
    x = std::clamp<Value>(mid + offset, 0, max_value);
  }
  return xs;
}

}  // namespace

ValueSet generate_workload(WorkloadKind kind, std::size_t n, Value max_value,
                           Xoshiro256& rng) {
  SENSORNET_EXPECTS(n >= 1);
  SENSORNET_EXPECTS(max_value >= 1);
  switch (kind) {
    case WorkloadKind::kUniform: return uniform(n, max_value, rng);
    case WorkloadKind::kZipf: return zipf(n, max_value, rng);
    case WorkloadKind::kClusteredField: return clustered(n, max_value, rng);
    case WorkloadKind::kAllEqual:
      return ValueSet(n, max_value / 3 + 1);
    case WorkloadKind::kTwoPoint: return two_point(n, max_value, rng);
    case WorkloadKind::kDenseCenter: return dense_center(n, max_value, rng);
  }
  throw PreconditionError("unknown workload kind");
}

ValueSet generate_with_distinct(std::size_t n, std::size_t distinct,
                                Value max_value, Xoshiro256& rng) {
  SENSORNET_EXPECTS(distinct >= 1 && distinct <= n);
  SENSORNET_EXPECTS(static_cast<std::uint64_t>(max_value) + 1 >= distinct);
  std::unordered_set<Value> chosen;
  chosen.reserve(distinct);
  while (chosen.size() < distinct) {
    chosen.insert(static_cast<Value>(
        rng.next_below(static_cast<std::uint64_t>(max_value) + 1)));
  }
  ValueSet pool(chosen.begin(), chosen.end());
  ValueSet xs(n);
  for (std::size_t i = 0; i < n; ++i) xs[i] = pool[i % pool.size()];
  std::shuffle(xs.begin(), xs.end(), rng);
  return xs;
}

DisjointnessInstance generate_disjointness(std::size_t per_side,
                                           std::size_t intersect,
                                           Value universe, Xoshiro256& rng) {
  SENSORNET_EXPECTS(per_side >= 1);
  SENSORNET_EXPECTS(intersect <= per_side);
  SENSORNET_EXPECTS(static_cast<std::uint64_t>(universe) + 1 >= 2 * per_side);
  // Draw 2*per_side - intersect distinct values; the first `intersect` are
  // shared, the rest split between the sides.
  const std::size_t need = 2 * per_side - intersect;
  std::unordered_set<Value> chosen;
  chosen.reserve(need);
  while (chosen.size() < need) {
    chosen.insert(static_cast<Value>(
        rng.next_below(static_cast<std::uint64_t>(universe) + 1)));
  }
  ValueSet pool(chosen.begin(), chosen.end());
  std::shuffle(pool.begin(), pool.end(), rng);
  DisjointnessInstance inst;
  inst.disjoint = (intersect == 0);
  inst.side_a.assign(pool.begin(), pool.begin() + static_cast<long>(per_side));
  inst.side_b.assign(pool.begin(), pool.begin() + static_cast<long>(intersect));
  inst.side_b.insert(inst.side_b.end(),
                     pool.begin() + static_cast<long>(per_side),
                     pool.begin() + static_cast<long>(2 * per_side - intersect));
  return inst;
}

}  // namespace sensornet
