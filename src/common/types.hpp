// Fundamental type aliases shared by every subsystem.
//
// The paper models input items as non-negative integers whose magnitude is
// polynomial in N (log X = O(log N)); `Value` is a 64-bit signed integer so
// intermediate arithmetic (doubled-domain binary search, affine rescaling)
// never needs a wider type at API boundaries.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace sensornet {

/// Identifier of a node in the simulated network. Dense, 0-based.
using NodeId = std::uint32_t;

/// A sensor reading / input item. Non-negative by the model's assumption;
/// APIs validate this at entry points.
using Value = std::int64_t;

/// Simulated time, in abstract ticks (one hop traversal == 1 tick).
using SimTime = std::uint64_t;

/// Sentinel for "no node" (e.g. the root's parent in a spanning tree).
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// A multiset of input items held at one node (Section 5 of the paper allows
/// more than one item per node; most experiments use singletons).
using ValueSet = std::vector<Value>;

}  // namespace sensornet
