// Error types. Per the project guidelines, failures to satisfy an API
// contract raise exceptions; Expects/Ensures-style macros centralize the
// precondition checks so call sites stay readable.
#pragma once

#include <stdexcept>
#include <string>

namespace sensornet {

/// Raised when an argument violates a documented precondition.
class PreconditionError : public std::invalid_argument {
 public:
  explicit PreconditionError(const std::string& what)
      : std::invalid_argument(what) {}
};

/// Raised when decoding a wire payload fails (truncated or corrupt).
class WireFormatError : public std::runtime_error {
 public:
  explicit WireFormatError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Raised when a protocol reaches a state its specification forbids
/// (indicates a bug in the engine, not bad user input).
class ProtocolError : public std::logic_error {
 public:
  explicit ProtocolError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail_precondition(const char* expr, const char* file,
                                           int line) {
  throw PreconditionError(std::string("precondition failed: ") + expr + " at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

/// Precondition check that throws PreconditionError (never compiled out:
/// these guard public API boundaries, not hot inner loops).
#define SENSORNET_EXPECTS(expr)                                     \
  do {                                                              \
    if (!(expr))                                                    \
      ::sensornet::detail::fail_precondition(#expr, __FILE__, __LINE__); \
  } while (false)

}  // namespace sensornet
