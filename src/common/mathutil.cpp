#include "src/common/mathutil.hpp"

#include <algorithm>
#include <bit>

#include "src/common/error.hpp"

namespace sensornet {

unsigned floor_log2(std::uint64_t x) {
  SENSORNET_EXPECTS(x >= 1);
  return 63u - static_cast<unsigned>(std::countl_zero(x));
}

unsigned ceil_log2(std::uint64_t x) {
  SENSORNET_EXPECTS(x >= 1);
  const unsigned f = floor_log2(x);
  return (x == (1ULL << f)) ? f : f + 1;
}

std::int64_t pow2_i64(unsigned k) {
  SENSORNET_EXPECTS(k <= 62);
  return static_cast<std::int64_t>(1) << k;
}

std::int64_t affine_rescale(std::int64_t x, std::int64_t lo,
                            std::int64_t span_in, std::int64_t span_out) {
  SENSORNET_EXPECTS(span_in > 0 && span_out >= 0);
  const __int128 num = static_cast<__int128>(x - lo) * span_out;
  // round-half-up in the positive domain
  const __int128 q = (num + span_in / 2) / span_in;
  return 1 + static_cast<std::int64_t>(q);
}

std::int64_t affine_unscale(std::int64_t y, std::int64_t lo,
                            std::int64_t span_in, std::int64_t span_out) {
  SENSORNET_EXPECTS(span_out > 0);
  const __int128 num = static_cast<__int128>(y - 1) * span_in;
  const __int128 q = (num + span_out / 2) / span_out;
  return lo + static_cast<std::int64_t>(q);
}

std::size_t rank_below(std::span<const Value> xs, Value y) {
  std::size_t c = 0;
  for (const Value x : xs) {
    if (x < y) ++c;
  }
  return c;
}

Value reference_order_statistic(ValueSet xs, std::int64_t twice_k) {
  SENSORNET_EXPECTS(!xs.empty());
  SENSORNET_EXPECTS(twice_k >= 1 &&
                    twice_k <= 2 * static_cast<std::int64_t>(xs.size()));
  std::sort(xs.begin(), xs.end());
  // The unique y with l(y) < k and l(y+1) >= k is the element of (1-based)
  // rank ceil(k): every item below it has rank < k, and including it pushes
  // the strict-rank of y+1 to >= k.
  const std::int64_t rank = (twice_k + 1) / 2;  // ceil(twice_k / 2)
  return xs[static_cast<std::size_t>(rank - 1)];
}

Value reference_median(const ValueSet& xs) {
  return reference_order_statistic(xs,
                                   static_cast<std::int64_t>(xs.size()));
}

}  // namespace sensornet
