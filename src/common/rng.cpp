#include "src/common/rng.hpp"

#include <bit>

#include "src/common/error.hpp"
#include "src/common/hash.hpp"

namespace sensornet {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  // splitmix64 expansion, the seeding procedure recommended by the authors.
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = splitmix64_next(sm);
  // All-zero state is invalid; splitmix64 cannot produce four zero outputs
  // from any seed, but keep the guarantee explicit.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Xoshiro256::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) {
  SENSORNET_EXPECTS(bound > 0);
  // Lemire 2019: multiply-shift with rejection in the low word.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::next_double() {
  // 53 high bits -> [0,1) with full double resolution.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Xoshiro256::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

std::uint32_t Xoshiro256::next_geometric_rank() {
  // Count flips until the first head. Each u64 provides 64 fair coins; a
  // zero word (probability 2^-64) just extends the run.
  std::uint32_t rank = 1;
  for (;;) {
    const std::uint64_t w = next_u64();
    if (w != 0) return rank + static_cast<std::uint32_t>(std::countl_zero(w));
    rank += 64;
  }
}

Xoshiro256 node_rng(std::uint64_t master_seed, NodeId node) {
  std::uint64_t s = master_seed;
  const std::uint64_t a = splitmix64_next(s);
  return Xoshiro256(a ^ splitmix64(0x9e3779b97f4a7c15ULL * (node + 1)));
}

}  // namespace sensornet
