// Synthetic sensor-reading workloads.
//
// The paper's bounds are worst-case over inputs; these generators cover the
// regimes that stress them: uniform and Zipf value distributions, clustered
// "temperature field" readings, and adversarial shapes (all-equal, two-point
// mass, values packed densely around the median) that exercise the alpha
// (rank) and beta (value) error parameters of Definition 2.4.
#pragma once

#include <cstdint>

#include "src/common/rng.hpp"
#include "src/common/types.hpp"

namespace sensornet {

/// Identifies a workload family; benches sweep over these.
enum class WorkloadKind {
  kUniform,        // iid uniform on [0, max_value]
  kZipf,           // Zipf-ranked values, heavy head
  kClusteredField, // mixture of Gaussian bumps (a "temperature field")
  kAllEqual,       // every item identical (M == m degenerate case)
  kTwoPoint,       // half mass at low value, half at high value
  kDenseCenter,    // values packed within +-N around the median
};

const char* workload_name(WorkloadKind kind);

/// Generates `n` non-negative readings bounded by `max_value`.
ValueSet generate_workload(WorkloadKind kind, std::size_t n, Value max_value,
                           Xoshiro256& rng);

/// Generates a multiset with exactly `distinct` distinct values among `n`
/// items (duplicates spread round-robin) — the COUNT_DISTINCT driver.
ValueSet generate_with_distinct(std::size_t n, std::size_t distinct,
                                Value max_value, Xoshiro256& rng);

/// Generates the two halves of a Set-Disjointness instance (Theorem 5.1):
/// each side holds `per_side` distinct values from a universe of
/// `universe` values; `intersect` of them are shared between the sides.
struct DisjointnessInstance {
  ValueSet side_a;
  ValueSet side_b;
  bool disjoint;  // ground truth: side_a and side_b share no value
};
DisjointnessInstance generate_disjointness(std::size_t per_side,
                                           std::size_t intersect,
                                           Value universe, Xoshiro256& rng);

}  // namespace sensornet
