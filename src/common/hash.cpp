#include "src/common/hash.hpp"

namespace sensornet {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t splitmix64_next(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t x = state;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash64(std::uint64_t value, std::uint64_t salt) {
  // Two dependent mixing rounds keyed by the salt; passes basic avalanche
  // checks (see tests/common/hash_test.cpp).
  return splitmix64(splitmix64(value ^ (salt * 0xda942042e4dd58b5ULL)) + salt);
}

}  // namespace sensornet
