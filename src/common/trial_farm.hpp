// Deterministic work-stealing scheduler for experiment trial matrices.
//
// Every bench walks a topology × loss × trial matrix; the farm runs those
// cells on a fixed pool of workers without changing a single emitted number.
// The contract that makes this safe is seed discipline, not locking: each
// cell derives ALL of its randomness from trial_seed(master_seed, cell) — a
// splitmix64-separated stream per cell — so the numbers a cell produces are
// a pure function of (master_seed, cell_index), independent of which worker
// ran it, in what order, or how many threads exist. Results land in a
// pre-sized vector indexed by cell, so collection order is stable too:
// `--threads 8` and `--threads 1` emit byte-identical reports.
//
// Scheduling is classic work stealing: cells are dealt to per-worker deques
// in contiguous blocks (owners walk their block front-to-back, preserving
// locality), and a worker whose deque runs dry steals from the BACK of a
// victim's deque — the end the owner is farthest from. Stealing granularity
// is one cell; trials are coarse (milliseconds to seconds), so a mutex per
// deque costs nothing measurable and keeps the scheduler ThreadSanitizer-
// clean by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <vector>

namespace sensornet {

/// RNG seed for matrix cell `cell` under `master_seed`. Cells get
/// splitmix64-separated streams: adjacent cells are uncorrelated, and the
/// mapping never depends on thread count or execution order.
std::uint64_t trial_seed(std::uint64_t master_seed, std::uint64_t cell);

/// Resolves a requested worker count: 0 means hardware concurrency (at
/// least 1). Values above the cell count are clamped by the farm itself.
unsigned resolve_thread_count(unsigned requested);

/// Telemetry from the most recent for_each() run. The same numbers are
/// published cumulatively through the obs metrics registry (counters
/// `farm.runs` / `farm.cells` / `farm.steals` / `farm.blocks_dealt`, gauge
/// `farm.workers_last`), so benches and services that never see the farm
/// object still get its scheduling story in their telemetry snapshots.
struct FarmStats {
  unsigned threads = 0;      // workers actually spawned (1 = inline, no pool)
  std::uint64_t cells = 0;   // cells executed
  std::uint64_t steals = 0;  // cells a worker took from another's deque
  std::uint64_t blocks_dealt = 0;  // contiguous blocks dealt (== workers)
};

class TrialFarm {
 public:
  /// `threads` == 0 picks hardware concurrency; 1 runs every cell inline on
  /// the calling thread in ascending cell order (today's serial behavior).
  explicit TrialFarm(unsigned threads = 0);

  unsigned threads() const { return threads_; }

  /// Runs body(cell) once for every cell in [0, cells). Cells must not
  /// touch shared mutable state; all randomness must come from
  /// trial_seed(master, cell). Throws the first cell exception (after all
  /// workers have drained) when one escapes.
  void for_each(std::size_t cells, const std::function<void(std::size_t)>& body);

  /// for_each with ordered collection: out[cell] = fn(cell). Each slot is
  /// written by exactly one worker; the join provides the happens-before
  /// edge, so no per-slot synchronization is needed. (vector<bool>'s packed
  /// proxy would break that independence — rejected at compile time.)
  template <class R, class Fn>
  std::vector<R> map(std::size_t cells, Fn&& fn) {
    static_assert(!std::is_same_v<R, bool>,
                  "vector<bool> slots alias bits across cells; use char");
    std::vector<R> out(cells);
    for_each(cells, [&](std::size_t cell) { out[cell] = fn(cell); });
    return out;
  }

  const FarmStats& last_stats() const { return last_stats_; }

 private:
  unsigned threads_;
  FarmStats last_stats_;
};

}  // namespace sensornet
