// Deterministic pseudo-randomness.
//
// Every node owns an independent Xoshiro256** stream derived from a master
// seed and the node id, so whole-network runs are reproducible from a single
// seed and protocols can draw "an infinite tape of random bits" (the paper's
// RAM-machine assumption) without coordination.
#pragma once

#include <cstdint>

#include "src/common/types.hpp"

namespace sensornet {

/// xoshiro256** 1.0 by Blackman & Vigna: fast, high-quality, 2^256-1 period.
class Xoshiro256 {
 public:
  /// Seeds the four 64-bit lanes by iterating splitmix64 over `seed`.
  explicit Xoshiro256(std::uint64_t seed = 0xdeadbeefcafef00dULL);

  /// Next 64 uniform random bits.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). `bound` must be positive.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli(p) trial.
  bool next_bool(double p);

  /// Samples a Geometric(1/2) random variable: the number of fair-coin
  /// flips up to and including the first head; support {1, 2, 3, ...}.
  /// This is the primitive behind approximate counting (Fact 2.2): the max
  /// of N such samples concentrates around log2 N.
  std::uint32_t next_geometric_rank();

  /// std::uniform_random_bit_generator interface, so the engine composes
  /// with <random> distributions when convenient.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

 private:
  std::uint64_t s_[4];
};

/// Derives the per-node stream for `node` under a given master seed. Streams
/// are splitmix64-separated so adjacent node ids are not correlated.
Xoshiro256 node_rng(std::uint64_t master_seed, NodeId node);

}  // namespace sensornet
