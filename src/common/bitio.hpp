// Bit-granular serialization.
//
// The paper's complexity measure is *bits*, so payloads are built with a
// bit-level writer/reader rather than byte-aligned structs: a 3-bit field
// costs exactly 3 bits of communication.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sensornet {

/// Append-only bit buffer. Bits are packed MSB-first within each byte so the
/// wire image is independent of host endianness.
class BitWriter {
 public:
  /// Appends the `n` low-order bits of `value`, most significant first.
  /// n must be in [0, 64].
  void write_bits(std::uint64_t value, unsigned n);

  /// Appends a single bit.
  void write_bit(bool bit);

  /// Number of bits written so far.
  std::size_t bit_count() const { return bit_count_; }

  /// The packed buffer; the final byte is zero-padded.
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

  /// Moves the buffer out, leaving the writer empty.
  std::vector<std::uint8_t> take_bytes();

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t bit_count_ = 0;
};

/// Sequential reader over a buffer produced by BitWriter. Reading past
/// `bit_count` throws WireFormatError — truncated payloads never yield
/// garbage silently.
class BitReader {
 public:
  BitReader(const std::uint8_t* data, std::size_t bit_count);
  explicit BitReader(const std::vector<std::uint8_t>& bytes);

  /// Reads `n` bits (n <= 64), returning them in the low-order positions.
  std::uint64_t read_bits(unsigned n);

  /// Reads a single bit.
  bool read_bit();

  /// Bits remaining.
  std::size_t remaining() const { return bit_count_ - pos_; }

  /// Total bits in the underlying buffer.
  std::size_t bit_count() const { return bit_count_; }

 private:
  const std::uint8_t* data_;
  std::size_t bit_count_;
  std::size_t pos_ = 0;
};

}  // namespace sensornet
