// Bit-granular serialization.
//
// The paper's complexity measure is *bits*, so payloads are built with a
// bit-level writer/reader rather than byte-aligned structs: a 3-bit field
// costs exactly 3 bits of communication.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace sensornet {

/// Append-only bit buffer. Bits are packed MSB-first within each byte so the
/// wire image is independent of host endianness.
///
/// Buffers of at most kInlineCapacity bytes live inside the writer itself —
/// building a typical protocol message (a few dozen bits) never touches the
/// allocator. Longer images spill to a heap vector transparently.
class BitWriter {
 public:
  /// Byte images at or below this size are built allocation-free.
  static constexpr std::size_t kInlineCapacity = 16;

  /// Appends the `n` low-order bits of `value`, most significant first.
  /// n must be in [0, 64].
  void write_bits(std::uint64_t value, unsigned n);

  /// Appends a single bit.
  void write_bit(bool bit);

  /// Appends exactly 64 bits, most significant first — equivalent to
  /// `write_bits(value, 64)` but with a byte-granularity fast path when the
  /// cursor is byte-aligned. Bulk encoders (packed sketch registers) emit
  /// whole words through this.
  void write_word(std::uint64_t value);

  /// Ensures capacity for `bits` more bits beyond what is already written,
  /// so a message-building loop with a known wire size never reallocates
  /// mid-encode.
  void reserve(std::size_t bits);

  /// Number of bits written so far.
  std::size_t bit_count() const { return bit_count_; }

  /// The packed buffer; the final byte is zero-padded. The view is
  /// invalidated by further writes.
  std::span<const std::uint8_t> bytes() const { return {data(), byte_count_}; }

  /// Copies (inline) or moves (spilled) the buffer out as a byte vector,
  /// leaving the writer empty.
  std::vector<std::uint8_t> take_bytes();

 private:
  const std::uint8_t* data() const {
    return spilled_ ? heap_.data() : inline_.data();
  }
  void push_byte();
  std::uint8_t* grow_bytes(std::size_t n);

  std::array<std::uint8_t, kInlineCapacity> inline_{};
  std::vector<std::uint8_t> heap_;
  bool spilled_ = false;
  std::size_t byte_count_ = 0;
  std::size_t bit_count_ = 0;
};

/// Sequential reader over a buffer produced by BitWriter. Reading past
/// `bit_count` throws WireFormatError — truncated payloads never yield
/// garbage silently.
class BitReader {
 public:
  BitReader(const std::uint8_t* data, std::size_t bit_count);
  explicit BitReader(const std::vector<std::uint8_t>& bytes);

  /// Reads `n` bits (n <= 64), returning them in the low-order positions.
  std::uint64_t read_bits(unsigned n);

  /// Reads a single bit.
  bool read_bit();

  /// Reads exactly 64 bits — equivalent to `read_bits(64)` but with a
  /// byte-granularity fast path when the cursor is byte-aligned.
  std::uint64_t read_word();

  /// Bits remaining.
  std::size_t remaining() const { return bit_count_ - pos_; }

  /// Total bits in the underlying buffer.
  std::size_t bit_count() const { return bit_count_; }

 private:
  const std::uint8_t* data_;
  std::size_t bit_count_;
  std::size_t pos_ = 0;
};

}  // namespace sensornet
