#include "src/common/codec.hpp"

#include <bit>

#include "src/common/error.hpp"

namespace sensornet {

namespace {
/// floor(log2 x) for x >= 1.
inline unsigned floor_log2_u64(std::uint64_t x) {
  return 63u - static_cast<unsigned>(std::countl_zero(x));
}
}  // namespace

void elias_gamma_encode(BitWriter& w, std::uint64_t x) {
  SENSORNET_EXPECTS(x >= 1);
  const unsigned n = floor_log2_u64(x);
  w.write_bits(0, n);          // n zeros announce the body length
  w.write_bits(x, n + 1);      // body starts with its leading 1 bit
}

std::uint64_t elias_gamma_decode(BitReader& r) {
  unsigned n = 0;
  while (!r.read_bit()) {
    if (++n > 63) throw WireFormatError("gamma code: length prefix too long");
  }
  std::uint64_t x = 1;
  if (n > 0) x = (x << n) | r.read_bits(n);
  return x;
}

void elias_delta_encode(BitWriter& w, std::uint64_t x) {
  SENSORNET_EXPECTS(x >= 1);
  const unsigned n = floor_log2_u64(x);
  elias_gamma_encode(w, n + 1);
  if (n > 0) w.write_bits(x, n);  // body without its implicit leading 1
}

std::uint64_t elias_delta_decode(BitReader& r) {
  const std::uint64_t len = elias_gamma_decode(r);
  if (len > 64) throw WireFormatError("delta code: body length too long");
  const auto n = static_cast<unsigned>(len - 1);
  std::uint64_t x = 1;
  if (n > 0) x = (x << n) | r.read_bits(n);
  return x;
}

void encode_uint(BitWriter& w, std::uint64_t x) {
  SENSORNET_EXPECTS(x < ~0ULL);
  elias_delta_encode(w, x + 1);
}

std::uint64_t decode_uint(BitReader& r) { return elias_delta_decode(r) - 1; }

void encode_int(BitWriter& w, std::int64_t x) {
  const std::uint64_t zz =
      (static_cast<std::uint64_t>(x) << 1) ^
      static_cast<std::uint64_t>(x >> 63);
  encode_uint(w, zz);
}

std::int64_t decode_int(BitReader& r) {
  const std::uint64_t zz = decode_uint(r);
  return static_cast<std::int64_t>((zz >> 1) ^ (~(zz & 1) + 1));
}

unsigned encoded_uint_bits(std::uint64_t x) {
  const std::uint64_t v = x + 1;
  const unsigned n = floor_log2_u64(v);
  const unsigned gamma_of_len = 2 * floor_log2_u64(n + 1) + 1;
  return gamma_of_len + n;
}

}  // namespace sensornet
