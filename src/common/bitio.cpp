#include "src/common/bitio.hpp"

#include "src/common/error.hpp"

namespace sensornet {

void BitWriter::push_byte() {
  if (!spilled_) {
    if (byte_count_ < kInlineCapacity) {
      inline_[byte_count_++] = 0;
      return;
    }
    // Spill: move the inline image to the heap and keep growing there.
    heap_.assign(inline_.begin(), inline_.end());
    spilled_ = true;
  }
  heap_.push_back(0);
  ++byte_count_;
}

std::uint8_t* BitWriter::grow_bytes(std::size_t n) {
  if (!spilled_ && byte_count_ + n > kInlineCapacity) {
    heap_.assign(inline_.begin(), inline_.begin() + byte_count_);
    spilled_ = true;
  }
  if (spilled_) {
    heap_.resize(byte_count_ + n, 0);
  }
  // Inline bytes beyond byte_count_ are already zero (class invariant).
  byte_count_ += n;
  return (spilled_ ? heap_.data() : inline_.data()) + (byte_count_ - n);
}

void BitWriter::write_word(std::uint64_t value) {
  if (bit_count_ % 8 != 0) {
    write_bits(value, 64);
    return;
  }
  std::uint8_t* out = grow_bytes(8);
  for (unsigned i = 0; i < 8; ++i) {
    out[i] = static_cast<std::uint8_t>(value >> (56 - 8 * i));
  }
  bit_count_ += 64;
}

void BitWriter::write_bits(std::uint64_t value, unsigned n) {
  SENSORNET_EXPECTS(n <= 64);
  // Emit MSB-first, a byte-sized chunk at a time.
  while (n > 0) {
    const unsigned used = static_cast<unsigned>(bit_count_ % 8);
    if (used == 0) push_byte();
    std::uint8_t* back =
        (spilled_ ? heap_.data() : inline_.data()) + (byte_count_ - 1);
    const unsigned free_bits = 8 - used;
    const unsigned take = free_bits < n ? free_bits : n;
    const std::uint64_t chunk =
        (n == 64 && take == 0)
            ? 0
            : (value >> (n - take)) & ((1ULL << take) - 1);
    *back |= static_cast<std::uint8_t>(chunk << (free_bits - take));
    bit_count_ += take;
    n -= take;
  }
}

void BitWriter::write_bit(bool bit) {
  const std::size_t byte_index = bit_count_ / 8;
  const unsigned bit_index = 7 - static_cast<unsigned>(bit_count_ % 8);
  if (byte_index == byte_count_) push_byte();
  std::uint8_t* buf = spilled_ ? heap_.data() : inline_.data();
  if (bit) buf[byte_index] |= static_cast<std::uint8_t>(1u << bit_index);
  ++bit_count_;
}

void BitWriter::reserve(std::size_t bits) {
  const std::size_t total_bytes = (bit_count_ + bits + 7) / 8;
  if (total_bytes > kInlineCapacity) heap_.reserve(total_bytes);
}

std::vector<std::uint8_t> BitWriter::take_bytes() {
  std::vector<std::uint8_t> out;
  if (spilled_) {
    out = std::move(heap_);
  } else {
    out.assign(inline_.begin(), inline_.begin() + byte_count_);
  }
  heap_.clear();
  spilled_ = false;
  byte_count_ = 0;
  bit_count_ = 0;
  inline_.fill(0);
  return out;
}

BitReader::BitReader(const std::uint8_t* data, std::size_t bit_count)
    : data_(data), bit_count_(bit_count) {}

BitReader::BitReader(const std::vector<std::uint8_t>& bytes)
    : data_(bytes.data()), bit_count_(bytes.size() * 8) {}

std::uint64_t BitReader::read_bits(unsigned n) {
  SENSORNET_EXPECTS(n <= 64);
  if (pos_ + n > bit_count_) {
    throw WireFormatError("BitReader: read past end of payload");
  }
  std::uint64_t out = 0;
  unsigned remaining = n;
  while (remaining > 0) {
    const unsigned used = static_cast<unsigned>(pos_ % 8);
    const unsigned avail = 8 - used;
    const unsigned take = avail < remaining ? avail : remaining;
    const std::uint8_t byte = data_[pos_ / 8];
    const std::uint8_t chunk = static_cast<std::uint8_t>(
        (byte >> (avail - take)) & ((1u << take) - 1));
    out = (out << take) | chunk;
    pos_ += take;
    remaining -= take;
  }
  return out;
}

std::uint64_t BitReader::read_word() {
  if (pos_ % 8 != 0) return read_bits(64);
  if (pos_ + 64 > bit_count_) {
    throw WireFormatError("BitReader: read past end of payload");
  }
  const std::uint8_t* in = data_ + pos_ / 8;
  std::uint64_t out = 0;
  for (unsigned i = 0; i < 8; ++i) {
    out = (out << 8) | in[i];
  }
  pos_ += 64;
  return out;
}

bool BitReader::read_bit() {
  if (pos_ >= bit_count_) {
    throw WireFormatError("BitReader: read past end of payload");
  }
  const std::size_t byte_index = pos_ / 8;
  const unsigned bit_index = 7 - static_cast<unsigned>(pos_ % 8);
  ++pos_;
  return (data_[byte_index] >> bit_index) & 1u;
}

}  // namespace sensornet
