#include "src/common/bitio.hpp"

#include "src/common/error.hpp"

namespace sensornet {

void BitWriter::write_bits(std::uint64_t value, unsigned n) {
  SENSORNET_EXPECTS(n <= 64);
  // Emit MSB-first, a byte-sized chunk at a time.
  while (n > 0) {
    const unsigned used = static_cast<unsigned>(bit_count_ % 8);
    if (used == 0) bytes_.push_back(0);
    const unsigned free_bits = 8 - used;
    const unsigned take = free_bits < n ? free_bits : n;
    const std::uint64_t chunk =
        (n == 64 && take == 0)
            ? 0
            : (value >> (n - take)) & ((1ULL << take) - 1);
    bytes_.back() |= static_cast<std::uint8_t>(chunk << (free_bits - take));
    bit_count_ += take;
    n -= take;
  }
}

void BitWriter::write_bit(bool bit) {
  const std::size_t byte_index = bit_count_ / 8;
  const unsigned bit_index = 7 - static_cast<unsigned>(bit_count_ % 8);
  if (byte_index == bytes_.size()) bytes_.push_back(0);
  if (bit) bytes_[byte_index] |= static_cast<std::uint8_t>(1u << bit_index);
  ++bit_count_;
}

std::vector<std::uint8_t> BitWriter::take_bytes() {
  bit_count_ = 0;
  return std::move(bytes_);
}

BitReader::BitReader(const std::uint8_t* data, std::size_t bit_count)
    : data_(data), bit_count_(bit_count) {}

BitReader::BitReader(const std::vector<std::uint8_t>& bytes)
    : data_(bytes.data()), bit_count_(bytes.size() * 8) {}

std::uint64_t BitReader::read_bits(unsigned n) {
  SENSORNET_EXPECTS(n <= 64);
  if (pos_ + n > bit_count_) {
    throw WireFormatError("BitReader: read past end of payload");
  }
  std::uint64_t out = 0;
  unsigned remaining = n;
  while (remaining > 0) {
    const unsigned used = static_cast<unsigned>(pos_ % 8);
    const unsigned avail = 8 - used;
    const unsigned take = avail < remaining ? avail : remaining;
    const std::uint8_t byte = data_[pos_ / 8];
    const std::uint8_t chunk = static_cast<std::uint8_t>(
        (byte >> (avail - take)) & ((1u << take) - 1));
    out = (out << take) | chunk;
    pos_ += take;
    remaining -= take;
  }
  return out;
}

bool BitReader::read_bit() {
  if (pos_ >= bit_count_) {
    throw WireFormatError("BitReader: read past end of payload");
  }
  const std::size_t byte_index = pos_ / 8;
  const unsigned bit_index = 7 - static_cast<unsigned>(pos_ % 8);
  ++pos_;
  return (data_[byte_index] >> bit_index) & 1u;
}

}  // namespace sensornet
