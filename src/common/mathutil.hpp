// Small exact-integer helpers used throughout the algorithms.
#pragma once

#include <cstdint>
#include <span>

#include "src/common/types.hpp"

namespace sensornet {

/// floor(log2 x) for x >= 1.
unsigned floor_log2(std::uint64_t x);

/// ceil(log2 x) for x >= 1 (ceil_log2(1) == 0).
unsigned ceil_log2(std::uint64_t x);

/// 2^k as int64 (k <= 62).
std::int64_t pow2_i64(unsigned k);

/// Rounded affine rescale: 1 + (x - lo) * (span_out) / (span_in), computed in
/// 128-bit intermediate so the Fig. 4 zoom step never overflows. Performs
/// round-half-up division.
std::int64_t affine_rescale(std::int64_t x, std::int64_t lo,
                            std::int64_t span_in, std::int64_t span_out);

/// The inverse map of affine_rescale (also rounded): lo + (y - 1) * span_in /
/// span_out.
std::int64_t affine_unscale(std::int64_t y, std::int64_t lo,
                            std::int64_t span_in, std::int64_t span_out);

/// Number of items in `xs` strictly smaller than `y` — the paper's
/// rank function l_X(y) (Notation 2.2), used as ground truth in tests.
/// Takes a span so both ValueSets and the simulator's slab views qualify.
std::size_t rank_below(std::span<const Value> xs, Value y);

/// Reference k-order statistic per Definition 2.3, computed by sorting:
/// the y with l(y) < k and l(y+1) >= k, where k may be half-integral and is
/// passed as 2k to stay exact. Requires 1 <= k <= N (i.e. 2 <= twice_k <= 2N).
Value reference_order_statistic(ValueSet xs, std::int64_t twice_k);

/// Reference median: OS(X, N/2) per Definition 2.3.
Value reference_median(const ValueSet& xs);

}  // namespace sensornet
