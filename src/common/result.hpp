// Expected-style fallible returns.
//
// Constructors that can fail on bad geometry (sketch precisions, register
// widths) return Result<T> instead of throwing, so callers can branch on
// configuration errors without exception plumbing; value() bridges back to
// the repo's exception convention at call sites that treat failure as a bug.
#pragma once

#include <optional>
#include <string>
#include <utility>

#include "src/common/error.hpp"

namespace sensornet {

/// Holds either a T or an error message. Move-only payloads are supported
/// (the Result is as movable as its T).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit success wrapper, so `return value;` works.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  static Result failure(std::string message) {
    return Result(FailureTag{}, std::move(message));
  }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  /// Error message; empty on success.
  const std::string& error() const { return error_; }

  /// Access the payload; throws PreconditionError when called on a failure
  /// (treating an unchecked failure as a contract violation).
  T& value() & {
    ensure();
    return *value_;
  }
  const T& value() const& {
    ensure();
    return *value_;
  }
  T&& value() && {
    ensure();
    return std::move(*value_);
  }

 private:
  struct FailureTag {};
  Result(FailureTag, std::string message) : error_(std::move(message)) {}

  void ensure() const {
    if (!value_.has_value()) {
      throw PreconditionError("Result::value() on failure: " + error_);
    }
  }

  std::optional<T> value_;
  std::string error_;
};

/// Result<void>: success/failure with no payload.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;

  static Result failure(std::string message) {
    Result r;
    r.ok_ = false;
    r.error_ = std::move(message);
    return r;
  }

  bool ok() const { return ok_; }
  explicit operator bool() const { return ok_; }
  const std::string& error() const { return error_; }

  /// Throws PreconditionError when the result is a failure.
  void value() const {
    if (!ok_) throw PreconditionError("Result::value() on failure: " + error_);
  }

 private:
  bool ok_ = true;
  std::string error_;
};

}  // namespace sensornet
