#include "src/common/trial_farm.hpp"

#include <atomic>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "src/common/error.hpp"
#include "src/common/hash.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

namespace sensornet {

namespace {

/// Cumulative farm telemetry, published after every for_each run (cold
/// path: one registration lookup + a handful of adds per matrix).
void publish_farm_stats(const FarmStats& stats) {
  obs::Registry& reg = obs::Registry::global();
  reg.add(reg.counter("farm.runs"), 1);
  reg.add(reg.counter("farm.cells"), stats.cells);
  reg.add(reg.counter("farm.steals"), stats.steals);
  reg.add(reg.counter("farm.blocks_dealt"), stats.blocks_dealt);
  reg.gauge_set(reg.gauge("farm.workers_last"), stats.threads);
}

}  // namespace

std::uint64_t trial_seed(std::uint64_t master_seed, std::uint64_t cell) {
  // Two dependent splitmix64 finalizations: the first decorrelates master
  // seeds that differ in few bits, the second separates adjacent cells.
  return splitmix64(splitmix64(master_seed) ^
                    (0x9e3779b97f4a7c15ULL * (cell + 1)));
}

unsigned resolve_thread_count(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

TrialFarm::TrialFarm(unsigned threads)
    : threads_(resolve_thread_count(threads)) {}

namespace {

/// One worker's share of the matrix. A plain deque under a private mutex:
/// the owner pops from the front, thieves take from the back.
struct WorkDeque {
  std::mutex mu;
  std::deque<std::size_t> cells;

  bool pop_front(std::size_t& cell) {
    std::lock_guard<std::mutex> lock(mu);
    if (cells.empty()) return false;
    cell = cells.front();
    cells.pop_front();
    return true;
  }

  bool steal_back(std::size_t& cell) {
    std::lock_guard<std::mutex> lock(mu);
    if (cells.empty()) return false;
    cell = cells.back();
    cells.pop_back();
    return true;
  }
};

}  // namespace

void TrialFarm::for_each(std::size_t cells,
                         const std::function<void(std::size_t)>& body) {
  last_stats_ = FarmStats{};
  last_stats_.cells = cells;
  if (cells == 0) {
    last_stats_.threads = 1;
    return;
  }

  // Never spawn more workers than cells; a one-worker pool degenerates to
  // the inline path so `--threads 1` is literally today's serial loop.
  const unsigned workers = static_cast<unsigned>(
      std::min<std::size_t>(threads_, cells));
  last_stats_.threads = workers;
  if (workers == 1) {
    last_stats_.blocks_dealt = 1;
    for (std::size_t cell = 0; cell < cells; ++cell) body(cell);
    publish_farm_stats(last_stats_);
    return;
  }
  last_stats_.blocks_dealt = workers;

  // Deal contiguous blocks: worker w owns [w*cells/workers, (w+1)*cells/..).
  // Owners drain front-to-back, so cache-adjacent cells stay adjacent; the
  // tail of each block is what thieves nibble.
  std::vector<WorkDeque> deques(workers);
  for (unsigned w = 0; w < workers; ++w) {
    const std::size_t lo = cells * w / workers;
    const std::size_t hi = cells * (w + 1) / workers;
    for (std::size_t cell = lo; cell < hi; ++cell) {
      deques[w].cells.push_back(cell);
    }
  }

  std::atomic<std::uint64_t> steals{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  const auto worker_loop = [&](unsigned self) {
    obs::TraceRing& ring = obs::TraceRing::global();
    std::size_t cell = 0;
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      bool got = deques[self].pop_front(cell);
      bool stolen = false;
      if (!got) {
        // Round-robin victim scan starting after self; one full silent lap
        // means every deque is empty and the matrix is drained.
        for (unsigned hop = 1; hop < workers && !got; ++hop) {
          got = deques[(self + hop) % workers].steal_back(cell);
        }
        if (!got) return;
        stolen = true;
        steals.fetch_add(1, std::memory_order_relaxed);
      }
      if (ring.enabled() && stolen) {
        ring.instant("farm.steal", "farm", obs::wall_ts_us(), self + 1,
                     "cell", cell);
      }
      try {
        if (ring.enabled()) {
          const std::uint64_t t0 = obs::wall_ts_us();
          body(cell);
          ring.complete("farm.cell", "farm", t0, obs::wall_ts_us() - t0,
                        self + 1, "cell", cell);
        } else {
          body(cell);
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker_loop, w);
  for (auto& t : pool) t.join();

  last_stats_.steals = steals.load(std::memory_order_relaxed);
  publish_farm_stats(last_stats_);
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace sensornet
