#include "src/net/topology.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/error.hpp"

namespace sensornet::net {

Graph make_line(std::size_t n) {
  SENSORNET_EXPECTS(n >= 1);
  Graph g(n);
  for (NodeId i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g.compact();
}

Graph make_ring(std::size_t n) {
  SENSORNET_EXPECTS(n >= 3);
  Graph g(n);
  for (NodeId i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  g.add_edge(static_cast<NodeId>(n - 1), 0);
  return g.compact();
}

Graph make_grid(std::size_t rows, std::size_t cols) {
  SENSORNET_EXPECTS(rows >= 1 && cols >= 1);
  Graph g(rows * cols);
  const auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return g.compact();
}

Graph make_complete(std::size_t n) {
  SENSORNET_EXPECTS(n >= 1);
  Graph g(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) g.add_edge(i, j);
  }
  return g.compact();
}

Graph make_balanced_tree(std::size_t n, unsigned arity) {
  SENSORNET_EXPECTS(n >= 1 && arity >= 1);
  Graph g(n);
  for (NodeId child = 1; child < n; ++child) {
    const NodeId parent = (child - 1) / arity;
    g.add_edge(parent, child);
  }
  return g.compact();
}

namespace {

/// Spatial hash over the unit square with cells of side >= radius, so every
/// pair within `radius` lives in the same or an adjacent cell. Million-node
/// geometric deployments need this: the all-pairs scan is O(n^2) (10^12
/// probes at 2^20 nodes), the bucket walk is O(n * expected cell load).
class BucketGrid {
 public:
  BucketGrid(const std::vector<double>& x, const std::vector<double>& y,
             double radius)
      : x_(x), y_(y) {
    const std::size_t n = x.size();
    // Cell side = radius, but never more than ~n cells total: a sub-
    // threshold radius must not allocate a quadratic grid just to hold a
    // handful of nodes per row.
    const auto sqrt_n = static_cast<std::size_t>(
        std::sqrt(static_cast<double>(std::max<std::size_t>(n, 1))));
    dims_ = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::floor(1.0 / radius)));
    dims_ = std::min(dims_, std::max<std::size_t>(1, sqrt_n));
    cells_.resize(dims_ * dims_);
    for (NodeId i = 0; i < n; ++i) {
      cells_[cell_of(i)].push_back(i);  // ids ascend within each cell
    }
  }

  std::size_t dims() const { return dims_; }

  std::size_t axis_cell(double v) const {
    auto c = static_cast<std::size_t>(v * static_cast<double>(dims_));
    return std::min(c, dims_ - 1);
  }

  std::size_t cell_of(NodeId i) const {
    return axis_cell(y_[i]) * dims_ + axis_cell(x_[i]);
  }

  /// Nodes in the cell at (cx, cy); empty span when out of range.
  const std::vector<NodeId>& cell(std::size_t cx, std::size_t cy) const {
    return cells_[cy * dims_ + cx];
  }

 private:
  const std::vector<double>& x_;
  const std::vector<double>& y_;
  std::size_t dims_ = 1;
  std::vector<std::vector<NodeId>> cells_;
};

/// Union-find with path halving; components are tracked during edge
/// insertion so repair never has to re-scan the graph.
struct UnionFind {
  std::vector<NodeId> parent;

  explicit UnionFind(std::size_t n) : parent(n) {
    for (NodeId i = 0; i < n; ++i) parent[i] = i;
  }
  NodeId find(NodeId u) {
    while (parent[u] != u) {
      parent[u] = parent[parent[u]];
      u = parent[u];
    }
    return u;
  }
  void unite(NodeId a, NodeId b) { parent[find(a)] = find(b); }
};

}  // namespace

GeometricLayout make_random_geometric(std::size_t n, double radius,
                                      Xoshiro256& rng) {
  SENSORNET_EXPECTS(n >= 1);
  SENSORNET_EXPECTS(radius > 0.0);
  GeometricLayout layout{Graph(n), std::vector<double>(n),
                         std::vector<double>(n)};
  for (std::size_t i = 0; i < n; ++i) {
    layout.x[i] = rng.next_double();
    layout.y[i] = rng.next_double();
  }
  const double r2 = radius * radius;
  const auto dist2 = [&](NodeId a, NodeId b) {
    const double dx = layout.x[a] - layout.x[b];
    const double dy = layout.y[a] - layout.y[b];
    return dx * dx + dy * dy;
  };

  const BucketGrid grid(layout.x, layout.y, radius);
  UnionFind uf(n);

  // Edge enumeration: each node scans its 3x3 cell neighborhood for HIGHER
  // ids in range, sorts them, and inserts ascending — byte-identical edge
  // order to the classic lexicographic (i, j) double loop, at O(n * load)
  // instead of O(n^2).
  std::vector<NodeId> candidates;
  for (NodeId i = 0; i < n; ++i) {
    candidates.clear();
    const std::size_t cx = grid.axis_cell(layout.x[i]);
    const std::size_t cy = grid.axis_cell(layout.y[i]);
    const std::size_t x_lo = cx == 0 ? 0 : cx - 1;
    const std::size_t x_hi = std::min(cx + 1, grid.dims() - 1);
    const std::size_t y_lo = cy == 0 ? 0 : cy - 1;
    const std::size_t y_hi = std::min(cy + 1, grid.dims() - 1);
    for (std::size_t gy = y_lo; gy <= y_hi; ++gy) {
      for (std::size_t gx = x_lo; gx <= x_hi; ++gx) {
        for (const NodeId j : grid.cell(gx, gy)) {
          if (j > i && dist2(i, j) <= r2) candidates.push_back(j);
        }
      }
    }
    std::sort(candidates.begin(), candidates.end());
    for (const NodeId j : candidates) {
      layout.graph.add_edge(i, j);
      uf.unite(i, j);
    }
  }

  // Connectivity repair: bridge the geometrically closest inter-component
  // pair until one component remains — a stand-in for a deployer adding
  // relay motes. The closest pair is found by expanding-ring searches from
  // every node of the smallest component (smallest first keeps the total
  // repair cost near-linear even when the radius strands many singletons);
  // ties break lexicographically on (a, b), so repair is deterministic.
  for (;;) {
    std::vector<std::uint32_t> comp_size(n, 0);
    for (NodeId i = 0; i < n; ++i) ++comp_size[uf.find(i)];
    NodeId small_root = kNoNode;
    std::size_t components = 0;
    for (NodeId r = 0; r < n; ++r) {
      if (comp_size[r] == 0) continue;
      ++components;
      if (small_root == kNoNode || comp_size[r] < comp_size[small_root]) {
        small_root = r;
      }
    }
    if (components <= 1) break;

    NodeId best_a = kNoNode;
    NodeId best_b = kNoNode;
    double best_d = std::numeric_limits<double>::infinity();
    const double cell_side = 1.0 / static_cast<double>(grid.dims());
    for (NodeId a = 0; a < n; ++a) {
      if (uf.find(a) != small_root) continue;
      const std::size_t cx = grid.axis_cell(layout.x[a]);
      const std::size_t cy = grid.axis_cell(layout.y[a]);
      for (std::size_t ring = 0; ring < grid.dims(); ++ring) {
        // Once the nearest candidate so far is provably closer than
        // anything a wider ring could hold, stop expanding.
        if (best_a != kNoNode && ring >= 2) {
          const double reach = static_cast<double>(ring - 1) * cell_side;
          if (reach * reach > best_d) break;
        }
        const std::size_t x_lo = cx >= ring ? cx - ring : 0;
        const std::size_t x_hi = std::min(cx + ring, grid.dims() - 1);
        const std::size_t y_lo = cy >= ring ? cy - ring : 0;
        const std::size_t y_hi = std::min(cy + ring, grid.dims() - 1);
        for (std::size_t gy = y_lo; gy <= y_hi; ++gy) {
          for (std::size_t gx = x_lo; gx <= x_hi; ++gx) {
            // Perimeter cells only: interior rings were already scanned.
            if (ring > 0 && gy != y_lo && gy != y_hi && gx != x_lo &&
                gx != x_hi) {
              continue;
            }
            for (const NodeId b : grid.cell(gx, gy)) {
              if (uf.find(b) == small_root) continue;
              const double d = dist2(a, b);
              const NodeId lo = std::min(a, b);
              const NodeId hi = std::max(a, b);
              const NodeId blo = std::min(best_a, best_b);
              const NodeId bhi = std::max(best_a, best_b);
              if (d < best_d || (d == best_d && (best_a == kNoNode ||
                                                 lo < blo ||
                                                 (lo == blo && hi < bhi)))) {
                best_d = d;
                best_a = a;
                best_b = b;
              }
            }
          }
        }
      }
    }
    layout.graph.add_edge(best_a, best_b);
    uf.unite(best_a, best_b);
  }
  layout.graph.compact();
  return layout;
}

const char* topology_name(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kLine: return "line";
    case TopologyKind::kRing: return "ring";
    case TopologyKind::kGrid: return "grid";
    case TopologyKind::kComplete: return "complete";
    case TopologyKind::kBalancedTree: return "balanced-tree";
    case TopologyKind::kGeometric: return "geometric";
  }
  return "unknown";
}

Graph make_topology(TopologyKind kind, std::size_t n, Xoshiro256& rng) {
  switch (kind) {
    case TopologyKind::kLine: return make_line(n);
    case TopologyKind::kRing: return make_ring(n);
    case TopologyKind::kGrid: {
      const auto side = static_cast<std::size_t>(
          std::ceil(std::sqrt(static_cast<double>(n))));
      return make_grid(side, side);
    }
    case TopologyKind::kComplete: return make_complete(n);
    case TopologyKind::kBalancedTree: return make_balanced_tree(n, 3);
    case TopologyKind::kGeometric: {
      // Radius at ~2x the connectivity threshold sqrt(log n / (pi n)) keeps
      // repairs rare while the graph stays sparse.
      const double dn = static_cast<double>(n);
      const double radius =
          2.0 * std::sqrt(std::log(std::max(dn, 2.0)) / (3.14159265 * dn));
      return make_random_geometric(n, radius, rng).graph;
    }
  }
  throw PreconditionError("unknown topology kind");
}

}  // namespace sensornet::net
