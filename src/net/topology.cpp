#include "src/net/topology.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/error.hpp"

namespace sensornet::net {

Graph make_line(std::size_t n) {
  SENSORNET_EXPECTS(n >= 1);
  Graph g(n);
  for (NodeId i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

Graph make_ring(std::size_t n) {
  SENSORNET_EXPECTS(n >= 3);
  Graph g(n);
  for (NodeId i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  g.add_edge(static_cast<NodeId>(n - 1), 0);
  return g;
}

Graph make_grid(std::size_t rows, std::size_t cols) {
  SENSORNET_EXPECTS(rows >= 1 && cols >= 1);
  Graph g(rows * cols);
  const auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

Graph make_complete(std::size_t n) {
  SENSORNET_EXPECTS(n >= 1);
  Graph g(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) g.add_edge(i, j);
  }
  return g;
}

Graph make_balanced_tree(std::size_t n, unsigned arity) {
  SENSORNET_EXPECTS(n >= 1 && arity >= 1);
  Graph g(n);
  for (NodeId child = 1; child < n; ++child) {
    const NodeId parent = (child - 1) / arity;
    g.add_edge(parent, child);
  }
  return g;
}

GeometricLayout make_random_geometric(std::size_t n, double radius,
                                      Xoshiro256& rng) {
  SENSORNET_EXPECTS(n >= 1);
  SENSORNET_EXPECTS(radius > 0.0);
  GeometricLayout layout{Graph(n), std::vector<double>(n),
                         std::vector<double>(n)};
  for (std::size_t i = 0; i < n; ++i) {
    layout.x[i] = rng.next_double();
    layout.y[i] = rng.next_double();
  }
  const double r2 = radius * radius;
  const auto dist2 = [&](std::size_t a, std::size_t b) {
    const double dx = layout.x[a] - layout.x[b];
    const double dy = layout.y[a] - layout.y[b];
    return dx * dx + dy * dy;
  };
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      if (dist2(i, j) <= r2) layout.graph.add_edge(i, j);
    }
  }

  // Connectivity repair: union-find over current edges, then bridge the
  // geometrically closest inter-component pair until one component remains.
  std::vector<NodeId> parent(n);
  for (NodeId i = 0; i < n; ++i) parent[i] = i;
  const auto find = [&](NodeId u) {
    while (parent[u] != u) {
      parent[u] = parent[parent[u]];
      u = parent[u];
    }
    return u;
  };
  for (NodeId i = 0; i < n; ++i) {
    for (const NodeId j : layout.graph.neighbors(i)) {
      parent[find(i)] = find(j);
    }
  }
  for (;;) {
    // Find any two components' closest pair.
    NodeId best_a = kNoNode;
    NodeId best_b = kNoNode;
    double best_d = std::numeric_limits<double>::infinity();
    bool multiple_components = false;
    for (NodeId i = 0; i < n; ++i) {
      for (NodeId j = i + 1; j < n; ++j) {
        if (find(i) == find(j)) continue;
        multiple_components = true;
        const double d = dist2(i, j);
        if (d < best_d) {
          best_d = d;
          best_a = i;
          best_b = j;
        }
      }
    }
    if (!multiple_components) break;
    layout.graph.add_edge(best_a, best_b);
    parent[find(best_a)] = find(best_b);
  }
  return layout;
}

const char* topology_name(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kLine: return "line";
    case TopologyKind::kRing: return "ring";
    case TopologyKind::kGrid: return "grid";
    case TopologyKind::kComplete: return "complete";
    case TopologyKind::kBalancedTree: return "balanced-tree";
    case TopologyKind::kGeometric: return "geometric";
  }
  return "unknown";
}

Graph make_topology(TopologyKind kind, std::size_t n, Xoshiro256& rng) {
  switch (kind) {
    case TopologyKind::kLine: return make_line(n);
    case TopologyKind::kRing: return make_ring(n);
    case TopologyKind::kGrid: {
      const auto side = static_cast<std::size_t>(
          std::ceil(std::sqrt(static_cast<double>(n))));
      return make_grid(side, side);
    }
    case TopologyKind::kComplete: return make_complete(n);
    case TopologyKind::kBalancedTree: return make_balanced_tree(n, 3);
    case TopologyKind::kGeometric: {
      // Radius at ~2x the connectivity threshold sqrt(log n / (pi n)) keeps
      // repairs rare while the graph stays sparse.
      const double dn = static_cast<double>(n);
      const double radius =
          2.0 * std::sqrt(std::log(std::max(dn, 2.0)) / (3.14159265 * dn));
      return make_random_geometric(n, radius, rng).graph;
    }
  }
  throw PreconditionError("unknown topology kind");
}

}  // namespace sensornet::net
