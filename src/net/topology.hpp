// Deployment topology generators.
//
// The paper abstracts the communication mechanism entirely, but individual
// communication complexity depends on the spanning tree's shape, so benches
// run every protocol over several topology families:
//   line      — worst diameter, degree 2 (also hosts the Thm 5.1 reduction)
//   ring      — line plus one wrap edge
//   grid      — the classic TAG deployment model
//   complete  — single-hop ("all hear all"), hosts the [14] comparator
//   balanced  — ideal d-ary aggregation tree
//   geometric — random geometric graph (unit-disk radios), with connectivity
//               repair so experiments never dead-end on a partitioned radio
//               layout
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/rng.hpp"
#include "src/net/graph.hpp"

namespace sensornet::net {

Graph make_line(std::size_t n);
Graph make_ring(std::size_t n);

/// rows x cols 4-neighbor mesh.
Graph make_grid(std::size_t rows, std::size_t cols);

/// Every pair connected: the single-hop model of Singh & Prasanna [14].
Graph make_complete(std::size_t n);

/// Balanced tree where every internal node has `arity` children.
Graph make_balanced_tree(std::size_t n, unsigned arity);

/// 2D positions of a geometric deployment, kept for diagnostics.
struct GeometricLayout {
  Graph graph;
  std::vector<double> x;
  std::vector<double> y;
};

/// n nodes uniform in the unit square; edge iff distance <= radius. If the
/// result is disconnected, the closest pair of nodes across components is
/// bridged (repeatedly) — a stand-in for a deployer adding relay motes.
GeometricLayout make_random_geometric(std::size_t n, double radius,
                                      Xoshiro256& rng);

/// Named topology families for parameterized tests/benches.
enum class TopologyKind { kLine, kRing, kGrid, kComplete, kBalancedTree, kGeometric };

const char* topology_name(TopologyKind kind);

/// Builds a topology of roughly `n` nodes from the family (grid rounds up to
/// a full rectangle).
Graph make_topology(TopologyKind kind, std::size_t n, Xoshiro256& rng);

}  // namespace sensornet::net
