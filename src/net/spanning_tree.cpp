#include "src/net/spanning_tree.hpp"

#include <algorithm>
#include <deque>

#include "src/common/error.hpp"

namespace sensornet::net {

std::size_t SpanningTree::height() const {
  std::uint32_t h = 0;
  for (const auto d : depth) h = std::max(h, d);
  return h;
}

std::size_t SpanningTree::max_degree() const {
  std::size_t best = 0;
  for (NodeId u = 0; u < parent.size(); ++u) {
    const std::size_t deg = children[u].size() + (parent[u] == kNoNode ? 0 : 1);
    best = std::max(best, deg);
  }
  return best;
}

namespace {

SpanningTree init_tree(std::size_t n, NodeId root) {
  SpanningTree t;
  t.root = root;
  t.parent.assign(n, kNoNode);
  t.children.assign(n, {});
  t.depth.assign(n, 0);
  return t;
}

void sort_children(SpanningTree& t) {
  for (auto& c : t.children) std::sort(c.begin(), c.end());
}

}  // namespace

SpanningTree bfs_tree(const Graph& graph, NodeId root) {
  SENSORNET_EXPECTS(root < graph.node_count());
  const std::size_t n = graph.node_count();
  SpanningTree t = init_tree(n, root);
  std::vector<bool> seen(n, false);
  std::deque<NodeId> queue{root};
  seen[root] = true;
  std::size_t visited = 1;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (const NodeId v : graph.neighbors(u)) {
      if (seen[v]) continue;
      seen[v] = true;
      ++visited;
      t.parent[v] = u;
      t.depth[v] = t.depth[u] + 1;
      t.children[u].push_back(v);
      queue.push_back(v);
    }
  }
  if (visited != n) throw ProtocolError("bfs_tree: graph is disconnected");
  sort_children(t);
  return t;
}

SpanningTree capped_bfs_tree(const Graph& graph, NodeId root,
                             unsigned max_children) {
  SENSORNET_EXPECTS(root < graph.node_count());
  SENSORNET_EXPECTS(max_children >= 1);
  const std::size_t n = graph.node_count();
  SpanningTree t = init_tree(n, root);
  std::vector<bool> seen(n, false);
  std::deque<NodeId> queue{root};
  seen[root] = true;
  std::size_t visited = 1;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (const NodeId v : graph.neighbors(u)) {
      if (seen[v]) continue;
      if (t.children[u].size() >= max_children) break;  // quota exhausted
      seen[v] = true;
      ++visited;
      t.parent[v] = u;
      t.depth[v] = t.depth[u] + 1;
      t.children[u].push_back(v);
      queue.push_back(v);
    }
  }
  if (visited != n) {
    throw ProtocolError(
        "capped_bfs_tree: cap too small to span this graph from this root");
  }
  sort_children(t);
  return t;
}

bool validate_tree(const Graph& graph, const SpanningTree& tree) {
  const std::size_t n = graph.node_count();
  if (tree.parent.size() != n || tree.children.size() != n ||
      tree.depth.size() != n) {
    return false;
  }
  if (tree.root >= n || tree.parent[tree.root] != kNoNode) return false;
  if (tree.depth[tree.root] != 0) return false;
  std::size_t child_links = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (u != tree.root) {
      const NodeId p = tree.parent[u];
      if (p == kNoNode || p >= n) return false;
      if (!graph.has_edge(u, p)) return false;
      if (tree.depth[u] != tree.depth[p] + 1) return false;
      // u must appear in its parent's children list exactly once
      const auto& siblings = tree.children[p];
      if (std::count(siblings.begin(), siblings.end(), u) != 1) return false;
    }
    child_links += tree.children[u].size();
    for (const NodeId c : tree.children[u]) {
      if (c >= n || tree.parent[c] != u) return false;
    }
  }
  // n-1 parent/child links and connectivity via depths => spanning tree.
  return child_links == n - 1;
}

}  // namespace sensornet::net
