#include "src/net/graph.hpp"

#include <algorithm>

#include "src/common/error.hpp"

namespace sensornet::net {

Graph::Graph(std::size_t node_count) : adjacency_(node_count) {}

void Graph::check_node(NodeId u) const {
  if (u >= adjacency_.size()) {
    throw PreconditionError("Graph: node id out of range");
  }
}

void Graph::add_edge(NodeId u, NodeId v) {
  check_node(u);
  check_node(v);
  SENSORNET_EXPECTS(u != v);
  if (has_edge(u, v)) {
    throw PreconditionError("Graph: duplicate edge");
  }
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
  ++edge_count_;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  const auto& smaller =
      adjacency_[u].size() <= adjacency_[v].size() ? adjacency_[u] : adjacency_[v];
  const NodeId target = adjacency_[u].size() <= adjacency_[v].size() ? v : u;
  return std::find(smaller.begin(), smaller.end(), target) != smaller.end();
}

std::size_t Graph::degree(NodeId u) const {
  check_node(u);
  return adjacency_[u].size();
}

std::size_t Graph::max_degree() const {
  std::size_t best = 0;
  for (const auto& adj : adjacency_) best = std::max(best, adj.size());
  return best;
}

const std::vector<NodeId>& Graph::neighbors(NodeId u) const {
  check_node(u);
  return adjacency_[u];
}

bool Graph::connected() const {
  if (adjacency_.empty()) return true;
  std::vector<bool> seen(adjacency_.size(), false);
  std::vector<NodeId> stack{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (const NodeId v : adjacency_[u]) {
      if (!seen[v]) {
        seen[v] = true;
        ++visited;
        stack.push_back(v);
      }
    }
  }
  return visited == adjacency_.size();
}

}  // namespace sensornet::net
