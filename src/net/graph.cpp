#include "src/net/graph.hpp"

#include <algorithm>

#include "src/common/error.hpp"

namespace sensornet::net {

Graph::Graph(std::size_t node_count) : staging_(node_count) {
  // An edgeless graph is trivially compacted; readers of a fresh Graph
  // (e.g. connected() on a 1-node deployment) must not trip the stale
  // assert.
  finalize();
}

void Graph::check_node(NodeId u) const {
  if (u >= staging_.size()) {
    throw PreconditionError("Graph: node id out of range");
  }
}

void Graph::add_edge(NodeId u, NodeId v) {
  check_node(u);
  check_node(v);
  SENSORNET_EXPECTS(u != v);
  // Duplicate check over the smaller staged list — O(min deg), no CSR
  // rebuild, so bulk construction stays linear in the number of edges.
  const auto& smaller =
      staging_[u].size() <= staging_[v].size() ? staging_[u] : staging_[v];
  const NodeId target = staging_[u].size() <= staging_[v].size() ? v : u;
  if (std::find(smaller.begin(), smaller.end(), target) != smaller.end()) {
    throw PreconditionError("Graph: duplicate edge");
  }
  staging_[u].push_back(v);
  staging_[v].push_back(u);
  ++edge_count_;
  csr_stale_ = true;
}

Graph& Graph::compact() {
  if (csr_stale_) finalize();
  return *this;
}

void Graph::finalize() const {
  const std::size_t n = staging_.size();
  offsets_.assign(n + 1, 0);
  for (std::size_t u = 0; u < n; ++u) {
    offsets_[u + 1] =
        offsets_[u] + static_cast<std::uint32_t>(staging_[u].size());
  }
  csr_.resize(2 * edge_count_);
  for (std::size_t u = 0; u < n; ++u) {
    std::copy(staging_[u].begin(), staging_[u].end(),
              csr_.begin() + offsets_[u]);
    std::sort(csr_.begin() + offsets_[u], csr_.begin() + offsets_[u + 1]);
  }
  csr_stale_ = false;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  require_compacted();
  const bool u_smaller =
      offsets_[u + 1] - offsets_[u] <= offsets_[v + 1] - offsets_[v];
  const NodeId probe = u_smaller ? u : v;
  const NodeId target = u_smaller ? v : u;
  const NodeId* first = csr_.data() + offsets_[probe];
  const NodeId* last = csr_.data() + offsets_[probe + 1];
  // Tiny ranges (the common case on mesh deployments): one contiguous scan
  // beats binary-search branching.
  if (last - first <= 16) {
    for (const NodeId* p = first; p != last; ++p) {
      if (*p == target) return true;
    }
    return false;
  }
  return std::binary_search(first, last, target);
}

std::size_t Graph::degree(NodeId u) const {
  check_node(u);
  return staging_[u].size();
}

std::size_t Graph::max_degree() const {
  std::size_t best = 0;
  for (const auto& adj : staging_) best = std::max(best, adj.size());
  return best;
}

std::span<const NodeId> Graph::neighbors(NodeId u) const {
  check_node(u);
  require_compacted();
  return {csr_.data() + offsets_[u], csr_.data() + offsets_[u + 1]};
}

bool Graph::connected() const {
  if (staging_.empty()) return true;
  require_compacted();
  std::vector<bool> seen(staging_.size(), false);
  std::vector<NodeId> stack{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (const NodeId v : neighbors(u)) {
      if (!seen[v]) {
        seen[v] = true;
        ++visited;
        stack.push_back(v);
      }
    }
  }
  return visited == staging_.size();
}

}  // namespace sensornet::net
