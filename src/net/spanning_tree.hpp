// Spanning trees for broadcast-convergecast aggregation.
//
// Fact 2.1's O(log N) *individual* bound needs a bounded-degree spanning
// tree ("bounded degree is required to maintain low individual communication
// complexity" — Section 2.2), so alongside the plain BFS tree we provide a
// child-capped construction; the EXP-ABL bench contrasts the two.
#pragma once

#include <cstddef>
#include <vector>

#include "src/common/types.hpp"
#include "src/net/graph.hpp"

namespace sensornet::net {

/// Rooted spanning tree: parent pointers, children lists, depths.
struct SpanningTree {
  NodeId root = 0;
  std::vector<NodeId> parent;                 // kNoNode at the root
  std::vector<std::vector<NodeId>> children;  // sorted by id
  std::vector<std::uint32_t> depth;           // root has depth 0

  std::size_t node_count() const { return parent.size(); }

  /// Longest root-to-leaf path (edges).
  std::size_t height() const;

  /// Maximum tree degree: children count plus one for the parent link.
  std::size_t max_degree() const;
};

/// Breadth-first spanning tree from `root`. Throws if the graph is
/// disconnected.
SpanningTree bfs_tree(const Graph& graph, NodeId root);

/// BFS-like spanning tree where no node adopts more than `max_children`
/// children (the root included). Nodes left stranded when all their
/// neighbors' quotas are exhausted cause a ProtocolError — callers pick a
/// cap that the topology supports (e.g. any cap >= 2 on a complete graph).
SpanningTree capped_bfs_tree(const Graph& graph, NodeId root,
                             unsigned max_children);

/// Checks structural soundness: every non-root has a parent that is a graph
/// neighbor, children lists mirror parents, depths increment, all nodes
/// reachable from the root exactly once.
bool validate_tree(const Graph& graph, const SpanningTree& tree);

}  // namespace sensornet::net
