// Undirected communication graph of the sensor deployment.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/common/types.hpp"

namespace sensornet::net {

/// Simple undirected graph over nodes 0..n-1. Parallel edges and self-loops
/// are rejected.
///
/// Edges are staged into per-node adjacency lists as they are added and then
/// compacted into a CSR (compressed sparse row) image with each neighbor
/// range sorted ascending. The simulator's hot path then gets O(log deg)
/// edge membership tests (binary search within one range) and contiguous,
/// cache-friendly neighbor scans instead of pointer-chasing a
/// vector-of-vectors.
///
/// Thread-safety contract: every topology builder calls compact() before
/// returning, after which all const accessors are pure reads — safe to share
/// one Graph across concurrently running trials. Querying a graph whose CSR
/// is stale (edges added since the last compact()) asserts in debug builds;
/// release builds fall back to rebuilding in place, which is only safe
/// single-threaded. Call compact() after any add_edge burst before handing
/// the graph to readers.
class Graph {
 public:
  explicit Graph(std::size_t node_count);

  /// Adds the undirected edge {u, v}. Throws on self-loop, out-of-range ids,
  /// or duplicate edge. Marks the CSR image stale.
  void add_edge(NodeId u, NodeId v);

  /// Compacts the staged adjacency lists into the sorted CSR image. Cheap
  /// when already compacted. Returns *this so builders can `return
  /// g.compact()`. This is the ONLY mutation concurrent readers may not
  /// race with — do it once, before sharing.
  Graph& compact();

  /// True once the CSR image reflects every staged edge, i.e. const
  /// accessors are data-race-free.
  bool compacted() const { return !csr_stale_; }

  /// True if {u, v} is an edge. O(log deg) over the sorted CSR range of the
  /// lower-degree endpoint.
  bool has_edge(NodeId u, NodeId v) const;

  std::size_t node_count() const { return staging_.size(); }
  std::size_t edge_count() const { return edge_count_; }
  std::size_t degree(NodeId u) const;
  std::size_t max_degree() const;

  /// Neighbors of u, sorted ascending, as one contiguous CSR slice. The
  /// span is invalidated by add_edge + compact() (the rebuild moves the
  /// image it points into) — don't hold it across mutations.
  std::span<const NodeId> neighbors(NodeId u) const;

  /// True if every node is reachable from node 0 (or graph is empty).
  bool connected() const;

 private:
  void check_node(NodeId u) const;
  /// Rebuilds the CSR image from the staged lists.
  void finalize() const;
  /// Debug builds fail loudly on a stale read (a concurrent caller would be
  /// racing the rebuild); release builds keep the single-threaded lazy
  /// fallback so legacy call sites stay correct.
  void require_compacted() const {
    assert(!csr_stale_ &&
           "Graph: compact() must be called before concurrent const reads");
    if (csr_stale_) finalize();
  }

  std::vector<std::vector<NodeId>> staging_;  // insertion-order build lists
  std::size_t edge_count_ = 0;

  // CSR image derived by compact(): neighbors of u live in
  // csr_[offsets_[u] .. offsets_[u + 1]), sorted ascending.
  mutable std::vector<std::uint32_t> offsets_;
  mutable std::vector<NodeId> csr_;
  mutable bool csr_stale_ = true;
};

}  // namespace sensornet::net
