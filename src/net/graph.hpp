// Undirected communication graph of the sensor deployment.
#pragma once

#include <cstddef>
#include <vector>

#include "src/common/types.hpp"

namespace sensornet::net {

/// Simple undirected graph over nodes 0..n-1 with adjacency lists.
/// Parallel edges and self-loops are rejected.
class Graph {
 public:
  explicit Graph(std::size_t node_count);

  /// Adds the undirected edge {u, v}. Throws on self-loop, out-of-range ids,
  /// or duplicate edge.
  void add_edge(NodeId u, NodeId v);

  /// True if {u, v} is an edge.
  bool has_edge(NodeId u, NodeId v) const;

  std::size_t node_count() const { return adjacency_.size(); }
  std::size_t edge_count() const { return edge_count_; }
  std::size_t degree(NodeId u) const;
  std::size_t max_degree() const;

  /// Neighbors of u in insertion order.
  const std::vector<NodeId>& neighbors(NodeId u) const;

  /// True if every node is reachable from node 0 (or graph is empty).
  bool connected() const;

 private:
  void check_node(NodeId u) const;

  std::vector<std::vector<NodeId>> adjacency_;
  std::size_t edge_count_ = 0;
};

}  // namespace sensornet::net
