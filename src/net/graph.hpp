// Undirected communication graph of the sensor deployment.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/common/types.hpp"

namespace sensornet::net {

/// Simple undirected graph over nodes 0..n-1. Parallel edges and self-loops
/// are rejected.
///
/// Edges are staged into per-node adjacency lists as they are added; the
/// first query (`neighbors`, `has_edge`, `connected`) lazily compacts them
/// into a CSR (compressed sparse row) image with each neighbor range sorted
/// ascending. The simulator's hot path then gets O(log deg) edge membership
/// tests (binary search within one range) and contiguous, cache-friendly
/// neighbor scans instead of pointer-chasing a vector-of-vectors. Adding an
/// edge after a query simply marks the CSR stale; it is rebuilt on the next
/// query. Not thread-safe (the lazy rebuild mutates shared state).
class Graph {
 public:
  explicit Graph(std::size_t node_count);

  /// Adds the undirected edge {u, v}. Throws on self-loop, out-of-range ids,
  /// or duplicate edge.
  void add_edge(NodeId u, NodeId v);

  /// True if {u, v} is an edge. O(log deg) over the sorted CSR range of the
  /// lower-degree endpoint.
  bool has_edge(NodeId u, NodeId v) const;

  std::size_t node_count() const { return staging_.size(); }
  std::size_t edge_count() const { return edge_count_; }
  std::size_t degree(NodeId u) const;
  std::size_t max_degree() const;

  /// Neighbors of u, sorted ascending, as one contiguous CSR slice. The
  /// span is invalidated by any later add_edge (the next query rebuilds
  /// the CSR image it points into) — don't hold it across mutations.
  std::span<const NodeId> neighbors(NodeId u) const;

  /// True if every node is reachable from node 0 (or graph is empty).
  bool connected() const;

 private:
  void check_node(NodeId u) const;
  /// Compacts the staged adjacency lists into the sorted CSR image.
  void finalize() const;

  std::vector<std::vector<NodeId>> staging_;  // insertion-order build lists
  std::size_t edge_count_ = 0;

  // Lazily derived CSR image: neighbors of u live in
  // csr_[offsets_[u] .. offsets_[u + 1]), sorted ascending.
  mutable std::vector<std::uint32_t> offsets_;
  mutable std::vector<NodeId> csr_;
  mutable bool csr_stale_ = true;
};

}  // namespace sensornet::net
