#include "src/cube/dirty.hpp"

#include <algorithm>

#include "src/common/error.hpp"
#include "src/obs/trace.hpp"
#include "src/sim/message.hpp"

namespace sensornet::cube {

namespace {

constexpr std::uint32_t kMarkSession = 0x7F00;
constexpr std::uint16_t kMarkKind = 1;

}  // namespace

std::size_t child_index(const net::SpanningTree& tree, NodeId node,
                        NodeId child) {
  const auto& kids = tree.children[node];
  const auto it = std::lower_bound(kids.begin(), kids.end(), child);
  SENSORNET_EXPECTS(it != kids.end() && *it == child);
  return static_cast<std::size_t>(it - kids.begin());
}

class DirtyTracker::MarkWave final : public sim::ProtocolHandler {
 public:
  MarkWave(DirtyTracker& tracker, std::uint32_t epoch,
           std::vector<std::uint32_t>& forwarded_epoch)
      : tracker_(tracker), epoch_(epoch), forwarded_epoch_(forwarded_epoch) {}

  void emit_mark(sim::Network& net, NodeId node) {
    if (node == tracker_.tree_.root) return;
    if (forwarded_epoch_[node] == epoch_) return;  // coalesced
    forwarded_epoch_[node] = epoch_;
    BitWriter w;
    w.write_bit(true);
    net.send(sim::Message::make(node, tracker_.tree_.parent[node],
                                kMarkSession, kMarkKind, std::move(w)));
    ++tracker_.mark_messages_;
  }

  void on_message(sim::Network& net, NodeId receiver,
                  const sim::Message& msg) override {
    SENSORNET_EXPECTS(msg.session == kMarkSession && msg.kind == kMarkKind);
    const std::size_t ci = child_index(tracker_.tree_, receiver, msg.from);
    tracker_.child_changed_epoch_[receiver][ci] = epoch_;
    tracker_.subtree_changed_epoch_[receiver] = epoch_;
    emit_mark(net, receiver);
  }

 private:
  DirtyTracker& tracker_;
  std::uint32_t epoch_;
  std::vector<std::uint32_t>& forwarded_epoch_;
};

DirtyTracker::DirtyTracker(sim::Network& net, const net::SpanningTree& tree)
    : net_(net),
      tree_(tree),
      subtree_changed_epoch_(tree.node_count(), kNever),
      child_changed_epoch_(tree.node_count()) {
  SENSORNET_EXPECTS(net.node_count() == tree.node_count());
  for (NodeId u = 0; u < tree.node_count(); ++u) {
    child_changed_epoch_[u].assign(tree.children[u].size(), kNever);
  }
}

void DirtyTracker::note_updates(std::span<const NodeId> updated,
                                std::uint32_t epoch) {
  SENSORNET_EXPECTS(epoch != kNever && epoch != kInvalidEpoch);
  if (updated.empty()) return;
  // Per-epoch coalescing state: one vector reused across epochs would also
  // work, but a mark wave touches only the updated nodes' root paths, so a
  // fresh zeroed vector per batch keeps the logic obvious. (Epoch 0 is
  // reserved as "never", so zero-initialization is the coalesced-for-no-one
  // state.)
  std::vector<std::uint32_t> forwarded(tree_.node_count(), kNever);
  MarkWave wave(*this, epoch, forwarded);
  const SimTime t0 = net_.now();
  for (const NodeId u : updated) {
    SENSORNET_EXPECTS(u < tree_.node_count());
    subtree_changed_epoch_[u] = epoch;
    wave.emit_mark(net_, u);
  }
  net_.run(wave);
  obs::TraceRing& ring = obs::TraceRing::global();
  if (ring.enabled()) {
    ring.complete("mark.wave", "service", t0, net_.now() - t0, 0, "epoch",
                  epoch, "updated", updated.size());
  }
}

}  // namespace sensornet::cube
