// Coalesced dirty-mark propagation over the spanning tree (extracted from
// the PR 8 shared-plan scheduler so the multiresolution cube can piggyback
// on the same wave).
//
// Sensors that change push a 1-bit dirty mark up the tree once per epoch
// (each node forwards at most one mark per epoch, so a batch costs at most
// one message per distinct root-path edge). Every interior node then knows,
// per child edge, the epoch of the last change below it — the freshness
// oracle that lets any incremental collection (scheduler stats waves, cube
// cell refreshes) skip subtrees that have not changed since their cached
// partial was taken.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "src/common/types.hpp"
#include "src/net/spanning_tree.hpp"
#include "src/sim/network.hpp"

namespace sensornet::cube {

/// Index of `child` within the node's sorted children list.
std::size_t child_index(const net::SpanningTree& tree, NodeId node,
                        NodeId child);

class DirtyTracker {
 public:
  /// Epochs are 1-based; 0 is "never changed".
  static constexpr std::uint32_t kNever = 0;
  /// "No cached partial" sentinel used by every consumer of the tracker.
  static constexpr std::uint32_t kInvalidEpoch =
      std::numeric_limits<std::uint32_t>::max();

  DirtyTracker(sim::Network& net, const net::SpanningTree& tree);

  DirtyTracker(const DirtyTracker&) = delete;
  DirtyTracker& operator=(const DirtyTracker&) = delete;

  /// Records one epoch's sensor-update batch: stamps the updated nodes and
  /// ships coalesced dirty marks up the tree (bits metered). Must be called
  /// after the updates are applied to the network and before collections of
  /// the same epoch.
  void note_updates(std::span<const NodeId> updated, std::uint32_t epoch);

  /// Epoch of the last change heard from the node's ci-th child edge.
  std::uint32_t child_changed_epoch(NodeId node, std::size_t ci) const {
    return child_changed_epoch_[node][ci];
  }

  /// Epoch of the last change at or below the node.
  std::uint32_t subtree_changed_epoch(NodeId node) const {
    return subtree_changed_epoch_[node];
  }

  /// True when nothing at or below the edge changed after `have` (the epoch
  /// a cached partial was taken at) — the partial is still exact.
  bool edge_fresh(NodeId node, std::size_t ci, std::uint32_t have) const {
    return have != kInvalidEpoch && child_changed_epoch_[node][ci] <= have;
  }

  std::uint64_t mark_messages() const { return mark_messages_; }

 private:
  class MarkWave;

  sim::Network& net_;
  const net::SpanningTree& tree_;
  std::vector<std::uint32_t> subtree_changed_epoch_;
  /// Parallel to tree_.children[n]: epoch of the last change heard from
  /// each child edge.
  std::vector<std::vector<std::uint32_t>> child_changed_epoch_;
  std::uint64_t mark_messages_ = 0;
};

}  // namespace sensornet::cube
