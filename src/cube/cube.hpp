// Multiresolution aggregation cube.
//
// The cube slices the value domain [0, max_value_bound] into dyadic cells:
// level l has 2^l cells, cell (l, i) covering
//
//   [ floor(i * (B+1) / 2^l),  floor((i+1) * (B+1) / 2^l) - 1 ]
//
// so cell boundaries nest (cell (l, i) is exactly the union of its two
// children (l+1, 2i) and (l+1, 2i+1)) and level 0 is the whole domain. Every
// cell maintains a per-subtree partial aggregate at each tree node: a
// PASS-style StatsBundle (COUNT/SUM/MIN/MAX over the cell, its margin-shrunk
// inner and margin-grown outer companions) and, when configured, an HLL
// sketch for COUNT_DISTINCT. Partials are kept incrementally fresh by the
// same coalesced dirty-mark wave the shared-plan scheduler rides
// (cube::DirtyTracker): a cell refresh descends only into subtrees that
// changed since the cached partial was taken, so a quiescent network
// refreshes for free.
//
// The planner sees the cube through the query::CubeCatalog interface —
// geometry plus a deterministic bit-cost model — and decomposes a range
// query into the fewest covering cells plus *residue* collections for the
// unaligned ends. A residue collection is a one-shot wave that prunes
// subtrees provably empty for its range: an edge is skipped when some
// containing cell's cached partial shows an empty outer region and the
// dirty tracker proves nothing below changed since — the subtree's items
// are literally identical, so the prune is exact, not approximate.
//
// Answers composed from fresh cells + residues are byte-identical to a
// whole-tree collection: cell regions partition the query range, stats
// combine losslessly, and HLL partials replicate the oracle's exact sketch
// geometry (salt 1, width for node_count+1 ranks), so register-max merges
// reproduce the oracle's registers bit for bit.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/common/types.hpp"
#include "src/cube/dirty.hpp"
#include "src/cube/stats.hpp"
#include "src/net/spanning_tree.hpp"
#include "src/query/aggregate.hpp"
#include "src/query/plan.hpp"
#include "src/sim/network.hpp"
#include "src/sketch/hll.hpp"

namespace sensornet::cube {

struct CubeConfig {
  /// Resolution levels; the finest level has 2^(levels-1) cells and must
  /// not out-resolve the domain ((1 << (levels-1)) <= max_value_bound + 1).
  unsigned levels = 4;
  /// HLL registers of the COUNT_DISTINCT partials; 0 = stats only.
  unsigned distinct_registers = 0;
  /// Drift model: a reading moves by at most this much per epoch.
  Value max_delta = 4;
  /// Margin horizon baked into cell bundles (M = horizon * max_delta);
  /// ranged cells bracket up to this staleness, and the planner amortizes
  /// refresh costs over it.
  std::uint32_t horizon_epochs = 8;
};

/// Cumulative cube telemetry, mirrored into obs gauges after every wave.
struct CubeStats {
  std::uint64_t refresh_waves = 0;       // cell refreshes that ran
  std::uint64_t cell_edges_descended = 0;
  std::uint64_t cell_edges_skipped = 0;  // served from cached partials
  std::uint64_t residue_waves = 0;
  std::uint64_t residue_edges_descended = 0;
  std::uint64_t residue_edges_pruned = 0;  // subtrees proven empty
  std::uint64_t fresh_serves = 0;
  std::uint64_t stale_serves = 0;
  std::uint64_t geometry_installs = 0;  // lazy one-time broadcast
};

/// One fresh serve's composition: the exact bundle over the plan's region
/// at the serve epoch, plus the merged distinct estimate when asked for.
struct ServeResult {
  StatsBundle bundle;
  double distinct_estimate = 0.0;
  bool has_distinct = false;
  std::size_t cells_used = 0;
  std::size_t residues_run = 0;
};

class Cube final : public query::CubeCatalog {
 public:
  /// `dirty` is the shared freshness oracle (typically owned by the
  /// scheduler); it must outlive the cube, and its note_updates() must run
  /// each epoch before serves of that epoch.
  Cube(sim::Network& net, const net::SpanningTree& tree, Value max_value_bound,
       const DirtyTracker& dirty, CubeConfig config);
  ~Cube() override;

  Cube(const Cube&) = delete;
  Cube& operator=(const Cube&) = delete;

  // ---- query::CubeCatalog (the planner's window) -------------------------
  unsigned levels() const override { return config_.levels; }
  Value domain_bound() const override { return max_value_bound_; }
  query::RegionSignature cell_region(query::CubeCellRef ref) const override;
  unsigned distinct_registers() const override {
    return config_.distinct_registers;
  }
  std::uint64_t cell_refresh_bits(query::CubeCellRef ref) const override;
  std::uint64_t residue_collect_bits(
      const query::RegionSignature& region) const override;
  std::uint64_t tree_collect_bits(
      const query::RegionSignature& region) const override;
  std::uint32_t refresh_amortization() const override {
    return config_.horizon_epochs;
  }

  // ---- serving -----------------------------------------------------------
  /// Executes the plan's steps at `epoch`: brings each cube-cell step's cell
  /// up to the epoch (incremental descent), runs pruned residue collections
  /// for the rest, and composes the exact bundle (plus the HLL estimate for
  /// approx-distinct plans). The first serve pays a one-time geometry
  /// install broadcast.
  ServeResult serve(const query::CostedPlan& plan, std::uint32_t epoch);

  /// Zero-bit serve attempt: composes per-cell drift brackets at each
  /// cell's own staleness. Returns nullopt when the plan has non-cell steps,
  /// a cell was never refreshed, a ranged cell is staler than the horizon,
  /// or the aggregate is not bracketable from stats bundles.
  std::optional<BracketedAnswer> stale_bracket(const query::CostedPlan& plan,
                                               query::AggregateKind agg,
                                               std::uint32_t now_epoch) const;

  const CubeStats& stats() const { return stats_; }
  std::size_t cell_count() const { return cells_.size(); }
  /// Row-major cell numbering: level 0 first, 2^l cells per level.
  static std::size_t cell_ordinal(query::CubeCellRef ref) {
    return ((std::size_t{1} << ref.level) - 1) + ref.index;
  }

 private:
  struct CellState;
  class RefreshWave;
  class ResidueWave;

  CellState& cell(query::CubeCellRef ref);
  const CellState& cell(query::CubeCellRef ref) const;
  /// Node-local bundle over `region` with the cube's margins.
  StatsBundle local_bundle(NodeId node, const query::RegionSignature& region)
      const;
  /// Node-local HLL over `region` in the oracle's exact sketch geometry.
  sketch::Hll local_hll(NodeId node, const query::RegionSignature& region)
      const;
  sketch::Hll empty_hll() const;
  /// True when the cached cell partials prove the subtree below
  /// (node, child ci) holds nothing relevant to `region` — exact, because
  /// the dirty tracker certifies the subtree is unchanged since the proof.
  bool subtree_provably_empty(NodeId node, std::size_t ci,
                              const query::RegionSignature& region) const;
  void ensure_geometry_installed();
  /// Incremental refresh of one cell to `epoch`; no-op when already there.
  void refresh_cell(CellState& c, std::uint32_t epoch);
  /// One-shot pruned collection; fills `hll` when it is non-null.
  StatsBundle collect_range(const query::RegionSignature& region,
                            std::optional<sketch::Hll>* hll);
  void mirror_stats() const;

  /// Estimated wire bits of one descend-and-respond edge for a region
  /// (request + response, headers included).
  std::uint64_t edge_cost_bits(bool whole_domain, bool carries_region) const;
  std::uint64_t count_stale_edges(const CellState& c, NodeId node) const;
  std::uint64_t count_residue_edges(NodeId node,
                                    const query::RegionSignature& region)
      const;

  sim::Network& net_;
  const net::SpanningTree& tree_;
  Value max_value_bound_;
  const DirtyTracker& dirty_;
  CubeConfig config_;
  std::uint8_t hll_width_;  // packed rank width: the oracle's geometry
  bool geometry_installed_ = false;
  std::vector<std::unique_ptr<CellState>> cells_;  // by cell_ordinal
  std::uint32_t next_residue_session_;
  // Telemetry, not state: the zero-bit stale path counts from const context.
  mutable CubeStats stats_;
};

}  // namespace sensornet::cube
