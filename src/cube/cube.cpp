#include "src/cube/cube.hpp"

#include <algorithm>
#include <utility>

#include "src/common/codec.hpp"
#include "src/common/error.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/proto/tree_broadcast.hpp"
#include "src/sim/message.hpp"

namespace sensornet::cube {

namespace {

constexpr std::uint32_t kRefreshSessionBase = 0x7800;
constexpr std::uint32_t kResidueSessionBase = 0x7C00;
constexpr std::uint32_t kGeometrySession = 0x7BFF;
constexpr std::uint16_t kRequestKind = 1;
constexpr std::uint16_t kResponseKind = 2;
/// The oracle's hash salt: a fresh approx-counting service issues its first
/// (and, per query, only) wave with salt 1, so cube HLL partials use the
/// same constant to reproduce its registers exactly.
constexpr std::uint64_t kHllSalt = 1;

void encode_bundle(BitWriter& w, const StatsBundle& b, bool whole_domain) {
  encode_range_stats(w, b.core);
  if (!whole_domain) {
    encode_range_stats(w, b.inner);
    encode_range_stats(w, b.outer);
  }
}

StatsBundle decode_bundle(BitReader& r, bool whole_domain) {
  StatsBundle b;
  b.core = decode_range_stats(r);
  if (whole_domain) {
    b.inner = b.core;
    b.outer = b.core;
  } else {
    b.inner = decode_range_stats(r);
    b.outer = decode_range_stats(r);
  }
  return b;
}

void mirror_cube_stats(const CubeStats& s) {
  obs::Registry& reg = obs::Registry::global();
  reg.gauge_set(reg.gauge("cube.refresh_waves"), s.refresh_waves);
  reg.gauge_set(reg.gauge("cube.cell_edges_descended"), s.cell_edges_descended);
  reg.gauge_set(reg.gauge("cube.cell_edges_skipped"), s.cell_edges_skipped);
  reg.gauge_set(reg.gauge("cube.residue_waves"), s.residue_waves);
  reg.gauge_set(reg.gauge("cube.residue_edges_descended"),
                s.residue_edges_descended);
  reg.gauge_set(reg.gauge("cube.residue_edges_pruned"),
                s.residue_edges_pruned);
  reg.gauge_set(reg.gauge("cube.fresh_serves"), s.fresh_serves);
  reg.gauge_set(reg.gauge("cube.stale_serves"), s.stale_serves);
  reg.gauge_set(reg.gauge("cube.geometry_installs"), s.geometry_installs);
}

}  // namespace

// ---- cell state -----------------------------------------------------------

struct Cube::CellState {
  std::size_t ordinal = 0;
  query::RegionSignature region;
  StatsBundle root;
  std::optional<sketch::Hll> root_hll;
  std::uint32_t epoch = DirtyTracker::kInvalidEpoch;  // last refresh
  // Parent-side caches, indexed [node][child_index]; sized lazily at the
  // first refresh so untouched cells cost no memory on wide trees.
  std::vector<std::vector<StatsBundle>> child_partial;
  std::vector<std::vector<std::uint32_t>> child_epoch;
  std::vector<std::vector<std::optional<sketch::Hll>>> child_hll;
};

Cube::CellState& Cube::cell(query::CubeCellRef ref) {
  SENSORNET_EXPECTS(ref.level < config_.levels &&
                    ref.index < (1u << ref.level));
  return *cells_[cell_ordinal(ref)];
}

const Cube::CellState& Cube::cell(query::CubeCellRef ref) const {
  SENSORNET_EXPECTS(ref.level < config_.levels &&
                    ref.index < (1u << ref.level));
  return *cells_[cell_ordinal(ref)];
}

// ---- construction ---------------------------------------------------------

Cube::Cube(sim::Network& net, const net::SpanningTree& tree,
           Value max_value_bound, const DirtyTracker& dirty, CubeConfig config)
    : net_(net),
      tree_(tree),
      max_value_bound_(max_value_bound),
      dirty_(dirty),
      config_(config),
      hll_width_(0),
      next_residue_session_(kResidueSessionBase) {
  SENSORNET_EXPECTS(net.node_count() == tree.node_count());
  SENSORNET_EXPECTS(max_value_bound >= 0);
  SENSORNET_EXPECTS(config_.levels >= 1 && config_.levels <= 16);
  // The finest level must not out-resolve the domain, or cells go empty.
  SENSORNET_EXPECTS((std::uint64_t{1} << (config_.levels - 1)) <=
                    static_cast<std::uint64_t>(max_value_bound) + 1);
  SENSORNET_EXPECTS(config_.max_delta >= 0);
  SENSORNET_EXPECTS(config_.horizon_epochs >= 1);
  if (config_.distinct_registers > 0) {
    hll_width_ = static_cast<std::uint8_t>(sketch::packed_width_for(
        static_cast<std::uint64_t>(net.node_count()) + 1));
    (void)empty_hll();  // validates registers/width geometry once, up front
  }
  const auto domain = static_cast<std::uint64_t>(max_value_bound) + 1;
  for (unsigned level = 0; level < config_.levels; ++level) {
    for (unsigned index = 0; index < (1u << level); ++index) {
      auto c = std::make_unique<CellState>();
      c->ordinal = cells_.size();
      const std::uint64_t lo = index * domain >> level;
      const std::uint64_t hi = ((index + 1ull) * domain >> level) - 1;
      c->region.lo = static_cast<Value>(lo);
      c->region.hi = static_cast<Value>(hi);
      c->region.whole_domain =
          c->region.lo == 0 && c->region.hi == max_value_bound;
      cells_.push_back(std::move(c));
    }
  }
  // Construction ships zero bits: the geometry install broadcast is lazy,
  // paid by the first serve (bits-conservation invariants stay intact for
  // services that never enable the cube path).
}

Cube::~Cube() = default;

query::RegionSignature Cube::cell_region(query::CubeCellRef ref) const {
  return cell(ref).region;
}

// ---- node-local evaluation ------------------------------------------------

StatsBundle Cube::local_bundle(NodeId node,
                               const query::RegionSignature& region) const {
  StatsBundle b;
  if (region.whole_domain) {
    for (const Value v : net_.items(node)) b.core.observe(v);
    b.inner = b.core;
    b.outer = b.core;
    return b;
  }
  const Value margin =
      static_cast<Value>(config_.horizon_epochs) * config_.max_delta;
  for (const Value v : net_.items(node)) {
    if (v >= region.lo && v <= region.hi) b.core.observe(v);
    if (v >= region.lo + margin && v <= region.hi - margin) b.inner.observe(v);
    if (v >= region.lo - margin && v <= region.hi + margin) b.outer.observe(v);
  }
  return b;
}

sketch::Hll Cube::empty_hll() const {
  return sketch::Hll::make_by_registers(
             config_.distinct_registers,
             sketch::HllOptions{.width = hll_width_, .sparse = true})
      .value();
}

sketch::Hll Cube::local_hll(NodeId node,
                            const query::RegionSignature& region) const {
  sketch::Hll h = empty_hll();
  for (const Value v : net_.items(node)) {
    if (v >= region.lo && v <= region.hi) {
      h.add(static_cast<std::uint64_t>(v), kHllSalt);
    }
  }
  return h;
}

// ---- pruning oracle -------------------------------------------------------

bool Cube::subtree_provably_empty(NodeId node, std::size_t ci,
                                  const query::RegionSignature& region) const {
  for (const auto& cs : cells_) {
    if (cs->child_partial.empty()) continue;  // cell never refreshed
    if (cs->region.lo > region.lo || cs->region.hi < region.hi) continue;
    // The partial's outer region contains the residue's outer region (same
    // margin, containing core). edge_fresh certifies the subtree's items are
    // *identical* to when the partial was taken, so an empty outer then is
    // an empty outer now — the subtree contributes nothing, exactly.
    if (!dirty_.edge_fresh(node, ci, cs->child_epoch[node][ci])) continue;
    if (cs->child_partial[node][ci].outer.count == 0) return true;
  }
  return false;
}

// ---- cell refresh wave ----------------------------------------------------

class Cube::RefreshWave final : public sim::ProtocolHandler {
 public:
  RefreshWave(Cube& cube, CellState& c, std::uint32_t epoch)
      : cube_(cube),
        c_(c),
        epoch_(epoch),
        // Session identifies the cell: stable across epochs, disjoint from
        // the scheduler's 0x7000 group range and the residue range.
        session_(kRefreshSessionBase + static_cast<std::uint32_t>(c.ordinal)),
        want_hll_(cube.config_.distinct_registers > 0),
        pending_(cube.tree_.node_count(), 0),
        accum_(cube.tree_.node_count()),
        accum_hll_(cube.tree_.node_count()) {}

  void execute(sim::Network& net) {
    activate(net, cube_.tree_.root);
    net.run(*this);
    SENSORNET_EXPECTS(pending_[cube_.tree_.root] == 0);
    c_.root = accum_[cube_.tree_.root];
    if (want_hll_) c_.root_hll = std::move(accum_hll_[cube_.tree_.root]);
    c_.epoch = epoch_;
  }

  void on_message(sim::Network& net, NodeId receiver,
                  const sim::Message& msg) override {
    SENSORNET_EXPECTS(msg.session == session_);
    if (msg.kind == kRequestKind) {
      activate(net, receiver);
      return;
    }
    SENSORNET_EXPECTS(msg.kind == kResponseKind);
    BitReader r = msg.reader();
    StatsBundle child = decode_bundle(r, c_.region.whole_domain);
    const std::size_t ci = child_index(cube_.tree_, receiver, msg.from);
    c_.child_partial[receiver][ci] = child;
    c_.child_epoch[receiver][ci] = epoch_;
    accum_[receiver].combine(child);
    if (want_hll_) {
      sketch::Hll h = sketch::Hll::decode(r).value();
      accum_hll_[receiver]->merge(h).value();
      c_.child_hll[receiver][ci] = std::move(h);
    }
    SENSORNET_EXPECTS(pending_[receiver] > 0);
    if (--pending_[receiver] == 0) respond(net, receiver);
  }

 private:
  void activate(sim::Network& net, NodeId node) {
    accum_[node] = cube_.local_bundle(node, c_.region);
    if (want_hll_) accum_hll_[node] = cube_.local_hll(node, c_.region);
    const auto& kids = cube_.tree_.children[node];
    for (std::size_t ci = 0; ci < kids.size(); ++ci) {
      if (cube_.dirty_.edge_fresh(node, ci, c_.child_epoch[node][ci])) {
        accum_[node].combine(c_.child_partial[node][ci]);
        if (want_hll_) {
          accum_hll_[node]->merge(*c_.child_hll[node][ci]).value();
        }
        ++cube_.stats_.cell_edges_skipped;
        continue;
      }
      BitWriter w;
      w.write_bit(true);
      net.send(sim::Message::make(node, kids[ci], session_, kRequestKind,
                                  std::move(w)));
      ++pending_[node];
      ++cube_.stats_.cell_edges_descended;
    }
    if (pending_[node] == 0) respond(net, node);
  }

  void respond(sim::Network& net, NodeId node) {
    if (node == cube_.tree_.root) return;  // root keeps the result
    BitWriter w;
    encode_bundle(w, accum_[node], c_.region.whole_domain);
    if (want_hll_) accum_hll_[node]->encode(w);
    net.send(sim::Message::make(node, cube_.tree_.parent[node], session_,
                                kResponseKind, std::move(w)));
  }

  Cube& cube_;
  CellState& c_;
  std::uint32_t epoch_;
  std::uint32_t session_;
  bool want_hll_;
  std::vector<std::uint32_t> pending_;
  std::vector<StatsBundle> accum_;
  std::vector<std::optional<sketch::Hll>> accum_hll_;
};

void Cube::refresh_cell(CellState& c, std::uint32_t epoch) {
  if (c.epoch == epoch) return;  // idempotent per epoch
  if (c.child_partial.empty()) {
    c.child_partial.resize(tree_.node_count());
    c.child_epoch.resize(tree_.node_count());
    c.child_hll.resize(tree_.node_count());
    for (NodeId u = 0; u < tree_.node_count(); ++u) {
      const std::size_t n = tree_.children[u].size();
      c.child_partial[u].resize(n);
      c.child_epoch[u].assign(n, DirtyTracker::kInvalidEpoch);
      c.child_hll[u].resize(n);
    }
  }
  const SimTime t0 = net_.now();
  RefreshWave wave(*this, c, epoch);
  wave.execute(net_);
  ++stats_.refresh_waves;
  obs::TraceRing& ring = obs::TraceRing::global();
  if (ring.enabled()) {
    ring.complete("cube.refresh", "service", t0, net_.now() - t0, 0, "epoch",
                  epoch, "lo", c.region.lo);
  }
  mirror_stats();
}

// ---- residue collection ---------------------------------------------------

class Cube::ResidueWave final : public sim::ProtocolHandler {
 public:
  ResidueWave(Cube& cube, const query::RegionSignature& region,
              std::uint32_t session, bool want_hll)
      : cube_(cube),
        region_(region),
        session_(session),
        want_hll_(want_hll),
        pending_(cube.tree_.node_count(), 0),
        accum_(cube.tree_.node_count()),
        accum_hll_(cube.tree_.node_count()) {}

  StatsBundle execute(sim::Network& net) {
    activate(net, cube_.tree_.root);
    net.run(*this);
    SENSORNET_EXPECTS(pending_[cube_.tree_.root] == 0);
    return accum_[cube_.tree_.root];
  }

  std::optional<sketch::Hll> take_root_hll() {
    return std::move(accum_hll_[cube_.tree_.root]);
  }

  void on_message(sim::Network& net, NodeId receiver,
                  const sim::Message& msg) override {
    SENSORNET_EXPECTS(msg.session == session_);
    if (msg.kind == kRequestKind) {
      activate(net, receiver);
      return;
    }
    SENSORNET_EXPECTS(msg.kind == kResponseKind);
    BitReader r = msg.reader();
    const StatsBundle child = decode_bundle(r, region_.whole_domain);
    accum_[receiver].combine(child);
    if (want_hll_) {
      const sketch::Hll h = sketch::Hll::decode(r).value();
      accum_hll_[receiver]->merge(h).value();
    }
    SENSORNET_EXPECTS(pending_[receiver] > 0);
    if (--pending_[receiver] == 0) respond(net, receiver);
  }

 private:
  void activate(sim::Network& net, NodeId node) {
    accum_[node] = cube_.local_bundle(node, region_);
    if (want_hll_) accum_hll_[node] = cube_.local_hll(node, region_);
    const auto& kids = cube_.tree_.children[node];
    for (std::size_t ci = 0; ci < kids.size(); ++ci) {
      if (cube_.subtree_provably_empty(node, ci, region_)) {
        ++cube_.stats_.residue_edges_pruned;
        continue;
      }
      // One-shot wave: the request carries the range (residues have no
      // installed group state to lean on).
      BitWriter w;
      encode_uint(w, static_cast<std::uint64_t>(region_.lo));
      encode_uint(w, static_cast<std::uint64_t>(region_.hi - region_.lo));
      w.write_bit(want_hll_);
      net.send(sim::Message::make(node, kids[ci], session_, kRequestKind,
                                  std::move(w)));
      ++pending_[node];
      ++cube_.stats_.residue_edges_descended;
    }
    if (pending_[node] == 0) respond(net, node);
  }

  void respond(sim::Network& net, NodeId node) {
    if (node == cube_.tree_.root) return;
    BitWriter w;
    encode_bundle(w, accum_[node], region_.whole_domain);
    if (want_hll_) accum_hll_[node]->encode(w);
    net.send(sim::Message::make(node, cube_.tree_.parent[node], session_,
                                kResponseKind, std::move(w)));
  }

  Cube& cube_;
  query::RegionSignature region_;
  std::uint32_t session_;
  bool want_hll_;
  std::vector<std::uint32_t> pending_;
  std::vector<StatsBundle> accum_;
  std::vector<std::optional<sketch::Hll>> accum_hll_;
};

StatsBundle Cube::collect_range(const query::RegionSignature& region,
                                std::optional<sketch::Hll>* hll) {
  const SimTime t0 = net_.now();
  ResidueWave wave(*this, region, next_residue_session_++, hll != nullptr);
  const StatsBundle b = wave.execute(net_);
  if (hll != nullptr) *hll = wave.take_root_hll();
  ++stats_.residue_waves;
  obs::TraceRing& ring = obs::TraceRing::global();
  if (ring.enabled()) {
    ring.complete("cube.residue", "service", t0, net_.now() - t0, 0, "lo",
                  region.lo, "hi", region.hi);
  }
  mirror_stats();
  return b;
}

// ---- geometry install -----------------------------------------------------

void Cube::ensure_geometry_installed() {
  if (geometry_installed_) return;
  geometry_installed_ = true;
  // Nodes must learn the grid (levels, margin) and, for distinct partials,
  // the sketch geometry — paid once, on first serve, metered like any bits.
  proto::TreeBroadcast install(
      tree_, kGeometrySession,
      [](sim::Network&, NodeId, BitReader) { /* geometry noted */ });
  BitWriter w;
  encode_uint(w, config_.levels);
  encode_uint(w, static_cast<std::uint64_t>(config_.horizon_epochs) *
                     static_cast<std::uint64_t>(config_.max_delta));
  encode_uint(w, config_.distinct_registers);
  if (config_.distinct_registers > 0) {
    encode_uint(w, hll_width_);
    encode_uint(w, kHllSalt);
  }
  install.execute(net_, std::move(w));
  ++stats_.geometry_installs;
  mirror_stats();
}

// ---- serving --------------------------------------------------------------

ServeResult Cube::serve(const query::CostedPlan& plan, std::uint32_t epoch) {
  ensure_geometry_installed();
  ServeResult out;
  const bool want_hll = plan.strategy == query::Strategy::kApproxDistinct;
  std::optional<sketch::Hll> merged;
  if (want_hll) {
    SENSORNET_EXPECTS(config_.distinct_registers > 0 &&
                      plan.registers == config_.distinct_registers);
    merged = empty_hll();
  }
  for (const query::PlanStep& step : plan.steps) {
    if (step.kind == query::StepKind::kCubeCell) {
      CellState& c = cell(step.cell);
      refresh_cell(c, epoch);
      out.bundle.combine(c.root);
      if (want_hll) merged->merge(*c.root_hll).value();
      ++out.cells_used;
    } else {
      std::optional<sketch::Hll> h;
      const StatsBundle b = collect_range(step.region, want_hll ? &h : nullptr);
      out.bundle.combine(b);
      if (want_hll) merged->merge(*h).value();
      ++out.residues_run;
    }
  }
  if (want_hll) {
    out.has_distinct = true;
    out.distinct_estimate = merged->estimate();
  }
  ++stats_.fresh_serves;
  mirror_stats();
  return out;
}

std::optional<BracketedAnswer> Cube::stale_bracket(
    const query::CostedPlan& plan, query::AggregateKind agg,
    std::uint32_t now_epoch) const {
  if (query::family(agg) != query::AggregateFamily::kStats) return std::nullopt;
  double count_lo = 0.0, count_hi = 0.0, sum_lo = 0.0, sum_hi = 0.0;
  bool defined = false, any_possible = false;
  double min_lo = 0.0, min_hi = 0.0, max_lo = 0.0, max_hi = 0.0;
  StatsBundle core;  // the answer's point value: the frozen composition
  for (const query::PlanStep& step : plan.steps) {
    if (step.kind != query::StepKind::kCubeCell) return std::nullopt;
    const CellState& c = cell(step.cell);
    if (c.epoch == DirtyTracker::kInvalidEpoch || now_epoch < c.epoch) {
      return std::nullopt;
    }
    const std::uint32_t staleness = now_epoch - c.epoch;
    if (!c.region.whole_domain && staleness > config_.horizon_epochs) {
      return std::nullopt;  // margins no longer bracket this cell
    }
    const double d = static_cast<double>(staleness) *
                     static_cast<double>(config_.max_delta);
    const BundleBracket br = bracket_bundle(
        c.root, c.region.whole_domain, d,
        static_cast<double>(c.region.lo), static_cast<double>(c.region.hi));
    count_lo += br.count_lo;
    count_hi += br.count_hi;
    sum_lo += br.sum_lo;
    sum_hi += br.sum_hi;
    if (br.any_possible) {
      // Any component could host the global MIN/MAX: outward rails widen.
      min_lo = any_possible ? std::min(min_lo, br.min_lo) : br.min_lo;
      max_hi = any_possible ? std::max(max_hi, br.max_hi) : br.max_hi;
      any_possible = true;
    }
    if (br.defined) {
      // A surely-present element bounds the global MIN from above (and MAX
      // from below) — take the tightest such witness across components.
      min_hi = defined ? std::min(min_hi, br.min_hi) : br.min_hi;
      max_lo = defined ? std::max(max_lo, br.max_lo) : br.max_lo;
      defined = true;
    }
    core.combine(c.root);
  }
  std::optional<BracketedAnswer> out;
  switch (agg) {
    case query::AggregateKind::kCount:
      out = make_answer(static_cast<double>(core.core.count), count_lo,
                        count_hi);
      break;
    case query::AggregateKind::kSum:
      out = make_answer(static_cast<double>(core.core.sum), sum_lo, sum_hi);
      break;
    case query::AggregateKind::kAvg: {
      if (core.core.count == 0 || count_lo <= 0.0) return std::nullopt;
      const double value = static_cast<double>(core.core.sum) /
                           static_cast<double>(core.core.count);
      out = make_answer(value, sum_lo / count_hi, sum_hi / count_lo);
      break;
    }
    case query::AggregateKind::kMin:
      if (core.core.count == 0 || !defined) return std::nullopt;
      out = make_answer(static_cast<double>(core.core.min), min_lo, min_hi);
      break;
    case query::AggregateKind::kMax:
      if (core.core.count == 0 || !defined) return std::nullopt;
      out = make_answer(static_cast<double>(core.core.max), max_lo, max_hi);
      break;
    default:
      return std::nullopt;
  }
  ++stats_.stale_serves;
  mirror_stats();
  return out;
}

// ---- cost model -----------------------------------------------------------

std::uint64_t Cube::edge_cost_bits(bool whole_domain,
                                   bool carries_region) const {
  // Request: header + 1 descend bit, or header + an encoded range for the
  // one-shot residue waves. Response: header + a typical bundle image (one
  // RangeStats for whole-domain collections, three with margins otherwise)
  // + a sparse-ish HLL image when the cube maintains distinct partials.
  std::uint64_t request = sim::kHeaderBits + (carries_region ? 24 : 1);
  std::uint64_t response =
      sim::kHeaderBits + (whole_domain ? std::uint64_t{48} : std::uint64_t{144});
  if (config_.distinct_registers > 0) {
    response += 2 * config_.distinct_registers;
  }
  return request + response;
}

std::uint64_t Cube::count_stale_edges(const CellState& c, NodeId node) const {
  std::uint64_t edges = 0;
  const auto& kids = tree_.children[node];
  for (std::size_t ci = 0; ci < kids.size(); ++ci) {
    const std::uint32_t have = c.child_partial.empty()
                                   ? DirtyTracker::kInvalidEpoch
                                   : c.child_epoch[node][ci];
    if (dirty_.edge_fresh(node, ci, have)) continue;
    edges += 1 + count_stale_edges(c, kids[ci]);
  }
  return edges;
}

std::uint64_t Cube::count_residue_edges(
    NodeId node, const query::RegionSignature& region) const {
  std::uint64_t edges = 0;
  const auto& kids = tree_.children[node];
  for (std::size_t ci = 0; ci < kids.size(); ++ci) {
    if (subtree_provably_empty(node, ci, region)) continue;
    edges += 1 + count_residue_edges(kids[ci], region);
  }
  return edges;
}

std::uint64_t Cube::cell_refresh_bits(query::CubeCellRef ref) const {
  const CellState& c = cell(ref);
  return count_stale_edges(c, tree_.root) *
         edge_cost_bits(c.region.whole_domain, /*carries_region=*/false);
}

std::uint64_t Cube::residue_collect_bits(
    const query::RegionSignature& region) const {
  return count_residue_edges(tree_.root, region) *
         edge_cost_bits(region.whole_domain, /*carries_region=*/true);
}

std::uint64_t Cube::tree_collect_bits(
    const query::RegionSignature& region) const {
  // The no-cube alternative: every edge descends and responds.
  return static_cast<std::uint64_t>(tree_.node_count() - 1) *
         edge_cost_bits(region.whole_domain, /*carries_region=*/true);
}

void Cube::mirror_stats() const { mirror_cube_stats(stats_); }

}  // namespace sensornet::cube
