#include "src/cube/stats.hpp"

#include <algorithm>

#include "src/common/codec.hpp"

namespace sensornet::cube {

void RangeStats::observe(Value v) {
  if (count == 0) {
    min = max = v;
  } else {
    min = std::min(min, v);
    max = std::max(max, v);
  }
  count += 1;
  sum += static_cast<std::uint64_t>(v);
}

void RangeStats::combine(const RangeStats& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
}

void StatsBundle::combine(const StatsBundle& other) {
  core.combine(other.core);
  inner.combine(other.inner);
  outer.combine(other.outer);
}

void encode_range_stats(BitWriter& w, const RangeStats& rs) {
  encode_uint(w, rs.count);
  if (rs.count == 0) return;
  encode_uint(w, rs.sum);
  encode_uint(w, static_cast<std::uint64_t>(rs.min));
  encode_uint(w, static_cast<std::uint64_t>(rs.max - rs.min));
}

RangeStats decode_range_stats(BitReader& r) {
  RangeStats rs;
  rs.count = decode_uint(r);
  if (rs.count == 0) return rs;
  rs.sum = decode_uint(r);
  rs.min = static_cast<Value>(decode_uint(r));
  rs.max = rs.min + static_cast<Value>(decode_uint(r));
  return rs;
}

BundleBracket bracket_bundle(const StatsBundle& b, bool whole_domain,
                             double drift, double region_lo,
                             double region_hi) {
  BundleBracket out;
  const double d = drift;
  if (whole_domain) {
    // Membership is static: values cannot leave [0, bound], so the count is
    // exact forever and values drift in place.
    const auto count = static_cast<double>(b.core.count);
    out.count_lo = out.count_hi = count;
    out.sum_lo = std::max(0.0, static_cast<double>(b.core.sum) - count * d);
    out.sum_hi = static_cast<double>(b.core.sum) + count * d;
    out.defined = b.core.count > 0;
    out.any_possible = b.core.count > 0;
    if (out.defined) {
      out.min_lo = std::max(region_lo, static_cast<double>(b.core.min) - d);
      out.min_hi = std::min(region_hi, static_cast<double>(b.core.min) + d);
      out.max_lo = std::max(region_lo, static_cast<double>(b.core.max) - d);
      out.max_hi = std::min(region_hi, static_cast<double>(b.core.max) + d);
    }
    return out;
  }
  out.count_lo = static_cast<double>(b.inner.count);
  out.count_hi = static_cast<double>(b.outer.count);
  out.sum_lo = std::max(0.0, static_cast<double>(b.inner.sum) -
                                 static_cast<double>(b.inner.count) * d);
  out.sum_hi = static_cast<double>(b.outer.sum) +
               static_cast<double>(b.outer.count) * d;
  out.defined = b.inner.count > 0;
  out.any_possible = b.outer.count > 0;
  if (out.defined) {
    // Both rails clamped to the region: a range MIN/MAX can never leave its
    // own range, whatever the drift.
    out.min_lo = std::max(region_lo, static_cast<double>(b.outer.min) - d);
    out.min_hi = std::min(region_hi, static_cast<double>(b.inner.min) + d);
    out.max_lo = std::max(region_lo, static_cast<double>(b.inner.max) - d);
    out.max_hi = std::min(region_hi, static_cast<double>(b.outer.max) + d);
  } else if (out.any_possible) {
    // No element surely inside, but some may be: only the outward rails are
    // known. A composed MIN can still use min_lo as its lower rail.
    out.min_lo = std::max(region_lo, static_cast<double>(b.outer.min) - d);
    out.max_hi = std::min(region_hi, static_cast<double>(b.outer.max) + d);
  }
  return out;
}

BracketedAnswer make_answer(double value, double lo, double hi) {
  BracketedAnswer a;
  a.value = value;
  a.bound = std::max({value - lo, hi - value, 0.0});
  a.exact = a.bound == 0.0;
  return a;
}

}  // namespace sensornet::cube
