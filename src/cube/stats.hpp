// Range-statistics primitives shared by the multiresolution cube, the
// shared-plan scheduler, and the result cache.
//
// A RangeStats is COUNT/SUM/MIN/MAX over one value range; a StatsBundle is
// the PASS-style triple of those over a core region and its margin-shrunk
// ("inner") / margin-grown ("outer") companions. Under the drift model — a
// reading moves by at most max_delta per epoch — a bundle frozen at epoch t
// still brackets the current aggregate at epoch t + s with d = s * max_delta:
//
//   COUNT in [inner.count, outer.count]
//   SUM   in [max(0, inner.sum - inner.count*d), outer.sum + outer.count*d]
//   MIN   in [max(lo, outer.min - d), min(hi, inner.min + d)]
//   MAX   in [max(lo, inner.max - d), min(hi, outer.max + d)]
//
// where [lo, hi] is the region itself (a range aggregate can never leave its
// own range — both MIN/MAX rails are clamped; the pre-PR 10 result cache
// clamped only one side of each). bracket_bundle() is the one home of this
// arithmetic: the result cache applies it to a whole cached bundle, the cube
// applies it per cell and composes the intervals.
#pragma once

#include <cstdint>

#include "src/common/bitio.hpp"
#include "src/common/types.hpp"

namespace sensornet::cube {

/// COUNT/SUM/MIN/MAX over one value range. min/max are meaningful only when
/// count > 0.
struct RangeStats {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  Value min = 0;
  Value max = 0;

  void observe(Value v);
  void combine(const RangeStats& other);

  bool operator==(const RangeStats&) const = default;
};

/// One collection's result: stats over the core region and its margin-shrunk
/// / margin-grown companions (inner is a subset of core is a subset of outer).
struct StatsBundle {
  RangeStats core;
  RangeStats inner;
  RangeStats outer;

  /// Componentwise combine. Exact for disjoint core regions; for outer
  /// regions of adjacent components the overlap only overcounts count/sum,
  /// which keeps every derived upper bound sound.
  void combine(const StatsBundle& other);

  bool operator==(const StatsBundle&) const = default;
};

/// Wire codec shared by every stats-carrying wave (scheduler collections,
/// cube cell refreshes, residue collections): count, then sum/min/(max-min)
/// only when the range is non-empty.
void encode_range_stats(BitWriter& w, const RangeStats& rs);
RangeStats decode_range_stats(BitReader& r);

/// Deterministic drift intervals derived from one bundle at drift d (see
/// file comment). `defined` gates the MIN/MAX rails on a non-empty inner
/// region (an element that surely stayed inside); `any_possible` is false
/// when even the outer region is empty — nothing can be inside the region
/// now, so the component contributes nothing to a composed MIN/MAX.
struct BundleBracket {
  double count_lo = 0.0, count_hi = 0.0;
  double sum_lo = 0.0, sum_hi = 0.0;
  bool defined = false;  // inner non-empty: MIN/MAX rails valid
  bool any_possible = false;  // outer non-empty
  double min_lo = 0.0, min_hi = 0.0;
  double max_lo = 0.0, max_hi = 0.0;
};

/// `region_lo`/`region_hi` are the clamp rails of the bundle's own region
/// (for whole-domain bundles: 0 and the model's value bound). `whole_domain`
/// collapses the margins: membership is static, so COUNT is exact at any
/// drift and MIN/MAX drift around the core values.
BundleBracket bracket_bundle(const StatsBundle& b, bool whole_domain,
                             double drift, double region_lo,
                             double region_hi);

/// A bracketed answer: |value - exact_now| <= bound, deterministically.
struct BracketedAnswer {
  double value = 0.0;
  double bound = 0.0;
  bool exact = false;  // bound == 0
};

/// Collapses an interval around a point answer (bound = max distance to
/// either rail, floored at zero).
BracketedAnswer make_answer(double value, double lo, double hi);

}  // namespace sensornet::cube
