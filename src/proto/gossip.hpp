// Push-sum gossip counting (Kempe-Dobra-Gehrke [6], the paper's randomized
// point of comparison: exact order statistics by gossip at O((log N)^3) bits
// per node on well-mixing graphs).
//
// Push-sum computes an average: every node u holds a pair (value_u,
// weight_u); each round it keeps half and pushes half to a uniformly random
// neighbor. value/weight converges to sum(value)/sum(weight) at every node
// at a rate governed by the graph's mixing time. Seeding value_u = 1
// everywhere and weight_root = 1 (0 elsewhere) makes value/weight -> N:
// distributed COUNT with no tree at all.
//
// Wire format: two 32-bit fixed-point numbers per push — the per-round
// per-node cost is O(1) words, so rounds ~ mixing time gives the [6]
// polylog total on expanders (and visibly worse convergence on lines, which
// the tests check).
#pragma once

#include <cstdint>
#include <vector>

#include "src/sim/network.hpp"

namespace sensornet::proto {

struct GossipCountResult {
  /// The root's estimate of N after the final round.
  double root_estimate = 0.0;
  /// Relative spread of node estimates in the final round (max/min - 1),
  /// a convergence diagnostic: ~0 once mixed.
  double disagreement = 0.0;
  unsigned rounds = 0;
};

/// Runs `rounds` synchronous push-sum rounds. Each node pushes to one
/// uniformly random neighbor per round (using its own random stream).
GossipCountResult gossip_count(sim::Network& net, NodeId root,
                               unsigned rounds);

}  // namespace sensornet::proto
