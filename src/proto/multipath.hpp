// Multipath ("synopsis diffusion") aggregation — the robustness alternative
// the paper points at ([2], [10]; Section 2.2: with duplicate-insensitive
// state "the requirement for a spanning tree is not necessary").
//
// Nodes are organized into rings by hop distance from the root. Aggregation
// sweeps ring by ring: every node in ring d transmits its merged register
// state to ALL its neighbors in ring d-1. Because the state is an ODI
// (order- and duplicate-insensitive) max-register array, receiving the same
// contribution over several paths is harmless — so a lost message only hurts
// if *every* path carrying that contribution is lost. Contrast with a tree
// wave, where one lost response silently deletes an entire subtree (and our
// TreeWave driver detects the stall and throws).
//
// Cost: each node sends its registers once per downhill neighbor — the
// multipath redundancy multiplies Fact 2.2's per-node bits by the downhill
// degree, which is the price of robustness.
#pragma once

#include <cstdint>

#include "src/proto/aggregations.hpp"
#include "src/proto/item_view.hpp"
#include "src/sim/network.hpp"
#include "src/sketch/hll.hpp"

namespace sensornet::proto {

/// Move-only (the sketch inside is move-only).
struct MultipathResult {
  sketch::Hll registers;
  /// Nodes whose contribution reached the root through >= 1 path. With no
  /// loss this equals the node count; under loss it measures coverage.
  std::size_t covered_nodes = 0;
};

/// One ODI aggregation sweep over the ring structure rooted at `root`.
/// The request's predicate/mode/salt semantics match LogLogAgg. Rings are
/// derived from the current graph by BFS (standard "ring formation" phase);
/// the sweep itself uses raw flooding, no tree.
MultipathResult multipath_loglog_sweep(sim::Network& net, NodeId root,
                                       const LogLogAgg::Request& request,
                                       const LocalItemView& view =
                                           raw_item_view());

}  // namespace sensornet::proto
