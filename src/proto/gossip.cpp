#include "src/proto/gossip.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/error.hpp"

namespace sensornet::proto {

namespace {

/// 32-bit fixed point with 20 fractional bits: values up to ~2000 with
/// ~1e-6 resolution — enough headroom for (value, weight) pairs, whose
/// magnitudes stay within [0, 2] after the first round (mass conservation).
constexpr unsigned kFracBits = 20;

std::uint32_t to_fixed(double v) {
  return static_cast<std::uint32_t>(
      std::llround(std::clamp(v, 0.0, 2047.0) * (1u << kFracBits)));
}

double from_fixed(std::uint32_t v) {
  return static_cast<double>(v) / (1u << kFracBits);
}

struct PushSumState {
  std::vector<double> value;
  std::vector<double> weight;
};

class PushHandler final : public sim::ProtocolHandler {
 public:
  explicit PushHandler(PushSumState& state) : state_(state) {}

  void on_message(sim::Network&, NodeId receiver,
                  const sim::Message& msg) override {
    BitReader r = msg.reader();
    state_.value[receiver] += from_fixed(
        static_cast<std::uint32_t>(r.read_bits(32)));
    state_.weight[receiver] += from_fixed(
        static_cast<std::uint32_t>(r.read_bits(32)));
  }

 private:
  PushSumState& state_;
};

}  // namespace

GossipCountResult gossip_count(sim::Network& net, NodeId root,
                               unsigned rounds) {
  SENSORNET_EXPECTS(root < net.node_count());
  SENSORNET_EXPECTS(rounds >= 1);
  // Fixed-point headroom: a node's value can approach N, which must fit in
  // the 12 integer bits of the wire format.
  SENSORNET_EXPECTS(net.node_count() <= 2000);
  const std::size_t n = net.node_count();

  PushSumState state;
  state.value.assign(n, 1.0);   // each node contributes one unit of count
  state.weight.assign(n, 0.0);  // all weight starts at the root
  state.weight[root] = 1.0;

  PushHandler handler(state);
  for (unsigned round = 0; round < rounds; ++round) {
    // Synchronous round: every node halves its mass and pushes one share to
    // a random neighbor. Sends are enqueued against the pre-round state
    // (the halving happens locally first, which conserves mass exactly up
    // to fixed-point rounding).
    for (NodeId u = 0; u < n; ++u) {
      const auto& neighbors = net.graph().neighbors(u);
      if (neighbors.empty()) continue;
      const NodeId target = neighbors[net.rng(u).next_below(neighbors.size())];
      // Transmit the quantized half and keep the exact remainder, so mass
      // is conserved bit-for-bit despite the fixed-point wire format.
      const std::uint32_t v_wire = to_fixed(state.value[u] / 2.0);
      const std::uint32_t w_wire = to_fixed(state.weight[u] / 2.0);
      state.value[u] -= from_fixed(v_wire);
      state.weight[u] -= from_fixed(w_wire);
      BitWriter w;
      w.write_bits(v_wire, 32);
      w.write_bits(w_wire, 32);
      net.send(sim::Message::make(u, target, /*session=*/0x6100 + round,
                                  /*kind=*/1, std::move(w)));
    }
    net.run(handler);
  }

  GossipCountResult res;
  res.rounds = rounds;
  const auto estimate = [&](NodeId u) {
    return state.weight[u] > 1e-12 ? state.value[u] / state.weight[u] : 0.0;
  };
  res.root_estimate = estimate(root);
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  for (NodeId u = 0; u < n; ++u) {
    const double e = estimate(u);
    if (e <= 0.0) continue;  // weight hasn't reached this node yet
    lo = std::min(lo, e);
    hi = std::max(hi, e);
  }
  res.disagreement = (lo > 0.0 && hi > 0.0) ? hi / lo - 1.0 : 1e9;
  return res;
}

}  // namespace sensornet::proto
