// Root-to-all dissemination over the spanning tree.
//
// Fig. 4 line 3.1 broadcasts the intermediate result mu-hat so every node can
// locally decide whether it stays active and how to rescale (lines 3.2-3.3).
// The payload is applied through a callback *at each node as the message
// arrives* — session state is only ever installed by bits that traveled.
#pragma once

#include <functional>

#include "src/net/spanning_tree.hpp"
#include "src/sim/network.hpp"

namespace sensornet::proto {

class TreeBroadcast final : public sim::ProtocolHandler {
 public:
  /// Called once per node with a reader over the broadcast payload.
  using Apply =
      std::function<void(sim::Network&, NodeId, BitReader)>;

  TreeBroadcast(const net::SpanningTree& tree, std::uint32_t session,
                Apply apply);

  /// Floods the payload down the tree (applying it at the root without any
  /// wire cost) and runs the network to quiescence.
  void execute(sim::Network& net, BitWriter&& payload);

  void on_message(sim::Network& net, NodeId receiver,
                  const sim::Message& msg) override;

 private:
  static constexpr std::uint16_t kBroadcastKind = 3;

  /// Forwards one shared payload slab to every child — the fan-out copies
  /// only bump a refcount.
  void forward(sim::Network& net, NodeId node, const sim::Payload& payload,
               std::uint32_t payload_bits);

  const net::SpanningTree& tree_;
  std::uint32_t session_;
  Apply apply_;
};

}  // namespace sensornet::proto
