// Single-hop ("all hear all") counting, the model of Singh & Prasanna [14].
//
// The deployment is a complete graph with a shared radio medium: one
// transmission is heard — and paid for — by every node. COUNTP costs each
// non-root node a single transmitted presence bit while every node receives
// ~N bits; driving a value-domain binary search over this service reproduces
// [14]'s profile (transmit O(log N), receive O(N log N) per node).
#pragma once

#include <cstdint>

#include "src/proto/counting_service.hpp"
#include "src/sim/network.hpp"

namespace sensornet::proto {

class SingleHopCountingService final : public CountingService,
                                       private sim::ProtocolHandler {
 public:
  /// `net` must be a complete graph. `max_value_bound` is the known upper
  /// bound X on item values (used by min/max binary searches). Every node
  /// must hold at most one item (the [14] model).
  SingleHopCountingService(sim::Network& net, NodeId root,
                           Value max_value_bound);

  std::uint64_t count(const Predicate& pred) override;
  std::optional<Value> min_value() override;
  std::optional<Value> max_value() override;
  sim::Network& network() override { return net_; }

  /// Slotted rounds executed so far (one per COUNTP).
  std::uint32_t rounds() const { return next_session_; }

 private:
  void on_message(sim::Network& net, NodeId receiver,
                  const sim::Message& msg) override;

  static constexpr std::uint16_t kRequestKind = 1;
  static constexpr std::uint16_t kPresenceKind = 2;

  sim::Network& net_;
  NodeId root_;
  Value max_value_bound_;
  std::uint32_t next_session_ = 0;
  std::uint64_t tally_ = 0;  // presence bits summed at the root
};

}  // namespace sensornet::proto
