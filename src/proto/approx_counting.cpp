#include "src/proto/approx_counting.hpp"

#include "src/common/error.hpp"
#include "src/proto/tree_wave.hpp"
#include "src/sketch/hll.hpp"

namespace sensornet::proto {

TreeApproxCountingService::TreeApproxCountingService(
    sim::Network& net, const net::SpanningTree& tree, ApxCountConfig config,
    const LocalItemView& view)
    : net_(net), tree_(tree), view_(view), config_(config) {
  SENSORNET_EXPECTS(config_.registers >= 16 &&
                    (config_.registers & (config_.registers - 1)) == 0);
  // A register must hold ranks from up to ~N items per node * N nodes; the
  // node count bounds total observations for singleton inputs, and the +16
  // slack inside packed_width_for absorbs multi-item nodes. The width is
  // rounded to a packable dense width (4/5/6/8) for sketch::Hll.
  width_ = static_cast<std::uint8_t>(sketch::packed_width_for(
      static_cast<std::uint64_t>(net.node_count()) + 1));
}

double TreeApproxCountingService::apx_count(const Predicate& pred) {
  LogLogAgg::Request req;
  req.pred = pred;
  req.registers = static_cast<std::uint16_t>(config_.registers);
  req.width = width_;
  req.mode = config_.mode;
  req.salt = next_salt_++;
  if (next_salt_ == 0) next_salt_ = 1;

  TreeWave<LogLogAgg> wave(tree_, next_session_++, view_);
  const sketch::Hll hll = wave.execute(net_, req);
  switch (config_.estimator) {
    case EstimatorKind::kLogLog:
      return hll.estimate_loglog();
    case EstimatorKind::kHyperLogLog:
      return hll.estimate();
  }
  throw ProtocolError("unknown estimator kind");
}

double TreeApproxCountingService::sigma() const {
  switch (config_.estimator) {
    case EstimatorKind::kLogLog:
      return sketch::loglog_sigma(config_.registers);
    case EstimatorKind::kHyperLogLog:
      return sketch::hyperloglog_sigma(config_.registers);
  }
  throw ProtocolError("unknown estimator kind");
}

double rep_countp(ApproxCountingService& svc, unsigned repetitions,
                  const Predicate& pred) {
  SENSORNET_EXPECTS(repetitions >= 1);
  double sum = 0.0;
  for (unsigned i = 0; i < repetitions; ++i) {
    sum += svc.apx_count(pred);
  }
  return sum / static_cast<double>(repetitions);
}

}  // namespace sensornet::proto
