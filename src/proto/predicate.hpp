// Locally computable predicates, shipped inside COUNTP requests.
//
// Section 3.1 requires that a predicate be representable in O(C_COUNT(N))
// bits; ours is an opcode plus one Elias-delta coded threshold. Thresholds
// live in the *doubled domain* (threshold2 == 2y) so the half-integral pivots
// of Fig. 1 ("y is an integer or an integer + 1/2") are encoded exactly.
#pragma once

#include <cstdint>
#include <string>

#include "src/common/bitio.hpp"
#include "src/common/types.hpp"

namespace sensornet::proto {

class Predicate {
 public:
  enum class Op : std::uint8_t {
    kTrue = 0,       // satisfied by every item (COUNTP(TRUE) == COUNT)
    kLess = 1,       // x < threshold2 / 2
    kGreaterEq = 2,  // x >= threshold2 / 2
  };

  /// The always-true predicate.
  static Predicate always_true();

  /// x < y for integral y.
  static Predicate less_than(Value y);

  /// x < t/2 where t = twice the (possibly half-integral) bound; this is the
  /// exact form Fig. 1's binary search needs.
  static Predicate less_than_half_units(std::int64_t threshold2);

  /// x >= y for integral y.
  static Predicate greater_equal(Value y);

  bool matches(Value x) const;

  Op op() const { return op_; }
  std::int64_t threshold2() const { return threshold2_; }

  /// Wire format: 2-bit opcode [+ Elias-delta threshold].
  void encode(BitWriter& w) const;
  static Predicate decode(BitReader& r);

  std::string to_string() const;

  bool operator==(const Predicate&) const = default;

 private:
  Predicate(Op op, std::int64_t threshold2) : op_(op), threshold2_(threshold2) {}

  Op op_ = Op::kTrue;
  std::int64_t threshold2_ = 0;
};

}  // namespace sensornet::proto
