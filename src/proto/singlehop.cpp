#include "src/proto/singlehop.hpp"

#include "src/common/error.hpp"

namespace sensornet::proto {

SingleHopCountingService::SingleHopCountingService(sim::Network& net,
                                                   NodeId root,
                                                   Value max_value_bound)
    : net_(net), root_(root), max_value_bound_(max_value_bound) {
  SENSORNET_EXPECTS(root < net.node_count());
  SENSORNET_EXPECTS(max_value_bound >= 0);
  for (NodeId u = 0; u < net.node_count(); ++u) {
    SENSORNET_EXPECTS(net.items(u).size() <= 1);
  }
}

std::uint64_t SingleHopCountingService::count(const Predicate& pred) {
  const std::uint32_t session = next_session_++;
  tally_ = 0;
  // Root's own item is tallied locally, without radio traffic.
  for (const Value x : net_.items(root_)) {
    if (pred.matches(x)) ++tally_;
  }
  if (net_.node_count() > 1) {
    BitWriter w;
    pred.encode(w);
    net_.send_medium(sim::Message::make(root_, kNoNode, session, kRequestKind,
                                        std::move(w)));
    net_.run(*this);
  }
  return tally_;
}

void SingleHopCountingService::on_message(sim::Network& net, NodeId receiver,
                                          const sim::Message& msg) {
  if (msg.kind == kRequestKind) {
    if (receiver == root_) return;  // root ignores echoes of its own request
    BitReader r = msg.reader();
    const Predicate pred = Predicate::decode(r);
    bool present = false;
    for (const Value x : net.items(receiver)) {
      if (pred.matches(x)) present = true;
    }
    // One slot, one bit — heard (and paid for) by everyone.
    BitWriter w;
    w.write_bit(present);
    net.send_medium(sim::Message::make(receiver, kNoNode, msg.session,
                                       kPresenceKind, std::move(w)));
  } else if (msg.kind == kPresenceKind) {
    if (receiver != root_) return;  // other nodes overhear but don't act
    BitReader r = msg.reader();
    if (r.read_bit()) ++tally_;
  } else {
    throw ProtocolError("SingleHopCountingService: unknown message kind");
  }
}

std::optional<Value> SingleHopCountingService::min_value() {
  if (count_all() == 0) return std::nullopt;
  // Smallest y with count(x < y+1) >= 1, by binary search over [0, X].
  Value lo = 0;
  Value hi = max_value_bound_;
  while (lo < hi) {
    const Value mid = lo + (hi - lo) / 2;
    if (count(Predicate::less_than(mid + 1)) >= 1) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

std::optional<Value> SingleHopCountingService::max_value() {
  const std::uint64_t n = count_all();
  if (n == 0) return std::nullopt;
  // Largest y with count(x < y) < n, i.e. some item >= y; binary search.
  Value lo = 0;
  Value hi = max_value_bound_;
  while (lo < hi) {
    const Value mid = lo + (hi - lo + 1) / 2;
    if (count(Predicate::less_than(mid)) < n) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

}  // namespace sensornet::proto
