// Approximate counting (Fact 2.2) as an abstract alpha-counting service.
//
// One invocation runs a LogLog register wave: every node folds a geometric
// sample per matching item into m registers of O(log log N) bits, registers
// aggregate by elementwise max up the tree, the root applies the estimator.
// Definition 2.1's (alpha, sigma^2) parameters are exposed so the Fig. 2/4
// drivers can derive their decision thresholds from the service they're
// given rather than from baked-in constants.
#pragma once

#include <cstdint>

#include "src/net/spanning_tree.hpp"
#include "src/proto/aggregations.hpp"
#include "src/proto/item_view.hpp"
#include "src/proto/predicate.hpp"
#include "src/sim/network.hpp"

namespace sensornet::proto {

enum class EstimatorKind {
  kLogLog,       // Durand-Flajolet geometric-mean (the Fact 2.2 citation)
  kHyperLogLog,  // harmonic-mean + small-range correction (better constants)
};

struct ApxCountConfig {
  /// Number of registers m (power of two). sigma ~ 1.3/sqrt(m) (LogLog) or
  /// ~1.04/sqrt(m) (HLL).
  unsigned registers = 64;
  EstimatorKind estimator = EstimatorKind::kHyperLogLog;
  /// kRandom counts observations; kHashed counts distinct values.
  LogLogAgg::Mode mode = LogLogAgg::Mode::kRandom;
};

class ApproxCountingService {
 public:
  virtual ~ApproxCountingService() = default;

  /// One APX_COUNT(P) invocation: an unbiased-up-to-alpha estimate of
  /// |{x : P(x)}|.
  virtual double apx_count(const Predicate& pred) = 0;

  /// Relative standard deviation of a single invocation (Def 2.1's sigma).
  virtual double sigma() const = 0;

  /// Relative bias bound (Def 2.1's alpha). The theorems need
  /// alpha_c < sigma/2; we report sigma/4 as a defensive modeling bound
  /// (the asymptotic bias of the estimators is far smaller).
  virtual double alpha_c() const = 0;

  virtual sim::Network& network() = 0;
};

class TreeApproxCountingService final : public ApproxCountingService {
 public:
  TreeApproxCountingService(sim::Network& net, const net::SpanningTree& tree,
                            ApxCountConfig config,
                            const LocalItemView& view = raw_item_view());

  double apx_count(const Predicate& pred) override;
  double sigma() const override;
  double alpha_c() const override { return sigma() / 4.0; }
  sim::Network& network() override { return net_; }

  /// Waves issued so far.
  std::uint32_t waves() const { return next_session_; }

  const ApxCountConfig& config() const { return config_; }

 private:
  sim::Network& net_;
  const net::SpanningTree& tree_;
  const LocalItemView& view_;
  ApxCountConfig config_;
  std::uint8_t width_;
  std::uint32_t next_session_ = 0;
  std::uint16_t next_salt_ = 1;
};

/// Fig. 2's REP_COUNTP subroutine: average of `repetitions` independent
/// APX_COUNT(P) invocations. The averaged estimate has variance sigma^2/r
/// (Lemma 4.1).
double rep_countp(ApproxCountingService& svc, unsigned repetitions,
                  const Predicate& pred);

}  // namespace sensornet::proto
