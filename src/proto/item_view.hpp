// Which items a protocol sees at each node.
//
// Plain queries aggregate the node's raw readings. Multi-stage algorithms
// (Fig. 4) maintain node-local *session* state — rescaled values, passive
// flags — and their waves must evaluate predicates against that state. A
// LocalItemView abstracts the choice; it only ever exposes state that is
// physically resident at the node (session state is installed by broadcast
// handlers, never by root-side fiat), so the bit meter stays honest.
#pragma once

#include "src/common/types.hpp"
#include "src/sim/network.hpp"

namespace sensornet::proto {

class LocalItemView {
 public:
  virtual ~LocalItemView() = default;

  /// The items protocol waves should aggregate at `node`.
  virtual ValueSet items(sim::Network& net, NodeId node) const {
    const auto view = net.items(node);  // span into the shared item slab
    return ValueSet(view.begin(), view.end());
  }
};

/// The default view: the node's raw readings.
const LocalItemView& raw_item_view();

}  // namespace sensornet::proto
