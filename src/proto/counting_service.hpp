// Exact counting primitives as an abstract service.
//
// The paper's algorithms are "completely indifferent to the underlying
// communication mechanism": they only assume protocols for MIN, MAX and
// COUNT(P) exist (Section 2.2). CountingService is that assumption as an
// interface; the median drivers in src/core are written against it, and the
// tree and single-hop implementations plug in underneath.
#pragma once

#include <cstdint>
#include <optional>

#include "src/common/types.hpp"
#include "src/net/spanning_tree.hpp"
#include "src/proto/item_view.hpp"
#include "src/proto/predicate.hpp"
#include "src/sim/network.hpp"

namespace sensornet::proto {

class CountingService {
 public:
  virtual ~CountingService() = default;

  /// Exact number of items satisfying `pred` (one COUNTP invocation).
  virtual std::uint64_t count(const Predicate& pred) = 0;

  /// Smallest / largest item (empty when no node holds an item).
  virtual std::optional<Value> min_value() = 0;
  virtual std::optional<Value> max_value() = 0;

  /// The network the service runs on (for accounting).
  virtual sim::Network& network() = 0;

  /// COUNT(X) == COUNTP(TRUE).
  std::uint64_t count_all() { return count(Predicate::always_true()); }
};

/// Fact 2.1's implementation: one broadcast-convergecast wave per query over
/// a spanning tree.
class TreeCountingService final : public CountingService {
 public:
  /// `tree` and `view` must outlive the service.
  TreeCountingService(sim::Network& net, const net::SpanningTree& tree,
                      const LocalItemView& view = raw_item_view());

  std::uint64_t count(const Predicate& pred) override;
  std::optional<Value> min_value() override;
  std::optional<Value> max_value() override;
  sim::Network& network() override { return net_; }

  /// Waves issued so far (each costs one session id).
  std::uint32_t waves() const { return next_session_; }

 private:
  sim::Network& net_;
  const net::SpanningTree& tree_;
  const LocalItemView& view_;
  std::uint32_t next_session_ = 0;
};

}  // namespace sensornet::proto
