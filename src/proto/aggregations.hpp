// Aggregation specs for the tree-wave engine.
//
// Each spec defines the request parameters a wave ships downtree, the
// partial-aggregate state that flows uptree, exact wire codecs for both, the
// node-local contribution, and the (associative, commutative) combine step.
// Together with TreeWave<Spec> this is the paper's broadcast-convergecast
// toolbox: MIN / MAX / COUNT / SUM (Fact 2.1), COUNTP (Section 3.1), LogLog
// register aggregation (Fact 2.2), and the heavyweight collect / distinct-set
// partials used by baselines and by exact COUNT_DISTINCT (Section 5).
#pragma once

#include <cstdint>
#include <optional>

#include "src/common/bitio.hpp"
#include "src/common/types.hpp"
#include "src/proto/item_view.hpp"
#include "src/proto/predicate.hpp"
#include "src/sim/network.hpp"
#include "src/sketch/hll.hpp"

namespace sensornet::proto {

// ---------------------------------------------------------------------------
// COUNTP: number of items satisfying a predicate (Fact 2.1 / Section 3.1).
// ---------------------------------------------------------------------------
struct CountAgg {
  struct Request {
    Predicate pred = Predicate::always_true();
  };
  using Partial = std::uint64_t;

  static void encode_request(BitWriter& w, const Request& req);
  static Request decode_request(BitReader& r);
  static void encode_partial(BitWriter& w, const Partial& p, const Request&);
  static Partial decode_partial(BitReader& r, const Request&);
  static Partial local(sim::Network& net, NodeId node, const Request& req,
                       const LocalItemView& view);
  static void combine(Partial& acc, const Partial& in, const Request&);
};

// ---------------------------------------------------------------------------
// SUMP: sum of items satisfying a predicate (with COUNT this gives AVERAGE).
// ---------------------------------------------------------------------------
struct SumAgg {
  struct Request {
    Predicate pred = Predicate::always_true();
  };
  using Partial = std::uint64_t;

  static void encode_request(BitWriter& w, const Request& req);
  static Request decode_request(BitReader& r);
  static void encode_partial(BitWriter& w, const Partial& p, const Request&);
  static Partial decode_partial(BitReader& r, const Request&);
  static Partial local(sim::Network& net, NodeId node, const Request& req,
                       const LocalItemView& view);
  static void combine(Partial& acc, const Partial& in, const Request&);
};

// ---------------------------------------------------------------------------
// MIN / MAX over items satisfying a predicate. The partial is empty when the
// subtree holds no matching item (passive subtrees in Fig. 4).
// ---------------------------------------------------------------------------
namespace detail {
struct ExtremeAggBase {
  struct Request {
    Predicate pred = Predicate::always_true();
  };
  using Partial = std::optional<Value>;

  static void encode_request(BitWriter& w, const Request& req);
  static Request decode_request(BitReader& r);
  static void encode_partial(BitWriter& w, const Partial& p, const Request&);
  static Partial decode_partial(BitReader& r, const Request&);
};
}  // namespace detail

struct MinAgg : detail::ExtremeAggBase {
  static Partial local(sim::Network& net, NodeId node, const Request& req,
                       const LocalItemView& view);
  static void combine(Partial& acc, const Partial& in, const Request&);
};

struct MaxAgg : detail::ExtremeAggBase {
  static Partial local(sim::Network& net, NodeId node, const Request& req,
                       const LocalItemView& view);
  static void combine(Partial& acc, const Partial& in, const Request&);
};

// ---------------------------------------------------------------------------
// LogLog register aggregation (Fact 2.2 / Section 5).
// ---------------------------------------------------------------------------
struct LogLogAgg {
  enum class Mode : std::uint8_t {
    kRandom = 0,  // independent geometric samples -> counts observations
    kHashed = 1,  // item-hash derived -> counts distinct values
    kSumOdi = 2,  // value-weighted observations -> estimates SUM ([2]);
                  // the register state stays merge-idempotent, so it rides
                  // multipath aggregation unharmed
  };
  struct Request {
    Predicate pred = Predicate::always_true();
    std::uint16_t registers = 64;  // m, a power of two >= 2
    std::uint8_t width = 5;        // register width in bits (4, 5, 6, or 8)
    Mode mode = Mode::kRandom;
    std::uint16_t salt = 0;        // distinguishes hashed repetitions
  };
  /// Partials travel as self-describing sketch::Hll wire images: leaves with
  /// few matching items ship a sparse entry list, aggregation-heavy nodes a
  /// bit-packed dense image — the geometry is validated against the request
  /// on decode, so a corrupt or foreign sketch can't poison the wave.
  using Partial = sketch::Hll;

  static void encode_request(BitWriter& w, const Request& req);
  static Request decode_request(BitReader& r);
  static void encode_partial(BitWriter& w, const Partial& p, const Request&);
  static Partial decode_partial(BitReader& r, const Request& req);
  static Partial local(sim::Network& net, NodeId node, const Request& req,
                       const LocalItemView& view);
  static void combine(Partial& acc, const Partial& in, const Request&);
};

// ---------------------------------------------------------------------------
// COLLECT: ship every matching item uptree (sorted multiset). The TAG-style
// "holistic aggregate" baseline — linear individual communication.
// ---------------------------------------------------------------------------
struct CollectAgg {
  struct Request {
    Predicate pred = Predicate::always_true();
  };
  using Partial = ValueSet;  // kept sorted ascending

  static void encode_request(BitWriter& w, const Request& req);
  static Request decode_request(BitReader& r);
  static void encode_partial(BitWriter& w, const Partial& p, const Request&);
  static Partial decode_partial(BitReader& r, const Request&);
  static Partial local(sim::Network& net, NodeId node, const Request& req,
                       const LocalItemView& view);
  static void combine(Partial& acc, const Partial& in, const Request&);
};

// ---------------------------------------------------------------------------
// DISTINCT-SET: union of distinct matching values (exact COUNT_DISTINCT's
// only sublinear-free option, Section 5). Encoded as ascending gaps.
// ---------------------------------------------------------------------------
struct DistinctSetAgg {
  struct Request {
    Predicate pred = Predicate::always_true();
  };
  using Partial = ValueSet;  // sorted, unique

  static void encode_request(BitWriter& w, const Request& req);
  static Request decode_request(BitReader& r);
  static void encode_partial(BitWriter& w, const Partial& p, const Request&);
  static Partial decode_partial(BitReader& r, const Request&);
  static Partial local(sim::Network& net, NodeId node, const Request& req,
                       const LocalItemView& view);
  static void combine(Partial& acc, const Partial& in, const Request&);
};

// ---------------------------------------------------------------------------
// SAMPLE: Bernoulli(p) subsample of matching items (the [10]-style uniform
// sampling synopsis). p is a 20-bit fixed-point fraction in the request.
// ---------------------------------------------------------------------------
struct SampleAgg {
  static constexpr std::uint32_t kProbOne = 1u << 20;
  struct Request {
    Predicate pred = Predicate::always_true();
    std::uint32_t prob_fp = kProbOne;  // inclusion probability * 2^20
  };
  using Partial = ValueSet;  // sorted list of sampled values

  static void encode_request(BitWriter& w, const Request& req);
  static Request decode_request(BitReader& r);
  static void encode_partial(BitWriter& w, const Partial& p, const Request&);
  static Partial decode_partial(BitReader& r, const Request&);
  static Partial local(sim::Network& net, NodeId node, const Request& req,
                       const LocalItemView& view);
  static void combine(Partial& acc, const Partial& in, const Request&);
};

}  // namespace sensornet::proto
