#include "src/proto/predicate.hpp"

#include "src/common/codec.hpp"
#include "src/common/error.hpp"

namespace sensornet::proto {

Predicate Predicate::always_true() { return Predicate(Op::kTrue, 0); }

Predicate Predicate::less_than(Value y) {
  return Predicate(Op::kLess, 2 * y);
}

Predicate Predicate::less_than_half_units(std::int64_t threshold2) {
  return Predicate(Op::kLess, threshold2);
}

Predicate Predicate::greater_equal(Value y) {
  return Predicate(Op::kGreaterEq, 2 * y);
}

bool Predicate::matches(Value x) const {
  switch (op_) {
    case Op::kTrue: return true;
    case Op::kLess: return 2 * x < threshold2_;
    case Op::kGreaterEq: return 2 * x >= threshold2_;
  }
  return false;
}

void Predicate::encode(BitWriter& w) const {
  w.write_bits(static_cast<std::uint64_t>(op_), 2);
  if (op_ != Op::kTrue) {
    // Zigzag-coded: binary-search pivots may legitimately step below 0 or
    // above X while the certified interval still contains the answer.
    encode_int(w, threshold2_);
  }
}

Predicate Predicate::decode(BitReader& r) {
  const auto op = static_cast<Op>(r.read_bits(2));
  switch (op) {
    case Op::kTrue: return always_true();
    case Op::kLess:
    case Op::kGreaterEq:
      return Predicate(op, decode_int(r));
  }
  throw WireFormatError("Predicate: unknown opcode");
}

std::string Predicate::to_string() const {
  switch (op_) {
    case Op::kTrue: return "TRUE";
    case Op::kLess:
      return "x < " + std::to_string(threshold2_ / 2) +
             (threshold2_ % 2 ? ".5" : "");
    case Op::kGreaterEq:
      return "x >= " + std::to_string(threshold2_ / 2) +
             (threshold2_ % 2 ? ".5" : "");
  }
  return "?";
}

}  // namespace sensornet::proto
