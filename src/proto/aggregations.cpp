#include "src/proto/aggregations.hpp"

#include <algorithm>

#include "src/common/codec.hpp"
#include "src/common/error.hpp"
#include "src/sketch/hll.hpp"

namespace sensornet::proto {

namespace {
const LocalItemView kRawView;
}  // namespace

const LocalItemView& raw_item_view() { return kRawView; }

// ---- CountAgg -------------------------------------------------------------

void CountAgg::encode_request(BitWriter& w, const Request& req) {
  req.pred.encode(w);
}

CountAgg::Request CountAgg::decode_request(BitReader& r) {
  return Request{Predicate::decode(r)};
}

void CountAgg::encode_partial(BitWriter& w, const Partial& p, const Request&) {
  encode_uint(w, p);
}

CountAgg::Partial CountAgg::decode_partial(BitReader& r, const Request&) {
  return decode_uint(r);
}

CountAgg::Partial CountAgg::local(sim::Network& net, NodeId node,
                                  const Request& req,
                                  const LocalItemView& view) {
  Partial c = 0;
  for (const Value x : view.items(net, node)) {
    if (req.pred.matches(x)) ++c;
  }
  return c;
}

void CountAgg::combine(Partial& acc, const Partial& in, const Request&) {
  acc += in;
}

// ---- SumAgg ---------------------------------------------------------------

void SumAgg::encode_request(BitWriter& w, const Request& req) {
  req.pred.encode(w);
}

SumAgg::Request SumAgg::decode_request(BitReader& r) {
  return Request{Predicate::decode(r)};
}

void SumAgg::encode_partial(BitWriter& w, const Partial& p, const Request&) {
  encode_uint(w, p);
}

SumAgg::Partial SumAgg::decode_partial(BitReader& r, const Request&) {
  return decode_uint(r);
}

SumAgg::Partial SumAgg::local(sim::Network& net, NodeId node,
                              const Request& req, const LocalItemView& view) {
  Partial s = 0;
  for (const Value x : view.items(net, node)) {
    if (req.pred.matches(x)) s += static_cast<std::uint64_t>(x);
  }
  return s;
}

void SumAgg::combine(Partial& acc, const Partial& in, const Request&) {
  acc += in;
}

// ---- Min/Max --------------------------------------------------------------

namespace detail {

void ExtremeAggBase::encode_request(BitWriter& w, const Request& req) {
  req.pred.encode(w);
}

ExtremeAggBase::Request ExtremeAggBase::decode_request(BitReader& r) {
  return Request{Predicate::decode(r)};
}

void ExtremeAggBase::encode_partial(BitWriter& w, const Partial& p,
                                    const Request&) {
  w.write_bit(p.has_value());
  if (p.has_value()) {
    SENSORNET_EXPECTS(*p >= 0);
    encode_uint(w, static_cast<std::uint64_t>(*p));
  }
}

ExtremeAggBase::Partial ExtremeAggBase::decode_partial(BitReader& r,
                                                       const Request&) {
  if (!r.read_bit()) return std::nullopt;
  return static_cast<Value>(decode_uint(r));
}

}  // namespace detail

MinAgg::Partial MinAgg::local(sim::Network& net, NodeId node,
                              const Request& req, const LocalItemView& view) {
  Partial best;
  for (const Value x : view.items(net, node)) {
    if (req.pred.matches(x) && (!best || x < *best)) best = x;
  }
  return best;
}

void MinAgg::combine(Partial& acc, const Partial& in, const Request&) {
  if (in && (!acc || *in < *acc)) acc = in;
}

MaxAgg::Partial MaxAgg::local(sim::Network& net, NodeId node,
                              const Request& req, const LocalItemView& view) {
  Partial best;
  for (const Value x : view.items(net, node)) {
    if (req.pred.matches(x) && (!best || x > *best)) best = x;
  }
  return best;
}

void MaxAgg::combine(Partial& acc, const Partial& in, const Request&) {
  if (in && (!acc || *in > *acc)) acc = in;
}

// ---- LogLogAgg --------------------------------------------------------------

namespace {

/// Request geometry must be constructible before any sketch work happens;
/// raising WireFormatError (not PreconditionError) on decode keeps corrupt
/// requests distinguishable from caller bugs.
void validate_loglog_geometry(const LogLogAgg::Request& req, bool from_wire) {
  const auto made = sketch::Hll::make_by_registers(
      req.registers, sketch::HllOptions{.width = req.width, .sparse = true});
  if (made.ok()) return;
  if (from_wire) throw WireFormatError("LogLog request: " + made.error());
  throw PreconditionError(made.error());
}

}  // namespace

void LogLogAgg::encode_request(BitWriter& w, const Request& req) {
  validate_loglog_geometry(req, /*from_wire=*/false);
  req.pred.encode(w);
  encode_uint(w, req.registers);
  encode_uint(w, req.width);
  w.write_bits(static_cast<std::uint64_t>(req.mode), 2);
  w.write_bits(req.salt, 16);
}

LogLogAgg::Request LogLogAgg::decode_request(BitReader& r) {
  Request req;
  req.pred = Predicate::decode(r);
  req.registers = static_cast<std::uint16_t>(decode_uint(r));
  req.width = static_cast<std::uint8_t>(decode_uint(r));
  req.mode = static_cast<Mode>(r.read_bits(2));
  req.salt = static_cast<std::uint16_t>(r.read_bits(16));
  validate_loglog_geometry(req, /*from_wire=*/true);
  return req;
}

void LogLogAgg::encode_partial(BitWriter& w, const Partial& p,
                               const Request&) {
  p.encode(w);
}

LogLogAgg::Partial LogLogAgg::decode_partial(BitReader& r,
                                             const Request& req) {
  auto decoded = sketch::Hll::decode(r);
  if (!decoded.ok()) {
    throw WireFormatError("LogLog partial: " + decoded.error());
  }
  Partial hll = std::move(decoded).value();
  if (hll.m() != req.registers || hll.width() != req.width) {
    throw WireFormatError("LogLog partial: geometry does not match request");
  }
  return hll;
}

LogLogAgg::Partial LogLogAgg::local(sim::Network& net, NodeId node,
                                    const Request& req,
                                    const LocalItemView& view) {
  // Geometry was validated when the request was built/decoded.
  Partial hll =
      sketch::Hll::make_by_registers(
          req.registers, sketch::HllOptions{.width = req.width, .sparse = true})
          .value();
  for (const Value x : view.items(net, node)) {
    if (!req.pred.matches(x)) continue;
    switch (req.mode) {
      case Mode::kRandom:
        hll.add_random(net.rng(node));
        break;
      case Mode::kHashed:
        hll.add(static_cast<std::uint64_t>(x), req.salt);
        break;
      case Mode::kSumOdi:
        hll.add_sum(static_cast<std::uint64_t>(x), net.rng(node));
        break;
    }
  }
  return hll;
}

void LogLogAgg::combine(Partial& acc, const Partial& in, const Request&) {
  const auto merged = acc.merge(in);
  if (!merged.ok()) {
    // Both sides were validated against the same request; a mismatch here is
    // an engine bug, not bad input.
    throw ProtocolError("LogLogAgg::combine: " + merged.error());
  }
}

// ---- CollectAgg -------------------------------------------------------------

namespace {

/// Sorted-multiset wire format: length, first value, then non-negative gaps.
void encode_sorted_values(BitWriter& w, const ValueSet& xs,
                          bool strictly_increasing) {
  encode_uint(w, xs.size());
  Value prev = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    std::uint64_t gap = static_cast<std::uint64_t>(xs[i] - prev);
    if (strictly_increasing && i > 0) gap -= 1;  // gaps >= 1 shift to >= 0
    encode_uint(w, gap);
    prev = xs[i];
  }
}

ValueSet decode_sorted_values(BitReader& r, bool strictly_increasing) {
  const std::uint64_t n = decode_uint(r);
  // Every encoded value costs >= 1 bit: a length exceeding the remaining
  // payload is corruption, not data (guards the allocation below).
  if (n > r.remaining()) {
    throw WireFormatError("sorted-values: length exceeds payload");
  }
  ValueSet xs;
  xs.reserve(n);
  Value prev = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t gap = decode_uint(r);
    if (strictly_increasing && i > 0) gap += 1;
    const Value v = prev + static_cast<Value>(gap);
    xs.push_back(v);
    prev = v;
  }
  return xs;
}

}  // namespace

void CollectAgg::encode_request(BitWriter& w, const Request& req) {
  req.pred.encode(w);
}

CollectAgg::Request CollectAgg::decode_request(BitReader& r) {
  return Request{Predicate::decode(r)};
}

void CollectAgg::encode_partial(BitWriter& w, const Partial& p,
                                const Request&) {
  encode_sorted_values(w, p, /*strictly_increasing=*/false);
}

CollectAgg::Partial CollectAgg::decode_partial(BitReader& r, const Request&) {
  return decode_sorted_values(r, /*strictly_increasing=*/false);
}

CollectAgg::Partial CollectAgg::local(sim::Network& net, NodeId node,
                                      const Request& req,
                                      const LocalItemView& view) {
  Partial mine;
  for (const Value x : view.items(net, node)) {
    if (req.pred.matches(x)) mine.push_back(x);
  }
  std::sort(mine.begin(), mine.end());
  return mine;
}

void CollectAgg::combine(Partial& acc, const Partial& in, const Request&) {
  Partial merged;
  merged.reserve(acc.size() + in.size());
  std::merge(acc.begin(), acc.end(), in.begin(), in.end(),
             std::back_inserter(merged));
  acc = std::move(merged);
}

// ---- DistinctSetAgg ----------------------------------------------------------

void DistinctSetAgg::encode_request(BitWriter& w, const Request& req) {
  req.pred.encode(w);
}

DistinctSetAgg::Request DistinctSetAgg::decode_request(BitReader& r) {
  return Request{Predicate::decode(r)};
}

void DistinctSetAgg::encode_partial(BitWriter& w, const Partial& p,
                                    const Request&) {
  encode_sorted_values(w, p, /*strictly_increasing=*/true);
}

DistinctSetAgg::Partial DistinctSetAgg::decode_partial(BitReader& r,
                                                       const Request&) {
  return decode_sorted_values(r, /*strictly_increasing=*/true);
}

DistinctSetAgg::Partial DistinctSetAgg::local(sim::Network& net, NodeId node,
                                              const Request& req,
                                              const LocalItemView& view) {
  Partial mine;
  for (const Value x : view.items(net, node)) {
    if (req.pred.matches(x)) mine.push_back(x);
  }
  std::sort(mine.begin(), mine.end());
  mine.erase(std::unique(mine.begin(), mine.end()), mine.end());
  return mine;
}

void DistinctSetAgg::combine(Partial& acc, const Partial& in, const Request&) {
  Partial merged;
  merged.reserve(acc.size() + in.size());
  std::set_union(acc.begin(), acc.end(), in.begin(), in.end(),
                 std::back_inserter(merged));
  acc = std::move(merged);
}

// ---- SampleAgg ----------------------------------------------------------------

void SampleAgg::encode_request(BitWriter& w, const Request& req) {
  req.pred.encode(w);
  w.write_bits(req.prob_fp, 21);  // kProbOne needs 21 bits
}

SampleAgg::Request SampleAgg::decode_request(BitReader& r) {
  Request req;
  req.pred = Predicate::decode(r);
  req.prob_fp = static_cast<std::uint32_t>(r.read_bits(21));
  return req;
}

void SampleAgg::encode_partial(BitWriter& w, const Partial& p,
                               const Request&) {
  encode_sorted_values(w, p, /*strictly_increasing=*/false);
}

SampleAgg::Partial SampleAgg::decode_partial(BitReader& r, const Request&) {
  return decode_sorted_values(r, /*strictly_increasing=*/false);
}

SampleAgg::Partial SampleAgg::local(sim::Network& net, NodeId node,
                                    const Request& req,
                                    const LocalItemView& view) {
  Partial mine;
  auto& rng = net.rng(node);
  for (const Value x : view.items(net, node)) {
    if (!req.pred.matches(x)) continue;
    if (rng.next_below(kProbOne) < req.prob_fp) mine.push_back(x);
  }
  std::sort(mine.begin(), mine.end());
  return mine;
}

void SampleAgg::combine(Partial& acc, const Partial& in, const Request&) {
  Partial merged;
  merged.reserve(acc.size() + in.size());
  std::merge(acc.begin(), acc.end(), in.begin(), in.end(),
             std::back_inserter(merged));
  acc = std::move(merged);
}

}  // namespace sensornet::proto
