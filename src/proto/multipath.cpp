#include "src/proto/multipath.hpp"

#include <algorithm>
#include <deque>
#include <vector>

#include "src/common/error.hpp"
#include "src/sketch/hll.hpp"

namespace sensornet::proto {

namespace {

/// Handler that merges every delivered sketch into the receiver's running
/// state. Coverage tracking (which nodes' contributions are present) is
/// simulation-side instrumentation carried in a parallel bitset keyed by
/// message index — the wire carries only the sketch image.
class MergeHandler final : public sim::ProtocolHandler {
 public:
  MergeHandler(std::vector<sketch::Hll>& state,
               std::vector<std::vector<bool>>& coverage,
               const LogLogAgg::Request& request)
      : state_(state), coverage_(coverage), request_(request) {}

  void on_message(sim::Network&, NodeId receiver,
                  const sim::Message& msg) override {
    BitReader r = msg.reader();
    const sketch::Hll incoming = LogLogAgg::decode_partial(r, request_);
    LogLogAgg::combine(state_[receiver], incoming, request_);
    // The sender's coverage set travels conceptually with its synopsis; we
    // track it out of band (same information, zero extra wire bits — the
    // registers *are* the synopsis).
    const auto& sender_cov = coverage_[msg.from];
    auto& mine = coverage_[receiver];
    for (std::size_t i = 0; i < mine.size(); ++i) {
      if (sender_cov[i]) mine[i] = true;
    }
  }

 private:
  std::vector<sketch::Hll>& state_;
  std::vector<std::vector<bool>>& coverage_;
  const LogLogAgg::Request& request_;
};

}  // namespace

MultipathResult multipath_loglog_sweep(sim::Network& net, NodeId root,
                                       const LogLogAgg::Request& request,
                                       const LocalItemView& view) {
  SENSORNET_EXPECTS(root < net.node_count());
  const std::size_t n = net.node_count();

  // Ring formation: hop distance from the root (a BFS; deployed systems
  // learn this once from beacon floods).
  std::vector<std::uint32_t> ring(n, ~0u);
  std::deque<NodeId> queue{root};
  ring[root] = 0;
  std::uint32_t max_ring = 0;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (const NodeId v : net.graph().neighbors(u)) {
      if (ring[v] != ~0u) continue;
      ring[v] = ring[u] + 1;
      max_ring = std::max(max_ring, ring[v]);
      queue.push_back(v);
    }
  }
  for (const auto r : ring) {
    if (r == ~0u) throw ProtocolError("multipath: graph is disconnected");
  }

  // Local fold: every node seeds its own sketch state (move-only, so the
  // vector is built by push rather than fill).
  std::vector<sketch::Hll> state;
  state.reserve(n);
  std::vector<std::vector<bool>> coverage(n, std::vector<bool>(n, false));
  for (NodeId u = 0; u < n; ++u) {
    state.push_back(LogLogAgg::local(net, u, request, view));
    coverage[u][u] = true;
  }

  MergeHandler handler(state, coverage, request);

  // Slotted sweep: outermost ring first; every node transmits its current
  // merged state to every downhill neighbor. Within a slot all nodes of the
  // ring transmit; the run() drains before the next (inner) ring fires, so
  // a ring-d node's state already folds everything that survived from
  // rings > d.
  for (std::uint32_t d = max_ring; d >= 1; --d) {
    for (NodeId u = 0; u < n; ++u) {
      if (ring[u] != d) continue;
      // Encode this node's registers once (exact wire size known up front),
      // then fan the shared slab out to every downhill neighbor.
      BitWriter w;
      w.reserve(state[u].wire_bits());
      state[u].encode(w);
      const auto bits = static_cast<std::uint32_t>(w.bit_count());
      const sim::Payload slab(w.bytes().data(), w.bytes().size());
      for (const NodeId v : net.graph().neighbors(u)) {
        if (ring[v] != d - 1) continue;
        net.send(sim::Message::with_payload(u, v, /*session=*/0x5000 + d,
                                            /*kind=*/1, slab, bits));
      }
    }
    net.run(handler);
  }

  MultipathResult result{std::move(state[root]), 0};
  for (std::size_t i = 0; i < n; ++i) {
    if (coverage[root][i]) ++result.covered_nodes;
  }
  return result;
}

}  // namespace sensornet::proto
