// Generic broadcast-convergecast wave over a spanning tree.
//
// One wave = the root floods an encoded request down the tree; every node
// computes a local partial aggregate from its (view of its) items; leaves
// answer immediately and internal nodes fold children's partials into their
// own before answering — the TAG-style in-network aggregation that Fact 2.1
// builds on. The engine is a template over an AggregationSpec, so the same
// carefully-tested state machine carries every protocol in the library.
//
// Individual communication per wave: each node sends/receives one request
// per tree edge it touches and one response, so a node of tree-degree d pays
// d * (|request| + |partial|) bits — with bounded-degree trees and O(log N)
// partials this is Fact 2.1's O(log N) per node.
#pragma once

#include <concepts>
#include <optional>
#include <vector>

#include "src/common/error.hpp"
#include "src/net/spanning_tree.hpp"
#include "src/proto/item_view.hpp"
#include "src/sim/network.hpp"

namespace sensornet::proto {

/// What a type must provide to ride the wave engine.
template <typename A>
concept AggregationSpec = requires(BitWriter& w, BitReader& r,
                                   const typename A::Request& req,
                                   typename A::Partial& acc,
                                   const typename A::Partial& in,
                                   sim::Network& net, NodeId id,
                                   const LocalItemView& view) {
  { A::encode_request(w, req) };
  { A::decode_request(r) } -> std::same_as<typename A::Request>;
  { A::encode_partial(w, in, req) };
  { A::decode_partial(r, req) } -> std::same_as<typename A::Partial>;
  { A::local(net, id, req, view) } -> std::same_as<typename A::Partial>;
  { A::combine(acc, in, req) };
};

template <AggregationSpec A>
class TreeWave final : public sim::ProtocolHandler {
 public:
  using Request = typename A::Request;
  using Partial = typename A::Partial;

  /// The tree and view must outlive the wave.
  TreeWave(const net::SpanningTree& tree, std::uint32_t session,
           const LocalItemView& view = raw_item_view())
      : tree_(tree), view_(view), session_(session) {}

  /// Runs one complete wave; returns the root's aggregate.
  Partial execute(sim::Network& net, const Request& request) {
    SENSORNET_EXPECTS(net.node_count() == tree_.node_count());
    // clear+resize instead of assign: Partial may be move-only (e.g. the
    // LogLog sketch), and assign requires a copyable prototype.
    state_.clear();
    state_.resize(tree_.node_count());
    root_result_.reset();
    start_node(net, tree_.root, request);
    net.run(*this);
    if (!root_result_) {
      throw ProtocolError("TreeWave: wave drained without a root result");
    }
    return std::move(*root_result_);
  }

  void on_message(sim::Network& net, NodeId receiver,
                  const sim::Message& msg) override {
    if (msg.session != session_) {
      throw ProtocolError("TreeWave: message for a foreign session");
    }
    if (msg.kind == kRequestKind) {
      BitReader r = msg.reader();
      start_node(net, receiver, A::decode_request(r));
    } else if (msg.kind == kResponseKind) {
      NodeState& st = state_[receiver];
      if (!st.request || st.pending == 0) {
        throw ProtocolError("TreeWave: unexpected response");
      }
      BitReader r = msg.reader();
      Partial in = A::decode_partial(r, *st.request);
      A::combine(*st.acc, in, *st.request);
      if (--st.pending == 0) finish_node(net, receiver);
    } else {
      throw ProtocolError("TreeWave: unknown message kind");
    }
  }

 private:
  static constexpr std::uint16_t kRequestKind = 1;
  static constexpr std::uint16_t kResponseKind = 2;

  struct NodeState {
    std::optional<Request> request;
    std::optional<Partial> acc;
    std::size_t pending = 0;
  };

  /// A node learns the request: compute local contribution, forward the
  /// request to children, or answer right away at a leaf.
  void start_node(sim::Network& net, NodeId node, Request request) {
    NodeState& st = state_[node];
    if (st.request) throw ProtocolError("TreeWave: node started twice");
    st.request = std::move(request);
    st.acc = A::local(net, node, *st.request, view_);
    const auto& children = tree_.children[node];
    st.pending = children.size();
    if (st.pending == 0) {
      finish_node(net, node);
      return;
    }
    // Encode the request once; every child gets a refcounted view of the
    // same payload slab (identical wire bits, no per-child re-encode).
    BitWriter w;
    A::encode_request(w, *st.request);
    const auto bits = static_cast<std::uint32_t>(w.bit_count());
    const sim::Payload slab(w.bytes().data(), w.bytes().size());
    for (const NodeId child : children) {
      net.send(sim::Message::with_payload(node, child, session_, kRequestKind,
                                          slab, bits));
    }
  }

  /// All children answered: report to the parent (or finish at the root).
  void finish_node(sim::Network& net, NodeId node) {
    NodeState& st = state_[node];
    if (node == tree_.root) {
      root_result_ = std::move(st.acc);
      return;
    }
    BitWriter w;
    A::encode_partial(w, *st.acc, *st.request);
    net.send(sim::Message::make(node, tree_.parent[node], session_,
                                kResponseKind, std::move(w)));
  }

  const net::SpanningTree& tree_;
  const LocalItemView& view_;
  std::uint32_t session_;
  std::vector<NodeState> state_;
  std::optional<Partial> root_result_;
};

}  // namespace sensornet::proto
