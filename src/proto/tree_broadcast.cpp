#include "src/proto/tree_broadcast.hpp"

#include <utility>

#include "src/common/error.hpp"

namespace sensornet::proto {

TreeBroadcast::TreeBroadcast(const net::SpanningTree& tree,
                             std::uint32_t session, Apply apply)
    : tree_(tree), session_(session), apply_(std::move(apply)) {}

void TreeBroadcast::execute(sim::Network& net, BitWriter&& payload) {
  SENSORNET_EXPECTS(net.node_count() == tree_.node_count());
  const auto bits = static_cast<std::uint32_t>(payload.bit_count());
  const sim::Payload slab(payload.bytes().data(), payload.bytes().size());
  apply_(net, tree_.root, BitReader(slab.data(), bits));
  forward(net, tree_.root, slab, bits);
  net.run(*this);
}

void TreeBroadcast::on_message(sim::Network& net, NodeId receiver,
                               const sim::Message& msg) {
  if (msg.session != session_ || msg.kind != kBroadcastKind) {
    throw ProtocolError("TreeBroadcast: unexpected message");
  }
  apply_(net, receiver, msg.reader());
  forward(net, receiver, msg.payload, msg.payload_bits);
}

void TreeBroadcast::forward(sim::Network& net, NodeId node,
                            const sim::Payload& payload,
                            std::uint32_t payload_bits) {
  for (const NodeId child : tree_.children[node]) {
    net.send(sim::Message::with_payload(node, child, session_, kBroadcastKind,
                                        payload, payload_bits));
  }
}

}  // namespace sensornet::proto
