#include "src/proto/counting_service.hpp"

#include "src/proto/aggregations.hpp"
#include "src/proto/tree_wave.hpp"

namespace sensornet::proto {

TreeCountingService::TreeCountingService(sim::Network& net,
                                         const net::SpanningTree& tree,
                                         const LocalItemView& view)
    : net_(net), tree_(tree), view_(view) {}

std::uint64_t TreeCountingService::count(const Predicate& pred) {
  TreeWave<CountAgg> wave(tree_, next_session_++, view_);
  return wave.execute(net_, CountAgg::Request{pred});
}

std::optional<Value> TreeCountingService::min_value() {
  TreeWave<MinAgg> wave(tree_, next_session_++, view_);
  return wave.execute(net_, MinAgg::Request{Predicate::always_true()});
}

std::optional<Value> TreeCountingService::max_value() {
  TreeWave<MaxAgg> wave(tree_, next_session_++, view_);
  return wave.execute(net_, MaxAgg::Request{Predicate::always_true()});
}

}  // namespace sensornet::proto
