// Exact median in single-hop networks (the Singh-Prasanna [14] comparator).
//
// Binary search over [0, X] where each probe is a slotted presence round:
// every node transmits exactly one bit per probe and overhears everyone
// else's. Per-node profile over the whole run: transmit O(log X) = O(log N)
// bits, receive O(N log N) — the asymmetry the paper quotes for [14].
#pragma once

#include <cstdint>

#include "src/common/types.hpp"
#include "src/sim/network.hpp"

namespace sensornet::baseline {

struct SingleHopMedianResult {
  Value median = 0;
  unsigned rounds = 0;  // presence rounds (binary-search probes)
  std::uint64_t max_node_tx_bits = 0;
  std::uint64_t max_node_rx_bits = 0;
};

/// `net` must be a complete graph; each node holds at most one item;
/// `max_value_bound` is the known X.
SingleHopMedianResult single_hop_median(sim::Network& net, NodeId root,
                                        Value max_value_bound);

}  // namespace sensornet::baseline
