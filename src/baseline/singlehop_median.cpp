#include "src/baseline/singlehop_median.hpp"

#include "src/common/error.hpp"

namespace sensornet::baseline {

namespace {

/// The slotted rounds need no reactive behaviour: every bit is overheard by
/// everyone, and every node advances the same deterministic search state.
class NoReaction final : public sim::ProtocolHandler {
 public:
  void on_message(sim::Network&, NodeId, const sim::Message&) override {}
};

/// One presence round: every node transmits exactly one bit — whether any of
/// its items satisfies `matches` — and everyone overhears all of them, so
/// every node (not just the root) learns the round's count. Returns it.
template <typename Matcher>
std::uint64_t presence_round(sim::Network& net, std::uint32_t session,
                             const Matcher& matches) {
  std::uint64_t count = 0;
  for (NodeId u = 0; u < net.node_count(); ++u) {
    bool present = false;
    for (const Value x : net.items(u)) {
      if (matches(x)) present = true;
    }
    if (present) ++count;
    if (net.node_count() > 1) {
      BitWriter w;
      w.write_bit(present);
      net.send_medium(sim::Message::make(u, kNoNode, session, 1, std::move(w)));
    }
  }
  NoReaction handler;
  net.run(handler);
  return count;
}

}  // namespace

SingleHopMedianResult single_hop_median(sim::Network& net, NodeId root,
                                        Value max_value_bound) {
  SENSORNET_EXPECTS(root < net.node_count());
  SENSORNET_EXPECTS(max_value_bound >= 0);
  for (NodeId u = 0; u < net.node_count(); ++u) {
    SENSORNET_EXPECTS(net.items(u).size() <= 1);
  }

  SingleHopMedianResult res;
  std::uint32_t session = 0;

  // Round 0 counts the population; every node overhears it, so the whole
  // binary search below runs as shared deterministic state — no node ever
  // needs a threshold shipped to it ([14]'s one-transmitted-bit-per-round
  // profile, root included).
  const std::uint64_t n =
      presence_round(net, session++, [](Value) { return true; });
  ++res.rounds;
  if (n == 0) throw PreconditionError("median of an empty input");

  Value lo = 0;
  Value hi = max_value_bound;
  while (lo < hi) {
    const Value mid = lo + (hi - lo) / 2;
    // l(mid+1) = |{x <= mid}|.
    const std::uint64_t c =
        presence_round(net, session++, [mid](Value x) { return x <= mid; });
    ++res.rounds;
    if (2 * c >= n) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  res.median = lo;
  res.max_node_tx_bits = sim::max_payload_bits_sent(net.all_stats());
  res.max_node_rx_bits = sim::max_payload_bits_received(net.all_stats());
  return res;
}

}  // namespace sensornet::baseline
