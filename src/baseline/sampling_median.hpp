// Uniform-sampling approximate median (the [10]-style synopsis).
//
// Nath et al. propose order/duplicate-insensitive synopses and solve
// approximate median by uniform sampling. Our rendition: learn N with one
// exact COUNT wave, broadcast an inclusion probability p = s/N inside a
// sampling wave, collect ~s sampled values, output the sample median. Each
// sampled value costs Theta(log X) = Theta(log N) bits on its whole path to
// the root — the Omega(log N) bits/node the paper contrasts with its
// polyloglog algorithm.
#pragma once

#include <cstdint>

#include "src/common/types.hpp"
#include "src/net/spanning_tree.hpp"
#include "src/sim/network.hpp"

namespace sensornet::baseline {

struct SamplingMedianResult {
  Value median = 0;
  std::uint64_t sample_size = 0;
  std::uint64_t population = 0;
};

/// `target_sample_size` trades accuracy (rank error ~ N/sqrt(s)) for bits.
SamplingMedianResult sampling_median(sim::Network& net,
                                     const net::SpanningTree& tree,
                                     std::uint64_t target_sample_size);

}  // namespace sensornet::baseline
