// Epsilon-approximate quantile summaries (Greenwald-Khanna [4] style).
//
// The concurrent PODS'04 result the paper compares against: each node keeps
// a bounded set of (value, rmin, rmax) tuples whose rank bounds bracket the
// tuple's true rank in the multiset it summarizes. Summaries MERGE up the
// aggregation tree (rank bounds add through predecessor/successor tuples)
// and PRUNE back to a size budget (keeping quantile-spaced tuples), so any
// rank query at the root is answered within the accumulated bound widening.
// One pass, deterministic, answers *all* quantiles — at O((log N)^3..4)
// bits/node versus Fig. 1's O((log N)^2) for a single order statistic.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/bitio.hpp"
#include "src/common/types.hpp"

namespace sensornet::baseline {

class QuantileSummary {
 public:
  struct Entry {
    Value value = 0;
    std::uint64_t rmin = 0;  // lower bound on the tuple's rank (1-based)
    std::uint64_t rmax = 0;  // upper bound
  };

  /// Empty summary of zero items.
  QuantileSummary() = default;

  /// Exact summary of a local multiset (one tuple per distinct value with
  /// tight bounds).
  static QuantileSummary from_items(ValueSet items);

  /// The GK merge: tuples interleave by value; each keeps its own bounds
  /// plus the bounds contributed by the other summary's predecessor /
  /// successor tuples. Bounds remain valid brackets of true ranks in the
  /// combined multiset.
  static QuantileSummary merged(const QuantileSummary& a,
                                const QuantileSummary& b);

  /// Keeps at most `max_entries` tuples: the extremes plus tuples nearest
  /// to the B-quantile ranks. Bounds stay valid; query error grows by the
  /// widened gaps.
  QuantileSummary pruned(std::size_t max_entries) const;

  /// Value whose rank bracket is closest to (or contains) `rank`.
  /// Empty summary -> nullopt.
  std::optional<Value> query_rank(std::uint64_t rank) const;

  /// Items summarized.
  std::uint64_t total() const { return total_; }
  std::size_t entry_count() const { return entries_.size(); }
  const std::vector<Entry>& entries() const { return entries_; }

  /// Largest rank uncertainty a query can suffer: max over adjacent tuples
  /// of (rmax_{i+1} - rmin_i) / 2 — the epsilon*N of the GK analysis.
  std::uint64_t max_rank_gap() const;

  /// Structural invariants: values sorted, bounds sane and within total.
  bool valid() const;

  void encode(BitWriter& w) const;
  static QuantileSummary decode(BitReader& r);

 private:
  std::vector<Entry> entries_;  // sorted by value
  std::uint64_t total_ = 0;
};

}  // namespace sensornet::baseline
