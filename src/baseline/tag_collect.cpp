#include "src/baseline/tag_collect.hpp"

#include "src/common/error.hpp"
#include "src/common/mathutil.hpp"
#include "src/proto/aggregations.hpp"
#include "src/proto/tree_wave.hpp"

namespace sensornet::baseline {

TagMedianResult tag_collect_median(sim::Network& net,
                                   const net::SpanningTree& tree) {
  proto::TreeWave<proto::CollectAgg> wave(tree, /*session=*/0x7100);
  const ValueSet all = wave.execute(
      net, proto::CollectAgg::Request{proto::Predicate::always_true()});
  if (all.empty()) throw PreconditionError("median of an empty input");
  TagMedianResult res;
  res.items_collected = all.size();
  res.median =
      reference_order_statistic(all, static_cast<std::int64_t>(all.size()));
  return res;
}

}  // namespace sensornet::baseline
