#include "src/baseline/gk_median.hpp"

#include "src/common/error.hpp"
#include "src/baseline/quantile_summary.hpp"
#include "src/common/codec.hpp"
#include "src/proto/item_view.hpp"
#include "src/proto/tree_wave.hpp"

namespace sensornet::baseline {

namespace {

/// Aggregation spec: partial = pruned quantile summary.
struct GkAgg {
  struct Request {
    std::uint16_t max_entries = 16;
  };
  using Partial = QuantileSummary;

  static void encode_request(BitWriter& w, const Request& req) {
    encode_uint(w, req.max_entries);
  }
  static Request decode_request(BitReader& r) {
    return Request{static_cast<std::uint16_t>(decode_uint(r))};
  }
  static void encode_partial(BitWriter& w, const Partial& p, const Request&) {
    p.encode(w);
  }
  static Partial decode_partial(BitReader& r, const Request&) {
    return QuantileSummary::decode(r);
  }
  static Partial local(sim::Network& net, NodeId node, const Request& req,
                       const proto::LocalItemView& view) {
    return QuantileSummary::from_items(view.items(net, node))
        .pruned(req.max_entries);
  }
  static void combine(Partial& acc, const Partial& in, const Request& req) {
    acc = QuantileSummary::merged(acc, in).pruned(req.max_entries);
  }
};

}  // namespace

GkMedianResult gk_median(sim::Network& net, const net::SpanningTree& tree,
                         std::size_t max_entries) {
  SENSORNET_EXPECTS(max_entries >= 2 && max_entries <= 0xFFFF);
  proto::TreeWave<GkAgg> wave(tree, /*session=*/0x7300);
  const QuantileSummary summary = wave.execute(
      net, GkAgg::Request{static_cast<std::uint16_t>(max_entries)});
  if (summary.total() == 0) {
    throw PreconditionError("median of an empty input");
  }
  GkMedianResult res;
  res.population = summary.total();
  // Definition 2.3's median is the rank-ceil(N/2) element.
  const std::uint64_t rank = (summary.total() + 1) / 2;
  res.median = *summary.query_rank(rank);
  res.rank_uncertainty = summary.max_rank_gap();
  res.root_summary_entries = summary.entry_count();
  return res;
}

}  // namespace sensornet::baseline
