#include "src/baseline/sampling_median.hpp"

#include <algorithm>

#include "src/common/error.hpp"
#include "src/common/mathutil.hpp"
#include "src/proto/aggregations.hpp"
#include "src/proto/counting_service.hpp"
#include "src/proto/tree_wave.hpp"

namespace sensornet::baseline {

SamplingMedianResult sampling_median(sim::Network& net,
                                     const net::SpanningTree& tree,
                                     std::uint64_t target_sample_size) {
  SENSORNET_EXPECTS(target_sample_size >= 1);
  proto::TreeCountingService counter(net, tree);
  const std::uint64_t n = counter.count_all();
  if (n == 0) throw PreconditionError("median of an empty input");

  proto::SampleAgg::Request req;
  req.pred = proto::Predicate::always_true();
  const double p =
      std::min(1.0, static_cast<double>(target_sample_size) /
                        static_cast<double>(n));
  req.prob_fp = static_cast<std::uint32_t>(p * proto::SampleAgg::kProbOne);
  if (req.prob_fp == 0) req.prob_fp = 1;

  proto::TreeWave<proto::SampleAgg> wave(tree, /*session=*/0x7200);
  ValueSet sample = wave.execute(net, req);

  SamplingMedianResult res;
  res.population = n;
  res.sample_size = sample.size();
  if (sample.empty()) {
    // Unlucky coin flips on a tiny population: fall back to one more wave
    // with p = 1 (still cheaper than giving no answer).
    req.prob_fp = proto::SampleAgg::kProbOne;
    proto::TreeWave<proto::SampleAgg> retry(tree, /*session=*/0x7201);
    sample = retry.execute(net, req);
    res.sample_size = sample.size();
  }
  res.median = reference_order_statistic(
      sample, static_cast<std::int64_t>(sample.size()));
  return res;
}

}  // namespace sensornet::baseline
