// TAG-style collect-all median (the [9] classification this paper refutes).
//
// TAG classifies MEDIAN as a "holistic" aggregate: no constant-size partial
// state suffices, so the straightforward in-network plan ships the whole
// sorted multiset up the tree and selects at the root. Exact, one wave of
// latency — but the root's child carries Theta(N log X) bits, the linear
// cost Fig. 1 avoids.
#pragma once

#include <cstdint>

#include "src/common/types.hpp"
#include "src/net/spanning_tree.hpp"
#include "src/sim/network.hpp"

namespace sensornet::baseline {

struct TagMedianResult {
  Value median = 0;
  std::uint64_t items_collected = 0;
};

TagMedianResult tag_collect_median(sim::Network& net,
                                   const net::SpanningTree& tree);

}  // namespace sensornet::baseline
