// Median via one quantile-summary aggregation wave (the [4] comparator).
#pragma once

#include <cstdint>

#include "src/common/types.hpp"
#include "src/net/spanning_tree.hpp"
#include "src/sim/network.hpp"

namespace sensornet::baseline {

struct GkMedianResult {
  Value median = 0;
  std::uint64_t population = 0;
  /// Worst-case rank error certified by the root summary's own bounds.
  std::uint64_t rank_uncertainty = 0;
  std::size_t root_summary_entries = 0;
};

/// One wave; every node's summary is pruned to `max_entries` tuples before
/// it travels. Larger budgets -> tighter ranks, more bits.
GkMedianResult gk_median(sim::Network& net, const net::SpanningTree& tree,
                         std::size_t max_entries);

}  // namespace sensornet::baseline
