#include "src/baseline/quantile_summary.hpp"

#include <algorithm>

#include "src/common/codec.hpp"
#include "src/common/error.hpp"

namespace sensornet::baseline {

QuantileSummary QuantileSummary::from_items(ValueSet items) {
  QuantileSummary s;
  s.total_ = items.size();
  if (items.empty()) return s;
  std::sort(items.begin(), items.end());
  std::uint64_t below = 0;  // items strictly smaller than the current run
  std::size_t i = 0;
  while (i < items.size()) {
    std::size_t j = i;
    while (j < items.size() && items[j] == items[i]) ++j;
    // Copies of value v occupy ranks below+1 .. below+(j-i): tight bounds.
    s.entries_.push_back(Entry{items[i], below + 1,
                               below + static_cast<std::uint64_t>(j - i)});
    below += static_cast<std::uint64_t>(j - i);
    i = j;
  }
  return s;
}

QuantileSummary QuantileSummary::merged(const QuantileSummary& a,
                                        const QuantileSummary& b) {
  if (a.total_ == 0) return b;
  if (b.total_ == 0) return a;
  QuantileSummary out;
  out.total_ = a.total_ + b.total_;
  out.entries_.reserve(a.entries_.size() + b.entries_.size());

  // For a tuple v from one side, the other side contributes:
  //   rmin += rmin(pred)   pred = its largest tuple with value < v (else 0)
  //   rmax += rmax(succ)-1 succ = its smallest tuple with value >= v
  //          (else its full total)
  const auto emit = [&out](const Entry& e, const QuantileSummary& other) {
    Entry merged = e;
    // pred: last entry with value < e.value
    const auto& oe = other.entries_;
    auto lb = std::lower_bound(
        oe.begin(), oe.end(), e.value,
        [](const Entry& x, Value v) { return x.value < v; });
    if (lb != oe.begin()) merged.rmin += std::prev(lb)->rmin;
    if (lb != oe.end()) {
      merged.rmax += lb->rmax - 1;
    } else {
      merged.rmax += other.total_;
    }
    out.entries_.push_back(merged);
  };

  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < a.entries_.size() || ib < b.entries_.size()) {
    if (ib == b.entries_.size() ||
        (ia < a.entries_.size() &&
         a.entries_[ia].value <= b.entries_[ib].value)) {
      emit(a.entries_[ia++], b);
    } else {
      emit(b.entries_[ib++], a);
    }
  }
  return out;
}

QuantileSummary QuantileSummary::pruned(std::size_t max_entries) const {
  SENSORNET_EXPECTS(max_entries >= 2);
  if (entries_.size() <= max_entries) return *this;
  QuantileSummary out;
  out.total_ = total_;

  std::vector<std::size_t> keep;
  keep.push_back(0);
  const std::size_t interior = max_entries - 2;
  for (std::size_t q = 1; q <= interior; ++q) {
    // Target rank of the q-th kept quantile.
    const std::uint64_t target = static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(total_) * q) / (interior + 1));
    // Entry whose rank midpoint is nearest the target.
    std::size_t best = 0;
    std::uint64_t best_dist = ~0ULL;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const std::uint64_t mid = (entries_[i].rmin + entries_[i].rmax) / 2;
      const std::uint64_t dist = mid > target ? mid - target : target - mid;
      if (dist < best_dist) {
        best_dist = dist;
        best = i;
      }
    }
    keep.push_back(best);
  }
  keep.push_back(entries_.size() - 1);
  std::sort(keep.begin(), keep.end());
  keep.erase(std::unique(keep.begin(), keep.end()), keep.end());
  for (const std::size_t i : keep) out.entries_.push_back(entries_[i]);
  return out;
}

std::optional<Value> QuantileSummary::query_rank(std::uint64_t rank) const {
  if (entries_.empty()) return std::nullopt;
  const Entry* best = &entries_.front();
  std::uint64_t best_dist = ~0ULL;
  for (const Entry& e : entries_) {
    std::uint64_t dist = 0;
    if (rank < e.rmin) {
      dist = e.rmin - rank;
    } else if (rank > e.rmax) {
      dist = rank - e.rmax;
    }
    if (dist < best_dist) {
      best_dist = dist;
      best = &e;
    }
  }
  return best->value;
}

std::uint64_t QuantileSummary::max_rank_gap() const {
  std::uint64_t worst = 0;
  for (std::size_t i = 0; i + 1 < entries_.size(); ++i) {
    const std::uint64_t hi = entries_[i + 1].rmax;
    const std::uint64_t lo = entries_[i].rmin;
    if (hi > lo) worst = std::max(worst, (hi - lo) / 2);
  }
  return worst;
}

bool QuantileSummary::valid() const {
  if (entries_.empty()) return total_ == 0;
  std::uint64_t prev_value_rank = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    if (e.rmin == 0 || e.rmin > e.rmax || e.rmax > total_) return false;
    if (i > 0 && e.value < entries_[i - 1].value) return false;
    (void)prev_value_rank;
  }
  return true;
}

void QuantileSummary::encode(BitWriter& w) const {
  encode_uint(w, total_);
  encode_uint(w, entries_.size());
  Value prev_value = 0;
  std::uint64_t prev_rmin = 0;
  for (const Entry& e : entries_) {
    encode_uint(w, static_cast<std::uint64_t>(e.value - prev_value));
    encode_int(w, static_cast<std::int64_t>(e.rmin) -
                      static_cast<std::int64_t>(prev_rmin));
    encode_uint(w, e.rmax - e.rmin);
    prev_value = e.value;
    prev_rmin = e.rmin;
  }
}

QuantileSummary QuantileSummary::decode(BitReader& r) {
  QuantileSummary s;
  s.total_ = decode_uint(r);
  const std::uint64_t n = decode_uint(r);
  // Each entry costs >= 3 bits on the wire; larger counts are corruption.
  if (n > r.remaining() / 3 + 1) {
    throw WireFormatError("quantile summary: entry count exceeds payload");
  }
  Value prev_value = 0;
  std::uint64_t prev_rmin = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    Entry e;
    e.value = prev_value + static_cast<Value>(decode_uint(r));
    e.rmin = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(prev_rmin) + decode_int(r));
    e.rmax = e.rmin + decode_uint(r);
    prev_value = e.value;
    prev_rmin = e.rmin;
    s.entries_.push_back(e);
  }
  return s;
}

}  // namespace sensornet::baseline
